// Backend-parameterized store property suite (LABELS "store").
//
// The contract DESIGN.md §11 pins: *record semantics are identical across
// backends*. One seeded random operation stream — Put, Remove, Mutate,
// ExtractAll/InsertAll round trips, table extract/ingest — drives a
// MetadataStore on each backend; after every batch the suites compare
// size, HeldIds, Snapshot and point Gets byte-for-byte. The LSM run
// additionally injects Reopen() (≙ process crash + restart) at seeded
// points: a durable backend must come back indistinguishable, which is
// exactly what the cluster's persistent-restart path relies on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "d2tree/mds/store.h"
#include "d2tree/storage/lsm_engine.h"
#include "d2tree/storage/memory_engine.h"

namespace d2tree {
namespace {

namespace fs = std::filesystem;

struct BackendParam {
  const char* name;
  bool reopen_points;  // inject crash/restarts mid-stream (LSM only)
};

class StoreProperty : public ::testing::TestWithParam<BackendParam> {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("d2t_prop_" + std::string(GetParam().name) + "_" +
             std::to_string(::getpid()) + "_XXXXXX"))
               .string();
    ASSERT_NE(::mkdtemp(dir_.data()), nullptr);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::unique_ptr<StoreEngine> MakeEngine(const std::string& instance) {
    if (std::string(GetParam().name) == "memory")
      return std::make_unique<MemoryEngine>();
    LsmOptions options;
    options.memtable_limit_bytes = 8192;  // exercise seals + compactions
    options.tier_fanout = 2;
    return std::make_unique<LsmEngine>(dir_ + "/" + instance, options);
  }

  std::string dir_;
};

InodeRecord RandomRecord(std::mt19937_64& rng, NodeId id) {
  InodeRecord r;
  r.id = id;
  r.parent = static_cast<NodeId>(rng() % 64);
  r.name = "n" + std::to_string(rng() % 100000);
  r.type = (rng() & 1) != 0 ? NodeType::kDirectory : NodeType::kFile;
  r.attrs.mtime = rng() % 1000000;
  r.attrs.size = rng() % (1 << 20);
  r.version = rng() % 32;
  return r;
}

/// The oracle: a MetadataStore on the memory engine, driven in lockstep.
void ExpectStoresAgree(const MetadataStore& got, const MetadataStore& want,
                       const char* when) {
  ASSERT_EQ(got.size(), want.size()) << when;
  ASSERT_EQ(got.HeldIds(), want.HeldIds()) << when;
  const auto got_snap = got.Snapshot();
  const auto want_snap = want.Snapshot();
  ASSERT_EQ(got_snap.size(), want_snap.size()) << when;
  for (std::size_t i = 0; i < got_snap.size(); ++i)
    ASSERT_EQ(got_snap[i], want_snap[i])
        << when << ": snapshot diverges at index " << i;
}

TEST_P(StoreProperty, SeededOpStreamMatchesMemoryOracle) {
  MetadataStore store(MakeEngine("subject"));
  MetadataStore oracle;  // memory reference

  std::mt19937_64 rng(0xD27EE5EEDull);
  constexpr int kBatches = 40;
  constexpr int kOpsPerBatch = 64;
  constexpr NodeId kIdSpace = 512;

  for (int batch = 0; batch < kBatches; ++batch) {
    for (int op = 0; op < kOpsPerBatch; ++op) {
      const NodeId id = static_cast<NodeId>(rng() % kIdSpace);
      switch (rng() % 4) {
        case 0:
        case 1: {  // bias toward growth
          const InodeRecord r = RandomRecord(rng, id);
          store.Put(r);
          oracle.Put(r);
          break;
        }
        case 2: {
          const auto a = store.Remove(id);
          const auto b = oracle.Remove(id);
          ASSERT_EQ(a, b) << "Remove(" << id << ") diverged";
          break;
        }
        case 3: {
          const std::uint64_t mtime = rng() % 1000000;
          const auto a = store.Mutate(id, mtime);
          const auto b = oracle.Mutate(id, mtime);
          ASSERT_EQ(a, b) << "Mutate(" << id << ") diverged";
          break;
        }
      }
    }

    // Every batch: point reads over the whole id space + full snapshots.
    for (NodeId id = 0; id < kIdSpace; id += 7)
      ASSERT_EQ(store.Get(id), oracle.Get(id)) << "Get(" << id << ")";
    ExpectStoresAgree(store, oracle,
                      ("after batch " + std::to_string(batch)).c_str());

    // Crash/restart injection: a durable backend must resume identical.
    if (GetParam().reopen_points && batch % 5 == 4) {
      const StoreRecoveryInfo info = store.Reopen();
      EXPECT_TRUE(info.opened_existing);
      ExpectStoresAgree(store, oracle, "after Reopen()");
    }
  }
  EXPECT_TRUE(store.AuditStorage().empty());
}

TEST_P(StoreProperty, BulkExtractInsertAndTableShippingRoundTrip) {
  MetadataStore store(MakeEngine("bulk"));
  MetadataStore oracle;
  std::mt19937_64 rng(0xB07B07ull);

  std::vector<NodeId> ids;
  for (NodeId id = 0; id < 200; ++id) {
    const InodeRecord r = RandomRecord(rng, id);
    store.Put(r);
    oracle.Put(r);
    if (id % 3 == 0) ids.push_back(id);
  }

  // ExtractAll removes exactly the asked-for subtree from both.
  const auto got = store.ExtractAll(ids);
  const auto want = oracle.ExtractAll(ids);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], want[i]);
  ExpectStoresAgree(store, oracle, "after ExtractAll");

  // InsertAll puts it back.
  store.InsertAll(got);
  oracle.InsertAll(want);
  ExpectStoresAgree(store, oracle, "after InsertAll");

  // The sealed-table path: extract to a table file, ingest it back.
  // Both backends must land on the identical live set (the LSM engine
  // links the file in; the memory engine decodes it).
  const std::string table = dir_ + "/roundtrip.sst";
  const std::size_t sealed = store.ExtractToTable(ids, table);
  ASSERT_EQ(sealed, ids.size());
  const auto oracle_out = oracle.ExtractAll(ids);
  ASSERT_EQ(oracle_out.size(), ids.size());
  ExpectStoresAgree(store, oracle, "after ExtractToTable");

  ASSERT_EQ(store.IngestTable(table), sealed);
  oracle.InsertAll(oracle_out);
  ExpectStoresAgree(store, oracle, "after IngestTable");
  EXPECT_TRUE(store.AuditStorage().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, StoreProperty,
    ::testing::Values(BackendParam{"memory", false},
                      BackendParam{"lsm", true}),
    [](const ::testing::TestParamInfo<BackendParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace d2tree
