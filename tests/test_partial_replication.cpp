// Tests for the Sec. VII extension: replication-degree threshold on the
// global layer (PartialGlobalLayer + PartialD2TreeRouter).
#include <gtest/gtest.h>

#include <set>

#include "d2tree/core/d2tree.h"
#include "d2tree/core/partial_replication.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/sim/cluster_sim.h"
#include "d2tree/sim/route.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

struct Fixture {
  Workload w = GenerateWorkload(RaProfile(0.03));
  D2TreeScheme scheme;
  Assignment assignment;
  static constexpr std::size_t kMds = 8;

  Fixture() {
    assignment = scheme.Partition(w.tree, MdsCluster::Homogeneous(kMds));
  }
};

TEST(PartialGlobalLayer, ReplicaSetsHaveExactDegree) {
  Fixture f;
  for (std::size_t degree : {1ul, 3ul, 8ul}) {
    const PartialGlobalLayer partial(f.scheme.layers(), Fixture::kMds, degree);
    EXPECT_EQ(partial.degree(), degree);
    for (NodeId id : f.scheme.split().global_layer) {
      const auto& reps = partial.ReplicasOf(id);
      EXPECT_EQ(reps.size(), degree);
      std::set<MdsId> unique(reps.begin(), reps.end());
      EXPECT_EQ(unique.size(), degree) << "duplicate replicas for " << id;
      for (MdsId r : reps) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, static_cast<MdsId>(Fixture::kMds));
        EXPECT_TRUE(partial.Holds(id, r));
      }
    }
  }
}

TEST(PartialGlobalLayer, DegreeClampedToClusterSize) {
  Fixture f;
  const PartialGlobalLayer partial(f.scheme.layers(), Fixture::kMds, 100);
  EXPECT_EQ(partial.degree(), Fixture::kMds);
  const PartialGlobalLayer zero(f.scheme.layers(), Fixture::kMds, 0);
  EXPECT_EQ(zero.degree(), 1u);
}

TEST(PartialGlobalLayer, ReplicaSetsSpreadAcrossCluster) {
  Fixture f;
  const PartialGlobalLayer partial(f.scheme.layers(), Fixture::kMds, 2);
  std::vector<std::size_t> holds(Fixture::kMds, 0);
  for (NodeId id : f.scheme.split().global_layer)
    for (MdsId r : partial.ReplicasOf(id)) ++holds[r];
  const double mean =
      2.0 * static_cast<double>(f.scheme.split().global_layer.size()) /
      static_cast<double>(Fixture::kMds);
  for (std::size_t k = 0; k < Fixture::kMds; ++k)
    EXPECT_NEAR(holds[k], mean, mean * 0.5) << "mds " << k;
}

TEST(PartialGlobalLayer, StableUnderClusterGrowth) {
  // Rendezvous hashing: growing the cluster must not reshuffle the
  // replicas that survive (an old replica stays a replica unless a new
  // server out-scores it).
  Fixture f;
  const PartialGlobalLayer small(f.scheme.layers(), 8, 3);
  const PartialGlobalLayer big(f.scheme.layers(), 12, 3);
  std::size_t kept = 0, total = 0;
  for (NodeId id : f.scheme.split().global_layer) {
    const auto& a = small.ReplicasOf(id);
    for (MdsId r : a) {
      ++total;
      kept += big.Holds(id, r);
    }
  }
  // Expect most replicas to survive (in expectation 1 - degree/12-ish churn).
  EXPECT_GT(static_cast<double>(kept) / static_cast<double>(total), 0.6);
}

TEST(PartialGlobalLayer, UpdateCostScalesWithDegree) {
  Fixture f;
  const PartialGlobalLayer d2(f.scheme.layers(), Fixture::kMds, 2);
  const PartialGlobalLayer d8(f.scheme.layers(), Fixture::kMds, 8);
  EXPECT_DOUBLE_EQ(d8.UpdateCost(f.w.tree), 4.0 * d2.UpdateCost(f.w.tree));
  // Full degree matches Def. 4 on the replicated assignment.
  EXPECT_DOUBLE_EQ(d8.UpdateCost(f.w.tree),
                   ComputeUpdateCost(f.w.tree, f.assignment));
}

TEST(PartialD2TreeRouterTest, GlQueriesStayInsideReplicaSet) {
  Fixture f;
  const PartialGlobalLayer partial(f.scheme.layers(), Fixture::kMds, 2);
  const PartialD2TreeRouter router(f.w.tree, f.scheme.local_index(), partial);
  Rng rng(5);
  for (std::size_t i = 0; i < 3000; ++i) {
    const TraceRecord& rec = f.w.trace.records()[i];
    const RoutePlan plan = router.PlanRoute(rec, rng);
    if (!f.assignment.IsReplicated(rec.node)) continue;
    ASSERT_EQ(plan.visits.size(), 1u);
    EXPECT_TRUE(partial.Holds(rec.node, plan.visits[0]))
        << f.w.tree.PathOf(rec.node);
    if (rec.op == OpType::kUpdate) {
      EXPECT_TRUE(plan.global_update);
      EXPECT_EQ(plan.broadcast_servers.size(), 2u);
    }
  }
}

TEST(PartialD2TreeRouterTest, LocalLayerRoutingUnchanged) {
  Fixture f;
  const PartialGlobalLayer partial(f.scheme.layers(), Fixture::kMds, 2);
  const PartialD2TreeRouter router(f.w.tree, f.scheme.local_index(), partial);
  Rng rng(5);
  for (std::size_t i = 0; i < 2000; ++i) {
    const TraceRecord& rec = f.w.trace.records()[i];
    if (f.assignment.IsReplicated(rec.node)) continue;
    const RoutePlan plan = router.PlanRoute(rec, rng);
    EXPECT_EQ(plan.visits.back(), f.assignment.OwnerOf(rec.node));
    EXPECT_FALSE(plan.global_update);
  }
}

TEST(PartialReplicationSim, LowerDegreeReducesLockWaitOnUpdateHeavyLoad) {
  Fixture f;  // RA: 16% updates
  SimConfig sim;
  sim.max_ops = 10'000;
  const PartialGlobalLayer d1(f.scheme.layers(), Fixture::kMds, 1);
  const PartialGlobalLayer d8(f.scheme.layers(), Fixture::kMds, 8);
  const PartialD2TreeRouter r1(f.w.tree, f.scheme.local_index(), d1);
  const PartialD2TreeRouter r8(f.w.tree, f.scheme.local_index(), d8);
  const SimResult s1 = RunClusterSim(f.w.trace, r1, Fixture::kMds, sim);
  const SimResult s8 = RunClusterSim(f.w.trace, r8, Fixture::kMds, sim);
  EXPECT_LT(s1.lock_wait_total, s8.lock_wait_total);
}

class DegreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DegreeSweep, SimulationCompletesAndBalancesQueries) {
  Fixture f;
  const std::size_t degree = GetParam();
  const PartialGlobalLayer partial(f.scheme.layers(), Fixture::kMds, degree);
  SimConfig sim;
  sim.max_ops = 8'000;
  const PartialD2TreeRouter router(f.w.tree, f.scheme.local_index(), partial);
  const SimResult r = RunClusterSim(f.w.trace, router, Fixture::kMds, sim);
  EXPECT_EQ(r.completed_ops, sim.max_ops);
  EXPECT_GT(r.throughput, 0.0);
  std::size_t active = 0;
  for (auto ops : r.server_ops) active += ops > 0;
  EXPECT_GE(active, std::min<std::size_t>(Fixture::kMds, degree));
}

INSTANTIATE_TEST_SUITE_P(Degrees, DegreeSweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace d2tree
