// RetryPolicy unit tests (net/retry.h): attempt accounting, backoff
// charged as simulated latency, deadline enforcement, deterministic
// seeded jitter, and the tight Heartbeat() variant that keeps heartbeat
// absence usable as a failure detector.
#include <gtest/gtest.h>

#include <memory>

#include "d2tree/net/retry.h"
#include "d2tree/net/simnet.h"

namespace d2tree {
namespace {

Address Mon() { return MonitorAddress(); }
Address Mds0() { return MdsAddress(0); }

Message Ping() {
  Message m;
  m.type = MsgType::kHeartbeat;
  return m;
}

TEST(RetryPolicy, FirstTrySuccessCostsOneAttempt) {
  InProcessTransport transport;  // always delivers, zero latency
  const RetryOutcome out =
      SendWithRetry(transport, Mon(), Mds0(), Ping(), RetryPolicy{}, 1);
  EXPECT_TRUE(out.delivery.delivered);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.retries(), 0);
  EXPECT_FALSE(out.deadline_exceeded);
  EXPECT_EQ(transport.messages_sent(), 1u);
}

TEST(RetryPolicy, PartitionedLinkExhaustsAttemptsAndChargesBackoff) {
  SimNetConfig cfg;
  cfg.jitter_mean_us = 0.0;
  auto net = std::make_shared<SimNetTransport>(cfg);
  ASSERT_TRUE(net->SetPartitioned(Mon(), Mds0(), true));

  RetryPolicy policy;
  policy.deadline_us = 1e9;  // attempts, not the deadline, are the bound
  const RetryOutcome out =
      SendWithRetry(*net, Mon(), Mds0(), Ping(), policy, 7);
  EXPECT_FALSE(out.delivery.delivered);
  EXPECT_EQ(out.attempts, policy.max_attempts);
  EXPECT_EQ(out.retries(), policy.max_attempts - 1);
  EXPECT_FALSE(out.deadline_exceeded);
  // Every attempt cost the sender its timeout, plus three backoffs of at
  // least base/2 each (jitter floor 0.5).
  EXPECT_GE(out.delivery.latency_us,
            policy.max_attempts * cfg.timeout_us +
                (policy.max_attempts - 1) * policy.base_backoff_us * 0.5);
}

TEST(RetryPolicy, DeadlineStopsRetriesEarly) {
  SimNetConfig cfg;
  cfg.jitter_mean_us = 0.0;
  cfg.timeout_us = 1000.0;
  auto net = std::make_shared<SimNetTransport>(cfg);
  ASSERT_TRUE(net->SetPartitioned(Mon(), Mds0(), true));

  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.deadline_us = 2500.0;  // room for ~2 timeouts, nowhere near 100
  const RetryOutcome out =
      SendWithRetry(*net, Mon(), Mds0(), Ping(), policy, 3);
  EXPECT_FALSE(out.delivery.delivered);
  EXPECT_TRUE(out.deadline_exceeded);
  EXPECT_LT(out.attempts, policy.max_attempts);
  EXPECT_GE(out.attempts, 1);
}

TEST(RetryPolicy, JitterIsDeterministicPerSeedAndNonce) {
  SimNetConfig cfg;
  cfg.jitter_mean_us = 0.0;
  RetryPolicy policy;
  policy.deadline_us = 1e9;

  const auto run = [&](std::uint64_t jitter_seed, std::uint64_t nonce) {
    auto net = std::make_shared<SimNetTransport>(cfg);
    EXPECT_TRUE(net->SetPartitioned(Mon(), Mds0(), true));
    RetryPolicy p = policy;
    p.jitter_seed = jitter_seed;
    return SendWithRetry(*net, Mon(), Mds0(), Ping(), p, nonce)
        .delivery.latency_us;
  };

  EXPECT_EQ(run(1, 1), run(1, 1));  // replayable
  EXPECT_NE(run(1, 1), run(2, 1));  // seed decorrelates
  EXPECT_NE(run(1, 1), run(1, 2));  // nonce decorrelates concurrent ops
}

TEST(RetryPolicy, RetriesRecoverFromTransientLoss) {
  // A lossy-but-healable link: with p=0.7 per leg, four attempts make
  // delivery overwhelmingly likely; assert the seeded fates actually
  // include at least one op that needed a retry and still delivered.
  SimNetConfig cfg;
  cfg.seed = 0x10551;
  cfg.jitter_mean_us = 0.0;
  auto net = std::make_shared<SimNetTransport>(cfg);
  ASSERT_TRUE(net->SetLinkDropRate(Mon(), Mds0(), 0.7));

  bool saw_recovered_retry = false;
  for (std::uint64_t nonce = 0; nonce < 64; ++nonce) {
    const RetryOutcome out =
        SendWithRetry(*net, Mon(), Mds0(), Ping(), RetryPolicy{}, nonce);
    if (out.delivery.delivered && out.retries() > 0) saw_recovered_retry = true;
  }
  EXPECT_TRUE(saw_recovered_retry);
}

TEST(RetryPolicy, HeartbeatVariantIsTight) {
  const RetryPolicy hb = RetryPolicy::Heartbeat();
  EXPECT_EQ(hb.max_attempts, 2);
  EXPECT_LE(hb.deadline_us, 500.0);

  // Against a partition the heartbeat gives up after one retransmit —
  // absence stays a prompt failure signal.
  SimNetConfig cfg;
  cfg.jitter_mean_us = 0.0;
  cfg.timeout_us = 200.0;
  auto net = std::make_shared<SimNetTransport>(cfg);
  ASSERT_TRUE(net->SetPartitioned(Mon(), Mds0(), true));
  const RetryOutcome out = SendWithRetry(*net, Mon(), Mds0(), Ping(), hb, 0);
  EXPECT_FALSE(out.delivery.delivered);
  EXPECT_LE(out.attempts, 2);
}

}  // namespace
}  // namespace d2tree
