// Deterministic-seeded stress suite for the functional cluster under real
// concurrency: barrier-started client threads with fixed op counts race
// against dynamic-adjustment migrations and global-layer broadcasts, then
// the consistency audit must come back clean. Built as its own ctest
// target with LABEL "stress" so the default run can exclude it and the
// TSan CI job can select exactly it.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "d2tree/mds/cluster.h"
#include "d2tree/sim/concurrent_replay.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

constexpr std::uint64_t kSeed = 0x57E55ull;

class ConcurrentClusterTest : public ::testing::Test {
 protected:
  ConcurrentClusterTest()
      : workload_(GenerateWorkload(DtrProfile(0.05))),
        cluster_(workload_.tree, 4) {}

  std::vector<std::string> SamplePaths(std::size_t stride) const {
    std::vector<std::string> paths;
    for (NodeId id = 0; id < workload_.tree.size(); id += stride)
      paths.push_back(workload_.tree.PathOf(id));
    return paths;
  }

  Workload workload_;
  FunctionalCluster cluster_;
};

// Readers + a migration storm: every Stat must succeed (no record is ever
// observable "in flight") and the audit must hold afterwards. One thread
// hammers the subtrees owned by MDS 0 so the Monitor has a real hotspot
// and the adjustment rounds demonstrably move records under the readers.
TEST_F(ConcurrentClusterTest, StatsNeverFailDuringAdjustmentChurn) {
  const auto paths = SamplePaths(7);
  std::vector<std::string> hot_paths;
  const auto& subtrees = cluster_.scheme().layers().subtrees;
  const auto& owners = cluster_.scheme().subtree_owners();
  for (std::size_t i = 0; i < subtrees.size(); ++i)
    if (owners[i] == 0) hot_paths.push_back(workload_.tree.PathOf(subtrees[i].root));
  ASSERT_FALSE(hot_paths.empty());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1500;

  std::barrier start(kThreads + 1);
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto& p = t == 0 ? hot_paths[i % hot_paths.size()]
                               : paths[(static_cast<std::size_t>(t) * 8191 + i) %
                                       paths.size()];
        if (cluster_.Stat(p).status != MdsStatus::kOk) ++failures;
      }
    });
  }
  std::atomic<std::size_t> migrated{0};
  std::thread adjuster([&] {
    start.arrive_and_wait();
    for (int round = 0; round < 8; ++round) {
      migrated.fetch_add(cluster_.RunAdjustmentRound());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& th : threads) th.join();
  adjuster.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(cluster_.adjustment_rounds(), 8u);
  EXPECT_GT(migrated.load(), 0u);  // migration really raced the readers
  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
}

// Mixed churn: local + global updates, stale-entry forwarding and
// migrations all at once. Checks the GL invariants: version advanced by
// exactly the number of acknowledged GL updates, and every replica ends at
// the master version (enforced inside CheckConsistency).
TEST_F(ConcurrentClusterTest, MixedUpdateChurnKeepsGlCoherent) {
  const auto& gl = cluster_.scheme().split().global_layer;
  ASSERT_GE(gl.size(), 2u);
  std::vector<std::string> gl_paths;
  for (std::size_t i = 0; i < gl.size() && i < 8; ++i)
    gl_paths.push_back(workload_.tree.PathOf(gl[i]));
  const auto read_paths = SamplePaths(11);

  const std::uint64_t version_before = cluster_.gl_master_version();
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 1000;

  std::barrier start(kThreads + 1);
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::size_t pick = static_cast<std::size_t>(t) * 131 + i;
        MdsStatus status;
        if (i % 5 == 0) {  // GL update → lock + broadcast
          status =
              cluster_.Update(gl_paths[pick % gl_paths.size()], i).status;
        } else if (i % 5 == 1) {  // stale entry → forwarding path
          status = cluster_
                       .StatVia(read_paths[pick % read_paths.size()],
                                static_cast<MdsId>(pick % 4))
                       .status;
        } else {
          status = cluster_.Stat(read_paths[pick % read_paths.size()]).status;
        }
        if (status != MdsStatus::kOk) ++failures;
      }
    });
  }
  std::thread adjuster([&] {
    start.arrive_and_wait();
    for (int round = 0; round < 6; ++round) cluster_.RunAdjustmentRound();
  });
  for (auto& th : threads) th.join();
  adjuster.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(cluster_.gl_master_version() - version_before,
            cluster_.gl_updates());
  EXPECT_GT(cluster_.gl_updates(), 0u);
  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
}

// Adjustment rounds themselves may race with each other (e.g. a periodic
// background adjuster plus an operator-triggered round).
TEST_F(ConcurrentClusterTest, ConcurrentAdjustmentRoundsSerialize) {
  const auto paths = SamplePaths(13);
  constexpr int kAdjusters = 2;
  constexpr int kRoundsEach = 4;

  std::barrier start(kAdjusters + 2);
  std::vector<std::thread> threads;
  for (int a = 0; a < kAdjusters; ++a) {
    threads.emplace_back([&] {
      start.arrive_and_wait();
      for (int i = 0; i < kRoundsEach; ++i) cluster_.RunAdjustmentRound();
    });
  }
  std::atomic<std::size_t> failures{0};
  threads.emplace_back([&] {  // one reader keeps traffic (and popularity) live
    start.arrive_and_wait();
    for (int i = 0; i < 2000; ++i)
      if (cluster_.Stat(paths[i % paths.size()]).status != MdsStatus::kOk)
        ++failures;
  });
  start.arrive_and_wait();
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(cluster_.adjustment_rounds(),
            static_cast<std::uint64_t>(kAdjusters * kRoundsEach));
  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
}

// Auditing while the cluster is under fire must itself be safe (it is the
// harness epilogue, but also a live monitoring call).
TEST_F(ConcurrentClusterTest, AuditDuringChurnIsSafe) {
  const auto paths = SamplePaths(17);
  std::barrier start(3);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};

  std::thread reader([&] {
    start.arrive_and_wait();
    for (int i = 0; i < 3000; ++i)
      if (cluster_.Stat(paths[i % paths.size()]).status != MdsStatus::kOk)
        ++failures;
    stop.store(true);
  });
  std::thread auditor([&] {
    start.arrive_and_wait();
    while (!stop.load()) {
      std::string error;
      if (!cluster_.CheckConsistency(&error)) {
        ++failures;
        break;
      }
    }
  });
  start.arrive_and_wait();
  reader.join();
  auditor.join();
  EXPECT_EQ(failures.load(), 0u);
}

// The full harness: Zipf workload, stale entries, updates, background
// migration — deterministic op totals, clean audit, no failed ops.
TEST(ConcurrentReplayHarness, ZipfWorkloadEndsConsistent) {
  const Workload w = GenerateWorkload(LmbeProfile(0.05));
  FunctionalCluster cluster(w.tree, 4);

  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.ops_per_thread = 1200;
  cfg.update_fraction = 0.15;
  cfg.stale_entry_fraction = 0.10;
  cfg.min_adjustment_rounds = 4;
  cfg.adjustment_interval_us = 500;
  cfg.seed = kSeed;

  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);

  EXPECT_EQ(r.total_ops, cfg.thread_count * cfg.ops_per_thread);
  EXPECT_EQ(r.total_failed, 0u);
  EXPECT_EQ(r.total_ok, r.total_ops);
  EXPECT_GE(r.adjustment_rounds_run, cfg.min_adjustment_rounds);
  EXPECT_EQ(r.latency.count(), r.total_ops);
  EXPECT_GT(r.gl_updates, 0u);
  EXPECT_TRUE(r.consistent) << r.consistency_error;
  ASSERT_EQ(r.per_thread.size(), cfg.thread_count);
  for (const ThreadReplayStats& s : r.per_thread)
    EXPECT_EQ(s.ops, cfg.ops_per_thread);
}

// Trace-driven variant: every thread replays a disjoint slice of the
// profile trace; totals must cover the whole trace exactly once.
TEST(ConcurrentReplayHarness, TraceReplayCoversEveryRecord) {
  const Workload w = GenerateWorkload(RaProfile(0.03));
  FunctionalCluster cluster(w.tree, 4);

  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.min_adjustment_rounds = 3;
  cfg.adjustment_interval_us = 500;
  cfg.seed = kSeed;

  // Cap the replay to a prefix so the stress run stays fast under TSan.
  Trace prefix(std::vector<TraceRecord>(
      w.trace.records().begin(),
      w.trace.records().begin() +
          std::min<std::size_t>(w.trace.size(), 6000)));

  const ConcurrentReplayReport r =
      ReplayTraceConcurrently(cluster, w.tree, prefix, cfg);

  EXPECT_EQ(r.total_ops, prefix.size());
  EXPECT_EQ(r.total_failed, 0u);
  EXPECT_TRUE(r.consistent) << r.consistency_error;
}

// Determinism of the op stream: identical seeds must produce identical
// op-outcome aggregates (timing differs; outcomes must not).
TEST(ConcurrentReplayHarness, OpOutcomesDeterministicInSeed) {
  ConcurrentReplayConfig cfg;
  cfg.thread_count = 3;
  cfg.ops_per_thread = 800;
  cfg.update_fraction = 0.2;
  cfg.min_adjustment_rounds = 2;
  cfg.adjustment_interval_us = 0;
  cfg.seed = 0xF00D;

  const Workload w = GenerateWorkload(LmbeProfile(0.03));
  std::vector<std::size_t> ok_counts;
  for (int run = 0; run < 2; ++run) {
    FunctionalCluster cluster(w.tree, 3);
    const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);
    EXPECT_EQ(r.total_failed, 0u);
    EXPECT_TRUE(r.consistent) << r.consistency_error;
    ok_counts.push_back(r.total_ok);
  }
  EXPECT_EQ(ok_counts[0], ok_counts[1]);
}

}  // namespace
}  // namespace d2tree
