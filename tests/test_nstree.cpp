// Unit tests for the namespace tree substrate.
#include <gtest/gtest.h>

#include <sstream>

#include "d2tree/common/rng.h"
#include "d2tree/nstree/builder.h"
#include "d2tree/nstree/tree.h"

namespace d2tree {
namespace {

/// The Fig. 2 namespace: /root {home {a{c.txt}, b{g.pdf h.jpg}}, var{d e},
/// usr{f{j.doc}}} — handy across tests.
NamespaceTree Fig2Tree() {
  NamespaceTree t;
  t.GetOrCreatePath("/home/a/c.txt", NodeType::kFile);
  t.GetOrCreatePath("/home/b/g.pdf", NodeType::kFile);
  t.GetOrCreatePath("/home/b/h.jpg", NodeType::kFile);
  t.GetOrCreatePath("/var/d", NodeType::kDirectory);
  t.GetOrCreatePath("/var/e", NodeType::kDirectory);
  t.GetOrCreatePath("/usr/f/j.doc", NodeType::kFile);
  return t;
}

TEST(NamespaceTree, StartsWithRootOnly) {
  NamespaceTree t;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.PathOf(t.root()), "/");
  EXPECT_TRUE(t.node(t.root()).is_directory());
}

TEST(NamespaceTree, AddAndFindChild) {
  NamespaceTree t;
  const NodeId home = t.AddChild(t.root(), "home", NodeType::kDirectory);
  EXPECT_EQ(t.FindChild(t.root(), "home"), home);
  EXPECT_EQ(t.FindChild(t.root(), "nope"), kInvalidNode);
  EXPECT_EQ(t.node(home).depth, 1u);
  EXPECT_EQ(t.node(home).parent, t.root());
}

TEST(NamespaceTree, GetOrCreatePathCreatesIntermediates) {
  NamespaceTree t;
  const NodeId leaf = t.GetOrCreatePath("/a/b/c.txt", NodeType::kFile);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_FALSE(t.node(leaf).is_directory());
  EXPECT_TRUE(t.node(t.Resolve("/a/b")).is_directory());
  // Second call is idempotent.
  EXPECT_EQ(t.GetOrCreatePath("/a/b/c.txt", NodeType::kFile), leaf);
  EXPECT_EQ(t.size(), 4u);
}

TEST(NamespaceTree, ResolveAndPathOfRoundTrip) {
  NamespaceTree t = Fig2Tree();
  for (const char* p : {"/home", "/home/b/h.jpg", "/usr/f/j.doc", "/var/e"}) {
    const NodeId id = t.Resolve(p);
    ASSERT_NE(id, kInvalidNode) << p;
    EXPECT_EQ(t.PathOf(id), p);
  }
  EXPECT_EQ(t.Resolve("/home/zzz"), kInvalidNode);
}

TEST(NamespaceTree, AncestorsRootFirst) {
  NamespaceTree t = Fig2Tree();
  const NodeId h = t.Resolve("/home/b/h.jpg");
  const auto anc = t.AncestorsOf(h);
  ASSERT_EQ(anc.size(), 3u);
  EXPECT_EQ(anc[0], t.root());
  EXPECT_EQ(t.PathOf(anc[1]), "/home");
  EXPECT_EQ(t.PathOf(anc[2]), "/home/b");
  EXPECT_TRUE(t.AncestorsOf(t.root()).empty());
}

TEST(NamespaceTree, ChildIdsAlwaysGreaterThanParent) {
  Rng rng(3);
  SyntheticTreeConfig cfg;
  cfg.node_count = 2000;
  cfg.max_depth = 10;
  const NamespaceTree t = BuildSyntheticTree(cfg, rng);
  for (NodeId id = 1; id < t.size(); ++id)
    EXPECT_LT(t.node(id).parent, id);
}

TEST(NamespaceTree, PopularityAggregation) {
  NamespaceTree t = Fig2Tree();
  // 3 accesses to h.jpg, 1 to /home, 2 to c.txt.
  const NodeId h = t.Resolve("/home/b/h.jpg");
  const NodeId home = t.Resolve("/home");
  const NodeId c = t.Resolve("/home/a/c.txt");
  t.AddAccess(h, 3);
  t.AddAccess(home, 1);
  t.AddAccess(c, 2);
  t.RecomputeSubtreePopularity();
  EXPECT_DOUBLE_EQ(t.node(h).subtree_popularity, 3);
  EXPECT_DOUBLE_EQ(t.node(t.Resolve("/home/b")).subtree_popularity, 3);
  EXPECT_DOUBLE_EQ(t.node(home).subtree_popularity, 6);  // 3 + 2 + own 1
  EXPECT_DOUBLE_EQ(t.node(t.root()).subtree_popularity, 6);
  EXPECT_DOUBLE_EQ(t.TotalIndividualPopularity(), 6);
}

TEST(NamespaceTree, ParentPopularityNeverBelowChild) {
  Rng rng(5);
  SyntheticTreeConfig cfg;
  cfg.node_count = 5000;
  const NamespaceTree base = BuildSyntheticTree(cfg, rng);
  NamespaceTree t = base;
  for (int i = 0; i < 20000; ++i)
    t.AddAccess(static_cast<NodeId>(rng.NextBounded(t.size())));
  t.RecomputeSubtreePopularity();
  for (NodeId id = 1; id < t.size(); ++id) {
    EXPECT_GE(t.node(t.node(id).parent).subtree_popularity,
              t.node(id).subtree_popularity);
  }
}

TEST(NamespaceTree, ResetPopularityClears) {
  NamespaceTree t = Fig2Tree();
  t.AddAccess(t.Resolve("/home"), 5);
  t.RecomputeSubtreePopularity();
  t.ResetPopularity();
  EXPECT_DOUBLE_EQ(t.TotalIndividualPopularity(), 0.0);
  EXPECT_DOUBLE_EQ(t.node(t.root()).subtree_popularity, 0.0);
}

TEST(NamespaceTree, SetIndividualPopularityValidatesSize) {
  NamespaceTree t = Fig2Tree();
  EXPECT_THROW(t.SetIndividualPopularity({1.0, 2.0}), std::invalid_argument);
}

TEST(NamespaceTree, SubtreeSizeAndVisit) {
  NamespaceTree t = Fig2Tree();
  EXPECT_EQ(t.SubtreeSize(t.root()), t.size());
  EXPECT_EQ(t.SubtreeSize(t.Resolve("/home")), 6u);  // home,a,c,b,g,h
  EXPECT_EQ(t.SubtreeSize(t.Resolve("/home/b/h.jpg")), 1u);
}

TEST(NamespaceTree, PreorderParentsBeforeChildren) {
  NamespaceTree t = Fig2Tree();
  const auto order = t.PreorderNodes();
  ASSERT_EQ(order.size(), t.size());
  std::vector<std::size_t> pos(t.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId id = 1; id < t.size(); ++id)
    EXPECT_LT(pos[t.node(id).parent], pos[id]);
}

TEST(NamespaceTree, MaxDepth) {
  NamespaceTree t = Fig2Tree();
  EXPECT_EQ(t.MaxDepth(), 3u);  // /home/b/h.jpg
}

TEST(NamespaceTree, SaveLoadRoundTrip) {
  NamespaceTree t = Fig2Tree();
  t.AddAccess(t.Resolve("/home/b/h.jpg"), 7);
  t.SetUpdateCost(t.Resolve("/home"), 2.5);
  t.RecomputeSubtreePopularity();

  std::stringstream ss;
  t.Save(ss);
  const NamespaceTree u = NamespaceTree::Load(ss);
  ASSERT_EQ(u.size(), t.size());
  for (NodeId id = 0; id < t.size(); ++id) {
    const NodeId uid = u.Resolve(t.PathOf(id));
    ASSERT_NE(uid, kInvalidNode);
    EXPECT_EQ(u.node(uid).type, t.node(id).type);
    EXPECT_DOUBLE_EQ(u.node(uid).individual_popularity,
                     t.node(id).individual_popularity);
    EXPECT_DOUBLE_EQ(u.node(uid).update_cost, t.node(id).update_cost);
  }
  EXPECT_DOUBLE_EQ(u.node(u.root()).subtree_popularity,
                   t.node(t.root()).subtree_popularity);
}

TEST(NamespaceTree, RenameKeepsStructureChangesPaths) {
  NamespaceTree t = Fig2Tree();
  const NodeId b = t.Resolve("/home/b");
  const NodeId h = t.Resolve("/home/b/h.jpg");
  t.Rename(b, "bb");
  EXPECT_EQ(t.Resolve("/home/b"), kInvalidNode);
  EXPECT_EQ(t.Resolve("/home/bb"), b);
  EXPECT_EQ(t.Resolve("/home/bb/h.jpg"), h);  // descendants follow
  EXPECT_EQ(t.PathOf(h), "/home/bb/h.jpg");
  EXPECT_EQ(t.node(h).parent, b);             // structure untouched
  EXPECT_EQ(t.node(b).children.size(), 2u);
}

TEST(NamespaceTree, RenameThenAddOldName) {
  NamespaceTree t = Fig2Tree();
  const NodeId b = t.Resolve("/home/b");
  t.Rename(b, "bb");
  // The old name is free again.
  const NodeId fresh =
      t.AddChild(t.Resolve("/home"), "b", NodeType::kDirectory);
  EXPECT_EQ(t.Resolve("/home/b"), fresh);
  EXPECT_EQ(t.Resolve("/home/bb"), b);
}

TEST(NamespaceTree, LoadRejectsGarbage) {
  std::stringstream ss("not a snapshot");
  EXPECT_THROW(NamespaceTree::Load(ss), std::runtime_error);
}

TEST(Builder, HitsNodeCountAndMaxDepth) {
  Rng rng(11);
  SyntheticTreeConfig cfg;
  cfg.node_count = 3000;
  cfg.max_depth = 17;
  const NamespaceTree t = BuildSyntheticTree(cfg, rng);
  EXPECT_EQ(t.size(), 3000u);
  EXPECT_EQ(t.MaxDepth(), 17u);
}

TEST(Builder, RespectsMaxDepthBound) {
  Rng rng(13);
  SyntheticTreeConfig cfg;
  cfg.node_count = 4000;
  cfg.max_depth = 5;
  cfg.depth_bias = 0.9;
  const NamespaceTree t = BuildSyntheticTree(cfg, rng);
  for (NodeId id = 0; id < t.size(); ++id)
    EXPECT_LE(t.node(id).depth, 5u);
}

TEST(Builder, DirRatioApproximatelyHonored) {
  Rng rng(17);
  SyntheticTreeConfig cfg;
  cfg.node_count = 20000;
  cfg.max_depth = 12;
  cfg.dir_ratio = 0.3;
  const NamespaceTree t = BuildSyntheticTree(cfg, rng);
  std::size_t dirs = 0;
  for (NodeId id = 0; id < t.size(); ++id)
    dirs += t.node(id).is_directory();
  const double ratio = static_cast<double>(dirs) / static_cast<double>(t.size());
  EXPECT_NEAR(ratio, 0.3, 0.05);
}

TEST(Builder, DeterministicInSeed) {
  SyntheticTreeConfig cfg;
  cfg.node_count = 500;
  Rng r1(42), r2(42);
  const NamespaceTree a = BuildSyntheticTree(cfg, r1);
  const NamespaceTree b = BuildSyntheticTree(cfg, r2);
  ASSERT_EQ(a.size(), b.size());
  for (NodeId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.PathOf(id), b.PathOf(id));
  }
}

TEST(Builder, DepthBiasMakesDeeperTrees) {
  SyntheticTreeConfig shallow, deep;
  shallow.node_count = deep.node_count = 10000;
  shallow.max_depth = deep.max_depth = 40;
  shallow.depth_bias = 0.0;
  deep.depth_bias = 0.8;
  Rng r1(7), r2(7);
  const NamespaceTree a = BuildSyntheticTree(shallow, r1);
  const NamespaceTree b = BuildSyntheticTree(deep, r2);
  double mean_a = 0, mean_b = 0;
  for (NodeId id = 0; id < a.size(); ++id) mean_a += a.node(id).depth;
  for (NodeId id = 0; id < b.size(); ++id) mean_b += b.node(id).depth;
  EXPECT_GT(mean_b, mean_a);
}

}  // namespace
}  // namespace d2tree
