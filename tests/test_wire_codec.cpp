// Wire-codec property tests (ctest label "codec"): the socket transport's
// framing must be total — every byte sequence either decodes to exactly
// the envelope that was encoded, asks for more bytes, or reports
// corruption. It must never crash, never read past the buffer (ASan holds
// it to that in the asan CI job) and never accept a tampered frame.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "d2tree/durability/crc32.h"
#include "d2tree/net/wire.h"

namespace d2tree {
namespace {

// The protocol registry: every MsgType enumerator, by name. d2lint's
// registry rule holds this table to the enum — adding a message type
// without extending it (and the sweep below) fails the lint, and the
// static_assert catches a table that falls behind the enum's count.
constexpr MsgType kAllMsgTypes[] = {
    MsgType::kStatRequest,     MsgType::kStatResponse,
    MsgType::kUpdateRequest,   MsgType::kUpdateResponse,
    MsgType::kForward,         MsgType::kHeartbeat,
    MsgType::kPendingPoolPush, MsgType::kPendingPoolPull,
    MsgType::kGlWriteLock,     MsgType::kGlCommit,
    MsgType::kRenameRequest,   MsgType::kRenameResponse,
    MsgType::kRenamePrepare,   MsgType::kRenameCommit,
    MsgType::kRenameAbort,     MsgType::kBulkTable,
};
static_assert(std::size(kAllMsgTypes) ==
                  static_cast<std::size_t>(MsgType::kBulkTable) + 1,
              "kAllMsgTypes must list every MsgType enumerator");

Message MessageOfEveryField() {
  Message m;
  m.type = MsgType::kRenamePrepare;
  m.target = 123456;
  m.mtime = 0xDEADBEEFCAFEF00DULL;
  m.status = MdsStatus::kWrongServer;
  m.payload_records = 77;
  m.migration_id = 0x1122334455667788ULL;
  m.peer = 3;
  m.name = "renamed-component";
  m.record.id = 42;
  m.record.parent = 7;
  m.record.type = NodeType::kFile;
  m.record.name = "file.dat";
  m.record.attrs.mode = 0644;
  m.record.attrs.uid = 1000;
  m.record.attrs.gid = 100;
  m.record.attrs.size = 1ULL << 40;
  m.record.attrs.mtime = 1700000000;
  m.record.attrs.ctime = 1600000000;
  m.record.version = 9;
  return m;
}

WireEnvelope EnvelopeOf(Message m, FrameKind kind = FrameKind::kCall) {
  WireEnvelope env;
  env.kind = kind;
  env.correlation_id = 0xABCDEF0123456789ULL;
  env.from = ClientAddress();
  env.to = MdsAddress(2);
  env.msg = std::move(m);
  return env;
}

TEST(WireCodec, RoundTripsEveryFieldByteExactly) {
  const WireEnvelope env = EnvelopeOf(MessageOfEveryField());
  const std::vector<std::uint8_t> frame = EncodeFrame(env);
  ASSERT_GE(frame.size(), kWireHeaderBytes);

  WireEnvelope decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &decoded, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded, env);
}

TEST(WireCodec, RoundTripsEveryMsgTypeKindAndStatus) {
  for (const MsgType type : kAllMsgTypes) {
    const auto t = static_cast<std::uint8_t>(type);
    for (std::uint8_t k = 0; k <= static_cast<std::uint8_t>(FrameKind::kAck);
         ++k) {
      Message m = MessageOfEveryField();
      m.type = type;
      m.status = static_cast<MdsStatus>(
          t % (static_cast<std::uint8_t>(MdsStatus::kUnavailable) + 1));
      WireEnvelope env = EnvelopeOf(std::move(m), static_cast<FrameKind>(k));
      const auto frame = EncodeFrame(env);
      WireEnvelope decoded;
      std::size_t consumed = 0;
      ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &decoded, &consumed),
                DecodeStatus::kOk)
          << "type " << int(t) << " kind " << int(k);
      EXPECT_EQ(decoded, env);
    }
  }
}

TEST(WireCodec, PayloadFidelityAtTheBounds) {
  // Maximum-size name and empty name both round-trip exactly.
  Message max = MessageOfEveryField();
  max.name = std::string(kMaxWireNameBytes, 'x');
  max.record.name = std::string(kMaxWireNameBytes, 'y');
  Message empty = MessageOfEveryField();
  empty.name.clear();
  empty.record.name.clear();
  for (const Message* m : {&max, &empty}) {
    const WireEnvelope env = EnvelopeOf(*m);
    const auto frame = EncodeFrame(env);
    WireEnvelope decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &decoded, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(decoded, env);
  }
}

TEST(WireCodec, OverlongNamesAreTruncatedToTheBoundNotRejected) {
  Message m = MessageOfEveryField();
  m.name = std::string(kMaxWireNameBytes + 500, 'z');
  const auto frame = EncodeFrame(EnvelopeOf(m));
  WireEnvelope decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &decoded, &consumed),
            DecodeStatus::kOk)
      << "the encoder must never emit a frame its decoder rejects";
  EXPECT_EQ(decoded.msg.name.size(), kMaxWireNameBytes);
}

// 200+ seeded random messages: every shape round-trips.
TEST(WireCodec, SeededRandomMessagesRoundTrip) {
  std::mt19937_64 rng(0xC0DEC);
  const auto u8 = [&](std::uint64_t bound) {
    return static_cast<std::uint8_t>(rng() % bound);
  };
  for (int i = 0; i < 250; ++i) {
    WireEnvelope env;
    env.kind = static_cast<FrameKind>(
        u8(static_cast<std::uint8_t>(FrameKind::kAck) + 1));
    env.correlation_id = rng();
    env.from = {static_cast<PeerKind>(u8(3)), static_cast<MdsId>(rng() % 64)};
    env.to = {static_cast<PeerKind>(u8(3)), static_cast<MdsId>(rng() % 64)};
    env.msg.type = static_cast<MsgType>(
        u8(static_cast<std::uint8_t>(MsgType::kBulkTable) + 1));
    env.msg.status = static_cast<MdsStatus>(
        u8(static_cast<std::uint8_t>(MdsStatus::kUnavailable) + 1));
    env.msg.target = static_cast<NodeId>(rng());
    env.msg.mtime = rng();
    env.msg.payload_records = static_cast<std::size_t>(rng() % 100000);
    env.msg.migration_id = rng();
    env.msg.peer = static_cast<MdsId>(rng() % 128);
    env.msg.name.assign(rng() % 64, static_cast<char>('a' + (rng() % 26)));
    env.msg.record.id = static_cast<NodeId>(rng());
    env.msg.record.parent = static_cast<NodeId>(rng());
    env.msg.record.type = static_cast<NodeType>(u8(2));
    env.msg.record.name.assign(rng() % 256,
                               static_cast<char>('A' + (rng() % 26)));
    env.msg.record.attrs.mode = static_cast<std::uint32_t>(rng());
    env.msg.record.attrs.uid = static_cast<std::uint32_t>(rng());
    env.msg.record.attrs.gid = static_cast<std::uint32_t>(rng());
    env.msg.record.attrs.size = rng();
    env.msg.record.attrs.mtime = rng();
    env.msg.record.attrs.ctime = rng();
    env.msg.record.version = rng();

    const auto frame = EncodeFrame(env);
    WireEnvelope decoded;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &decoded, &consumed),
              DecodeStatus::kOk)
        << "iteration " << i;
    ASSERT_EQ(decoded, env) << "iteration " << i;
    ASSERT_EQ(consumed, frame.size());
  }
}

// Every strict prefix of a valid frame must ask for more bytes — never
// decode, never report corruption, never read past the prefix.
TEST(WireCodec, EveryTruncationAsksForMore) {
  const auto frame = EncodeFrame(EnvelopeOf(MessageOfEveryField()));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    // A fresh copy of exactly `len` bytes so ASan catches any overread.
    const std::vector<std::uint8_t> prefix(frame.begin(),
                                           frame.begin() + len);
    WireEnvelope decoded;
    std::size_t consumed = 1;
    EXPECT_EQ(DecodeFrame(prefix.data(), prefix.size(), &decoded, &consumed),
              DecodeStatus::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

// Any single bit flip is caught: the CRC (or a bounds check) rejects the
// frame. A flipped frame must never decode as kOk.
TEST(WireCodec, EveryBitFlipIsRejected) {
  const auto frame = EncodeFrame(EnvelopeOf(MessageOfEveryField()));
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> tampered = frame;
      tampered[byte] ^= static_cast<std::uint8_t>(1u << bit);
      WireEnvelope decoded;
      std::size_t consumed = 0;
      const DecodeStatus st =
          DecodeFrame(tampered.data(), tampered.size(), &decoded, &consumed);
      // A flip in the length field may claim a longer frame (kNeedMore) or
      // an oversized one (kCorrupt); everything else must be kCorrupt.
      EXPECT_NE(st, DecodeStatus::kOk)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(WireCodec, RandomGarbageNeverDecodes) {
  std::mt19937_64 rng(0xBAD);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> junk(rng() % 512);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    WireEnvelope decoded;
    std::size_t consumed = 0;
    const DecodeStatus st =
        DecodeFrame(junk.data(), junk.size(), &decoded, &consumed);
    // Random bytes can claim any length, so kNeedMore is legal; a clean
    // decode would need a CRC collision over random data.
    EXPECT_NE(st, DecodeStatus::kOk) << "iteration " << i;
  }
}

TEST(WireCodec, OversizedLengthIsCorruptImmediately) {
  std::vector<std::uint8_t> frame(kWireHeaderBytes, 0);
  const std::uint32_t huge = kMaxWireFrameBytes + 1;
  for (int i = 0; i < 4; ++i)
    frame[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  WireEnvelope decoded;
  std::size_t consumed = 99;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &decoded, &consumed),
            DecodeStatus::kCorrupt);
  EXPECT_EQ(consumed, 0u) << "nothing sane to skip — the conn dies anyway";
}

// A frame whose CRC is valid but whose body violates the schema is
// corruption, not a crash: the CRC protects against line noise, the body
// validation against broken or malicious encoders.
TEST(WireCodec, CrcValidMalformedBodyIsCorrupt) {
  // Each tamper targets one validated body byte; the CRC is recomputed so
  // framing passes and only the body validation can object.
  struct Tamper {
    const char* what;
    std::size_t body_offset;
    std::uint8_t value;
  };
  const Tamper tampers[] = {
      {"wire version", 0, kWireVersion + 9},
      {"frame kind", 1, 200},
      // Body offset 2..9 is the correlation id; 10 is from.kind.
      {"from peer kind", 10, 99},
  };
  for (const Tamper& t : tampers) {
    auto frame = EncodeFrame(EnvelopeOf(MessageOfEveryField()));
    frame[kWireHeaderBytes + t.body_offset] = t.value;
    const std::uint32_t crc = Crc32(frame.data() + kWireHeaderBytes,
                                    frame.size() - kWireHeaderBytes);
    for (int i = 0; i < 4; ++i)
      frame[4 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(crc >> (8 * i));

    WireEnvelope decoded;
    std::size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &decoded, &consumed),
              DecodeStatus::kCorrupt)
        << t.what;
    EXPECT_EQ(consumed, frame.size())
        << "a whole well-framed frame is skipped, the stream stays aligned";
  }
}

TEST(WireCodec, StreamingPeelsFramesOneAtATime) {
  const WireEnvelope a = EnvelopeOf(MessageOfEveryField(), FrameKind::kCall);
  WireEnvelope b = EnvelopeOf(MessageOfEveryField(), FrameKind::kResponse);
  b.correlation_id = 5;
  b.msg.name = "second";
  const auto fa = EncodeFrame(a);
  const auto fb = EncodeFrame(b);

  std::vector<std::uint8_t> stream = fa;
  stream.insert(stream.end(), fb.begin(), fb.end() - 3);  // partial tail

  WireEnvelope decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(stream.data(), stream.size(), &decoded, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(decoded, a);
  EXPECT_EQ(consumed, fa.size());

  stream.erase(stream.begin(),
               stream.begin() + static_cast<std::ptrdiff_t>(consumed));
  ASSERT_EQ(DecodeFrame(stream.data(), stream.size(), &decoded, &consumed),
            DecodeStatus::kNeedMore);

  stream.insert(stream.end(), fb.end() - 3, fb.end());
  ASSERT_EQ(DecodeFrame(stream.data(), stream.size(), &decoded, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(decoded, b);
}

}  // namespace
}  // namespace d2tree
