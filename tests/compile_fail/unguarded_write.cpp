// Negative-compile case: writing a D2T_GUARDED_BY field without holding
// its mutex. Under Clang with -Wthread-safety -Werror this MUST fail:
//   error: writing variable 'value_' requires holding mutex 'mu_'
//   exclusively
// The compile_fail harness asserts the diagnostic appears; if this file
// ever compiles, the annotation wall is off.
#include "d2tree/common/mutex.h"
#include "d2tree/common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() { ++value_; }  // no lock held — the analysis rejects this

 private:
  d2tree::Mutex mu_;
  int value_ D2T_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
