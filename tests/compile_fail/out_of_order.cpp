// Negative-compile case: lock-order inversion. a_ is declared
// D2T_ACQUIRED_BEFORE(b_), so taking b_ first MUST fail under Clang
// with -Wthread-safety-beta -Werror:
//   error: mutex 'a_' must be acquired before 'b_'
// This is the compile-time half of the hierarchy check; the
// rank-numbering half (scripts/check_lock_order.py) runs on every
// compiler.
#include "d2tree/common/mutex.h"
#include "d2tree/common/thread_annotations.h"

namespace {

class Ordered {
 public:
  void Backwards() {
    d2tree::MutexLock hold_b(&b_);
    d2tree::MutexLock hold_a(&a_);  // inversion — the analysis rejects this
  }

 private:
  d2tree::Mutex a_ D2T_ACQUIRED_BEFORE(b_);
  d2tree::Mutex b_;
};

}  // namespace

int main() {
  Ordered o;
  o.Backwards();
  return 0;
}
