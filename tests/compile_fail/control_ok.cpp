// Positive control for the negative-compile suite: correct lock usage
// that MUST compile under -Wthread-safety -Wthread-safety-beta -Werror.
// If this file stops compiling, the sibling compile_fail cases are
// failing for the wrong reason (broken include path or flags), not
// because the analysis caught them.
#include "d2tree/common/mutex.h"
#include "d2tree/common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    d2tree::MutexLock lock(&mu_);
    ++value_;
  }
  int Get() const {
    d2tree::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable d2tree::Mutex mu_;
  int value_ D2T_GUARDED_BY(mu_) = 0;
};

class Ordered {
 public:
  void Forwards() {
    d2tree::MutexLock hold_a(&a_);
    d2tree::MutexLock hold_b(&b_);
    ++steps_;
  }

 private:
  d2tree::Mutex a_ D2T_ACQUIRED_BEFORE(b_);
  d2tree::Mutex b_;
  int steps_ D2T_GUARDED_BY(b_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  Ordered o;
  o.Forwards();
  return c.Get() - 1;
}
