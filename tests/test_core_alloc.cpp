// Tests for Subtree-Allocation: exact and sampled mirror division
// (Sec. IV-B, Fig. 4) plus the DKW-backed accuracy claims (Sec. V).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "d2tree/common/rng.h"
#include "d2tree/core/allocator.h"

namespace d2tree {
namespace {

std::vector<Subtree> MakeSubtrees(const std::vector<double>& pops) {
  std::vector<Subtree> out;
  for (std::size_t i = 0; i < pops.size(); ++i) {
    Subtree s;
    s.root = static_cast<NodeId>(i + 100);
    s.inter_parent = 0;
    s.popularity = pops[i];
    s.node_count = 1;
    out.push_back(s);
  }
  return out;
}

std::vector<double> LoadsOf(const std::vector<Subtree>& subtrees,
                            const std::vector<MdsId>& owners,
                            std::size_t m) {
  std::vector<double> loads(m, 0.0);
  for (std::size_t i = 0; i < subtrees.size(); ++i)
    loads[owners[i]] += subtrees[i].popularity;
  return loads;
}

TEST(MirrorDivisionExact, ReproducesFig4Example) {
  // Fig. 4: five subtrees with shares .5 .2 .1 .1 .1; MDS capacity shares
  // .5 .3 .2 → m1 gets Δ1, m2 gets Δ2+Δ3, m3 gets Δ4+Δ5.
  const auto subtrees = MakeSubtrees({0.5, 0.2, 0.1, 0.1, 0.1});
  const std::vector<double> caps{0.5, 0.3, 0.2};
  const auto owners =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  EXPECT_EQ(owners[0], 0);
  EXPECT_EQ(owners[1], 1);
  EXPECT_EQ(owners[2], 1);
  EXPECT_EQ(owners[3], 2);
  EXPECT_EQ(owners[4], 2);
}

TEST(MirrorDivisionExact, EverySubtreeGetsExactlyOneOwner) {
  Rng rng(9);
  std::vector<double> pops;
  for (int i = 0; i < 500; ++i) pops.push_back(rng.NextExponential(10.0));
  const auto subtrees = MakeSubtrees(pops);
  const std::vector<double> caps{1, 2, 3, 4};
  const auto owners =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  ASSERT_EQ(owners.size(), subtrees.size());
  for (MdsId o : owners) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 4);
  }
}

TEST(MirrorDivisionExact, LoadsProportionalToCapacity) {
  Rng rng(10);
  std::vector<double> pops;
  for (int i = 0; i < 4000; ++i) pops.push_back(rng.NextExponential(5.0));
  const auto subtrees = MakeSubtrees(pops);
  const std::vector<double> caps{1.0, 2.0, 3.0, 2.0};
  const auto owners =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  const auto loads = LoadsOf(subtrees, owners, caps.size());
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  for (std::size_t k = 0; k < caps.size(); ++k) {
    const double expect_share = caps[k] / 8.0;
    EXPECT_NEAR(loads[k] / total, expect_share, 0.02) << "mds " << k;
  }
}

TEST(MirrorDivisionExact, HeterogeneousCapacityRespected) {
  // One giant MDS should absorb nearly everything.
  const auto subtrees = MakeSubtrees({5, 4, 3, 2, 1});
  const std::vector<double> caps{100.0, 1.0};
  const auto owners =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  int first = 0;
  for (MdsId o : owners) first += (o == 0);
  EXPECT_GE(first, 4);
}

TEST(MirrorDivisionExact, ZeroCapacityMdsGetsNothing) {
  Rng rng(12);
  std::vector<double> pops;
  for (int i = 0; i < 200; ++i) pops.push_back(rng.NextDouble() * 10);
  const auto subtrees = MakeSubtrees(pops);
  const std::vector<double> caps{1.0, 0.0, 1.0};
  const auto owners =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  for (MdsId o : owners) EXPECT_NE(o, 1);
}

TEST(MirrorDivisionExact, AllZeroPopularitySpreadsByCount) {
  const auto subtrees = MakeSubtrees(std::vector<double>(100, 0.0));
  const std::vector<double> caps{1.0, 1.0};
  const auto owners =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  int first = 0;
  for (MdsId o : owners) first += (o == 0);
  EXPECT_EQ(first, 50);
}

TEST(MirrorDivisionExact, DfsOrderKeepsNeighborsTogether) {
  // Equal popularity in DFS order: each MDS must own one contiguous run.
  const auto subtrees = MakeSubtrees(std::vector<double>(30, 1.0));
  const std::vector<double> caps{1.0, 1.0, 1.0};
  const auto owners = MirrorDivisionExact(subtrees, caps, SubtreeOrder::kDfs);
  for (std::size_t i = 1; i < owners.size(); ++i)
    EXPECT_GE(owners[i], owners[i - 1]) << "non-contiguous run at " << i;
}

TEST(MirrorDivisionExact, SingleSubtree) {
  const auto subtrees = MakeSubtrees({42.0});
  const std::vector<double> caps{1.0, 3.0};
  const auto owners =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  ASSERT_EQ(owners.size(), 1u);
  // Mass midpoint 0.5 falls in m2's interval (0.25, 1].
  EXPECT_EQ(owners[0], 1);
}

TEST(MirrorDivisionExact, EmptyPool) {
  const std::vector<Subtree> none;
  const std::vector<double> caps{1.0, 1.0};
  EXPECT_TRUE(
      MirrorDivisionExact(none, caps, SubtreeOrder::kPopularityDesc).empty());
}

TEST(MirrorDivisionSampled, FallsBackToExactForSmallPools) {
  const auto subtrees = MakeSubtrees({0.5, 0.2, 0.1, 0.1, 0.1});
  const std::vector<double> caps{0.5, 0.3, 0.2};
  Rng rng(1);
  const auto sampled = MirrorDivisionSampled(subtrees, caps, 1000, rng);
  const auto exact =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  EXPECT_EQ(sampled, exact);
}

TEST(MirrorDivisionSampled, CoversAllMdsAndBalances) {
  Rng rng(77);
  std::vector<double> pops;
  for (int i = 0; i < 20000; ++i) pops.push_back(rng.NextExponential(3.0));
  const auto subtrees = MakeSubtrees(pops);
  const std::vector<double> caps{2.0, 1.0, 1.0};
  Rng srng(5);
  const auto owners = MirrorDivisionSampled(subtrees, caps, 800, srng);
  const auto loads = LoadsOf(subtrees, owners, caps.size());
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  EXPECT_NEAR(loads[0] / total, 0.5, 0.08);
  EXPECT_NEAR(loads[1] / total, 0.25, 0.08);
  EXPECT_NEAR(loads[2] / total, 0.25, 0.08);
}

TEST(MirrorDivisionSampled, EqualPopularityDoesNotStackOneMds) {
  // All subtrees equally popular: hash tie-breaking must still spread them.
  const auto subtrees = MakeSubtrees(std::vector<double>(5000, 1.0));
  const std::vector<double> caps{1.0, 1.0};
  Rng rng(6);
  const auto owners = MirrorDivisionSampled(subtrees, caps, 100, rng);
  int first = 0;
  for (MdsId o : owners) first += (o == 0);
  EXPECT_NEAR(first, 2500, 300);
}

TEST(MirrorDivisionSampled, ErrorShrinksWithSampleCount) {
  Rng rng(31);
  std::vector<double> pops;
  for (int i = 0; i < 50000; ++i) pops.push_back(rng.NextExponential(2.0));
  const auto subtrees = MakeSubtrees(pops);
  const std::vector<double> caps{1.0, 1.0, 1.0, 1.0};
  const double total = std::accumulate(pops.begin(), pops.end(), 0.0);
  const double mu = total / 4.0;

  auto max_rel_err = [&](std::size_t samples) {
    double worst = 0.0;
    // Average over several sampling seeds to smooth noise.
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Rng srng(seed + 1);
      const auto owners = MirrorDivisionSampled(subtrees, caps, samples, srng);
      const auto loads = LoadsOf(subtrees, owners, caps.size());
      for (double l : loads)
        worst = std::max(worst, std::fabs(l - mu) / mu);
    }
    return worst;
  };
  const double coarse = max_rel_err(30);
  const double fine = max_rel_err(3000);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 0.1);
}

TEST(AllocateSubtrees, DispatchesOnConfig) {
  const auto subtrees = MakeSubtrees({0.5, 0.2, 0.1, 0.1, 0.1});
  const std::vector<double> caps{0.5, 0.3, 0.2};
  AllocationConfig exact;
  EXPECT_EQ(AllocateSubtrees(subtrees, caps, exact),
            MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc));
  AllocationConfig sampled;
  sampled.sample_count = 3;
  sampled.seed = 9;
  const auto owners = AllocateSubtrees(subtrees, caps, sampled);
  ASSERT_EQ(owners.size(), 5u);
  for (MdsId o : owners) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 3);
  }
}

class MirrorDivisionCapacitySweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MirrorDivisionCapacitySweep, ProportionalityHoldsAtEveryClusterSize) {
  const std::size_t m = GetParam();
  Rng rng(m * 1000 + 7);
  std::vector<double> pops;
  for (int i = 0; i < 8000; ++i) pops.push_back(rng.NextExponential(4.0));
  const auto subtrees = MakeSubtrees(pops);
  std::vector<double> caps(m, 1.0);
  const auto owners =
      MirrorDivisionExact(subtrees, caps, SubtreeOrder::kPopularityDesc);
  const auto loads = LoadsOf(subtrees, owners, m);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  for (double l : loads)
    EXPECT_NEAR(l / total, 1.0 / static_cast<double>(m),
                0.25 / static_cast<double>(m));
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, MirrorDivisionCapacitySweep,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

}  // namespace
}  // namespace d2tree
