// Message-layer tests: transport determinism, per-op jump/latency
// telemetry, network fault semantics (client⇄MDS drop windows, Monitor⇄MDS
// partitions) and their FaultSchedule plumbing.
//
// The twin-cluster tests exploit that FunctionalCluster is deterministic
// given the same construction + call sequence: two clusters built from the
// same tree answer identically unless the transport differs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "d2tree/mds/cluster.h"
#include "d2tree/net/simnet.h"
#include "d2tree/sim/concurrent_replay.h"
#include "d2tree/sim/fault_injector.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

constexpr std::size_t kMds = 4;

Workload SmallWorkload() { return GenerateWorkload(DtrProfile(0.05)); }

/// An MDS that owns at least one local-layer subtree.
MdsId OwnerOfSomeSubtree(const FunctionalCluster& cluster) {
  for (MdsId o : cluster.scheme().subtree_owners())
    if (o >= 0) return o;
  return -1;
}

/// Path of a subtree root owned by `mds` ("" if none).
std::string SubtreePathOwnedBy(const FunctionalCluster& cluster,
                               const NamespaceTree& tree, MdsId mds) {
  const auto& subtrees = cluster.scheme().layers().subtrees;
  const auto& owners = cluster.scheme().subtree_owners();
  for (std::size_t i = 0; i < subtrees.size(); ++i)
    if (owners[i] == mds) return tree.PathOf(subtrees[i].root);
  return {};
}

// --- InProcessTransport: the message layer must not change semantics.

TEST(InProcessTransport, ZeroLatencyAlwaysDelivered) {
  InProcessTransport t;
  const Delivery d =
      t.Send(ClientAddress(), MdsAddress(2), {MsgType::kStatRequest});
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.error, DeliveryError::kNone);
  EXPECT_EQ(d.latency_us, 0.0);
  EXPECT_EQ(t.messages_sent(), 1u);
  EXPECT_EQ(t.messages_dropped(), 0u);
  EXPECT_EQ(t.total_latency_us(), 0.0);
}

TEST(InProcessTransport, RefusesNetworkFaults) {
  const Workload w = SmallWorkload();
  FunctionalCluster cluster(w.tree, kMds);  // default transport
  EXPECT_FALSE(cluster.SetClientLinkDrop(1, 0.5));
  EXPECT_FALSE(cluster.SetMonitorPartition(1, true));
}

TEST(ClientResult, InProcessOpsPayNoSimulatedLatency) {
  const Workload w = SmallWorkload();
  FunctionalCluster cluster(w.tree, kMds);
  for (NodeId id = 0; id < w.tree.size(); id += 7) {
    const auto r = cluster.Stat(w.tree.PathOf(id));
    EXPECT_EQ(r.status, MdsStatus::kOk);
    EXPECT_EQ(r.sim_latency_us, 0.0);
  }
  EXPECT_EQ(cluster.transport().total_latency_us(), 0.0);
  EXPECT_GT(cluster.transport().messages_sent(), 0u);
}

// The paper's Def. 1 bound, now directly assertable per op: a fresh local
// index resolves every access with zero jumps, and even a deliberately
// wrong entry server forwards at most once.
TEST(ClientResult, JumpCountRespectsOneJumpBound) {
  const Workload w = SmallWorkload();
  FunctionalCluster cluster(w.tree, kMds);
  for (NodeId id = 0; id < w.tree.size(); ++id) {
    const auto direct = cluster.Stat(w.tree.PathOf(id));
    ASSERT_EQ(direct.status, MdsStatus::kOk);
    EXPECT_EQ(direct.jumps, 0) << "fresh index must resolve without jumps";
    const MdsId wrong = static_cast<MdsId>((direct.served_by + 1) % kMds);
    const auto via = cluster.StatVia(w.tree.PathOf(id), wrong);
    ASSERT_EQ(via.status, MdsStatus::kOk);
    EXPECT_LE(via.jumps, 1) << "D2-Tree bound: at most one forward";
    EXPECT_EQ(via.op_class == OpClass::kLl1Jump, via.jumps == 1);
  }
}

TEST(ClientResult, OpClassMatchesPlacement) {
  const Workload w = SmallWorkload();
  FunctionalCluster cluster(w.tree, kMds);
  const NodeId gl_node = cluster.scheme().split().global_layer.front();
  EXPECT_EQ(cluster.Stat(w.tree.PathOf(gl_node)).op_class, OpClass::kGlHit);
  EXPECT_EQ(cluster.Update(w.tree.PathOf(gl_node), 42).op_class,
            OpClass::kGlHit);

  const MdsId owner = OwnerOfSomeSubtree(cluster);
  ASSERT_GE(owner, 0);
  const std::string ll_path = SubtreePathOwnedBy(cluster, w.tree, owner);
  const auto direct = cluster.Stat(ll_path);
  EXPECT_EQ(direct.op_class, OpClass::kLl0Jump);
  const auto forwarded =
      cluster.StatVia(ll_path, static_cast<MdsId>((owner + 1) % kMds));
  EXPECT_EQ(forwarded.op_class, OpClass::kLl1Jump);
  EXPECT_EQ(forwarded.jumps, 1);
}

// --- SimNetTransport: deterministic latency under a fixed seed.

TEST(SimNetTransport, LatencyAtLeastBasePerLeg) {
  const Workload w = SmallWorkload();
  auto net = std::make_shared<SimNetTransport>();
  FunctionalCluster cluster(w.tree, kMds, {}, net);
  const auto r = cluster.Stat(w.tree.PathOf(0));
  ASSERT_EQ(r.status, MdsStatus::kOk);
  // Request + response legs, each at least the base propagation delay.
  EXPECT_GE(r.sim_latency_us, 2 * net->config().base_latency_us);
}

std::pair<std::vector<std::string>, double> RunSeededSequence(
    const Workload& w, std::uint64_t seed) {
  SimNetConfig net_cfg;
  net_cfg.seed = seed;
  net_cfg.drop_probability = 0.05;  // exercise the drop draw too
  auto net = std::make_shared<SimNetTransport>(net_cfg);
  FunctionalCluster cluster(w.tree, kMds, {}, net);
  net->set_record_log(true);
  for (NodeId id = 0; id < w.tree.size(); id += 5)
    cluster.Stat(w.tree.PathOf(id));
  cluster.Update(w.tree.PathOf(0), 7);
  cluster.StatVia(w.tree.PathOf(w.tree.size() - 1), 0);
  cluster.RunAdjustmentRound();
  return {net->TakeLog(), net->total_latency_us()};
}

TEST(SimNetTransport, SameSeedSameDeliveryOrderAndLatency) {
  const Workload w = SmallWorkload();
  const auto [log_a, latency_a] = RunSeededSequence(w, 0xABCDEF);
  const auto [log_b, latency_b] = RunSeededSequence(w, 0xABCDEF);
  ASSERT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);  // byte-identical delivery order
  EXPECT_EQ(latency_a, latency_b);

  const auto [log_c, latency_c] = RunSeededSequence(w, 0x123456);
  EXPECT_NE(log_a, log_c) << "different seed must reshuffle the wire";
  EXPECT_NE(latency_a, latency_c);
}

TEST(SimNetTransport, PartitionDefeatsReliableSend) {
  SimNetTransport net;
  ASSERT_TRUE(net.SetPartitioned(MonitorAddress(), MdsAddress(1), true));
  const Delivery d = net.SendReliable(MdsAddress(1), MonitorAddress(),
                                      {MsgType::kHeartbeat});
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.error, DeliveryError::kUndeliverable)
      << "a partitioned link is unreachable, not slow";
  EXPECT_GT(d.latency_us, 0.0);  // timeouts accrued
  ASSERT_TRUE(net.SetPartitioned(MonitorAddress(), MdsAddress(1), false));
  EXPECT_TRUE(
      net.Send(MdsAddress(1), MonitorAddress(), {MsgType::kHeartbeat})
          .delivered);
}

// --- Network faults against the live cluster.

// A fully lossy client⇄owner link: local-layer ops on that owner pay the
// bounded failover (one retry) and then fail; healing the link restores
// service. Other servers are untouched.
TEST(NetworkFaults, ClientLinkDropTriggersBoundedFailover) {
  const Workload w = SmallWorkload();
  auto net = std::make_shared<SimNetTransport>();
  FunctionalCluster cluster(w.tree, kMds, {}, net);
  const MdsId victim = OwnerOfSomeSubtree(cluster);
  ASSERT_GE(victim, 0);
  const std::string path = SubtreePathOwnedBy(cluster, w.tree, victim);
  ASSERT_EQ(cluster.Stat(path).status, MdsStatus::kOk);

  ASSERT_TRUE(cluster.SetClientLinkDrop(victim, 1.0));
  const std::uint64_t redirects_before = cluster.failover_redirects();
  const auto r = cluster.Stat(path);
  EXPECT_EQ(r.status, MdsStatus::kUnavailable);
  EXPECT_EQ(r.op_class, OpClass::kFailover);
  EXPECT_EQ(r.net_error, DeliveryError::kTimeout)
      << "a dropped leg may have executed server-side — the taxonomy must "
         "say timeout, not undeliverable";
  EXPECT_LE(r.hops, 2) << "failover is bounded to one retry";
  EXPECT_GT(cluster.failover_redirects(), redirects_before);
  // The server itself is fine — only its client link is lossy.
  EXPECT_TRUE(cluster.IsServerAlive(victim));

  ASSERT_TRUE(cluster.SetClientLinkDrop(victim, 0.0));
  EXPECT_EQ(cluster.Stat(path).status, MdsStatus::kOk);
}

// The other half of the error taxonomy: a *crashed* server is
// kUndeliverable (the op certainly did not execute), while a lossy link
// is kTimeout (asserted above) — the same split the socket transport
// reports for a dead peer vs a stuck one.
TEST(NetworkFaults, CrashedServerSurfacesUndeliverable) {
  const Workload w = SmallWorkload();
  auto net = std::make_shared<SimNetTransport>();
  FunctionalCluster cluster(w.tree, kMds, {}, net);
  const MdsId victim = OwnerOfSomeSubtree(cluster);
  ASSERT_GE(victim, 0);
  const std::string path = SubtreePathOwnedBy(cluster, w.tree, victim);

  ASSERT_TRUE(cluster.KillServer(victim));
  const auto r = cluster.Stat(path);
  EXPECT_EQ(r.status, MdsStatus::kUnavailable);
  EXPECT_EQ(r.net_error, DeliveryError::kUndeliverable);

  ASSERT_TRUE(cluster.ReviveServer(victim));
  const auto healed = cluster.Stat(path);
  EXPECT_EQ(healed.status, MdsStatus::kOk);
  EXPECT_EQ(healed.net_error, DeliveryError::kNone);
}

// Monitor⇄MDS partition drains the target exactly like heartbeat
// suppression: twin clusters — one partitioned on SimNet, one suppressed
// on InProcess — end the adjustment round with identical subtree owners,
// and the audit holds on both (no double ownership).
TEST(NetworkFaults, MonitorPartitionDrainsLikeHeartbeatSuppression) {
  const Workload w = SmallWorkload();
  auto net = std::make_shared<SimNetTransport>();
  FunctionalCluster partitioned(w.tree, kMds, {}, net);
  FunctionalCluster suppressed(w.tree, kMds);

  const MdsId victim = OwnerOfSomeSubtree(partitioned);
  ASSERT_GE(victim, 0);
  ASSERT_EQ(OwnerOfSomeSubtree(suppressed), victim);  // twins start equal

  // Identical charged traffic on both clusters.
  for (NodeId id = 0; id < w.tree.size(); id += 3) {
    partitioned.Stat(w.tree.PathOf(id));
    suppressed.Stat(w.tree.PathOf(id));
  }
  ASSERT_TRUE(partitioned.SetMonitorPartition(victim, true));
  ASSERT_TRUE(suppressed.SetHeartbeatSuppressed(victim, true));

  const std::uint64_t hb_lost_before = partitioned.heartbeats_lost();
  EXPECT_GT(partitioned.RunAdjustmentRound(), 0u);
  EXPECT_GT(suppressed.RunAdjustmentRound(), 0u);
  EXPECT_GT(partitioned.heartbeats_lost(), hb_lost_before)
      << "the partitioned server's heartbeat must be lost on the wire";

  EXPECT_EQ(partitioned.scheme().subtree_owners(),
            suppressed.scheme().subtree_owners())
      << "partition and suppression must drain identically";
  for (MdsId o : partitioned.scheme().subtree_owners())
    EXPECT_NE(o, victim) << "victim must own nothing after the drain";

  std::string err;
  EXPECT_TRUE(partitioned.CheckConsistency(&err)) << err;
  EXPECT_TRUE(suppressed.CheckConsistency(&err)) << err;

  // Healing the partition lets the next round hand subtrees back.
  ASSERT_TRUE(partitioned.SetMonitorPartition(victim, false));
  partitioned.RunAdjustmentRound();
  EXPECT_TRUE(partitioned.CheckConsistency(&err)) << err;
}

// --- FaultSchedule plumbing for the new event kinds.

TEST(FaultSchedule, PairsDropAndPartitionWindows) {
  FaultMix mix;
  mix.kills = 0;
  mix.revives = 0;
  mix.server_additions = 0;
  mix.link_drops = 2;
  mix.monitor_partitions = 1;
  mix.link_drop_probability = 0.5;
  const FaultSchedule s = FaultSchedule::Random(0xFEED, kMds, 10'000, mix);
  std::size_t drop_starts = 0, drop_stops = 0, part_starts = 0,
              part_stops = 0;
  std::vector<MdsId> open_drops, open_parts;
  for (const FaultEvent& e : s.events) {
    switch (e.kind) {
      case FaultKind::kLinkDropStart:
        ++drop_starts;
        EXPECT_EQ(e.drop_prob, 0.5);
        open_drops.push_back(e.target);
        break;
      case FaultKind::kLinkDropStop: {
        ++drop_stops;
        const auto it =
            std::find(open_drops.begin(), open_drops.end(), e.target);
        ASSERT_NE(it, open_drops.end()) << "stop without a matching start";
        open_drops.erase(it);
        break;
      }
      case FaultKind::kMonitorPartitionStart:
        ++part_starts;
        open_parts.push_back(e.target);
        break;
      case FaultKind::kMonitorPartitionStop: {
        ++part_stops;
        const auto it =
            std::find(open_parts.begin(), open_parts.end(), e.target);
        ASSERT_NE(it, open_parts.end());
        open_parts.erase(it);
        break;
      }
      // d2lint: allow-default(guard: any kind outside the mix is a failure)
      default:
        ADD_FAILURE() << "unexpected kind in a drops-only mix";
    }
  }
  EXPECT_EQ(drop_starts, 2u);
  EXPECT_EQ(drop_stops, 2u);
  EXPECT_EQ(part_starts, 1u);
  EXPECT_EQ(part_stops, 1u);
  EXPECT_TRUE(open_drops.empty());
  EXPECT_TRUE(open_parts.empty());
  EXPECT_NE(s.ToString().find("link-drop"), std::string::npos);
  EXPECT_NE(s.ToString().find("p=0.5"), std::string::npos);
}

TEST(FaultSchedule, DefaultMixUnchangedByNewKinds) {
  // Schedules that ask for no network faults must not contain (or burn RNG
  // draws on) the new kinds — seeded legacy schedules stay byte-identical.
  const FaultSchedule s = FaultSchedule::Random(0xBEEF, kMds, 10'000);
  for (const FaultEvent& e : s.events) {
    EXPECT_NE(e.kind, FaultKind::kLinkDropStart);
    EXPECT_NE(e.kind, FaultKind::kLinkDropStop);
    EXPECT_NE(e.kind, FaultKind::kMonitorPartitionStart);
    EXPECT_NE(e.kind, FaultKind::kMonitorPartitionStop);
  }
}

TEST(FaultInjector, NetworkEventsSkippedOnInProcessTransport) {
  const Workload w = SmallWorkload();
  FunctionalCluster cluster(w.tree, kMds);  // no network model
  FaultSchedule schedule;
  schedule.events.push_back({1, FaultKind::kLinkDropStart, 1, 0.5});
  schedule.events.push_back({2, FaultKind::kMonitorPartitionStart, 1});
  FaultInjector injector(cluster, schedule);
  injector.OnOp();
  injector.OnOp();
  EXPECT_EQ(injector.applied(), 0u);
  EXPECT_EQ(injector.skipped(), 2u);
}

// --- Concurrent replay carries the per-op-class telemetry.

TEST(ConcurrentReplayTelemetry, ClassCountsAndLatencyAddUp) {
  const Workload w = SmallWorkload();
  auto net = std::make_shared<SimNetTransport>();
  FunctionalCluster cluster(w.tree, kMds, {}, net);
  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.ops_per_thread = 500;
  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);

  EXPECT_TRUE(r.consistent) << r.consistency_error;
  EXPECT_EQ(r.total_ops, cfg.thread_count * cfg.ops_per_thread);
  std::size_t class_total = 0;
  for (std::size_t c = 0; c < kOpClassCount; ++c)
    class_total += r.class_ops[c];
  EXPECT_EQ(class_total, r.total_ops) << "every op lands in exactly one class";
  EXPECT_EQ(r.sim_latency.count(), r.total_ops);
  // No faults and no drops: nothing fails, nothing classifies as failover.
  EXPECT_EQ(r.total_failed, 0u);
  EXPECT_EQ(r.class_ops[static_cast<std::size_t>(OpClass::kFailover)], 0u);
  EXPECT_EQ(r.messages_dropped, 0u);
  EXPECT_GT(r.messages_sent, 0u);
  // Simulated latency is real on SimNet.
  EXPECT_GT(r.sim_latency.mean(), 0.0);
  const auto& gl = r.class_latency[static_cast<std::size_t>(OpClass::kGlHit)];
  if (gl.count() > 0) {
    EXPECT_GT(gl.Quantile(0.5), 0.0);
  }
}

TEST(ConcurrentReplayTelemetry, InProcessAggregatesStayZeroLatency) {
  const Workload w = SmallWorkload();
  FunctionalCluster cluster(w.tree, kMds);
  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.ops_per_thread = 250;
  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);
  EXPECT_TRUE(r.consistent) << r.consistency_error;
  EXPECT_EQ(r.sim_latency.max(), 0.0);
  EXPECT_EQ(r.messages_dropped, 0u);
  EXPECT_EQ(r.heartbeats_lost, 0u);
}

}  // namespace
}  // namespace d2tree
