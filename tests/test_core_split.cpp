// Tests for Tree-Splitting (Alg. 1) and layer extraction (Sec. IV-A/IV-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "d2tree/common/rng.h"
#include "d2tree/core/layers.h"
#include "d2tree/core/splitter.h"
#include "d2tree/nstree/builder.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

/// Small skewed tree: /hot gets most traffic, /cold little.
NamespaceTree SkewedTree() {
  NamespaceTree t;
  t.GetOrCreatePath("/hot/a", NodeType::kFile);
  t.GetOrCreatePath("/hot/b", NodeType::kFile);
  t.GetOrCreatePath("/cold/c", NodeType::kFile);
  t.GetOrCreatePath("/cold/d", NodeType::kFile);
  t.AddAccess(t.Resolve("/hot"), 10);
  t.AddAccess(t.Resolve("/hot/a"), 50);
  t.AddAccess(t.Resolve("/hot/b"), 40);
  t.AddAccess(t.Resolve("/cold/c"), 3);
  t.AddAccess(t.Resolve("/cold/d"), 2);
  t.RecomputeSubtreePopularity();
  return t;
}

NamespaceTree RandomPopularTree(std::size_t nodes, std::uint64_t seed,
                                double theta = 1.0) {
  Rng rng(seed);
  SyntheticTreeConfig cfg;
  cfg.node_count = nodes;
  cfg.max_depth = 12;
  NamespaceTree t = BuildSyntheticTree(cfg, rng);
  // Zipf-ish popularity over ids (shallow nodes have small ids).
  for (NodeId id = 0; id < t.size(); ++id)
    t.AddAccess(id, 1000.0 / std::pow(static_cast<double>(id) + 1.0, theta));
  t.RecomputeSubtreePopularity();
  return t;
}

TEST(SplitTree, RootAlwaysInGlobalLayer) {
  const NamespaceTree t = SkewedTree();
  const SplitResult r = SplitTree(t, SplitConfig{});
  ASSERT_TRUE(r.feasible);
  ASSERT_FALSE(r.global_layer.empty());
  EXPECT_EQ(r.global_layer.front(), t.root());
}

TEST(SplitTree, UnboundedPromotesEverything) {
  const NamespaceTree t = SkewedTree();
  const SplitResult r = SplitTree(t, SplitConfig{});
  EXPECT_EQ(r.global_layer.size(), t.size());
  EXPECT_DOUBLE_EQ(r.locality_cost, 0.0);
}

TEST(SplitTree, GreedyPromotionOrderIsByPopularity) {
  const NamespaceTree t = SkewedTree();
  SplitConfig cfg;
  cfg.max_global_nodes = 3;  // root + two hottest frontier nodes
  const SplitResult r = SplitTree(t, cfg);
  ASSERT_EQ(r.global_layer.size(), 3u);
  // Frontier after root: /hot (p=100) and /cold (p=5). /hot goes first,
  // then its hottest child /hot/a (p=50) beats /cold (p=5).
  EXPECT_EQ(r.global_layer[1], t.Resolve("/hot"));
  EXPECT_EQ(r.global_layer[2], t.Resolve("/hot/a"));
}

TEST(SplitTree, GlobalLayerIsParentClosed) {
  const NamespaceTree t = RandomPopularTree(4000, 21);
  SplitConfig cfg;
  cfg.max_global_nodes = 123;
  const SplitResult r = SplitTree(t, cfg);
  std::set<NodeId> gl(r.global_layer.begin(), r.global_layer.end());
  for (NodeId id : r.global_layer) {
    if (id == t.root()) continue;
    EXPECT_TRUE(gl.contains(t.node(id).parent))
        << "node " << id << " promoted before its parent";
  }
}

TEST(SplitTree, UpdateBudgetStopsPromotion) {
  const NamespaceTree t = SkewedTree();  // unit update costs
  SplitConfig cfg;
  cfg.update_cost_bound = 2.0;  // first candidate costs 1 (<2), second hits 2
  const SplitResult r = SplitTree(t, cfg);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.global_layer.size(), 2u);  // root + one node
  EXPECT_LT(r.update_cost, cfg.update_cost_bound);
}

TEST(SplitTree, InfeasibleWhenLocalityUnreachableWithinBudget) {
  const NamespaceTree t = SkewedTree();
  SplitConfig cfg;
  cfg.update_cost_bound = 2.0;       // allows only one promotion
  cfg.locality_cost_bound = 1.0;     // but demands nearly everything promoted
  const SplitResult r = SplitTree(t, cfg);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.global_layer.empty());  // Alg. 1 returns {}
}

TEST(SplitTree, LocalityCostMatchesLayerSum) {
  const NamespaceTree t = RandomPopularTree(3000, 33);
  SplitConfig cfg;
  cfg.max_global_nodes = 60;
  const SplitResult r = SplitTree(t, cfg);
  const SplitLayers layers = ExtractLayers(t, r.global_layer);
  double ll_sum = 0.0;
  for (NodeId id = 0; id < t.size(); ++id)
    if (!layers.in_global[id]) ll_sum += t.node(id).subtree_popularity;
  EXPECT_NEAR(r.locality_cost, ll_sum, 1e-6 * std::max(1.0, ll_sum));
}

TEST(SplitTree, MonotoneLocalityCostInGlobalSize) {
  const NamespaceTree t = RandomPopularTree(3000, 35);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t cap : {2u, 8u, 32u, 128u, 512u}) {
    SplitConfig cfg;
    cfg.max_global_nodes = cap;
    const SplitResult r = SplitTree(t, cfg);
    EXPECT_LE(r.locality_cost, prev);
    prev = r.locality_cost;
  }
}

TEST(SplitTreeToProportion, HitsRequestedFraction) {
  const NamespaceTree t = RandomPopularTree(10000, 41);
  for (double f : {0.001, 0.01, 0.1, 0.2}) {
    const SplitResult r = SplitTreeToProportion(t, f);
    ASSERT_TRUE(r.feasible);
    const double got =
        static_cast<double>(r.global_layer.size()) / static_cast<double>(t.size());
    EXPECT_NEAR(got, f, 1.0 / static_cast<double>(t.size()) + 1e-9) << f;
  }
}

TEST(SplitTreeToProportion, ImpliedBoundsGrowWithProportion) {
  // Fig. 8's shape: bigger GL => higher update cost, lower locality cost.
  const NamespaceTree t = RandomPopularTree(8000, 43);
  double prev_update = -1.0, prev_loc = std::numeric_limits<double>::infinity();
  for (double f : {0.001, 0.01, 0.05, 0.2, 0.5}) {
    const SplitResult r = SplitTreeToProportion(t, f);
    EXPECT_GE(r.update_cost, prev_update);
    EXPECT_LE(r.locality_cost, prev_loc);
    prev_update = r.update_cost;
    prev_loc = r.locality_cost;
  }
}

TEST(ExtractLayers, Fig2CutLine) {
  // Reproduce Fig. 2: GL = {root, home, b, var, usr}; inter nodes are home
  // (subtree a), b (g.pdf, h.jpg), var (d, e), usr (f).
  NamespaceTree t;
  t.GetOrCreatePath("/home/a/c.txt", NodeType::kFile);
  t.GetOrCreatePath("/home/b/g.pdf", NodeType::kFile);
  t.GetOrCreatePath("/home/b/h.jpg", NodeType::kFile);
  t.GetOrCreatePath("/var/d", NodeType::kDirectory);
  t.GetOrCreatePath("/var/e", NodeType::kDirectory);
  t.GetOrCreatePath("/usr/f/j.doc", NodeType::kFile);
  t.RecomputeSubtreePopularity();
  const std::vector<NodeId> gl{t.root(), t.Resolve("/home"),
                               t.Resolve("/home/b"), t.Resolve("/var"),
                               t.Resolve("/usr")};
  const SplitLayers layers = ExtractLayers(t, gl);
  EXPECT_EQ(layers.global_layer.size(), 5u);
  EXPECT_EQ(layers.inter_nodes.size(), 4u);
  EXPECT_EQ(layers.subtrees.size(), 6u);  // a, g.pdf, h.jpg, d, e, f

  std::set<std::string> roots;
  for (const Subtree& s : layers.subtrees) roots.insert(t.PathOf(s.root));
  EXPECT_TRUE(roots.contains("/home/a"));
  EXPECT_TRUE(roots.contains("/home/b/g.pdf"));
  EXPECT_TRUE(roots.contains("/usr/f"));
  for (const Subtree& s : layers.subtrees)
    EXPECT_TRUE(layers.in_global[s.inter_parent]);
}

TEST(ExtractLayers, SubtreesPartitionLocalLayer) {
  const NamespaceTree t = RandomPopularTree(5000, 51);
  SplitConfig cfg;
  cfg.max_global_nodes = 50;
  const SplitResult r = SplitTree(t, cfg);
  const SplitLayers layers = ExtractLayers(t, r.global_layer);
  std::vector<int> covered(t.size(), 0);
  for (NodeId id : r.global_layer) ++covered[id];
  std::size_t total_subtree_nodes = 0;
  for (const Subtree& s : layers.subtrees) {
    total_subtree_nodes += s.node_count;
    t.VisitSubtree(s.root, [&](NodeId v) { ++covered[v]; });
  }
  for (NodeId id = 0; id < t.size(); ++id)
    EXPECT_EQ(covered[id], 1) << "node " << id << " covered wrong";
  EXPECT_EQ(total_subtree_nodes + r.global_layer.size(), t.size());
}

TEST(ExtractLayers, SubtreePopularityIsRootTotal) {
  const NamespaceTree t = SkewedTree();
  const std::vector<NodeId> gl{t.root(), t.Resolve("/hot")};
  const SplitLayers layers = ExtractLayers(t, gl);
  for (const Subtree& s : layers.subtrees)
    EXPECT_DOUBLE_EQ(s.popularity, t.node(s.root).subtree_popularity);
}

TEST(ExtractLayers, PopularityRange) {
  const NamespaceTree t = SkewedTree();
  const std::vector<NodeId> gl{t.root()};
  const SplitLayers layers = ExtractLayers(t, gl);
  const auto [lo, hi] = layers.PopularityRange();
  EXPECT_DOUBLE_EQ(lo, 5.0);    // /cold
  EXPECT_DOUBLE_EQ(hi, 100.0);  // /hot
}

TEST(ExtractLayers, SubtreesInDfsOrder) {
  const NamespaceTree t = RandomPopularTree(2000, 61);
  SplitConfig cfg;
  cfg.max_global_nodes = 30;
  const SplitResult r = SplitTree(t, cfg);
  const SplitLayers layers = ExtractLayers(t, r.global_layer);
  const auto pre = t.PreorderNodes();
  std::vector<std::size_t> pos(t.size());
  for (std::size_t i = 0; i < pre.size(); ++i) pos[pre[i]] = i;
  for (std::size_t i = 1; i < layers.subtrees.size(); ++i) {
    EXPECT_LT(pos[layers.subtrees[i - 1].inter_parent],
              pos[layers.subtrees[i].inter_parent] + 1);
  }
}

class SplitProportionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitProportionSweep, FeasibleAndConsistentOnRealisticWorkloads) {
  const double fraction = GetParam();
  const Workload w = GenerateWorkload(LmbeProfile(0.05));
  const SplitResult r = SplitTreeToProportion(w.tree, fraction);
  ASSERT_TRUE(r.feasible);
  const SplitLayers layers = ExtractLayers(w.tree, r.global_layer);
  // Locality cost reported by the split equals the LL popularity sum.
  double ll = 0.0;
  for (NodeId id = 0; id < w.tree.size(); ++id)
    if (!layers.in_global[id]) ll += w.tree.node(id).subtree_popularity;
  EXPECT_NEAR(r.locality_cost, ll, 1e-6 * std::max(1.0, ll));
  // Every subtree root's parent is an inter node in the GL.
  for (const Subtree& s : layers.subtrees) {
    EXPECT_TRUE(layers.in_global[s.inter_parent]);
    EXPECT_FALSE(layers.in_global[s.root]);
  }
}

INSTANTIATE_TEST_SUITE_P(Proportions, SplitProportionSweep,
                         ::testing::Values(0.001, 0.005, 0.01, 0.02, 0.05,
                                           0.1, 0.2));

}  // namespace
}  // namespace d2tree
