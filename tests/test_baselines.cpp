// Tests for the comparison schemes (Sec. II / Sec. VI "Implements"):
// hash mapping, static & dynamic subtree partitioning, DROP, AngleCut.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "d2tree/baselines/anglecut.h"
#include "d2tree/baselines/drop.h"
#include "d2tree/baselines/dynamic_subtree.h"
#include "d2tree/baselines/hash_mapping.h"
#include "d2tree/baselines/registry.h"
#include "d2tree/baselines/static_subtree.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

Workload SmallWorkload() { return GenerateWorkload(LmbeProfile(0.05)); }

TEST(HashPartitioner, EveryNodePlacedNoReplication) {
  Workload w = SmallWorkload();
  HashPartitioner scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(5));
  ASSERT_TRUE(a.Validate(w.tree));
  EXPECT_EQ(a.ReplicatedCount(), 0u);
}

TEST(HashPartitioner, SpreadsNodesEvenly) {
  Workload w = SmallWorkload();
  HashPartitioner scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(4));
  std::vector<std::size_t> counts(4, 0);
  for (NodeId id = 0; id < w.tree.size(); ++id) ++counts[a.OwnerOf(id)];
  const double expect = static_cast<double>(w.tree.size()) / 4.0;
  for (auto c : counts) EXPECT_NEAR(c, expect, expect * 0.1);
}

TEST(HashPartitioner, RebalanceIsStableNoop) {
  Workload w = SmallWorkload();
  HashPartitioner scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  const Assignment a = scheme.Partition(w.tree, cluster);
  const RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
  EXPECT_EQ(r.moved_nodes, 0u);
  EXPECT_EQ(CountMovedNodes(a, r.assignment), 0u);
}

TEST(HashPartitioner, ScalingRehashesMassively) {
  // Sec. II: "the overhead of rehashing metadata when … scaling the cluster
  // is also considerable."
  Workload w = SmallWorkload();
  HashPartitioner scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(4));
  const RebalanceResult r =
      scheme.Rebalance(w.tree, MdsCluster::Homogeneous(5), a);
  EXPECT_GT(r.moved_nodes, w.tree.size() / 2);
}

TEST(HashPartitioner, PoorLocalityVersusStaticSubtree) {
  Workload w = SmallWorkload();
  const MdsCluster cluster = MdsCluster::Homogeneous(8);
  HashPartitioner hash;
  StaticSubtreePartitioner subtree;
  const double hash_cost =
      ComputeLocality(w.tree, hash.Partition(w.tree, cluster)).cost;
  const double subtree_cost =
      ComputeLocality(w.tree, subtree.Partition(w.tree, cluster)).cost;
  // LMBE's tree is shallow (depth <= 9), so the multiple is modest, but
  // hashing must still clearly lose on locality.
  EXPECT_GT(hash_cost, 1.5 * subtree_cost);
}

TEST(StaticSubtree, SubtreesAreIntact) {
  Workload w = SmallWorkload();
  StaticSubtreePartitioner scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(6));
  ASSERT_TRUE(a.Validate(w.tree));
  // Below the partition depth, every node shares its parent's owner.
  for (NodeId id = 1; id < w.tree.size(); ++id) {
    if (w.tree.node(id).depth <= 1) continue;
    EXPECT_EQ(a.OwnerOf(id), a.OwnerOf(w.tree.node(id).parent));
  }
}

TEST(StaticSubtree, AtMostOneJumpFromDepthOneCut) {
  Workload w = SmallWorkload();
  StaticSubtreePartitioner scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(6));
  for (NodeId id = 0; id < w.tree.size(); ++id)
    EXPECT_LE(JumpsFor(w.tree, a, id), 1u);
}

TEST(StaticSubtree, NeverMigrates) {
  Workload w = SmallWorkload();
  StaticSubtreePartitioner scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  Assignment a = scheme.Partition(w.tree, cluster);
  // Skew the load hard; static partitioning must not move anything.
  for (NodeId id = 0; id < w.tree.size(); id += 3) w.tree.AddAccess(id, 50);
  w.tree.RecomputeSubtreePopularity();
  const RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
  EXPECT_EQ(r.moved_nodes, 0u);
}

TEST(StaticSubtree, DeeperCutGivesFinerPieces) {
  Workload w = SmallWorkload();
  StaticSubtreeConfig deep;
  deep.partition_depth = 3;
  StaticSubtreePartitioner coarse, fine(deep);
  const MdsCluster cluster = MdsCluster::Homogeneous(8);
  const auto bal_coarse =
      ComputeBalance(w.tree, coarse.Partition(w.tree, cluster), cluster);
  const auto bal_fine =
      ComputeBalance(w.tree, fine.Partition(w.tree, cluster), cluster);
  // Finer pieces hash more evenly (usually strictly better; allow equality).
  EXPECT_GE(bal_fine.balance, bal_coarse.balance * 0.8);
}

TEST(DynamicSubtree, InitialPartitionValid) {
  Workload w = SmallWorkload();
  DynamicSubtreePartitioner scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(4));
  EXPECT_TRUE(a.Validate(w.tree));
  EXPECT_EQ(a.ReplicatedCount(), 0u);
}

TEST(DynamicSubtree, RebalanceReducesImbalance) {
  Workload w = SmallWorkload();
  DynamicSubtreePartitioner scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  Assignment a = scheme.Partition(w.tree, cluster);
  const double before = ComputeBalance(w.tree, a, cluster).variance_term;
  RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
  const double after =
      ComputeBalance(w.tree, r.assignment, cluster).variance_term;
  EXPECT_LE(after, before * 1.05);
  EXPECT_TRUE(r.assignment.Validate(w.tree));
}

TEST(DynamicSubtree, SplitsHotUnitsForFinerGranularity) {
  // A single scorching directory forces unit splitting.
  NamespaceTree t;
  for (int i = 0; i < 50; ++i)
    t.GetOrCreatePath("/hot/sub" + std::to_string(i) + "/f", NodeType::kFile);
  for (int i = 0; i < 4; ++i)
    t.GetOrCreatePath("/cold" + std::to_string(i) + "/f", NodeType::kFile);
  for (int i = 0; i < 50; ++i)
    t.AddAccess(t.Resolve("/hot/sub" + std::to_string(i) + "/f"), 100);
  t.RecomputeSubtreePopularity();

  DynamicSubtreeConfig cfg;
  cfg.initial_depth = 1;  // /hot is one big unit initially
  DynamicSubtreePartitioner scheme(cfg);
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  Assignment a = scheme.Partition(t, cluster);
  const std::size_t units_before = scheme.unit_count();
  const RebalanceResult r = scheme.Rebalance(t, cluster, a);
  EXPECT_GT(scheme.unit_count(), units_before);
  // After splitting, /hot's children can spread across servers.
  std::set<MdsId> owners;
  for (int i = 0; i < 50; ++i)
    owners.insert(
        r.assignment.OwnerOf(t.Resolve("/hot/sub" + std::to_string(i))));
  EXPECT_GT(owners.size(), 1u);
}

TEST(DynamicSubtree, MigrationCostIsNonTrivial) {
  // The thrashing-prone behaviour: rebalancing moves real amounts of
  // metadata (unlike D2-Tree which only moves whole cold units on demand).
  Workload w = SmallWorkload();
  DynamicSubtreePartitioner scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(8);
  Assignment a = scheme.Partition(w.tree, cluster);
  // Heat up everything currently on MDS 0 so a migration is unavoidable.
  for (NodeId id = 0; id < w.tree.size(); ++id)
    if (a.OwnerOf(id) == 0)
      w.tree.AddAccess(id, 5.0 * (w.tree.node(id).individual_popularity + 1));
  w.tree.RecomputeSubtreePopularity();
  std::size_t total_moved = 0;
  for (int round = 0; round < 3; ++round) {
    RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
    total_moved += r.moved_nodes;
    a = r.assignment;
  }
  EXPECT_GT(total_moved, 0u);
}

TEST(Drop, KeysAreLocalityPreserving) {
  Workload w = SmallWorkload();
  const auto keys = DropPartitioner::LocalityPreservingKeys(w.tree);
  // Every subtree occupies a contiguous key interval: check per directory
  // that descendant keys fall inside [key(dir), key(dir) + size/N).
  const double n = static_cast<double>(w.tree.size());
  for (NodeId id = 0; id < w.tree.size(); id += 37) {
    const double lo = keys[id];
    const double hi = lo + static_cast<double>(w.tree.SubtreeSize(id)) / n;
    w.tree.VisitSubtree(id, [&](NodeId v) {
      EXPECT_GE(keys[v], lo - 1e-12);
      EXPECT_LT(keys[v], hi + 1e-12);
    });
  }
}

TEST(Drop, InitialRangesFollowCapacity) {
  Workload w = SmallWorkload();
  DropPartitioner scheme;
  const MdsCluster cluster{std::vector<double>{3.0, 1.0}};
  const Assignment a = scheme.Partition(w.tree, cluster);
  std::vector<std::size_t> counts(2, 0);
  for (NodeId id = 0; id < w.tree.size(); ++id) ++counts[a.OwnerOf(id)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(w.tree.size()),
              0.75, 0.02);
}

TEST(Drop, HdlbRebalanceEqualizesLoad) {
  Workload w = SmallWorkload();
  DropPartitioner scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(6);
  Assignment a = scheme.Partition(w.tree, cluster);
  const double before = ComputeBalance(w.tree, a, cluster).variance_term;
  const RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
  const double after =
      ComputeBalance(w.tree, r.assignment, cluster).variance_term;
  EXPECT_LT(after, before);
  EXPECT_TRUE(r.assignment.Validate(w.tree));
}

TEST(Drop, ContiguousOwnershipAlongKeys) {
  Workload w = SmallWorkload();
  DropPartitioner scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(5);
  Assignment a = scheme.Partition(w.tree, cluster);
  (void)scheme.Rebalance(w.tree, cluster, a);
  const auto keys = DropPartitioner::LocalityPreservingKeys(w.tree);
  // Sort nodes by key; owners must be non-decreasing (contiguous ranges).
  std::vector<NodeId> order(w.tree.size());
  for (NodeId id = 0; id < w.tree.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(),
            [&](NodeId x, NodeId y) { return keys[x] < keys[y]; });
  const Assignment b = scheme.Rebalance(w.tree, cluster, a).assignment;
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(b.OwnerOf(order[i - 1]), b.OwnerOf(order[i]));
}

TEST(AngleCut, AnglesNestedWithinParentArc) {
  Workload w = SmallWorkload();
  const auto angles = AngleCutPartitioner::ProjectAngles(w.tree);
  for (NodeId id = 1; id < w.tree.size(); id += 11) {
    const NodeId parent = w.tree.node(id).parent;
    EXPECT_GE(angles[id], angles[parent] - 1e-12);
  }
}

TEST(AngleCut, PartitionValidAndRebalanceBalances) {
  Workload w = SmallWorkload();
  AngleCutPartitioner scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(6);
  Assignment a = scheme.Partition(w.tree, cluster);
  ASSERT_TRUE(a.Validate(w.tree));
  const double before = ComputeBalance(w.tree, a, cluster).variance_term;
  const RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
  const double after =
      ComputeBalance(w.tree, r.assignment, cluster).variance_term;
  EXPECT_LT(after, before * 1.01);
}

TEST(AngleCut, MultiRingRotationHurtsLocality) {
  // With rings rotated, ancestors land on different MDSs → locality cost
  // exceeds DROP's single-ring linearization.
  Workload w = SmallWorkload();
  const MdsCluster cluster = MdsCluster::Homogeneous(16);
  AngleCutPartitioner angle;
  DropPartitioner drop;
  Assignment aa = angle.Partition(w.tree, cluster);
  Assignment dd = drop.Partition(w.tree, cluster);
  aa = angle.Rebalance(w.tree, cluster, aa).assignment;
  dd = drop.Rebalance(w.tree, cluster, dd).assignment;
  EXPECT_GT(ComputeLocality(w.tree, aa).cost,
            ComputeLocality(w.tree, dd).cost * 0.8);
}

TEST(Registry, CreatesAllSchemes) {
  for (const auto& id : AllSchemeIds()) {
    const auto scheme = MakeScheme(id);
    ASSERT_NE(scheme, nullptr) << id;
    EXPECT_FALSE(scheme->name().empty());
  }
  EXPECT_THROW(MakeScheme("nope"), std::invalid_argument);
}

TEST(Registry, PaperSchemesAreFive) {
  EXPECT_EQ(PaperSchemeIds().size(), 5u);
}

class AllSchemesSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSchemesSweep, ProducesValidAssignmentAcrossClusterSizes) {
  Workload w = SmallWorkload();
  for (std::size_t m : {2u, 5u, 16u}) {
    const auto scheme = MakeScheme(GetParam());
    const MdsCluster cluster = MdsCluster::Homogeneous(m);
    const Assignment a = scheme->Partition(w.tree, cluster);
    ASSERT_TRUE(a.Validate(w.tree)) << GetParam() << " M=" << m;
    // Most MDS ids must actually be used at reasonable cluster sizes
    // (hash placement can leave a couple of servers empty by chance).
    std::set<MdsId> used;
    for (NodeId id = 0; id < w.tree.size(); ++id)
      if (!a.IsReplicated(id)) used.insert(a.OwnerOf(id));
    EXPECT_GE(used.size(), (3 * m) / 4) << GetParam() << " M=" << m;
  }
}

TEST_P(AllSchemesSweep, RebalanceKeepsAssignmentValid) {
  Workload w = SmallWorkload();
  const auto scheme = MakeScheme(GetParam());
  const MdsCluster cluster = MdsCluster::Homogeneous(6);
  Assignment a = scheme->Partition(w.tree, cluster);
  for (int round = 0; round < 3; ++round) {
    const RebalanceResult r = scheme->Rebalance(w.tree, cluster, a);
    ASSERT_TRUE(r.assignment.Validate(w.tree)) << GetParam();
    a = r.assignment;
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemesSweep,
                         ::testing::Values("d2tree", "static-subtree",
                                           "dynamic-subtree", "drop",
                                           "anglecut", "hash"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

}  // namespace
}  // namespace d2tree
