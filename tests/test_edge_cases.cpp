// Edge cases and property sweeps across modules: degenerate trees, zero
// popularity, extreme global-layer fractions, single-subtree pools,
// heterogeneous capacity sweeps, and cross-module invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "d2tree/baselines/registry.h"
#include "d2tree/core/d2tree.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

TEST(EdgeSplit, RootOnlyTree) {
  NamespaceTree t;  // just "/"
  t.RecomputeSubtreePopularity();
  const SplitResult r = SplitTree(t, SplitConfig{});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.global_layer.size(), 1u);
  EXPECT_DOUBLE_EQ(r.locality_cost, 0.0);
  const SplitLayers layers = ExtractLayers(t, r.global_layer);
  EXPECT_TRUE(layers.subtrees.empty());
  EXPECT_TRUE(layers.inter_nodes.empty());
}

TEST(EdgeSplit, ZeroPopularityTreeStillSplits) {
  NamespaceTree t;
  for (int i = 0; i < 50; ++i)
    t.GetOrCreatePath("/d/" + std::to_string(i), NodeType::kFile);
  t.RecomputeSubtreePopularity();  // all zero
  const SplitResult r = SplitTreeToProportion(t, 0.1);
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.global_layer.size(), 1u);
  const SplitLayers layers = ExtractLayers(t, r.global_layer);
  // Coverage invariant holds even without popularity.
  std::size_t covered = r.global_layer.size();
  for (const Subtree& s : layers.subtrees) covered += s.node_count;
  EXPECT_EQ(covered, t.size());
}

TEST(EdgeSplit, ChainTree) {
  // Pathological chain /a/a/a/... — every GL node except the last is an
  // inter node with exactly one subtree... actually exactly the deepest
  // GL node has one subtree below it.
  NamespaceTree t;
  std::string path;
  for (int i = 0; i < 40; ++i) {
    path += "/a";
    t.GetOrCreatePath(path, NodeType::kDirectory);
  }
  t.AddAccess(t.Resolve(path), 10);
  t.RecomputeSubtreePopularity();
  SplitConfig cfg;
  cfg.max_global_nodes = 10;
  const SplitResult r = SplitTree(t, cfg);
  const SplitLayers layers = ExtractLayers(t, r.global_layer);
  ASSERT_EQ(layers.subtrees.size(), 1u);
  EXPECT_EQ(layers.inter_nodes.size(), 1u);
  EXPECT_EQ(layers.subtrees[0].node_count, t.size() - 10);
}

TEST(EdgeScheme, SingleMds) {
  Workload w = GenerateWorkload(LmbeProfile(0.02));
  D2TreeScheme scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(1);
  const Assignment a = scheme.Partition(w.tree, cluster);
  ASSERT_TRUE(a.Validate(w.tree, true));
  // Everything is reachable with zero or one jump; locality cost is the
  // Eq. (7) sum but there is only one server to jump to.
  for (NodeId id = 0; id < w.tree.size(); id += 97)
    EXPECT_LE(JumpsFor(w.tree, a, id), 1u);
}

TEST(EdgeScheme, GlobalFractionNearlyOne) {
  Workload w = GenerateWorkload(LmbeProfile(0.02));
  D2TreeConfig cfg;
  cfg.global_fraction = 0.999;
  D2TreeScheme scheme(cfg);
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(4));
  ASSERT_TRUE(a.Validate(w.tree, true));
  // Nearly everything replicated: locality cost collapses.
  const LocalityReport loc = ComputeLocality(w.tree, a);
  EXPECT_LT(loc.cost, w.tree.node(w.tree.root()).subtree_popularity * 0.1);
}

TEST(EdgeScheme, MoreMdsThanSubtrees) {
  // Tiny namespace, big cluster: some servers stay empty but the
  // assignment must remain valid and balanced over the subtree count.
  NamespaceTree t;
  for (int i = 0; i < 6; ++i)
    t.GetOrCreatePath("/d" + std::to_string(i) + "/f", NodeType::kFile);
  for (int i = 0; i < 6; ++i)
    t.AddAccess(t.Resolve("/d" + std::to_string(i) + "/f"), 1 + i);
  t.RecomputeSubtreePopularity();
  D2TreeConfig cfg;
  cfg.global_fraction = 0.05;  // just the root
  D2TreeScheme scheme(cfg);
  const Assignment a = scheme.Partition(t, MdsCluster::Homogeneous(32));
  EXPECT_TRUE(a.Validate(t, true));
}

TEST(EdgeMonitor, EmptySubtreeList) {
  Monitor mon;
  const auto plan = mon.PlanAdjustment({}, {}, {0.0, 0.0},
                                       MdsCluster::Homogeneous(2));
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(mon.last_pool_size(), 0u);
}

TEST(EdgeMetrics, EmptyPopularityLocalityInfinite) {
  NamespaceTree t;
  t.GetOrCreatePath("/a/b", NodeType::kFile);
  t.RecomputeSubtreePopularity();
  Assignment a;
  a.mds_count = 2;
  a.owner = {0, 1, 0};
  const LocalityReport r = ComputeLocality(t, a);
  EXPECT_TRUE(std::isinf(r.locality));
}

class HeterogeneousCapacitySweep
    : public ::testing::TestWithParam<double> {};

TEST_P(HeterogeneousCapacitySweep, MirrorDivisionTracksCapacityRatio) {
  const double ratio = GetParam();  // capacity of server 0 vs the others
  Workload w = GenerateWorkload(RaProfile(0.02));
  MdsCluster cluster = MdsCluster::Homogeneous(4);
  cluster.capacities[0] = ratio;
  D2TreeScheme scheme;
  Assignment a = scheme.Partition(w.tree, cluster);
  for (int round = 0; round < 5; ++round)
    a = scheme.Rebalance(w.tree, cluster, a).assignment;
  const auto loads = ComputeLoads(w.tree, a);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  const double expected = ratio / (ratio + 3.0);
  EXPECT_NEAR(loads[0] / total, expected, 0.10 + expected * 0.25)
      << "ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(Ratios, HeterogeneousCapacitySweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "x" + std::to_string(
                                            static_cast<int>(info.param * 10));
                         });

class SchemeClusterGrowthSweep
    : public ::testing::TestWithParam<std::string> {};

TEST_P(SchemeClusterGrowthSweep, SurvivesGrowAndShrink) {
  Workload w = GenerateWorkload(LmbeProfile(0.03));
  const auto scheme = MakeScheme(GetParam());
  Assignment a = scheme->Partition(w.tree, MdsCluster::Homogeneous(4));
  // Grow to 8, shrink to 3; placement must stay valid throughout.
  for (std::size_t m : {8u, 3u}) {
    const MdsCluster cluster = MdsCluster::Homogeneous(m);
    a = scheme->Rebalance(w.tree, cluster, a).assignment;
    ASSERT_TRUE(a.Validate(w.tree)) << GetParam() << " M=" << m;
    EXPECT_EQ(a.mds_count, m) << GetParam();
    for (NodeId id = 0; id < w.tree.size(); ++id) {
      if (a.IsReplicated(id)) continue;
      ASSERT_LT(a.OwnerOf(id), static_cast<MdsId>(m))
          << GetParam() << " node beyond cluster after shrink";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeClusterGrowthSweep,
                         ::testing::Values("d2tree", "dynamic-subtree",
                                           "drop", "anglecut", "hash"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(EdgeWorkload, TinyScaleStillSatisfiesInvariants) {
  // Scale 0.005 gives a few hundred nodes; everything must still hold.
  const Workload w = GenerateWorkload(LmbeProfile(0.005));
  EXPECT_GT(w.tree.size(), 100u);
  D2TreeScheme scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(3));
  EXPECT_TRUE(a.Validate(w.tree, true));
  for (NodeId id = 0; id < w.tree.size(); ++id)
    EXPECT_LE(JumpsFor(w.tree, a, id), 1u);
}

TEST(EdgeWorkload, UpdateCostEqualsGlSizeWithUnitCosts) {
  // Default update cost is 1 per node, so Def. 4 reduces to |GL|.
  const Workload w = GenerateWorkload(DtrProfile(0.02));
  D2TreeScheme scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(4));
  EXPECT_DOUBLE_EQ(ComputeUpdateCost(w.tree, a),
                   static_cast<double>(a.ReplicatedCount()));
}

}  // namespace
}  // namespace d2tree
