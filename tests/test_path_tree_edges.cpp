// Edge cases for the path helpers and the namespace tree that the
// trace parsers and the functional cluster lean on: root path, trailing
// slashes, repeated separators, a single-node tree, and a global layer
// that swallows the entire namespace (no inter nodes, no subtrees).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "d2tree/common/path_util.h"
#include "d2tree/core/layers.h"
#include "d2tree/core/splitter.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/nstree/tree.h"

namespace d2tree {
namespace {

TEST(PathEdge, RootForms) {
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("//").empty());
  EXPECT_TRUE(SplitPath("///").empty());
  EXPECT_EQ(PathDepth("///"), 0u);
  EXPECT_EQ(ParentPath("//"), "/");
  EXPECT_EQ(BaseName("//"), "");
  EXPECT_TRUE(IsPathPrefix("/", "/"));
}

TEST(PathEdge, TrailingSlashes) {
  EXPECT_EQ(JoinPath(SplitPath("/a/b/")), "/a/b");
  EXPECT_EQ(ParentPath("/a/b/"), "/a");
  EXPECT_EQ(ParentPath("/a///"), "/");
  EXPECT_EQ(BaseName("/a/b///"), "b");
  EXPECT_EQ(PathDepth("/a/b/"), 2u);
}

TEST(PathEdge, RepeatedSeparators) {
  const auto parts = SplitPath("//a///b////c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(JoinPath(parts), "/a/b/c");
  EXPECT_EQ(PathDepth("//a//b//"), 2u);
}

TEST(PathEdge, PrefixWithMessySeparatorsIsLiteral) {
  // IsPathPrefix is a literal canonical-path comparison; callers pass
  // canonical paths (PathOf output). Document the contract at the edges.
  EXPECT_TRUE(IsPathPrefix("/a", "/a/b"));
  EXPECT_FALSE(IsPathPrefix("/a/", "/a/b"));  // non-canonical prefix
  // A trailing slash on the *path* is tolerated: the component boundary
  // after the prefix is still a '/'.
  EXPECT_TRUE(IsPathPrefix("/a/b", "/a/b/"));
}

TEST(TreeEdge, ResolveNormalizesSeparators) {
  NamespaceTree t;
  const NodeId b = t.GetOrCreatePath("/a/b", NodeType::kFile);
  EXPECT_EQ(t.Resolve("/a/b/"), b);
  EXPECT_EQ(t.Resolve("//a//b"), b);
  EXPECT_EQ(t.Resolve("a/b"), b);  // relative form walks from the root
  EXPECT_EQ(t.Resolve("/"), t.root());
  EXPECT_EQ(t.Resolve(""), t.root());
  EXPECT_EQ(t.Resolve("///"), t.root());
  EXPECT_EQ(t.Resolve("/a/b/c"), kInvalidNode);
  EXPECT_EQ(t.Resolve("/a//"), t.Resolve("/a"));
}

TEST(TreeEdge, GetOrCreateWithMessyPathCreatesCanonicalNodes) {
  NamespaceTree t;
  const NodeId c = t.GetOrCreatePath("//x///y/z//", NodeType::kFile);
  EXPECT_EQ(t.PathOf(c), "/x/y/z");
  EXPECT_EQ(t.size(), 4u);  // root + x + y + z, no empty components
  // Re-creating through a differently-noisy spelling must not duplicate.
  EXPECT_EQ(t.GetOrCreatePath("/x/y/z", NodeType::kFile), c);
  EXPECT_EQ(t.size(), 4u);
}

TEST(TreeEdge, SingleNodeTree) {
  NamespaceTree t;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.PathOf(t.root()), "/");
  EXPECT_TRUE(t.AncestorsOf(t.root()).empty());
  EXPECT_EQ(t.SubtreeSize(t.root()), 1u);
  EXPECT_EQ(t.MaxDepth(), 0u);
  ASSERT_EQ(t.PreorderNodes().size(), 1u);
  EXPECT_EQ(t.PreorderNodes()[0], t.root());

  t.AddAccess(t.root(), 3.0);
  t.RecomputeSubtreePopularity();
  EXPECT_DOUBLE_EQ(t.TotalIndividualPopularity(), 3.0);

  // Text snapshot round-trips the degenerate tree.
  std::stringstream ss;
  t.Save(ss);
  const NamespaceTree back = NamespaceTree::Load(ss);
  EXPECT_EQ(back.size(), 1u);
  EXPECT_EQ(back.PathOf(back.root()), "/");
}

// A global layer that swallows the whole namespace: unbounded budgets make
// Alg. 1 promote every node, so there are no inter nodes and no subtrees,
// and the functional cluster runs fully replicated.
TEST(TreeEdge, GlSwallowsWholeTree) {
  NamespaceTree t;
  for (int i = 0; i < 6; ++i)
    t.GetOrCreatePath("/d" + std::to_string(i) + "/f", NodeType::kFile);
  t.AddAccess(t.Resolve("/d0/f"), 5.0);
  t.RecomputeSubtreePopularity();

  const SplitResult split = SplitTree(t, SplitConfig{});  // no bounds
  ASSERT_TRUE(split.feasible);
  EXPECT_EQ(split.global_layer.size(), t.size());
  EXPECT_DOUBLE_EQ(split.locality_cost, 0.0);

  const SplitLayers layers = ExtractLayers(t, split.global_layer);
  EXPECT_TRUE(layers.subtrees.empty());
  EXPECT_TRUE(layers.inter_nodes.empty());
  for (NodeId id = 0; id < t.size(); ++id) EXPECT_TRUE(layers.in_global[id]);
}

TEST(TreeEdge, FullyReplicatedClusterServesAndAudits) {
  NamespaceTree t;
  for (int i = 0; i < 8; ++i)
    t.GetOrCreatePath("/d/" + std::to_string(i), NodeType::kFile);
  t.AddAccess(t.Resolve("/d/0"), 2.0);
  t.RecomputeSubtreePopularity();

  D2TreeConfig cfg;
  cfg.explicit_bounds = SplitConfig{};  // unbounded: whole tree goes GL
  FunctionalCluster cluster(t, 3, cfg);
  EXPECT_EQ(cluster.assignment().ReplicatedCount(), t.size());

  // Every server can answer every path directly — no forwarding ever.
  for (NodeId id = 0; id < t.size(); ++id) {
    for (MdsId via = 0; via < 3; ++via) {
      const auto r = cluster.StatVia(t.PathOf(id), via);
      EXPECT_EQ(r.status, MdsStatus::kOk);
      EXPECT_EQ(r.hops, 1);
      EXPECT_EQ(r.served_by, via);
    }
  }
  EXPECT_EQ(cluster.total_forwards(), 0u);

  // Every update is a GL broadcast; adjustment has nothing to move.
  const auto r = cluster.Update("/d/3", 42);
  EXPECT_EQ(r.status, MdsStatus::kOk);
  EXPECT_EQ(cluster.gl_updates(), 1u);
  EXPECT_EQ(cluster.RunAdjustmentRound(), 0u);

  std::string error;
  EXPECT_TRUE(cluster.CheckConsistency(&error)) << error;
}

}  // namespace
}  // namespace d2tree
