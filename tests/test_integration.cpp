// Integration tests: the paper's figure-level claims asserted end-to-end
// at test scale (small workloads, fewer rounds — the same code paths the
// bench binaries exercise at full scale).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "d2tree/common/histogram.h"
#include "d2tree/baselines/registry.h"
#include "d2tree/core/d2tree.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/sim/experiment.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

/// One shared workload per dataset (generation is the expensive part).
const Workload& Dataset(const std::string& name) {
  static std::map<std::string, Workload> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    TraceProfile p = name == "DTR"    ? DtrProfile(0.1)
                     : name == "LMBE" ? LmbeProfile(0.1)
                                      : RaProfile(0.05);
    it = cache.emplace(name, GenerateWorkload(p)).first;
  }
  return it->second;
}

SchemeRunResult RunExp(const std::string& scheme, const std::string& dataset,
                    std::size_t m, bool with_sim = true) {
  ExperimentOptions opt;
  opt.adjustment_rounds = 5;
  opt.run_throughput_sim = with_sim;
  opt.sim.max_ops = 15'000;
  return RunSchemeExperiment(scheme, Dataset(dataset), m, opt);
}

TEST(Fig5Shape, D2TreeBeatsAllBaselinesOnEveryDataset) {
  for (const char* ds : {"DTR", "LMBE", "RA"}) {
    const double d2 = RunExp("d2tree", ds, 10).throughput;
    for (const char* base :
         {"static-subtree", "dynamic-subtree", "drop", "anglecut"}) {
      EXPECT_GT(d2, RunExp(base, ds, 10).throughput * 0.99)
          << ds << " vs " << base;
    }
  }
}

TEST(Fig5Shape, D2TreeThroughputScalesWithClusterOnDtr) {
  // "the performance of D2-Tree improves as the MDS cluster is scaled"
  const double t5 = RunExp("d2tree", "DTR", 5).throughput;
  const double t20 = RunExp("d2tree", "DTR", 20).throughput;
  EXPECT_GT(t20, 2.0 * t5);
}

TEST(Fig5Shape, AngleCutThroughputIsWorst) {
  for (const char* ds : {"DTR", "LMBE"}) {
    const double angle = RunExp("anglecut", ds, 10).throughput;
    for (const char* other : {"d2tree", "static-subtree", "drop"}) {
      EXPECT_LT(angle, RunExp(other, ds, 10).throughput) << ds << " " << other;
    }
  }
}

TEST(Fig5Shape, RaUpdatesDepressD2TreeScaling) {
  // RA (16% updates, GL-locked) must scale worse than LMBE (0.015%).
  const double ra = RunExp("d2tree", "RA", 20).throughput /
                    RunExp("d2tree", "RA", 5).throughput;
  const double lmbe = RunExp("d2tree", "LMBE", 20).throughput /
                      RunExp("d2tree", "LMBE", 5).throughput;
  EXPECT_LT(ra, lmbe);
}

TEST(Fig6Shape, D2TreeAndStaticLocalityFlatInClusterSize) {
  for (const char* scheme : {"d2tree", "static-subtree"}) {
    const double l5 = RunExp(scheme, "LMBE", 5, false).locality;
    const double l30 = RunExp(scheme, "LMBE", 30, false).locality;
    EXPECT_NEAR(l30 / l5, 1.0, 0.15) << scheme;
  }
}

TEST(Fig6Shape, HashFamilyLocalityDegradesWithClusterSize) {
  for (const char* scheme : {"drop", "dynamic-subtree"}) {
    const double l5 = RunExp(scheme, "DTR", 5, false).locality;
    const double l30 = RunExp(scheme, "DTR", 30, false).locality;
    EXPECT_LT(l30, l5) << scheme;
  }
}

TEST(Fig6Shape, D2TreeLocalityBestAndAngleCutWorst) {
  for (const char* ds : {"DTR", "LMBE", "RA"}) {
    const double d2 = RunExp("d2tree", ds, 15, false).locality;
    const double angle = RunExp("anglecut", ds, 15, false).locality;
    for (const char* other :
         {"static-subtree", "dynamic-subtree", "drop", "anglecut"}) {
      EXPECT_GT(d2, RunExp(other, ds, 15, false).locality) << ds << " " << other;
    }
    for (const char* other : {"static-subtree", "d2tree", "drop"}) {
      EXPECT_LT(angle, RunExp(other, ds, 15, false).locality) << ds << " " << other;
    }
  }
}

TEST(Fig7Shape, ReplicationAndHashingBeatSubtreeSchemesOnBalance) {
  for (const char* ds : {"LMBE", "RA"}) {
    const double d2 = RunExp("d2tree", ds, 10, false).balance;
    const double drop = RunExp("drop", ds, 10, false).balance;
    const double dynamic = RunExp("dynamic-subtree", ds, 10, false).balance;
    const double stat = RunExp("static-subtree", ds, 10, false).balance;
    EXPECT_GT(d2, dynamic) << ds;       // "D2-Tree better than dynamic"
    EXPECT_GT(drop, dynamic * 0.9) << ds;
    EXPECT_GT(dynamic, stat) << ds;     // static is the floor
  }
}

TEST(Fig8Shape, ConstraintsMonotoneInGlobalProportion) {
  const Workload& w = Dataset("DTR");
  double prev_cost = 1e300, prev_update = -1;
  for (double f : {0.001, 0.01, 0.1, 0.2}) {
    const SplitResult r = SplitTreeToProportion(w.tree, f);
    EXPECT_LE(r.locality_cost, prev_cost);
    EXPECT_GE(r.update_cost, prev_update);
    prev_cost = r.locality_cost;
    prev_update = r.update_cost;
  }
}

TEST(Fig9Shape, BalanceImprovesWithGlobalLayerProportion) {
  const Workload& w = Dataset("DTR");
  const MdsCluster cluster = MdsCluster::Homogeneous(10);
  double small = 0, large = 0;
  for (double f : {0.001, 0.2}) {
    D2TreeConfig cfg;
    cfg.global_fraction = f;
    D2TreeScheme scheme(cfg);
    Assignment a = scheme.Partition(w.tree, cluster);
    for (int round = 0; round < 5; ++round)
      a = scheme.Rebalance(w.tree, cluster, a).assignment;
    (f < 0.01 ? small : large) = ComputeBalance(w.tree, a, cluster).balance;
  }
  EXPECT_GT(large, small);
}

TEST(MovementCost, D2TreeMovesLessThanDynamicSubtreeUnderChurn) {
  // Sec. II's thrashing claim: dynamic subtree migrates large volumes;
  // D2-Tree only moves whole subtrees out of the pending pool.
  const std::string ds = "RA";
  ExperimentOptions opt;
  opt.adjustment_rounds = 8;
  opt.run_throughput_sim = false;
  const auto d2 = RunSchemeExperiment("d2tree", Dataset(ds), 12, opt);
  const auto dyn = RunSchemeExperiment("dynamic-subtree", Dataset(ds), 12, opt);
  EXPECT_LT(d2.moved_nodes_total, dyn.moved_nodes_total + 1);
}

TEST(WeightedQuantile, SplitsMassProportionally) {
  // 100 items of weight 1 at keys 0.005, 0.015, ...
  std::vector<double> keys(100), weights(100, 1.0);
  for (int i = 0; i < 100; ++i) keys[i] = 0.005 + 0.01 * i;
  const std::vector<double> shares{0.25, 0.5, 1.0};
  const auto bounds = WeightedQuantileBoundaries(keys, weights, shares);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_NEAR(bounds[0], 0.25, 0.011);
  EXPECT_NEAR(bounds[1], 0.50, 0.011);
  EXPECT_DOUBLE_EQ(bounds[2], 1.0);
}

TEST(WeightedQuantile, HeavyItemGoesToOneSide) {
  // One item holds 90% of the mass; the first boundary must sit right
  // before or after it, never split it.
  std::vector<double> keys{0.1, 0.5, 0.9};
  std::vector<double> weights{0.05, 0.9, 0.05};
  const std::vector<double> shares{0.5, 1.0};
  const auto bounds = WeightedQuantileBoundaries(keys, weights, shares);
  // Closest achievable to 50% is either 5% (cut before) or 95% (after);
  // the midpoint rule places the boundary between items.
  EXPECT_TRUE(std::abs(bounds[0] - 0.3) < 1e-9 ||
              std::abs(bounds[0] - 0.7) < 1e-9)
      << bounds[0];
}

TEST(Heterogeneous, LoadsFollowCapacitiesUnderD2Tree) {
  // The Sec. III formalism allows per-server capacities C_k; the mirror
  // division must load servers proportionally.
  const Workload& w = Dataset("LMBE");
  const MdsCluster cluster{std::vector<double>{1.0, 2.0, 4.0, 1.0}};
  D2TreeScheme scheme;
  Assignment a = scheme.Partition(w.tree, cluster);
  for (int round = 0; round < 5; ++round)
    a = scheme.Rebalance(w.tree, cluster, a).assignment;
  const auto loads = ComputeLoads(w.tree, a);
  double total = 0.0;
  for (double l : loads) total += l;
  EXPECT_NEAR(loads[2] / total, 0.5, 0.08);   // the big server carries half
  EXPECT_NEAR(loads[0] / total, 0.125, 0.05);
}

TEST(Heterogeneous, DropRangesFollowCapacities) {
  const Workload& w = Dataset("LMBE");
  const MdsCluster cluster{std::vector<double>{3.0, 1.0}};
  const auto scheme = MakeScheme("drop");
  Assignment a = scheme->Partition(w.tree, cluster);
  a = scheme->Rebalance(w.tree, cluster, a).assignment;
  const auto loads = ComputeLoads(w.tree, a);
  EXPECT_NEAR(loads[0] / (loads[0] + loads[1]), 0.75, 0.05);
}

TEST(EndToEnd, FullPipelineAllDatasetsAllSchemes) {
  for (const char* ds : {"DTR", "LMBE", "RA"}) {
    for (const char* scheme :
         {"d2tree", "static-subtree", "dynamic-subtree", "drop", "anglecut"}) {
      ExperimentOptions opt;
      opt.adjustment_rounds = 2;
      opt.sim.max_ops = 4'000;
      const SchemeRunResult r = RunSchemeExperiment(scheme, Dataset(ds), 6, opt);
      EXPECT_GT(r.throughput, 1000.0) << ds << "/" << scheme;
      EXPECT_GT(r.balance, 0.0) << ds << "/" << scheme;
      EXPECT_GT(r.locality, 0.0) << ds << "/" << scheme;
    }
  }
}

}  // namespace
}  // namespace d2tree
