// Statistical validation of the random-walk sampling that feeds the
// sampled mirror division (Sec. IV-B, Thm. 2): the empirical CDF of a
// sampled pool must stay within the Dvoretzky–Kiefer–Wolfowitz epsilon of
// the full-pool CDF at the configured confidence level. All trials are
// deterministic in their seeds, so these tests cannot flake; the allowed
// violation counts come from the DKW failure probability itself.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "d2tree/common/dkw.h"
#include "d2tree/common/histogram.h"
#include "d2tree/common/random_walk.h"
#include "d2tree/common/rng.h"

namespace d2tree {
namespace {

constexpr std::size_t kPoolSize = 400;
constexpr double kFailProb = 1e-3;  // per-trial DKW confidence: 1 - 10^-3

/// The DKW epsilon for k samples at failure probability p:
/// 2 exp(-2 k eps^2) = p  =>  eps = sqrt(ln(2/p) / (2k)).
double DkwEpsilon(std::size_t k, double p) {
  return std::sqrt(std::log(2.0 / p) / (2.0 * static_cast<double>(k)));
}

/// A pending pool of subtree popularity values: exponential with a heavy
/// right tail, like the skew the profiles produce. Deterministic in seed.
std::vector<double> MakePool(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pool;
  pool.reserve(kPoolSize);
  for (std::size_t i = 0; i < kPoolSize; ++i)
    pool.push_back(rng.NextExponential(10.0));
  return pool;
}

std::vector<double> ValuesAt(const std::vector<double>& pool,
                             const std::vector<std::size_t>& idx) {
  std::vector<double> v;
  v.reserve(idx.size());
  for (std::size_t i : idx) v.push_back(pool[i]);
  return v;
}

// MH walk on the complete graph: every step is a uniform jump, so the
// samples are iid uniform over the pool and the DKW bound applies exactly.
// This is the indexable-pool case the Monitor actually runs.
TEST(RandomWalkDkw, CompleteGraphSamplesWithinEpsilon) {
  const std::vector<double> pool = MakePool(0xD0D0);
  const EmpiricalCdf full(pool);
  const std::size_t k = DkwSampleCountFor(DkwEpsilon(200, kFailProb), kFailProb);
  ASSERT_GE(k, 190u);  // sanity: inversion is consistent
  const double eps = DkwEpsilon(k, kFailProb);

  const RandomWalkSampler sampler(
      kPoolSize, [](std::size_t) { return kPoolSize - 1; },
      [](std::size_t v, std::size_t i) { return i < v ? i : i + 1; });

  constexpr int kTrialCount = 20;
  int violations = 0;
  for (int trial = 0; trial < kTrialCount; ++trial) {
    Rng rng(0xAB5000 + trial);
    const auto idx = sampler.Sample(rng, k, /*burn_in=*/8, /*thin=*/1);
    ASSERT_EQ(idx.size(), k);
    const EmpiricalCdf sampled(ValuesAt(pool, idx));
    if (sampled.KsDistance(full) > eps) ++violations;
  }
  // Per-trial failure probability is 1e-3; over 20 deterministic trials
  // even one violation would already be a 50x exceedance.
  EXPECT_LE(violations, 1);
}

// MH walk on a hypercube (degree log2 n, diameter log2 n): rapid mixing,
// but consecutive samples are only approximately independent, so the
// epsilon carries a slack factor. This exercises the sampler on a sparse
// neighbor structure like a real distributed pending pool would have.
TEST(RandomWalkDkw, HypercubeWalkTracksFullPoolCdf) {
  constexpr std::size_t kDim = 9;  // 512 vertices
  constexpr std::size_t kVertices = 1u << kDim;
  Rng pool_rng(0xCAFE);
  std::vector<double> pool;
  pool.reserve(kVertices);
  for (std::size_t i = 0; i < kVertices; ++i)
    pool.push_back(pool_rng.NextExponential(10.0));
  const EmpiricalCdf full(pool);

  const RandomWalkSampler sampler(
      kVertices, [](std::size_t) { return kDim; },
      [](std::size_t v, std::size_t i) { return v ^ (1u << i); });

  constexpr std::size_t kSamples = 256;
  const double eps = 1.5 * DkwEpsilon(kSamples, kFailProb);  // slack: thinned
                                                             // MH, not iid
  constexpr int kTrialCount = 15;
  int violations = 0;
  for (int trial = 0; trial < kTrialCount; ++trial) {
    Rng rng(0x5A5A + trial * 7919);
    const auto idx = sampler.Sample(rng, kSamples, /*burn_in=*/64, /*thin=*/8);
    const EmpiricalCdf sampled(ValuesAt(pool, idx));
    if (sampled.KsDistance(full) > eps) ++violations;
  }
  EXPECT_LE(violations, 1);
}

// The direct uniform-index sampler (what MirrorDivisionSampled uses) must
// satisfy the plain DKW bound, and more samples must tighten the fit.
TEST(UniformSampleDkw, IndexSamplerWithinEpsilonAndMonotoneInK) {
  const std::vector<double> pool = MakePool(0xFEED);
  const EmpiricalCdf full(pool);

  for (const std::size_t k : {100u, 200u, 380u}) {
    const double eps = DkwEpsilon(k, kFailProb);
    int violations = 0;
    constexpr int kTrialCount = 20;
    for (int trial = 0; trial < kTrialCount; ++trial) {
      Rng rng(0xF1E57 + trial * 31 + k);
      const auto idx = UniformIndexSample(rng, kPoolSize, k);
      ASSERT_EQ(idx.size(), k);
      const EmpiricalCdf sampled(ValuesAt(pool, idx));
      if (sampled.KsDistance(full) > eps) ++violations;
    }
    EXPECT_LE(violations, 1) << "k=" << k;
  }

  // Average KS distance must shrink as the sample budget grows (Thm. 2's
  // eps ~ 1/sqrt(k)).
  const auto mean_ks = [&](std::size_t k) {
    double total = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
      Rng rng(0xB00 + trial);
      total += EmpiricalCdf(ValuesAt(pool, UniformIndexSample(rng, kPoolSize, k)))
                   .KsDistance(full);
    }
    return total / 10.0;
  };
  EXPECT_LT(mean_ks(320), mean_ks(40));
}

// DkwSampleCountFor must invert DkwTailProbability: at the returned k the
// bound holds, one sample fewer and it does not.
TEST(UniformSampleDkw, SampleCountInversionIsTight) {
  for (const double eps : {0.05, 0.1, 0.2}) {
    for (const double p : {1e-2, 1e-3}) {
      const std::size_t k = DkwSampleCountFor(eps, p);
      EXPECT_LE(DkwTailProbability(k, eps), p);
      if (k > 1) EXPECT_GT(DkwTailProbability(k - 1, eps), p);
    }
  }
}

}  // namespace
}  // namespace d2tree
