// Fault storms under real concurrency (ctest label "stress", run under
// the TSan/ASan presets in CI): client threads replay Zipf and trace
// workloads while a FaultInjector crashes, revives and adds servers and
// the background adjuster migrates subtrees. The acceptance bar from the
// issue: >=4 client threads, >=2 kills, a revive and an addition must end
// with a clean consistency audit, zero lost records and nonzero failover
// redirects — reproducibly, from the schedule seed alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "d2tree/common/rng.h"
#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/fsck.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/net/simnet.h"
#include "d2tree/sim/concurrent_replay.h"
#include "d2tree/sim/fault_injector.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

/// Zero-lost-records check: every subtree owner alive, alive local stores
/// hold exactly the non-GL namespace, every live GL replica complete.
void ExpectNoRecordLost(const FunctionalCluster& cluster,
                        std::size_t tree_size) {
  const auto& owners = cluster.scheme().subtree_owners();
  for (const MdsId o : owners) EXPECT_TRUE(cluster.IsServerAlive(o));
  const std::size_t gl = cluster.scheme().split().global_layer.size();
  std::size_t local_total = 0;
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k) {
    if (!cluster.IsServerAlive(k)) continue;
    local_total += cluster.server(k).local().size();
    EXPECT_EQ(cluster.server(k).global_replica().size(), gl)
        << "GL replica incomplete on MDS " << k;
  }
  EXPECT_EQ(local_total, tree_size - gl) << "records lost or duplicated";
}

// The issue's acceptance replay: 4 client threads, 2 kills, 1 revive,
// 1 addition, all from one schedule seed. Must finish consistent, with
// no record lost and clients demonstrably failing over.
TEST(FaultStress, AcceptanceReplayKillsReviveAndAddition) {
  const Workload w = GenerateWorkload(DtrProfile(0.05));

  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.ops_per_thread = 3000;
  cfg.update_fraction = 0.15;
  cfg.stale_entry_fraction = 0.10;
  cfg.min_adjustment_rounds = 4;
  cfg.adjustment_interval_us = 500;
  cfg.seed = 0xFA11;

  FaultMix mix;  // the defaults are exactly the acceptance mix ...
  ASSERT_EQ(mix.kills, 2u);  // ... pinned here so the bar can't drift
  ASSERT_EQ(mix.revives, 1u);
  ASSERT_EQ(mix.server_additions, 1u);
  const std::size_t total_ops = cfg.thread_count * cfg.ops_per_thread;
  cfg.fault_schedule = FaultSchedule::Random(0x5EED, 4, total_ops, mix);
  ASSERT_EQ(cfg.fault_schedule.events.size(), 4u);

  // Reproducible from the seed alone: regenerating the schedule is
  // byte-identical, so a failing run can be replayed exactly.
  EXPECT_TRUE(FaultSchedule::Random(0x5EED, 4, total_ops, mix).events ==
              cfg.fault_schedule.events);

  FunctionalCluster cluster(w.tree, 4);
  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);

  EXPECT_EQ(r.total_ops, total_ops);
  EXPECT_EQ(r.faults_applied, 4u);  // the schedule is valid by construction
  EXPECT_EQ(r.faults_skipped, 0u);
  EXPECT_EQ(r.final_mds_count, 5u);    // 4 initial + 1 added
  EXPECT_EQ(r.final_alive_count, 4u);  // - 2 kills + 1 revive + 1 added
  EXPECT_GT(r.failover_redirects, 0u);  // clients really hit dead servers
  EXPECT_EQ(r.total_failed, r.total_unavailable)
      << "only dead-server windows may fail ops";
  EXPECT_TRUE(r.consistent) << r.consistency_error;
  ExpectNoRecordLost(cluster, w.tree.size());
}

// Outcome determinism under faults: same workload seed + same schedule
// seed → the same op outcomes and the same final membership, run to run,
// even though thread timing differs.
TEST(FaultStress, FaultRunOutcomesDeterministicInSeeds) {
  const Workload w = GenerateWorkload(LmbeProfile(0.03));

  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.ops_per_thread = 1500;
  cfg.update_fraction = 0.10;
  cfg.min_adjustment_rounds = 2;
  cfg.adjustment_interval_us = 500;
  cfg.seed = 0xF00D;
  cfg.fault_schedule = FaultSchedule::Random(
      0xB0B0, 3, cfg.thread_count * cfg.ops_per_thread, FaultMix{});

  std::vector<std::size_t> mds_counts, alive_counts, applied;
  for (int run = 0; run < 2; ++run) {
    FunctionalCluster cluster(w.tree, 3);
    const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);
    EXPECT_TRUE(r.consistent) << r.consistency_error;
    ExpectNoRecordLost(cluster, w.tree.size());
    mds_counts.push_back(r.final_mds_count);
    alive_counts.push_back(r.final_alive_count);
    applied.push_back(r.faults_applied);
  }
  EXPECT_EQ(mds_counts[0], mds_counts[1]);
  EXPECT_EQ(alive_counts[0], alive_counts[1]);
  EXPECT_EQ(applied[0], applied[1]);
}

// Trace-driven storm with heartbeat loss on top of crashes: the drained
// server keeps serving while the Monitor moves its subtrees away, then
// resumes heartbeats — all racing the replay threads.
TEST(FaultStress, TraceReplaySurvivesCrashAndHeartbeatLoss) {
  const Workload w = GenerateWorkload(RaProfile(0.03));
  FunctionalCluster cluster(w.tree, 4);

  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.min_adjustment_rounds = 3;
  cfg.adjustment_interval_us = 500;
  cfg.seed = 0x57E55;

  Trace prefix(std::vector<TraceRecord>(
      w.trace.records().begin(),
      w.trace.records().begin() +
          std::min<std::size_t>(w.trace.size(), 6000)));

  FaultMix mix;
  mix.kills = 2;
  mix.revives = 1;
  mix.server_additions = 1;
  mix.heartbeat_drops = 1;
  cfg.fault_schedule =
      FaultSchedule::Random(0xCAFE, 4, prefix.size(), mix);

  const ConcurrentReplayReport r =
      ReplayTraceConcurrently(cluster, w.tree, prefix, cfg);

  EXPECT_EQ(r.total_ops, prefix.size());
  EXPECT_EQ(r.faults_applied + r.faults_skipped,
            cfg.fault_schedule.events.size());
  EXPECT_EQ(r.faults_skipped, 0u);
  EXPECT_TRUE(r.consistent) << r.consistency_error;
  ExpectNoRecordLost(cluster, w.tree.size());
}

// Network-fault storm on SimNetTransport: kills + lossy client links +
// a Monitor⇄MDS partition, all from one schedule seed, racing 4 replay
// threads over the simulated wire. Drops may fail ops (bounded failover),
// but the audit and record conservation must hold after recovery.
TEST(FaultStress, SimNetStormWithDropsAndPartition) {
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  auto net = std::make_shared<SimNetTransport>();
  FunctionalCluster cluster(w.tree, 4, {}, net);

  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.ops_per_thread = 2000;
  cfg.update_fraction = 0.10;
  cfg.stale_entry_fraction = 0.10;
  cfg.min_adjustment_rounds = 3;
  cfg.adjustment_interval_us = 500;
  cfg.seed = 0x51AE7;

  FaultMix mix;
  mix.kills = 2;
  mix.revives = 1;
  mix.server_additions = 1;
  mix.link_drops = 2;
  mix.monitor_partitions = 1;
  const std::size_t total_ops = cfg.thread_count * cfg.ops_per_thread;
  cfg.fault_schedule = FaultSchedule::Random(0xD10CE, 4, total_ops, mix);
  // kills+revive+addition + 2 drop windows + 1 partition window (paired).
  ASSERT_EQ(cfg.fault_schedule.events.size(), 10u);

  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);

  EXPECT_EQ(r.total_ops, total_ops);
  EXPECT_EQ(r.faults_applied, 10u)
      << "SimNet accepts the network faults; nothing may be skipped";
  EXPECT_EQ(r.faults_skipped, 0u);
  EXPECT_GT(r.messages_dropped, 0u) << "the drop windows must really bite";
  EXPECT_GT(r.failover_redirects, 0u);
  EXPECT_GT(r.sim_latency.mean(), 0.0);
  std::size_t class_total = 0;
  for (std::size_t c = 0; c < kOpClassCount; ++c)
    class_total += r.class_ops[c];
  EXPECT_EQ(class_total, r.total_ops);
  EXPECT_TRUE(r.consistent) << r.consistency_error;
  ExpectNoRecordLost(cluster, w.tree.size());
}

// Whole-service crash storm racing live traffic: the schedule arms
// crashes at seeded sites (some with torn WAL tails) and pairs each with
// a Recover(), while kills and an addition churn membership underneath.
// Clients in the crash window observe kUnavailable and nothing else; the
// run must end recovered, d2fsck-clean and with no record lost.
TEST(FaultStress, CrashStormRecoversCleanUnderConcurrency) {
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  FunctionalCluster cluster(w.tree, 4);

  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.ops_per_thread = 3000;
  cfg.update_fraction = 0.15;  // GL writes reach the kAfterGlBump site
  cfg.stale_entry_fraction = 0.10;
  cfg.min_adjustment_rounds = 4;
  cfg.adjustment_interval_us = 300;  // rounds reach the migration sites
  cfg.seed = 0xC4A54;

  FaultMix mix;
  mix.kills = 1;
  mix.revives = 1;
  mix.server_additions = 1;
  mix.crashes = 2;
  mix.torn_tail_probability = 0.5;
  const std::size_t total_ops = cfg.thread_count * cfg.ops_per_thread;
  cfg.fault_schedule = FaultSchedule::Random(0x570A3, 4, total_ops, mix);
  // kill + revive + addition + 2 crash/recover pairs.
  ASSERT_EQ(cfg.fault_schedule.events.size(), 7u);

  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);

  EXPECT_EQ(r.total_ops, total_ops);
  EXPECT_EQ(r.faults_applied, 7u);
  EXPECT_EQ(r.faults_skipped, 0u);
  // Every recovery that ran (scheduled kRecover events, plus the
  // harness's own recover-before-audit if a crash tripped after the last
  // kRecover) must have completed.
  EXPECT_GE(r.recoveries_completed, 2u);
  EXPECT_LE(r.crashes_injected, 2u);  // an arm only trips if a site is hit
  EXPECT_EQ(r.total_failed, r.total_unavailable)
      << "crash windows may only surface kUnavailable";
  EXPECT_FALSE(cluster.crashed());
  EXPECT_TRUE(r.consistent) << r.consistency_error;
  const FsckReport fsck = FsckCluster(cluster);
  EXPECT_TRUE(fsck.clean()) << FormatFsckReport(fsck);
  ExpectNoRecordLost(cluster, w.tree.size());
}

// Rename storm racing the control plane: client threads toggle their own
// disjoint subtree roots between two names (in place and cross-server)
// while a fault thread drains servers into migration rounds, kills and
// revives an MDS, and arms one whole-service crash at a rename protocol
// site mid-storm. A rename that dies in the crash window may surface as
// kUnavailable yet still commit during recovery — clients detect that via
// kNotFound on the stale name and resync. The run must end d2fsck-clean,
// every root resolvable at its tracked name, no record lost.
TEST(FaultStress, RenameStormRacesAdjustmentAndCrash) {
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  FunctionalCluster cluster(w.tree, 4);
  for (NodeId id = 0; id < w.tree.size(); id += 3)
    cluster.Stat(w.tree.PathOf(id));

  // Disjoint per-thread slices of the subtree list: no two threads ever
  // touch the same root, so every collision the storm produces is a real
  // protocol race, not a test artifact.
  const auto& subtrees = cluster.scheme().layers().subtrees;
  constexpr std::size_t kThreads = 4;
  constexpr int kOpsPerRoot = 12;
  struct Slot {
    NodeId root;
    std::string prefix;  // path up to and including the final '/'
    std::string cur;     // tracked current component name
  };
  std::vector<std::vector<Slot>> slices(kThreads);
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    const std::string path = w.tree.PathOf(subtrees[i].root);
    slices[i % kThreads].push_back(
        {subtrees[i].root, path.substr(0, path.find_last_of('/') + 1),
         path.substr(path.find_last_of('/') + 1)});
  }

  // gtest assertions are not thread-safe: worker threads only count
  // anomalies, the main thread asserts after the join.
  std::atomic<std::uint64_t> renames_ok{0};
  std::atomic<std::uint64_t> unexpected_status{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x5708B1ULL + t);
      for (int op = 0; op < kOpsPerRoot; ++op) {
        for (Slot& s : slices[t]) {
          const std::string base =
              "rn" + std::to_string(t) + "_" + std::to_string(s.root) + "_";
          const std::string next = base + ((op % 2 == 0) ? "a" : "b");
          const MdsId dest =
              rng.NextBool(0.4)
                  ? static_cast<MdsId>(rng.NextBounded(cluster.mds_count()))
                  : -1;
          const auto r =
              dest >= 0 && cluster.IsServerAlive(dest)
                  ? cluster.RenameTo(s.prefix + s.cur, next, dest)
                  : cluster.Rename(s.prefix + s.cur, next);
          if (r.status == MdsStatus::kOk) {
            s.cur = next;
            renames_ok.fetch_add(1, std::memory_order_relaxed);
          } else if (r.status == MdsStatus::kNotFound) {
            // A rename that answered kUnavailable in a crash window was
            // rolled forward by recovery: the namespace moved on without
            // telling us. Probe the two names this slot toggles between
            // and resync to whichever the recovery installed (neither
            // resolving means we probed inside another crash window —
            // keep the stale name and retry next op).
            if (cluster.Stat(s.prefix + base + "a").status == MdsStatus::kOk)
              s.cur = base + "a";
            else if (cluster.Stat(s.prefix + base + "b").status ==
                     MdsStatus::kOk)
              s.cur = base + "b";
          } else if (r.status != MdsStatus::kUnavailable) {
            unexpected_status.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(0xFA07);
    // Migration pressure: drain a server, run rounds, restore it.
    const MdsId drained = 0;
    cluster.SetHeartbeatSuppressed(drained, true);
    cluster.RunAdjustmentRound();
    cluster.SetHeartbeatSuppressed(drained, false);
    // One kill/revive pair racing the storm.
    const MdsId victim = 1;
    if (cluster.KillServer(victim)) cluster.ReviveServer(victim);
    // One whole-service crash at a seeded rename site; the storm trips
    // it, everyone sees kUnavailable until the recovery below.
    const auto site = static_cast<CrashSite>(
        kFirstRenameCrashSite +
        rng.NextBounded(kCrashSiteCount - kFirstRenameCrashSite));
    cluster.ArmCrash(site, rng.NextBool(0.5));
    for (int spin = 0; spin < 1000 && !cluster.crashed(); ++spin)
      std::this_thread::yield();
    if (cluster.crashed()) cluster.Recover();
    cluster.RunAdjustmentRound();
  });
  for (auto& th : threads) th.join();

  // The armed site may never have tripped (all renames drained before the
  // arm) — disarm by recovering if a late op tripped it post-join.
  if (cluster.crashed()) cluster.Recover();
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
    if (!cluster.IsServerAlive(k)) cluster.ReviveServer(k);
  cluster.RunAdjustmentRound();

  EXPECT_GT(renames_ok.load(), 0u) << "the storm never landed a rename";
  EXPECT_GT(cluster.renames_committed(), 0u);
  EXPECT_EQ(unexpected_status.load(), 0u)
      << "renames may only succeed or observe an outage";
  // Exactly one of the names each slot ever used resolves to its root —
  // a rename that died in the final crash window may have been rolled
  // forward after the client thread exited, but never duplicated or lost.
  for (std::size_t t = 0; t < kThreads; ++t)
    for (const Slot& s : slices[t]) {
      const std::string base =
          "rn" + std::to_string(t) + "_" + std::to_string(s.root) + "_";
      std::vector<std::string> names = {base + "a", base + "b"};
      if (s.cur != names[0] && s.cur != names[1]) names.push_back(s.cur);
      std::size_t resolved = 0;
      for (const std::string& name : names) {
        const auto stat = cluster.Stat(s.prefix + name);
        if (stat.status == MdsStatus::kOk && stat.record.id == s.root)
          ++resolved;
      }
      EXPECT_EQ(resolved, 1u) << "root " << s.root << " under " << s.prefix;
    }
  std::string err;
  EXPECT_TRUE(cluster.CheckConsistency(&err)) << err;
  EXPECT_EQ(cluster.CheckPathIntegrity(&err), 0u) << err;
  const FsckReport fsck = FsckCluster(cluster);
  EXPECT_TRUE(fsck.clean()) << FormatFsckReport(fsck);
  ExpectNoRecordLost(cluster, w.tree.size());
}

}  // namespace
}  // namespace d2tree
