// Cross-transport conformance suite: one parameterized body pins the
// Transport contract — request/response round-trips, payload fidelity,
// the undeliverable-vs-timeout error taxonomy, partition behaviour and
// pipelined concurrency — identically on all three implementations
// (InProcess, SimNet, real TCP sockets). A behaviour difference between
// the simulated paths and the socket path would silently invalidate every
// simulated benchmark, so this suite is the contract's single source of
// truth (DESIGN.md §10).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "d2tree/net/simnet.h"
#include "d2tree/net/socket_transport.h"
#include "d2tree/net/transport.h"
#include "d2tree/net/wire.h"

namespace d2tree {
namespace {

enum class TransportKind { kInProcess, kSimNet, kSocket };

// The protocol registry: every MsgType enumerator, by name, so the
// conformance sweep below cannot silently skip a type when the enum
// grows (d2lint's registry rule pins this table to the enum).
constexpr MsgType kAllMsgTypes[] = {
    MsgType::kStatRequest,     MsgType::kStatResponse,
    MsgType::kUpdateRequest,   MsgType::kUpdateResponse,
    MsgType::kForward,         MsgType::kHeartbeat,
    MsgType::kPendingPoolPush, MsgType::kPendingPoolPull,
    MsgType::kGlWriteLock,     MsgType::kGlCommit,
    MsgType::kRenameRequest,   MsgType::kRenameResponse,
    MsgType::kRenamePrepare,   MsgType::kRenameCommit,
    MsgType::kRenameAbort,     MsgType::kBulkTable,
};
static_assert(std::size(kAllMsgTypes) ==
                  static_cast<std::size_t>(MsgType::kBulkTable) + 1,
              "kAllMsgTypes must list every MsgType enumerator");

struct ConformanceParam {
  TransportKind kind;
  const char* name;
};

std::string ParamName(
    const ::testing::TestParamInfo<ConformanceParam>& info) {
  return info.param.name;
}

Message FullyLoadedMessage() {
  Message m;
  m.type = MsgType::kStatRequest;
  m.target = 4711;
  m.mtime = 0x1020304050607080ULL;
  m.payload_records = 3;
  m.migration_id = 99;
  m.peer = 2;
  m.name = "component-name";
  m.record.id = 4711;
  m.record.parent = 470;
  m.record.type = NodeType::kDirectory;
  m.record.name = "dir";
  m.record.attrs.mode = 0755;
  m.record.attrs.uid = 501;
  m.record.attrs.gid = 20;
  m.record.attrs.size = 4096;
  m.record.attrs.mtime = 1710000000;
  m.record.attrs.ctime = 1700000001;
  m.record.version = 12;
  return m;
}

class TransportConformance
    : public ::testing::TestWithParam<ConformanceParam> {
 protected:
  std::shared_ptr<Transport> Make() {
    switch (GetParam().kind) {
      case TransportKind::kInProcess:
        return std::make_shared<InProcessTransport>();
      case TransportKind::kSimNet: {
        SimNetConfig cfg;
        cfg.jitter_mean_us = 0.0;  // deterministic latencies
        return std::make_shared<SimNetTransport>(cfg);
      }
      case TransportKind::kSocket: {
        SocketTransportConfig cfg;
        cfg.call_timeout_ms = 400.0;  // keep the timeout test fast
        auto t = std::make_shared<SocketTransport>(cfg);
        socket_ = t;
        return t;
      }
    }
    return nullptr;
  }

  void TearDown() override {
    if (auto s = socket_.lock()) s->Shutdown();
  }

  std::weak_ptr<SocketTransport> socket_;
};

// Every MsgType round-trips through Bind/Call with the full payload
// intact — the response the handler produced is the response the caller
// sees, field for field.
TEST_P(TransportConformance, CallRoundTripsEveryMsgType) {
  auto t = Make();
  ASSERT_TRUE(t->Bind(MdsAddress(1), [](const Address& from, const Message& req) {
    EXPECT_EQ(from, ClientAddress());
    Message resp = req;
    resp.status = MdsStatus::kOk;
    resp.mtime = req.mtime + 1;  // prove the handler actually ran
    return resp;
  }));

  for (const MsgType type : kAllMsgTypes) {
    Message req = FullyLoadedMessage();
    req.type = type;
    req.mtime = 1000 + static_cast<std::uint8_t>(type);
    Message resp;
    const Delivery d = t->Call(ClientAddress(), MdsAddress(1), req, &resp);
    ASSERT_TRUE(d.delivered) << MsgTypeName(req.type);
    EXPECT_EQ(d.error, DeliveryError::kNone);
    Message want = req;
    want.status = MdsStatus::kOk;
    want.mtime = req.mtime + 1;
    EXPECT_EQ(resp, want) << MsgTypeName(req.type);
  }
}

// Payload fidelity at the wire bounds: a maximum-size name, an empty
// name, and a fully populated record all survive the round trip exactly.
TEST_P(TransportConformance, PayloadFidelityAtTheBounds) {
  auto t = Make();
  ASSERT_TRUE(t->Bind(MdsAddress(0), [](const Address&, const Message& req) {
    return req;  // pure echo
  }));

  Message max = FullyLoadedMessage();
  max.name = std::string(kMaxWireNameBytes, 'n');
  max.record.name = std::string(kMaxWireNameBytes, 'r');
  Message empty = FullyLoadedMessage();
  empty.name.clear();
  empty.record = InodeRecord{};

  for (const Message* req : {&max, &empty}) {
    Message resp;
    const Delivery d = t->Call(ClientAddress(), MdsAddress(0), *req, &resp);
    ASSERT_TRUE(d.delivered);
    EXPECT_EQ(resp, *req);
  }
}

// A Call to an endpoint nobody serves is kUndeliverable — not a timeout,
// not a crash — on every transport.
TEST_P(TransportConformance, UnknownPeerIsUndeliverable) {
  auto t = Make();
  Message resp;
  const Delivery d =
      t->Call(ClientAddress(), MdsAddress(7), FullyLoadedMessage(), &resp);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.error, DeliveryError::kUndeliverable);
}

// A partitioned peer is refused with kUndeliverable, and healing the
// partition restores service. Transports without a partition model are
// exempt (they return false from SetPartitioned).
TEST_P(TransportConformance, PartitionIsUndeliverableUntilHealed) {
  auto t = Make();
  ASSERT_TRUE(t->Bind(MdsAddress(1), [](const Address&, const Message& req) {
    return req;
  }));
  if (!t->SetPartitioned(ClientAddress(), MdsAddress(1), true))
    GTEST_SKIP() << "transport has no partition model";

  Message resp;
  Delivery d =
      t->Call(ClientAddress(), MdsAddress(1), FullyLoadedMessage(), &resp);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.error, DeliveryError::kUndeliverable);

  ASSERT_TRUE(t->SetPartitioned(ClientAddress(), MdsAddress(1), false));
  d = t->Call(ClientAddress(), MdsAddress(1), FullyLoadedMessage(), &resp);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.error, DeliveryError::kNone);
}

// A lost-but-possibly-executed leg is kTimeout, distinct from
// kUndeliverable: on SimNet a fully lossy link, on the socket transport a
// handler that outlives the RPC deadline. InProcess cannot lose a leg.
TEST_P(TransportConformance, LostLegIsTimeoutNotUndeliverable) {
  auto t = Make();
  if (t->SetLinkDropRate(ClientAddress(), MdsAddress(1), 1.0)) {
    ASSERT_TRUE(
        t->Bind(MdsAddress(1),
                [](const Address&, const Message& req) { return req; }));
    Message resp;
    const Delivery d =
        t->Call(ClientAddress(), MdsAddress(1), FullyLoadedMessage(), &resp);
    EXPECT_FALSE(d.delivered);
    EXPECT_EQ(d.error, DeliveryError::kTimeout);
    return;
  }
  if (GetParam().kind != TransportKind::kSocket)
    GTEST_SKIP() << "transport cannot lose a delivered leg";

  ASSERT_TRUE(t->Bind(MdsAddress(1), [](const Address&, const Message& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(900));
    return req;
  }));
  Message resp;
  const Delivery d =
      t->Call(ClientAddress(), MdsAddress(1), FullyLoadedMessage(), &resp);
  EXPECT_FALSE(d.delivered);
  EXPECT_EQ(d.error, DeliveryError::kTimeout)
      << "the server may still execute the request — kUndeliverable would "
         "promise it did not";
}

// Pipelined concurrency: many threads multiplex calls to one endpoint and
// every caller gets the answer to *its own* request (correlation ids on
// the socket path, call-stack integrity elsewhere).
TEST_P(TransportConformance, ConcurrentCallsCorrelateResponses) {
  auto t = Make();
  std::atomic<std::uint64_t> handled{0};
  ASSERT_TRUE(t->Bind(MdsAddress(1), [&](const Address&, const Message& req) {
    handled.fetch_add(1, std::memory_order_relaxed);
    Message resp = req;
    resp.status = MdsStatus::kOk;
    resp.migration_id = static_cast<std::uint64_t>(req.target) * 3 + 1;
    return resp;
  }));

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 50;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        Message req;
        req.type = MsgType::kStatRequest;
        req.target = static_cast<NodeId>(th * kCallsPerThread + i);
        Message resp;
        const Delivery d = t->Call(ClientAddress(), MdsAddress(1), req, &resp);
        if (!d.delivered)
          failures.fetch_add(1, std::memory_order_relaxed);
        else if (resp.migration_id !=
                     static_cast<std::uint64_t>(req.target) * 3 + 1 ||
                 resp.target != req.target)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0) << "a caller received another call's answer";
  EXPECT_EQ(handled.load(), kThreads * kCallsPerThread);
}

// One-way Send to a served endpoint is delivered and accounted.
TEST_P(TransportConformance, SendToServedPeerIsDelivered) {
  auto t = Make();
  ASSERT_TRUE(t->Bind(MdsAddress(1), [](const Address&, const Message& req) {
    return req;
  }));
  const std::uint64_t sent_before = t->messages_sent();
  const Delivery d =
      t->Send(ClientAddress(), MdsAddress(1), FullyLoadedMessage());
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.error, DeliveryError::kNone);
  EXPECT_GT(t->messages_sent(), sent_before);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportConformance,
    ::testing::Values(
        ConformanceParam{TransportKind::kInProcess, "InProcess"},
        ConformanceParam{TransportKind::kSimNet, "SimNet"},
        ConformanceParam{TransportKind::kSocket, "Socket"}),
    ParamName);

// --- Socket-only contract points (no equivalent surface elsewhere). ---

int DialLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads frames off `fd` until `want` well-formed frames arrived (or the
/// peer closed / 5s elapsed). Returns the decoded envelopes.
std::vector<WireEnvelope> ReadFrames(int fd, std::size_t want) {
  std::vector<WireEnvelope> got;
  std::vector<std::uint8_t> buf;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (got.size() < want && std::chrono::steady_clock::now() < deadline) {
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.insert(buf.end(), chunk, chunk + n);
    for (;;) {
      WireEnvelope env;
      std::size_t consumed = 0;
      if (DecodeFrame(buf.data(), buf.size(), &env, &consumed) !=
          DecodeStatus::kOk)
        break;
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(consumed));
      got.push_back(std::move(env));
    }
  }
  return got;
}

std::uint16_t BoundPort(const SocketTransport& t, const Address& addr) {
  const std::string endpoint = t.EndpointOf(addr);
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos) return 0;
  return static_cast<std::uint16_t>(std::stoi(endpoint.substr(colon + 1)));
}

// A redelivered correlation id (a client retry after a lost response) is
// answered from the response cache, not by running the handler twice —
// the at-most-once execution guarantee behind the WAL-style dedup the
// migration protocol relies on.
TEST(SocketTransportContract, RedeliveredCallIsDedupedNotReExecuted) {
  SocketTransport t;
  std::atomic<int> executions{0};
  ASSERT_TRUE(t.Bind(MdsAddress(0), [&](const Address&, const Message& req) {
    executions.fetch_add(1, std::memory_order_relaxed);
    Message resp = req;
    resp.status = MdsStatus::kOk;
    resp.mtime = 777;
    return resp;
  }));
  const std::uint16_t port = BoundPort(t, MdsAddress(0));
  ASSERT_NE(port, 0);
  const int fd = DialLoopback(port);
  ASSERT_GE(fd, 0);

  WireEnvelope env;
  env.kind = FrameKind::kCall;
  env.correlation_id = 42;
  env.from = ClientAddress();
  env.to = MdsAddress(0);
  env.msg = FullyLoadedMessage();
  const auto frame = EncodeFrame(env);

  // Same frame twice: one execution, two identical responses.
  ASSERT_TRUE(SendAll(fd, frame));
  auto first = ReadFrames(fd, 1);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_TRUE(SendAll(fd, frame));
  auto second = ReadFrames(fd, 1);
  ASSERT_EQ(second.size(), 1u);

  EXPECT_EQ(executions.load(), 1);
  EXPECT_GE(t.dedup_hits(), 1u);
  EXPECT_EQ(first[0].kind, FrameKind::kResponse);
  EXPECT_EQ(first[0].correlation_id, 42u);
  EXPECT_EQ(first[0].msg.mtime, 777u);
  EXPECT_EQ(second[0].msg, first[0].msg)
      << "the cached response must be byte-identical";

  ::close(fd);
  t.Shutdown();
}

// A corrupt frame (bit rot, misbehaving peer) tears the connection down
// and is counted; the transport itself survives and keeps serving.
TEST(SocketTransportContract, CorruptFrameTearsDownConnectionOnly) {
  SocketTransport t;
  ASSERT_TRUE(t.Bind(MdsAddress(0), [](const Address&, const Message& req) {
    return req;
  }));
  const std::uint16_t port = BoundPort(t, MdsAddress(0));
  const int fd = DialLoopback(port);
  ASSERT_GE(fd, 0);

  WireEnvelope env;
  env.kind = FrameKind::kCall;
  env.correlation_id = 7;
  env.to = MdsAddress(0);
  env.msg = FullyLoadedMessage();
  auto frame = EncodeFrame(env);
  frame[frame.size() - 1] ^= 0xFF;  // CRC now fails
  ASSERT_TRUE(SendAll(fd, frame));

  // The server must close the poisoned connection...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool closed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    std::uint8_t b;
    const ssize_t n = ::recv(fd, &b, 1, 0);
    if (n == 0) {
      closed = true;
      break;
    }
    if (n < 0) break;
  }
  EXPECT_TRUE(closed);
  EXPECT_GE(t.corrupt_frames(), 1u);
  ::close(fd);

  // ...while the endpoint itself keeps serving fresh connections.
  Message resp;
  const Delivery d =
      t.Call(ClientAddress(), MdsAddress(0), FullyLoadedMessage(), &resp);
  EXPECT_TRUE(d.delivered);
  t.Shutdown();
}

}  // namespace
}  // namespace d2tree
