// Property-based tests for the mirror-division subtree allocation
// (Sec. IV-B, Fig. 4): over many random seeds and tree shapes, the
// division must (a) assign every subtree exactly once to a live MDS,
// (b) give no MDS more popularity than its capacity interval plus the
// granularity bound (one subtree can straddle an interval edge, so the
// overshoot is at most the largest subtree share), and (c) be
// deterministic for a fixed seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "d2tree/core/allocator.h"
#include "d2tree/core/d2tree.h"
#include "d2tree/core/layers.h"
#include "d2tree/core/splitter.h"
#include "d2tree/nstree/builder.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

constexpr int kTrials = 50;

struct RandomCase {
  NamespaceTree tree;
  SplitLayers layers;
  std::vector<double> capacities;
};

/// Random tree shape + exponential popularity + random split depth +
/// heterogeneous cluster, all driven by one seed.
RandomCase MakeCase(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  SyntheticTreeConfig cfg;
  cfg.node_count = 80 + rng.NextBounded(520);
  cfg.max_depth = 4 + static_cast<std::uint32_t>(rng.NextBounded(12));
  cfg.dir_ratio = 0.2 + 0.3 * rng.NextDouble();
  cfg.depth_bias = 0.6 * rng.NextDouble();
  cfg.root_fanout = 4 + static_cast<std::uint32_t>(rng.NextBounded(28));

  RandomCase c{BuildSyntheticTree(cfg, rng), {}, {}};
  for (NodeId id = 0; id < c.tree.size(); ++id)
    c.tree.AddAccess(id, rng.NextExponential(5.0));
  c.tree.RecomputeSubtreePopularity();

  const double fraction = 0.01 + 0.15 * rng.NextDouble();
  const SplitResult split = SplitTreeToProportion(c.tree, fraction);
  c.layers = ExtractLayers(c.tree, split.global_layer);

  const std::size_t mds = 2 + rng.NextBounded(7);
  for (std::size_t k = 0; k < mds; ++k)
    c.capacities.push_back(0.5 + 1.5 * rng.NextDouble());
  return c;
}

/// (b) above: share of MDS k <= capacity share of k + max subtree share.
void CheckCapacityBound(const std::vector<Subtree>& subtrees,
                        const std::vector<double>& capacities,
                        const std::vector<MdsId>& owners) {
  double total_pop = 0.0, max_pop = 0.0, total_cap = 0.0;
  for (const Subtree& s : subtrees) {
    total_pop += s.popularity;
    max_pop = std::max(max_pop, s.popularity);
  }
  for (double cp : capacities) total_cap += cp;
  if (total_pop <= 0.0) return;  // degenerate pool: division spreads by count

  std::vector<double> load(capacities.size(), 0.0);
  for (std::size_t i = 0; i < subtrees.size(); ++i)
    load[owners[i]] += subtrees[i].popularity;
  for (std::size_t k = 0; k < capacities.size(); ++k) {
    const double load_share = load[k] / total_pop;
    const double cap_share = capacities[k] / total_cap;
    const double max_share = max_pop / total_pop;
    EXPECT_LE(load_share, cap_share + max_share + 1e-9)
        << "MDS " << k << " exceeds its capacity interval by more than one "
        << "subtree (load " << load_share << ", interval " << cap_share
        << ", granularity " << max_share << ")";
  }
}

TEST(MirrorDivisionProperties, ExactDivisionOverRandomShapes) {
  for (int trial = 0; trial < kTrials; ++trial) {
    const RandomCase c = MakeCase(trial);
    const auto& subtrees = c.layers.subtrees;
    if (subtrees.empty()) continue;

    for (const SubtreeOrder order :
         {SubtreeOrder::kPopularityDesc, SubtreeOrder::kDfs}) {
      const auto owners = MirrorDivisionExact(subtrees, c.capacities, order);

      // (a) Exactly one owner per subtree, each a live MDS.
      ASSERT_EQ(owners.size(), subtrees.size()) << "trial " << trial;
      for (MdsId o : owners) {
        EXPECT_GE(o, 0);
        EXPECT_LT(o, static_cast<MdsId>(c.capacities.size()));
      }

      // (b) Capacity-interval bound.
      CheckCapacityBound(subtrees, c.capacities, owners);

      // (c) Re-running the exact division is bit-identical.
      EXPECT_EQ(owners, MirrorDivisionExact(subtrees, c.capacities, order))
          << "trial " << trial;
    }
  }
}

TEST(MirrorDivisionProperties, ZeroCapacityMdsReceivesNothing) {
  for (int trial = 0; trial < kTrials; ++trial) {
    RandomCase c = MakeCase(trial + 1000);
    if (c.layers.subtrees.empty() || c.capacities.size() < 2) continue;
    c.capacities[trial % c.capacities.size()] = 0.0;

    const auto owners = MirrorDivisionExact(c.layers.subtrees, c.capacities,
                                            SubtreeOrder::kPopularityDesc);
    std::vector<double> load(c.capacities.size(), 0.0);
    for (std::size_t i = 0; i < owners.size(); ++i)
      load[owners[i]] += c.layers.subtrees[i].popularity;
    for (std::size_t k = 0; k < c.capacities.size(); ++k) {
      if (c.capacities[k] == 0.0) EXPECT_EQ(load[k], 0.0) << "trial " << trial;
    }
  }
}

TEST(MirrorDivisionProperties, SampledDivisionDeterministicInSeed) {
  for (int trial = 0; trial < kTrials; ++trial) {
    const RandomCase c = MakeCase(trial + 2000);
    if (c.layers.subtrees.empty()) continue;

    AllocationConfig cfg;
    cfg.sample_count = 32;
    cfg.seed = 0xBEEF + trial;
    const auto a = AllocateSubtrees(c.layers.subtrees, c.capacities, cfg);
    const auto b = AllocateSubtrees(c.layers.subtrees, c.capacities, cfg);
    EXPECT_EQ(a, b) << "trial " << trial;
    ASSERT_EQ(a.size(), c.layers.subtrees.size());
    for (MdsId o : a) {
      EXPECT_GE(o, 0);
      EXPECT_LT(o, static_cast<MdsId>(c.capacities.size()));
    }
  }
}

// Full-scheme closure: Partition() must place every namespace node exactly
// once (or replicate it into a parent-closed crown), for any shape, and be
// deterministic because every random choice flows from the config seed.
TEST(PartitionProperties, SchemePlacementIsAPartition) {
  for (int trial = 0; trial < 12; ++trial) {
    const RandomCase c = MakeCase(trial + 3000);
    const MdsCluster cluster{c.capacities};

    D2TreeScheme scheme;
    const Assignment a = scheme.Partition(c.tree, cluster);
    ASSERT_TRUE(a.Validate(c.tree, /*require_connected_replicated=*/true))
        << "trial " << trial;
    ASSERT_EQ(a.owner.size(), c.tree.size());

    D2TreeScheme scheme2;
    const Assignment b = scheme2.Partition(c.tree, cluster);
    EXPECT_EQ(a.owner, b.owner) << "trial " << trial;
  }
}

// The Fig. 4 guarantee end-to-end on a realistic workload: mirror division
// keeps the subtree-popularity loads within the granularity bound of the
// capacity shares for the paper-shaped datasets too.
TEST(PartitionProperties, ProfileWorkloadsRespectCapacityBound) {
  for (double scale : {0.02, 0.05}) {
    const Workload w = GenerateWorkload(LmbeProfile(scale));
    D2TreeScheme scheme;
    const MdsCluster cluster = MdsCluster::Homogeneous(8);
    scheme.Partition(w.tree, cluster);
    const auto& subtrees = scheme.layers().subtrees;
    ASSERT_FALSE(subtrees.empty());
    CheckCapacityBound(subtrees, cluster.capacities,
                       scheme.subtree_owners());
  }
}

}  // namespace
}  // namespace d2tree
