// Multi-process crash/lifecycle test: boots a real 4-process cluster
// (monitor + 3 mdsd) over TCP, replays against it, SIGKILLs one MDS
// mid-replay, and asserts the client sees exactly the in-process
// semantics — kUndeliverable for the dead peer's subtrees, continued
// service for everything else, and full recovery (with a counted
// reconnect) once the daemon is revived on the same port. Clean SIGTERM
// must drain and pass the daemons' own consistency audit (exit 0).
//
// The mdsd binary path is injected at compile time (D2TREE_MDSD_PATH,
// tests/CMakeLists.txt); the suite skips when the binary is absent.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "d2tree/durability/fsck.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/net/endpoint.h"
#include "d2tree/net/socket_transport.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

#ifndef D2TREE_MDSD_PATH
#define D2TREE_MDSD_PATH ""
#endif

constexpr std::size_t kMds = 3;
constexpr const char* kProfile = "lmbe";
constexpr const char* kScale = "0.05";
constexpr const char* kSeed = "3";

/// Reserves a loopback port: bind(0), read it back, close. The tiny
/// window before the daemon rebinds is acceptable for a test (the
/// daemon's listener uses SO_REUSEADDR).
std::uint16_t PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  ::close(fd);
  return ntohs(sa.sin_port);
}

struct Daemon {
  pid_t pid = -1;
  int out_fd = -1;  // daemon's stdout (read side)
  std::uint16_t port = 0;
};

Daemon SpawnMdsd(const std::string& role, int id, std::uint16_t port,
                 const std::string& peers, const std::string& data_dir = "") {
  Daemon d;
  d.port = port;
  int pipefd[2];
  if (::pipe(pipefd) != 0) return d;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    return d;
  }
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    const std::string listen = "127.0.0.1:" + std::to_string(port);
    const std::string id_str = std::to_string(id);
    const std::string mds_count = std::to_string(kMds);
    std::vector<const char*> argv = {
        D2TREE_MDSD_PATH, "--role",      role.c_str(),
        "--id",           id_str.c_str(), "--listen",
        listen.c_str(),   "--peers",     peers.c_str(),
        "--mds-count",    mds_count.c_str(), "--profile",
        kProfile,         "--scale",     kScale,
        "--seed",         kSeed};
    if (!data_dir.empty()) {
      argv.push_back("--data-dir");
      argv.push_back(data_dir.c_str());
    }
    argv.push_back(nullptr);
    ::execv(D2TREE_MDSD_PATH, const_cast<char**>(argv.data()));
    std::_Exit(127);
  }
  ::close(pipefd[1]);
  d.pid = pid;
  d.out_fd = pipefd[0];
  return d;
}

/// Blocks until the daemon prints "MDSD LISTENING <port>" (or EOF).
bool AwaitListening(const Daemon& d) {
  std::string line;
  char c;
  while (::read(d.out_fd, &c, 1) == 1) {
    if (c == '\n') {
      if (line.rfind("MDSD LISTENING ", 0) == 0) return true;
      line.clear();
    } else {
      line += c;
    }
  }
  return false;
}

/// Reaps the daemon and returns its exit code (-1 = killed by signal).
int Reap(Daemon* d) {
  if (d->out_fd >= 0) {
    // Drain remaining output so the daemon never blocks on stdout.
    char buf[4096];
    while (::read(d->out_fd, buf, sizeof(buf)) > 0) {
    }
    ::close(d->out_fd);
    d->out_fd = -1;
  }
  int status = 0;
  if (::waitpid(d->pid, &status, 0) != d->pid) return -2;
  d->pid = -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class MdsdLifecycle : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(D2TREE_MDSD_PATH).empty() ||
        ::access(D2TREE_MDSD_PATH, X_OK) != 0)
      GTEST_SKIP() << "mdsd binary not available";

    monitor_port_ = PickFreePort();
    for (std::size_t i = 0; i < kMds; ++i) mds_ports_[i] = PickFreePort();
    ASSERT_NE(monitor_port_, 0);

    peers_ = "monitor=127.0.0.1:" + std::to_string(monitor_port_);
    for (std::size_t i = 0; i < kMds; ++i)
      peers_ += ",mds" + std::to_string(i) + "=127.0.0.1:" +
                std::to_string(mds_ports_[i]);

    monitor_ = SpawnMdsd("monitor", 0, monitor_port_, peers_);
    ASSERT_GT(monitor_.pid, 0);
    for (std::size_t i = 0; i < kMds; ++i) {
      mds_[i] = SpawnMdsd("mds", static_cast<int>(i), mds_ports_[i], peers_,
                          DataDir());
      ASSERT_GT(mds_[i].pid, 0);
    }
    ASSERT_TRUE(AwaitListening(monitor_));
    for (std::size_t i = 0; i < kMds; ++i) ASSERT_TRUE(AwaitListening(mds_[i]));
  }

  void TearDown() override {
    for (Daemon* d : {&monitor_, &mds_[0], &mds_[1], &mds_[2]}) {
      if (d->pid > 0) {
        ::kill(d->pid, SIGKILL);
        Reap(d);
      }
      if (d->out_fd >= 0) {
        ::close(d->out_fd);
        d->out_fd = -1;
      }
    }
  }

  /// Overridden by the persistence fixture: a non-empty directory puts
  /// every MDS daemon's own store on the LSM engine (--data-dir).
  virtual std::string DataDir() const { return ""; }

  std::uint16_t monitor_port_ = 0;
  std::uint16_t mds_ports_[kMds] = {0, 0, 0};
  std::string peers_;
  Daemon monitor_;
  Daemon mds_[kMds];
};

TEST_F(MdsdLifecycle, CrashMidReplayFailoverAndRevive) {
  // The client regenerates the daemons' exact namespace for routing and
  // as the oracle: a live daemon must answer exactly what the in-process
  // model answers.
  TraceProfile profile = LmbeProfile(std::atof(kScale));
  profile.seed = static_cast<std::uint64_t>(std::atoll(kSeed));
  const Workload workload = GenerateWorkload(profile);
  FunctionalCluster model(workload.tree, kMds);
  const Assignment& assignment = model.assignment();

  SocketTransport client;
  const auto specs = ParsePeerList(peers_);
  ASSERT_TRUE(specs.has_value());
  for (const PeerSpec& spec : *specs)
    ASSERT_TRUE(client.AddPeer(spec.addr, spec.host_port));

  // Pick a GL-resident target and, per MDS, one owned local-layer target.
  NodeId gl_target = kInvalidNode;
  NodeId owned_by[kMds] = {kInvalidNode, kInvalidNode, kInvalidNode};
  for (NodeId n = 0; n < workload.tree.size(); ++n) {
    const MdsId owner = assignment.OwnerOf(n);
    if (owner == kReplicated) {
      if (gl_target == kInvalidNode) gl_target = n;
    } else if (owned_by[owner] == kInvalidNode) {
      owned_by[owner] = n;
    }
  }
  ASSERT_NE(gl_target, kInvalidNode);
  for (std::size_t i = 0; i < kMds; ++i) ASSERT_NE(owned_by[i], kInvalidNode);

  const auto stat = [&](MdsId at, NodeId target, Message* resp) {
    Message req;
    req.type = MsgType::kStatRequest;
    req.target = target;
    return client.Call(ClientAddress(), MdsAddress(at), req, resp);
  };

  // Phase 1 — replay against the healthy cluster: every owner answers,
  // and answers exactly what the in-process model answers.
  for (std::size_t i = 0; i < kMds; ++i) {
    const NodeId target = owned_by[i];
    Message resp;
    const Delivery d = stat(static_cast<MdsId>(i), target, &resp);
    ASSERT_TRUE(d.delivered) << "mds" << i;
    ASSERT_EQ(resp.status, MdsStatus::kOk);
    const auto ancestors = workload.tree.AncestorsOf(target);
    const MdsOpResult want =
        model.server(static_cast<MdsId>(i)).Stat(target, ancestors);
    EXPECT_EQ(resp.record, want.record)
        << "socket daemon and in-process model disagree on node " << target;
  }
  // The honest 1-jump: a deliberately wrong entry answers kWrongServer
  // with the owner's id, never the record.
  {
    const MdsId owner = assignment.OwnerOf(owned_by[0]);
    const MdsId wrong = static_cast<MdsId>((owner + 1) % kMds);
    Message resp;
    const Delivery d = stat(wrong, owned_by[0], &resp);
    ASSERT_TRUE(d.delivered);
    EXPECT_EQ(resp.status, MdsStatus::kWrongServer);
    EXPECT_EQ(resp.peer, owner);
  }

  // Phase 2 — SIGKILL mds1 mid-replay. In-flight and subsequent calls to
  // it must surface kUndeliverable (dead peer ≙ crashed server in the
  // in-process semantics), while every other role keeps serving.
  constexpr MdsId kVictim = 1;
  ASSERT_EQ(::kill(mds_[kVictim].pid, SIGKILL), 0);
  ASSERT_EQ(Reap(&mds_[kVictim]), -1);  // killed by signal, not exited

  Delivery dead{};
  for (int attempt = 0; attempt < 10; ++attempt) {
    Message resp;
    dead = stat(kVictim, owned_by[kVictim], &resp);
    if (!dead.delivered) break;
    // A connection that was already established can carry one more
    // request before the RST lands; retry until the failure surfaces.
  }
  EXPECT_FALSE(dead.delivered);
  EXPECT_EQ(dead.error, DeliveryError::kUndeliverable)
      << "a dead peer is undeliverable, not a timeout";

  // Failover reading: the GL replica on the survivors still answers.
  for (const MdsId survivor : {MdsId{0}, MdsId{2}}) {
    Message resp;
    const Delivery d = stat(survivor, gl_target, &resp);
    ASSERT_TRUE(d.delivered) << "survivor mds" << survivor;
    EXPECT_EQ(resp.status, MdsStatus::kOk);
  }
  // And a survivor still redirects for the dead owner's subtree — the
  // placement itself did not change (no adjustment rounds in daemons).
  {
    Message resp;
    const Delivery d = stat(MdsId{0}, owned_by[kVictim], &resp);
    ASSERT_TRUE(d.delivered);
    EXPECT_EQ(resp.status, MdsStatus::kWrongServer);
    EXPECT_EQ(resp.peer, kVictim);
  }

  // Phase 3 — revive the victim on the same port; the client's next call
  // dials a fresh connection (counted) and service resumes byte-exactly.
  const std::uint64_t reconnects_before = client.reconnects();
  mds_[kVictim] = SpawnMdsd("mds", kVictim, mds_ports_[kVictim], peers_);
  ASSERT_GT(mds_[kVictim].pid, 0);
  ASSERT_TRUE(AwaitListening(mds_[kVictim]));

  Message revived;
  Delivery d{};
  d.delivered = false;
  for (int attempt = 0; attempt < 10 && !d.delivered; ++attempt)
    d = stat(kVictim, owned_by[kVictim], &revived);
  ASSERT_TRUE(d.delivered) << "revived daemon must serve again";
  EXPECT_EQ(revived.status, MdsStatus::kOk);
  EXPECT_GT(client.reconnects(), reconnects_before);
  {
    const auto ancestors = workload.tree.AncestorsOf(owned_by[kVictim]);
    const MdsOpResult want =
        model.server(kVictim).Stat(owned_by[kVictim], ancestors);
    EXPECT_EQ(revived.record, want.record);
  }

  // Phase 4 — clean SIGTERM: every daemon drains, audits its model and
  // exits 0 (a failed consistency audit exits 1).
  client.Shutdown();
  for (Daemon* daemon : {&mds_[0], &mds_[1], &mds_[2], &monitor_}) {
    ASSERT_EQ(::kill(daemon->pid, SIGTERM), 0);
    EXPECT_EQ(Reap(daemon), 0) << "daemon failed its shutdown audit";
  }
}

/// Same 4-process cluster, but every MDS daemon persists its own store
/// under a shared --data-dir (only its own role — bystander models stay
/// in memory, so the daemons never cross-write).
class MdsdPersistence : public MdsdLifecycle {
 protected:
  MdsdPersistence() {
    data_dir_ = "/tmp/d2t_mdsd_persist_" + std::to_string(::getpid()) +
                "_XXXXXX";
    if (::mkdtemp(data_dir_.data()) == nullptr) data_dir_.clear();
  }
  ~MdsdPersistence() override {
    if (!data_dir_.empty()) {
      const std::string cmd = "rm -rf '" + data_dir_ + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  std::string DataDir() const override { return data_dir_; }

  std::string data_dir_;
};

TEST_F(MdsdPersistence, MutationsSurviveSigkillRestart) {
  ASSERT_FALSE(data_dir_.empty());

  // The client regenerates the daemons' namespace as the routing oracle.
  TraceProfile profile = LmbeProfile(std::atof(kScale));
  profile.seed = static_cast<std::uint64_t>(std::atoll(kSeed));
  const Workload workload = GenerateWorkload(profile);
  FunctionalCluster model(workload.tree, kMds);
  const Assignment& assignment = model.assignment();

  SocketTransport client;
  const auto specs = ParsePeerList(peers_);
  ASSERT_TRUE(specs.has_value());
  for (const PeerSpec& spec : *specs)
    ASSERT_TRUE(client.AddPeer(spec.addr, spec.host_port));

  constexpr MdsId kVictim = 1;
  NodeId target = kInvalidNode;
  for (NodeId n = 0; n < workload.tree.size() && target == kInvalidNode; ++n)
    if (assignment.OwnerOf(n) == kVictim) target = n;
  ASSERT_NE(target, kInvalidNode);

  // Mutate the victim's subtree over the wire, mirroring the op on the
  // in-process model — the oracle for what must survive.
  constexpr std::uint64_t kMtime = 777777;
  {
    Message req;
    req.type = MsgType::kUpdateRequest;
    req.target = target;
    req.mtime = kMtime;
    Message resp;
    const Delivery d =
        client.Call(ClientAddress(), MdsAddress(kVictim), req, &resp);
    ASSERT_TRUE(d.delivered);
    ASSERT_EQ(resp.status, MdsStatus::kOk);
  }
  const auto ancestors = workload.tree.AncestorsOf(target);
  const MdsOpResult want =
      model.server(kVictim).UpdateLocal(target, ancestors, kMtime);
  ASSERT_EQ(want.status, MdsStatus::kOk);
  EXPECT_GT(want.record.version, 0u);

  // SIGKILL — no drain, no flush; only what the engine WAL group-committed
  // survives. Then restart on the same port AND the same --data-dir.
  ASSERT_EQ(::kill(mds_[kVictim].pid, SIGKILL), 0);
  ASSERT_EQ(Reap(&mds_[kVictim]), -1);
  mds_[kVictim] = SpawnMdsd("mds", kVictim, mds_ports_[kVictim], peers_,
                            data_dir_);
  ASSERT_GT(mds_[kVictim].pid, 0);
  ASSERT_TRUE(AwaitListening(mds_[kVictim]));

  // The revived daemon must answer the *mutated* record — a volatile
  // daemon would have regenerated the pristine tree and lost the update.
  Message revived;
  Delivery d{};
  d.delivered = false;
  for (int attempt = 0; attempt < 10 && !d.delivered; ++attempt) {
    Message req;
    req.type = MsgType::kStatRequest;
    req.target = target;
    d = client.Call(ClientAddress(), MdsAddress(kVictim), req, &revived);
  }
  ASSERT_TRUE(d.delivered);
  ASSERT_EQ(revived.status, MdsStatus::kOk);
  EXPECT_EQ(revived.record.attrs.mtime, kMtime)
      << "mutation lost across SIGKILL: store did not persist";
  EXPECT_EQ(revived.record, want.record)
      << "revived daemon and in-process oracle disagree";

  // Clean shutdown: each daemon's exit audit must still pass, and the
  // victim's store directory must audit clean offline (the d2fsck gate).
  client.Shutdown();
  for (Daemon* daemon : {&mds_[0], &mds_[1], &mds_[2], &monitor_}) {
    ASSERT_EQ(::kill(daemon->pid, SIGTERM), 0);
    EXPECT_EQ(Reap(daemon), 0) << "daemon failed its shutdown audit";
  }
  const FsckReport report =
      FsckStoreDir(data_dir_ + "/mds" + std::to_string(kVictim) + "/local");
  EXPECT_TRUE(report.clean()) << FormatFsckReport(report);
}

}  // namespace
}  // namespace d2tree
