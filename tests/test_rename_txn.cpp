// Atomic cross-MDS rename transactions (DESIGN.md §8), label "rename":
// the journaled state machine kRenameIntent → kRenamePrepare → apply →
// kRenameCommit executed against live stores, with a whole-service crash
// planted at every rename protocol site (torn and intact WAL tails).
// Deterministic per-site semantics first — intent-only rolls back (the
// pre-rename name restored from the journal), prepared-or-later rolls
// forward, a journaled commit replays idempotently, the destination
// dedups re-delivered transfers on the rename id — then the rename-storm
// property sweep: ≥30 random tree shapes × crashes at every rename site,
// each recovery d2fsck-clean with exactly one owner resolving the
// renamed path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/fsck.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/nstree/builder.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

/// Live servers holding `id` in their *local* store — the single-owner
/// invariant every rename must preserve.
std::size_t HoldersOf(const FunctionalCluster& cluster, NodeId id) {
  std::size_t holders = 0;
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
    if (cluster.IsServerAlive(k))
      holders += cluster.server(k).local().Contains(id);
  return holders;
}

std::size_t AliveLocalRecords(const FunctionalCluster& cluster) {
  std::size_t total = 0;
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
    if (cluster.IsServerAlive(k)) total += cluster.server(k).local().size();
  return total;
}

void ExpectFsckClean(const FunctionalCluster& cluster,
                     const std::string& context) {
  const FsckReport fsck = FsckCluster(cluster);
  EXPECT_TRUE(fsck.clean()) << context << ":\n" << FormatFsckReport(fsck);
  EXPECT_EQ(fsck.renames_in_flight, 0u) << context;
}

class RenameTxnTest : public ::testing::Test {
 protected:
  RenameTxnTest()
      : workload_(GenerateWorkload(DtrProfile(0.05))),
        cluster_(workload_.tree, 4) {
    for (NodeId id = 0; id < workload_.tree.size(); id += 3)
      cluster_.Stat(workload_.tree.PathOf(id));
  }

  /// Index of some local-layer subtree whose owner is alive.
  std::size_t PickSubtree() {
    const auto owners = cluster_.scheme().subtree_owners();
    const auto& subtrees = cluster_.scheme().layers().subtrees;
    for (std::size_t i = 0; i < subtrees.size() && i < owners.size(); ++i)
      if (cluster_.IsServerAlive(owners[i])) return i;
    ADD_FAILURE() << "no subtree with an alive owner";
    return 0;
  }

  /// Some alive server other than `not_this`.
  MdsId OtherAlive(MdsId not_this) {
    for (MdsId k = 0; k < static_cast<MdsId>(cluster_.mds_count()); ++k)
      if (k != not_this && cluster_.IsServerAlive(k)) return k;
    ADD_FAILURE() << "no other alive server";
    return -1;
  }

  Workload workload_;
  FunctionalCluster cluster_;
};

// In-place local-layer rename: one journaled transaction, no records
// change owner (the structure-keyed placement claim of Sec. II), GL
// version bumps at commit so cached client indexes invalidate.
TEST_F(RenameTxnTest, InPlaceLocalRenameCommits) {
  const std::size_t i = PickSubtree();
  const NodeId root = cluster_.scheme().layers().subtrees[i].root;
  const MdsId owner = cluster_.scheme().subtree_owners()[i];
  const std::string old_path = workload_.tree.PathOf(root);
  const std::uint64_t gl_before = cluster_.gl_master_version();

  const auto result = cluster_.Rename(old_path, "renamed_in_place");
  ASSERT_EQ(result.status, MdsStatus::kOk);
  EXPECT_FALSE(result.cross_server);
  EXPECT_EQ(result.records_moved, 0u);
  EXPECT_GT(result.rename_id, 0u);
  EXPECT_EQ(cluster_.renames_committed(), 1u);
  EXPECT_EQ(cluster_.renames_aborted(), 0u);
  EXPECT_GT(cluster_.gl_master_version(), gl_before);

  // The old path is gone, the new one resolves to the same node — still
  // at the same owner, name rewritten in its record.
  EXPECT_EQ(cluster_.Stat(old_path).status, MdsStatus::kNotFound);
  const std::string new_path =
      old_path.substr(0, old_path.find_last_of('/') + 1) + "renamed_in_place";
  const auto stat = cluster_.Stat(new_path);
  ASSERT_EQ(stat.status, MdsStatus::kOk);
  EXPECT_EQ(stat.record.id, root);
  EXPECT_EQ(stat.record.name, "renamed_in_place");
  EXPECT_EQ(cluster_.scheme().subtree_owners()[i], owner);
  EXPECT_EQ(HoldersOf(cluster_, root), 1u);
  ExpectFsckClean(cluster_, "in-place rename");
}

// GL-resident rename: every live replica's record is rewritten under the
// GL write lock in the same transaction.
TEST_F(RenameTxnTest, GlResidentRenameUpdatesEveryReplica) {
  NodeId target = kInvalidNode;
  for (NodeId id = 1; id < workload_.tree.size(); ++id)
    if (cluster_.assignment().IsReplicated(id)) {
      target = id;
      break;
    }
  ASSERT_NE(target, kInvalidNode) << "no GL-resident node below the root";
  const std::string old_path = workload_.tree.PathOf(target);

  const auto result = cluster_.Rename(old_path, "renamed_gl");
  ASSERT_EQ(result.status, MdsStatus::kOk);
  EXPECT_FALSE(result.cross_server);
  for (MdsId k = 0; k < static_cast<MdsId>(cluster_.mds_count()); ++k) {
    if (!cluster_.IsServerAlive(k)) continue;
    const auto rec = cluster_.server(k).global_replica().Get(target);
    ASSERT_TRUE(rec.has_value()) << "replica " << k;
    EXPECT_EQ(rec->name, "renamed_gl") << "replica " << k;
  }
  ExpectFsckClean(cluster_, "GL rename");
}

// Cross-server rename: rename + subtree re-home in one two-phase
// transaction — the operation hash-keyed schemes pay on every directory
// rename, here driven by explicit placement policy.
TEST_F(RenameTxnTest, CrossServerRenameMovesSubtree) {
  const std::size_t i = PickSubtree();
  const auto& subtree = cluster_.scheme().layers().subtrees[i];
  const MdsId src = cluster_.scheme().subtree_owners()[i];
  const MdsId dst = OtherAlive(src);
  const std::string old_path = workload_.tree.PathOf(subtree.root);

  const auto result = cluster_.RenameTo(old_path, "rehomed", dst);
  ASSERT_EQ(result.status, MdsStatus::kOk);
  EXPECT_TRUE(result.cross_server);
  EXPECT_EQ(result.records_moved, subtree.node_count);
  EXPECT_EQ(cluster_.scheme().subtree_owners()[i], dst);
  EXPECT_EQ(cluster_.assignment().OwnerOf(subtree.root), dst);

  // Every member record moved: present at the destination, gone from the
  // source, exactly one holder each.
  EXPECT_TRUE(cluster_.server(dst).local().Contains(subtree.root));
  EXPECT_FALSE(cluster_.server(src).local().Contains(subtree.root));
  EXPECT_EQ(HoldersOf(cluster_, subtree.root), 1u);

  const std::string new_path =
      old_path.substr(0, old_path.find_last_of('/') + 1) + "rehomed";
  const auto stat = cluster_.Stat(new_path);
  ASSERT_EQ(stat.status, MdsStatus::kOk);
  EXPECT_EQ(stat.served_by, dst);
  std::string err;
  EXPECT_TRUE(cluster_.CheckConsistency(&err)) << err;
  ExpectFsckClean(cluster_, "cross-server rename");
}

// Validation failures answer without journaling anything.
TEST_F(RenameTxnTest, ValidationRejectsWithoutJournaling) {
  const std::size_t i = PickSubtree();
  const NodeId root = cluster_.scheme().layers().subtrees[i].root;
  const MdsId owner = cluster_.scheme().subtree_owners()[i];
  const std::string path = workload_.tree.PathOf(root);
  const std::size_t journal_before = cluster_.monitor_wal().records_appended();

  EXPECT_EQ(cluster_.Rename("/no/such/path", "x").status,
            MdsStatus::kNotFound);
  EXPECT_EQ(cluster_.Rename("/", "x").status, MdsStatus::kNotPermitted);
  EXPECT_EQ(cluster_.Rename(path, "").status, MdsStatus::kNotPermitted);
  EXPECT_EQ(cluster_.Rename(path, "a/b").status, MdsStatus::kNotPermitted);
  // Renaming to the current name is a no-op success — no transaction.
  const auto noop = cluster_.Rename(path, path.substr(path.find_last_of('/') + 1));
  EXPECT_EQ(noop.status, MdsStatus::kOk);
  EXPECT_EQ(noop.rename_id, 0u);
  // Re-homing anything but a registered subtree root is refused, as is a
  // bogus or dead destination.
  NodeId member = kInvalidNode;
  workload_.tree.VisitSubtree(root, [&](NodeId v) {
    if (v != root && member == kInvalidNode) member = v;
  });
  if (member != kInvalidNode)
    EXPECT_EQ(cluster_.RenameTo(workload_.tree.PathOf(member), "x", OtherAlive(owner))
                  .status,
              MdsStatus::kNotPermitted);
  EXPECT_EQ(cluster_.RenameTo(path, "x", 99).status, MdsStatus::kNotPermitted);
  const MdsId victim = OtherAlive(owner);
  ASSERT_TRUE(cluster_.KillServer(victim));
  EXPECT_EQ(cluster_.RenameTo(path, "x", victim).status,
            MdsStatus::kUnavailable);
  ASSERT_TRUE(cluster_.ReviveServer(victim));

  EXPECT_EQ(cluster_.monitor_wal().records_appended(), journal_before)
      << "validation failures must not touch the journal";
  EXPECT_EQ(cluster_.renames_committed(), 0u);
  EXPECT_EQ(cluster_.renames_aborted(), 0u);
}

// Sibling collision: committing would alias two nodes onto one path, so
// the transaction is refused up front and path integrity holds.
TEST_F(RenameTxnTest, SiblingCollisionRefused) {
  const std::size_t i = PickSubtree();
  const NodeId root = cluster_.scheme().layers().subtrees[i].root;
  const NodeId parent = workload_.tree.node(root).parent;
  NodeId sibling = kInvalidNode;
  workload_.tree.VisitSubtree(workload_.tree.root(), [&](NodeId v) {
    if (v != root && workload_.tree.node(v).parent == parent &&
        sibling == kInvalidNode)
      sibling = v;
  });
  ASSERT_NE(sibling, kInvalidNode) << "subtree root has no sibling";
  const auto result = cluster_.Rename(workload_.tree.PathOf(root),
                                      workload_.tree.node(sibling).name);
  EXPECT_EQ(result.status, MdsStatus::kNotPermitted);
  std::string err;
  EXPECT_EQ(cluster_.CheckPathIntegrity(&err), 0u) << err;
}

// Rename ids and migration ids draw from one monotone counter — the
// fsck invariant "journaled rename ids monotone" rides on it.
TEST_F(RenameTxnTest, RenameIdsShareTheMigrationCounter) {
  const std::size_t i = PickSubtree();
  const std::string path =
      workload_.tree.PathOf(cluster_.scheme().layers().subtrees[i].root);
  const auto first = cluster_.Rename(path, "rn_first");
  ASSERT_EQ(first.status, MdsStatus::kOk);

  // Force migrations to consume ids in between.
  const MdsId victim = cluster_.scheme().subtree_owners()[i];
  ASSERT_TRUE(cluster_.SetHeartbeatSuppressed(victim, true));
  cluster_.RunAdjustmentRound();
  ASSERT_TRUE(cluster_.SetHeartbeatSuppressed(victim, false));

  const std::size_t j = PickSubtree();
  std::string path2 =
      workload_.tree.PathOf(cluster_.scheme().layers().subtrees[j].root);
  if (j == i) {  // first rename moved this root's path
    path2 = path.substr(0, path.find_last_of('/') + 1) + "rn_first";
  }
  const auto second = cluster_.Rename(path2, "rn_second");
  ASSERT_EQ(second.status, MdsStatus::kOk);
  EXPECT_GT(second.rename_id, first.rename_id);
  ExpectFsckClean(cluster_, "two renames around a round");
}

class RenameCrashTest : public RenameTxnTest {
 protected:
  struct Trip {
    std::size_t subtree = 0;
    NodeId root = kInvalidNode;
    MdsId src = -1;
    MdsId dst = -1;
    std::string old_path;
    std::string new_name = "rn_crash";
  };

  /// Arms `site` and drives a cross-server rename into it.
  Trip TripCrossRenameCrash(CrashSite site, bool torn) {
    Trip t;
    t.subtree = PickSubtree();
    t.root = cluster_.scheme().layers().subtrees[t.subtree].root;
    t.src = cluster_.scheme().subtree_owners()[t.subtree];
    t.dst = OtherAlive(t.src);
    t.old_path = workload_.tree.PathOf(t.root);
    cluster_.ArmCrash(site, torn);
    const auto result = cluster_.RenameTo(t.old_path, t.new_name, t.dst);
    EXPECT_EQ(result.status, MdsStatus::kUnavailable)
        << "crashed transaction must look like an outage to the client";
    EXPECT_TRUE(cluster_.crashed())
        << "site " << CrashSiteName(site) << " never tripped";
    return t;
  }

  std::string NewPath(const Trip& t) const {
    return t.old_path.substr(0, t.old_path.find_last_of('/') + 1) + t.new_name;
  }
};

// Crash after INTENT: nothing changed — recovery journals the abort, the
// old name still resolves, ownership never moved.
TEST_F(RenameCrashTest, IntentOnlyCrashRollsBack) {
  const Trip t = TripCrossRenameCrash(CrashSite::kAfterRenameIntent, false);
  const auto recovery = cluster_.Recover();
  EXPECT_EQ(recovery.renames_rolled_back, 1u);
  EXPECT_EQ(recovery.renames_rolled_forward, 0u);
  EXPECT_EQ(cluster_.renames_aborted(), 1u);

  EXPECT_EQ(cluster_.Stat(t.old_path).status, MdsStatus::kOk);
  EXPECT_EQ(cluster_.Stat(NewPath(t)).status, MdsStatus::kNotFound);
  EXPECT_EQ(cluster_.scheme().subtree_owners()[t.subtree], t.src);
  EXPECT_EQ(HoldersOf(cluster_, t.root), 1u);
  ExpectFsckClean(cluster_, "intent rollback");
  const FsckReport fsck = FsckCluster(cluster_);
  EXPECT_EQ(fsck.renames_aborted, 1u);
}

// Crash after PREPARE: the WAL carries the new name and destination, so
// recovery rolls forward — new name resolves, subtree owned by the
// destination, exactly once.
TEST_F(RenameCrashTest, PreparedCrashRollsForward) {
  const Trip t = TripCrossRenameCrash(CrashSite::kAfterRenamePrepare, false);
  const auto recovery = cluster_.Recover();
  EXPECT_EQ(recovery.renames_rolled_forward, 1u);
  EXPECT_EQ(recovery.renames_rolled_back, 0u);
  EXPECT_EQ(cluster_.renames_committed(), 1u);

  EXPECT_EQ(cluster_.Stat(t.old_path).status, MdsStatus::kNotFound);
  const auto stat = cluster_.Stat(NewPath(t));
  ASSERT_EQ(stat.status, MdsStatus::kOk);
  EXPECT_EQ(stat.served_by, t.dst);
  EXPECT_EQ(cluster_.scheme().subtree_owners()[t.subtree], t.dst);
  EXPECT_EQ(HoldersOf(cluster_, t.root), 1u);
  ExpectFsckClean(cluster_, "prepare roll-forward");
  const FsckReport fsck = FsckCluster(cluster_);
  EXPECT_EQ(fsck.renames_committed, 1u);
}

// Torn PREPARE: the tear demotes the transaction to intent-only, so it
// must roll back even though the apply step may already have run — the
// journaled pre-rename name is restored.
TEST_F(RenameCrashTest, TornPrepareRollsBackAndRestoresName) {
  const Trip t = TripCrossRenameCrash(CrashSite::kAfterRenamePrepare, true);
  const auto recovery = cluster_.Recover();
  EXPECT_TRUE(recovery.torn_tail_detected);
  EXPECT_EQ(recovery.renames_rolled_back, 1u);
  EXPECT_EQ(recovery.renames_rolled_forward, 0u);

  EXPECT_EQ(cluster_.Stat(t.old_path).status, MdsStatus::kOk);
  EXPECT_EQ(cluster_.Stat(NewPath(t)).status, MdsStatus::kNotFound);
  EXPECT_EQ(cluster_.scheme().subtree_owners()[t.subtree], t.src);
  ExpectFsckClean(cluster_, "torn prepare rollback");
}

// Crash after the apply step: the destination journaled the transfer
// before the crash, so recovery's roll-forward dedups on its WAL instead
// of double-applying, and the records end up at the destination once.
TEST_F(RenameCrashTest, ApplyCrashRollsForwardWithReceiverDedup) {
  const Trip t = TripCrossRenameCrash(CrashSite::kAfterRenameApply, false);
  const std::uint64_t dup_before = cluster_.duplicate_pulls_dropped();
  const auto recovery = cluster_.Recover();
  EXPECT_EQ(recovery.renames_rolled_forward, 1u);
  EXPECT_EQ(cluster_.duplicate_pulls_dropped(), dup_before + 1)
      << "re-delivery must dedup on the destination's journal";

  EXPECT_EQ(cluster_.scheme().subtree_owners()[t.subtree], t.dst);
  EXPECT_EQ(HoldersOf(cluster_, t.root), 1u);
  EXPECT_EQ(cluster_.Stat(NewPath(t)).status, MdsStatus::kOk);
  ExpectFsckClean(cluster_, "apply roll-forward");
}

// Crash after COMMIT: the transaction is durable and terminal — replay
// is a pure no-op (nothing rolls either way), and the renamed state
// survives recovery unchanged.
TEST_F(RenameCrashTest, CommittedCrashReplaysIdempotently) {
  const Trip t = TripCrossRenameCrash(CrashSite::kAfterRenameCommit, false);
  const auto recovery = cluster_.Recover();
  EXPECT_EQ(recovery.renames_rolled_forward, 0u);
  EXPECT_EQ(recovery.renames_rolled_back, 0u);

  EXPECT_EQ(cluster_.Stat(t.old_path).status, MdsStatus::kNotFound);
  EXPECT_EQ(cluster_.Stat(NewPath(t)).status, MdsStatus::kOk);
  EXPECT_EQ(cluster_.scheme().subtree_owners()[t.subtree], t.dst);
  EXPECT_EQ(HoldersOf(cluster_, t.root), 1u);
  ExpectFsckClean(cluster_, "commit idempotence");
  const FsckReport fsck = FsckCluster(cluster_);
  EXPECT_EQ(fsck.renames_committed, 1u);
  EXPECT_EQ(fsck.renames_aborted, 0u);
}

// In-place renames walk the same four sites; after every crash/recover
// the namespace matches the journal's verdict exactly.
TEST_F(RenameCrashTest, InPlaceRenameCrashesAtEverySite) {
  for (std::size_t s = kFirstRenameCrashSite; s < kCrashSiteCount; ++s) {
    const auto site = static_cast<CrashSite>(s);
    const std::string context = CrashSiteName(site);
    const std::size_t i = PickSubtree();
    const NodeId root = cluster_.scheme().layers().subtrees[i].root;
    // Resolve the root's *current* path through the cluster (earlier
    // iterations may have renamed it).
    std::string old_path = workload_.tree.PathOf(root);
    if (cluster_.Stat(old_path).status != MdsStatus::kOk) {
      // Renamed by a previous iteration: reconstruct via its record name.
      const std::string prefix = old_path.substr(0, old_path.find_last_of('/') + 1);
      for (std::size_t prev = kFirstRenameCrashSite; prev < s; ++prev) {
        const std::string candidate =
            prefix + "ip" + std::to_string(prev);
        if (cluster_.Stat(candidate).status == MdsStatus::kOk) {
          old_path = candidate;
          break;
        }
      }
    }
    ASSERT_EQ(cluster_.Stat(old_path).status, MdsStatus::kOk) << context;
    const std::string fresh = "ip" + std::to_string(s);
    cluster_.ArmCrash(site, false);
    EXPECT_EQ(cluster_.Rename(old_path, fresh).status,
              MdsStatus::kUnavailable)
        << context;
    ASSERT_TRUE(cluster_.crashed()) << context;
    const auto recovery = cluster_.Recover();
    const bool rolled_back = recovery.renames_rolled_back > 0;
    const std::string new_path =
        old_path.substr(0, old_path.find_last_of('/') + 1) + fresh;
    if (rolled_back) {
      EXPECT_EQ(cluster_.Stat(old_path).status, MdsStatus::kOk) << context;
      EXPECT_EQ(cluster_.Stat(new_path).status, MdsStatus::kNotFound)
          << context;
    } else {
      EXPECT_EQ(cluster_.Stat(new_path).status, MdsStatus::kOk) << context;
      EXPECT_EQ(cluster_.Stat(old_path).status, MdsStatus::kNotFound)
          << context;
    }
    EXPECT_EQ(HoldersOf(cluster_, root), 1u) << context;
    ExpectFsckClean(cluster_, context);
  }
}

// The rename-storm property sweep: ≥30 random tree shapes; on each, a
// storm of committed renames (in place and cross-server) followed by a
// crash at *every* rename site (torn and intact interleaved) and a
// recovery. Every recovery must be d2fsck-clean with exactly one owner
// resolving every renamed path, and no record lost or duplicated.
TEST(RenameTxnProperty, RenameStormEverySiteRecoversClean) {
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0x5E4A3E0000ULL + static_cast<std::uint64_t>(trial));
    SyntheticTreeConfig cfg;
    cfg.node_count = 100 + rng.NextBounded(300);
    cfg.max_depth = 4 + static_cast<std::uint32_t>(rng.NextBounded(8));
    cfg.dir_ratio = 0.2 + 0.3 * rng.NextDouble();
    cfg.depth_bias = 0.6 * rng.NextDouble();
    cfg.root_fanout = 4 + static_cast<std::uint32_t>(rng.NextBounded(16));
    NamespaceTree tree = BuildSyntheticTree(cfg, rng);
    for (NodeId id = 0; id < tree.size(); ++id)
      tree.AddAccess(id, rng.NextExponential(5.0));
    tree.RecomputeSubtreePopularity();

    const std::size_t m = 3 + rng.NextBounded(3);
    FunctionalCluster cluster(tree, m);
    std::size_t fresh = 0;

    // The mirrored tree tracks committed renames so paths stay valid.
    const auto pick_and_rename = [&](CrashSite site,
                                     bool torn) -> std::string {
      const auto owners = cluster.scheme().subtree_owners();
      const auto& subtrees = cluster.scheme().layers().subtrees;
      std::size_t i = subtrees.size();
      for (std::size_t k = 0; k < subtrees.size() && k < owners.size(); ++k)
        if (cluster.IsServerAlive(owners[k])) {
          i = k;
          break;
        }
      if (i == subtrees.size()) return "no subtree with alive owner";
      const NodeId root = subtrees[i].root;
      const std::string old_path = tree.PathOf(root);
      const std::string name =
          "st" + std::to_string(trial) + "_" + std::to_string(fresh++);
      MdsId dest = -1;
      if (rng.NextBool(0.5)) {
        for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
          if (k != owners[i] && cluster.IsServerAlive(k)) {
            dest = k;
            break;
          }
      }
      const bool arm = site != CrashSite::kAfterGlBump;  // sentinel misuse-proof
      if (arm) cluster.ArmCrash(site, torn);
      const auto result = dest >= 0 ? cluster.RenameTo(old_path, name, dest)
                                    : cluster.Rename(old_path, name);
      if (!arm && result.status == MdsStatus::kOk) tree.Rename(root, name);
      if (arm) {
        if (!cluster.crashed()) return "site never tripped";
        cluster.Recover();
        if (cluster.Stat(old_path).status == MdsStatus::kNotFound)
          tree.Rename(root, name);  // committed live or rolled forward
      }
      return "";
    };

    // Storm phase: a handful of uncrashed renames to salt the journal.
    for (int n = 0; n < 4; ++n) {
      const std::string err =
          pick_and_rename(CrashSite::kAfterGlBump, false);  // no arm
      ASSERT_EQ(err, "") << "trial " << trial << " storm rename " << n;
    }

    // Crash phase: every rename site, torn flags seeded.
    for (std::size_t s = kFirstRenameCrashSite; s < kCrashSiteCount; ++s) {
      const auto site = static_cast<CrashSite>(s);
      const bool torn = rng.NextBool(0.5);
      const std::string context = "trial " + std::to_string(trial) +
                                  " site " + CrashSiteName(site) +
                                  (torn ? " torn" : "");
      const std::string err = pick_and_rename(site, torn);
      ASSERT_EQ(err, "") << context;

      const FsckReport fsck = FsckCluster(cluster);
      ASSERT_TRUE(fsck.clean()) << context << ":\n" << FormatFsckReport(fsck);
      std::string path_err;
      ASSERT_EQ(cluster.CheckPathIntegrity(&path_err), 0u)
          << context << ": " << path_err;
      const std::size_t gl = cluster.scheme().split().global_layer.size();
      ASSERT_EQ(AliveLocalRecords(cluster), tree.size() - gl)
          << context << ": records lost or duplicated";
      // Exactly one owner resolves every subtree root's path.
      const auto& subtrees = cluster.scheme().layers().subtrees;
      for (const auto& st : subtrees)
        ASSERT_EQ(HoldersOf(cluster, st.root), 1u)
            << context << ": root " << tree.PathOf(st.root);
    }
  }
}

}  // namespace
}  // namespace d2tree
