// Tests for the paper's metric definitions (Sec. III): jumps (Def. 1),
// locality (Def. 3 / Eq. 7), loads and balance degree (Def. 5 / Eq. 2),
// update cost (Def. 4).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "d2tree/metrics/metrics.h"

namespace d2tree {
namespace {

/// /a/b/c chain plus /x; lets us craft exact jump patterns.
struct Fixture {
  NamespaceTree tree;
  NodeId a, b, c, x;

  Fixture() {
    c = tree.GetOrCreatePath("/a/b/c", NodeType::kFile);
    b = tree.Resolve("/a/b");
    a = tree.Resolve("/a");
    x = tree.GetOrCreatePath("/x", NodeType::kFile);
  }

  Assignment Assign(std::vector<MdsId> owners, std::size_t m) {
    Assignment asg;
    asg.mds_count = m;
    asg.owner.assign(tree.size(), 0);
    // owners ordered as {root, a, b, c, x}
    asg.owner[tree.root()] = owners[0];
    asg.owner[a] = owners[1];
    asg.owner[b] = owners[2];
    asg.owner[c] = owners[3];
    asg.owner[x] = owners[4];
    return asg;
  }
};

TEST(Jumps, ZeroWhenWholePathOnOneMds) {
  Fixture f;
  const Assignment a = f.Assign({0, 0, 0, 0, 1}, 2);
  EXPECT_EQ(JumpsFor(f.tree, a, f.c), 0u);
}

TEST(Jumps, CountsOwnerTransitions) {
  Fixture f;
  // root:0 a:1 b:0 c:1 → 3 transitions.
  const Assignment a = f.Assign({0, 1, 0, 1, 0}, 2);
  EXPECT_EQ(JumpsFor(f.tree, a, f.c), 3u);
}

TEST(Jumps, ReplicatedCrownCostsOneHopIntoLocalLayer) {
  Fixture f;
  // root,a replicated; b,c on MDS 1 → one hop (random replica → owner),
  // the jp_j = 1 of Eq. (7).
  const Assignment a = f.Assign({kReplicated, kReplicated, 1, 1, 0}, 2);
  EXPECT_EQ(JumpsFor(f.tree, a, f.c), 1u);
  // root,a replicated; b on 0, c on 1 → crown hop + owner change = 2.
  const Assignment b = f.Assign({kReplicated, kReplicated, 0, 1, 0}, 2);
  EXPECT_EQ(JumpsFor(f.tree, b, f.c), 2u);
  // A replicated node *between* two owned ones is transparent.
  const Assignment cse = f.Assign({0, kReplicated, 1, 1, 0}, 2);
  EXPECT_EQ(JumpsFor(f.tree, cse, f.c), 1u);
  // Target fully inside the crown: no hop at all.
  const Assignment gl = f.Assign({kReplicated, kReplicated, 1, 1, 0}, 2);
  EXPECT_EQ(JumpsFor(f.tree, gl, f.a), 0u);
}

TEST(Jumps, RootTargetIsFree) {
  Fixture f;
  const Assignment a = f.Assign({0, 1, 0, 1, 1}, 2);
  EXPECT_EQ(JumpsFor(f.tree, a, f.tree.root()), 0u);
}

TEST(Locality, SingleServerIsInfinite) {
  Fixture f;
  f.tree.AddAccess(f.c, 10);
  f.tree.RecomputeSubtreePopularity();
  const Assignment a = f.Assign({0, 0, 0, 0, 0}, 1);
  const LocalityReport r = ComputeLocality(f.tree, a);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_TRUE(std::isinf(r.locality));
}

TEST(Locality, MatchesHandComputation) {
  Fixture f;
  f.tree.AddAccess(f.c, 4);  // p: c=4, b=4, a=4, root=4
  f.tree.AddAccess(f.x, 6);  // x=6, root=10
  f.tree.RecomputeSubtreePopularity();
  // root:0 a:1 b:1 c:0 x:0 → jp(a)=1·4, jp(b)=1·4, jp(c)=2·4, jp(x)=0.
  const Assignment a = f.Assign({0, 1, 1, 0, 0}, 2);
  const LocalityReport r = ComputeLocality(f.tree, a);
  EXPECT_DOUBLE_EQ(r.cost, 4 + 4 + 8);
  EXPECT_DOUBLE_EQ(r.locality, 1.0 / 16.0);
}

TEST(Locality, Eq7FormForD2TreeStyleAssignment) {
  // GL = {root, a}; subtree {b, c} on MDS 0; {x} on MDS 1.
  Fixture f;
  f.tree.AddAccess(f.b, 2);
  f.tree.AddAccess(f.c, 3);
  f.tree.AddAccess(f.x, 5);
  f.tree.RecomputeSubtreePopularity();
  const Assignment a = f.Assign({kReplicated, kReplicated, 0, 0, 1}, 2);
  const LocalityReport r = ComputeLocality(f.tree, a);
  // Eq. (7): Σ_{LL} p_j = p_b + p_c + p_x = 5 + 3 + 5.
  EXPECT_DOUBLE_EQ(r.cost, 13.0);
}

TEST(Loads, RoutedModelChargesTargetsOwner) {
  Fixture f;
  f.tree.AddAccess(f.c, 8);   // target on MDS 0
  f.tree.AddAccess(f.a, 6);   // target replicated → spread 3 + 3
  f.tree.RecomputeSubtreePopularity();
  const Assignment a = f.Assign({kReplicated, kReplicated, 0, 0, 1}, 2);
  const auto loads = ComputeLoads(f.tree, a);
  EXPECT_DOUBLE_EQ(loads[0], 8 + 3);
  EXPECT_DOUBLE_EQ(loads[1], 3);
}

TEST(Loads, RoutedSumEqualsQueryVolume) {
  Fixture f;
  f.tree.AddAccess(f.c, 3);
  f.tree.AddAccess(f.x, 7);
  f.tree.RecomputeSubtreePopularity();
  const Assignment a = f.Assign({kReplicated, 1, 0, 1, 0}, 2);
  const auto loads = ComputeLoads(f.tree, a);
  EXPECT_NEAR(loads[0] + loads[1], 10.0, 1e-9);  // one unit per query
}

TEST(Loads, TraversalModelMatchesDef5) {
  Fixture f;
  f.tree.AddAccess(f.c, 8);
  f.tree.RecomputeSubtreePopularity();
  // root replicated (p=8 spread as 4+4); a,b,c on MDS 0 (p = 8,8,8).
  const Assignment a = f.Assign({kReplicated, 0, 0, 0, 1}, 2);
  const auto loads = ComputeTraversalLoads(f.tree, a);
  EXPECT_DOUBLE_EQ(loads[0], 8 + 8 + 8 + 4);
  EXPECT_DOUBLE_EQ(loads[1], 4);
}

TEST(Loads, TraversalSumEqualsTotalPopularity) {
  // Eq. (5): Σ_k L_k = Σ_j p_j under the literal Def. 5 accounting.
  Fixture f;
  f.tree.AddAccess(f.c, 3);
  f.tree.AddAccess(f.x, 7);
  f.tree.RecomputeSubtreePopularity();
  const Assignment a = f.Assign({kReplicated, 1, 0, 1, 0}, 2);
  const auto loads = ComputeTraversalLoads(f.tree, a);
  double total_p = 0.0;
  for (NodeId id = 0; id < f.tree.size(); ++id)
    total_p += f.tree.node(id).subtree_popularity;
  EXPECT_NEAR(loads[0] + loads[1], total_p, 1e-9);
}

TEST(Balance, PerfectBalanceIsInfinite) {
  const MdsCluster cluster = MdsCluster::Homogeneous(3);
  const BalanceReport r = ComputeBalanceFromLoads({5, 5, 5}, cluster);
  EXPECT_TRUE(std::isinf(r.balance));
  EXPECT_DOUBLE_EQ(r.mu, 5.0);
}

TEST(Balance, MatchesEq2ByHand) {
  const MdsCluster cluster = MdsCluster::Homogeneous(2);
  // L = {6, 2}: mu = 4; deviations ±2 → variance term = (4+4)/1 = 8.
  const BalanceReport r = ComputeBalanceFromLoads({6, 2}, cluster);
  EXPECT_DOUBLE_EQ(r.variance_term, 8.0);
  EXPECT_DOUBLE_EQ(r.balance, 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(r.relative[0], 2.0);
  EXPECT_DOUBLE_EQ(r.relative[1], -2.0);
}

TEST(Balance, HeterogeneousCapacityIdealLoad) {
  // C = {1, 3}; L = {2, 6} is perfectly proportional → infinite balance.
  const MdsCluster cluster{std::vector<double>{1.0, 3.0}};
  const BalanceReport r = ComputeBalanceFromLoads({2, 6}, cluster);
  EXPECT_DOUBLE_EQ(r.mu, 2.0);
  EXPECT_TRUE(std::isinf(r.balance));
}

TEST(Balance, WorseSpreadGivesLowerBalance) {
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  const double even = ComputeBalanceFromLoads({5, 5, 5, 5.2}, cluster).balance;
  const double skew = ComputeBalanceFromLoads({1, 1, 1, 17.2}, cluster).balance;
  EXPECT_GT(even, skew);
}

TEST(UpdateCost, SumsGlobalLayerCosts) {
  Fixture f;
  f.tree.SetUpdateCost(f.tree.root(), 2.0);
  f.tree.SetUpdateCost(f.a, 3.0);
  const Assignment a = f.Assign({kReplicated, kReplicated, 0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(ComputeUpdateCost(f.tree, a), 5.0);
  const Assignment none = f.Assign({0, 0, 0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(ComputeUpdateCost(f.tree, none), 0.0);
}

TEST(ReplicatedHitFraction, WeightsByIndividualPopularity) {
  Fixture f;
  f.tree.AddAccess(f.a, 3);   // will be replicated
  f.tree.AddAccess(f.c, 1);   // local
  f.tree.RecomputeSubtreePopularity();
  const Assignment a = f.Assign({kReplicated, kReplicated, 0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(ReplicatedHitFraction(f.tree, a), 0.75);
}

TEST(AssignmentValidate, CatchesBadOwners) {
  Fixture f;
  Assignment a = f.Assign({0, 0, 0, 0, 1}, 2);
  EXPECT_TRUE(a.Validate(f.tree));
  a.owner[f.c] = 7;  // out of range
  EXPECT_FALSE(a.Validate(f.tree));
  a.owner[f.c] = 1;
  a.owner.pop_back();  // size mismatch
  EXPECT_FALSE(a.Validate(f.tree));
}

TEST(AssignmentValidate, ConnectedCrownRequirement) {
  Fixture f;
  // b replicated but parent a is not → crown disconnected.
  Assignment a = f.Assign({kReplicated, 0, kReplicated, 0, 1}, 2);
  EXPECT_TRUE(a.Validate(f.tree, false));
  EXPECT_FALSE(a.Validate(f.tree, true));
}

TEST(CountMovedNodes, CountsDifferences) {
  Fixture f;
  const Assignment a = f.Assign({0, 0, 0, 0, 1}, 2);
  Assignment b = a;
  EXPECT_EQ(CountMovedNodes(a, b), 0u);
  b.owner[f.c] = 1;
  b.owner[f.x] = 0;
  EXPECT_EQ(CountMovedNodes(a, b), 2u);
}

}  // namespace
}  // namespace d2tree
