// Tests for the trace module and the synthetic dataset profiles (the
// Table I / Table II substitutions, DESIGN.md §3).
#include <gtest/gtest.h>

#include <sstream>

#include "d2tree/core/layers.h"
#include "d2tree/core/splitter.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/trace/profiles.h"
#include "d2tree/trace/trace.h"

namespace d2tree {
namespace {

TEST(Trace, OpBreakdownComputesFractions) {
  Trace t({{OpType::kRead, 1},
           {OpType::kRead, 2},
           {OpType::kWrite, 1},
           {OpType::kUpdate, 3}});
  const auto b = t.OpBreakdown();
  EXPECT_DOUBLE_EQ(b[0], 0.5);
  EXPECT_DOUBLE_EQ(b[1], 0.25);
  EXPECT_DOUBLE_EQ(b[2], 0.25);
}

TEST(Trace, EmptyBreakdownIsZero) {
  const auto b = Trace{}.OpBreakdown();
  EXPECT_DOUBLE_EQ(b[0] + b[1] + b[2], 0.0);
}

TEST(Trace, ChargePopularityBumpsTargets) {
  NamespaceTree tree;
  const NodeId f1 = tree.GetOrCreatePath("/a/f1", NodeType::kFile);
  const Trace t({{OpType::kRead, f1}, {OpType::kWrite, f1}});
  t.ChargePopularity(tree);
  EXPECT_DOUBLE_EQ(tree.node(f1).individual_popularity, 2.0);
  EXPECT_DOUBLE_EQ(tree.node(tree.root()).subtree_popularity, 2.0);
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace t({{OpType::kRead, 5}, {OpType::kUpdate, 9}});
  std::stringstream ss;
  t.Save(ss);
  const Trace u = Trace::Load(ss);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u.records()[0].op, OpType::kRead);
  EXPECT_EQ(u.records()[1].node, 9u);
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream ss("bogus");
  EXPECT_THROW(Trace::Load(ss), std::runtime_error);
}

TEST(Trace, OpTypeNames) {
  EXPECT_STREQ(OpTypeName(OpType::kRead), "read");
  EXPECT_STREQ(OpTypeName(OpType::kWrite), "write");
  EXPECT_STREQ(OpTypeName(OpType::kUpdate), "update");
}

struct ProfileCase {
  const char* name;
  TraceProfile (*make)(double);
  double read, write, update;  // Table II row
  std::uint32_t max_depth;     // Table I column
};

class ProfileSweep : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(ProfileSweep, MatchesTableIAndTableII) {
  const ProfileCase& pc = GetParam();
  const Workload w = GenerateWorkload(pc.make(0.1));
  // Table I: maximum path depth.
  EXPECT_EQ(w.tree.MaxDepth(), pc.max_depth);
  // Table II: operation mix within 1% absolute.
  const auto b = w.trace.OpBreakdown();
  EXPECT_NEAR(b[0], pc.read, 0.01) << "read";
  EXPECT_NEAR(b[1], pc.write, 0.01) << "write";
  EXPECT_NEAR(b[2], pc.update, 0.005) << "update";
  // Popularity was charged.
  EXPECT_DOUBLE_EQ(w.tree.TotalIndividualPopularity(),
                   static_cast<double>(w.trace.size()));
}

TEST_P(ProfileSweep, DeterministicRegeneration) {
  const ProfileCase& pc = GetParam();
  const Workload a = GenerateWorkload(pc.make(0.02));
  const Workload b = GenerateWorkload(pc.make(0.02));
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); i += 97) {
    EXPECT_EQ(a.trace.records()[i].node, b.trace.records()[i].node);
    EXPECT_EQ(a.trace.records()[i].op, b.trace.records()[i].op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, ProfileSweep,
    ::testing::Values(
        ProfileCase{"DTR", &DtrProfile, 0.67743, 0.26137, 0.06119, 49},
        ProfileCase{"LMBE", &LmbeProfile, 0.78877, 0.21108, 0.00015, 9},
        ProfileCase{"RA", &RaProfile, 0.47734, 0.36174, 0.16102, 13}),
    [](const ::testing::TestParamInfo<ProfileCase>& info) {
      return info.param.name;
    });

TEST(ProfileSkew, DtrDirectsMostQueriesToOnePercentGlobalLayer) {
  // Sec. VI-A: "In DTR, 83.06% queries are directed to global layer" with a
  // 1% GL. Our synthetic equivalent must land in that regime (>= 70%).
  const Workload w = GenerateWorkload(DtrProfile(0.2));
  const SplitResult r = SplitTreeToProportion(w.tree, 0.01);
  const SplitLayers layers = ExtractLayers(w.tree, r.global_layer);
  double gl_hits = 0.0, total = 0.0;
  for (NodeId id = 0; id < w.tree.size(); ++id) {
    total += w.tree.node(id).individual_popularity;
    if (layers.in_global[id]) gl_hits += w.tree.node(id).individual_popularity;
  }
  EXPECT_GT(gl_hits / total, 0.70);
}

TEST(ProfileSkew, LmbeKeepsMajorityOfQueriesInLocalLayer) {
  // Sec. VI-A: "58.57% of its queries are directed to local layer".
  const Workload w = GenerateWorkload(LmbeProfile(0.2));
  const SplitResult r = SplitTreeToProportion(w.tree, 0.01);
  const SplitLayers layers = ExtractLayers(w.tree, r.global_layer);
  double ll_hits = 0.0, total = 0.0;
  for (NodeId id = 0; id < w.tree.size(); ++id) {
    total += w.tree.node(id).individual_popularity;
    if (!layers.in_global[id]) ll_hits += w.tree.node(id).individual_popularity;
  }
  EXPECT_GT(ll_hits / total, 0.50);
}

TEST(ProfileSkew, RaUpdatesSkewToGlobalLayer) {
  // Sec. VI-A: RA has 16% updates, "of which 67% operations are directed to
  // global layer".
  const Workload w = GenerateWorkload(RaProfile(0.1));
  const SplitResult r = SplitTreeToProportion(w.tree, 0.01);
  const SplitLayers layers = ExtractLayers(w.tree, r.global_layer);
  double gl_updates = 0.0, updates = 0.0;
  for (const TraceRecord& rec : w.trace.records()) {
    if (rec.op != OpType::kUpdate) continue;
    updates += 1.0;
    if (layers.in_global[rec.node]) gl_updates += 1.0;
  }
  ASSERT_GT(updates, 0.0);
  EXPECT_GT(gl_updates / updates, 0.55);
}

TEST(ProfileScale, RecordCountsKeepPaperRatios) {
  // Table I ratio DTR : LMBE : RA ≈ 34.3M : 88.2M : 259.9M ≈ 1 : 2.57 : 7.57.
  const auto dtr = DtrProfile(1.0), lmbe = LmbeProfile(1.0), ra = RaProfile(1.0);
  const double r1 = static_cast<double>(lmbe.record_count) /
                    static_cast<double>(dtr.record_count);
  const double r2 = static_cast<double>(ra.record_count) /
                    static_cast<double>(dtr.record_count);
  EXPECT_NEAR(r1, 2.57, 0.6);
  EXPECT_NEAR(r2, 7.57, 1.2);
}

}  // namespace
}  // namespace d2tree
