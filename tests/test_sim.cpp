// Tests for the discrete-event cluster simulator: routing, queueing,
// locking, and the experiment harness.
#include <gtest/gtest.h>

#include <cmath>

#include "d2tree/core/d2tree.h"
#include "d2tree/sim/cluster_sim.h"
#include "d2tree/sim/experiment.h"
#include "d2tree/sim/route.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

Workload SmallWorkload() { return GenerateWorkload(LmbeProfile(0.05)); }

/// Router that always sends to one fixed server — for queueing math tests.
class FixedRouter : public RoutePlanner {
 public:
  explicit FixedRouter(MdsId target) : target_(target) {}
  RoutePlan PlanRoute(const TraceRecord&, Rng&) const override {
    return {{target_}, false, false};
  }

 private:
  MdsId target_;
};

/// Router spreading uniformly over all servers.
class UniformRouter : public RoutePlanner {
 public:
  explicit UniformRouter(std::size_t m) : m_(m) {}
  RoutePlan PlanRoute(const TraceRecord&, Rng& rng) const override {
    return {{static_cast<MdsId>(rng.NextBounded(m_))}, false, false};
  }

 private:
  std::size_t m_;
};

Trace ReadTrace(std::size_t n) {
  std::vector<TraceRecord> records(n, {OpType::kRead, 0});
  return Trace(std::move(records));
}

TEST(ClusterSim, SingleServerThroughputIsServiceBound) {
  SimConfig cfg;
  cfg.client_count = 50;
  cfg.max_ops = 20000;
  const Trace trace = ReadTrace(100);
  const FixedRouter router(0);
  const SimResult r = RunClusterSim(trace, router, 4, cfg);
  EXPECT_EQ(r.completed_ops, 20000u);
  // One server at 1/service_time capacity = 10k ops/s; closed-loop keeps it
  // saturated, minus warmup slack.
  EXPECT_NEAR(r.throughput, 1.0 / cfg.service_time, 0.05 / cfg.service_time);
  EXPECT_GT(r.MaxUtilization(), 0.9);
  // Only server 0 did any work.
  EXPECT_GT(r.server_ops[0], 0u);
  EXPECT_EQ(r.server_ops[1], 0u);
}

TEST(ClusterSim, ThroughputScalesWithServers) {
  SimConfig cfg;
  cfg.client_count = 200;
  cfg.max_ops = 30000;
  const Trace trace = ReadTrace(100);
  const UniformRouter r4(4), r16(16);
  const double t4 = RunClusterSim(trace, r4, 4, cfg).throughput;
  const double t16 = RunClusterSim(trace, r16, 16, cfg).throughput;
  EXPECT_GT(t16, 2.5 * t4);
}

TEST(ClusterSim, ClientBoundWhenServersIdle) {
  SimConfig cfg;
  cfg.client_count = 4;  // tiny closed loop
  cfg.max_ops = 4000;
  const Trace trace = ReadTrace(100);
  const UniformRouter router(8);
  const SimResult r = RunClusterSim(trace, router, 8, cfg);
  // Latency floor = 2 hops + service; throughput = clients / latency.
  const double latency = 2 * cfg.net_latency + cfg.service_time;
  EXPECT_NEAR(r.mean_latency, latency, latency * 0.1);
  EXPECT_NEAR(r.throughput, 4.0 / latency, 4.0 / latency * 0.1);
  EXPECT_LT(r.MaxUtilization(), 0.5);
}

TEST(ClusterSim, MoreHopsMeanMoreLatency) {
  SimConfig cfg;
  cfg.client_count = 8;
  cfg.max_ops = 2000;
  const Trace trace = ReadTrace(100);

  class TwoHopRouter : public RoutePlanner {
   public:
    RoutePlan PlanRoute(const TraceRecord&, Rng&) const override {
      return {{0, 1}, false, false};
    }
  };
  const FixedRouter one(0);
  const TwoHopRouter two;
  const double lat1 = RunClusterSim(trace, one, 2, cfg).mean_latency;
  const double lat2 = RunClusterSim(trace, two, 2, cfg).mean_latency;
  EXPECT_GT(lat2, lat1 + 0.9 * cfg.net_latency);
}

TEST(ClusterSim, GlobalUpdatesSerializePerNode) {
  SimConfig cfg;
  cfg.client_count = 50;
  cfg.max_ops = 5000;
  // All updates to the SAME node: the per-node lock serializes them.
  std::vector<TraceRecord> recs(100, {OpType::kUpdate, 7});
  const Trace trace(std::move(recs));

  class GlUpdateRouter : public RoutePlanner {
   public:
    RoutePlan PlanRoute(const TraceRecord&, Rng& rng) const override {
      return {{static_cast<MdsId>(rng.NextBounded(8))}, true, false};
    }
  };
  const GlUpdateRouter router;
  const SimResult r = RunClusterSim(trace, router, 8, cfg);
  EXPECT_GT(r.lock_wait_total, 0.0);
  // Lock hold = net + 8*per_replica_write; throughput can't exceed 1/hold.
  const double hold = cfg.net_latency + 8 * cfg.per_replica_write;
  EXPECT_LT(r.throughput, 1.05 / hold);
}

TEST(ClusterSim, UpdatesToDistinctNodesDoNotSerialize) {
  SimConfig cfg;
  cfg.client_count = 50;
  cfg.max_ops = 5000;
  std::vector<TraceRecord> recs;
  for (NodeId n = 0; n < 100; ++n) recs.push_back({OpType::kUpdate, n});
  const Trace trace(std::move(recs));
  class GlUpdateRouter : public RoutePlanner {
   public:
    RoutePlan PlanRoute(const TraceRecord&, Rng& rng) const override {
      return {{static_cast<MdsId>(rng.NextBounded(8))}, true, false};
    }
  };
  const GlUpdateRouter router;
  const SimResult r = RunClusterSim(trace, router, 8, cfg);
  const double hold = cfg.net_latency + 8 * cfg.per_replica_write;
  EXPECT_GT(r.throughput, 1.5 / hold);  // beats the single-lock ceiling
}

TEST(ClusterSim, DeterministicInSeed) {
  SimConfig cfg;
  cfg.max_ops = 3000;
  const Workload w = SmallWorkload();
  D2TreeScheme scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(4));
  const D2TreeRouter router(w.tree, a, scheme.local_index(), 0.1);
  const SimResult r1 = RunClusterSim(w.trace, router, 4, cfg);
  const SimResult r2 = RunClusterSim(w.trace, router, 4, cfg);
  EXPECT_DOUBLE_EQ(r1.throughput, r2.throughput);
  EXPECT_EQ(r1.server_ops, r2.server_ops);
}

TEST(AssignmentRouterTest, FollowsOwnerChain) {
  NamespaceTree t;
  const NodeId c = t.GetOrCreatePath("/a/b/c", NodeType::kFile);
  Assignment a;
  a.mds_count = 3;
  a.owner = {0, 1, 1, 2};  // root, a, b, c
  const AssignmentRouter router(t, a);
  Rng rng(1);
  const RoutePlan plan = router.PlanRoute({OpType::kRead, c}, rng);
  ASSERT_EQ(plan.visits.size(), 3u);
  EXPECT_EQ(plan.visits[0], 0);
  EXPECT_EQ(plan.visits[1], 1);
  EXPECT_EQ(plan.visits[2], 2);
  EXPECT_FALSE(plan.global_update);
}

TEST(AssignmentRouterTest, ClientCacheSkipsAncestors) {
  NamespaceTree t;
  const NodeId c = t.GetOrCreatePath("/a/b/c", NodeType::kFile);
  Assignment a;
  a.mds_count = 3;
  a.owner = {0, 1, 1, 2};
  std::vector<bool> cached{true, true, false, false};  // root and /a cached
  const AssignmentRouter router(t, a, &cached);
  Rng rng(1);
  const RoutePlan plan = router.PlanRoute({OpType::kRead, c}, rng);
  ASSERT_EQ(plan.visits.size(), 2u);  // b's owner, then c's
  EXPECT_EQ(plan.visits[0], 1);
  EXPECT_EQ(plan.visits[1], 2);
}

TEST(AssignmentRouterTest, CachedTargetUpdateFlagged) {
  NamespaceTree t;
  const NodeId c = t.GetOrCreatePath("/a", NodeType::kDirectory);
  Assignment a;
  a.mds_count = 2;
  a.owner = {0, 1};
  std::vector<bool> cached{true, true};
  const AssignmentRouter router(t, a, &cached);
  Rng rng(1);
  EXPECT_TRUE(router.PlanRoute({OpType::kUpdate, c}, rng).cached_target_update);
  EXPECT_FALSE(router.PlanRoute({OpType::kRead, c}, rng).cached_target_update);
}

TEST(AssignmentRouterTest, FullyReplicatedPathGoesToRandomServer) {
  NamespaceTree t;
  const NodeId a1 = t.GetOrCreatePath("/a", NodeType::kDirectory);
  Assignment a;
  a.mds_count = 4;
  a.owner = {kReplicated, kReplicated};
  const AssignmentRouter router(t, a);
  Rng rng(5);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 4000; ++i) {
    const RoutePlan plan = router.PlanRoute({OpType::kRead, a1}, rng);
    ASSERT_EQ(plan.visits.size(), 1u);
    ++hits[plan.visits[0]];
  }
  for (int h : hits) EXPECT_NEAR(h, 1000, 200);
}

TEST(D2TreeRouterTest, RoutesMatchIndexAndMissAddsHop) {
  const Workload w = SmallWorkload();
  D2TreeScheme scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(6));

  const D2TreeRouter exact(w.tree, a, scheme.local_index(), 0.0);
  Rng rng(3);
  std::size_t ll_routes = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    const TraceRecord& rec = w.trace.records()[i];
    const RoutePlan plan = exact.PlanRoute(rec, rng);
    if (a.IsReplicated(rec.node)) {
      EXPECT_EQ(plan.visits.size(), 1u);
      EXPECT_EQ(plan.global_update, rec.op == OpType::kUpdate);
    } else {
      ASSERT_EQ(plan.visits.size(), 1u);
      EXPECT_EQ(plan.visits[0], a.OwnerOf(rec.node));
      ++ll_routes;
    }
  }
  EXPECT_GT(ll_routes, 0u);

  // With misses, some local-layer routes gain a forwarding hop.
  const D2TreeRouter lossy(w.tree, a, scheme.local_index(), 0.5);
  std::size_t forwarded = 0;
  for (std::size_t i = 0; i < 2000; ++i) {
    const TraceRecord& rec = w.trace.records()[i];
    if (a.IsReplicated(rec.node)) continue;
    const RoutePlan plan = lossy.PlanRoute(rec, rng);
    EXPECT_EQ(plan.visits.back(), a.OwnerOf(rec.node));
    forwarded += plan.visits.size() > 1;
  }
  EXPECT_GT(forwarded, 100u);
}

TEST(TopPopularityClientCacheTest, PicksHottestCrown) {
  const Workload w = SmallWorkload();
  const auto cache = TopPopularityClientCache(w.tree, 0.01);
  std::size_t count = 0;
  double min_cached = 1e300, max_uncached = 0.0;
  for (NodeId id = 0; id < w.tree.size(); ++id) {
    const double p = w.tree.node(id).subtree_popularity;
    if (cache[id]) {
      ++count;
      min_cached = std::min(min_cached, p);
    } else {
      max_uncached = std::max(max_uncached, p);
    }
  }
  EXPECT_NEAR(count, w.tree.size() / 100, 2);
  EXPECT_GE(min_cached, max_uncached);
  EXPECT_TRUE(cache[w.tree.root()]);
}

TEST(Experiment, ProducesSaneResultsForAllSchemes) {
  const Workload w = SmallWorkload();
  for (const char* id : {"d2tree", "static-subtree", "drop"}) {
    ExperimentOptions opt;
    opt.adjustment_rounds = 3;
    opt.sim.max_ops = 5000;
    const SchemeRunResult r = RunSchemeExperiment(id, w, 4, opt);
    EXPECT_EQ(r.scheme, id);
    EXPECT_GT(r.throughput, 0.0) << id;
    EXPECT_GT(r.locality, 0.0) << id;
    EXPECT_GT(r.balance, 0.0) << id;
    EXPECT_GT(r.mean_latency, 0.0) << id;
    EXPECT_LE(r.mean_latency, r.p99_latency) << id;
  }
}

TEST(Experiment, OnlyReplicatingSchemesPayUpdateCost) {
  const Workload w = SmallWorkload();
  ExperimentOptions opt;
  opt.adjustment_rounds = 2;
  opt.run_throughput_sim = false;
  EXPECT_GT(RunSchemeExperiment("d2tree", w, 4, opt).update_cost, 0.0);
  EXPECT_DOUBLE_EQ(RunSchemeExperiment("drop", w, 4, opt).update_cost, 0.0);
  EXPECT_DOUBLE_EQ(RunSchemeExperiment("hash", w, 4, opt).update_cost, 0.0);
}

}  // namespace
}  // namespace d2tree
