// LSM store-engine suite (LABELS "store"): the embedded engine's own
// contract — WAL replay, torn-tail truncation, memtable seals, size-tiered
// compaction, tombstone shadowing, O(1) table ingest — plus the offline
// auditors (AuditSSTable, FsckStoreDir) against both clean and corrupted
// files, and the cluster-level integration: a FunctionalCluster on the
// LSM backend ships subtree handoffs as sealed tables, survives crash
// sites with torn engine WALs, and resumes a durable namespace across a
// full cluster teardown/reconstruct on the same directory.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/fsck.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/storage/lsm_engine.h"
#include "d2tree/storage/sstable.h"
#include "d2tree/storage/store_engine.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    path_ = (fs::temp_directory_path() /
             ("d2t_store_" + std::string(tag) + "_" +
              std::to_string(::getpid()) + "_XXXXXX"))
                .string();
    if (::mkdtemp(path_.data()) == nullptr) path_.clear();
  }
  ~ScratchDir() {
    if (!path_.empty()) {
      std::error_code ec;
      fs::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

InodeRecord Rec(NodeId id, const std::string& name, std::uint64_t mtime = 0,
                NodeId parent = 0) {
  InodeRecord r;
  r.id = id;
  r.parent = parent;
  r.name = name;
  r.type = NodeType::kFile;
  r.attrs.mtime = mtime;
  return r;
}

TEST(LsmEngine, PutGetRemoveScanRoundTrip) {
  ScratchDir dir("basic");
  ASSERT_FALSE(dir.path().empty());
  LsmEngine engine(dir.path());

  for (NodeId id : {7u, 3u, 11u, 5u}) engine.Put(Rec(id, "n" + std::to_string(id)));
  EXPECT_EQ(engine.Size(), 4u);
  EXPECT_TRUE(engine.Contains(11));
  ASSERT_TRUE(engine.Get(3).has_value());
  EXPECT_EQ(engine.Get(3)->name, "n3");

  const auto removed = engine.Remove(7);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->name, "n7");
  EXPECT_FALSE(engine.Contains(7));
  EXPECT_EQ(engine.Size(), 3u);

  // Scan visits live records in ascending id order.
  std::vector<NodeId> seen;
  engine.Scan([&](const InodeRecord& r) { seen.push_back(r.id); });
  EXPECT_EQ(seen, (std::vector<NodeId>{3, 5, 11}));
  EXPECT_TRUE(engine.AuditStorage().empty());
}

TEST(LsmEngine, ReopenReplaysWalAndTornTailTruncates) {
  ScratchDir dir("reopen");
  ASSERT_FALSE(dir.path().empty());
  LsmEngine engine(dir.path());
  EXPECT_FALSE(engine.last_recovery().opened_existing);

  for (NodeId id = 1; id <= 50; ++id) engine.Put(Rec(id, "f" + std::to_string(id), id));
  engine.Remove(25);

  // Restart: WAL replay rebuilds the exact live set.
  StoreRecoveryInfo info = engine.Reopen();
  EXPECT_TRUE(info.opened_existing);
  EXPECT_EQ(info.wal_records_replayed, 51u);  // 50 puts + 1 remove
  EXPECT_FALSE(info.wal_torn_tail);
  EXPECT_EQ(engine.Size(), 49u);
  EXPECT_FALSE(engine.Contains(25));
  ASSERT_TRUE(engine.Get(50).has_value());
  EXPECT_EQ(engine.Get(50)->attrs.mtime, 50u);

  // A mid-append kill tears the WAL tail; the next open truncates it and
  // loses at most the torn record — never anything committed before it.
  engine.Put(Rec(99, "doomed"));
  engine.TearWalTail(5);
  info = engine.Reopen();
  EXPECT_TRUE(info.wal_torn_tail);
  EXPECT_GT(info.wal_torn_bytes, 0u);
  EXPECT_FALSE(engine.Contains(99));
  EXPECT_EQ(engine.Size(), 49u);
  EXPECT_TRUE(engine.AuditStorage().empty());
}

TEST(LsmEngine, FlushSealsTableAndCompactionMerges) {
  ScratchDir dir("compact");
  ASSERT_FALSE(dir.path().empty());
  LsmOptions options;
  options.memtable_limit_bytes = 2048;  // force frequent seals
  options.tier_fanout = 2;
  LsmEngine engine(dir.path(), options);

  for (NodeId id = 1; id <= 400; ++id)
    engine.Put(Rec(id, "node_with_a_longish_name_" + std::to_string(id), id));
  engine.Flush();

  const StoreEngineStats stats = engine.Stats();
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.tables, 0u);

  // Everything survives the seal/merge churn, and the on-disk state
  // passes the deep audit plus a cold reopen.
  EXPECT_EQ(engine.Size(), 400u);
  EXPECT_TRUE(engine.AuditStorage().empty());
  const StoreRecoveryInfo info = engine.Reopen();
  EXPECT_GT(info.tables_opened, 0u);
  EXPECT_EQ(engine.Size(), 400u);
  ASSERT_TRUE(engine.Get(333).has_value());
  EXPECT_EQ(engine.Get(333)->attrs.mtime, 333u);
}

TEST(LsmEngine, TombstonesShadowSealedTables) {
  ScratchDir dir("tomb");
  ASSERT_FALSE(dir.path().empty());
  LsmEngine engine(dir.path());

  for (NodeId id = 1; id <= 10; ++id) engine.Put(Rec(id, "a"));
  engine.Flush();  // records now live in a sealed table
  engine.Remove(4);
  engine.Remove(8);
  EXPECT_EQ(engine.Size(), 8u);
  EXPECT_FALSE(engine.Get(4).has_value());

  // The tombstones themselves survive a restart (they are journaled) and
  // keep shadowing the sealed table.
  const StoreRecoveryInfo reopened = engine.Reopen();
  EXPECT_TRUE(reopened.opened_existing);
  EXPECT_EQ(reopened.wal_records_replayed, 2u);  // the two tombstones
  EXPECT_FALSE(reopened.wal_torn_tail);
  EXPECT_EQ(engine.Size(), 8u);
  EXPECT_FALSE(engine.Contains(8));
  EXPECT_TRUE(engine.Contains(9));
}

TEST(LsmEngine, IngestTableFileLinksInWholeSubtree) {
  ScratchDir dir("ingest");
  ASSERT_FALSE(dir.path().empty());

  // A migration source seals the extracted subtree into one table...
  std::vector<InodeRecord> shipped;
  for (NodeId id = 100; id < 164; ++id)
    shipped.push_back(Rec(id, "m" + std::to_string(id), id));
  const std::string table = dir.Sub("subtree.sst");
  ASSERT_TRUE(WriteRecordsTable(shipped, table));

  // ...and the destination links it in: one call, no per-record inserts.
  LsmEngine engine(dir.Sub("dest"));
  engine.Put(Rec(7, "resident"));
  EXPECT_EQ(engine.IngestTableFile(table), shipped.size());
  EXPECT_EQ(engine.Stats().table_ingests, 1u);
  EXPECT_EQ(engine.Size(), shipped.size() + 1);
  ASSERT_TRUE(engine.Get(150).has_value());
  EXPECT_EQ(engine.Get(150)->name, "m150");
  EXPECT_TRUE(engine.Get(7).has_value());

  // The ingested table is engine state now: a restart keeps it — the
  // manifest lists both the flushed-memtable table and the linked one.
  const StoreRecoveryInfo reopened = engine.Reopen();
  EXPECT_TRUE(reopened.opened_existing);
  EXPECT_EQ(reopened.tables_opened, 2u);
  EXPECT_EQ(engine.Size(), shipped.size() + 1);
  EXPECT_TRUE(engine.AuditStorage().empty());
}

TEST(SSTable, AuditCatchesCorruptionAndFsckStoreDirCatchesStrays) {
  ScratchDir dir("audit");
  ASSERT_FALSE(dir.path().empty());
  LsmEngine engine(dir.path());
  for (NodeId id = 1; id <= 200; ++id)
    engine.Put(Rec(id, "padpadpadpad" + std::to_string(id)));
  engine.Flush();
  ASSERT_GT(engine.Stats().tables, 0u);

  // Clean store directory: offline fsck agrees with the engine's audit.
  FsckReport clean = FsckStoreDir(dir.path());
  EXPECT_TRUE(clean.clean()) << FormatFsckReport(clean);
  EXPECT_GT(clean.store_tables, 0u);
  EXPECT_EQ(clean.store_entries, 200u);

  // Find the sealed table and flip one data byte: the per-block CRCs in
  // the index must catch it in both auditors.
  std::string table;
  for (const auto& entry : fs::directory_iterator(dir.path()))
    if (entry.path().extension() == ".sst") table = entry.path().string();
  ASSERT_FALSE(table.empty());
  {
    std::fstream f(table, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(10);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  const SSTableAudit audit = AuditSSTable(table);
  EXPECT_FALSE(audit.clean());
  EXPECT_FALSE(FsckStoreDir(dir.path()).clean());
  EXPECT_FALSE(engine.AuditStorage().empty());

  // A .sst the MANIFEST does not list is a stray (crash between seal and
  // manifest rewrite); fsck flags it even when everything else is clean.
  ScratchDir stray_dir("stray");
  LsmEngine stray_engine(stray_dir.path());
  stray_engine.Put(Rec(1, "x"));
  std::ofstream(stray_dir.Sub("999.sst")) << "not a table";
  const FsckReport stray = FsckStoreDir(stray_dir.path());
  ASSERT_FALSE(stray.clean());
  EXPECT_EQ(stray.issues[0].check, "store.stray-table");
}

// --- cluster integration -------------------------------------------------

StoreSpec LsmSpec(const std::string& dir) {
  StoreSpec spec;
  spec.backend = StoreSpec::Backend::kLsm;
  spec.data_dir = dir;
  return spec;
}

TEST(PersistentCluster, MigrationsShipSealedTables) {
  ScratchDir dir("bulk");
  ASSERT_FALSE(dir.path().empty());
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  FunctionalCluster cluster(w.tree, 4, {}, nullptr, LsmSpec(dir.path()));

  // Skew popularity, then force migrations by killing a server: its
  // subtrees re-home through the pending pool.
  const auto& ops = w.trace.records();
  for (std::size_t i = 0; i < ops.size() && i < 4000; ++i)
    cluster.Stat(w.tree.PathOf(ops[i].node));
  cluster.KillServer(3);
  cluster.RunAdjustmentRound();

  EXPECT_GT(cluster.bulk_tables_shipped(), 0u)
      << "persistent backend must ship handoffs as sealed tables";
  EXPECT_GT(cluster.bulk_records_shipped(), 0u);

  std::string err;
  EXPECT_TRUE(cluster.CheckConsistency(&err)) << err;
  const FsckReport report = FsckCluster(cluster);
  EXPECT_TRUE(report.clean()) << FormatFsckReport(report);

  // Cross-server rename rides the same bulk path.
  const std::uint64_t before = cluster.bulk_tables_shipped();
  const auto owners = cluster.scheme().subtree_owners();
  const auto& subtrees = cluster.scheme().layers().subtrees;
  for (std::size_t i = 0; i < subtrees.size() && i < owners.size(); ++i) {
    if (!cluster.IsServerAlive(owners[i])) continue;
    const MdsId dest = owners[i] == 0 ? 1 : 0;
    if (!cluster.IsServerAlive(dest)) continue;
    const auto result =
        cluster.RenameTo(w.tree.PathOf(subtrees[i].root), "bulk_renamed", dest);
    if (result.status == MdsStatus::kOk && result.cross_server &&
        result.records_moved > 0)
      break;
  }
  EXPECT_GT(cluster.bulk_tables_shipped(), before);
  EXPECT_TRUE(cluster.CheckConsistency(&err)) << err;
}

TEST(PersistentCluster, CrashRecoveryCoversTornStoreWals) {
  ScratchDir dir("crash");
  ASSERT_FALSE(dir.path().empty());
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  FunctionalCluster cluster(w.tree, 4, {}, nullptr, LsmSpec(dir.path()));
  const auto& ops = w.trace.records();
  for (std::size_t i = 0; i < ops.size() && i < 2000; ++i)
    cluster.Stat(w.tree.PathOf(ops[i].node));

  // The torn arm tears the Monitor journal AND every engine WAL: recovery
  // must replay the stores through their own torn-tail truncation.
  cluster.ArmCrash(CrashSite::kAfterPrepare, /*torn_tail=*/true);
  cluster.KillServer(3);
  cluster.RunAdjustmentRound();
  ASSERT_TRUE(cluster.crashed());

  const auto report = cluster.Recover();
  EXPECT_GT(report.store_wals_torn, 0u);
  EXPECT_GT(report.store_wal_records_replayed, 0u);

  std::string err;
  EXPECT_TRUE(cluster.CheckConsistency(&err)) << err;
  const FsckReport fsck = FsckCluster(cluster);
  EXPECT_TRUE(fsck.clean()) << FormatFsckReport(fsck);
}

TEST(PersistentCluster, RestartOnSameDirectoryResumesDurableNamespace) {
  ScratchDir dir("resume");
  ASSERT_FALSE(dir.path().empty());
  const Workload w = GenerateWorkload(DtrProfile(0.03));

  // Find a local-layer node to mutate.
  NodeId target = kInvalidNode;
  std::string target_path;
  std::uint64_t want_version = 0;
  {
    FunctionalCluster cluster(w.tree, 3, {}, nullptr, LsmSpec(dir.path()));
    const Assignment& assignment = cluster.assignment();
    for (NodeId n = 0; n < w.tree.size(); ++n)
      if (assignment.OwnerOf(n) != kReplicated) {
        target = n;
        break;
      }
    ASSERT_NE(target, kInvalidNode);
    target_path = w.tree.PathOf(target);
    const auto updated = cluster.Update(target_path, /*mtime=*/777777);
    ASSERT_EQ(updated.status, MdsStatus::kOk);
    want_version = updated.record.version;
    EXPECT_GT(want_version, 0u);
  }  // teardown = process exit; the LSM WAL holds the mutation

  // A new cluster on the same directory resumes the durable records
  // instead of regenerating the pristine tree: the mutation survived.
  FunctionalCluster revived(w.tree, 3, {}, nullptr, LsmSpec(dir.path()));
  const auto seen = revived.Stat(target_path);
  ASSERT_EQ(seen.status, MdsStatus::kOk);
  EXPECT_EQ(seen.record.attrs.mtime, 777777u);
  EXPECT_EQ(seen.record.version, want_version);

  std::string err;
  EXPECT_TRUE(revived.CheckConsistency(&err)) << err;
  const FsckReport report = FsckCluster(revived);
  EXPECT_TRUE(report.clean()) << FormatFsckReport(report);
}

}  // namespace
}  // namespace d2tree
