// Deterministic failure/recovery tests for the functional cluster: crash
// an MDS and watch clients fail over, orphaned subtrees route through the
// Monitor's pending pool to survivors (records recovered from the backing
// store), revived servers come back with their GL replica rebuilt at the
// master version, and added servers pull from the pool per mirror
// division. Closes with a property sweep over random tree shapes and
// random kill sets. Everything here is single-threaded and fast; the
// concurrent fault storms live in test_fault_stress.cpp (label "stress").
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "d2tree/mds/cluster.h"
#include "d2tree/nstree/builder.h"
#include "d2tree/sim/fault_injector.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

/// Sum of alive servers' local-store sizes; with every live GL replica
/// holding the `gl` global-layer nodes, conservation of the namespace
/// means this equals tree_size - gl (no record lost, none duplicated).
std::size_t AliveLocalRecords(const FunctionalCluster& cluster) {
  std::size_t total = 0;
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
    if (cluster.IsServerAlive(k)) total += cluster.server(k).local().size();
  return total;
}

void ExpectNoRecordLost(const FunctionalCluster& cluster,
                        std::size_t tree_size) {
  const std::size_t gl = cluster.scheme().split().global_layer.size();
  EXPECT_EQ(AliveLocalRecords(cluster), tree_size - gl);
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k) {
    if (cluster.IsServerAlive(k)) {
      EXPECT_EQ(cluster.server(k).global_replica().size(), gl)
          << "GL replica incomplete on MDS " << k;
    }
  }
}

class FailureRecoveryTest : public ::testing::Test {
 protected:
  FailureRecoveryTest()
      : workload_(GenerateWorkload(DtrProfile(0.05))),
        cluster_(workload_.tree, 4) {}

  /// A local-layer subtree root currently owned by `mds` ('' if none).
  std::string SubtreePathOwnedBy(MdsId mds) const {
    const auto& subtrees = cluster_.scheme().layers().subtrees;
    const auto& owners = cluster_.scheme().subtree_owners();
    for (std::size_t i = 0; i < subtrees.size(); ++i)
      if (owners[i] == mds) return workload_.tree.PathOf(subtrees[i].root);
    return {};
  }

  /// Some MDS that owns at least one subtree (every test needs a victim
  /// with something to lose).
  MdsId VictimWithSubtrees() const {
    const auto& owners = cluster_.scheme().subtree_owners();
    for (MdsId k = 0; k < static_cast<MdsId>(cluster_.mds_count()); ++k)
      if (std::count(owners.begin(), owners.end(), k) > 0) return k;
    return -1;
  }

  void ChargeTraffic(std::size_t stride) {
    for (NodeId id = 0; id < workload_.tree.size(); id += stride)
      cluster_.Stat(workload_.tree.PathOf(id));
  }

  Workload workload_;
  FunctionalCluster cluster_;
};

// A crashed server stops answering: clients that route to it observe
// kUnavailable, invalidate their cached entry and fail over (counted),
// while global-layer reads transparently redirect to a live replica.
TEST_F(FailureRecoveryTest, KillMakesOwnerUnavailableAndClientsFailOver) {
  const MdsId victim = VictimWithSubtrees();
  ASSERT_GE(victim, 0);
  const std::string orphan_path = SubtreePathOwnedBy(victim);
  ASSERT_FALSE(orphan_path.empty());
  EXPECT_EQ(cluster_.Stat(orphan_path).status, MdsStatus::kOk);

  ASSERT_TRUE(cluster_.KillServer(victim));
  EXPECT_FALSE(cluster_.IsServerAlive(victim));
  EXPECT_EQ(cluster_.alive_count(), 3u);
  // Crash loses the volatile stores.
  EXPECT_EQ(cluster_.server(victim).local().size(), 0u);
  EXPECT_EQ(cluster_.server(victim).global_replica().size(), 0u);

  const std::uint64_t redirects_before = cluster_.failover_redirects();
  const auto r = cluster_.Stat(orphan_path);
  EXPECT_EQ(r.status, MdsStatus::kUnavailable);
  EXPECT_GT(cluster_.failover_redirects(), redirects_before);

  // GL reads entering at the dead server redirect to a live replica.
  const std::string gl_path =
      workload_.tree.PathOf(cluster_.scheme().split().global_layer.front());
  const auto gl = cluster_.StatVia(gl_path, victim);
  EXPECT_EQ(gl.status, MdsStatus::kOk);
  EXPECT_NE(gl.served_by, victim);
}

// The next adjustment round reports the dead server with capacity 0, so
// its subtrees fall into the pending pool and are re-placed exactly once
// on survivors; records lost in the crash are rebuilt from the backing
// store and the audit comes back clean.
TEST_F(FailureRecoveryTest, AdjustmentReplacesOrphanedSubtreesExactlyOnce) {
  ChargeTraffic(3);
  const MdsId victim = VictimWithSubtrees();
  ASSERT_GE(victim, 0);
  const std::string orphan_path = SubtreePathOwnedBy(victim);
  ASSERT_TRUE(cluster_.KillServer(victim));

  const std::size_t migrated = cluster_.RunAdjustmentRound();
  EXPECT_GT(migrated, 0u);
  EXPECT_GT(cluster_.recovered_records(), 0u);  // crash really lost records

  const auto& owners = cluster_.scheme().subtree_owners();
  EXPECT_EQ(std::count(owners.begin(), owners.end(), victim), 0);
  for (const MdsId o : owners) EXPECT_TRUE(cluster_.IsServerAlive(o));

  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
  ExpectNoRecordLost(cluster_, workload_.tree.size());

  // The orphaned namespace is fully servable again, by a survivor.
  const auto r = cluster_.Stat(orphan_path);
  EXPECT_EQ(r.status, MdsStatus::kOk);
  EXPECT_NE(r.served_by, victim);
}

// Updates against a dead owner fail over like reads: redirect counted,
// kUnavailable surfaced, and nothing is mutated anywhere.
TEST_F(FailureRecoveryTest, UpdateAgainstDeadOwnerIsUnavailable) {
  const MdsId victim = VictimWithSubtrees();
  ASSERT_GE(victim, 0);
  const std::string path = SubtreePathOwnedBy(victim);
  ASSERT_TRUE(cluster_.KillServer(victim));

  const std::uint64_t redirects_before = cluster_.failover_redirects();
  const std::uint64_t version_before = cluster_.gl_master_version();
  EXPECT_EQ(cluster_.Update(path, 42).status, MdsStatus::kUnavailable);
  EXPECT_GT(cluster_.failover_redirects(), redirects_before);
  EXPECT_EQ(cluster_.gl_master_version(), version_before);
}

// A revived server restarts empty but with its GL replica rebuilt at the
// master version — including updates it missed while dead — before it
// takes any traffic.
TEST_F(FailureRecoveryTest, ReviveRebuildsGlReplicaAtMasterVersion) {
  const MdsId victim = VictimWithSubtrees();
  ASSERT_GE(victim, 0);
  ASSERT_TRUE(cluster_.KillServer(victim));
  cluster_.RunAdjustmentRound();  // survivors absorb the orphans

  // GL writes the dead server misses entirely.
  const std::string gl_path =
      workload_.tree.PathOf(cluster_.scheme().split().global_layer.front());
  for (int i = 0; i < 5; ++i)
    ASSERT_EQ(cluster_.Update(gl_path, i).status, MdsStatus::kOk);

  ASSERT_TRUE(cluster_.ReviveServer(victim));
  EXPECT_TRUE(cluster_.IsServerAlive(victim));
  EXPECT_EQ(cluster_.server(victim).gl_version(), cluster_.gl_master_version());
  EXPECT_EQ(cluster_.server(victim).global_replica().size(),
            cluster_.scheme().split().global_layer.size());
  EXPECT_EQ(cluster_.server(victim).local().size(), 0u);  // owns nothing yet

  // It serves GL reads immediately, with the missed update visible.
  const auto r = cluster_.StatVia(gl_path, victim);
  EXPECT_EQ(r.status, MdsStatus::kOk);
  EXPECT_EQ(r.served_by, victim);
  EXPECT_EQ(r.record.attrs.mtime, 4u);

  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
  ExpectNoRecordLost(cluster_, workload_.tree.size());

  // Reviving an alive server (or nonsense id) is refused.
  EXPECT_FALSE(cluster_.ReviveServer(victim));
  EXPECT_FALSE(cluster_.ReviveServer(99));
}

// Fast restart: the server comes back before any adjustment round has
// re-placed its subtrees. It is still their assigned owner, so its
// records must return with it — re-materialized from the backing store —
// or the namespace would silently lose them.
TEST_F(FailureRecoveryTest, FastRestartRestoresStillOwnedSubtrees) {
  const MdsId victim = VictimWithSubtrees();
  ASSERT_GE(victim, 0);
  const std::string path = SubtreePathOwnedBy(victim);
  const std::size_t held_before = cluster_.server(victim).local().size();
  ASSERT_GT(held_before, 0u);

  ASSERT_TRUE(cluster_.KillServer(victim));
  ASSERT_TRUE(cluster_.ReviveServer(victim));  // no adjustment round between

  EXPECT_EQ(cluster_.server(victim).local().size(), held_before);
  EXPECT_GE(cluster_.recovered_records(), held_before);
  const auto r = cluster_.Stat(path);
  EXPECT_EQ(r.status, MdsStatus::kOk);
  EXPECT_EQ(r.served_by, victim);

  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
  ExpectNoRecordLost(cluster_, workload_.tree.size());
}

// A freshly added MDS starts with only the GL replica; once the loaded
// incumbents shed subtrees into the pending pool, mirror division hands
// the newcomer its capacity share (the paper's "newly added MDS" flow).
TEST(FailureRecoveryAddServer, AddedServerPullsFromPendingPool) {
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  FunctionalCluster cluster(w.tree, 2);
  for (NodeId id = 0; id < w.tree.size(); id += 2)
    cluster.Stat(w.tree.PathOf(id));

  const MdsId fresh = cluster.AddServer();
  EXPECT_EQ(fresh, 2);
  EXPECT_EQ(cluster.mds_count(), 3u);
  EXPECT_EQ(cluster.alive_count(), 3u);
  EXPECT_EQ(cluster.server(fresh).gl_version(), cluster.gl_master_version());
  EXPECT_EQ(cluster.server(fresh).local().size(), 0u);

  cluster.RunAdjustmentRound();
  const auto& owners = cluster.scheme().subtree_owners();
  EXPECT_GT(std::count(owners.begin(), owners.end(), fresh), 0)
      << "newcomer pulled nothing from the pending pool";
  EXPECT_GT(cluster.server(fresh).local().size(), 0u);

  std::string error;
  EXPECT_TRUE(cluster.CheckConsistency(&error)) << error;
}

// Heartbeat suppression: the Monitor presumes the server failed and
// drains it, but the server never crashed — records migrate normally
// (nothing to recover from the backing store) and no client ever fails.
TEST_F(FailureRecoveryTest, HeartbeatSuppressionDrainsWithoutLoss) {
  ChargeTraffic(3);
  const MdsId silent = VictimWithSubtrees();
  ASSERT_GE(silent, 0);
  ASSERT_TRUE(cluster_.SetHeartbeatSuppressed(silent, true));
  EXPECT_TRUE(cluster_.IsServerAlive(silent));  // silent, not dead

  const std::uint64_t recovered_before = cluster_.recovered_records();
  const std::size_t migrated = cluster_.RunAdjustmentRound();
  EXPECT_GT(migrated, 0u);
  EXPECT_EQ(cluster_.recovered_records(), recovered_before)
      << "drain of a live server must not need backing-store recovery";

  const auto& owners = cluster_.scheme().subtree_owners();
  EXPECT_EQ(std::count(owners.begin(), owners.end(), silent), 0);
  EXPECT_EQ(cluster_.server(silent).local().size(), 0u);

  ASSERT_TRUE(cluster_.SetHeartbeatSuppressed(silent, false));
  EXPECT_FALSE(cluster_.SetHeartbeatSuppressed(99, false));  // out of range

  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
  ExpectNoRecordLost(cluster_, workload_.tree.size());
}

// The last alive server is the namespace of record — killing it is
// refused so the cluster can always recover.
TEST(FailureRecoveryLimits, LastAliveServerCannotBeKilled) {
  const Workload w = GenerateWorkload(LmbeProfile(0.03));
  FunctionalCluster cluster(w.tree, 2);
  EXPECT_TRUE(cluster.KillServer(0));
  EXPECT_FALSE(cluster.KillServer(1));  // would down the last one
  EXPECT_TRUE(cluster.IsServerAlive(1));
  EXPECT_FALSE(cluster.KillServer(0));   // already dead
  EXPECT_FALSE(cluster.KillServer(77));  // no such server

  std::string error;
  EXPECT_TRUE(cluster.CheckConsistency(&error)) << error;
}

// A deterministic schedule drives the same fault sequence through the
// injector hook points that the concurrent harness uses.
TEST(FaultInjectorUnit, FiresEventsAtExactOpCounts) {
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  FunctionalCluster cluster(w.tree, 3);

  FaultSchedule schedule;
  schedule.events = {{10, FaultKind::kKill, 1},
                     {20, FaultKind::kRevive, 1},
                     {30, FaultKind::kAddServer, -1},
                     {40, FaultKind::kKill, 99}};  // invalid: skipped
  FaultInjector injector(cluster, schedule);

  for (int i = 0; i < 9; ++i) injector.OnOp();
  EXPECT_EQ(injector.fired(), 0u);
  EXPECT_TRUE(cluster.IsServerAlive(1));

  injector.OnOp();  // op 10: the kill fires
  EXPECT_EQ(injector.applied(), 1u);
  EXPECT_FALSE(cluster.IsServerAlive(1));

  for (int i = 0; i < 10; ++i) injector.OnOp();  // op 20: revive
  EXPECT_TRUE(cluster.IsServerAlive(1));

  for (int i = 0; i < 20; ++i) injector.OnOp();  // ops 30 + 40
  EXPECT_EQ(cluster.mds_count(), 4u);
  EXPECT_EQ(injector.applied(), 3u);
  EXPECT_EQ(injector.skipped(), 1u);
  EXPECT_EQ(injector.ops_seen(), 40u);
}

TEST(FaultInjectorUnit, RandomScheduleIsDeterministicAndValid) {
  FaultMix mix;
  mix.kills = 2;
  mix.revives = 1;
  mix.server_additions = 1;
  mix.heartbeat_drops = 1;
  const FaultSchedule a = FaultSchedule::Random(0xFA17, 4, 12'000, mix);
  const FaultSchedule b = FaultSchedule::Random(0xFA17, 4, 12'000, mix);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_TRUE(a.events == b.events);
  EXPECT_EQ(a.ToString(), b.ToString());

  // Every mixed-in kind is present, drops pair with resumes, at_ops are
  // strictly increasing inside the middle of the run.
  std::size_t kills = 0, revives = 0, adds = 0, drops = 0, resumes = 0;
  std::size_t prev = 0;
  for (const FaultEvent& e : a.events) {
    EXPECT_GT(e.at_op, prev);
    prev = e.at_op;
    EXPECT_LT(e.at_op, 12'000u);
    switch (e.kind) {
      case FaultKind::kKill: ++kills; break;
      case FaultKind::kRevive: ++revives; break;
      case FaultKind::kAddServer: ++adds; break;
      case FaultKind::kDropHeartbeats: ++drops; break;
      case FaultKind::kResumeHeartbeats: ++resumes; break;
      // d2lint: allow-default(guard: any kind outside the mix is a failure)
      default: FAIL() << "kind not in this mix: " << FaultKindName(e.kind);
    }
  }
  EXPECT_EQ(kills, 2u);
  EXPECT_EQ(revives, 1u);
  EXPECT_EQ(adds, 1u);
  EXPECT_EQ(drops, 1u);
  EXPECT_EQ(resumes, drops);

  const FaultSchedule c = FaultSchedule::Random(0xFA18, 4, 12'000, mix);
  EXPECT_FALSE(a.events == c.events);  // seed actually matters
}

// Property sweep: random tree shapes and random kill sets. After one
// adjustment round no subtree may be owned by a dead server, the record
// count is conserved, and the audit holds — for every shape and seed.
TEST(FailureRecoveryProperty, RandomKillSetsLeaveNoOrphans) {
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0xDEAD0000ULL + static_cast<std::uint64_t>(trial));
    SyntheticTreeConfig cfg;
    cfg.node_count = 100 + rng.NextBounded(400);
    cfg.max_depth = 4 + static_cast<std::uint32_t>(rng.NextBounded(10));
    cfg.dir_ratio = 0.2 + 0.3 * rng.NextDouble();
    cfg.depth_bias = 0.6 * rng.NextDouble();
    cfg.root_fanout = 4 + static_cast<std::uint32_t>(rng.NextBounded(24));
    NamespaceTree tree = BuildSyntheticTree(cfg, rng);
    for (NodeId id = 0; id < tree.size(); ++id)
      tree.AddAccess(id, rng.NextExponential(5.0));
    tree.RecomputeSubtreePopularity();

    const std::size_t m = 3 + rng.NextBounded(4);  // 3..6 servers
    FunctionalCluster cluster(tree, m);
    for (NodeId id = 0; id < tree.size(); id += 5)
      cluster.Stat(tree.PathOf(id));

    // Kill a random nonempty set, never the whole cluster.
    const std::size_t kill_count = 1 + rng.NextBounded(m - 1);
    std::vector<bool> dead(m, false);
    for (std::size_t i = 0; i < kill_count; ++i) {
      const MdsId victim = static_cast<MdsId>(rng.NextBounded(m));
      if (!dead[victim] && cluster.KillServer(victim)) dead[victim] = true;
    }

    cluster.RunAdjustmentRound();

    const auto& owners = cluster.scheme().subtree_owners();
    for (const MdsId o : owners)
      ASSERT_TRUE(cluster.IsServerAlive(o))
          << "trial " << trial << ": subtree still owned by dead MDS " << o;
    std::string error;
    ASSERT_TRUE(cluster.CheckConsistency(&error))
        << "trial " << trial << ": " << error;
    const std::size_t gl = cluster.scheme().split().global_layer.size();
    ASSERT_EQ(AliveLocalRecords(cluster), tree.size() - gl)
        << "trial " << trial << ": records lost or duplicated";
  }
}

}  // namespace
}  // namespace d2tree
