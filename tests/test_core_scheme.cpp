// Tests for LocalIndex, Monitor, GlobalLayerManager, SerialLock and the
// end-to-end D2TreeScheme partitioner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "d2tree/core/d2tree.h"
#include "d2tree/core/global_layer.h"
#include "d2tree/core/lock_service.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

Workload SmallWorkload() {
  TraceProfile p = LmbeProfile(0.05);  // ~6k nodes, 18k records
  return GenerateWorkload(p);
}

TEST(LocalIndex, RouteFindsSubtreeOwner) {
  NamespaceTree t;
  t.GetOrCreatePath("/home/b/h.jpg", NodeType::kFile);
  t.GetOrCreatePath("/home/a", NodeType::kDirectory);
  t.RecomputeSubtreePopularity();
  const std::vector<NodeId> gl{t.root(), t.Resolve("/home")};
  const SplitLayers layers = ExtractLayers(t, gl);
  ASSERT_EQ(layers.subtrees.size(), 2u);  // /home/b and /home/a

  std::vector<MdsId> owners(layers.subtrees.size());
  for (std::size_t i = 0; i < owners.size(); ++i)
    owners[i] = static_cast<MdsId>(i);
  const LocalIndex index(layers, owners);

  // Sec. IV-A2's worked example: querying /home/b/h.jpg routes to the MDS
  // owning the subtree rooted at /home/b.
  const auto via_child = index.Route(t, t.Resolve("/home/b/h.jpg"));
  const auto via_root = index.OwnerOfSubtree(t.Resolve("/home/b"));
  ASSERT_TRUE(via_child.has_value());
  EXPECT_EQ(via_child, via_root);

  // GL-resident target: no prefix is a subtree root.
  EXPECT_FALSE(index.Route(t, t.Resolve("/home")).has_value());
  EXPECT_FALSE(index.Route(t, t.root()).has_value());
}

TEST(LocalIndex, IsInterNodeAndSubtreesOf) {
  NamespaceTree t;
  t.GetOrCreatePath("/x/a", NodeType::kFile);
  t.GetOrCreatePath("/x/b", NodeType::kFile);
  t.RecomputeSubtreePopularity();
  const SplitLayers layers =
      ExtractLayers(t, {t.root(), t.Resolve("/x")});
  const LocalIndex index(layers, {0, 1});
  EXPECT_TRUE(index.IsInterNode(t.Resolve("/x")));
  EXPECT_FALSE(index.IsInterNode(t.root()));
  EXPECT_EQ(index.SubtreesOf(t.Resolve("/x")).size(), 2u);
  EXPECT_EQ(index.subtree_count(), 2u);
}

TEST(LocalIndex, SetOwnerOverwrites) {
  LocalIndex index;
  index.SetOwner(5, 1, 0);
  index.SetOwner(5, 1, 3);
  EXPECT_EQ(index.OwnerOfSubtree(5), std::optional<MdsId>(3));
}

TEST(Monitor, HeartbeatsReplacePerMds) {
  Monitor mon;
  mon.ReceiveHeartbeat({0, 10.0, 1.0});
  mon.ReceiveHeartbeat({1, 5.0, -1.0});
  mon.ReceiveHeartbeat({0, 12.0, 2.0});
  ASSERT_EQ(mon.heartbeats().size(), 2u);
  EXPECT_DOUBLE_EQ(mon.heartbeats()[0].load, 12.0);
}

std::vector<Subtree> PlainSubtrees(const std::vector<double>& pops) {
  std::vector<Subtree> out;
  for (std::size_t i = 0; i < pops.size(); ++i) {
    Subtree s;
    s.root = static_cast<NodeId>(i + 10);
    s.popularity = pops[i];
    s.node_count = 3;
    out.push_back(s);
  }
  return out;
}

TEST(Monitor, NoMigrationWhenBalanced) {
  Monitor mon;
  const auto subtrees = PlainSubtrees({10, 10, 10, 10});
  const std::vector<MdsId> owners{0, 1, 0, 1};
  const MdsCluster cluster = MdsCluster::Homogeneous(2);
  const auto plan =
      mon.PlanAdjustment(subtrees, owners, {0.0, 0.0}, cluster);
  EXPECT_TRUE(plan.empty());
}

TEST(Monitor, OffloadsOverloadedMds) {
  Monitor mon;
  // MDS 0 holds everything; MDS 1 idle.
  const auto subtrees = PlainSubtrees({10, 10, 10, 10});
  const std::vector<MdsId> owners{0, 0, 0, 0};
  const MdsCluster cluster = MdsCluster::Homogeneous(2);
  const auto plan =
      mon.PlanAdjustment(subtrees, owners, {0.0, 0.0}, cluster);
  ASSERT_FALSE(plan.empty());
  double moved = 0;
  for (const Migration& m : plan) {
    EXPECT_EQ(m.from, 0);
    EXPECT_EQ(m.to, 1);
    moved += subtrees[m.subtree_index].popularity;
  }
  EXPECT_NEAR(moved, 20.0, 10.0);  // about half the load shifts
}

TEST(Monitor, DepartedMdsSubtreesGoToPool) {
  Monitor mon;
  const auto subtrees = PlainSubtrees({8, 8, 8, 8});
  // Owner 5 does not exist in a 2-MDS cluster (server failed/removed).
  const std::vector<MdsId> owners{0, 5, 5, 1};
  const MdsCluster cluster = MdsCluster::Homogeneous(2);
  const auto plan =
      mon.PlanAdjustment(subtrees, owners, {0.0, 0.0}, cluster);
  // Both orphaned subtrees must land on a live MDS.
  std::vector<MdsId> fixed = owners;
  for (const Migration& m : plan) fixed[m.subtree_index] = m.to;
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    EXPECT_GE(fixed[i], 0);
    EXPECT_LT(fixed[i], 2);
  }
}

TEST(Monitor, NewMdsPullsLoad) {
  Monitor mon;
  std::vector<double> pops(40, 5.0);
  const auto subtrees = PlainSubtrees(pops);
  std::vector<MdsId> owners(40);
  for (std::size_t i = 0; i < 40; ++i) owners[i] = static_cast<MdsId>(i % 2);
  const MdsCluster cluster = MdsCluster::Homogeneous(4);  // two new servers
  const auto plan =
      mon.PlanAdjustment(subtrees, owners, std::vector<double>(4, 0.0), cluster);
  double to_new = 0;
  for (const Migration& m : plan)
    if (m.to >= 2) to_new += subtrees[m.subtree_index].popularity;
  // New servers should end up with roughly half the total load (100 of 200).
  EXPECT_GT(to_new, 60.0);
}

TEST(Monitor, ToleranceSuppressesSmallImbalance) {
  MonitorConfig cfg;
  cfg.overload_tolerance = 0.5;
  Monitor mon(cfg);
  const auto subtrees = PlainSubtrees({12, 10});
  const std::vector<MdsId> owners{0, 1};
  const auto plan = mon.PlanAdjustment(subtrees, owners, {0.0, 0.0},
                                       MdsCluster::Homogeneous(2));
  EXPECT_TRUE(plan.empty());
}

TEST(GlobalLayerManager, VersionsPropagateAfterDelay) {
  GlobalLayerConfig cfg;
  cfg.propagation_delay = 0.5;
  GlobalLayerManager gl(3, cfg);
  EXPECT_EQ(gl.master_version(), 0u);
  gl.ApplyUpdate(10.0);
  EXPECT_EQ(gl.master_version(), 1u);
  EXPECT_FALSE(gl.ReplicaFresh(0, 10.2));
  EXPECT_EQ(gl.ReplicaVersion(0, 10.2), 0u);
  EXPECT_EQ(gl.StaleReplicaCount(10.2), 3u);
  EXPECT_TRUE(gl.ReplicaFresh(0, 10.5));
  EXPECT_EQ(gl.ReplicaVersion(1, 11.0), 1u);
  EXPECT_EQ(gl.StaleReplicaCount(11.0), 0u);
}

TEST(GlobalLayerManager, LeaseValidity) {
  GlobalLayerConfig cfg;
  cfg.lease_duration = 2.0;
  GlobalLayerManager gl(1, cfg);
  const double expiry = gl.GrantLease(5.0);
  EXPECT_DOUBLE_EQ(expiry, 7.0);
  EXPECT_TRUE(gl.LeaseValid(5.0, 6.9));
  EXPECT_FALSE(gl.LeaseValid(5.0, 7.1));
}

TEST(SerialLock, SerializesOverlappingRequests) {
  SerialLock lock;
  EXPECT_DOUBLE_EQ(lock.Acquire(0.0, 1.0), 0.0);   // free: granted at once
  EXPECT_DOUBLE_EQ(lock.Acquire(0.5, 1.0), 1.0);   // waits for holder
  EXPECT_DOUBLE_EQ(lock.Acquire(0.6, 1.0), 2.0);   // queues behind both
  EXPECT_DOUBLE_EQ(lock.Acquire(10.0, 1.0), 10.0); // idle again
  EXPECT_EQ(lock.acquisitions(), 4u);
  EXPECT_NEAR(lock.total_wait(), 0.5 + 1.4, 1e-9);
}

TEST(LockTable, PerNodeIndependence) {
  LockTable table;
  EXPECT_DOUBLE_EQ(table.LockFor(1).Acquire(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(table.LockFor(2).Acquire(0.1, 5.0), 0.1);  // no contention
  EXPECT_DOUBLE_EQ(table.LockFor(1).Acquire(0.1, 5.0), 5.0);  // contends
  EXPECT_EQ(table.lock_count(), 2u);
  EXPECT_NEAR(table.TotalWait(), 4.9, 1e-9);
  table.Reset();
  EXPECT_EQ(table.lock_count(), 0u);
}

TEST(D2TreeScheme, PartitionProducesValidCrownAssignment) {
  Workload w = SmallWorkload();
  D2TreeScheme scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  const Assignment a = scheme.Partition(w.tree, cluster);
  EXPECT_TRUE(a.Validate(w.tree, /*require_connected_replicated=*/true));
  EXPECT_EQ(a.mds_count, 4u);
  // 1% of the namespace is replicated (the paper's default GL proportion).
  EXPECT_NEAR(static_cast<double>(a.ReplicatedCount()) /
                  static_cast<double>(w.tree.size()),
              0.01, 0.002);
}

TEST(D2TreeScheme, LocalLayerAccessCostsAtMostOneJump) {
  Workload w = SmallWorkload();
  D2TreeScheme scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(8));
  for (NodeId id = 0; id < w.tree.size(); ++id) {
    EXPECT_LE(JumpsFor(w.tree, a, id), 1u)
        << "node " << w.tree.PathOf(id);
  }
}

TEST(D2TreeScheme, SubtreesStayIntact) {
  Workload w = SmallWorkload();
  D2TreeScheme scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(6));
  for (const Subtree& s : scheme.layers().subtrees) {
    const MdsId owner = a.OwnerOf(s.root);
    w.tree.VisitSubtree(s.root, [&](NodeId v) {
      EXPECT_EQ(a.OwnerOf(v), owner) << "subtree torn at " << v;
    });
  }
}

TEST(D2TreeScheme, LocalIndexAgreesWithAssignment) {
  Workload w = SmallWorkload();
  D2TreeScheme scheme;
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(5));
  const LocalIndex& index = scheme.local_index();
  for (NodeId id = 0; id < w.tree.size(); ++id) {
    const auto routed = index.Route(w.tree, id);
    if (a.IsReplicated(id)) {
      EXPECT_FALSE(routed.has_value());
    } else {
      ASSERT_TRUE(routed.has_value());
      EXPECT_EQ(*routed, a.OwnerOf(id));
    }
  }
}

TEST(D2TreeScheme, ExplicitBoundsMode) {
  Workload w = SmallWorkload();
  // First discover the implied bounds of a 2% split, then ask for them
  // explicitly and expect a feasible result of similar size.
  const SplitResult probe = SplitTreeToProportion(w.tree, 0.02);
  D2TreeConfig cfg;
  SplitConfig bounds;
  bounds.locality_cost_bound = probe.locality_cost * 1.01;
  bounds.update_cost_bound = probe.update_cost * 1.01;
  cfg.explicit_bounds = bounds;
  D2TreeScheme scheme(cfg);
  const Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(4));
  EXPECT_TRUE(a.Validate(w.tree, true));
  EXPECT_NEAR(static_cast<double>(scheme.split().global_layer.size()),
              static_cast<double>(probe.global_layer.size()),
              probe.global_layer.size() * 0.05 + 2.0);
}

TEST(D2TreeScheme, RebalanceImprovesBalanceAfterHotspotShift) {
  Workload w = SmallWorkload();
  D2TreeScheme scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  Assignment a = scheme.Partition(w.tree, cluster);

  // Shift the workload: every subtree currently owned by MDS 0 gets 4x
  // hotter — the kind of skew migrations *can* repair (unlike one
  // indivisible mega-hot subtree).
  const auto& subtrees = scheme.layers().subtrees;
  ASSERT_FALSE(subtrees.empty());
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    if (scheme.subtree_owners()[i] == 0)
      w.tree.AddAccess(subtrees[i].root, 3.0 * subtrees[i].popularity);
  }
  w.tree.RecomputeSubtreePopularity();

  const double before = ComputeBalance(w.tree, a, cluster).balance;
  const RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
  EXPECT_TRUE(r.assignment.Validate(w.tree, true));
  const double after = ComputeBalance(w.tree, r.assignment, cluster).balance;
  EXPECT_GE(after, before);
}

TEST(D2TreeScheme, RebalanceHandlesClusterGrowth) {
  Workload w = SmallWorkload();
  D2TreeScheme scheme;
  Assignment a = scheme.Partition(w.tree, MdsCluster::Homogeneous(3));
  const MdsCluster bigger = MdsCluster::Homogeneous(6);
  const RebalanceResult r = scheme.Rebalance(w.tree, bigger, a);
  EXPECT_TRUE(r.assignment.Validate(w.tree, true));
  EXPECT_EQ(r.assignment.mds_count, 6u);
  const auto loads = ComputeLoads(w.tree, r.assignment);
  // The three new servers must have picked up real load.
  for (std::size_t k = 3; k < 6; ++k) EXPECT_GT(loads[k], 0.0);
}

TEST(D2TreeScheme, RebalanceMovesOnlySubtreeUnits) {
  Workload w = SmallWorkload();
  D2TreeScheme scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  Assignment a = scheme.Partition(w.tree, cluster);
  // Skew popularity, then rebalance; GL membership must not change.
  const auto gl_before = scheme.split().global_layer;
  w.tree.AddAccess(scheme.layers().subtrees.front().root, 1e6);
  w.tree.RecomputeSubtreePopularity();
  const RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
  EXPECT_EQ(scheme.split().global_layer, gl_before);
  for (NodeId id = 0; id < w.tree.size(); ++id)
    EXPECT_EQ(a.IsReplicated(id), r.assignment.IsReplicated(id));
}

TEST(D2TreeScheme, ResplitPeriodRefreshesGlobalLayer) {
  Workload w = SmallWorkload();
  D2TreeConfig cfg;
  cfg.resplit_period = 2;
  D2TreeScheme scheme(cfg);
  const MdsCluster cluster = MdsCluster::Homogeneous(4);
  Assignment a = scheme.Partition(w.tree, cluster);

  // Make a deep leaf's subtree extremely hot; after the periodic re-split
  // its ancestors should be promoted into the GL crown.
  const auto& subtrees = scheme.layers().subtrees;
  std::size_t big = 0;
  for (std::size_t i = 0; i < subtrees.size(); ++i)
    if (subtrees[i].node_count > subtrees[big].node_count) big = i;
  w.tree.AddAccess(subtrees[big].root, w.tree.TotalIndividualPopularity() * 10);
  w.tree.RecomputeSubtreePopularity();

  a = scheme.Rebalance(w.tree, cluster, a).assignment;      // round 1: no resplit
  const bool hot_in_gl_round1 = a.IsReplicated(subtrees[big].root);
  a = scheme.Rebalance(w.tree, cluster, a).assignment;      // round 2: resplit
  EXPECT_FALSE(hot_in_gl_round1);
  EXPECT_TRUE(a.IsReplicated(scheme.split().global_layer[1]));
}

TEST(D2TreeScheme, BalanceImprovesWithGlobalFraction) {
  // Fig. 9's trend: larger GL proportion → finer local-layer pieces →
  // better balance.
  Workload w = SmallWorkload();
  const MdsCluster cluster = MdsCluster::Homogeneous(8);
  double prev = -1.0;
  for (double f : {0.001, 0.01, 0.1}) {
    D2TreeConfig cfg;
    cfg.global_fraction = f;
    D2TreeScheme scheme(cfg);
    const Assignment a = scheme.Partition(w.tree, cluster);
    const double bal = ComputeBalance(w.tree, a, cluster).balance;
    EXPECT_GE(bal, prev * 0.5) << "balance collapsed at fraction " << f;
    prev = bal;
  }
}

}  // namespace
}  // namespace d2tree
