// Write-ahead-log unit tests: frame encode/decode roundtrips, replay of
// mixed record streams, torn-tail detection and truncation (the crash
// footprint DESIGN.md §7 defines), CRC rejection of bit flips, file
// persistence, and the d2fsck journal audit's migration state machine.
#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/fsck.h"
#include "d2tree/durability/wal.h"

namespace d2tree {
namespace {

WalRecord Intent(std::uint64_t id, NodeId root, MdsId from, MdsId to) {
  WalRecord r;
  r.type = WalRecordType::kMigrationIntent;
  r.migration_id = id;
  r.root = root;
  r.from = from;
  r.to = to;
  return r;
}

WalRecord WithType(WalRecord r, WalRecordType type) {
  r.type = type;
  return r;
}

// The journal registry: every WalRecordType enumerator, by name, so the
// codec sweep below covers each record type a journal can contain
// (d2lint's registry rule pins this table to the enum).
constexpr WalRecordType kAllWalRecordTypes[] = {
    WalRecordType::kPlacementSnapshot, WalRecordType::kCapacitySnapshot,
    WalRecordType::kMigrationIntent,   WalRecordType::kMigrationPrepare,
    WalRecordType::kMigrationCommit,   WalRecordType::kMigrationAbort,
    WalRecordType::kGlVersion,         WalRecordType::kPullApplied,
    WalRecordType::kRenameIntent,      WalRecordType::kRenamePrepare,
    WalRecordType::kRenameCommit,      WalRecordType::kRenameAbort,
};
static_assert(std::size(kAllWalRecordTypes) ==
                  static_cast<std::size_t>(WalRecordType::kRenameAbort) + 1,
              "kAllWalRecordTypes must list every WalRecordType enumerator");

TEST(WalRecordCodec, RoundTripsEveryField) {
  WalRecord r;
  r.type = WalRecordType::kPlacementSnapshot;
  r.migration_id = 0xDEADBEEFCAFEULL;
  r.root = 1234;
  r.from = 3;
  r.to = 7;
  r.version = 42;
  r.count = 9001;
  r.owners = {0, 1, -1, 3};
  r.capacities = {1.0, 0.0, 2.5};

  const std::vector<std::uint8_t> bytes = EncodeWalRecord(r);
  const auto decoded = DecodeWalRecord(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
}

TEST(WalRecordCodec, RoundTripsEveryRecordType) {
  for (const WalRecordType type : kAllWalRecordTypes) {
    WalRecord r;
    r.type = type;
    r.migration_id = 7;
    r.root = 99;
    r.from = 1;
    r.to = 2;
    r.version = 11;
    r.count = 13;
    r.owners = {2, 0, 1};
    r.capacities = {0.5, 1.5};
    r.name = "post-rename-name";
    r.prev_name = "pre-rename-name";
    const std::vector<std::uint8_t> bytes = EncodeWalRecord(r);
    const auto decoded = DecodeWalRecord(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.has_value()) << WalRecordTypeName(type);
    EXPECT_EQ(*decoded, r) << WalRecordTypeName(type);
  }
}

TEST(WalRecordCodec, RejectsTruncatedPayload) {
  const std::vector<std::uint8_t> bytes = EncodeWalRecord(Intent(1, 2, 0, 1));
  for (std::size_t len = 0; len < bytes.size(); ++len)
    EXPECT_FALSE(DecodeWalRecord(bytes.data(), len).has_value())
        << "decoded from a " << len << "-byte prefix";
}

TEST(Wal, ReplayReturnsAppendsInOrder) {
  Wal wal;
  std::vector<WalRecord> expected;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    expected.push_back(Intent(id, static_cast<NodeId>(id * 10), 0, 1));
    wal.Append(expected.back());
  }
  WalReplayStats stats;
  EXPECT_EQ(wal.Replay(&stats), expected);
  EXPECT_EQ(stats.records, 5u);
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.torn_bytes, 0u);
  EXPECT_EQ(stats.bytes_scanned, wal.size_bytes());
  EXPECT_EQ(wal.records_appended(), 5u);
}

// A crash mid-append leaves a frame with a short header, a short payload
// or a CRC mismatch. Replay must keep the valid prefix and report the
// tear; truncating the reported bytes restores an appendable log.
TEST(Wal, TornTailIsDetectedAndTruncatable) {
  Wal wal;
  wal.Append(Intent(1, 10, 0, 1));
  wal.Append(WithType(Intent(1, 10, 0, 1), WalRecordType::kMigrationPrepare));
  const std::size_t intact = wal.size_bytes();
  wal.Append(WithType(Intent(1, 10, 0, 1), WalRecordType::kMigrationCommit));

  // Tear the COMMIT at every possible length, short of removing it whole.
  for (std::size_t keep = intact + 1; keep < wal.size_bytes(); ++keep) {
    Wal torn;
    std::vector<std::uint8_t> bytes = wal.Bytes();
    bytes.resize(keep);
    torn.Assign(std::move(bytes));

    WalReplayStats stats;
    const std::vector<WalRecord> records = torn.Replay(&stats);
    ASSERT_EQ(stats.records, 2u) << "valid prefix lost at keep=" << keep;
    EXPECT_EQ(records.back().type, WalRecordType::kMigrationPrepare);
    EXPECT_TRUE(stats.torn_tail);
    EXPECT_EQ(stats.torn_bytes, keep - intact);

    torn.TruncateTail(stats.torn_bytes);
    WalReplayStats after;
    torn.Replay(&after);
    EXPECT_FALSE(after.torn_tail) << "truncation left a tear at keep=" << keep;
    EXPECT_EQ(torn.size_bytes(), intact);
  }
}

TEST(Wal, CrcCatchesBitFlipInPayload) {
  Wal wal;
  wal.Append(Intent(7, 70, 2, 3));
  std::vector<std::uint8_t> bytes = wal.Bytes();
  bytes.back() ^= 0x01;  // corrupt the payload, not the header
  Wal corrupt;
  corrupt.Assign(std::move(bytes));

  WalReplayStats stats;
  EXPECT_TRUE(corrupt.Replay(&stats).empty());
  EXPECT_TRUE(stats.torn_tail);
}

TEST(Wal, SaveToLoadFromRoundTrips) {
  Wal wal;
  wal.Append(Intent(1, 10, 0, 1));
  wal.Append(WithType(Intent(1, 10, 0, 1), WalRecordType::kMigrationCommit));

  const std::string path =
      ::testing::TempDir() + "/d2tree_wal_roundtrip.bin";
  ASSERT_TRUE(wal.SaveTo(path));
  Wal loaded;
  ASSERT_TRUE(loaded.LoadFrom(path));
  EXPECT_EQ(loaded.Bytes(), wal.Bytes());
  EXPECT_EQ(loaded.Replay(), wal.Replay());
  std::remove(path.c_str());

  EXPECT_FALSE(loaded.LoadFrom(path)) << "deleted file must not load";
}

TEST(CrashSites, EveryNamedSiteHasAName) {
  for (std::size_t i = 0; i < kCrashSiteCount; ++i)
    EXPECT_STRNE(CrashSiteName(static_cast<CrashSite>(i)), "?");
}

// --- d2fsck journal audit: the migration state machine.

TEST(FsckJournal, CleanLogIsClean) {
  Wal wal;
  const WalRecord intent = Intent(1, 10, 0, 1);
  wal.Append(intent);
  wal.Append(WithType(intent, WalRecordType::kMigrationPrepare));
  wal.Append(WithType(intent, WalRecordType::kMigrationCommit));
  const WalRecord aborted = Intent(2, 20, 1, 0);
  wal.Append(aborted);
  wal.Append(WithType(aborted, WalRecordType::kMigrationAbort));
  wal.Append(Intent(3, 30, 0, 1));  // in flight, not a violation

  const FsckReport report = FsckJournal(wal);
  EXPECT_TRUE(report.clean()) << FormatFsckReport(report);
  EXPECT_EQ(report.wal_records, 6u);
  EXPECT_EQ(report.migrations_committed, 1u);
  EXPECT_EQ(report.migrations_aborted, 1u);
  EXPECT_EQ(report.migrations_in_flight, 1u);
}

TEST(FsckJournal, FlagsCommitWithoutPrepare) {
  Wal wal;
  wal.Append(Intent(1, 10, 0, 1));
  wal.Append(WithType(Intent(1, 10, 0, 1), WalRecordType::kMigrationCommit));
  const FsckReport report = FsckJournal(wal);
  ASSERT_FALSE(report.clean());
  EXPECT_NE(FormatFsckReport(report).find("commit"), std::string::npos);
}

TEST(FsckJournal, FlagsCommittedAndAborted) {
  Wal wal;
  const WalRecord intent = Intent(4, 40, 0, 1);
  wal.Append(intent);
  wal.Append(WithType(intent, WalRecordType::kMigrationPrepare));
  wal.Append(WithType(intent, WalRecordType::kMigrationCommit));
  wal.Append(WithType(intent, WalRecordType::kMigrationAbort));
  EXPECT_FALSE(FsckJournal(wal).clean());
}

TEST(FsckJournal, FlagsPrepareWithoutIntentAndDuplicateIntent) {
  Wal orphan_prepare;
  orphan_prepare.Append(
      WithType(Intent(5, 50, 0, 1), WalRecordType::kMigrationPrepare));
  EXPECT_FALSE(FsckJournal(orphan_prepare).clean());

  Wal dup_intent;
  dup_intent.Append(Intent(6, 60, 0, 1));
  dup_intent.Append(Intent(6, 60, 0, 1));
  EXPECT_FALSE(FsckJournal(dup_intent).clean());
}

TEST(FsckJournal, ReportsTornTailWithoutFlaggingIt) {
  Wal wal;
  wal.Append(Intent(1, 10, 0, 1));
  wal.Append(WithType(Intent(1, 10, 0, 1), WalRecordType::kMigrationPrepare));
  wal.TruncateTail(3);  // tear the PREPARE mid-frame

  const FsckReport report = FsckJournal(wal);
  // The tear itself is the legitimate crash footprint: reported so the
  // operator knows recovery truncated data, but not an invariant breach.
  EXPECT_TRUE(report.clean()) << FormatFsckReport(report);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_GT(report.torn_bytes, 0u);
  EXPECT_EQ(report.migrations_in_flight, 1u)
      << "the torn PREPARE must demote the migration to intent-only";
}

}  // namespace
}  // namespace d2tree
