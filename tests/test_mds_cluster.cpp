// Tests for the functional MDS runtime: stores, servers, the live cluster
// (materialization, access logic, GL updates, physical migration,
// consistency auditing, concurrent clients).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "d2tree/mds/cluster.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

TEST(MetadataStore, PutGetRemove) {
  MetadataStore store;
  InodeRecord r;
  r.id = 5;
  r.name = "f";
  r.version = 1;
  store.Put(r);
  EXPECT_TRUE(store.Contains(5));
  EXPECT_EQ(store.Get(5)->name, "f");
  EXPECT_EQ(store.size(), 1u);
  const auto removed = store.Remove(5);
  ASSERT_TRUE(removed.has_value());
  EXPECT_FALSE(store.Contains(5));
  EXPECT_FALSE(store.Remove(5).has_value());
}

TEST(MetadataStore, MutateBumpsVersionAndMtime) {
  MetadataStore store;
  InodeRecord r;
  r.id = 1;
  r.version = 3;
  store.Put(r);
  const auto v = store.Mutate(1, 12345);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 4u);
  EXPECT_EQ(store.Get(1)->attrs.mtime, 12345u);
  EXPECT_FALSE(store.Mutate(99, 0).has_value());
}

TEST(MetadataStore, ExtractInsertMigration) {
  MetadataStore a, b;
  for (NodeId id = 0; id < 10; ++id) {
    InodeRecord r;
    r.id = id;
    r.version = id + 1;
    a.Put(r);
  }
  const std::vector<NodeId> subtree{2, 3, 4, 99};  // 99 not held: skipped
  auto records = a.ExtractAll(subtree);
  EXPECT_EQ(records.size(), 3u);
  EXPECT_EQ(a.size(), 7u);
  b.InsertAll(records);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.Get(3)->version, 4u);  // attributes survived the move
}

TEST(MdsServerTest, StatRequiresVisibleAncestors) {
  MdsServer server(0);
  InodeRecord root, dir, file;
  root.id = 0;
  dir.id = 1;
  dir.parent = 0;
  file.id = 2;
  file.parent = 1;
  server.global_replica().Put(root);
  server.local().Put(file);  // note: dir (id 1) NOT visible here

  const NodeId anc_ok[] = {0};
  EXPECT_EQ(server.Stat(0, {}).status, MdsStatus::kOk);
  // file readable only if the whole chain is: ancestor 1 is missing.
  const NodeId anc_bad[] = {0, 1};
  EXPECT_EQ(server.Stat(2, anc_bad).status, MdsStatus::kWrongServer);
  server.local().Put(dir);
  EXPECT_EQ(server.Stat(2, anc_bad).status, MdsStatus::kOk);
  EXPECT_EQ(server.Stat(7, anc_ok).status, MdsStatus::kWrongServer);
  EXPECT_GE(server.ops_served(), 4u);
}

TEST(MdsServerTest, UpdateLocalOnlyTouchesOwnedRecords) {
  MdsServer server(0);
  InodeRecord gl;
  gl.id = 0;
  server.global_replica().Put(gl);
  EXPECT_EQ(server.UpdateLocal(0, {}, 1).status, MdsStatus::kWrongServer);
  InodeRecord mine;
  mine.id = 3;
  mine.version = 1;
  server.local().Put(mine);
  const NodeId anc[] = {0};
  const MdsOpResult r = server.UpdateLocal(3, anc, 777);
  EXPECT_EQ(r.status, MdsStatus::kOk);
  EXPECT_EQ(r.record.version, 2u);
  EXPECT_EQ(r.record.attrs.mtime, 777u);
}

class FunctionalClusterTest : public ::testing::Test {
 protected:
  FunctionalClusterTest()
      : workload_(GenerateWorkload(LmbeProfile(0.02))),
        cluster_(workload_.tree, 4) {}

  Workload workload_;
  FunctionalCluster cluster_;
};

TEST_F(FunctionalClusterTest, MaterializationIsConsistent) {
  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
}

TEST_F(FunctionalClusterTest, StatServesEveryNode) {
  // Every 37th path must be statable with at most 1 hop and the right
  // record contents.
  for (NodeId id = 0; id < workload_.tree.size(); id += 37) {
    const std::string path = workload_.tree.PathOf(id);
    const auto r = cluster_.Stat(path);
    ASSERT_EQ(r.status, MdsStatus::kOk) << path;
    EXPECT_EQ(r.record.id, id);
    EXPECT_EQ(r.record.name, workload_.tree.node(id).name);
    EXPECT_EQ(r.hops, 1) << "correctly routed requests never forward";
  }
}

TEST_F(FunctionalClusterTest, StatViaWrongServerForwardsOnce) {
  // Find a local-layer node and enter at a non-owner.
  for (NodeId id = 1; id < workload_.tree.size(); ++id) {
    if (cluster_.assignment().IsReplicated(id)) continue;
    const MdsId owner = cluster_.assignment().OwnerOf(id);
    const MdsId wrong = (owner + 1) % 4;
    const auto r = cluster_.StatVia(workload_.tree.PathOf(id), wrong);
    EXPECT_EQ(r.status, MdsStatus::kOk);
    EXPECT_EQ(r.hops, 2);
    EXPECT_EQ(r.served_by, owner);
    EXPECT_GE(cluster_.total_forwards(), 1u);
    return;
  }
  FAIL() << "no local-layer node found";
}

TEST_F(FunctionalClusterTest, GlobalLayerStatServedAnywhere) {
  // GL nodes are served by whichever server is asked, zero forwards.
  const NodeId gl_node = cluster_.scheme().split().global_layer[1];
  const std::string path = workload_.tree.PathOf(gl_node);
  for (MdsId via = 0; via < 4; ++via) {
    const auto r = cluster_.StatVia(path, via);
    EXPECT_EQ(r.status, MdsStatus::kOk);
    EXPECT_EQ(r.served_by, via);
    EXPECT_EQ(r.hops, 1);
  }
}

TEST_F(FunctionalClusterTest, LocalUpdateBumpsVersionAtOwnerOnly) {
  for (NodeId id = 1; id < workload_.tree.size(); ++id) {
    if (cluster_.assignment().IsReplicated(id)) continue;
    const std::string path = workload_.tree.PathOf(id);
    const auto before = cluster_.Stat(path);
    const auto r = cluster_.Update(path, 42);
    ASSERT_EQ(r.status, MdsStatus::kOk);
    EXPECT_EQ(r.record.version, before.record.version + 1);
    EXPECT_EQ(r.record.attrs.mtime, 42u);
    return;
  }
  FAIL() << "no local-layer node found";
}

TEST_F(FunctionalClusterTest, GlobalUpdateReachesEveryReplica) {
  const NodeId gl_node = cluster_.scheme().split().global_layer[1];
  const std::string path = workload_.tree.PathOf(gl_node);
  const auto master_before = cluster_.gl_master_version();
  const auto r = cluster_.Update(path, 99);
  ASSERT_EQ(r.status, MdsStatus::kOk);
  EXPECT_EQ(cluster_.gl_master_version(), master_before + 1);
  for (MdsId k = 0; k < 4; ++k) {
    const auto rec = cluster_.server(k).global_replica().Get(gl_node);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->attrs.mtime, 99u) << "replica " << k << " missed the write";
    EXPECT_EQ(cluster_.server(k).gl_version(), cluster_.gl_master_version());
  }
  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
}

TEST_F(FunctionalClusterTest, AdjustmentPhysicallyMovesRecordsConsistently) {
  // Hammer one server's subtrees to force migrations, then audit.
  const auto& subtrees = cluster_.scheme().layers().subtrees;
  const auto& owners = cluster_.scheme().subtree_owners();
  std::size_t hammered = 0;
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    if (owners[i] != 0) continue;
    const std::string path = workload_.tree.PathOf(subtrees[i].root);
    for (int hit = 0; hit < 200; ++hit) cluster_.Stat(path);
    ++hammered;
  }
  ASSERT_GT(hammered, 0u);
  const std::size_t moved = cluster_.RunAdjustmentRound();
  EXPECT_GT(moved, 0u);
  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
  // Every node is still fully servable after the physical migration.
  for (NodeId id = 0; id < workload_.tree.size(); id += 53) {
    const auto r = cluster_.Stat(workload_.tree.PathOf(id));
    EXPECT_EQ(r.status, MdsStatus::kOk) << workload_.tree.PathOf(id);
  }
}

TEST_F(FunctionalClusterTest, RepeatedAdjustmentStaysConsistent) {
  Rng rng(5);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 500; ++i) {
      const auto id = static_cast<NodeId>(rng.NextBounded(workload_.tree.size()));
      cluster_.Stat(workload_.tree.PathOf(id));
    }
    cluster_.RunAdjustmentRound();
    std::string error;
    ASSERT_TRUE(cluster_.CheckConsistency(&error))
        << "round " << round << ": " << error;
  }
}

TEST_F(FunctionalClusterTest, ConcurrentReadersAndGlWriters) {
  const NodeId gl_node = cluster_.scheme().split().global_layer[1];
  const std::string gl_path = workload_.tree.PathOf(gl_node);
  std::vector<std::string> read_paths;
  for (NodeId id = 0; id < workload_.tree.size(); id += 101)
    read_paths.push_back(workload_.tree.PathOf(id));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        if (t == 0) {
          if (cluster_.Update(gl_path, i).status != MdsStatus::kOk) ++failures;
        } else {
          const auto& p = read_paths[(t * 131 + i) % read_paths.size()];
          if (cluster_.Stat(p).status != MdsStatus::kOk) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  std::string error;
  EXPECT_TRUE(cluster_.CheckConsistency(&error)) << error;
}

TEST(MdsStatusNames, AllNamed) {
  EXPECT_STREQ(MdsStatusName(MdsStatus::kOk), "ok");
  EXPECT_STREQ(MdsStatusName(MdsStatus::kNotFound), "not-found");
  EXPECT_STREQ(MdsStatusName(MdsStatus::kNotPermitted), "not-permitted");
  EXPECT_STREQ(MdsStatusName(MdsStatus::kWrongServer), "wrong-server");
  EXPECT_STREQ(MdsStatusName(MdsStatus::kUnavailable), "unavailable");
}

// Regression: StatVia with an out-of-range entry server used to index
// servers_ unchecked; it must instead fail cleanly as "no such server".
TEST_F(FunctionalClusterTest, StatViaOutOfRangeServerFailsCleanly) {
  const std::string path = workload_.tree.PathOf(0);
  for (const MdsId via : {static_cast<MdsId>(99), static_cast<MdsId>(-5),
                          static_cast<MdsId>(cluster_.mds_count())}) {
    const auto r = cluster_.StatVia(path, via);
    EXPECT_EQ(r.status, MdsStatus::kUnavailable) << "via=" << via;
    EXPECT_EQ(r.hops, 0) << "via=" << via;
  }
  // The cluster is untouched: a normal Stat still succeeds.
  EXPECT_EQ(cluster_.Stat(path).status, MdsStatus::kOk);
}

}  // namespace
}  // namespace d2tree
