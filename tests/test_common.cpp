// Unit tests for d2tree/common: rng, zipf, histograms, DKW, decay counters,
// random-walk sampling, path utilities, stats, hashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "d2tree/common/decay_counter.h"
#include "d2tree/common/dkw.h"
#include "d2tree/common/hash.h"
#include "d2tree/common/histogram.h"
#include "d2tree/common/path_util.h"
#include "d2tree/common/random_walk.h"
#include "d2tree/common/rng.h"
#include "d2tree/common/stats.h"
#include "d2tree/common/zipf.h"

namespace d2tree {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextBoundedStaysInBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(Rng, NextBoundedRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.15);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.NextExponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(3);
  Rng child = a.Fork();
  EXPECT_NE(a(), child());
}

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler z(4, 0.0);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(z.Pmf(k), 0.25, 1e-12);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(100, 1.1);
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, RankZeroIsMostPopular) {
  ZipfSampler z(50, 0.9);
  for (std::size_t k = 1; k < 50; ++k) EXPECT_GE(z.Pmf(k - 1), z.Pmf(k));
}

TEST(Zipf, EmpiricalMatchesPmf) {
  ZipfSampler z(20, 1.0);
  Rng rng(123);
  std::vector<int> counts(20, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[z.Sample(rng)];
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(draws), z.Pmf(k),
                0.01 + 0.1 * z.Pmf(k));
  }
}

TEST(EquiDepthHistogram, BoundariesCoverRange) {
  std::vector<double> samples{5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  EquiDepthHistogram h(samples, 5);
  EXPECT_DOUBLE_EQ(h.boundaries().front(), 0);
  EXPECT_DOUBLE_EQ(h.boundaries().back(), 9);
  EXPECT_EQ(h.boundaries().size(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_mass(), 0.2);
}

TEST(EquiDepthHistogram, CdfMonotone) {
  std::vector<double> samples;
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.NextDouble() * 100);
  EquiDepthHistogram h(samples, 16);
  double prev = -1.0;
  for (double x = -5; x <= 105; x += 0.5) {
    const double c = h.Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(EmpiricalCdf, StepValues) {
  EmpiricalCdf f({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f.Value(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.Value(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f.Value(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f.Value(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f.Value(9.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInvertsValue) {
  EmpiricalCdf f({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(f.Quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(f.Quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(f.Quantile(1.0), 50.0);
}

TEST(EmpiricalCdf, KsDistanceZeroForSameSamples) {
  EmpiricalCdf a({1, 2, 3}), b({1, 2, 3});
  EXPECT_DOUBLE_EQ(a.KsDistance(b), 0.0);
}

TEST(EmpiricalCdf, KsDistanceDetectsShift) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(i + 50);
  }
  EmpiricalCdf a(std::move(xs)), b(std::move(ys));
  EXPECT_GT(a.KsDistance(b), 0.4);
}

TEST(CumulativeShares, MatchesFig4Staircase) {
  // Fig. 4: five subtrees with popularity shares .5 .2 .1 .1 .1.
  const std::vector<double> s{0.5, 0.2, 0.1, 0.1, 0.1};
  const auto shares = CumulativeShares(s);
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_NEAR(shares[0], 0.5, 1e-12);
  EXPECT_NEAR(shares[1], 0.7, 1e-12);
  EXPECT_NEAR(shares[2], 0.8, 1e-12);
  EXPECT_NEAR(shares[3], 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(shares[4], 1.0);
}

TEST(CumulativeShares, EmptyInput) {
  EXPECT_TRUE(CumulativeShares(std::vector<double>{}).empty());
}

TEST(Dkw, TailProbabilityDecreasesInSamples) {
  EXPECT_GT(DkwTailProbability(10, 0.1), DkwTailProbability(1000, 0.1));
  EXPECT_LE(DkwTailProbability(1, 0.01), 1.0);
}

TEST(Dkw, SampleCountSatisfiesBound) {
  const double eps = 0.05, fail = 0.01;
  const std::size_t k = DkwSampleCountFor(eps, fail);
  EXPECT_LE(DkwTailProbability(k, eps), fail * 1.0001);
  EXPECT_GT(DkwTailProbability(k - 1, eps), fail);
}

TEST(Dkw, Lemma1CountGrowsWithRange) {
  const auto small = Lemma1SampleCount(2.0, 1000, 10.0, 0.0, 1.0);
  const auto large = Lemma1SampleCount(2.0, 1000, 100.0, 0.0, 1.0);
  EXPECT_GT(large, small);
}

TEST(Dkw, Lemma1DegenerateRange) {
  EXPECT_EQ(Lemma1SampleCount(2.0, 1000, 5.0, 5.0, 0.1), 1u);
}

TEST(Dkw, Theorem4BoundShape) {
  // M/(M-1) * delta^2 * mu^2
  EXPECT_NEAR(Theorem4BalanceBound(2, 0.1, 3.0), 2.0 * 0.01 * 9.0, 1e-12);
  EXPECT_LT(Theorem4BalanceBound(32, 0.1, 3.0),
            Theorem4BalanceBound(2, 0.1, 3.0));
}

TEST(DecayCounter, HalvesAfterHalfLife) {
  DecayCounter c(10.0, 0.0);
  c.Add(8.0, 0.0);
  EXPECT_NEAR(c.Value(10.0), 4.0, 1e-9);
  EXPECT_NEAR(c.Value(20.0), 2.0, 1e-9);
}

TEST(DecayCounter, AddAccumulatesWithDecay) {
  DecayCounter c(10.0, 0.0);
  c.Add(4.0, 0.0);
  c.Add(4.0, 10.0);  // first contribution has halved by now
  EXPECT_NEAR(c.Value(10.0), 6.0, 1e-9);
}

TEST(DecayCounter, ResetClears) {
  DecayCounter c(5.0, 0.0);
  c.Add(100.0, 0.0);
  c.Reset(1.0);
  EXPECT_DOUBLE_EQ(c.Value(2.0), 0.0);
}

TEST(RandomWalk, UniformOnCycle) {
  // 10-vertex ring: MH walk should sample uniformly.
  const std::size_t n = 10;
  RandomWalkSampler sampler(
      n, [](std::size_t) { return std::size_t{2}; },
      [n](std::size_t v, std::size_t i) { return i == 0 ? (v + 1) % n : (v + n - 1) % n; });
  Rng rng(17);
  const auto samples = sampler.Sample(rng, 20000, 64, 3);
  std::vector<int> counts(n, 0);
  for (auto s : samples) ++counts[s];
  for (std::size_t v = 0; v < n; ++v)
    EXPECT_NEAR(counts[v], 2000, 450) << "vertex " << v;
}

TEST(RandomWalk, UniformOnStarGraph) {
  // Star: hub 0 with 9 leaves; MH correction must cancel the degree skew.
  const std::size_t n = 10;
  RandomWalkSampler sampler(
      n,
      [n](std::size_t v) { return v == 0 ? n - 1 : std::size_t{1}; },
      [](std::size_t v, std::size_t i) { return v == 0 ? i + 1 : std::size_t{0}; });
  Rng rng(29);
  const auto samples = sampler.Sample(rng, 30000, 128, 5);
  std::vector<int> counts(n, 0);
  for (auto s : samples) ++counts[s];
  for (std::size_t v = 0; v < n; ++v)
    EXPECT_NEAR(counts[v], 3000, 700) << "vertex " << v;
}

TEST(UniformIndexSample, InRangeAndCovering) {
  Rng rng(31);
  const auto samples = UniformIndexSample(rng, 5, 5000);
  std::vector<int> counts(5, 0);
  for (auto s : samples) {
    ASSERT_LT(s, 5u);
    ++counts[s];
  }
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(PathUtil, SplitBasics) {
  const auto parts = SplitPath("/root/home/b/h.jpg");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "root");
  EXPECT_EQ(parts[3], "h.jpg");
}

TEST(PathUtil, SplitHandlesSlashNoise) {
  EXPECT_TRUE(SplitPath("/").empty());
  EXPECT_TRUE(SplitPath("").empty());
  EXPECT_EQ(SplitPath("//a///b/").size(), 2u);
}

TEST(PathUtil, JoinRoundTrip) {
  const std::string p = "/a/b/c";
  EXPECT_EQ(JoinPath(SplitPath(p)), p);
  EXPECT_EQ(JoinPath({}), "/");
}

TEST(PathUtil, DepthParentBase) {
  EXPECT_EQ(PathDepth("/"), 0u);
  EXPECT_EQ(PathDepth("/a/b"), 2u);
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/"), "/");
  EXPECT_EQ(BaseName("/a/b/c"), "c");
  EXPECT_EQ(BaseName("/"), "");
}

TEST(PathUtil, IsPathPrefix) {
  EXPECT_TRUE(IsPathPrefix("/", "/anything"));
  EXPECT_TRUE(IsPathPrefix("/a/b", "/a/b"));
  EXPECT_TRUE(IsPathPrefix("/a/b", "/a/b/c"));
  EXPECT_FALSE(IsPathPrefix("/a/b", "/a/bc"));
  EXPECT_FALSE(IsPathPrefix("/a/b/c", "/a/b"));
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.0);
}

TEST(Stats, JainFairness) {
  const std::vector<double> fair{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(JainFairness(fair), 1.0);
  const std::vector<double> unfair{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(JainFairness(unfair), 0.25);
}

TEST(Hash, Fnv1aStable) {
  // Known FNV-1a test vector.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(Hash, MixAvalanche) {
  EXPECT_NE(MixHash(1), MixHash(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace d2tree
