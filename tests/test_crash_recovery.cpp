// Crash-consistent handoff tests (DESIGN.md §7): a whole-service crash
// planted at every named site of the two-phase migration protocol — with
// and without a torn WAL tail — must recover to a cluster that passes
// d2fsck: intent-only migrations roll back, prepared-or-later roll
// forward, re-delivered pulls dedup on the migration id, and no record is
// ever lost, duplicated or orphaned. Closes with the crash-schedule
// property sweep over random tree shapes; the concurrent crash storms
// live in test_fault_stress.cpp (label "stress").
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/fsck.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/net/simnet.h"
#include "d2tree/nstree/builder.h"
#include "d2tree/sim/fault_injector.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

std::size_t AliveLocalRecords(const FunctionalCluster& cluster) {
  std::size_t total = 0;
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
    if (cluster.IsServerAlive(k)) total += cluster.server(k).local().size();
  return total;
}

void ExpectRecoveredClean(const FunctionalCluster& cluster,
                          std::size_t tree_size, const std::string& context) {
  const FsckReport fsck = FsckCluster(cluster);
  EXPECT_TRUE(fsck.clean()) << context << ":\n" << FormatFsckReport(fsck);
  const std::size_t gl = cluster.scheme().split().global_layer.size();
  EXPECT_EQ(AliveLocalRecords(cluster), tree_size - gl)
      << context << ": records lost or duplicated";
}

/// Some MDS that owns at least one local-layer subtree.
MdsId VictimWithSubtrees(const FunctionalCluster& cluster) {
  const auto owners = cluster.scheme().subtree_owners();
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
    if (std::count(owners.begin(), owners.end(), k) > 0) return k;
  return -1;
}

class CrashSiteTest : public ::testing::Test {
 protected:
  CrashSiteTest()
      : workload_(GenerateWorkload(DtrProfile(0.05))),
        cluster_(workload_.tree, 4) {
    for (NodeId id = 0; id < workload_.tree.size(); id += 3)
      cluster_.Stat(workload_.tree.PathOf(id));
  }

  /// Arms `site` and forces the adjustment round into a migration (by
  /// draining a subtree-owning victim) so the armed site is reached.
  /// Returns the victim.
  MdsId TripMigrationCrash(CrashSite site, bool torn) {
    const MdsId victim = VictimWithSubtrees(cluster_);
    EXPECT_GE(victim, 0);
    EXPECT_TRUE(cluster_.SetHeartbeatSuppressed(victim, true));
    cluster_.ArmCrash(site, torn);
    cluster_.RunAdjustmentRound();
    EXPECT_TRUE(cluster_.crashed())
        << "armed site " << CrashSiteName(site) << " never tripped";
    return victim;
  }

  Workload workload_;
  FunctionalCluster cluster_;
};

// While crashed, every client-facing op answers kUnavailable and the
// audit refuses to run; Recover() restores full service.
TEST_F(CrashSiteTest, CrashedServiceIsUnavailableUntilRecovered) {
  ASSERT_EQ(cluster_.Update("/", 1).status, MdsStatus::kOk);
  cluster_.ArmCrash(CrashSite::kAfterGlBump);
  cluster_.Update("/", 2);  // trips the armed site
  ASSERT_TRUE(cluster_.crashed());
  EXPECT_EQ(cluster_.crashes_injected(), 1u);

  EXPECT_EQ(cluster_.Stat("/").status, MdsStatus::kUnavailable);
  EXPECT_EQ(cluster_.Update("/", 3).status, MdsStatus::kUnavailable);
  EXPECT_EQ(cluster_.RunAdjustmentRound(), 0u);
  std::string error;
  EXPECT_FALSE(cluster_.CheckConsistency(&error));
  EXPECT_NE(error.find("crashed"), std::string::npos);

  const auto recovery = cluster_.Recover();
  EXPECT_FALSE(cluster_.crashed());
  EXPECT_GT(recovery.wal_records_replayed, 0u);
  EXPECT_EQ(cluster_.recoveries_completed(), 1u);
  EXPECT_EQ(cluster_.Stat("/").status, MdsStatus::kOk);
  ExpectRecoveredClean(cluster_, workload_.tree.size(), "post-recover");
}

// Crash after INTENT: nothing moved, so recovery rolls the migration
// back — the subtree stays with its donor and an ABORT is journaled.
TEST_F(CrashSiteTest, IntentOnlyCrashRollsBack) {
  const MdsId victim = TripMigrationCrash(CrashSite::kAfterIntent, false);
  const auto recovery = cluster_.Recover();
  EXPECT_EQ(recovery.migrations_rolled_back, 1u);
  EXPECT_EQ(recovery.migrations_rolled_forward, 0u);
  cluster_.SetHeartbeatSuppressed(victim, false);

  // The donor still owns everything it owned — the plan died with the
  // crash.
  const auto owners = cluster_.scheme().subtree_owners();
  EXPECT_GT(std::count(owners.begin(), owners.end(), victim), 0);
  ExpectRecoveredClean(cluster_, workload_.tree.size(), "rolled back");

  const FsckReport fsck = FsckCluster(cluster_);
  EXPECT_EQ(fsck.migrations_aborted, 1u);
  EXPECT_EQ(fsck.migrations_in_flight, 0u);
}

// Crash after PREPARE: the records are durably parked in the pending
// pool, so recovery rolls forward — the grantee ends up owning the
// subtree and the COMMIT is journaled.
TEST_F(CrashSiteTest, PreparedCrashRollsForward) {
  const MdsId victim = TripMigrationCrash(CrashSite::kAfterPrepare, false);
  const auto recovery = cluster_.Recover();
  EXPECT_EQ(recovery.migrations_rolled_forward, 1u);
  EXPECT_EQ(recovery.migrations_rolled_back, 0u);
  cluster_.SetHeartbeatSuppressed(victim, false);
  ExpectRecoveredClean(cluster_, workload_.tree.size(), "rolled forward");
  EXPECT_EQ(FsckCluster(cluster_).migrations_committed, 1u);
}

// Crash after PREPARE with the append itself torn: replay cannot see the
// PREPARE, so the migration is intent-only and must roll back — acting
// on a torn record would commit a handoff whose durability never landed.
TEST_F(CrashSiteTest, TornPrepareDemotesToRollback) {
  const MdsId victim = TripMigrationCrash(CrashSite::kAfterPrepare, true);
  const auto recovery = cluster_.Recover();
  EXPECT_TRUE(recovery.torn_tail_detected);
  EXPECT_GT(recovery.torn_bytes_discarded, 0u);
  EXPECT_EQ(recovery.migrations_rolled_back, 1u);
  EXPECT_EQ(recovery.migrations_rolled_forward, 0u);
  cluster_.SetHeartbeatSuppressed(victim, false);
  ExpectRecoveredClean(cluster_, workload_.tree.size(), "torn prepare");
}

// Crash after the grantee applied and journaled the pull but before the
// Monitor's COMMIT: recovery rolls forward and the grantee's own journal
// dedups the re-delivery — the records are applied exactly once.
TEST_F(CrashSiteTest, PullAppliedCrashDedupsOnRecovery) {
  const MdsId victim = TripMigrationCrash(CrashSite::kAfterPull, false);
  ASSERT_EQ(cluster_.duplicate_pulls_dropped(), 0u);
  const auto recovery = cluster_.Recover();
  EXPECT_EQ(recovery.migrations_rolled_forward, 1u);
  EXPECT_EQ(cluster_.duplicate_pulls_dropped(), 1u)
      << "the re-delivered pull must be dropped by the migration-id dedup";
  cluster_.SetHeartbeatSuppressed(victim, false);
  ExpectRecoveredClean(cluster_, workload_.tree.size(), "pull dedup");
}

// Crash after the local commit: the COMMIT record is durable, so replay
// is pure re-application — same owner, no second pull, clean audit.
TEST_F(CrashSiteTest, CommittedCrashReplaysIdempotently) {
  const MdsId victim = TripMigrationCrash(CrashSite::kAfterCommitLocal, false);
  const auto recovery = cluster_.Recover();
  EXPECT_EQ(recovery.migrations_rolled_back, 0u);
  cluster_.SetHeartbeatSuppressed(victim, false);
  ExpectRecoveredClean(cluster_, workload_.tree.size(), "committed");
  EXPECT_GE(FsckCluster(cluster_).migrations_committed, 1u);
}

// Crash right after the GL version bump: the journaled version wins —
// after recovery every live replica is at the (bumped) master version.
TEST_F(CrashSiteTest, GlBumpSurvivesCrash) {
  ASSERT_EQ(cluster_.Update("/", 7).status, MdsStatus::kOk);
  const std::uint64_t bumped = cluster_.gl_master_version();
  cluster_.ArmCrash(CrashSite::kAfterGlBump);
  cluster_.Update("/", 8);
  ASSERT_TRUE(cluster_.crashed());

  const auto recovery = cluster_.Recover();
  EXPECT_GT(recovery.gl_version, bumped);
  EXPECT_EQ(cluster_.gl_master_version(), recovery.gl_version);
  for (MdsId k = 0; k < static_cast<MdsId>(cluster_.mds_count()); ++k) {
    if (!cluster_.IsServerAlive(k)) continue;
    EXPECT_EQ(cluster_.server(k).gl_version(), recovery.gl_version)
        << "replica " << k << " lagging after recovery";
    EXPECT_EQ(cluster_.StatVia("/", k).status, MdsStatus::kOk);
  }
  ExpectRecoveredClean(cluster_, workload_.tree.size(), "gl bump");
}

// Regression (the pre-repin bug): a pending-pool pull that cannot reach
// its grantee over a lossy Monitor⇄MDS link parks the migration. Further
// adjustment rounds while the link is down must keep the subtree pinned
// to the parked grantee — re-planning it would put the same records in
// two migrations (double assignment). After the link heals the pull is
// re-issued and lands exactly once.
TEST(ParkedPullRegression, LossyMonitorLinkParksWithoutDoubleAssign) {
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  SimNetConfig netcfg;
  netcfg.seed = 0x9A12C;
  netcfg.jitter_mean_us = 0.0;
  auto net = std::make_shared<SimNetTransport>(netcfg);
  FunctionalCluster cluster(w.tree, 4, {}, net);
  for (NodeId id = 0; id < w.tree.size(); id += 3)
    cluster.Stat(w.tree.PathOf(id));

  // Every Monitor⇄MDS link loses 80% of messages: heartbeats (2 tight
  // attempts) sometimes survive while the pull (4 attempts) still fails —
  // the footprint of a partition starting mid-round.
  for (MdsId k = 0; k < 4; ++k)
    ASSERT_TRUE(net->SetLinkDropRate(MonitorAddress(), MdsAddress(k), 0.8));

  // Churn ownership until a pull parks: drain a different server each
  // round so every round has migrations in flight over the lossy links.
  std::size_t round = 0;
  for (; round < 200 && cluster.parked_migration_count() == 0; ++round) {
    const MdsId drain = static_cast<MdsId>(round % 4);
    cluster.SetHeartbeatSuppressed(drain, true);
    cluster.RunAdjustmentRound();
    cluster.SetHeartbeatSuppressed(drain, false);
  }
  ASSERT_GT(cluster.parked_migration_count(), 0u)
      << "no pull parked in " << round << " lossy rounds";

  // Parked nodes are held by nobody and answer kUnavailable.
  const std::vector<NodeId> parked = cluster.ParkedNodes();
  ASSERT_FALSE(parked.empty());
  EXPECT_EQ(cluster.Stat(w.tree.PathOf(parked.front())).status,
            MdsStatus::kUnavailable);

  // The audit and d2fsck hold *while* parked: in-flight journal records
  // are accounted for, no node is double-held.
  std::string error;
  EXPECT_TRUE(cluster.CheckConsistency(&error)) << error;
  const FsckReport mid = FsckCluster(cluster);
  EXPECT_TRUE(mid.clean()) << FormatFsckReport(mid);
  EXPECT_EQ(mid.migrations_in_flight, cluster.parked_migration_count());

  // More rounds with the link still lossy: the parked subtree must stay
  // pinned (never re-planned into a second migration).
  for (int i = 0; i < 3; ++i) cluster.RunAdjustmentRound();
  const FsckReport pinned = FsckCluster(cluster);
  EXPECT_TRUE(pinned.clean()) << FormatFsckReport(pinned);

  // Heal; the next rounds re-issue the pulls and every parked handoff
  // completes exactly once.
  for (MdsId k = 0; k < 4; ++k)
    ASSERT_TRUE(net->SetLinkDropRate(MonitorAddress(), MdsAddress(k), 0.0));
  for (int i = 0; i < 3 && cluster.parked_migration_count() > 0; ++i)
    cluster.RunAdjustmentRound();
  EXPECT_EQ(cluster.parked_migration_count(), 0u);
  EXPECT_EQ(cluster.Stat(w.tree.PathOf(parked.front())).status, MdsStatus::kOk);
  ExpectRecoveredClean(cluster, w.tree.size(), "after heal");
  EXPECT_GT(cluster.retries_total(), 0u)
      << "an 80% lossy link must charge retries";
}

// Random schedules now carry crash/recover pairs: every kCrashAtSite is
// followed by a kRecover, sites are seeded, and ToString renders them.
TEST(FaultInjectorCrash, RandomSchedulesPairCrashWithRecover) {
  FaultMix mix;
  mix.kills = 0;
  mix.revives = 0;
  mix.server_additions = 0;
  mix.crashes = 3;
  mix.torn_tail_probability = 1.0;
  const FaultSchedule s = FaultSchedule::Random(0xC4A5, 4, 20'000, mix);

  std::size_t crashes = 0, recovers = 0;
  for (const FaultEvent& e : s.events) {
    if (e.kind == FaultKind::kCrashAtSite) {
      ++crashes;
      EXPECT_TRUE(e.torn_tail);  // probability pinned to 1
    } else if (e.kind == FaultKind::kRecover) {
      ++recovers;
      EXPECT_GT(crashes, 0u) << "recover before any crash";
    } else {
      FAIL() << "kind not in this mix: " << FaultKindName(e.kind);
    }
  }
  EXPECT_EQ(crashes, 3u);
  EXPECT_EQ(recovers, 3u);
  EXPECT_NE(s.ToString().find("crash site="), std::string::npos);
  EXPECT_NE(s.ToString().find("torn"), std::string::npos);
  EXPECT_NE(s.ToString().find("recover"), std::string::npos);

  // Determinism: same inputs, same schedule (sites and torn flags too).
  EXPECT_TRUE(FaultSchedule::Random(0xC4A5, 4, 20'000, mix).events ==
              s.events);
}

// The property sweep: ≥30 random tree shapes, and on each shape a crash
// at *every* named site (torn and intact tails interleaved) followed by
// Recover(). Every single recovery must leave a cluster that d2fsck
// calls clean with the full namespace intact — the system's
// crash-consistency criterion.
TEST(CrashRecoveryProperty, EverySiteRecoversCleanAcrossRandomShapes) {
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0xC7A50000ULL + static_cast<std::uint64_t>(trial));
    SyntheticTreeConfig cfg;
    cfg.node_count = 100 + rng.NextBounded(300);
    cfg.max_depth = 4 + static_cast<std::uint32_t>(rng.NextBounded(8));
    cfg.dir_ratio = 0.2 + 0.3 * rng.NextDouble();
    cfg.depth_bias = 0.6 * rng.NextDouble();
    cfg.root_fanout = 4 + static_cast<std::uint32_t>(rng.NextBounded(16));
    NamespaceTree tree = BuildSyntheticTree(cfg, rng);
    for (NodeId id = 0; id < tree.size(); ++id)
      tree.AddAccess(id, rng.NextExponential(5.0));
    tree.RecomputeSubtreePopularity();

    const std::size_t m = 3 + rng.NextBounded(3);  // 3..5 servers
    FunctionalCluster cluster(tree, m);
    for (NodeId id = 0; id < tree.size(); id += 4)
      cluster.Stat(tree.PathOf(id));

    std::size_t fresh_names = 0;
    for (std::size_t s = 0; s < kCrashSiteCount; ++s) {
      const auto site = static_cast<CrashSite>(s);
      const bool torn = rng.NextBool(0.5);
      const std::string context = "trial " + std::to_string(trial) +
                                  " site " + CrashSiteName(site) +
                                  (torn ? " torn" : "");
      const bool rename_site = s >= kFirstRenameCrashSite;

      MdsId victim = -1;
      NodeId renamed_root = kInvalidNode;
      std::string renamed_old_path, renamed_new_name;
      if (!rename_site && site != CrashSite::kAfterGlBump) {
        victim = VictimWithSubtrees(cluster);
        ASSERT_GE(victim, 0) << context << ": no MDS owns a subtree";
      }
      cluster.ArmCrash(site, torn);
      if (rename_site) {
        // Rename sites are reached by the rename transaction driver: pick
        // a local-layer subtree root with an alive owner (its path read
        // from the mirrored tree, which tracks committed renames below)
        // and rename it — in place, or re-homed to another alive server.
        const auto owners = cluster.scheme().subtree_owners();
        const auto& subtrees = cluster.scheme().layers().subtrees;
        std::size_t pick = subtrees.size();
        for (std::size_t i = 0; i < subtrees.size() && i < owners.size(); ++i)
          if (cluster.IsServerAlive(owners[i])) {
            pick = i;
            break;
          }
        ASSERT_LT(pick, subtrees.size())
            << context << ": no subtree with an alive owner";
        renamed_root = subtrees[pick].root;
        renamed_old_path = tree.PathOf(renamed_root);
        renamed_new_name = "rn" + std::to_string(trial) + "_" +
                           std::to_string(fresh_names++);
        MdsId dest = -1;
        if (rng.NextBool(0.5)) {
          for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
            if (k != owners[pick] && cluster.IsServerAlive(k)) {
              dest = k;
              break;
            }
        }
        if (dest >= 0)
          cluster.RenameTo(renamed_old_path, renamed_new_name, dest);
        else
          cluster.Rename(renamed_old_path, renamed_new_name);
      } else if (site == CrashSite::kAfterGlBump) {
        cluster.Update("/", static_cast<std::uint64_t>(trial));
      } else {
        ASSERT_TRUE(cluster.SetHeartbeatSuppressed(victim, true));
        cluster.RunAdjustmentRound();
      }
      ASSERT_TRUE(cluster.crashed()) << context << ": site never tripped";

      cluster.Recover();
      if (victim >= 0) cluster.SetHeartbeatSuppressed(victim, false);
      if (renamed_root != kInvalidNode &&
          cluster.Stat(renamed_old_path).status == MdsStatus::kNotFound) {
        // The rename took effect (committed live or rolled forward):
        // mirror it so the next iteration's paths resolve.
        tree.Rename(renamed_root, renamed_new_name);
      }
      ASSERT_FALSE(cluster.crashed()) << context;
      const FsckReport fsck = FsckCluster(cluster);
      ASSERT_TRUE(fsck.clean())
          << context << ":\n" << FormatFsckReport(fsck);
      const std::size_t gl = cluster.scheme().split().global_layer.size();
      ASSERT_EQ(AliveLocalRecords(cluster), tree.size() - gl)
          << context << ": records lost or duplicated";

      // Stabilize before the next site so each crash starts from a
      // serviceable cluster.
      cluster.RunAdjustmentRound();
    }
  }
}

}  // namespace
}  // namespace d2tree
