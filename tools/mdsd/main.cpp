// mdsd — one metadata-service role as a real process.
//
// Each daemon hosts exactly one role (one MDS, or the Monitor) behind a
// SocketTransport listener. All daemons of a cluster are started with the
// same --profile/--scale/--seed/--mds-count flags, so each deterministically
// regenerates the identical namespace and D2-Tree partition (the same way
// every MDS in the paper's system shares the global layer and the local
// index): routing decisions agree across processes without any placement
// exchange at boot.
//
//   mdsd --role mds --id 0 --listen 127.0.0.1:7100
//        --peers mds0=127.0.0.1:7100,mds1=127.0.0.1:7101,monitor=127.0.0.1:7190
//        --mds-count 3 --profile lmbe --scale 0.05 --seed 1
//
// Serving contract (the honest-cost rules the bench relies on):
//   * A kStatRequest / kUpdateRequest for a local-layer subtree owned by
//     another MDS answers kWrongServer with `peer` naming the owner — the
//     client pays the redirect as a real second RPC (the paper's 1-jump).
//   * A global-layer update takes a kGlWriteLock round with the Monitor
//     (the version authority), applies locally, then fans kGlCommit
//     one-ways to the MDS peers; receiving daemons apply the version-fenced
//     mutation without rebroadcasting.
//   * Daemons never run adjustment rounds: each process only observes its
//     own traffic, so re-planning locally would diverge the placements.
//
// With --data-dir <dir> an MDS daemon keeps its local store in the
// embedded LSM engine under <dir>/mds<id>/ instead of RAM: a SIGKILLed
// daemon restarted on the same directory replays its engine WAL and
// resumes from the durable namespace — mutations (mtimes, versions,
// renames) survive where a memory daemon would silently regenerate the
// pristine tree. Only this daemon's own role persists; the bystander
// servers of its local cluster model stay in memory.
//
// After Bind succeeds the daemon prints "MDSD LISTENING <port>" on stdout
// (port 0 in --listen auto-assigns); tests parse that line. SIGTERM/SIGINT
// drains the transport, audits the local model with CheckConsistency, and
// prints a one-line JSON stats summary; exit 0 iff the audit is clean.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "d2tree/mds/cluster.h"
#include "d2tree/net/endpoint.h"
#include "d2tree/net/socket_transport.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

struct Flags {
  std::string role = "mds";
  MdsId id = 0;
  std::string listen;  // host:port ("" = 127.0.0.1:0)
  std::string peers;
  std::size_t mds_count = 3;
  std::string profile = "lmbe";
  double scale = 0.05;
  std::uint64_t seed = 1;
  std::string data_dir;  // "" = volatile in-memory store
};

TraceProfile ProfileByName(const std::string& name, double scale) {
  if (name == "dtr") return DtrProfile(scale);
  if (name == "ra") return RaProfile(scale);
  return LmbeProfile(scale);
}

bool ParseFlags(int argc, char** argv, Flags* f) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--role" && (v = value()))
      f->role = v;
    else if (arg == "--id" && (v = value()))
      f->id = static_cast<MdsId>(std::atoi(v));
    else if (arg == "--listen" && (v = value()))
      f->listen = v;
    else if (arg == "--peers" && (v = value()))
      f->peers = v;
    else if (arg == "--mds-count" && (v = value()))
      f->mds_count = static_cast<std::size_t>(std::atoll(v));
    else if (arg == "--profile" && (v = value()))
      f->profile = v;
    else if (arg == "--scale" && (v = value()))
      f->scale = std::atof(v);
    else if (arg == "--seed" && (v = value()))
      f->seed = static_cast<std::uint64_t>(std::atoll(v));
    else if (arg == "--data-dir" && (v = value()))
      f->data_dir = v;
    else
      return false;
  }
  return (f->role == "mds" || f->role == "monitor") && f->mds_count > 0 &&
         (f->role != "mds" ||
          (f->id >= 0 && static_cast<std::size_t>(f->id) < f->mds_count));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: mdsd --role mds|monitor [--id N] [--listen h:p] "
                 "[--peers name=h:p,...] [--mds-count M] "
                 "[--profile dtr|lmbe|ra] [--scale S] [--seed N] "
                 "[--data-dir DIR]\n");
    return 2;
  }
  const Address self = flags.role == "monitor" ? MonitorAddress()
                                               : MdsAddress(flags.id);

  // Identical flags → identical namespace, partition and local index in
  // every daemon of the cluster.
  TraceProfile profile = ProfileByName(flags.profile, flags.scale);
  profile.seed = flags.seed;
  const Workload workload = GenerateWorkload(profile);
  // --data-dir puts this daemon's own role on the durable LSM engine;
  // the bystander servers of the local cluster model stay in memory
  // (only_mds) so N daemons sharing a directory never cross-write.
  StoreSpec store;
  if (!flags.data_dir.empty() && flags.role == "mds") {
    store.backend = StoreSpec::Backend::kLsm;
    store.data_dir = flags.data_dir;
    store.only_mds = flags.id;
  }
  FunctionalCluster cluster(workload.tree, flags.mds_count, {}, nullptr,
                            store);

  auto transport = std::make_shared<SocketTransport>();
  if (!flags.peers.empty()) {
    const auto specs = ParsePeerList(flags.peers);
    if (!specs.has_value()) {
      std::fprintf(stderr, "mdsd: malformed --peers list\n");
      return 2;
    }
    for (const PeerSpec& spec : *specs) {
      if (!transport->AddPeer(spec.addr, spec.host_port)) {
        std::fprintf(stderr, "mdsd: malformed peer endpoint '%s'\n",
                     spec.host_port.c_str());
        return 2;
      }
    }
  }
  if (!flags.listen.empty() && !transport->AddPeer(self, flags.listen)) {
    std::fprintf(stderr, "mdsd: malformed --listen endpoint\n");
    return 2;
  }

  // The Monitor is the global-layer version authority: each kGlWriteLock
  // grant returns the freshly bumped version in `migration_id`.
  std::atomic<std::uint64_t> gl_version{0};

  Transport::Handler handler;
  if (flags.role == "monitor") {
    handler = [&](const Address& from, const Message& req) -> Message {
      (void)from;
      Message resp = req;
      resp.status = MdsStatus::kOk;
      switch (req.type) {
        case MsgType::kGlWriteLock:
          resp.migration_id =
              gl_version.fetch_add(1, std::memory_order_acq_rel) + 1;
          break;
        case MsgType::kHeartbeat:
          break;
        // d2lint: allow-default(monitor rejects all but lock + heartbeat)
        default:
          resp.status = MdsStatus::kNotPermitted;
          break;
      }
      return resp;
    };
  } else {
    const MdsId me = flags.id;
    handler = [&, me](const Address& from, const Message& req) -> Message {
      (void)from;
      Message resp = req;
      switch (req.type) {
        case MsgType::kStatRequest:
        case MsgType::kForward: {
          resp.type = MsgType::kStatResponse;
          const Assignment& assignment = cluster.assignment();
          if (req.target >= workload.tree.size()) {
            resp.status = MdsStatus::kNotFound;
            break;
          }
          const MdsId owner = assignment.OwnerOf(req.target);
          if (owner != kReplicated && owner != me) {
            // The paper's 1-jump, paid honestly: the client re-issues the
            // request to the named owner as a second real RPC.
            resp.status = MdsStatus::kWrongServer;
            resp.peer = owner;
            break;
          }
          const auto ancestors = workload.tree.AncestorsOf(req.target);
          const MdsOpResult r = cluster.server(me).Stat(req.target, ancestors);
          resp.status = r.status;
          resp.record = r.record;
          break;
        }
        case MsgType::kUpdateRequest: {
          resp.type = MsgType::kUpdateResponse;
          const Assignment& assignment = cluster.assignment();
          if (req.target >= workload.tree.size()) {
            resp.status = MdsStatus::kNotFound;
            break;
          }
          if (assignment.IsReplicated(req.target)) {
            // GL update: version round with the Monitor, local apply,
            // kGlCommit fan-out (Sec. IV-A3 over real sockets).
            Message lock{.type = MsgType::kGlWriteLock, .target = req.target};
            Message grant;
            const Delivery d = transport->Call(self, MonitorAddress(), lock,
                                               &grant);
            if (!d.delivered || grant.status != MdsStatus::kOk) {
              resp.status = MdsStatus::kUnavailable;
              break;
            }
            const std::uint64_t version = grant.migration_id;
            cluster.server(me).global_replica().Mutate(req.target, req.mtime);
            gl_version.store(version, std::memory_order_release);
            Message commit{.type = MsgType::kGlCommit,
                           .target = req.target,
                           .mtime = req.mtime,
                           .payload_records = 1,
                           .migration_id = version};
            for (std::size_t p = 0; p < flags.mds_count; ++p) {
              if (static_cast<MdsId>(p) == me) continue;
              // Best-effort fan-out: an unreachable replica catches up on
              // the next commit it does see (versions are monotone).
              (void)transport->SendReliable(
                  self, MdsAddress(static_cast<MdsId>(p)), commit,
                  /*max_tries=*/2);
            }
            resp.status = MdsStatus::kOk;
            resp.record = cluster.server(me)
                              .global_replica()
                              .Get(req.target)
                              .value_or(InodeRecord{});
            resp.migration_id = version;
            break;
          }
          const MdsId owner = assignment.OwnerOf(req.target);
          if (owner != me) {
            resp.status = MdsStatus::kWrongServer;
            resp.peer = owner;
            break;
          }
          const auto ancestors = workload.tree.AncestorsOf(req.target);
          const MdsOpResult r =
              cluster.server(me).UpdateLocal(req.target, ancestors, req.mtime);
          resp.status = r.status;
          resp.record = r.record;
          break;
        }
        case MsgType::kGlCommit: {
          // Version-fenced replica apply; never rebroadcast (the
          // coordinator already fans out to every peer).
          const std::uint64_t version = req.migration_id;
          std::uint64_t seen = gl_version.load(std::memory_order_acquire);
          if (version > seen) {
            cluster.server(me).global_replica().Mutate(req.target, req.mtime);
            while (seen < version &&
                   !gl_version.compare_exchange_weak(
                       seen, version, std::memory_order_acq_rel)) {
            }
          }
          resp.status = MdsStatus::kOk;
          break;
        }
        case MsgType::kHeartbeat:
          resp.status = MdsStatus::kOk;
          break;
        // d2lint: allow-default(unimplemented types answer kNotPermitted)
        default:
          resp.status = MdsStatus::kNotPermitted;
          break;
      }
      return resp;
    };
  }

  if (!transport->Bind(self, std::move(handler))) {
    std::fprintf(stderr, "mdsd: cannot listen on %s\n",
                 flags.listen.empty() ? "127.0.0.1:0" : flags.listen.c_str());
    return 1;
  }
  const std::string endpoint = transport->EndpointOf(self);
  std::string host;
  std::uint16_t port = 0;
  if (!SplitHostPort(endpoint, &host, &port)) {
    std::fprintf(stderr, "mdsd: bad bound endpoint '%s'\n", endpoint.c_str());
    return 1;
  }
  std::printf("MDSD LISTENING %u\n", static_cast<unsigned>(port));
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  while (g_stop == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Clean SIGTERM drain: stop accepting, let the workers finish, then
  // audit the local model before reporting.
  transport->Shutdown(/*drain=*/true);
  std::string audit_error;
  const bool consistent = cluster.CheckConsistency(&audit_error);
  const MetadataStore& local = cluster.server(flags.id).local();
  const StoreEngineStats store_stats = local.EngineStats();
  std::printf(
      "{\"role\": \"%s\", \"id\": %d, \"handled\": %llu, "
      "\"dedup_hits\": %llu, \"corrupt_frames\": %llu, "
      "\"busy_rejections\": %llu, \"gl_version\": %llu, "
      "\"store\": \"%s\", \"store_records\": %zu, "
      "\"store_tables\": %llu, \"store_wal_commits\": %llu, "
      "\"consistent\": %s}\n",
      flags.role.c_str(), flags.id,
      static_cast<unsigned long long>(transport->handled_requests()),
      static_cast<unsigned long long>(transport->dedup_hits()),
      static_cast<unsigned long long>(transport->corrupt_frames()),
      static_cast<unsigned long long>(transport->busy_rejections()),
      static_cast<unsigned long long>(gl_version.load()),
      local.engine_name(), local.size(),
      static_cast<unsigned long long>(store_stats.tables),
      static_cast<unsigned long long>(store_stats.wal_group_commits),
      consistent ? "true" : "false");
  if (!consistent)
    std::fprintf(stderr, "mdsd: audit failed: %s\n", audit_error.c_str());
  return consistent ? 0 : 1;
}
