#!/usr/bin/env bash
# clang-format wrapper (config: .clang-format).
#
# Usage:
#   tools/lint/format.sh                 # reformat all C++ files in place
#   tools/lint/format.sh --check         # fail if any file needs changes
#   tools/lint/format.sh [--check] f...  # restrict to the given files
#     (CI passes the PR's touched files via `git diff --name-only`)
set -euo pipefail

cd "$(dirname "$0")/../.."

FMT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FMT" >/dev/null 2>&1; then
  echo "error: $FMT not found (set CLANG_FORMAT or install clang-format)" >&2
  exit 2
fi

CHECK=0
if [ "${1:-}" = "--check" ]; then
  CHECK=1
  shift
fi

if [ "$#" -gt 0 ]; then
  FILES=()
  for f in "$@"; do
    case "$f" in
      *.cpp | *.h) [ -f "$f" ] && FILES+=("$f") ;;
    esac
  done
else
  mapfile -t FILES < <(find src tests bench examples \
    \( -name '*.cpp' -o -name '*.h' \) 2>/dev/null | sort)
fi

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "format: no C++ files to check"
  exit 0
fi

if [ "$CHECK" -eq 1 ]; then
  BAD=0
  for f in "${FILES[@]}"; do
    if ! "$FMT" --dry-run --Werror "$f" >/dev/null 2>&1; then
      echo "needs formatting: $f"
      BAD=1
    fi
  done
  if [ "$BAD" -ne 0 ]; then
    echo "FAIL: run tools/lint/format.sh to fix"
    exit 1
  fi
  echo "OK: ${#FILES[@]} files clean"
else
  "$FMT" -i "${FILES[@]}"
  echo "formatted ${#FILES[@]} files"
fi
