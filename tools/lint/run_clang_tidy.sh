#!/usr/bin/env bash
# clang-tidy lint wall with a ratchet-only baseline.
#
# Runs clang-tidy (config: .clang-tidy) over every translation unit in
# src/, normalizes the findings to stable check-per-location lines, and
# diffs them against tools/lint/clang_tidy_baseline.txt:
#   - a finding not in the baseline  -> FAIL (new debt is rejected)
#   - a baseline line with no finding -> note (shrink the baseline)
# The raw report is left at $BUILD_DIR/clang_tidy_report.txt for CI to
# upload as an artifact.
#
# Usage: tools/lint/run_clang_tidy.sh [build-dir]
#   build-dir defaults to build-lint; it is configured here if it does
#   not already contain compile_commands.json.
set -euo pipefail

cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build-lint}"
BASELINE=tools/lint/clang_tidy_baseline.txt

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "error: $TIDY not found (set CLANG_TIDY or install clang-tidy)" >&2
  exit 2
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "clang-tidy: ${#SOURCES[@]} translation units, config .clang-tidy"

REPORT="$BUILD_DIR/clang_tidy_report.txt"
# clang-tidy exits nonzero when it emits warnings; the gate is the
# baseline diff below, not the raw exit code.
"$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" >"$REPORT" 2>/dev/null || true

# Normalize: keep "path:line:col: warning: ... [check]" lines, drop the
# column (formatting-stable) and sort. Paths are repo-relative.
normalize() {
  sed -E -n 's|^.*/?(src/[^:]+):([0-9]+):[0-9]+: warning: (.*)$|\1:\2: \3|p' \
    "$1" | LC_ALL=C sort -u
}

CURRENT="$(normalize "$REPORT")"
KNOWN="$(grep -v -e '^#' -e '^$' "$BASELINE" | LC_ALL=C sort -u || true)"

NEW="$(comm -23 <(printf '%s\n' "$CURRENT" | sed '/^$/d') \
                <(printf '%s\n' "$KNOWN" | sed '/^$/d'))"
FIXED="$(comm -13 <(printf '%s\n' "$CURRENT" | sed '/^$/d') \
                  <(printf '%s\n' "$KNOWN" | sed '/^$/d'))"

if [ -n "$FIXED" ]; then
  echo "note: baseline entries no longer reported (remove from $BASELINE):"
  printf '%s\n' "$FIXED" | sed 's/^/  /'
fi

if [ -n "$NEW" ]; then
  echo "FAIL: new clang-tidy findings (fix them or, for accepted debt,"
  echo "add to $BASELINE with justification):"
  printf '%s\n' "$NEW" | sed 's/^/  /'
  exit 1
fi

echo "OK: no clang-tidy findings beyond the baseline"
