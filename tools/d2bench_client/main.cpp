// d2bench-client — multi-threaded trace replay against a real mdsd
// cluster, over SocketTransport.
//
// Regenerates the same deterministic workload as the daemons (identical
// --profile/--scale/--seed/--mds-count flags), routes each trace record
// with the same D2-Tree partition the daemons computed, and replays the
// operations as real RPCs:
//
//   * GL-resident target  → any MDS (hashed entry; every replica answers)
//   * local-layer target  → the owning MDS; with probability --stale the
//     client deliberately enters at the wrong server to exercise the
//     honest 1-jump path (kWrongServer + `peer` hint → one more real RPC)
//   * a failed leg        → one bounded failover retry at the owner
//
// Emits the same per-op-class p50/p99 JSON section as the sim harness
// (examples/simnet_latency.cpp) — plus honest ops/sec — so
// scripts/bench_snapshot.sh can fold real-socket numbers into
// BENCH_trajectory.json next to the simulated ones.
//
//   d2bench-client --peers mds0=...,mds1=...,mds2=...,monitor=...
//       --mds-count 3 --profile lmbe --scale 0.05 --seed 1
//       --threads 4 --ops 2000 --out BENCH_socket.json
//
// Exit code 0 iff every replayed operation eventually succeeded.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "d2tree/mds/cluster.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/net/endpoint.h"
#include "d2tree/net/socket_transport.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

struct Flags {
  std::string peers;
  std::size_t mds_count = 3;
  std::string profile = "lmbe";
  double scale = 0.05;
  std::uint64_t seed = 1;
  std::size_t threads = 4;
  std::size_t ops = 2000;  // per thread
  double stale = 0.02;     // deliberate wrong-entry probability (1-jump)
  std::string out = "BENCH_socket.json";
};

TraceProfile ProfileByName(const std::string& name, double scale) {
  if (name == "dtr") return DtrProfile(scale);
  if (name == "ra") return RaProfile(scale);
  return LmbeProfile(scale);
}

bool ParseFlags(int argc, char** argv, Flags* f) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--peers" && (v = value()))
      f->peers = v;
    else if (arg == "--mds-count" && (v = value()))
      f->mds_count = static_cast<std::size_t>(std::atoll(v));
    else if (arg == "--profile" && (v = value()))
      f->profile = v;
    else if (arg == "--scale" && (v = value()))
      f->scale = std::atof(v);
    else if (arg == "--seed" && (v = value()))
      f->seed = static_cast<std::uint64_t>(std::atoll(v));
    else if (arg == "--threads" && (v = value()))
      f->threads = static_cast<std::size_t>(std::atoll(v));
    else if (arg == "--ops" && (v = value()))
      f->ops = static_cast<std::size_t>(std::atoll(v));
    else if (arg == "--stale" && (v = value()))
      f->stale = std::atof(v);
    else if (arg == "--out" && (v = value()))
      f->out = v;
    else
      return false;
  }
  return !f->peers.empty() && f->mds_count > 0 && f->threads > 0;
}

struct ThreadReport {
  std::array<LatencyHistogram, kOpClassCount> by_class;
  std::array<std::size_t, kOpClassCount> ops{};
  std::size_t failed = 0;
  std::size_t redirects = 0;
  std::size_t failovers = 0;
};

/// xorshift64* — cheap deterministic per-thread stream.
std::uint64_t NextRand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(stderr,
                 "usage: d2bench-client --peers name=h:p,... [--mds-count M] "
                 "[--profile dtr|lmbe|ra] [--scale S] [--seed N] "
                 "[--threads T] [--ops N] [--stale P] [--out f.json]\n");
    return 2;
  }

  TraceProfile profile = ProfileByName(flags.profile, flags.scale);
  profile.seed = flags.seed;
  const Workload workload = GenerateWorkload(profile);
  // The same partition the daemons computed — used only for routing.
  FunctionalCluster model(workload.tree, flags.mds_count);
  const Assignment assignment = model.assignment();

  auto transport = std::make_shared<SocketTransport>();
  const auto specs = ParsePeerList(flags.peers);
  if (!specs.has_value()) {
    std::fprintf(stderr, "d2bench-client: malformed --peers list\n");
    return 2;
  }
  for (const PeerSpec& spec : *specs) {
    if (!transport->AddPeer(spec.addr, spec.host_port)) {
      std::fprintf(stderr, "d2bench-client: malformed peer endpoint '%s'\n",
                   spec.host_port.c_str());
      return 2;
    }
  }

  const auto& records = workload.trace.records();
  if (records.empty()) {
    std::fprintf(stderr, "d2bench-client: empty trace\n");
    return 2;
  }

  std::vector<ThreadReport> reports(flags.threads);
  std::vector<std::thread> threads;
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < flags.threads; ++t) {
    threads.emplace_back([&, t] {
      ThreadReport& rep = reports[t];
      std::uint64_t rng = flags.seed * 0x9E3779B97F4A7C15ULL + t + 1;
      for (std::size_t i = 0; i < flags.ops; ++i) {
        const TraceRecord& rec =
            records[(t * flags.ops + i) % records.size()];
        const bool is_update = rec.op == OpType::kUpdate;
        Message req{.type = is_update ? MsgType::kUpdateRequest
                                      : MsgType::kStatRequest,
                    .target = rec.node,
                    .mtime = is_update ? NextRand(rng) : 0};

        const MdsId owner = assignment.OwnerOf(rec.node);
        MdsId entry;
        if (owner == kReplicated) {
          entry = static_cast<MdsId>(NextRand(rng) % flags.mds_count);
        } else if (flags.stale > 0.0 &&
                   static_cast<double>(NextRand(rng) % 10000) <
                       flags.stale * 10000.0 &&
                   flags.mds_count > 1) {
          // Stale-cache entry: deliberately wrong server; the daemon's
          // kWrongServer + peer hint costs a real second RPC.
          entry = static_cast<MdsId>(NextRand(rng) % flags.mds_count);
        } else {
          entry = owner;
        }

        double wall_us = 0.0;
        int jumps = 0;
        bool failed_over = false;
        Message resp;
        Delivery d = transport->Call(ClientAddress(), MdsAddress(entry), req,
                                     &resp);
        wall_us += d.latency_us;
        if (!d.delivered) {
          // Bounded failover: invalidate the cached route, retry once at
          // the authoritative owner (any server for GL targets).
          ++rep.failovers;
          failed_over = true;
          const MdsId retry =
              owner == kReplicated
                  ? static_cast<MdsId>(NextRand(rng) % flags.mds_count)
                  : owner;
          d = transport->Call(ClientAddress(), MdsAddress(retry), req, &resp);
          wall_us += d.latency_us;
        }
        if (d.delivered && resp.status == MdsStatus::kWrongServer &&
            resp.peer >= 0) {
          ++rep.redirects;
          jumps = 1;
          d = transport->Call(ClientAddress(), MdsAddress(resp.peer), req,
                              &resp);
          wall_us += d.latency_us;
        }

        const bool ok = d.delivered && resp.status == MdsStatus::kOk;
        if (!ok) ++rep.failed;
        const OpClass op_class =
            failed_over || !ok          ? OpClass::kFailover
            : owner == kReplicated      ? OpClass::kGlHit
            : jumps == 0                ? OpClass::kLl0Jump
                                        : OpClass::kLl1Jump;
        rep.by_class[static_cast<std::size_t>(op_class)].Record(wall_us);
        ++rep.ops[static_cast<std::size_t>(op_class)];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ThreadReport total;
  for (const ThreadReport& rep : reports) {
    for (std::size_t c = 0; c < kOpClassCount; ++c) {
      total.by_class[c].Merge(rep.by_class[c]);
      total.ops[c] += rep.ops[c];
    }
    total.failed += rep.failed;
    total.redirects += rep.redirects;
    total.failovers += rep.failovers;
  }
  const std::size_t total_ops = flags.threads * flags.ops;
  const double ops_per_sec =
      wall_s > 0.0 ? static_cast<double>(total_ops) / wall_s : 0.0;

  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"bench\": \"socket_replay\",\n"
                "  \"mds\": %zu, \"threads\": %zu, \"ops\": %zu,\n"
                "  \"ops_per_sec\": %.1f, \"wall_seconds\": %.3f,\n"
                "  \"failed\": %zu, \"redirects\": %zu, \"failovers\": %zu,\n"
                "  \"messages_sent\": %llu, \"messages_dropped\": %llu,\n"
                "  \"reconnects\": %llu, \"dedup_hits\": %llu,\n",
                flags.mds_count, flags.threads, total_ops, ops_per_sec, wall_s,
                total.failed, total.redirects, total.failovers,
                static_cast<unsigned long long>(transport->messages_sent()),
                static_cast<unsigned long long>(transport->messages_dropped()),
                static_cast<unsigned long long>(transport->reconnects()),
                static_cast<unsigned long long>(transport->dedup_hits()));
  json += buf;
  json += "  \"latency_by_class\": [\n";
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    const LatencyHistogram& h = total.by_class[c];
    std::snprintf(buf, sizeof(buf),
                  "    {\"class\": \"%s\", \"ops\": %zu, \"mean_us\": %.2f, "
                  "\"p50_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f}%s\n",
                  OpClassName(static_cast<OpClass>(c)), total.ops[c], h.mean(),
                  h.Quantile(0.5), h.Quantile(0.99), h.max(),
                  c + 1 == kOpClassCount ? "" : ",");
    json += buf;
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(flags.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "d2bench-client: cannot write %s\n",
                 flags.out.c_str());
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("%s", json.c_str());

  transport->Shutdown();
  return total.failed == 0 ? 0 : 1;
}
