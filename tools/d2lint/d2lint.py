#!/usr/bin/env python3
"""d2lint — protocol-invariant checker for the d2tree message, WAL, and
lock layers.

Two backends produce the same facts IR:
  text   token-stream extraction (no dependencies; the reference backend,
         always on)
  clang  `clang++ -ast-dump=json` over compile_commands.json (type-aware;
         cross-validates the textual facts — disagreements are
         `backend-drift` findings)

Rules: exhaustive-switch, registry, codec-bound, discarded-result,
lock-decl, backend-drift. See tools/d2lint/README.md and DESIGN.md §12.

Findings ratchet against tools/d2lint/baseline.txt exactly like the
clang-tidy wall: any finding not in the baseline fails the run; fixed
baseline entries are reported so the baseline only shrinks.

Usage:
  d2lint.py                          lint the repo (text backend)
  d2lint.py --backend clang          also run the clang AST backend
  d2lint.py --backend auto           clang if available, else text only
  d2lint.py --self-test              run the fixture corpus
  d2lint.py --update-baseline        rewrite the baseline from findings
  d2lint.py --list                   dump the extracted fact summary
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from d2lint_lib import clangextract, rules, textextract  # noqa: E402
from d2lint_lib.config import config_from_json, default_config  # noqa: E402
from d2lint_lib.facts import FactDb  # noqa: E402

_EXTS = (".h", ".hpp", ".cpp", ".cc")


def _collect_files(repo: str, roots: list) -> list:
    files: list = []
    for root in roots:
        top = os.path.join(repo, root)
        if os.path.isfile(top) and top.endswith(_EXTS):
            files.append(root)
            continue
        for dirpath, dirnames, names in os.walk(top):
            dirnames[:] = [d for d in sorted(dirnames)
                           if not d.startswith(".") and d != "build"]
            for name in sorted(names):
                if name.endswith(_EXTS):
                    rel = os.path.relpath(os.path.join(dirpath, name), repo)
                    files.append(rel.replace(os.sep, "/"))
    return sorted(set(files))


def scan_tree(repo: str, cfg, roots: list | None = None) -> FactDb:
    db = FactDb()
    for rel in _collect_files(repo, roots or cfg.roots):
        try:
            with open(os.path.join(repo, rel), encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"d2lint: cannot read {rel}: {e}", file=sys.stderr)
            continue
        db.merge(textextract.scan_file(rel, text, cfg))
    return db


def load_baseline(path: str) -> list:
    if not os.path.isfile(path):
        return []
    with open(path, encoding="utf-8") as f:
        return [ln.rstrip("\n") for ln in f
                if ln.strip() and not ln.lstrip().startswith("#")]


def ratchet(findings: list, baseline_path: str) -> int:
    """run_clang_tidy.sh semantics: new findings fail, fixed baseline
    entries are surfaced so the wall only moves one way."""
    baseline = set(load_baseline(baseline_path))
    rendered = [f.render() for f in findings]
    new = [r for r in rendered if r not in baseline]
    fixed = sorted(baseline - set(rendered))
    for r in rendered:
        marker = "NEW" if r in new else "baselined"
        print(f"  [{marker}] {r}")
    if fixed:
        print(f"d2lint: {len(fixed)} baselined finding(s) no longer fire "
              f"— shrink {baseline_path}:")
        for r in fixed:
            print(f"  [fixed] {r}")
    if new:
        print(f"d2lint: FAILED — {len(new)} new finding(s) not in "
              f"{baseline_path}", file=sys.stderr)
        return 1
    print(f"d2lint: OK — {len(rendered)} finding(s), all baselined "
          f"({len(baseline)} in baseline)")
    return 0


def write_baseline(findings: list, path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write("# d2lint baseline — one normalized finding per line.\n"
                "# Ratchet: new findings fail CI; fix findings and delete\n"
                "# their lines. Never add lines for new code.\n")
        for r in sorted(f2.render() for f2 in findings):
            f.write(r + "\n")


def list_facts(db: FactDb) -> None:
    print(f"files scanned: {len(db.files)}")
    for name, e in sorted(db.enums.items()):
        print(f"enum {name} ({e.file}:{e.line}): {len(e.names)} "
              f"enumerators, last={e.last}")
    proto = [s for s in db.switches if s.enum]
    print(f"switches with resolved enum: {len(proto)}")
    for s in sorted(proto, key=lambda s: (s.file, s.line)):
        d = (f" default@{s.default_line}"
             f"{' (allowed: ' + s.default_reason + ')' if s.default_reason else ''}"
             if s.has_default else "")
        print(f"  {s.file}:{s.line} switch({s.enum}) "
              f"{len(s.cases)} cases{d} [{s.source}]")
    print(f"must-use functions: {len(db.must_use)}")
    for name, fn in sorted(db.must_use.items()):
        nd = " [[nodiscard]]" if fn.nodiscard else ""
        print(f"  {fn.ret}{nd} {name}() ({fn.file}:{fn.line})")
    print(f"discarded calls recorded: {len(db.discarded_calls)}")
    for c in sorted(db.discarded_calls, key=lambda c: (c.file, c.line)):
        how = "(void)" if c.void_cast else \
            (f"allow-discard({c.reason})" if c.reason else "bare")
        print(f"  {c.file}:{c.line} {c.callee}() {how}")
    print(f"mutex members: {len(db.mutexes)}")
    for m in sorted(db.mutexes, key=lambda m: (m.file, m.line)):
        print(f"  {m.file}:{m.line} {m.qualified} ({m.type}) "
              f"rank={m.rank}")
    print(f"enum upper bounds: {len(db.bounds)}")
    for b in sorted(db.bounds, key=lambda b: (b.file, b.line)):
        print(f"  {b.file}:{b.line} {b.enum}::{b.enumerator} "
              f"({b.context})")


def run_self_test(fixtures_dir: str) -> int:
    """Each fixture dir: C++ sources + config.json + expected.txt (sorted
    rendered findings; empty file = must be clean)."""
    failures = 0
    cases = sorted(d for d in os.listdir(fixtures_dir)
                   if os.path.isdir(os.path.join(fixtures_dir, d)))
    if not cases:
        print("d2lint --self-test: no fixtures found", file=sys.stderr)
        return 1
    for case in cases:
        cdir = os.path.join(fixtures_dir, case)
        cfg_path = os.path.join(cdir, "config.json")
        if os.path.isfile(cfg_path):
            with open(cfg_path, encoding="utf-8") as f:
                cfg = config_from_json(json.load(f))
        else:
            cfg = default_config()
            cfg.roots = ["."]
            cfg.lock_roots = ["."]
        db = scan_tree(cdir, cfg)
        findings = rules.run_all(db, cfg, cdir)
        got = sorted(f.render() for f in findings)
        want_path = os.path.join(cdir, "expected.txt")
        want = sorted(load_baseline(want_path))
        if got == want:
            print(f"  PASS {case} ({len(got)} finding(s))")
            continue
        failures += 1
        print(f"  FAIL {case}", file=sys.stderr)
        for line in want:
            if line not in got:
                print(f"    missing: {line}", file=sys.stderr)
        for line in got:
            if line not in want:
                print(f"    unexpected: {line}", file=sys.stderr)
    total = len(cases)
    if failures:
        print(f"d2lint --self-test: FAILED ({failures}/{total})",
              file=sys.stderr)
        return 1
    print(f"d2lint --self-test: OK ({total} fixtures)")
    return 0


def main() -> int:
    here = os.path.dirname(os.path.abspath(__file__))
    default_repo = os.path.abspath(os.path.join(here, "..", ".."))
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo", default=default_repo,
                    help="repository root (default: two levels up)")
    ap.add_argument("--backend", choices=["text", "clang", "auto"],
                    default="text",
                    help="fact extraction backend(s); clang cross-"
                         "validates the textual facts (default: text)")
    ap.add_argument("--compdb", default="",
                    help="compile_commands.json for the clang backend "
                         "(default: <repo>/build/compile_commands.json)")
    ap.add_argument("--baseline", default="",
                    help="baseline file (default: tools/d2lint/"
                         "baseline.txt)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from this run's findings")
    ap.add_argument("--root", action="append", default=[],
                    help="override scanned roots (repeatable)")
    ap.add_argument("--tu-filter", default="",
                    help="substring filter on clang translation units")
    ap.add_argument("--list", action="store_true",
                    help="dump extracted facts instead of checking")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus under fixtures/")
    args = ap.parse_args()

    if args.self_test:
        return run_self_test(os.path.join(here, "fixtures"))

    repo = os.path.abspath(args.repo)
    cfg = default_config()
    roots = args.root or cfg.roots
    text_db = scan_tree(repo, cfg, roots)

    clang_db = None
    if args.backend in ("clang", "auto"):
        compdb = args.compdb or os.path.join(repo, "build",
                                             "compile_commands.json")
        clang = clangextract.find_clang()
        if clang is None or not os.path.isfile(compdb):
            why = ("clang not on PATH" if clang is None
                   else f"no compile db at {compdb}")
            if args.backend == "clang":
                print(f"d2lint: clang backend unavailable: {why}",
                      file=sys.stderr)
                return 2
            print(f"d2lint: note: clang backend skipped ({why}); "
                  f"textual facts are unchecked against the AST")
        else:
            clang_db, errors = clangextract.extract_from_compdb(
                repo, compdb, cfg, args.tu_filter)
            for e in errors:
                print(f"d2lint: warning: {e}", file=sys.stderr)

    if args.list:
        list_facts(text_db)
        if clang_db is not None:
            print("--- clang backend ---")
            list_facts(clang_db)
        return 0

    findings = rules.run_all(text_db, cfg, repo, clang_db)
    baseline = args.baseline or os.path.join(here, "baseline.txt")
    if args.update_baseline:
        write_baseline(findings, baseline)
        print(f"d2lint: wrote {len(findings)} finding(s) to {baseline}")
        return 0
    return ratchet(findings, baseline)


if __name__ == "__main__":
    sys.exit(main())
