#include "api.h"

void Drive(Builder* b, Stats* s) {
  b->Add(1);     // ambiguous name: no finding from the text backend
  s->Add(2.0);   // void call: never a finding
  Commit(3);     // unambiguous must-use: finding
}
