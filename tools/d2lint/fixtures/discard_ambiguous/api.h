// A name with both a must-use and a void declaration is ambiguous to the
// name-based text backend: the discard rule must skip it entirely.
#pragma once

struct Res {
  int code;
};

struct Builder {
  Res Add(int v);  // must-use by return type
};

struct Stats {
  void Add(double v);  // void collision — makes `Add` ambiguous
};

// Unambiguous must-use name: still enforced.
Res Commit(int v);
