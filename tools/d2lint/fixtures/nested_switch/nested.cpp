// Fixture: nested switches keep their cases separate. The outer switch
// over Proto is exhaustive; the inner switch over Inner is missing
// kYellow, and the inner cases must not leak into the outer fact.
enum class Proto {
  kOn,
  kOff,
};

enum class Inner {
  kRed,
  kYellow,
  kGreen,
};

int Dispatch(Proto p, Inner i) {
  switch (p) {
    case Proto::kOn:
      switch (i) {  // FINDING: missing Inner::kYellow.
        case Inner::kRed:
          return 1;
        case Inner::kGreen:
          return 2;
      }
      return 3;
    case Proto::kOff:
      return 0;
  }
  return -1;
}
