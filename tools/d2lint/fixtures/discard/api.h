// Fixture: discarded-result rule. Res is a must-use return type (see
// config.json); Ship() carries [[nodiscard]] directly.
#pragma once

struct Res {
  bool ok;
};

Res Fetch(int key);
[[nodiscard]] bool Ship(int payload);
void FireAndForget(int payload);
