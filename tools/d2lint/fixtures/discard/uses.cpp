#include "api.h"

struct Client {
  Res Fetch(int key);
};

int Consume(Client* c) {
  Res r = Fetch(1);              // OK: consumed.
  if (!Fetch(2).ok) return -1;   // OK: consumed in a condition.
  Fetch(3);                      // FINDING: silently dropped.
  c->Fetch(4);                   // FINDING: dropped through a chain.
  (void)Fetch(5);                // OK: explicit (void) discard.
  (void)c->Fetch(6);             // OK: explicit (void) through a chain.
  // d2lint: allow-discard(warm-up call, result intentionally unused)
  Fetch(7);                      // OK: annotated.
  FireAndForget(8);              // OK: void return, nothing to drop.
  if (!Ship(9)) return -2;       // OK: consumed.
  Ship(10);                      // FINDING: [[nodiscard]] bool dropped.
  return r.ok ? 0 : 1;
}

Res Passthrough() {
  return Fetch(11);              // OK: returned, not dropped.
}
