// Fixture: codec-bound rule. Upper-bound casts must name the final
// enumerator.
enum class Proto {
  kFirst,
  kMiddle,
  kLast,
};

bool DecodeGuardOk(unsigned char raw) {
  // OK: bound names the final enumerator.
  return raw <= static_cast<unsigned char>(Proto::kLast);
}

bool DecodeGuardStale(unsigned char raw) {
  // FINDING: kMiddle was the last enumerator once; the guard went stale.
  return raw > static_cast<unsigned char>(Proto::kMiddle);
}

int SweepLoopOk() {
  int n = 0;
  for (int t = 0; t < static_cast<int>(Proto::kLast) + 1; ++t) n += t;
  return n;
}

int SweepLoopStale() {
  int n = 0;
  // FINDING: exclusive count built from a non-final enumerator.
  for (int t = 0; t < static_cast<int>(Proto::kFirst) + 1; ++t) n += t;
  return n;
}

int NotABound() {
  // OK: a cast that is not compared or counted is not a bound.
  return static_cast<int>(Proto::kMiddle);
}
