#include "proto.h"

// OK: names every enumerator, no default.
int Exhaustive(Proto p) {
  switch (p) {
    case Proto::kAlpha:
      return 1;
    case Proto::kBeta:
      return 2;
    case Proto::kGamma:
      return 3;
  }
  return 0;
}

// FINDING: kGamma is missing and there is no default.
int MissingCase(Proto p) {
  switch (p) {
    case Proto::kAlpha:
      return 1;
    case Proto::kBeta:
      return 2;
  }
  return 0;
}

// FINDING: bare default silently absorbs future enumerators.
int BareDefault(Proto p) {
  switch (p) {
    case Proto::kAlpha:
      return 1;
    default:
      return 0;
  }
}

// OK: the default is annotated with a reason.
int AllowedDefault(Proto p) {
  switch (p) {
    case Proto::kAlpha:
      return 1;
    // d2lint: allow-default(non-alpha values share one handler by design)
    default:
      return 0;
  }
}

// OK: Local is not a protocol enum, so nothing is enforced.
int NonProtocol(Local l) {
  switch (l) {
    case Local::kOne:
      return 1;
    default:
      return 0;
  }
}
