// Fixture: exhaustive-switch rule. Proto is a protocol enum (see
// config.json); Local is not.
#pragma once

enum class Proto : unsigned char {
  kAlpha = 0,
  kBeta = 1,
  kGamma = 2,
};

enum class Local {
  kOne,
  kTwo,
};
