// Fixture: registry rule. Every Proto enumerator must appear in
// codec.cpp (see config.json); kOrphan appears nowhere.
#pragma once

enum class Proto {
  kUsedEverywhere,
  kUsedInCodec,
  kOrphan,
};
