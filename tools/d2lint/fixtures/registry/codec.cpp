#include "proto.h"

int Encode(Proto p) {
  if (p == Proto::kUsedEverywhere) return 1;
  if (p == Proto::kUsedInCodec) return 2;
  return 0;
}
