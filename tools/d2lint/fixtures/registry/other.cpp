#include "proto.h"

// kOrphan appears here, but other.cpp is not part of the codec registry,
// so this does not satisfy the cross-check.
int Elsewhere(Proto p) { return p == Proto::kOrphan ? 1 : 0; }
