// Fixture: lock-decl rule. Agreement on normal declarations; the
// line-split declaration below is parsed by d2lint's token stream but is
// invisible to scripts/check_lock_order.py's line-oriented regex — that
// disagreement is the finding.
#pragma once

#define D2T_LOCK_RANK(n)

class Mutex {};
class SharedMutex {};

class Agreed {
  Mutex mu_ D2T_LOCK_RANK(10);
  SharedMutex wide_mu_ D2T_LOCK_RANK(20);
};

class Split {
  Mutex
      split_mu_ D2T_LOCK_RANK(30);
};
