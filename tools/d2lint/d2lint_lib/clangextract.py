"""Clang AST fact extraction: `clang++ -ast-dump=json` → FactDb.

Where textextract.py infers structure from tokens, this backend asks the
real compiler frontend. It extracts the facts that genuinely need type
information — which enum a `switch` condition has (even when no case
label is enum-qualified), enum definitions, and Mutex/SharedMutex data
members — and the driver diffs them against the textual facts: any
construct only one backend sees becomes a `backend-drift` finding, which
is how the regex-based scripts/check_lock_order.py parser gets
machine-checked against the AST (ISSUE rule 4).

Costs: one -fsyntax-only parse per translation unit plus a JSON dump that
includes every header; the walker filters nodes to repo files. Clang's
JSON omits `file`/`line` on a location when unchanged from the previously
printed node, so the walk tracks the last seen values in traversal order.
No libTooling, no build-time dependency: any clang >= 12 on PATH works.
"""

from __future__ import annotations

import json
import os
import shlex
import subprocess

from .config import Config
from .facts import EnumDef, FactDb, MutexDecl, SwitchFact
from .lexer import lex

_SKIP_ARGS = {"-c", "-g", "-MMD", "-MD", "-MP"}


def find_clang() -> str | None:
    for cand in (os.environ.get("D2LINT_CLANG"), "clang++", "clang"):
        if not cand:
            continue
        try:
            subprocess.run([cand, "--version"], capture_output=True,
                           check=True)
            return cand
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def load_compdb(path: str) -> list:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def _tu_args(entry: dict) -> list:
    """compile_commands.json entry → flags for -fsyntax-only (source file
    excluded; output/dep flags stripped)."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    out: list = []
    skip_next = False
    for a in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ", "--output"):
            skip_next = True
            continue
        if a in _SKIP_ARGS or a == entry.get("file"):
            continue
        if a.endswith(".cpp") or a.endswith(".cc"):
            continue
        out.append(a)
    return out


def dump_ast(clang: str, entry: dict, repo: str) -> dict | None:
    cmd = ([clang] + _tu_args(entry) +
           ["-fsyntax-only", "-Wno-everything", "-Xclang",
            "-ast-dump=json", entry["file"]])
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          cwd=entry.get("directory", repo))
    if proc.returncode != 0 or not proc.stdout:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


class _AstWalker:
    def __init__(self, repo: str, cfg: Config):
        self.repo = os.path.abspath(repo)
        self.cfg = cfg
        self.db = FactDb()
        self.cur_file = ""
        self.cur_line = 0
        self.record_stack: list = []
        self._annotations: dict = {}  # rel -> LexResult annotations

    # ---- location bookkeeping -----------------------------------------

    def _track(self, node: dict) -> None:
        loc = node.get("loc") or {}
        for src in (loc.get("spellingLoc"), loc):
            if not src:
                continue
            if "file" in src:
                self.cur_file = src["file"]
            if "line" in src:
                self.cur_line = src["line"]
            break
        rng = node.get("range") or {}
        begin = rng.get("begin") or {}
        for src in (begin.get("spellingLoc"), begin):
            if not src:
                continue
            if "file" in src:
                self.cur_file = src["file"]
            if "line" in src:
                self.cur_line = src["line"]
            break

    def _rel(self) -> str | None:
        path = os.path.abspath(os.path.join(self.repo, self.cur_file)) \
            if not os.path.isabs(self.cur_file) else \
            os.path.abspath(self.cur_file)
        if not path.startswith(self.repo + os.sep):
            return None
        return os.path.relpath(path, self.repo).replace(os.sep, "/")

    def _annotation_reason(self, rel: str, line: int) -> str:
        if rel not in self._annotations:
            try:
                with open(os.path.join(self.repo, rel),
                          encoding="utf-8") as f:
                    self._annotations[rel] = lex(f.read())
            except OSError:
                self._annotations[rel] = lex("")
        notes = self._annotations[rel].annotations_near(
            line, "allow-default")
        return (notes[-1].reason or "(unstated)") if notes else ""

    # ---- node handlers -------------------------------------------------

    def walk(self, node: dict) -> None:
        if not isinstance(node, dict):
            return
        self._track(node)
        kind = node.get("kind", "")
        if kind == "EnumDecl":
            self._on_enum(node)
        elif kind == "SwitchStmt":
            self._on_switch(node)
            return  # _on_switch recurses itself
        elif kind == "CXXRecordDecl":
            name = node.get("name", "")
            completeness = node.get("completeDefinition", False)
            if name and completeness:
                self.record_stack.append(name)
                for child in node.get("inner", []) or []:
                    self.walk(child)
                self.record_stack.pop()
                return
        elif kind == "FieldDecl":
            self._on_field(node)
        for child in node.get("inner", []) or []:
            self.walk(child)

    def _on_enum(self, node: dict) -> None:
        rel = self._rel()
        name = node.get("name", "")
        if not rel or not name:
            return
        enum = EnumDef(name=name, file=rel, line=self.cur_line)
        for child in node.get("inner", []) or []:
            if child.get("kind") == "EnumConstantDecl":
                self._track(child)
                enum.enumerators.append(
                    (child.get("name", ""), self.cur_line))
        if enum.enumerators:
            self.db.enums.setdefault(name, enum)

    @staticmethod
    def _qual_enum_name(qual: str) -> str:
        # "d2tree::MsgType" / "const d2tree::MsgType" → "MsgType"
        base = qual.split("<")[0].split("::")[-1].strip()
        return base.replace("const", "").strip(" &*")

    def _cond_enum(self, node: dict) -> str:
        """Enum name of the switch condition's type, if any."""
        for sub in self._subtree(node):
            qual = (sub.get("type") or {}).get("qualType", "")
            name = self._qual_enum_name(qual)
            if self.cfg.is_protocol(name):
                return name
        return ""

    def _subtree(self, node: dict):
        yield node
        for child in node.get("inner", []) or []:
            if isinstance(child, dict):
                yield from self._subtree(child)

    def _on_switch(self, node: dict) -> None:
        rel = self._rel()
        line = self.cur_line
        inner = [c for c in node.get("inner", []) or [] if c]
        if not inner:
            return
        body = inner[-1]
        cond = inner[:-1]
        fact = SwitchFact(file=rel or "", line=line, enum="",
                          source="clang")
        for c in cond:
            enum = self._cond_enum(c)
            if enum:
                fact.enum = enum
                break
        self._collect_cases(body, fact)
        if rel and fact.enum:
            self.db.switches.append(fact)
        # Keep walking the body for nested switches and field decls in
        # local classes (cases of nested switches were skipped).
        for c in inner:
            for sub in self._nested_switches(c):
                self._on_switch(sub)

    def _collect_cases(self, node: dict, fact: SwitchFact) -> None:
        if not isinstance(node, dict):
            return
        self._track(node)
        kind = node.get("kind", "")
        if kind == "SwitchStmt":
            return  # nested switch owns its cases
        if kind == "CaseStmt":
            for sub in self._subtree(node):
                if sub.get("kind") == "DeclRefExpr":
                    ref = sub.get("referencedDecl") or {}
                    if ref.get("kind") == "EnumConstantDecl":
                        fact.cases.add(ref.get("name", ""))
                        break
                if sub is not node and sub.get("kind") in (
                        "CaseStmt", "DefaultStmt", "CompoundStmt"):
                    break
        elif kind == "DefaultStmt":
            fact.has_default = True
            fact.default_line = self.cur_line
            rel = self._rel()
            if rel:
                fact.default_reason = self._annotation_reason(
                    rel, self.cur_line)
        for child in node.get("inner", []) or []:
            self._collect_cases(child, fact)

    def _nested_switches(self, node: dict):
        if not isinstance(node, dict):
            return
        for child in node.get("inner", []) or []:
            if not isinstance(child, dict):
                continue
            if child.get("kind") == "SwitchStmt":
                self._track(child)
                yield child
            else:
                yield from self._nested_switches(child)

    def _on_field(self, node: dict) -> None:
        rel = self._rel()
        if not rel:
            return
        qual = (node.get("type") or {}).get("qualType", "")
        base = self._qual_enum_name(qual)
        if base not in self.cfg.mutex_types or "*" in qual or "&" in qual:
            return
        member = node.get("name", "")
        cls = self.record_stack[-1] if self.record_stack else ""
        if not member:
            return
        # Rank comes from the (compiler-invisible) D2T_LOCK_RANK macro;
        # read it back off the declaration's source line.
        rank = self._rank_from_source(rel, self.cur_line, member)
        self.db.mutexes.append(MutexDecl(
            cls=cls, member=member, type=base, rank=rank, file=rel,
            line=self.cur_line))

    def _rank_from_source(self, rel: str, line: int,
                          member: str) -> int | None:
        try:
            with open(os.path.join(self.repo, rel), encoding="utf-8") as f:
                lines = f.read().split("\n")
        except OSError:
            return None
        import re
        # The declaration may wrap; scan the member's line and the next 3.
        window = " ".join(lines[line - 1:line + 3])
        m = re.search(re.escape(member) +
                      r"[^;]*?D2T_LOCK_RANK\(\s*(\d+)\s*\)", window)
        return int(m.group(1)) if m else None


def extract_from_compdb(repo: str, compdb_path: str, cfg: Config,
                        tu_filter: str = "") -> tuple:
    """Returns (FactDb, errors: list[str]). Facts are deduplicated across
    translation units (headers are parsed by many TUs)."""
    clang = find_clang()
    errors: list = []
    if clang is None:
        return None, ["clang not found on PATH (set D2LINT_CLANG)"]
    merged = FactDb()
    seen_switch: set = set()
    seen_mutex: set = set()
    for entry in load_compdb(compdb_path):
        src = entry.get("file", "")
        if tu_filter and tu_filter not in src:
            continue
        ast = dump_ast(clang, entry, repo)
        if ast is None:
            errors.append(f"clang failed to parse {src}")
            continue
        walker = _AstWalker(repo, cfg)
        walker.walk(ast)
        db = walker.db
        db.switches = [s for s in db.switches
                       if (key := (s.file, s.line)) not in seen_switch
                       and not seen_switch.add(key)]
        db.mutexes = [m for m in db.mutexes
                      if (key := (m.file, m.line, m.member))
                      not in seen_mutex and not seen_mutex.add(key)]
        merged.merge(db)
    return merged, errors
