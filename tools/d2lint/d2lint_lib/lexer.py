"""Comment/string-aware C++ tokenizer for d2lint's textual extraction.

The lexer is deliberately small: it produces exactly the token stream the
check modules need — identifiers, numbers, punctuators — with comments and
string/char literals stripped, while *capturing* the `// d2lint: ...`
annotation comments (the one place a comment carries semantics, see
DESIGN.md §12 "Annotation grammar"). Preprocessor lines are skipped except
that their line count is preserved so every token's line number matches
the editor's.

This is not a general C++ lexer; it is total (never raises on weird
input) and loses nothing the rules care about. The clang backend
(clangextract.py) cross-validates the constructs extracted from this
stream against the real AST.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Multi-character punctuators the rules distinguish; longest match first.
_PUNCTS = (
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++",
    "--",
)

_ANNOTATION_RE = re.compile(
    r"//\s*d2lint:\s*([a-z-]+)\s*\(([^)]*)\)")

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "punct"
    value: str
    line: int


@dataclass(frozen=True)
class Annotation:
    """One `// d2lint: <kind>(<reason>)` comment."""
    kind: str  # e.g. "allow-default", "allow-discard"
    reason: str
    line: int


@dataclass
class LexResult:
    tokens: list
    annotations: list  # [Annotation]

    def annotations_near(self, line: int, kind: str,
                         above: int = 1) -> list:
        """Annotations of `kind` on `line` or up to `above` lines before
        it — the grammar allows the annotation trailing the construct or
        on its own line immediately above."""
        return [a for a in self.annotations
                if a.kind == kind and line - above <= a.line <= line]


def lex(text: str) -> LexResult:
    tokens: list = []
    annotations: list = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            comment = text[i:n if j < 0 else j]
            m = _ANNOTATION_RE.search(comment)
            if m:
                annotations.append(
                    Annotation(m.group(1), m.group(2).strip(), line))
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            block = text[i:end]
            m = _ANNOTATION_RE.search(block.replace("/*", "//", 1))
            if m:
                annotations.append(
                    Annotation(m.group(1), m.group(2).strip(), line))
            line += block.count("\n")
            i = end
        elif c == '"':
            # String literal (handles escapes; raw strings are treated as
            # plain strings — close enough, none of the rules read them).
            if text.startswith('R"', i - 1) and i >= 1:
                pass  # handled below via the generic scan
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    line += 1
                i += 1
            i += 1
        elif c == "'":
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        elif c == "#":
            # Preprocessor directive: skip to end of (continued) line.
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                if text[j - 1] == "\\" if j > 0 else False:
                    line += 1
                    i = j + 1
                else:
                    i = j  # newline handled by main loop
                    break
        elif c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            word = text[i:j]
            # `R"delim(...)delim"` raw string: swallow it whole.
            if word.endswith("R") and j < n and text[j] == '"':
                k = text.find("(", j)
                delim = text[j + 1:k] if k > 0 else ""
                close = ")" + delim + '"'
                e = text.find(close, k)
                e = n if e < 0 else e + len(close)
                line += text.count("\n", i, e)
                i = e
                continue
            tokens.append(Token("id", word, line))
            i = j
        elif c in _DIGITS:
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
        else:
            for p in _PUNCTS:
                if text.startswith(p, i):
                    tokens.append(Token("punct", p, line))
                    i += len(p)
                    break
            else:
                tokens.append(Token("punct", c, line))
                i += 1
    return LexResult(tokens, annotations)


def match_paren(tokens: list, open_idx: int,
                open_ch: str = "(", close_ch: str = ")") -> int:
    """Index of the token closing the group opened at `open_idx`, or -1."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        v = tokens[i].value
        if v == open_ch:
            depth += 1
        elif v == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1
