"""d2lint project configuration: which enums are protocol enums, which
registries each one must appear in, and which return types are must-use.

This is the single place the protocol surface is named. Adding a new
protocol enum means adding it to PROTOCOL_ENUMS (and, if it has a codec /
fold / test-coverage contract, a Registry entry); every rule picks the
change up from here. Fixture corpora override this config with a
`config.json` in the fixture directory (see selftest.py).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field


@dataclass
class Registry:
    """Cross-check: every enumerator of `enum` must appear literally
    (`Enum::kX`) in at least one file matching `patterns`."""
    enum: str
    name: str  # human-readable registry name for the finding message
    patterns: list  # repo-relative fnmatch patterns
    why: str  # one line of rationale, echoed in the finding

    def matches(self, path: str) -> bool:
        return any(fnmatch.fnmatch(path, p) for p in self.patterns)


@dataclass
class Config:
    # Enums whose switches must be exhaustive or carry an annotated
    # default, and whose upper-bound casts are pinned to the final
    # enumerator (the codec-bound rule).
    protocol_enums: list = field(default_factory=list)
    registries: list = field(default_factory=list)
    # Return types that must never be silently dropped (plus anything
    # carrying [[nodiscard]], which is picked up from the declarations).
    must_use_types: list = field(default_factory=list)
    # Files scanned for declarations but exempt from the discarded-result
    # rule (none by default).
    discard_exempt: list = field(default_factory=list)
    # Roots (repo-relative) scanned by default.
    roots: list = field(default_factory=list)
    # Mutex-like types for the lock-decl cross-validation.
    mutex_types: list = field(default_factory=lambda: ["Mutex",
                                                       "SharedMutex"])
    # Path of the regex lock linter this tool cross-validates.
    lock_order_script: str = "scripts/check_lock_order.py"
    # Roots whose mutex declarations the regex linter is expected to see
    # (check_lock_order.py lints src/ only).
    lock_roots: list = field(default_factory=lambda: ["src"])

    def is_protocol(self, enum: str) -> bool:
        return enum in self.protocol_enums


def default_config() -> Config:
    return Config(
        protocol_enums=[
            "MsgType", "WalRecordType", "CrashSite", "DeliveryError",
            "FaultKind", "FrameKind", "OpClass",
        ],
        registries=[
            Registry(
                enum="MsgType",
                name="wire-codec round-trip",
                patterns=["tests/test_wire_codec.cpp"],
                why="every message type must encode+decode byte-exactly "
                    "through EncodeFrame/DecodeFrame",
            ),
            Registry(
                enum="MsgType",
                name="transport-conformance round-trip",
                patterns=["tests/test_transport_conformance.cpp"],
                why="every message type must round-trip through Bind/Call "
                    "on all three transports",
            ),
            Registry(
                enum="WalRecordType",
                name="WAL-codec round-trip",
                patterns=["tests/test_durability_wal.cpp"],
                why="every journal record type must survive "
                    "EncodeWalRecord/DecodeWalRecord",
            ),
            Registry(
                enum="WalRecordType",
                name="fsck journal fold",
                patterns=["src/d2tree/durability/fsck.cpp"],
                why="d2fsck must account for every record type a journal "
                    "can contain",
            ),
            Registry(
                enum="CrashSite",
                name="crash-injection tests",
                patterns=["tests/*.cpp"],
                why="every named crash site must be armed by at least one "
                    "test (ArmCrash / FaultKind::kCrashAtSite)",
            ),
        ],
        must_use_types=["Delivery", "DeliveryError", "DecodeStatus"],
        roots=["src", "tests", "tools/mdsd", "tools/d2fsck", "tools/d2sst",
               "tools/d2bench_client", "bench", "examples"],
    )


def config_from_json(data: dict) -> Config:
    """Fixture-corpus config: same shape, JSON-encoded."""
    cfg = Config(
        protocol_enums=data.get("protocol_enums", []),
        must_use_types=data.get("must_use_types", []),
        discard_exempt=data.get("discard_exempt", []),
        roots=data.get("roots", ["."]),
        lock_roots=data.get("lock_roots", ["."]),
    )
    for r in data.get("registries", []):
        cfg.registries.append(Registry(
            enum=r["enum"], name=r["name"], patterns=r["patterns"],
            why=r.get("why", "")))
    if "mutex_types" in data:
        cfg.mutex_types = data["mutex_types"]
    if "lock_order_script" in data:
        cfg.lock_order_script = data["lock_order_script"]
    return cfg
