"""Textual fact extraction: token stream → FactDb.

This backend builds a micro-AST of exactly the constructs the rules need
(enum definitions, switch statements, postfix call statements, mutex
member declarations, upper-bound casts) from the lexer's token stream. It
runs on any machine with a Python interpreter — no compiler needed — and
is the reference backend for the fixture goldens. The clang backend
(clangextract.py) re-derives the switch/enum/mutex facts from the real
AST and flags any disagreement, so textual blind spots surface as
findings instead of silent gaps.
"""

from __future__ import annotations

from .config import Config
from .facts import (BoundRef, CallFact, EnumDef, EnumLiteralRef, FactDb,
                    MustUseFn, MutexDecl, SwitchFact)
from .lexer import LexResult, Token, lex, match_paren

_CONTROL_KEYWORDS = {"if", "while", "for", "switch", "catch"}
_STMT_BOUNDARY = {";", "{", "}", ":", "else", "do"}
# Keywords that can directly precede a type in a declaration; seeing one
# right before a must-use type name means declaration, not call.
_DECL_QUALIFIERS = {"virtual", "static", "inline", "constexpr", "explicit",
                    "const", "friend", "extern", "mutable", "typename",
                    "struct", "class", "using", "return", "co_return"}


def _backward_match(tokens: list, close_idx: int) -> int:
    """Index of the opener matching the `)`/`]` at close_idx, or -1."""
    close = tokens[close_idx].value
    openc = "(" if close == ")" else "["
    depth = 0
    for i in range(close_idx, -1, -1):
        v = tokens[i].value
        if v == close:
            depth += 1
        elif v == openc:
            depth -= 1
            if depth == 0:
                return i
    return -1


class _FileScanner:
    def __init__(self, rel: str, text: str, cfg: Config):
        self.rel = rel
        self.cfg = cfg
        self.lexed: LexResult = lex(text)
        self.toks: list = self.lexed.tokens
        self.db = FactDb(files=[rel])
        # (class_name, depth_after_open_brace); parallels the scope
        # tracking in scripts/check_lock_order.py.
        self.scopes: list = []
        self.depth = 0

    # ---- helpers -------------------------------------------------------

    def _tok(self, i: int) -> Token | None:
        return self.toks[i] if 0 <= i < len(self.toks) else None

    def _value(self, i: int) -> str:
        t = self._tok(i)
        return t.value if t else ""

    def _qualified_enum_at(self, i: int):
        """Matches `[d2tree ::] Enum :: kX` starting at token i; returns
        (enum, enumerator, next_index) or None."""
        if self._value(i) == "d2tree" and self._value(i + 1) == "::":
            i += 2
        t = self._tok(i)
        if (t and t.kind == "id" and self._value(i + 1) == "::"
                and self._tok(i + 2) and self._tok(i + 2).kind == "id"):
            return t.value, self._value(i + 2), i + 3
        return None

    # ---- construct parsers --------------------------------------------

    def _parse_enum(self, i: int) -> int:
        """At `enum`; returns index to resume from."""
        j = i + 1
        if self._value(j) in ("class", "struct"):
            j += 1
        name_tok = self._tok(j)
        if not name_tok or name_tok.kind != "id":
            return i + 1
        name = name_tok.value
        j += 1
        # Optional `: underlying_type` then `{` (a forward declaration
        # `enum class X : u8;` has no brace — skip it).
        while j < len(self.toks) and self._value(j) not in ("{", ";"):
            j += 1
        if self._value(j) != "{":
            return j
        end = match_paren(self.toks, j, "{", "}")
        if end < 0:
            return j + 1
        enum = EnumDef(name=name, file=self.rel, line=name_tok.line)
        k = j + 1
        while k < end:
            t = self.toks[k]
            if t.kind == "id":
                enum.enumerators.append((t.value, t.line))
                k += 1
                # Skip an optional `= value` up to the next `,` at depth 0.
                depth = 0
                while k < end:
                    v = self._value(k)
                    if v in ("(", "{", "["):
                        depth += 1
                    elif v in (")", "}", "]"):
                        depth -= 1
                    elif v == "," and depth == 0:
                        break
                    k += 1
            k += 1
        if enum.enumerators:
            self.db.enums.setdefault(name, enum)
        return end + 1

    def _parse_switch(self, i: int) -> int:
        """At `switch`; collects one SwitchFact (recursing into nested
        switches); returns index past the switch body."""
        line = self.toks[i].line
        cond_open = i + 1
        if self._value(cond_open) != "(":
            return i + 1
        cond_close = match_paren(self.toks, cond_open)
        if cond_close < 0:
            return i + 1
        body_open = cond_close + 1
        if self._value(body_open) != "{":
            return body_open
        body_close = match_paren(self.toks, body_open, "{", "}")
        if body_close < 0:
            return body_open + 1

        fact = SwitchFact(file=self.rel, line=line, enum="")
        k = body_open + 1
        while k < body_close:
            v = self._value(k)
            if v == "switch":
                k = self._parse_switch(k)  # nested: its cases are its own
                continue
            if v == "case":
                q = self._qualified_enum_at(k + 1)
                if q:
                    enum, enumerator, _ = q
                    fact.cases.add(enumerator)
                    if not fact.enum and self.cfg.is_protocol(enum):
                        fact.enum = enum
                else:
                    t = self._tok(k + 1)
                    if t and t.kind == "id":
                        fact.cases.add(t.value)
            elif v == "default" and self._value(k + 1) == ":":
                fact.has_default = True
                fact.default_line = self.toks[k].line
                notes = self.lexed.annotations_near(
                    fact.default_line, "allow-default")
                if notes:
                    fact.default_reason = notes[-1].reason or "(unstated)"
            k += 1
        self.db.switches.append(fact)
        return body_close + 1

    def _maybe_bound(self, i: int) -> None:
        """At `static_cast`: record protocol-enum upper-bound usages."""
        j = i + 1
        if self._value(j) != "<":
            return
        # The template argument list of a static_cast never nests '<'.
        while j < len(self.toks) and self._value(j) != ">":
            j += 1
        if self._value(j + 1) != "(":
            return
        close = match_paren(self.toks, j + 1)
        q = self._qualified_enum_at(j + 2)
        if not q or close < 0:
            return
        enum, enumerator, after = q
        if after != close or not self.cfg.is_protocol(enum):
            return
        prev = self._value(i - 1)
        nxt, nxt2 = self._value(close + 1), self._value(close + 2)
        context = ""
        if prev in ("<", "<=", ">", ">="):
            context = f"{prev} cast"
        elif nxt in ("<", "<=", ">", ">="):
            context = f"cast {nxt}"
        elif nxt == "+" and nxt2 == "1":
            context = "cast + 1"
        if context:
            self.db.bounds.append(BoundRef(
                file=self.rel, line=self.toks[i].line, enum=enum,
                enumerator=enumerator, context=context))

    def _maybe_mutex_decl(self, i: int) -> None:
        """At a token naming a mutex type: record a member declaration."""
        t = self.toks[i]
        prev = self._value(i - 1)
        if prev == "::":
            # `d2tree::Mutex` — fine; anything else (Foo::Mutex) is not
            # our type.
            if self._value(i - 2) != "d2tree":
                return
            prev = self._value(i - 3)
        if prev in ("*", "&", "&&", "<", ",", "(", "new", "typename",
                    "class", "using", "typedef", "."):
            return
        name_tok = self._tok(i + 1)
        if not name_tok or name_tok.kind != "id":
            return
        after = self._value(i + 2)
        # A declaration continues with attributes, an initializer, or ends.
        if not (after in (";", "=", "{") or after.startswith("D2T_")):
            return
        rank = None
        j = i + 2
        while j < len(self.toks) and self._value(j) != ";":
            if self._value(j) == "D2T_LOCK_RANK" and \
                    self._value(j + 1) == "(":
                rank_tok = self._tok(j + 2)
                if rank_tok and rank_tok.kind == "num":
                    rank = int(rank_tok.value)
            j += 1
        cls = self.scopes[-1][0] if self.scopes else ""
        self.db.mutexes.append(MutexDecl(
            cls=cls, member=name_tok.value, type=t.value, rank=rank,
            file=self.rel, line=name_tok.line))

    def _maybe_must_use_decl(self, i: int) -> None:
        """At `[ [ nodiscard ] ]` or a must-use return type: record the
        declared function name."""
        t = self.toks[i]
        nodiscard = False
        j = i
        if t.value == "[" and self._value(i + 1) == "[" and \
                self._value(i + 2) == "nodiscard":
            nodiscard = True
            j = i + 3
            while j < len(self.toks) and self._value(j) != "]":
                j += 1
            j += 2  # past `] ]`
            # The return type follows; skip qualifiers and the type chain
            # up to the declarator name.
        elif t.kind == "id" and t.value in self.cfg.must_use_types:
            if self._value(i - 1) in ("::", "<", ",", "enum", "class",
                                      "struct", "return", "case", "("):
                return
            j = i + 1
        else:
            return
        # Walk `Qual::Chain<...> Name (` — the declared name is the last
        # identifier before a `(` that is not part of template args.
        name, name_line = "", 0
        depth = 0
        while j < len(self.toks):
            v = self._value(j)
            tok = self.toks[j]
            if v in ("<",):
                depth += 1
            elif v in (">",):
                depth = max(0, depth - 1)
            elif v == "(" and depth == 0:
                break
            elif v in (";", "{", "}", "=", ")"):
                return  # not a function declaration
            elif tok.kind == "id" and depth == 0 and \
                    v not in _DECL_QUALIFIERS:
                name, name_line = v, tok.line
            j += 1
        if not name or name == "operator":
            return
        self.db.must_use.setdefault(name, MustUseFn(
            name=name, file=self.rel, line=name_line,
            ret=("[[nodiscard]]" if nodiscard else t.value),
            nodiscard=nodiscard))

    def _maybe_void_decl(self, i: int) -> None:
        """At `void`: if this declares a function, record its name. Names
        carrying both a must-use and a void declaration are ambiguous to
        this name-based backend (e.g. `SSTableReader::Scan` vs the void
        `StoreEngine::Scan`) and the discard rule skips them; the clang
        backend resolves them by type."""
        if self._value(i - 1) in ("(", ",", "<", "::"):
            return  # `(void)` cast, parameter list, or template argument
        name, depth, j = "", 0, i + 1
        while j < len(self.toks):
            v = self._value(j)
            tok = self.toks[j]
            if v == "<":
                depth += 1
            elif v == ">":
                depth = max(0, depth - 1)
            elif v == "(" and depth == 0:
                break
            elif v in (";", "{", "}", "=", ")", "*", "&"):
                return  # not a plain function declaration
            elif tok.kind == "id" and depth == 0 and \
                    v not in _DECL_QUALIFIERS:
                name = v
            j += 1
        if name and name != "operator":
            self.db.void_decls.add(name)

    def _maybe_discarded_call(self, i: int) -> None:
        """At an identifier followed by `(`: if this is a full-statement
        call whose value is dropped, record a CallFact."""
        if self._value(i + 1) != "(":
            return
        close = match_paren(self.toks, i + 1)
        if close < 0 or self._value(close + 1) != ";":
            return
        # Walk backwards over the postfix chain the call hangs off.
        j = i - 1
        void_cast = False
        while j >= 0:
            v = self._value(j)
            tk = self.toks[j]
            if v in (".", "->", "::"):
                j -= 1
                continue
            if tk.kind == "id" or v == "this":
                if j >= 1 and self._value(j - 1) in (".", "->", "::"):
                    j -= 1
                    continue
                if j == i - 1:
                    # `Type name(...)` declaration, `return f(...)`,
                    # `new T(...)`, `throw E(...)`: the id right before
                    # the callee means this is not a bare call statement
                    # — unless it's an `else`/`do` statement boundary.
                    if v in _STMT_BOUNDARY:
                        break
                    return
                j -= 1  # chain head (e.g. `transport_` or `std`)
                break
            if v in (")", "]"):
                opener = _backward_match(self.toks, j)
                if opener < 0:
                    return
                before = self._value(opener - 1)
                if v == ")" and opener == j - 2 and \
                        self._value(j - 1) == "void":
                    # `(void)` cast — explicit acknowledgment.
                    void_cast = True
                    j = opener - 1
                    break
                if before in _CONTROL_KEYWORDS:
                    j = opener - 1  # `if (...) call();` — a statement
                    break
                bt = self._tok(opener - 1)
                if bt and (bt.kind == "id" or bt.value in (")", "]")):
                    j = opener - 1  # postfix chain continues
                    continue
                j = opener - 1
                break
            break
        prev = self._value(j) if j >= 0 else ";"
        if not void_cast and prev == ")" and \
                self._value(j - 1) == "void" and self._value(j - 2) == "(":
            # `(void)obj->Call(...);` — the walk stops at the chain head,
            # leaving j on the cast's closing paren.
            void_cast = True
            j -= 3
            prev = self._value(j) if j >= 0 else ";"
        is_stmt = (prev in _STMT_BOUNDARY or void_cast
                   or prev in _CONTROL_KEYWORDS
                   or (prev == ")" and self._in_control_paren(j)))
        if not is_stmt:
            return
        line = self.toks[i].line
        notes = self.lexed.annotations_near(line, "allow-discard")
        self.db.discarded_calls.append(CallFact(
            file=self.rel, line=line, callee=self.toks[i].value,
            void_cast=void_cast,
            reason=(notes[-1].reason or "(unstated)") if notes else ""))

    def _in_control_paren(self, close_idx: int) -> bool:
        opener = _backward_match(self.toks, close_idx)
        return opener >= 1 and self._value(opener - 1) in _CONTROL_KEYWORDS

    # ---- driver --------------------------------------------------------

    def scan(self) -> FactDb:
        i = 0
        toks = self.toks
        while i < len(toks):
            t = toks[i]
            v = t.value
            if v == "{":
                self.depth += 1
            elif v == "}":
                self.depth -= 1
                while self.scopes and self.depth < self.scopes[-1][1]:
                    self.scopes.pop()
            elif t.kind == "id":
                if v == "enum":
                    i = self._parse_enum(i)
                    continue
                if v in ("class", "struct"):
                    self._maybe_open_scope(i)
                elif v == "switch":
                    i = self._parse_switch_tracking_depth(i)
                    continue
                elif v == "static_cast":
                    self._maybe_bound(i)
                elif v in self.cfg.mutex_types:
                    self._maybe_mutex_decl(i)
                elif v in self.cfg.must_use_types:
                    self._maybe_must_use_decl(i)
                elif v == "void":
                    self._maybe_void_decl(i)
                q = self._qualified_enum_at(i)
                if q:
                    enum, enumerator, _ = q
                    if self.cfg.is_protocol(enum):
                        self.db.literals.append(EnumLiteralRef(
                            file=self.rel, line=t.line, enum=enum,
                            enumerator=enumerator))
                if self._value(i + 1) == "(":
                    self._maybe_discarded_call(i)
            elif v == "[":
                self._maybe_must_use_decl(i)
            i += 1
        return self.db

    def _parse_switch_tracking_depth(self, i: int) -> int:
        """_parse_switch skips the body tokens wholesale; replay scope and
        literal/call bookkeeping for the region it consumed."""
        end = self._parse_switch(i)
        j = i
        while j < end:
            t = self.toks[j]
            v = t.value
            if v == "{":
                self.depth += 1
            elif v == "}":
                self.depth -= 1
                while self.scopes and self.depth < self.scopes[-1][1]:
                    self.scopes.pop()
            elif t.kind == "id":
                if v == "static_cast":
                    self._maybe_bound(j)
                elif v in self.cfg.must_use_types:
                    self._maybe_must_use_decl(j)
                q = self._qualified_enum_at(j)
                if q:
                    enum, enumerator, _ = q
                    if self.cfg.is_protocol(enum):
                        self.db.literals.append(EnumLiteralRef(
                            file=self.rel, line=t.line, enum=enum,
                            enumerator=enumerator))
                if self._value(j + 1) == "(":
                    self._maybe_discarded_call(j)
            j += 1
        return end

    def _maybe_open_scope(self, i: int) -> None:
        """At `class`/`struct`: push a scope if this opens a definition."""
        if self._value(i - 1) == "enum":
            return
        j = i + 1
        # Optional attribute macro (e.g. D2T_CAPABILITY("mutex")).
        while j < len(self.toks) and self.toks[j].kind == "id" and \
                self.toks[j].value.startswith("D2T_"):
            if self._value(j + 1) == "(":
                j = match_paren(self.toks, j + 1) + 1
            else:
                j += 1
        name_tok = self._tok(j)
        if not name_tok or name_tok.kind != "id":
            return
        # Find whether a `{` opens before the next `;` (definition vs
        # forward declaration / variable of elaborated type).
        k = j + 1
        while k < len(self.toks) and self._value(k) not in ("{", ";"):
            k += 1
        if self._value(k) == "{":
            self.scopes.append((name_tok.value, self.depth + 1))


def scan_file(rel: str, text: str, cfg: Config) -> FactDb:
    return _FileScanner(rel, text, cfg).scan()
