"""d2lint: protocol-invariant static analysis for the d2tree codebase."""
