"""d2lint check modules: FactDb → findings.

Rules (DESIGN.md §12 has the catalog):
  exhaustive-switch  every switch over a protocol enum names every
                     enumerator or carries an annotated default
  registry           every enumerator of a registered enum appears in its
                     codec/fold/test registry files
  codec-bound        a `static_cast<..>(Enum::kX)` used as an upper bound
                     must name the final enumerator (decoder range guards
                     and loop bounds go stale when an enum grows)
  discarded-result   calls returning Delivery/DeliveryError/DecodeStatus
                     or a [[nodiscard]] value must not be dropped
  lock-decl          the mutex members d2lint extracts must agree with
                     scripts/check_lock_order.py's regex parser (members,
                     ranks) — the rank DAG is only as good as its parser
  backend-drift      when the clang AST backend runs, its switch/mutex
                     facts must agree with the textual extraction
"""

from __future__ import annotations

import importlib.util
import os

from .config import Config
from .facts import FactDb, Finding


def check_exhaustive_switch(db: FactDb, cfg: Config) -> list:
    findings: list = []
    for sw in db.switches:
        if not sw.enum or not cfg.is_protocol(sw.enum):
            continue
        enum = db.enums.get(sw.enum)
        if sw.has_default and not sw.default_reason:
            findings.append(Finding(
                sw.file, sw.default_line or sw.line, "exhaustive-switch",
                f"bare `default:` in switch over {sw.enum} — enumerate "
                f"every case or annotate "
                f"`// d2lint: allow-default(<reason>)` so adding an "
                f"enumerator cannot be silently absorbed"))
        if not sw.has_default and enum is not None:
            missing = [n for n in enum.names if n not in sw.cases]
            if missing:
                findings.append(Finding(
                    sw.file, sw.line, "exhaustive-switch",
                    f"switch over {sw.enum} missing enumerator"
                    f"{'s' if len(missing) > 1 else ''}: "
                    + ", ".join(missing)))
    return findings


def check_registry(db: FactDb, cfg: Config) -> list:
    findings: list = []
    for reg in cfg.registries:
        enum = db.enums.get(reg.enum)
        if enum is None:
            continue
        matched_files = [f for f in db.files if reg.matches(f)]
        if not matched_files:
            findings.append(Finding(
                enum.file, enum.line, "registry",
                f"registry '{reg.name}' for {reg.enum} matched no scanned "
                f"files (patterns: {', '.join(reg.patterns)}) — config or "
                f"tree layout drifted"))
            continue
        present = {l.enumerator for l in db.literals
                   if l.enum == reg.enum and reg.matches(l.file)}
        for name, line in enum.enumerators:
            if name not in present:
                findings.append(Finding(
                    enum.file, line, "registry",
                    f"{reg.enum}::{name} does not appear in registry "
                    f"'{reg.name}' ({', '.join(reg.patterns)}) — "
                    f"{reg.why}"))
    return findings


def check_codec_bound(db: FactDb, cfg: Config) -> list:
    findings: list = []
    for b in db.bounds:
        enum = db.enums.get(b.enum)
        if enum is None or not cfg.is_protocol(b.enum):
            continue
        if getattr(b, "reason", ""):
            continue
        if b.enumerator != enum.last:
            findings.append(Finding(
                b.file, b.line, "codec-bound",
                f"upper bound names {b.enum}::{b.enumerator} "
                f"({b.context}) but the final enumerator is "
                f"{b.enum}::{enum.last} — this range guard/loop went "
                f"stale when the enum grew"))
    return findings


def check_discarded_result(db: FactDb, cfg: Config) -> list:
    findings: list = []
    for call in db.discarded_calls:
        fn = db.must_use.get(call.callee)
        if fn is None:
            continue
        if call.void_cast or call.reason:
            continue
        if call.callee in db.void_decls:
            # The name also has a void-returning declaration (method name
            # collision, e.g. RunningStats::Add vs SSTableBuilder::Add);
            # the text backend cannot type-resolve the receiver. The clang
            # backend and the compiler's own -Wunused-result cover these.
            continue
        if any(call.file.startswith(p) for p in cfg.discard_exempt):
            continue
        findings.append(Finding(
            call.file, call.line, "discarded-result",
            f"result of {call.callee}() ({fn.ret}, declared "
            f"{fn.file}:{fn.line}) is silently dropped — consume it, "
            f"`(void)`-cast it, or annotate "
            f"`// d2lint: allow-discard(<reason>)`"))
    return findings


def _load_lock_order_module(repo: str, script_rel: str):
    path = os.path.join(repo, script_rel)
    if not os.path.isfile(path):
        return None
    spec = importlib.util.spec_from_file_location("check_lock_order", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def check_lock_decls(db: FactDb, cfg: Config, repo: str) -> list:
    """Cross-validate the rank-DAG linter's regex parser against d2lint's
    extraction over the same files."""
    mod = _load_lock_order_module(repo, cfg.lock_order_script)
    if mod is None:
        return []
    in_scope = [f for f in db.files
                if any(r in (".", "") or f == r
                       or f.startswith(r.rstrip("/") + "/")
                       for r in cfg.lock_roots)]
    regex_locks: dict = {}
    for rel in in_scope:
        try:
            with open(os.path.join(repo, rel), encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            continue
        mod.parse_file(rel, text, regex_locks, [], [])

    ours = {m.qualified: m for m in db.mutexes if m.file in set(in_scope)}
    findings: list = []
    for qualified, m in sorted(ours.items()):
        theirs = regex_locks.get(qualified)
        if theirs is None:
            findings.append(Finding(
                m.file, m.line, "lock-decl",
                f"mutex member {qualified} ({m.type}) is invisible to "
                f"{cfg.lock_order_script}'s regex parser — its rank is "
                f"not enforced in the lock hierarchy DAG"))
        elif theirs.rank != m.rank:
            findings.append(Finding(
                m.file, m.line, "lock-decl",
                f"mutex member {qualified}: d2lint reads rank {m.rank} "
                f"but {cfg.lock_order_script} reads rank {theirs.rank} — "
                f"the two parsers disagree on the declaration"))
    for qualified, lk in sorted(regex_locks.items()):
        if qualified not in ours:
            findings.append(Finding(
                lk.file, lk.line, "lock-decl",
                f"mutex member {qualified} is seen by "
                f"{cfg.lock_order_script} but not by d2lint's extractor "
                f"— one of the parsers mis-reads the declaration"))
    return findings


def check_backend_drift(text_db: FactDb, clang_db: FactDb,
                        cfg: Config) -> list:
    """Clang AST facts vs textual facts for the files clang parsed."""
    findings: list = []
    clang_files = set(clang_db.files) | {s.file for s in clang_db.switches}
    clang_files |= {m.file for m in clang_db.mutexes}

    text_sw = {(s.file, s.line): s for s in text_db.switches
               if s.enum and cfg.is_protocol(s.enum)}
    clang_sw = {(s.file, s.line): s for s in clang_db.switches
                if s.enum and cfg.is_protocol(s.enum)}
    for key, cs in sorted(clang_sw.items()):
        ts = text_sw.get(key)
        if ts is None:
            findings.append(Finding(
                cs.file, cs.line, "backend-drift",
                f"clang sees a switch over {cs.enum} here that the "
                f"textual backend did not classify (no enum-qualified "
                f"case labels?) — textual exhaustiveness checking has a "
                f"blind spot at this site"))
        elif ts.enum != cs.enum or ts.cases != cs.cases:
            findings.append(Finding(
                cs.file, cs.line, "backend-drift",
                f"switch facts disagree: text({ts.enum}: "
                f"{len(ts.cases)} cases) vs clang({cs.enum}: "
                f"{len(cs.cases)} cases)"))
    for key, ts in sorted(text_sw.items()):
        if ts.file in clang_files and key not in clang_sw:
            findings.append(Finding(
                ts.file, ts.line, "backend-drift",
                f"textual backend classified a switch over {ts.enum} "
                f"here but clang did not report it — textual "
                f"misclassification or preprocessor-disabled code"))

    text_mx = {(m.file, m.member, m.cls) for m in text_db.mutexes}
    for m in clang_db.mutexes:
        if m.file in {f for f, *_ in text_mx} or True:
            if (m.file, m.member, m.cls) not in text_mx and \
                    m.file in set(text_db.files):
                findings.append(Finding(
                    m.file, m.line, "backend-drift",
                    f"clang sees mutex member {m.qualified} that the "
                    f"textual extractor missed"))
    return findings


def run_all(text_db: FactDb, cfg: Config, repo: str,
            clang_db: FactDb | None = None) -> list:
    """All rules over the canonical fact set. When clang facts exist they
    are merged in for exhaustiveness (type-resolved switches win) and the
    drift checks run."""
    db = text_db
    findings: list = []
    if clang_db is not None:
        findings += check_backend_drift(text_db, clang_db, cfg)
        # Canonical switch set: clang's where available (cond type beats
        # label inference), text's elsewhere.
        merged = FactDb()
        merged.merge(text_db)
        clang_keys = {(s.file, s.line) for s in clang_db.switches}
        merged.switches = ([s for s in text_db.switches
                            if (s.file, s.line) not in clang_keys]
                           + clang_db.switches)
        for name, e in clang_db.enums.items():
            merged.enums.setdefault(name, e)
        db = merged
    findings += check_exhaustive_switch(db, cfg)
    findings += check_registry(db, cfg)
    findings += check_codec_bound(db, cfg)
    findings += check_discarded_result(db, cfg)
    findings += check_lock_decls(db, cfg, repo)
    dedup: dict = {}
    for f in findings:
        dedup.setdefault(f.key(), f)
    return sorted(dedup.values(), key=lambda f: (f.file, f.line, f.rule,
                                                 f.message))
