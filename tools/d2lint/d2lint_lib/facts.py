"""The facts IR every d2lint backend produces and every rule consumes.

A backend (textextract.py, clangextract.py) reduces a set of C++ files to
one `FactDb`; the check modules in rules.py never look at source text
again. Keeping the IR this small is what lets the clang AST backend and
the textual backend cross-validate each other: both must land on the same
facts for the same tree.

All paths are repo-relative with forward slashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EnumDef:
    """One `enum class Name : base { ... };` definition."""
    name: str
    file: str
    line: int
    enumerators: list = field(default_factory=list)  # [(name, line)]

    @property
    def names(self) -> list:
        return [n for n, _ in self.enumerators]

    @property
    def last(self) -> str:
        return self.enumerators[-1][0] if self.enumerators else ""


@dataclass
class SwitchFact:
    """One `switch` statement, resolved to the enum it switches over.

    The text backend infers `enum` from the case labels (a switch whose
    labels name `MsgType::k...` is a switch over MsgType); the clang
    backend reads the condition's actual type, so it also sees protocol
    switches with no enum-qualified labels at all.
    """
    file: str
    line: int
    enum: str  # "" when the subject type is unknown
    cases: set = field(default_factory=set)  # enumerator names (unqualified)
    has_default: bool = False
    default_line: int = 0
    default_reason: str = ""  # non-empty when d2lint: allow-default(...) found
    source: str = "text"  # which backend produced it


@dataclass
class CallFact:
    """A call statement whose result is discarded.

    Only *discarded* calls of must-use callees are recorded; `reason` is
    non-empty when a `// d2lint: allow-discard(...)` annotation covers the
    statement, `void_cast` when the discard is an explicit `(void)` cast.
    """
    file: str
    line: int
    callee: str
    void_cast: bool = False
    reason: str = ""


@dataclass
class MustUseFn:
    """A function the discarded-result rule tracks: returns one of the
    configured must-use types, or carries [[nodiscard]]."""
    name: str
    file: str
    line: int
    ret: str
    nodiscard: bool


@dataclass
class MutexDecl:
    """A Mutex/SharedMutex data-member declaration."""
    cls: str
    member: str
    type: str  # "Mutex" | "SharedMutex"
    rank: int | None
    file: str
    line: int

    @property
    def qualified(self) -> str:
        return f"{self.cls}::{self.member}" if self.cls else self.member


@dataclass
class BoundRef:
    """`static_cast<T>(Enum::kX)` used as an upper bound (compared with
    <, <=, >, >= or followed by `+ 1` as an exclusive count)."""
    file: str
    line: int
    enum: str
    enumerator: str
    context: str  # short operator context, e.g. "> cast" / "cast + 1"


@dataclass
class EnumLiteralRef:
    """Any `Enum::kX` appearance of a protocol enum (registry evidence)."""
    file: str
    line: int
    enum: str
    enumerator: str


@dataclass
class FactDb:
    enums: dict = field(default_factory=dict)  # name -> EnumDef
    switches: list = field(default_factory=list)  # [SwitchFact]
    discarded_calls: list = field(default_factory=list)  # [CallFact]
    must_use: dict = field(default_factory=dict)  # name -> MustUseFn
    mutexes: list = field(default_factory=list)  # [MutexDecl]
    bounds: list = field(default_factory=list)  # [BoundRef]
    literals: list = field(default_factory=list)  # [EnumLiteralRef]
    # Names that also carry a void-returning declaration somewhere: the
    # name-based discard rule treats these as ambiguous (see textextract).
    void_decls: set = field(default_factory=set)
    files: list = field(default_factory=list)  # every file scanned

    def merge(self, other: "FactDb") -> None:
        for name, e in other.enums.items():
            self.enums.setdefault(name, e)
        self.switches.extend(other.switches)
        self.discarded_calls.extend(other.discarded_calls)
        for name, f in other.must_use.items():
            self.must_use.setdefault(name, f)
        self.mutexes.extend(other.mutexes)
        self.bounds.extend(other.bounds)
        self.literals.extend(other.literals)
        self.void_decls |= other.void_decls
        self.files.extend(f for f in other.files if f not in self.files)


@dataclass(frozen=True)
class Finding:
    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def key(self) -> str:
        """Baseline identity: location-stable like the clang-tidy wall."""
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"
