// d2sst — inspect sealed SSTable files (DESIGN.md §11).
//
//   d2sst verify <table.sst> [more.sst ...]
//     Full offline audit of each table: footer magic, index/bloom CRCs,
//     per-block CRCs, strict global key ordering, per-block range
//     agreement, entry count, min/max, and bloom completeness. Prints one
//     summary line per table plus every issue; exit 0 iff all clean.
//
//   d2sst dump <table.sst> [limit]
//     Opens the table and prints its header (entries, id range, path)
//     followed by one line per entry — id, kind, and for live records the
//     name/parent/type/version/mtime the storage codec decoded. `limit`
//     caps the entry lines (default 32; 0 = all).
//
// The tool reads through the same SSTableReader/AuditSSTable paths the
// engine and d2fsck use, so "d2sst verify says clean" means the engine
// will accept the file — useful for poking at ship/ leftovers and
// compaction outputs without spinning up a store.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "d2tree/storage/sstable.h"

using namespace d2tree;

namespace {

int Verify(int argc, char** argv) {
  bool all_clean = true;
  for (int i = 2; i < argc; ++i) {
    const SSTableAudit audit = AuditSSTable(argv[i]);
    std::printf("%s: %zu block(s), %zu entr%s, %zu tombstone(s): %s\n",
                argv[i], audit.blocks, audit.entries,
                audit.entries == 1 ? "y" : "ies", audit.tombstones,
                audit.clean() ? "clean" : "NOT CLEAN");
    for (const std::string& issue : audit.issues)
      std::printf("  FAIL %s\n", issue.c_str());
    all_clean = all_clean && audit.clean();
  }
  return all_clean ? 0 : 1;
}

int Dump(const char* path, std::size_t limit) {
  SSTableReader reader;
  if (!reader.Open(path)) {
    std::fprintf(stderr, "d2sst: cannot open %s (bad footer/index/bloom?)\n",
                 path);
    return 2;
  }
  std::printf("%s: %llu entries, ids [%u, %u]\n", path,
              static_cast<unsigned long long>(reader.entry_count()),
              static_cast<unsigned>(reader.min_id()),
              static_cast<unsigned>(reader.max_id()));
  std::size_t shown = 0;
  bool truncated = false;
  const bool ok = reader.Scan([&](const SSTableEntry& entry) {
    if (limit != 0 && shown >= limit) {
      truncated = true;
      return;
    }
    ++shown;
    if (entry.tombstone) {
      std::printf("  %u tombstone\n", static_cast<unsigned>(entry.id));
      return;
    }
    const InodeRecord& r = entry.record;
    std::printf("  %u %s name=\"%s\" parent=%u v%llu mtime=%llu\n",
                static_cast<unsigned>(entry.id),
                r.type == NodeType::kDirectory ? "dir " : "file",
                r.name.c_str(), static_cast<unsigned>(r.parent),
                static_cast<unsigned long long>(r.version),
                static_cast<unsigned long long>(r.attrs.mtime));
  });
  if (truncated)
    std::printf("  ... (%llu more; rerun with limit 0 for all)\n",
                static_cast<unsigned long long>(reader.entry_count() - shown));
  if (!ok) {
    std::fprintf(stderr, "d2sst: a data block failed its CRC mid-scan\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "verify") == 0)
    return Verify(argc, argv);
  if (argc >= 3 && std::strcmp(argv[1], "dump") == 0) {
    const std::size_t limit =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 32;
    return Dump(argv[2], limit);
  }
  std::fprintf(stderr,
               "usage: d2sst verify <table.sst> [more.sst ...]\n"
               "       d2sst dump <table.sst> [limit (default 32, 0 = all)]\n");
  return 2;
}
