// d2fsck CLI — audit a saved write-ahead log, or demo the full
// crash → recover → audit loop on a synthetic cluster.
//
//   d2fsck <wal-file>
//     Offline mode: load a Monitor journal saved with Wal::SaveTo (or by
//     this tool's demo mode) and run the journal audit: framing/CRC
//     validity, torn-tail detection, and the migration *and rename*
//     state machines — no id both committed and aborted, no COMMIT
//     without its PREPARE, rename intent ids strictly monotone.
//     Exit 0 when clean, 1 otherwise.
//
//   d2fsck --store <dir>
//     Offline store mode: audit one LSM store-engine directory (as left
//     behind by `mdsd --data-dir` or the store bench) — MANIFEST framing
//     and table list, every sealed table's footer/CRCs/ordering/bloom,
//     stray or missing .sst files, and a frame-by-frame decode of the
//     engine WAL. A torn engine-WAL tail is reported (crash footprint),
//     a torn MANIFEST is flagged. Exit 0 when clean, 1 otherwise.
//
//   d2fsck --demo [site 0..8] [torn 0|1] [wal-out]
//     Online mode: build a small cluster, drive traffic, arm a crash at
//     the named site (durability/crash_point.h; default kAfterPrepare)
//     optionally tearing the last WAL record, trip it — migration sites
//     (0..4) via the adjustment round or a GL update, rename sites (5..8)
//     via a cross-server rename transaction — then Recover() and audit
//     the recovered cluster. With [wal-out] the post-recovery journal is
//     saved for offline runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/fsck.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

int AuditFile(const char* path) {
  Wal wal;
  if (!wal.LoadFrom(path)) {
    std::fprintf(stderr, "d2fsck: cannot read %s\n", path);
    return 2;
  }
  const FsckReport report = FsckJournal(wal);
  std::fputs(FormatFsckReport(report).c_str(), stdout);
  return report.clean() ? 0 : 1;
}

int AuditStoreDir(const char* dir) {
  const FsckReport report = FsckStoreDir(dir);
  std::fputs(FormatFsckReport(report).c_str(), stdout);
  return report.clean() ? 0 : 1;
}

int Demo(int argc, char** argv) {
  const int site_index = argc > 2 ? std::atoi(argv[2]) : 1;
  const bool torn = argc > 3 && std::atoi(argv[3]) != 0;
  const char* wal_out = argc > 4 ? argv[4] : nullptr;
  if (site_index < 0 ||
      static_cast<std::size_t>(site_index) >= kCrashSiteCount) {
    std::fprintf(stderr, "d2fsck: site must be 0..%zu\n", kCrashSiteCount - 1);
    return 2;
  }
  const auto site = static_cast<CrashSite>(site_index);

  const Workload w = GenerateWorkload(DtrProfile(0.05));
  FunctionalCluster cluster(w.tree, 4);
  // Skew the popularity so the adjustment round actually migrates.
  const auto& ops = w.trace.records();
  for (std::size_t i = 0; i < ops.size() && i < 4000; ++i)
    cluster.Stat(w.tree.PathOf(ops[i].node));

  std::printf("demo: arming crash at %s%s\n", CrashSiteName(site),
              torn ? " + torn tail" : "");
  cluster.ArmCrash(site, torn);
  if (static_cast<std::size_t>(site_index) >= kFirstRenameCrashSite) {
    // Rename sites fire inside the rename transaction driver: re-home a
    // local-layer subtree root to another server under a fresh name.
    const auto owners = cluster.scheme().subtree_owners();
    const auto& subtrees = cluster.scheme().layers().subtrees;
    bool driven = false;
    for (std::size_t i = 0; i < subtrees.size() && i < owners.size(); ++i) {
      if (!cluster.IsServerAlive(owners[i])) continue;
      MdsId dest = -1;
      for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
        if (k != owners[i] && cluster.IsServerAlive(k)) {
          dest = k;
          break;
        }
      const std::string path = w.tree.PathOf(subtrees[i].root);
      const auto result = dest >= 0
                              ? cluster.RenameTo(path, "renamed_demo", dest)
                              : cluster.Rename(path, "renamed_demo");
      std::printf("rename %s → renamed_demo (id %llu, %s, %zu records)\n",
                  path.c_str(),
                  static_cast<unsigned long long>(result.rename_id),
                  result.cross_server ? "cross-server" : "in place",
                  result.records_moved);
      driven = true;
      break;
    }
    if (!driven) {
      std::fprintf(stderr, "d2fsck: no renameable subtree in the demo tree\n");
      return 2;
    }
  } else if (site == CrashSite::kAfterGlBump) {
    cluster.Update("/", 42);  // the GL-update site fires on a GL write
  } else {
    // Kill a server so the round must migrate its subtrees through the
    // pending pool — guaranteeing the armed migration site is reached.
    cluster.KillServer(3);
    cluster.RunAdjustmentRound();
  }
  std::printf("crashed: %s\n", cluster.crashed() ? "yes" : "no");

  const auto recovery = cluster.Recover();
  std::printf(
      "recovered: %zu records replayed%s, %zu rolled forward, %zu rolled "
      "back, %zu renames rolled forward, %zu renames rolled back, "
      "%zu records rematerialized, GL v%llu\n",
      recovery.wal_records_replayed,
      recovery.torn_tail_detected ? " (torn tail truncated)" : "",
      recovery.migrations_rolled_forward, recovery.migrations_rolled_back,
      recovery.renames_rolled_forward, recovery.renames_rolled_back,
      recovery.records_rematerialized,
      static_cast<unsigned long long>(recovery.gl_version));

  const FsckReport report = FsckCluster(cluster);
  std::fputs(FormatFsckReport(report).c_str(), stdout);
  if (wal_out != nullptr) {
    if (cluster.monitor_wal().SaveTo(wal_out))
      std::printf("journal saved to %s\n", wal_out);
    else
      std::fprintf(stderr, "d2fsck: cannot write %s\n", wal_out);
  }
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) return Demo(argc, argv);
  if (argc == 3 && std::strcmp(argv[1], "--store") == 0)
    return AuditStoreDir(argv[2]);
  if (argc == 2) return AuditFile(argv[1]);
  std::fprintf(stderr,
               "usage: d2fsck <wal-file>\n"
               "       d2fsck --store <store-dir>\n"
               "       d2fsck --demo [site 0..%zu] [torn 0|1] [wal-out]\n",
               kCrashSiteCount - 1);
  return 2;
}
