// Fig. 7 (a–c): "Load balancing performance under different schemes" —
// Eq. (2) balance degree vs cluster size after 20 adjustment rounds.
//
// Expected shape (Sec. VI-B): the hash family (DROP, AngleCut) and
// D2-Tree far above dynamic subtree; static subtree worst; D2-Tree beats
// dynamic subtree on LMBE and RA because flow-control nodes live in the
// replicated global layer.
#include <cstdio>

#include "bench_util.h"
#include "d2tree/baselines/registry.h"
#include "d2tree/sim/experiment.h"

using namespace d2tree;

int main() {
  bench::PrintHeader("Fig. 7 — balance degree (Eq. 2) vs cluster size",
                     "Fig. 7(a)-(c)");
  const double scale = bench::BenchScale();
  const auto sizes = bench::ClusterSizes();

  for (const TraceProfile& profile : bench::Datasets(scale)) {
    const Workload w = GenerateWorkload(profile);
    std::printf("\n--- Fig. 7 (%s) — balance ×1e-6 ---\n", w.name.c_str());
    bench::PrintRowLabel("scheme");
    for (std::size_t m : sizes) std::printf("   M=%-6zu", m);
    std::printf("\n");
    for (const auto& scheme : PaperSchemeIds()) {
      bench::PrintRowLabel(scheme);
      for (std::size_t m : sizes) {
        ExperimentOptions opt;
        opt.run_throughput_sim = false;
        opt.adjustment_rounds = 20;  // paper: subtraces replayed 20 times
        const SchemeRunResult r = RunSchemeExperiment(scheme, w, m, opt);
        std::printf(" %9.1f", r.balance * 1e6);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape check vs paper: DROP/AngleCut/D2-Tree far above dynamic "
      "subtree;\nstatic subtree worst; D2-Tree > dynamic on LMBE and RA.\n");
  return 0;
}
