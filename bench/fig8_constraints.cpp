// Fig. 8: "L0 and U0 under different GL proportions" — Tree-Splitting on
// DTR in a 4-MDS cluster, sweeping the global-layer proportion over
// 0.001 … 0.5 and reporting the implied constraint values.
//
// Expected shape (Sec. VI-C): both the locality value and the update
// overhead INCREASE with the proportion (more nodes replicated → fewer
// local-layer nodes → better locality, more update cost). Following the
// paper's plot we report L0 as the locality value (reciprocal cost) and
// U0 as the accumulated update cost of the global layer.
#include <cstdio>

#include "bench_util.h"
#include "d2tree/core/splitter.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

int main() {
  bench::PrintHeader("Fig. 8 — implied L0 and U0 vs GL proportion (DTR, 4 MDS)",
                     "Fig. 8");
  const Workload w = GenerateWorkload(DtrProfile(bench::BenchScale()));

  std::printf("%12s %14s %14s %14s %12s\n", "GL prop", "L0=locality",
              "loc. cost", "U0=update", "GL nodes");
  for (double f : {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}) {
    const SplitResult r = SplitTreeToProportion(w.tree, f);
    if (r.locality_cost > 0) {
      std::printf("%12.3f %14.4e %14.4e %14.1f %12zu\n", f,
                  1.0 / r.locality_cost, r.locality_cost, r.update_cost,
                  r.global_layer.size());
    } else {
      // All accessed nodes replicated: locality is infinite (Def. 3).
      std::printf("%12.3f %14s %14.4e %14.1f %12zu\n", f, "inf",
                  r.locality_cost, r.update_cost, r.global_layer.size());
    }
  }
  std::printf(
      "\nShape check vs paper: locality (L0) and update overhead (U0) both "
      "rise\nmonotonically with the global-layer proportion.\n");
  return 0;
}
