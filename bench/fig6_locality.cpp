// Fig. 6 (a–c): "Locality performance under different schemes" — Eq. (1)
// locality vs cluster size for five schemes on three datasets.
//
// Expected shape (Sec. VI-B): D2-Tree and static subtree stay *flat* as
// the cluster scales (subtrees are never re-split, jp_j is constant);
// dynamic subtree / DROP / AngleCut degrade with M (finer pieces → more
// jumps); AngleCut and DROP are the weakest ("locality performance is a
// main drawback of AngleCut and DROP").
#include <cstdio>

#include "bench_util.h"
#include "d2tree/baselines/registry.h"
#include "d2tree/sim/experiment.h"

using namespace d2tree;

int main() {
  bench::PrintHeader("Fig. 6 — locality (Eq. 1) vs cluster size",
                     "Fig. 6(a)-(c)");
  const double scale = bench::BenchScale();
  const auto sizes = bench::ClusterSizes();

  for (const TraceProfile& profile : bench::Datasets(scale)) {
    const Workload w = GenerateWorkload(profile);
    std::printf("\n--- Fig. 6 (%s) — locality ×1e-6 ---\n", w.name.c_str());
    bench::PrintRowLabel("scheme");
    for (std::size_t m : sizes) std::printf("   M=%-6zu", m);
    std::printf("\n");
    for (const auto& scheme : PaperSchemeIds()) {
      bench::PrintRowLabel(scheme);
      for (std::size_t m : sizes) {
        ExperimentOptions opt;
        opt.run_throughput_sim = false;  // locality is a placement property
        const SchemeRunResult r = RunSchemeExperiment(scheme, w, m, opt);
        std::printf(" %9.3f", r.locality * 1e6);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape check vs paper: D2-Tree & static-subtree flat in M and "
      "highest;\ndynamic/DROP/AngleCut degrade as the cluster scales.\n");
  return 0;
}
