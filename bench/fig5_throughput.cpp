// Fig. 5 (a–c): "Throughput as the MDS cluster is scaled" — 200 closed-loop
// clients, cluster sizes 5..30, five schemes, three datasets.
//
// Expected shape (Sec. VI-A): D2-Tree and static subtree clearly above
// dynamic subtree / DROP / AngleCut; D2-Tree scales with the cluster on
// DTR (83% GL queries served by any replica); RA's growth is damped by
// global-layer update locking; AngleCut pays multi-ring traversal hops.
#include <cstdio>

#include "bench_util.h"
#include "d2tree/baselines/registry.h"
#include "d2tree/sim/experiment.h"

using namespace d2tree;

int main() {
  bench::PrintHeader("Fig. 5 — throughput vs cluster size (ops/s)",
                     "Fig. 5(a)-(c)");
  const double scale = bench::BenchScale();
  const auto sizes = bench::ClusterSizes();

  for (const TraceProfile& profile : bench::Datasets(scale)) {
    const Workload w = GenerateWorkload(profile);
    std::printf("\n--- Fig. 5 (%s) ---\n", w.name.c_str());
    bench::PrintRowLabel("scheme");
    for (std::size_t m : sizes) std::printf("   M=%-6zu", m);
    std::printf("\n");
    for (const auto& scheme : PaperSchemeIds()) {
      bench::PrintRowLabel(scheme);
      for (std::size_t m : sizes) {
        ExperimentOptions opt;
        opt.sim.max_ops = static_cast<std::size_t>(60'000 * scale / 0.25);
        const SchemeRunResult r = RunSchemeExperiment(scheme, w, m, opt);
        std::printf(" %9.0f", r.throughput);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape check vs paper: D2-Tree on top and scaling; dynamic/DROP "
      "below;\nAngleCut lowest; RA damped by GL update locks.\n");
  return 0;
}
