// Table II: "Operation breakdowns for various traces" — read/write/update
// fractions of the regenerated traces vs the paper's numbers.
#include <cstdio>

#include "bench_util.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

int main() {
  bench::PrintHeader("Table II — operation breakdowns", "Table II");
  const double scale = bench::BenchScale();

  struct PaperRow {
    double read, write, update;
  };
  const PaperRow paper[] = {{67.743, 26.137, 6.119},
                            {78.877, 21.108, 0.015},
                            {47.734, 36.174, 16.102}};

  std::printf("%-10s %10s %10s %10s\n", "", "Read", "Write", "Update");
  int i = 0;
  for (const TraceProfile& profile : bench::Datasets(scale)) {
    const Workload w = GenerateWorkload(profile);
    const auto b = w.trace.OpBreakdown();
    std::printf("%-10s %9.3f%% %9.3f%% %9.3f%%\n", w.name.c_str(),
                100 * b[0], 100 * b[1], 100 * b[2]);
    std::printf("%-10s %9.3f%% %9.3f%% %9.3f%%  [paper]\n", "",
                paper[i].read, paper[i].write, paper[i].update);
    ++i;
  }
  return 0;
}
