// Table I: "The description of 3 datasets" — regenerates the synthetic
// equivalents and prints their vital statistics next to the paper's.
#include <cstdio>

#include "bench_util.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

int main() {
  bench::PrintHeader("Table I — dataset description", "Table I");
  const double scale = bench::BenchScale();
  std::printf("(synthetic equivalents at scale %.2f; paper sizes in brackets)\n\n",
              scale);
  std::printf("%-8s %12s %12s %10s  %s\n", "Trace", "Records", "Nodes",
              "MaxDepth", "Description");

  struct PaperRow {
    const char* records;
    const char* depth;
  };
  const PaperRow paper[] = {{"34,349,109", "49"},
                            {"88,160,590", "9"},
                            {"259,915,851", "13"}};

  int i = 0;
  for (const TraceProfile& profile : bench::Datasets(scale)) {
    const Workload w = GenerateWorkload(profile);
    std::printf("%-8s %12zu %12zu %10u  %s\n", w.name.c_str(), w.trace.size(),
                w.tree.size(), w.tree.MaxDepth(),
                profile.description.c_str());
    std::printf("%-8s %12s %12s %10s  [paper]\n", "", paper[i].records, "-",
                paper[i].depth);
    ++i;
  }
  return 0;
}
