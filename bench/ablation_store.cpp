// Store-engine ablation (DESIGN.md §11): what the embedded LSM backend
// costs on the basic record ops, and what sealed-table shipping buys on
// the bulk path.
//
// Two halves:
//   1. Engine micro ops — Put / Get / Scan over the same seeded record
//      population, memory engine vs LSM engine (WAL + memtable + sealed
//      tables). The LSM write pays the group-committed journal; the read
//      pays bloom-gated table lookups after a flush.
//   2. The handoff ablation (the half BENCH_trajectory.json ratchets) —
//      a million-record subtree leaves one store for another, both ways
//      the cluster knows how to ship it:
//        * per-record: ExtractAll → InsertAll, the kPendingPoolPull wire
//          path — every record re-encoded into the destination's WAL;
//        * bulk: ExtractToTable → IngestTable, the kBulkTable path — the
//          subtree crosses as ONE sealed SSTable the destination links
//          in, O(1) in record count.
//      The gate asserts the bulk path is faster AND lands the identical
//      live set; the destination stores then pass the deep audit.
//
//   ablation_store [output.json]
//
// Exit code is nonzero if the destinations diverge or any audit fails,
// so the CI step doubles as a correctness gate.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "d2tree/mds/store.h"
#include "d2tree/storage/lsm_engine.h"
#include "d2tree/storage/memory_engine.h"

using namespace d2tree;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now() - t0)
             .count()) /
         1e6;
}

InodeRecord BenchRecord(NodeId id) {
  InodeRecord r;
  r.id = id;
  r.parent = id / 16;
  r.name = "entry_" + std::to_string(id);
  r.type = id % 8 == 0 ? NodeType::kDirectory : NodeType::kFile;
  r.attrs.mtime = id * 3 + 1;
  r.attrs.size = (id * 2654435761u) % (1 << 20);
  r.version = 1;
  return r;
}

struct EngineOpRow {
  double put_ns_op = 0;
  double get_ns_op = 0;
  double scan_ms = 0;
};

EngineOpRow MicroOps(StoreEngine& engine, std::size_t n) {
  EngineOpRow row;
  auto t0 = Clock::now();
  for (NodeId id = 0; id < n; ++id) engine.Put(BenchRecord(id));
  row.put_ns_op = MsSince(t0) * 1e6 / static_cast<double>(n);

  std::mt19937_64 rng(42);
  std::size_t hits = 0;
  t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i)
    hits += engine.Get(static_cast<NodeId>(rng() % (2 * n))).has_value();
  row.get_ns_op = MsSince(t0) * 1e6 / static_cast<double>(n);
  if (hits == 0) std::fprintf(stderr, "warning: no Get hits?\n");

  std::size_t scanned = 0;
  t0 = Clock::now();
  engine.Scan([&scanned](const InodeRecord&) { ++scanned; });
  row.scan_ms = MsSince(t0);
  if (scanned != n) std::fprintf(stderr, "warning: scan saw %zu/%zu\n", scanned, n);
  return row;
}

/// Both destinations must end on the identical live set — the property
/// suite's cross-backend claim, re-checked on the bench population.
bool StoresEqual(MetadataStore& a, MetadataStore& b) {
  if (a.size() != b.size()) return false;
  const auto sa = a.Snapshot();
  const auto sb = b.Snapshot();
  return sa == sb;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : nullptr;
  bench::PrintHeader("Ablation — store engine & sealed-table handoff",
                     "the DESIGN.md §11 storage layer (no paper figure)");

  std::string scratch = std::filesystem::temp_directory_path() /
                        ("d2t_bench_store_" + std::to_string(::getpid()) +
                         "_XXXXXX");
  if (::mkdtemp(scratch.data()) == nullptr) {
    std::fprintf(stderr, "cannot create scratch dir\n");
    return 2;
  }

  // ---- 1. Engine micro ops over the same seeded population.
  const auto micro_n =
      static_cast<std::size_t>(200000 * bench::BenchScale());
  MemoryEngine memory;
  LsmEngine lsm(scratch + "/micro");
  const EngineOpRow mem_row = MicroOps(memory, micro_n);
  const EngineOpRow lsm_row = MicroOps(lsm, micro_n);
  lsm.Flush();  // seal, then re-measure reads against tables + blooms
  std::mt19937_64 rng(43);
  auto t0 = Clock::now();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < micro_n; ++i)
    hits += lsm.Get(static_cast<NodeId>(rng() % (2 * micro_n))).has_value();
  const double lsm_sealed_get_ns =
      MsSince(t0) * 1e6 / static_cast<double>(micro_n);
  const bool micro_audit = lsm.AuditStorage().empty() && hits > 0;

  std::printf("engine micro ops, %zu records (ns/op; scan ms):\n", micro_n);
  std::printf("%-8s %12s %12s %12s\n", "engine", "put", "get", "scan ms");
  std::printf("%-8s %12.1f %12.1f %12.3f\n", "memory", mem_row.put_ns_op,
              mem_row.get_ns_op, mem_row.scan_ms);
  std::printf("%-8s %12.1f %12.1f %12.3f  (get after seal: %.1f)\n", "lsm",
              lsm_row.put_ns_op, lsm_row.get_ns_op, lsm_row.scan_ms,
              lsm_sealed_get_ns);

  // ---- 2. Million-record handoff: per-record vs sealed-table shipping.
  //
  // Both wire paths start from the same extracted record vector (the
  // cluster's PREPARE leg extracts identically either way); they differ
  // in what crosses the wire and what the destination pays to apply it.
  const auto handoff_n = static_cast<std::size_t>(4000000 * bench::BenchScale());
  std::vector<NodeId> ids(handoff_n);
  for (std::size_t i = 0; i < handoff_n; ++i) ids[i] = static_cast<NodeId>(i);

  MetadataStore source(std::make_unique<LsmEngine>(scratch + "/src"));
  {
    std::vector<InodeRecord> records;
    records.reserve(handoff_n);
    for (NodeId id : ids) records.push_back(BenchRecord(id));
    source.InsertAll(records);
  }
  const std::vector<InodeRecord> shipped = source.ExtractAll(ids);

  // Per-record path (kPendingPoolPull): the record vector crosses and
  // the destination journals every record back into its own WAL —
  // re-encoding the whole subtree plus the flush/compaction churn the
  // incoming volume triggers.
  MetadataStore dst_per(std::make_unique<LsmEngine>(scratch + "/dst_per"));
  t0 = Clock::now();
  dst_per.InsertAll(shipped);
  const double per_record_ms = MsSince(t0);

  // Bulk path (kBulkTable): the source seals the vector into ONE SSTable
  // and the destination links the file in — the encode happens once, the
  // apply is O(1) in record count.
  MetadataStore dst_bulk(std::make_unique<LsmEngine>(scratch + "/dst_bulk"));
  const std::string table = scratch + "/handoff.sst";
  t0 = Clock::now();
  const bool table_sealed = WriteRecordsTable(shipped, table);
  const std::size_t ingested = table_sealed ? dst_bulk.IngestTable(table) : 0;
  const double bulk_ms = MsSince(t0);

  const bool dest_equal = shipped.size() == handoff_n &&
                          ingested == handoff_n &&
                          StoresEqual(dst_per, dst_bulk);
  const bool bulk_faster = bulk_ms < per_record_ms;
  const bool audit_clean = micro_audit && dst_per.AuditStorage().empty() &&
                           dst_bulk.AuditStorage().empty() &&
                           source.size() == 0;
  const double speedup = bulk_ms > 0 ? per_record_ms / bulk_ms : 0.0;

  std::printf("\nsubtree handoff, %zu records (LSM source → LSM dest):\n",
              handoff_n);
  std::printf("%-32s %12.1f ms\n", "per-record (vector, InsertAll)",
              per_record_ms);
  std::printf("%-32s %12.1f ms   (%.1fx)\n",
              "bulk (seal one SSTable, link in)", bulk_ms, speedup);
  std::printf("destinations identical: %s; audits: %s\n",
              dest_equal ? "yes" : "NO", audit_clean ? "CLEAN" : "BROKEN");

  const bool ok = dest_equal && bulk_faster && audit_clean;
  if (out_path != nullptr) {
    std::string json = "{\n  \"bench\": \"ablation_store\",\n";
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"micro_records\": %zu,\n"
                  "  \"put\": {\"memory_ns_op\": %.1f, \"lsm_ns_op\": %.1f},\n"
                  "  \"get\": {\"memory_ns_op\": %.1f, \"lsm_ns_op\": %.1f, "
                  "\"lsm_sealed_ns_op\": %.1f},\n"
                  "  \"scan\": {\"memory_ms\": %.3f, \"lsm_ms\": %.3f},\n",
                  micro_n, mem_row.put_ns_op, lsm_row.put_ns_op,
                  mem_row.get_ns_op, lsm_row.get_ns_op, lsm_sealed_get_ns,
                  mem_row.scan_ms, lsm_row.scan_ms);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"handoff\": {\"records\": %zu, "
                  "\"per_record_ms\": %.1f, \"bulk_ms\": %.1f, "
                  "\"speedup\": %.2f, \"bulk_faster\": %s, "
                  "\"dest_equal\": %s},\n  \"audit_clean\": %s\n}\n",
                  handoff_n, per_record_ms, bulk_ms, speedup,
                  bulk_faster ? "true" : "false", dest_equal ? "true" : "false",
                  audit_clean ? "true" : "false");
    json += buf;
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  }

  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);
  return ok ? 0 : 1;
}
