// Ablation (DESIGN.md §4): subtree ordering policy in the mirror division.
//
// Fig. 4 lays subtrees along the CDF axis in descending popularity; DFS
// order is the locality-friendlier alternative (sibling subtrees land on
// the same MDS). This bench quantifies the trade: DFS wins locality-ish
// co-placement, popularity order wins balance.
#include <cstdio>

#include "bench_util.h"
#include "d2tree/core/d2tree.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

/// Fraction of adjacent (same inter node) subtree pairs co-located on one
/// MDS — a co-placement score for the ordering policy.
double SiblingCoPlacement(const D2TreeScheme& scheme) {
  const auto& layers = scheme.layers();
  const auto& owners = scheme.subtree_owners();
  std::size_t pairs = 0, together = 0;
  for (std::size_t i = 1; i < layers.subtrees.size(); ++i) {
    if (layers.subtrees[i].inter_parent != layers.subtrees[i - 1].inter_parent)
      continue;
    ++pairs;
    together += owners[i] == owners[i - 1];
  }
  return pairs > 0 ? static_cast<double>(together) / static_cast<double>(pairs)
                   : 1.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation — mirror-division subtree ordering",
                     "Fig. 4 design choice");
  const double scale = bench::BenchScale();
  std::printf("%-8s %-16s %12s %14s %16s\n", "trace", "ordering", "M",
              "balance(Eq.2)", "sibling co-loc");
  for (const TraceProfile& profile : bench::Datasets(scale)) {
    const Workload w = GenerateWorkload(profile);
    for (std::size_t m : {8ul, 32ul}) {
      for (SubtreeOrder order :
           {SubtreeOrder::kPopularityDesc, SubtreeOrder::kDfs}) {
        D2TreeConfig cfg;
        cfg.allocation.order = order;
        D2TreeScheme scheme(cfg);
        const MdsCluster cluster = MdsCluster::Homogeneous(m);
        const Assignment a = scheme.Partition(w.tree, cluster);
        const double bal = ComputeBalance(w.tree, a, cluster).balance;
        std::printf("%-8s %-16s %12zu %14.3e %15.1f%%\n", w.name.c_str(),
                    order == SubtreeOrder::kPopularityDesc ? "popularity-desc"
                                                           : "dfs",
                    m, bal, 100.0 * SiblingCoPlacement(scheme));
      }
    }
  }
  std::printf(
      "\nReading: both orderings balance within the same order of magnitude "
      "(the\nCDF mirroring dominates), but DFS keeps nearly all sibling "
      "subtrees\nco-located while popularity-desc scatters them as the "
      "cluster grows.\n");
  return 0;
}
