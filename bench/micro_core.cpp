// google-benchmark micro benches for the hot paths: path resolution,
// popularity aggregation, Tree-Splitting, mirror division, routing.
#include <benchmark/benchmark.h>

#include "d2tree/core/d2tree.h"
#include "d2tree/core/splitter.h"
#include "d2tree/sim/route.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {
namespace {

const Workload& SharedWorkload() {
  static const Workload w = GenerateWorkload(LmbeProfile(0.1));
  return w;
}

void BM_PathResolve(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  // Pre-collect some paths.
  std::vector<std::string> paths;
  for (NodeId id = 1; id < w.tree.size(); id += 257)
    paths.push_back(w.tree.PathOf(id));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.tree.Resolve(paths[i]));
    i = (i + 1) % paths.size();
  }
}
BENCHMARK(BM_PathResolve);

void BM_RecomputePopularity(benchmark::State& state) {
  Workload w = GenerateWorkload(LmbeProfile(0.05));
  for (auto _ : state) {
    w.tree.RecomputeSubtreePopularity();
    benchmark::DoNotOptimize(w.tree);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.tree.size()));
}
BENCHMARK(BM_RecomputePopularity);

void BM_TreeSplitting(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SplitTreeToProportion(w.tree, 0.01).global_layer.size());
  }
}
BENCHMARK(BM_TreeSplitting);

void BM_MirrorDivisionExact(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const SplitResult split = SplitTreeToProportion(w.tree, 0.01);
  const SplitLayers layers = ExtractLayers(w.tree, split.global_layer);
  const std::vector<double> caps(static_cast<std::size_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MirrorDivisionExact(
        layers.subtrees, caps, SubtreeOrder::kPopularityDesc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layers.subtrees.size()));
}
BENCHMARK(BM_MirrorDivisionExact)->Arg(8)->Arg(32);

void BM_MirrorDivisionSampled(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const SplitResult split = SplitTreeToProportion(w.tree, 0.01);
  const SplitLayers layers = ExtractLayers(w.tree, split.global_layer);
  const std::vector<double> caps(16, 1.0);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MirrorDivisionSampled(
        layers.subtrees, caps, static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_MirrorDivisionSampled)->Arg(64)->Arg(512);

void BM_D2TreePartition(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  const MdsCluster cluster = MdsCluster::Homogeneous(16);
  for (auto _ : state) {
    D2TreeScheme scheme;
    benchmark::DoNotOptimize(scheme.Partition(w.tree, cluster));
  }
}
BENCHMARK(BM_D2TreePartition);

void BM_RoutePlanning(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  D2TreeScheme scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(16);
  const Assignment a = scheme.Partition(w.tree, cluster);
  const D2TreeRouter router(w.tree, a, scheme.local_index(), 0.05);
  Rng rng(3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        router.PlanRoute(w.trace.records()[i], rng).visits.size());
    i = (i + 1) % w.trace.size();
  }
}
BENCHMARK(BM_RoutePlanning);

}  // namespace
}  // namespace d2tree

BENCHMARK_MAIN();
