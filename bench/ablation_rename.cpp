// Rename-cost ablation (the Sec. II claim): "the overhead of rehashing
// metadata when renaming an upper directory … is also considerable" for
// hash-based mapping, while subtree schemes keep placement keyed on
// structure, not pathnames.
//
// We rename (a) a deep directory and (b) a top-level directory, then
// re-derive every scheme's placement and count how many metadata records
// changed owner.
#include <cstdio>

#include "bench_util.h"
#include "d2tree/baselines/registry.h"
#include "d2tree/partition/partition.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

std::size_t RenameCost(const std::string& scheme_id, const Workload& base,
                       NodeId victim, std::size_t m) {
  const MdsCluster cluster = MdsCluster::Homogeneous(m);
  // Placement before the rename…
  Workload w = base;  // private copy: Rename mutates the tree
  const Assignment before = MakeScheme(scheme_id)->Partition(w.tree, cluster);
  // …the rename… (metadata only; structure and popularity untouched)
  w.tree.Rename(victim, "renamed-directory");
  // …and the placement every scheme derives afterwards.
  const Assignment after = MakeScheme(scheme_id)->Partition(w.tree, cluster);
  return CountMovedNodes(before, after);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation — rename cost per scheme (Sec. II claim)",
                     "Sec. II discussion");
  const Workload w = GenerateWorkload(DtrProfile(bench::BenchScale()));
  const std::size_t m = 16;

  // Victim (a): the biggest top-level directory; (b): one of its deep
  // descendants with a few hundred nodes.
  NodeId top = kInvalidNode;
  std::size_t top_size = 0;
  for (NodeId c : w.tree.node(w.tree.root()).children) {
    const std::size_t s = w.tree.SubtreeSize(c);
    if (s > top_size) {
      top = c;
      top_size = s;
    }
  }
  NodeId deep = kInvalidNode;
  std::size_t deep_size = 0;
  w.tree.VisitSubtree(top, [&](NodeId v) {
    if (w.tree.node(v).depth >= 4 && w.tree.node(v).is_directory()) {
      const std::size_t s = w.tree.SubtreeSize(v);
      if (s > deep_size && s < top_size / 2) {
        deep = v;
        deep_size = s;
      }
    }
  });

  std::printf("victims: top-level %s (%zu nodes), deep %s (%zu nodes); M=%zu\n\n",
              w.tree.PathOf(top).c_str(), top_size,
              w.tree.PathOf(deep).c_str(), deep_size, m);
  std::printf("%-16s %22s %22s\n", "scheme", "deep rename (moved)",
              "top-level rename (moved)");
  for (const auto& id : AllSchemeIds()) {
    std::printf("%-16s %22zu %22zu\n", id.c_str(),
                RenameCost(id, w, deep, m), RenameCost(id, w, top, m));
  }
  std::printf(
      "\nReading: pathname hashing (hash; static/dynamic near the cut) "
      "re-homes the\nrenamed subtree — D2-Tree and the structural "
      "linearizations move nothing.\n(Real DROP/AngleCut key on pathnames "
      "too; this implementation keys on\nstructure, so their rename cost is "
      "a lower bound.)\n");
  return 0;
}
