// Rename-cost ablation (the Sec. II claim): "the overhead of rehashing
// metadata when renaming an upper directory … is also considerable" for
// hash-based mapping, while subtree schemes keep placement keyed on
// structure, not pathnames.
//
// Two halves:
//   1. Placement ablation per scheme — rename a deep and a top-level
//      directory, re-derive every scheme's placement, count records that
//      changed owner. D2-Tree must move zero.
//   2. The transactional path (DESIGN.md §8) — drive the journaled
//      rename transaction on a live FunctionalCluster, in place and
//      cross-server, and report wall/simulated latency and the records a
//      cross-server re-home actually transfers. This is the half the
//      committed BENCH_trajectory.json ratchets.
//
//   ablation_rename [output.json]
//
// Exit code is nonzero if any transaction fails or the closing d2fsck
// audit is unclean, so the CI step doubles as a correctness gate.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "d2tree/baselines/registry.h"
#include "d2tree/durability/fsck.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/net/simnet.h"
#include "d2tree/partition/partition.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

using Clock = std::chrono::steady_clock;

std::size_t RenameCost(const std::string& scheme_id, const Workload& base,
                       NodeId victim, std::size_t m) {
  const MdsCluster cluster = MdsCluster::Homogeneous(m);
  // Placement before the rename…
  Workload w = base;  // private copy: Rename mutates the tree
  const Assignment before = MakeScheme(scheme_id)->Partition(w.tree, cluster);
  // …the rename… (metadata only; structure and popularity untouched)
  w.tree.Rename(victim, "renamed-directory");
  // …and the placement every scheme derives afterwards.
  const Assignment after = MakeScheme(scheme_id)->Partition(w.tree, cluster);
  return CountMovedNodes(before, after);
}

struct TxnStats {
  LatencyHistogram wall_us;
  LatencyHistogram sim_us;
  std::size_t count = 0;
  std::size_t failed = 0;
  std::size_t records_moved = 0;
};

void PrintTxnRow(const char* label, const TxnStats& s) {
  std::printf("%-12s %6zu %7zu %12.2f %12.2f %12.2f %14zu\n", label, s.count,
              s.failed, s.wall_us.mean(), s.wall_us.Quantile(0.99),
              s.sim_us.mean(), s.records_moved);
}

void AppendTxn(std::string& json, const char* key, const TxnStats& s,
               bool last) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "    \"%s\": {\"count\": %zu, \"failed\": %zu, "
      "\"wall_us_mean\": %.2f, \"wall_us_p99\": %.2f, "
      "\"sim_us_mean\": %.2f, \"records_moved\": %zu}%s\n",
      key, s.count, s.failed, s.wall_us.mean(), s.wall_us.Quantile(0.99),
      s.sim_us.mean(), s.records_moved, last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : nullptr;
  bench::PrintHeader("Ablation — rename cost per scheme (Sec. II claim)",
                     "Sec. II discussion");
  const Workload w = GenerateWorkload(DtrProfile(bench::BenchScale()));
  const std::size_t m = 16;

  // Victim (a): the biggest top-level directory; (b): one of its deep
  // descendants with a few hundred nodes.
  NodeId top = kInvalidNode;
  std::size_t top_size = 0;
  for (NodeId c : w.tree.node(w.tree.root()).children) {
    const std::size_t s = w.tree.SubtreeSize(c);
    if (s > top_size) {
      top = c;
      top_size = s;
    }
  }
  NodeId deep = kInvalidNode;
  std::size_t deep_size = 0;
  w.tree.VisitSubtree(top, [&](NodeId v) {
    if (w.tree.node(v).depth >= 4 && w.tree.node(v).is_directory()) {
      const std::size_t s = w.tree.SubtreeSize(v);
      if (s > deep_size && s < top_size / 2) {
        deep = v;
        deep_size = s;
      }
    }
  });

  std::printf("victims: top-level %s (%zu nodes), deep %s (%zu nodes); M=%zu\n\n",
              w.tree.PathOf(top).c_str(), top_size,
              w.tree.PathOf(deep).c_str(), deep_size, m);
  std::printf("%-16s %22s %22s\n", "scheme", "deep rename (moved)",
              "top-level rename (moved)");
  struct SchemeRow {
    std::string id;
    std::size_t deep_moved;
    std::size_t top_moved;
  };
  std::vector<SchemeRow> scheme_rows;
  for (const auto& id : AllSchemeIds()) {
    const SchemeRow row{id, RenameCost(id, w, deep, m),
                        RenameCost(id, w, top, m)};
    std::printf("%-16s %22zu %22zu\n", row.id.c_str(), row.deep_moved,
                row.top_moved);
    scheme_rows.push_back(row);
  }
  std::printf(
      "\nReading: pathname hashing (hash; static/dynamic near the cut) "
      "re-homes the\nrenamed subtree — D2-Tree and the structural "
      "linearizations move nothing.\n(Real DROP/AngleCut key on pathnames "
      "too; this implementation keys on\nstructure, so their rename cost is "
      "a lower bound.)\n");

  // ---- Transactional path: the journaled rename state machine against a
  // live cluster. Every local-layer subtree root is renamed in place,
  // then re-homed cross-server to the next alive MDS.
  const std::size_t mds_count = 4;
  auto net = std::make_shared<SimNetTransport>();
  FunctionalCluster cluster(w.tree, mds_count, {}, net);
  for (NodeId id = 0; id < w.tree.size(); id += 3)
    cluster.Stat(w.tree.PathOf(id));

  const auto& subtrees = cluster.scheme().layers().subtrees;
  const std::size_t rename_ops = subtrees.size();
  std::vector<std::string> prefix(rename_ops), current(rename_ops);
  for (std::size_t i = 0; i < rename_ops; ++i) {
    const std::string path = w.tree.PathOf(subtrees[i].root);
    prefix[i] = path.substr(0, path.find_last_of('/') + 1);
    current[i] = path.substr(path.find_last_of('/') + 1);
  }

  TxnStats in_place, cross;
  for (std::size_t i = 0; i < rename_ops; ++i) {
    const std::string next = "ip_" + std::to_string(i);
    const auto t0 = Clock::now();
    const auto r = cluster.Rename(prefix[i] + current[i], next);
    const double us =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - t0)
                                .count()) /
        1e3;
    ++in_place.count;
    if (r.status != MdsStatus::kOk) {
      ++in_place.failed;
      continue;
    }
    current[i] = next;
    in_place.wall_us.Record(us);
    in_place.sim_us.Record(static_cast<double>(r.sim_latency_us));
  }
  for (std::size_t i = 0; i < rename_ops; ++i) {
    const MdsId owner = cluster.scheme().subtree_owners()[i];
    MdsId dst = -1;
    for (MdsId step = 1; step < static_cast<MdsId>(cluster.mds_count());
         ++step) {
      const MdsId cand =
          (owner + step) % static_cast<MdsId>(cluster.mds_count());
      if (cluster.IsServerAlive(cand)) {
        dst = cand;
        break;
      }
    }
    if (dst < 0) continue;
    const std::string next = "xs_" + std::to_string(i);
    const auto t0 = Clock::now();
    const auto r = cluster.RenameTo(prefix[i] + current[i], next, dst);
    const double us =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - t0)
                                .count()) /
        1e3;
    ++cross.count;
    if (r.status != MdsStatus::kOk) {
      ++cross.failed;
      continue;
    }
    current[i] = next;
    cross.wall_us.Record(us);
    cross.sim_us.Record(static_cast<double>(r.sim_latency_us));
    cross.records_moved += r.records_moved;
  }

  const FsckReport fsck = FsckCluster(cluster);
  std::string consistency_error;
  const bool consistent = cluster.CheckConsistency(&consistency_error) &&
                          cluster.CheckPathIntegrity(&consistency_error) == 0;

  std::printf(
      "\nTransactional rename (journaled state machine, %zu subtrees, "
      "M=%zu):\n",
      rename_ops, mds_count);
  std::printf("%-12s %6s %7s %12s %12s %12s %14s\n", "mode", "ops", "failed",
              "wall mean us", "wall p99 us", "sim mean us", "records moved");
  PrintTxnRow("in-place", in_place);
  PrintTxnRow("cross-server", cross);
  std::printf("d2fsck after the storm: %s; audit: %s%s\n",
              fsck.clean() ? "CLEAN" : "UNCLEAN",
              consistent ? "CLEAN" : "BROKEN ",
              consistent ? "" : consistency_error.c_str());

  const bool ok = fsck.clean() && consistent && in_place.failed == 0 &&
                  cross.failed == 0 && cross.records_moved > 0;
  if (out_path != nullptr) {
    std::string json = "{\n  \"bench\": \"ablation_rename\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"tree_nodes\": %zu, \"subtrees\": %zu, \"mds\": %zu,\n",
                  w.tree.size(), rename_ops, mds_count);
    json += buf;
    json += "  \"schemes\": [\n";
    for (std::size_t i = 0; i < scheme_rows.size(); ++i) {
      std::snprintf(buf, sizeof(buf),
                    "    {\"scheme\": \"%s\", \"deep_moved\": %zu, "
                    "\"top_moved\": %zu}%s\n",
                    scheme_rows[i].id.c_str(), scheme_rows[i].deep_moved,
                    scheme_rows[i].top_moved,
                    i + 1 == scheme_rows.size() ? "" : ",");
      json += buf;
    }
    json += "  ],\n  \"txn\": {\n";
    AppendTxn(json, "in_place", in_place, false);
    AppendTxn(json, "cross_server", cross, false);
    std::snprintf(buf, sizeof(buf),
                  "    \"renames_committed\": %lu, \"fsck_clean\": %s\n",
                  static_cast<unsigned long>(cluster.renames_committed()),
                  ok ? "true" : "false");
    json += buf;
    json += "  }\n}\n";
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  }
  return ok ? 0 : 1;
}
