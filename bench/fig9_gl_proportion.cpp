// Fig. 9: "Balance performance as the MDS cluster is scaled" for
// global-layer proportions {0.001, 0.01, 0.10, 0.20} (D2-Tree only, DTR).
//
// Expected shape (Sec. VI-C): balance improves as the GL proportion grows —
// a bigger replicated crown both spreads more traffic and leaves finer
// subtrees for the mirror division. The paper normalizes its y-axis to
// ~75-105; we print the relative balance (each proportion's balance as a
// percentage of the best in its column) plus the raw Eq. (2) values.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "d2tree/core/d2tree.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

int main() {
  bench::PrintHeader("Fig. 9 — D2-Tree balance vs cluster size per GL proportion",
                     "Fig. 9");
  const Workload w = GenerateWorkload(DtrProfile(bench::BenchScale()));
  const std::vector<double> fractions{0.001, 0.01, 0.10, 0.20};
  const auto sizes = bench::ClusterSizes();

  std::vector<std::vector<double>> balance(fractions.size());
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    for (std::size_t m : sizes) {
      D2TreeConfig cfg;
      cfg.global_fraction = fractions[fi];
      D2TreeScheme scheme(cfg);
      const MdsCluster cluster = MdsCluster::Homogeneous(m);
      Assignment a = scheme.Partition(w.tree, cluster);
      for (int round = 0; round < 20; ++round)
        a = scheme.Rebalance(w.tree, cluster, a).assignment;
      balance[fi].push_back(ComputeBalance(w.tree, a, cluster).balance);
    }
  }

  std::printf("%-12s", "GL prop");
  for (std::size_t m : sizes) std::printf("   M=%-7zu", m);
  std::printf("\n");
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    std::printf("%-12.3f", fractions[fi]);
    for (std::size_t mi = 0; mi < sizes.size(); ++mi) {
      double best = 0.0;
      for (const auto& row : balance) best = std::max(best, row[mi]);
      std::printf(" %9.1f%%", 100.0 * balance[fi][mi] / best);
    }
    std::printf("   (raw ×1e-6:");
    for (std::size_t mi = 0; mi < sizes.size(); ++mi)
      std::printf(" %.1f", balance[fi][mi] * 1e6);
    std::printf(")\n");
  }
  std::printf(
      "\nShape check vs paper: the balance performance of D2-Tree becomes "
      "better\nas the global layer proportion increases.\n");
  return 0;
}
