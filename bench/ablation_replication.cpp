// Sec. VII extension: replication-degree threshold for the global layer.
//
// "While the MDS cluster is scaled, metadata consistency and performance
// degradation might be a challenge to D2-Tree with update intensive
// workloads … like setting a threshold to control the number of
// replications of global layer."
//
// Sweep the degree R ∈ {1, 2, 4, 8, 16, 32} at M = 32 on the update-heavy
// RA workload: update cost and lock hold shrink with R while query
// spreading (and therefore balance/throughput on read-heavy traffic)
// grows with R — the knob trades exactly what the paper predicts.
#include <cstdio>

#include "bench_util.h"
#include "d2tree/common/stats.h"
#include "d2tree/core/d2tree.h"
#include "d2tree/core/partial_replication.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/sim/cluster_sim.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

void SweepDataset(const TraceProfile& profile, std::size_t m) {
  const Workload w = GenerateWorkload(profile);
  D2TreeScheme scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(m);
  const Assignment assignment = scheme.Partition(w.tree, cluster);

  std::printf("\n--- %s, M=%zu ---\n", w.name.c_str(), m);
  std::printf("%8s %12s %14s %14s %14s\n", "degree", "throughput",
              "update-cost", "lock-wait(s)", "srv-ops CoV");
  for (std::size_t degree : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
    if (degree > m) continue;
    const PartialGlobalLayer partial(scheme.layers(), m, degree);
    SimConfig sim;
    sim.max_ops = static_cast<std::size_t>(50'000 * bench::BenchScale() / 0.25);
    sim.index_miss_prob = 0.05;
    const PartialD2TreeRouter router(w.tree, scheme.local_index(), partial,
                                     sim.index_miss_prob);
    const SimResult r = RunClusterSim(w.trace, router, m, sim);

    std::vector<double> ops(r.server_ops.begin(), r.server_ops.end());
    std::printf("%8zu %12.0f %14.1f %14.3f %14.3f\n", degree, r.throughput,
                partial.UpdateCost(w.tree), r.lock_wait_total,
                CoefficientOfVariation(ops));
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — global-layer replication degree (Sec. VII future work)",
      "Sec. VII discussion");
  const double scale = bench::BenchScale();
  SweepDataset(RaProfile(scale), 32);    // update-heavy: low R helps writes
  SweepDataset(DtrProfile(scale), 32);   // read-heavy: high R helps reads
  std::printf(
      "\nReading: update cost and lock wait grow with the degree; query "
      "spreading\n(lower per-server op CoV) improves with it. Read-heavy DTR "
      "peaks at a\nhigher degree than update-heavy RA — the threshold the "
      "paper's future\nwork proposes is a real knob.\n");
  return 0;
}
