// Shared helpers for the experiment binaries: table formatting and the
// standard dataset/cluster-size grids of Sec. VI.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "d2tree/trace/profiles.h"

namespace d2tree::bench {

/// Workload scale factor; override with D2TREE_BENCH_SCALE (default 0.25 —
/// node/record counts are scaled down from the full profiles so every
/// bench finishes in seconds; shapes are scale-invariant).
inline double BenchScale() {
  if (const char* env = std::getenv("D2TREE_BENCH_SCALE"))
    return std::strtod(env, nullptr);
  return 0.25;
}

/// The cluster sizes of Figs. 5–7 (x-axis: 5..30 MDSs).
inline std::vector<std::size_t> ClusterSizes() { return {5, 10, 15, 20, 25, 30}; }

/// The three datasets of Table I.
inline std::vector<TraceProfile> Datasets(double scale) {
  return {DtrProfile(scale), LmbeProfile(scale), RaProfile(scale)};
}

inline void PrintHeader(const char* title, const char* source) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s of the D2-Tree paper, ICDCS'18)\n", source);
  std::printf("================================================================\n");
}

inline void PrintRowLabel(const std::string& label) {
  std::printf("%-16s", label.c_str());
}

}  // namespace d2tree::bench
