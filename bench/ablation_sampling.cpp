// Theorem 3/4 validation (Sec. V): sampled mirror division vs the exact
// division — measured load error against the DKW-derived bounds.
//
// For each sample budget we allocate a large pending pool to a homogeneous
// cluster and report max_k |L_k/C_k − μ| / μ (the δ of Thm. 3) plus the
// Thm. 4 balance bound E[1/balance] < M/(M-1) δ²μ².
#include <cmath>
#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "d2tree/common/dkw.h"
#include "d2tree/common/rng.h"
#include "d2tree/core/allocator.h"

using namespace d2tree;

int main() {
  bench::PrintHeader("Ablation — sampled vs exact mirror division (Thm. 3/4)",
                     "Sec. V analysis");
  Rng rng(0xABCD);
  const std::size_t pool_size = 50'000;
  std::vector<Subtree> pool(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    pool[i].root = static_cast<NodeId>(i + 1);
    pool[i].popularity = rng.NextExponential(10.0);
    pool[i].node_count = 1;
  }
  double total = 0.0, lo = pool[0].popularity, hi = lo;
  for (const auto& s : pool) {
    total += s.popularity;
    lo = std::min(lo, s.popularity);
    hi = std::max(hi, s.popularity);
  }

  const std::size_t m = 8;
  const std::vector<double> caps(m, 1.0);
  const double mu = total / static_cast<double>(m);

  std::printf("pool H=%zu subtrees, M=%zu MDSs, popularity range [%.2f, %.2f]\n\n",
              pool_size, m, lo, hi);
  std::printf("%10s %14s %14s %16s\n", "samples", "max |dL|/mu",
              "1/balance", "Thm4 bound(d=err)");

  for (std::size_t samples : {0ul, 50ul, 200ul, 1000ul, 5000ul, 20000ul}) {
    // Average over seeds to estimate the expectation Thm. 3 speaks about.
    double worst_rel = 0.0, mean_var = 0.0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      Rng srng(1000 + t);
      const auto owners =
          samples == 0
              ? MirrorDivisionExact(pool, caps, SubtreeOrder::kPopularityDesc)
              : MirrorDivisionSampled(pool, caps, samples, srng);
      std::vector<double> loads(m, 0.0);
      for (std::size_t i = 0; i < pool.size(); ++i)
        loads[owners[i]] += pool[i].popularity;
      double var = 0.0;
      for (double l : loads) {
        worst_rel = std::max(worst_rel, std::fabs(l - mu) / mu);
        var += (l / 1.0 - mu) * (l / 1.0 - mu);
      }
      mean_var += var / static_cast<double>(m - 1);
    }
    mean_var /= trials;
    const double bound = Theorem4BalanceBound(m, worst_rel, mu);
    std::printf("%10s %14.4f %14.4e %16.4e%s\n",
                samples == 0 ? "exact" : std::to_string(samples).c_str(),
                worst_rel, mean_var, bound,
                mean_var <= bound ? "  OK" : "  VIOLATED");
  }
  std::printf(
      "\nShape check vs Sec. V: load error shrinks with the sample count and "
      "the\nmeasured balance variance stays below the Thm. 4 bound.\n");
  return 0;
}
