file(REMOVE_RECURSE
  "CMakeFiles/fig5_throughput.dir/fig5_throughput.cpp.o"
  "CMakeFiles/fig5_throughput.dir/fig5_throughput.cpp.o.d"
  "fig5_throughput"
  "fig5_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
