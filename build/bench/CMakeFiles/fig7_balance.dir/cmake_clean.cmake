file(REMOVE_RECURSE
  "CMakeFiles/fig7_balance.dir/fig7_balance.cpp.o"
  "CMakeFiles/fig7_balance.dir/fig7_balance.cpp.o.d"
  "fig7_balance"
  "fig7_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
