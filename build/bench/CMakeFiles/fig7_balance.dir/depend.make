# Empty dependencies file for fig7_balance.
# This may be replaced when dependencies are built.
