# Empty compiler generated dependencies file for fig9_gl_proportion.
# This may be replaced when dependencies are built.
