# Empty dependencies file for table2_breakdown.
# This may be replaced when dependencies are built.
