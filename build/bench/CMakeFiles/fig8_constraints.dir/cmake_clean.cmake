file(REMOVE_RECURSE
  "CMakeFiles/fig8_constraints.dir/fig8_constraints.cpp.o"
  "CMakeFiles/fig8_constraints.dir/fig8_constraints.cpp.o.d"
  "fig8_constraints"
  "fig8_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
