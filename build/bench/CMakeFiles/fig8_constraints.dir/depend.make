# Empty dependencies file for fig8_constraints.
# This may be replaced when dependencies are built.
