# Empty compiler generated dependencies file for example_scheme_comparison.
# This may be replaced when dependencies are built.
