# Empty compiler generated dependencies file for example_functional_cluster.
# This may be replaced when dependencies are built.
