file(REMOVE_RECURSE
  "CMakeFiles/example_functional_cluster.dir/functional_cluster.cpp.o"
  "CMakeFiles/example_functional_cluster.dir/functional_cluster.cpp.o.d"
  "example_functional_cluster"
  "example_functional_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_functional_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
