file(REMOVE_RECURSE
  "CMakeFiles/example_trace_replay_sim.dir/trace_replay_sim.cpp.o"
  "CMakeFiles/example_trace_replay_sim.dir/trace_replay_sim.cpp.o.d"
  "example_trace_replay_sim"
  "example_trace_replay_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_trace_replay_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
