# Empty dependencies file for example_trace_replay_sim.
# This may be replaced when dependencies are built.
