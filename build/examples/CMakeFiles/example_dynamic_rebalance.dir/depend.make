# Empty dependencies file for example_dynamic_rebalance.
# This may be replaced when dependencies are built.
