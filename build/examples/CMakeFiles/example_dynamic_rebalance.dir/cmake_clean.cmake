file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_rebalance.dir/dynamic_rebalance.cpp.o"
  "CMakeFiles/example_dynamic_rebalance.dir/dynamic_rebalance.cpp.o.d"
  "example_dynamic_rebalance"
  "example_dynamic_rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
