
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/d2tree/baselines/anglecut.cpp" "src/CMakeFiles/d2tree.dir/d2tree/baselines/anglecut.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/baselines/anglecut.cpp.o.d"
  "/root/repo/src/d2tree/baselines/drop.cpp" "src/CMakeFiles/d2tree.dir/d2tree/baselines/drop.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/baselines/drop.cpp.o.d"
  "/root/repo/src/d2tree/baselines/dynamic_subtree.cpp" "src/CMakeFiles/d2tree.dir/d2tree/baselines/dynamic_subtree.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/baselines/dynamic_subtree.cpp.o.d"
  "/root/repo/src/d2tree/baselines/hash_mapping.cpp" "src/CMakeFiles/d2tree.dir/d2tree/baselines/hash_mapping.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/baselines/hash_mapping.cpp.o.d"
  "/root/repo/src/d2tree/baselines/registry.cpp" "src/CMakeFiles/d2tree.dir/d2tree/baselines/registry.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/baselines/registry.cpp.o.d"
  "/root/repo/src/d2tree/baselines/static_subtree.cpp" "src/CMakeFiles/d2tree.dir/d2tree/baselines/static_subtree.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/baselines/static_subtree.cpp.o.d"
  "/root/repo/src/d2tree/common/dkw.cpp" "src/CMakeFiles/d2tree.dir/d2tree/common/dkw.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/common/dkw.cpp.o.d"
  "/root/repo/src/d2tree/common/histogram.cpp" "src/CMakeFiles/d2tree.dir/d2tree/common/histogram.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/common/histogram.cpp.o.d"
  "/root/repo/src/d2tree/common/path_util.cpp" "src/CMakeFiles/d2tree.dir/d2tree/common/path_util.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/common/path_util.cpp.o.d"
  "/root/repo/src/d2tree/common/random_walk.cpp" "src/CMakeFiles/d2tree.dir/d2tree/common/random_walk.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/common/random_walk.cpp.o.d"
  "/root/repo/src/d2tree/common/rng.cpp" "src/CMakeFiles/d2tree.dir/d2tree/common/rng.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/common/rng.cpp.o.d"
  "/root/repo/src/d2tree/common/stats.cpp" "src/CMakeFiles/d2tree.dir/d2tree/common/stats.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/common/stats.cpp.o.d"
  "/root/repo/src/d2tree/common/zipf.cpp" "src/CMakeFiles/d2tree.dir/d2tree/common/zipf.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/common/zipf.cpp.o.d"
  "/root/repo/src/d2tree/core/allocator.cpp" "src/CMakeFiles/d2tree.dir/d2tree/core/allocator.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/core/allocator.cpp.o.d"
  "/root/repo/src/d2tree/core/d2tree.cpp" "src/CMakeFiles/d2tree.dir/d2tree/core/d2tree.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/core/d2tree.cpp.o.d"
  "/root/repo/src/d2tree/core/global_layer.cpp" "src/CMakeFiles/d2tree.dir/d2tree/core/global_layer.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/core/global_layer.cpp.o.d"
  "/root/repo/src/d2tree/core/layers.cpp" "src/CMakeFiles/d2tree.dir/d2tree/core/layers.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/core/layers.cpp.o.d"
  "/root/repo/src/d2tree/core/local_index.cpp" "src/CMakeFiles/d2tree.dir/d2tree/core/local_index.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/core/local_index.cpp.o.d"
  "/root/repo/src/d2tree/core/monitor.cpp" "src/CMakeFiles/d2tree.dir/d2tree/core/monitor.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/core/monitor.cpp.o.d"
  "/root/repo/src/d2tree/core/partial_replication.cpp" "src/CMakeFiles/d2tree.dir/d2tree/core/partial_replication.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/core/partial_replication.cpp.o.d"
  "/root/repo/src/d2tree/core/splitter.cpp" "src/CMakeFiles/d2tree.dir/d2tree/core/splitter.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/core/splitter.cpp.o.d"
  "/root/repo/src/d2tree/mds/cluster.cpp" "src/CMakeFiles/d2tree.dir/d2tree/mds/cluster.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/mds/cluster.cpp.o.d"
  "/root/repo/src/d2tree/mds/server.cpp" "src/CMakeFiles/d2tree.dir/d2tree/mds/server.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/mds/server.cpp.o.d"
  "/root/repo/src/d2tree/mds/store.cpp" "src/CMakeFiles/d2tree.dir/d2tree/mds/store.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/mds/store.cpp.o.d"
  "/root/repo/src/d2tree/metrics/metrics.cpp" "src/CMakeFiles/d2tree.dir/d2tree/metrics/metrics.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/metrics/metrics.cpp.o.d"
  "/root/repo/src/d2tree/nstree/builder.cpp" "src/CMakeFiles/d2tree.dir/d2tree/nstree/builder.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/nstree/builder.cpp.o.d"
  "/root/repo/src/d2tree/nstree/tree.cpp" "src/CMakeFiles/d2tree.dir/d2tree/nstree/tree.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/nstree/tree.cpp.o.d"
  "/root/repo/src/d2tree/partition/partition.cpp" "src/CMakeFiles/d2tree.dir/d2tree/partition/partition.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/partition/partition.cpp.o.d"
  "/root/repo/src/d2tree/sim/cluster_sim.cpp" "src/CMakeFiles/d2tree.dir/d2tree/sim/cluster_sim.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/sim/cluster_sim.cpp.o.d"
  "/root/repo/src/d2tree/sim/experiment.cpp" "src/CMakeFiles/d2tree.dir/d2tree/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/sim/experiment.cpp.o.d"
  "/root/repo/src/d2tree/sim/route.cpp" "src/CMakeFiles/d2tree.dir/d2tree/sim/route.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/sim/route.cpp.o.d"
  "/root/repo/src/d2tree/trace/profiles.cpp" "src/CMakeFiles/d2tree.dir/d2tree/trace/profiles.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/trace/profiles.cpp.o.d"
  "/root/repo/src/d2tree/trace/trace.cpp" "src/CMakeFiles/d2tree.dir/d2tree/trace/trace.cpp.o" "gcc" "src/CMakeFiles/d2tree.dir/d2tree/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
