# Empty compiler generated dependencies file for d2tree.
# This may be replaced when dependencies are built.
