file(REMOVE_RECURSE
  "libd2tree.a"
)
