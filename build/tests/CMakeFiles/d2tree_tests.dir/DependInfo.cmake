
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core_alloc.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_core_alloc.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_core_alloc.cpp.o.d"
  "/root/repo/tests/test_core_scheme.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_core_scheme.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_core_scheme.cpp.o.d"
  "/root/repo/tests/test_core_split.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_core_split.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_core_split.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_mds_cluster.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_mds_cluster.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_mds_cluster.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_nstree.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_nstree.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_nstree.cpp.o.d"
  "/root/repo/tests/test_partial_replication.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_partial_replication.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_partial_replication.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/d2tree_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/d2tree_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/d2tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
