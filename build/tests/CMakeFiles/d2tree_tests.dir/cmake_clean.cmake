file(REMOVE_RECURSE
  "CMakeFiles/d2tree_tests.dir/test_baselines.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_baselines.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_common.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_core_alloc.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_core_alloc.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_core_scheme.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_core_scheme.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_core_split.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_core_split.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_edge_cases.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_edge_cases.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_integration.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_mds_cluster.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_mds_cluster.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_metrics.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_metrics.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_nstree.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_nstree.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_partial_replication.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_partial_replication.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_sim.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/d2tree_tests.dir/test_trace.cpp.o"
  "CMakeFiles/d2tree_tests.dir/test_trace.cpp.o.d"
  "d2tree_tests"
  "d2tree_tests.pdb"
  "d2tree_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2tree_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
