# Empty dependencies file for d2tree_tests.
# This may be replaced when dependencies are built.
