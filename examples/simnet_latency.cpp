// SimNet latency smoke: a small concurrent replay over the simulated
// network, with a seeded drop+partition fault schedule, reporting per-op-
// class latency percentiles as JSON — the CI artifact (BENCH_latency.json)
// that tracks the message layer's latency shape over time.
//
//   example_simnet_latency [output.json]
//
// Exit code is nonzero if the final consistency audit fails, so the CI
// step doubles as a correctness gate.
#include <cstdio>
#include <memory>
#include <string>

#include "d2tree/mds/cluster.h"
#include "d2tree/net/simnet.h"
#include "d2tree/sim/concurrent_replay.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

void AppendClass(std::string& json, const char* name,
                 const LatencyHistogram& h, std::size_t ops, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"class\": \"%s\", \"ops\": %zu, \"mean_us\": %.2f, "
                "\"p50_us\": %.2f, \"p99_us\": %.2f, \"max_us\": %.2f}%s\n",
                name, ops, h.mean(), h.Quantile(0.5), h.Quantile(0.99),
                h.max(), last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_latency.json";

  const Workload w = GenerateWorkload(LmbeProfile(0.1));
  const std::size_t mds_count = 4;
  auto transport = std::make_shared<SimNetTransport>();
  FunctionalCluster cluster(w.tree, mds_count, {}, transport);

  ConcurrentReplayConfig cfg;
  cfg.thread_count = 4;
  cfg.ops_per_thread = 2'000;
  FaultMix mix;
  mix.kills = 1;
  mix.revives = 1;
  mix.server_additions = 0;
  mix.link_drops = 1;
  mix.monitor_partitions = 1;
  cfg.fault_schedule = FaultSchedule::Random(
      /*seed=*/0xBE7C5, mds_count, cfg.thread_count * cfg.ops_per_thread, mix);
  std::printf("Fault schedule:\n%s\n", cfg.fault_schedule.ToString().c_str());

  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);

  std::string json = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"bench\": \"simnet_latency\",\n"
                "  \"mds\": %zu, \"threads\": %zu, \"ops\": %zu,\n"
                "  \"messages_sent\": %lu, \"messages_dropped\": %lu,\n"
                "  \"heartbeats_lost\": %lu, \"failover_redirects\": %lu,\n"
                "  \"consistent\": %s,\n",
                mds_count, cfg.thread_count, r.total_ops,
                static_cast<unsigned long>(r.messages_sent),
                static_cast<unsigned long>(r.messages_dropped),
                static_cast<unsigned long>(r.heartbeats_lost),
                static_cast<unsigned long>(r.failover_redirects),
                r.consistent ? "true" : "false");
  json += buf;
  json += "  \"latency_by_class\": [\n";
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    AppendClass(json, OpClassName(static_cast<OpClass>(c)),
                r.class_latency[c], r.class_ops[c], c + 1 == kOpClassCount);
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);

  std::printf("%s", json.c_str());
  std::printf("wrote %s; consistency: %s%s\n", out_path,
              r.consistent ? "CLEAN" : "BROKEN: ",
              r.consistent ? "" : r.consistency_error.c_str());
  return r.consistent ? 0 : 1;
}
