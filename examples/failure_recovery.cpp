// Failure/recovery demo: client threads replay a Zipf workload against a
// live FunctionalCluster while a seeded FaultSchedule crashes, revives
// and adds MDSs mid-run. Prints the schedule, the failover/recovery
// metrics, and the final consistency verdict — the same flow the
// fault-stress suite asserts on (see EXPERIMENTS.md, "Failure
// experiments").
//
//   example_failure_recovery [mds] [threads] [ops/thread] [kills]
//                            [revives] [adds] [schedule-seed] [crashes]
//
// With [crashes] > 0 the schedule also arms whole-service crashes at
// seeded WAL sites (each paired with a recovery) — see DESIGN.md §7.
#include <cstdio>
#include <cstdlib>

#include "d2tree/mds/cluster.h"
#include "d2tree/sim/concurrent_replay.h"
#include "d2tree/sim/fault_injector.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

[[noreturn]] void Usage(const char* bad) {
  std::fprintf(stderr,
               "invalid argument: %s\n"
               "usage: example_failure_recovery [mds >= 2] [threads] "
               "[ops/thread] [kills] [revives] [adds] [schedule-seed] "
               "[crashes]\n",
               bad);
  std::exit(2);
}

std::size_t ParseCount(const char* s, std::size_t min) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || v < min) Usage(s);
  return static_cast<std::size_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t mds_count = argc > 1 ? ParseCount(argv[1], 2) : 4;
  ConcurrentReplayConfig cfg;
  if (argc > 2) cfg.thread_count = ParseCount(argv[2], 1);
  if (argc > 3) cfg.ops_per_thread = ParseCount(argv[3], 1);
  FaultMix mix;  // defaults: 2 kills, 1 revive, 1 addition
  if (argc > 4) mix.kills = ParseCount(argv[4], 0);
  if (argc > 5) mix.revives = ParseCount(argv[5], 0);
  if (argc > 6) mix.server_additions = ParseCount(argv[6], 0);
  const std::uint64_t schedule_seed =
      argc > 7 ? ParseCount(argv[7], 0) : 0x5EED;
  if (argc > 8) mix.crashes = ParseCount(argv[8], 0);

  const std::size_t total_ops = cfg.thread_count * cfg.ops_per_thread;
  cfg.fault_schedule =
      FaultSchedule::Random(schedule_seed, mds_count, total_ops, mix);

  const Workload w = GenerateWorkload(DtrProfile(0.1));
  FunctionalCluster cluster(w.tree, mds_count);
  std::printf(
      "Failure replay: %zu MDSs, %zu client threads x %zu ops, "
      "schedule seed 0x%llX\n",
      mds_count, cfg.thread_count, cfg.ops_per_thread,
      static_cast<unsigned long long>(schedule_seed));
  std::printf("Namespace: %s, %zu nodes, GL %zu nodes\n", w.name.c_str(),
              w.tree.size(), cluster.scheme().split().global_layer.size());
  std::printf("Fault schedule (fires on the aggregate op counter):\n%s",
              cfg.fault_schedule.ToString().c_str());

  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);

  std::printf("\nAggregate:\n");
  std::printf("  ops         : %zu ok, %zu forwarded, %zu failed "
              "(%zu in dead-server windows)\n",
              r.total_ok, r.total_forwarded, r.total_failed,
              r.total_unavailable);
  std::printf("  wall time   : %.3f s  (%.0f ops/s)\n", r.wall_seconds,
              r.throughput_ops_per_sec);
  std::printf("  faults      : %zu applied, %zu skipped\n", r.faults_applied,
              r.faults_skipped);
  std::printf("  failover    : %lu client redirects off dead servers\n",
              static_cast<unsigned long>(r.failover_redirects));
  std::printf("  recovery    : %lu records rebuilt from the backing store\n",
              static_cast<unsigned long>(r.recovered_records));
  std::printf("  adjustment  : %zu rounds, %zu records migrated\n",
              r.adjustment_rounds_run, r.migrated_records);
  std::printf("  membership  : %zu servers, %zu alive\n", r.final_mds_count,
              r.final_alive_count);
  std::printf("  retries     : %lu control re-sends, %lu deadline-exceeded\n",
              static_cast<unsigned long>(r.retries),
              static_cast<unsigned long>(r.deadline_exceeded));
  std::printf("  durability  : %lu crashes tripped, %lu recoveries, "
              "%lu duplicate pulls dropped\n",
              static_cast<unsigned long>(r.crashes_injected),
              static_cast<unsigned long>(r.recoveries_completed),
              static_cast<unsigned long>(r.duplicate_pulls_dropped));
  if (r.recovered_before_audit)
    std::printf("  WAL replay  : %zu records (service was down at run end)\n",
                r.wal_records_replayed);
  std::printf("  consistency : %s%s\n", r.consistent ? "CLEAN" : "BROKEN: ",
              r.consistent ? "" : r.consistency_error.c_str());
  return r.consistent ? 0 : 1;
}
