// Crash-recovery smoke: trip a crash at every named site (torn and intact
// WAL tails), Recover(), and report recovery wall time percentiles plus
// WAL replay volume against the subtree count as JSON — the CI artifact
// (BENCH_recovery.json) that tracks recovery cost over time.
//
//   example_crash_recovery [output.json] [reps]
//
// Every recovery is audited with d2fsck; exit code is nonzero if any
// audit fails, so the CI step doubles as a correctness gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/fsck.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

using Clock = std::chrono::steady_clock;

MdsId VictimWithSubtrees(const FunctionalCluster& cluster) {
  const auto owners = cluster.scheme().subtree_owners();
  for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k) {
    std::size_t held = 0;
    for (const MdsId o : owners) held += (o == k);
    if (held > 0) return k;
  }
  return -1;
}

struct SiteTally {
  std::size_t recoveries = 0;
  std::size_t rolled_forward = 0;
  std::size_t rolled_back = 0;
  std::size_t torn_tails = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
  const std::size_t reps =
      argc > 2 ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
               : 3;
  const std::size_t mds_count = 4;

  const Workload w = GenerateWorkload(DtrProfile(0.05));
  LatencyHistogram recovery_wall_us;
  SiteTally per_site[kCrashSiteCount];
  std::size_t replayed_min = SIZE_MAX, replayed_max = 0, replayed_sum = 0;
  std::size_t recoveries = 0;
  std::size_t subtree_count = 0;
  bool all_clean = true;
  std::uint64_t mtime = 0;

  for (std::size_t rep = 0; rep < reps; ++rep) {
    FunctionalCluster cluster(w.tree, mds_count);
    // Current component name of every subtree root a rename touched (the
    // cluster's tree copy drifts from `w.tree` as renames commit).
    std::unordered_map<NodeId, std::string> renamed_roots;
    subtree_count = cluster.scheme().layers().subtrees.size();
    for (NodeId id = 0; id < w.tree.size(); id += 3)
      cluster.Stat(w.tree.PathOf(id));

    for (std::size_t s = 0; s < kCrashSiteCount; ++s) {
      const auto site = static_cast<CrashSite>(s);
      const bool rename_site = s >= kFirstRenameCrashSite;
      for (const bool torn : {false, true}) {
        MdsId victim = -1;
        NodeId rn_root = kInvalidNode;
        std::string rn_prefix, rn_name;
        if (site != CrashSite::kAfterGlBump && !rename_site) {
          victim = VictimWithSubtrees(cluster);
          if (victim < 0) continue;
        }
        if (rename_site) {
          // Rename protocol sites are reached through the rename
          // transaction, not the adjustment round: re-home some subtree
          // whose owner is alive to another alive server. Subtree-root
          // component names drift as renames commit, so resolve through
          // the tracker; the GL prefix above a root never changes here.
          const auto owners = cluster.scheme().subtree_owners();
          const auto& subtrees = cluster.scheme().layers().subtrees;
          std::string path;
          MdsId src = -1;
          for (std::size_t i = 0; i < subtrees.size() && i < owners.size();
               ++i) {
            if (!cluster.IsServerAlive(owners[i])) continue;
            const std::string orig = w.tree.PathOf(subtrees[i].root);
            rn_root = subtrees[i].root;
            rn_prefix = orig.substr(0, orig.find_last_of('/') + 1);
            const auto it = renamed_roots.find(rn_root);
            path = it == renamed_roots.end() ? orig : rn_prefix + it->second;
            src = owners[i];
            break;
          }
          MdsId dst = -1;
          for (MdsId k = 0; k < static_cast<MdsId>(cluster.mds_count()); ++k)
            if (k != src && cluster.IsServerAlive(k)) {
              dst = k;
              break;
            }
          if (path.empty() || dst < 0) continue;
          rn_name = "bench_rn_" + std::to_string(++mtime);
          cluster.ArmCrash(site, torn);
          cluster.RenameTo(path, rn_name, dst);
        } else {
          cluster.ArmCrash(site, torn);
          if (site == CrashSite::kAfterGlBump) {
            cluster.Update("/", ++mtime);
          } else {
            cluster.SetHeartbeatSuppressed(victim, true);
            cluster.RunAdjustmentRound();
          }
        }
        if (!cluster.crashed()) {
          std::fprintf(stderr, "site %s never tripped\n", CrashSiteName(site));
          all_clean = false;
          continue;
        }

        const auto t0 = Clock::now();
        const auto recovery = cluster.Recover();
        const double wall_us =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - t0)
                    .count()) /
            1e3;
        if (victim >= 0) cluster.SetHeartbeatSuppressed(victim, false);

        recovery_wall_us.Record(wall_us);
        ++recoveries;
        SiteTally& tally = per_site[s];
        ++tally.recoveries;
        tally.rolled_forward +=
            recovery.migrations_rolled_forward + recovery.renames_rolled_forward;
        tally.rolled_back +=
            recovery.migrations_rolled_back + recovery.renames_rolled_back;
        tally.torn_tails += recovery.torn_tail_detected ? 1 : 0;
        if (rn_root != kInvalidNode &&
            cluster.Stat(rn_prefix + rn_name).status == MdsStatus::kOk) {
          renamed_roots[rn_root] = rn_name;  // rolled forward or committed
        }
        replayed_min = std::min(replayed_min, recovery.wal_records_replayed);
        replayed_max = std::max(replayed_max, recovery.wal_records_replayed);
        replayed_sum += recovery.wal_records_replayed;

        const FsckReport fsck = FsckCluster(cluster);
        if (!fsck.clean()) {
          std::fprintf(stderr, "d2fsck UNCLEAN after %s%s:\n%s",
                       CrashSiteName(site), torn ? " (torn)" : "",
                       FormatFsckReport(fsck).c_str());
          all_clean = false;
        }
        cluster.RunAdjustmentRound();  // stabilize before the next site
      }
    }
  }

  std::string json = "{\n";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"bench\": \"crash_recovery\",\n"
      "  \"mds\": %zu, \"tree_nodes\": %zu, \"subtrees\": %zu,\n"
      "  \"recoveries\": %zu,\n"
      "  \"recovery_wall_us\": {\"mean\": %.2f, \"p50\": %.2f, "
      "\"p99\": %.2f, \"max\": %.2f},\n"
      "  \"wal_records_replayed\": {\"min\": %zu, \"mean\": %.1f, "
      "\"max\": %zu},\n"
      "  \"fsck_clean\": %s,\n",
      mds_count, w.tree.size(), subtree_count, recoveries,
      recovery_wall_us.mean(), recovery_wall_us.Quantile(0.5),
      recovery_wall_us.Quantile(0.99), recovery_wall_us.max(),
      recoveries > 0 ? replayed_min : 0,
      recoveries > 0 ? static_cast<double>(replayed_sum) /
                           static_cast<double>(recoveries)
                     : 0.0,
      replayed_max, all_clean ? "true" : "false");
  json += buf;
  json += "  \"per_site\": [\n";
  for (std::size_t s = 0; s < kCrashSiteCount; ++s) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"site\": \"%s\", \"recoveries\": %zu, "
                  "\"rolled_forward\": %zu, \"rolled_back\": %zu, "
                  "\"torn_tails\": %zu}%s\n",
                  CrashSiteName(static_cast<CrashSite>(s)),
                  per_site[s].recoveries, per_site[s].rolled_forward,
                  per_site[s].rolled_back, per_site[s].torn_tails,
                  s + 1 == kCrashSiteCount ? "" : ",");
    json += buf;
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);

  std::printf("%s", json.c_str());
  std::printf("wrote %s; %zu recoveries, d2fsck %s\n", out_path, recoveries,
              all_clean ? "CLEAN" : "UNCLEAN");
  return all_clean && recoveries > 0 ? 0 : 1;
}
