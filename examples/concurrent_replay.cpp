// Concurrent replay demo: real client threads hammer a live
// FunctionalCluster with a Zipf workload while dynamic adjustment migrates
// subtrees underneath them, then the consistency audit has the last word.
//
//   example_concurrent_replay [mds] [threads] [ops/thread] [theta] [upd-frac]
//                             [transport]
//
// transport = inproc (default: zero-latency direct delivery) or simnet
// (seeded per-link latency model — per-op-class latency percentiles become
// meaningful).
//
// This is the binary to run under the sanitizer presets
// (-DD2TREE_SANITIZE=thread|address) — see EXPERIMENTS.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "d2tree/mds/cluster.h"
#include "d2tree/net/simnet.h"
#include "d2tree/sim/concurrent_replay.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

[[noreturn]] void Usage(const char* bad) {
  std::fprintf(stderr,
               "invalid argument: %s\n"
               "usage: example_concurrent_replay [mds >= 1] [threads] "
               "[ops/thread] [theta] [upd-frac 0..1] [inproc|simnet]\n",
               bad);
  std::exit(2);
}

std::size_t ParseCount(const char* s, bool allow_zero) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || (!allow_zero && v == 0)) Usage(s);
  return static_cast<std::size_t>(v);
}

double ParseFraction(const char* s, double lo, double hi) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || v < lo || v > hi) Usage(s);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t mds_count =
      argc > 1 ? ParseCount(argv[1], /*allow_zero=*/false) : 4;
  ConcurrentReplayConfig cfg;
  if (argc > 2) cfg.thread_count = ParseCount(argv[2], /*allow_zero=*/true);
  if (argc > 3) cfg.ops_per_thread = ParseCount(argv[3], /*allow_zero=*/true);
  if (argc > 4) cfg.zipf_theta = ParseFraction(argv[4], 0.0, 10.0);
  if (argc > 5) cfg.update_fraction = ParseFraction(argv[5], 0.0, 1.0);
  bool simnet = false;
  if (argc > 6) {
    if (std::strcmp(argv[6], "simnet") == 0)
      simnet = true;
    else if (std::strcmp(argv[6], "inproc") != 0)
      Usage(argv[6]);
  }

  const Workload w = GenerateWorkload(LmbeProfile(0.1));
  std::shared_ptr<Transport> transport;
  if (simnet) transport = std::make_shared<SimNetTransport>();
  FunctionalCluster cluster(w.tree, mds_count, {}, transport);
  std::printf(
      "Concurrent replay: %zu MDSs, %zu client threads x %zu ops "
      "(zipf %.2f, %.0f%% updates, %.0f%% stale entries, %s transport)\n",
      mds_count, cfg.thread_count, cfg.ops_per_thread, cfg.zipf_theta,
      100 * cfg.update_fraction, 100 * cfg.stale_entry_fraction,
      simnet ? "simnet" : "inproc");
  std::printf("Namespace: %s, %zu nodes, GL %zu nodes\n", w.name.c_str(),
              w.tree.size(), cluster.scheme().split().global_layer.size());

  const ConcurrentReplayReport r = RunConcurrentReplay(cluster, w.tree, cfg);

  std::printf("\nPer-thread latency (µs):\n");
  for (std::size_t t = 0; t < r.per_thread.size(); ++t) {
    const ThreadReplayStats& s = r.per_thread[t];
    std::printf(
        "  thread %zu: %6zu ops  ok=%zu fwd=%zu fail=%zu   "
        "mean=%7.1f p50=%7.1f p99=%8.1f max=%9.1f\n",
        t, s.ops, s.ok, s.forwarded, s.failed, s.latency.mean(),
        s.latency.Quantile(0.5), s.latency.Quantile(0.99), s.latency.max());
  }

  std::printf("\nAggregate:\n");
  std::printf("  ops         : %zu ok, %zu forwarded, %zu failed\n",
              r.total_ok, r.total_forwarded, r.total_failed);
  std::printf("  wall time   : %.3f s  (%.0f ops/s)\n", r.wall_seconds,
              r.throughput_ops_per_sec);
  std::printf("  latency     : mean %.1f µs, p99 %.1f µs\n", r.latency.mean(),
              r.latency.Quantile(0.99));
  std::printf("  messages    : %lu sent, %lu dropped, %lu heartbeats lost\n",
              static_cast<unsigned long>(r.messages_sent),
              static_cast<unsigned long>(r.messages_dropped),
              static_cast<unsigned long>(r.heartbeats_lost));
  std::printf("\nSimulated network latency by op class (µs):\n");
  for (std::size_t c = 0; c < kOpClassCount; ++c) {
    const LatencyHistogram& h = r.class_latency[c];
    if (h.count() == 0) {
      std::printf("  %-10s:       no ops\n",
                  OpClassName(static_cast<OpClass>(c)));
      continue;
    }
    std::printf("  %-10s: %7lu ops  mean=%7.1f p50=%7.1f p99=%8.1f\n",
                OpClassName(static_cast<OpClass>(c)),
                static_cast<unsigned long>(h.count()), h.mean(),
                h.Quantile(0.5), h.Quantile(0.99));
  }
  std::printf("\n");
  std::printf("  forwards    : %lu (server-side)\n",
              static_cast<unsigned long>(r.forwards));
  std::printf("  GL updates  : %lu, lock wait %.3f s total\n",
              static_cast<unsigned long>(r.gl_updates),
              r.gl_lock_wait_seconds);
  std::printf("  adjustment  : %zu rounds, %zu records migrated under load\n",
              r.adjustment_rounds_run, r.migrated_records);
  std::printf("  consistency : %s%s\n", r.consistent ? "CLEAN" : "BROKEN: ",
              r.consistent ? "" : r.consistency_error.c_str());
  return r.consistent && r.total_failed == 0 ? 0 : 1;
}
