// Trace replay on the simulated cluster: generates the LMBE-like dataset,
// partitions it with D2-Tree, and replays the trace through the
// discrete-event cluster simulator with 200 closed-loop clients — a
// miniature of the paper's EC2 evaluation for one scheme/dataset pair.
#include <cstdio>

#include "d2tree/core/d2tree.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/sim/cluster_sim.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

int main(int argc, char** argv) {
  const std::size_t mds_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const Workload w = GenerateWorkload(LmbeProfile(0.25));
  std::printf("Dataset %s: %zu nodes, %zu records (max depth %u)\n",
              w.name.c_str(), w.tree.size(), w.trace.size(),
              w.tree.MaxDepth());

  D2TreeScheme scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(mds_count);
  const Assignment assignment = scheme.Partition(w.tree, cluster);
  std::printf("D2-Tree: GL=%zu nodes (%.2f%%), %zu subtrees, %zu inter nodes\n",
              scheme.split().global_layer.size(),
              100.0 * static_cast<double>(scheme.split().global_layer.size()) /
                  static_cast<double>(w.tree.size()),
              scheme.layers().subtrees.size(),
              scheme.layers().inter_nodes.size());

  SimConfig sim;
  sim.max_ops = 80'000;
  sim.index_miss_prob = 0.05;
  const D2TreeRouter router(w.tree, assignment, scheme.local_index(),
                            sim.index_miss_prob);
  const SimResult r = RunClusterSim(w.trace, router, mds_count, sim);

  std::printf("\nCluster simulation (%zu MDSs, %zu clients):\n", mds_count,
              sim.client_count);
  std::printf("  completed ops : %zu\n", r.completed_ops);
  std::printf("  throughput    : %.0f ops/s\n", r.throughput);
  std::printf("  mean latency  : %.3f ms   p99: %.3f ms\n",
              r.mean_latency * 1e3, r.p99_latency * 1e3);
  std::printf("  max server utilization: %.1f%%\n", 100 * r.MaxUtilization());
  std::printf("  GL lock wait  : %.3f s total\n", r.lock_wait_total);

  const BalanceReport bal = ComputeBalance(w.tree, assignment, cluster);
  std::printf("  balance (Eq.2): %.3e, mu=%.1f\n", bal.balance, bal.mu);
  const LocalityReport loc = ComputeLocality(w.tree, assignment);
  std::printf("  locality (Eq.1): %.3e\n", loc.locality);
  return 0;
}
