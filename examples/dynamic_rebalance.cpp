// Dynamic adjustment demo: a hotspot shift overloads one MDS; heartbeats
// reach the Monitor, overloaded servers park subtrees in the pending pool,
// light servers pull by mirror division — and the cluster re-balances
// without touching the global layer (Sec. IV-B, Dynamic-Adjustment).
#include <cstdio>

#include "d2tree/core/d2tree.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

namespace {

void PrintLoads(const char* label, const NamespaceTree& tree,
                const Assignment& a, const MdsCluster& cluster) {
  const auto loads = ComputeLoads(tree, a);
  const BalanceReport bal = ComputeBalanceFromLoads(loads, cluster);
  std::printf("%s  (balance=%.3e)\n", label, bal.balance);
  for (std::size_t k = 0; k < loads.size(); ++k) {
    std::printf("  MDS %zu: %8.0f  ", k, loads[k]);
    const int bars = static_cast<int>(60.0 * loads[k] / (bal.mu * 2.0));
    for (int b = 0; b < bars && b < 70; ++b) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Workload w = GenerateWorkload(RaProfile(0.1));
  D2TreeScheme scheme;
  const MdsCluster cluster = MdsCluster::Homogeneous(6);
  Assignment a = scheme.Partition(w.tree, cluster);

  std::printf("Initial partition: %zu subtrees over %zu MDSs\n\n",
              scheme.layers().subtrees.size(), cluster.size());
  PrintLoads("Before hotspot:", w.tree, a, cluster);

  // Hotspot shift: all subtrees currently on MDS 0 become 5x hotter (a
  // tenant under those directories went viral).
  const auto& subtrees = scheme.layers().subtrees;
  std::size_t heated = 0;
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    if (scheme.subtree_owners()[i] != 0) continue;
    w.tree.AddAccess(subtrees[i].root, 4.0 * subtrees[i].popularity);
    ++heated;
  }
  w.tree.RecomputeSubtreePopularity();
  std::printf("\nHotspot: %zu subtrees on MDS 0 became 5x hotter.\n\n", heated);
  PrintLoads("After hotspot (before adjustment):", w.tree, a, cluster);

  // Dynamic adjustment rounds: heartbeats -> pending pool -> pulls.
  for (int round = 1; round <= 3; ++round) {
    const RebalanceResult r = scheme.Rebalance(w.tree, cluster, a);
    a = r.assignment;
    std::printf("\nAdjustment round %d: moved %zu metadata nodes "
                "(pending pool peaked at %zu subtrees)\n",
                round, r.moved_nodes, scheme.monitor().last_pool_size());
  }
  std::printf("\n");
  PrintLoads("After dynamic adjustment:", w.tree, a, cluster);

  std::printf("\nGlobal layer untouched: %zu replicated nodes before and "
              "after (the paper\nadjusts GL membership only on a slow epoch, "
              "typically daily).\n",
              a.ReplicatedCount());
  return 0;
}
