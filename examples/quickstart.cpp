// Quickstart: build a tiny namespace, charge a workload, run the three
// D2-Tree phases (Tree-Splitting → Subtree-Allocation → access), and print
// what happened. Mirrors the Fig. 2 / Fig. 3 walk-through of the paper.
#include <cstdio>

#include "d2tree/core/d2tree.h"
#include "d2tree/metrics/metrics.h"

using namespace d2tree;

int main() {
  // 1. A namespace like Fig. 2: /home/{a/c.txt, b/{g.pdf,h.jpg}}, /var/{d,e},
  //    /usr/f/j.doc.
  NamespaceTree tree;
  tree.GetOrCreatePath("/home/a/c.txt", NodeType::kFile);
  tree.GetOrCreatePath("/home/b/g.pdf", NodeType::kFile);
  tree.GetOrCreatePath("/home/b/h.jpg", NodeType::kFile);
  tree.GetOrCreatePath("/var/d", NodeType::kDirectory);
  tree.GetOrCreatePath("/var/e", NodeType::kDirectory);
  tree.GetOrCreatePath("/usr/f/j.doc", NodeType::kFile);

  // 2. Charge a skewed workload: /home is scorching, /usr barely touched.
  tree.AddAccess(tree.Resolve("/home"), 40);
  tree.AddAccess(tree.Resolve("/home/b"), 25);
  tree.AddAccess(tree.Resolve("/home/b/h.jpg"), 30);
  tree.AddAccess(tree.Resolve("/home/a/c.txt"), 10);
  tree.AddAccess(tree.Resolve("/var/d"), 6);
  tree.AddAccess(tree.Resolve("/usr/f/j.doc"), 2);
  tree.RecomputeSubtreePopularity();

  // 3. Partition over 2 MDSs. Ask for a 40% global layer so the hot crown
  //    (root, /home, /home/b) is replicated.
  D2TreeConfig config;
  config.global_fraction = 0.4;
  D2TreeScheme scheme(config);
  const MdsCluster cluster = MdsCluster::Homogeneous(2);
  const Assignment assignment = scheme.Partition(tree, cluster);

  std::printf("Global layer (replicated to every MDS):\n");
  for (NodeId id : scheme.split().global_layer)
    std::printf("  %s\n", tree.PathOf(id).c_str());

  std::printf("\nLocal-layer subtrees (indivisible units):\n");
  for (std::size_t i = 0; i < scheme.layers().subtrees.size(); ++i) {
    const Subtree& s = scheme.layers().subtrees[i];
    std::printf("  %-18s popularity=%5.0f nodes=%zu -> MDS %d\n",
                tree.PathOf(s.root).c_str(), s.popularity, s.node_count,
                scheme.subtree_owners()[i]);
  }

  // 4. The access logic of Sec. IV-A2.
  std::printf("\nAccess routing:\n");
  for (const char* path : {"/home", "/home/b/h.jpg", "/usr/f/j.doc"}) {
    const NodeId target = tree.Resolve(path);
    const auto owner = scheme.local_index().Route(tree, target);
    if (owner.has_value()) {
      std::printf("  %-18s -> MDS %d (via local index), jumps=%zu\n", path,
                  *owner, JumpsFor(tree, assignment, target));
    } else {
      std::printf("  %-18s -> any MDS (global layer), jumps=%zu\n", path,
                  JumpsFor(tree, assignment, target));
    }
  }

  // 5. System metrics (Sec. III).
  const LocalityReport loc = ComputeLocality(tree, assignment);
  const BalanceReport bal = ComputeBalance(tree, assignment, cluster);
  std::printf("\nMetrics: locality cost=%.0f (locality=%.4f), balance=%.4f, "
              "update cost=%.0f\n",
              loc.cost, loc.locality, bal.balance,
              ComputeUpdateCost(tree, assignment));
  return 0;
}
