// Functional cluster demo: a live (in-process) MDS cluster serving real
// metadata records — stat & update operations, a forced forwarding, a
// global-layer write broadcast, dynamic adjustment physically moving
// records, and the consistency audit.
#include <cstdio>

#include "d2tree/mds/cluster.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

int main() {
  const Workload w = GenerateWorkload(DtrProfile(0.05));
  FunctionalCluster cluster(w.tree, 4);
  std::printf("Functional cluster: %zu MDSs serving %zu metadata records\n",
              cluster.mds_count(), w.tree.size());
  for (MdsId k = 0; k < 4; ++k) {
    std::printf("  MDS %d: %zu local records + %zu GL replica records\n", k,
                cluster.server(k).local().size(),
                cluster.server(k).global_replica().size());
  }

  // A few client operations.
  const NodeId gl_node = cluster.scheme().split().global_layer[1];
  const std::string gl_path = w.tree.PathOf(gl_node);
  auto r = cluster.Stat(gl_path);
  std::printf("\nstat %-24s -> %s from MDS %d (hops=%d, version=%lu)\n",
              gl_path.c_str(), MdsStatusName(r.status), r.served_by, r.hops,
              static_cast<unsigned long>(r.record.version));

  // A deep local-layer file, first correctly routed, then via the wrong
  // server to show forwarding.
  std::string deep_path;
  for (NodeId id = w.tree.size(); id-- > 1;) {
    if (!cluster.assignment().IsReplicated(id) &&
        !w.tree.node(id).is_directory()) {
      deep_path = w.tree.PathOf(id);
      break;
    }
  }
  r = cluster.Stat(deep_path);
  std::printf("stat %-24s -> %s from MDS %d (hops=%d)\n", deep_path.c_str(),
              MdsStatusName(r.status), r.served_by, r.hops);
  const MdsId wrong = (r.served_by + 1) % 4;
  r = cluster.StatVia(deep_path, wrong);
  std::printf("stat %-24s via MDS %d -> forwarded, served by MDS %d (hops=%d)\n",
              deep_path.c_str(), wrong, r.served_by, r.hops);

  // Global-layer update: lock + broadcast.
  r = cluster.Update(gl_path, /*mtime=*/1720000000);
  std::printf("update %-22s -> %s, GL master version now %lu\n",
              gl_path.c_str(), MdsStatusName(r.status),
              static_cast<unsigned long>(cluster.gl_master_version()));

  // Hammer one server's subtrees, then adjust: records physically move.
  const auto& subtrees = cluster.scheme().layers().subtrees;
  const auto& owners = cluster.scheme().subtree_owners();
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    if (owners[i] != 0) continue;
    const std::string p = w.tree.PathOf(subtrees[i].root);
    for (int hit = 0; hit < 100; ++hit) cluster.Stat(p);
  }
  const std::size_t moved = cluster.RunAdjustmentRound();
  std::printf("\nAdjustment round migrated %zu records between stores.\n",
              moved);

  std::string error;
  const bool ok = cluster.CheckConsistency(&error);
  std::printf("Consistency audit: %s%s\n", ok ? "CLEAN" : "BROKEN: ",
              ok ? "" : error.c_str());
  std::printf("Total forwards observed: %lu\n",
              static_cast<unsigned long>(cluster.total_forwards()));
  return ok ? 0 : 1;
}
