// Scheme comparison on one dataset: partitions the DTR-like workload with
// all six schemes (the paper's five plus pure hashing) and prints the
// Sec. III metrics side by side — a one-screen summary of the paper's
// story: subtree schemes keep locality, hash schemes keep balance, D2-Tree
// keeps both.
#include <cstdio>
#include <vector>

#include "d2tree/baselines/registry.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/sim/experiment.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const Workload w = GenerateWorkload(DtrProfile(0.25));
  std::printf("Dataset %s, %zu MDSs, %zu nodes, %zu records\n\n",
              w.name.c_str(), m, w.tree.size(), w.trace.size());

  std::printf("%-16s %12s %12s %12s %12s %12s\n", "scheme", "locality",
              "balance", "update-cost", "throughput", "p99 (ms)");
  std::vector<SchemeRunResult> results;
  for (const auto& id : AllSchemeIds()) {
    ExperimentOptions opt;
    opt.adjustment_rounds = 10;
    opt.sim.max_ops = 40'000;
    results.push_back(RunSchemeExperiment(id, w, m, opt));
    const SchemeRunResult& r = results.back();
    std::printf("%-16s %12.3e %12.3e %12.0f %12.0f %12.3f\n",
                r.scheme.c_str(), r.locality, r.balance, r.update_cost,
                r.throughput, r.p99_latency * 1e3);
  }

  std::printf("\nLatency by op class (µs, p50/p99; - = no ops in class):\n");
  std::printf("%-16s", "scheme");
  for (std::size_t c = 0; c < kOpClassCount; ++c)
    std::printf(" %20s", OpClassName(static_cast<OpClass>(c)));
  std::printf("\n");
  for (const SchemeRunResult& r : results) {
    std::printf("%-16s", r.scheme.c_str());
    for (std::size_t c = 0; c < kOpClassCount; ++c) {
      const LatencyHistogram& h = r.class_latency[c];
      if (h.count() == 0) {
        std::printf(" %20s", "-");
      } else {
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%.0f/%.0f", h.Quantile(0.5),
                      h.Quantile(0.99));
        std::printf(" %20s", cell);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading guide (matches Sec. VI): D2-Tree pairs subtree-level "
      "locality\nwith hash-level balance; static subtree keeps locality but "
      "not balance;\nDROP/AngleCut the reverse; updates cost only the "
      "replicating schemes.\n");
  return 0;
}
