// Scheme comparison on one dataset: partitions the DTR-like workload with
// all six schemes (the paper's five plus pure hashing) and prints the
// Sec. III metrics side by side — a one-screen summary of the paper's
// story: subtree schemes keep locality, hash schemes keep balance, D2-Tree
// keeps both.
#include <cstdio>

#include "d2tree/baselines/registry.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/sim/experiment.h"
#include "d2tree/trace/profiles.h"

using namespace d2tree;

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const Workload w = GenerateWorkload(DtrProfile(0.25));
  std::printf("Dataset %s, %zu MDSs, %zu nodes, %zu records\n\n",
              w.name.c_str(), m, w.tree.size(), w.trace.size());

  std::printf("%-16s %12s %12s %12s %12s %12s\n", "scheme", "locality",
              "balance", "update-cost", "throughput", "p99 (ms)");
  for (const auto& id : AllSchemeIds()) {
    ExperimentOptions opt;
    opt.adjustment_rounds = 10;
    opt.sim.max_ops = 40'000;
    const SchemeRunResult r = RunSchemeExperiment(id, w, m, opt);
    std::printf("%-16s %12.3e %12.3e %12.0f %12.0f %12.3f\n",
                r.scheme.c_str(), r.locality, r.balance, r.update_cost,
                r.throughput, r.p99_latency * 1e3);
  }

  std::printf(
      "\nReading guide (matches Sec. VI): D2-Tree pairs subtree-level "
      "locality\nwith hash-level balance; static subtree keeps locality but "
      "not balance;\nDROP/AngleCut the reverse; updates cost only the "
      "replicating schemes.\n");
  return 0;
}
