#!/usr/bin/env bash
# Regenerates the committed bench trajectory (BENCH_trajectory.json at the
# repo root) from the three JSON-emitting gate binaries:
#
#   example_simnet_latency   — per-op-class latency percentiles over the
#                              simulated wire, with a seeded fault storm
#   example_crash_recovery   — recovery wall time + WAL replay volume over
#                              every crash site (migration AND rename)
#   ablation_rename          — per-scheme rename placement cost and the
#                              transactional rename path (DESIGN.md §8)
#   ablation_store           — store-engine micro ops and the million-
#                              record sealed-table handoff (DESIGN.md §11)
#
# plus one real-process section: scripts/socket_bench.sh boots monitor +
# 3 mdsd over TCP loopback and replays the same mix through d2bench-client
# (honest ops/sec and wall-clock percentiles per op class).
#
# Each binary exits nonzero when its own correctness audit fails, so a
# snapshot only ever captures a self-consistent run.
#
# Usage: scripts/bench_snapshot.sh [build_dir] [output.json]
#
# Compare a fresh snapshot against the committed one with
# scripts/check_bench_regression.py (CI job bench-trajectory).
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_trajectory.json}

if [[ ! -x "$BUILD_DIR/examples/example_simnet_latency" ]]; then
  echo "error: $BUILD_DIR does not contain the built binaries" >&2
  echo "       (cmake --preset default && cmake --build build -j)" >&2
  exit 2
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== simnet latency mix =="
"$BUILD_DIR/examples/example_simnet_latency" "$TMP/latency.json" >/dev/null
echo "== crash/rename recovery sweep =="
"$BUILD_DIR/examples/example_crash_recovery" "$TMP/recovery.json" 2 >/dev/null
echo "== rename ablation + transactional path =="
"$BUILD_DIR/bench/ablation_rename" "$TMP/rename.json" >/dev/null
echo "== store engine + sealed-table handoff =="
"$BUILD_DIR/bench/ablation_store" "$TMP/store.json" >/dev/null
echo "== real-socket 4-process replay =="
"$(dirname "$0")/socket_bench.sh" "$BUILD_DIR" "$TMP/socket.json" >/dev/null

python3 - "$TMP" "$OUT" <<'PY'
import json, os, sys

tmp, out = sys.argv[1], sys.argv[2]
merged = {
    "schema_version": 1,
    "note": ("Committed bench trajectory. Regenerate with "
             "scripts/bench_snapshot.sh; CI gates fresh runs against this "
             "file with scripts/check_bench_regression.py "
             "(see EXPERIMENTS.md)."),
    "latency": json.load(open(os.path.join(tmp, "latency.json"))),
    "recovery": json.load(open(os.path.join(tmp, "recovery.json"))),
    "rename": json.load(open(os.path.join(tmp, "rename.json"))),
    "store": json.load(open(os.path.join(tmp, "store.json"))),
    "socket": json.load(open(os.path.join(tmp, "socket.json"))),
}
with open(out, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
PY

echo "wrote $OUT"
