#!/usr/bin/env python3
"""Bench regression gate over BENCH_trajectory.json.

Compares a fresh bench snapshot (scripts/bench_snapshot.sh) against the
committed trajectory at the repo root and fails when a tracked metric
regresses beyond its tolerance band.

Three kinds of tracked metric:

  * correctness  — booleans/zero-counters from the binaries' own audits
                   (consistency, d2fsck, failed transactions). These are
                   hard gates on the FRESH snapshot alone: no band.
  * exact        — workload-deterministic counts (records a scheme moves
                   on a rename). Band 0: any drift is a behavior change
                   that must be re-baselined deliberately.
  * bounded      — latency/throughput style numbers. Wall-clock metrics
                   vary across machines, simulated-network metrics vary
                   with thread interleaving, so each carries a relative
                   band plus an absolute floor below which noise is
                   ignored. Only growth (a slowdown) fails; getting
                   faster never does — commit a fresh snapshot to ratchet.

Usage:
  check_bench_regression.py --baseline BENCH_trajectory.json --fresh new.json
  check_bench_regression.py --self-test

Exit codes: 0 pass, 1 regression/violation, 2 usage or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

# (path, kind, rel_band, abs_floor)
#
# Path syntax: dot-separated keys; `list[key=value]` selects the element
# of a list of objects whose `key` stringifies to `value`.
TRACKED = [
    # --- correctness: hard gates on the fresh snapshot ---
    ("latency.consistent", "true", None, None),
    ("recovery.fsck_clean", "true", None, None),
    ("rename.txn.fsck_clean", "true", None, None),
    ("rename.txn.in_place.failed", "zero", None, None),
    ("rename.txn.cross_server.failed", "zero", None, None),
    # The Sec. II headline claim: structure-keyed placement moves nothing
    # on a rename. If d2tree ever moves a record here, that is a bug, not
    # a regression band.
    ("rename.schemes[scheme=d2tree].deep_moved", "zero", None, None),
    ("rename.schemes[scheme=d2tree].top_moved", "zero", None, None),
    # --- exact: deterministic counts, re-baseline deliberately ---
    ("recovery.recoveries", "exact", None, None),
    ("rename.txn.in_place.count", "exact", None, None),
    ("rename.txn.cross_server.count", "exact", None, None),
    ("rename.txn.cross_server.records_moved", "exact", None, None),
    ("rename.schemes[scheme=hash].top_moved", "exact", None, None),
    # --- bounded: only growth beyond band + floor fails ---
    # Simulated-network latency: deterministic model, mild interleaving
    # jitter from the 4-thread replay.
    ("latency.latency_by_class[class=GL hit].p50_us", "bounded", 0.50, 50.0),
    ("latency.latency_by_class[class=GL hit].p99_us", "bounded", 0.50, 50.0),
    ("latency.latency_by_class[class=LL 1-jump].p99_us", "bounded", 0.50, 50.0),
    ("rename.txn.in_place.sim_us_mean", "bounded", 0.50, 50.0),
    ("rename.txn.cross_server.sim_us_mean", "bounded", 0.50, 50.0),
    # Wall-clock metrics: machine-dependent, wide band.
    ("recovery.recovery_wall_us.p50", "bounded", 3.00, 200.0),
    ("recovery.recovery_wall_us.p99", "bounded", 3.00, 500.0),
    ("rename.txn.in_place.wall_us_mean", "bounded", 3.00, 20.0),
    ("rename.txn.cross_server.wall_us_mean", "bounded", 3.00, 50.0),
    # WAL replay volume per recovery: grows only if the protocol journals
    # more — that is a real cost, keep it tight.
    ("recovery.wal_records_replayed.mean", "bounded", 0.25, 10.0),
    # --- store engine + sealed-table handoff (bench/ablation_store) ---
    # Correctness: the bulk kBulkTable path must beat per-record shipping
    # on the million-record handoff AND land the byte-identical live set,
    # and every store must pass its deep on-disk audit.
    ("store.handoff.bulk_faster", "true", None, None),
    ("store.handoff.dest_equal", "true", None, None),
    ("store.audit_clean", "true", None, None),
    # Deterministic: the handoff size is workload math, not timing.
    ("store.handoff.records", "exact", None, None),
    # Wall-clock: machine-dependent, wide bands. bulk_ms is the headline
    # cost of a subtree handoff; the LSM put covers the journaled write
    # path end to end.
    ("store.handoff.bulk_ms", "bounded", 3.00, 200.0),
    ("store.handoff.per_record_ms", "bounded", 3.00, 500.0),
    ("store.put.lsm_ns_op", "bounded", 3.00, 500.0),
    ("store.get.lsm_sealed_ns_op", "bounded", 3.00, 2000.0),
    # --- real-socket 4-process replay (scripts/socket_bench.sh) ---
    # Correctness: every op succeeded and every daemon drained cleanly and
    # passed its own consistency audit on SIGTERM.
    ("socket.failed", "zero", None, None),
    ("socket.daemons_clean", "true", None, None),
    # Wall-clock RPC latency over loopback TCP: very machine-dependent, so
    # wide bands + generous floors. ops_per_sec is deliberately untracked
    # (`bounded` only catches growth; throughput regresses by *shrinking*
    # — the latency percentiles below are the honest slowdown signal).
    ("socket.latency_by_class[class=GL hit].p50_us", "bounded", 3.00, 300.0),
    ("socket.latency_by_class[class=GL hit].p99_us", "bounded", 3.00, 2000.0),
    ("socket.latency_by_class[class=LL 0-jump].p50_us", "bounded", 3.00, 300.0),
    ("socket.latency_by_class[class=LL 1-jump].p50_us", "bounded", 3.00, 600.0),
]


def resolve(doc, path):
    """Walks `doc` along `path`; raises KeyError with the failing step."""
    cur = doc
    for step in path.split("."):
        if "[" in step:
            name, _, selector = step.partition("[")
            key, _, want = selector.rstrip("]").partition("=")
            seq = cur[name]
            for item in seq:
                if str(item.get(key)) == want:
                    cur = item
                    break
            else:
                raise KeyError(f"{path}: no element with {key}={want}")
        else:
            if not isinstance(cur, dict) or step not in cur:
                raise KeyError(f"{path}: missing '{step}'")
            cur = cur[step]
    return cur


def check(baseline, fresh):
    """Returns a list of violation strings (empty = gate passes)."""
    violations = []
    for path, kind, band, floor in TRACKED:
        try:
            new = resolve(fresh, path)
        except KeyError as e:
            violations.append(f"fresh snapshot: {e.args[0]}")
            continue
        if kind == "true":
            if new is not True:
                violations.append(f"{path}: expected true, got {new!r}")
            continue
        if kind == "zero":
            if new != 0:
                violations.append(f"{path}: expected 0, got {new!r}")
            continue
        try:
            old = resolve(baseline, path)
        except KeyError as e:
            violations.append(f"baseline: {e.args[0]}")
            continue
        if kind == "exact":
            if new != old:
                violations.append(
                    f"{path}: deterministic metric drifted "
                    f"{old!r} -> {new!r} (re-baseline deliberately)")
        elif kind == "bounded":
            limit = old * (1.0 + band) + floor
            if new > limit:
                violations.append(
                    f"{path}: {new:.2f} exceeds {limit:.2f} "
                    f"(baseline {old:.2f}, band +{band:.0%} + {floor:g})")
        else:  # pragma: no cover - spec typo guard
            violations.append(f"{path}: unknown kind {kind!r}")
    return violations


# ---------------------------------------------------------------------------


def self_test():
    base = {
        "latency": {
            "consistent": True,
            "latency_by_class": [
                {"class": "GL hit", "p50_us": 100.0, "p99_us": 400.0},
                {"class": "LL 1-jump", "p50_us": 150.0, "p99_us": 600.0},
            ],
        },
        "recovery": {
            "fsck_clean": True,
            "recoveries": 18,
            "recovery_wall_us": {"p50": 300.0, "p99": 500.0},
            "wal_records_replayed": {"mean": 60.0},
        },
        "rename": {
            "schemes": [
                {"scheme": "d2tree", "deep_moved": 0, "top_moved": 0},
                {"scheme": "hash", "deep_moved": 2452, "top_moved": 4870},
            ],
            "txn": {
                "fsck_clean": True,
                "in_place": {"count": 603, "failed": 0,
                             "wall_us_mean": 3.0, "sim_us_mean": 675.0},
                "cross_server": {"count": 603, "failed": 0,
                                 "wall_us_mean": 9.0, "sim_us_mean": 678.0,
                                 "records_moved": 14850},
            },
        },
        "store": {
            "audit_clean": True,
            "put": {"memory_ns_op": 250.0, "lsm_ns_op": 1100.0},
            "get": {"memory_ns_op": 350.0, "lsm_ns_op": 400.0,
                    "lsm_sealed_ns_op": 7000.0},
            "handoff": {"records": 1000000, "per_record_ms": 1100.0,
                        "bulk_ms": 600.0, "bulk_faster": True,
                        "dest_equal": True},
        },
        "socket": {
            "failed": 0,
            "daemons_clean": True,
            "latency_by_class": [
                {"class": "GL hit", "p50_us": 90.0, "p99_us": 500.0},
                {"class": "LL 0-jump", "p50_us": 95.0, "p99_us": 520.0},
                {"class": "LL 1-jump", "p50_us": 200.0, "p99_us": 700.0},
            ],
        },
    }
    fresh_ok = json.loads(json.dumps(base))
    # Identical snapshots pass.
    assert check(base, fresh_ok) == [], check(base, fresh_ok)
    # Getting faster passes.
    fresh_ok["recovery"]["recovery_wall_us"]["p99"] = 10.0
    assert check(base, fresh_ok) == []
    # Noise inside band + floor passes.
    fresh_ok["latency"]["latency_by_class"][0]["p99_us"] = 420.0
    assert check(base, fresh_ok) == []
    # A slowdown beyond the band fails.
    slow = json.loads(json.dumps(base))
    slow["recovery"]["recovery_wall_us"]["p99"] = 5000.0
    assert any("recovery_wall_us.p99" in v for v in check(base, slow))
    # Correctness flips fail regardless of the baseline.
    broken = json.loads(json.dumps(base))
    broken["rename"]["txn"]["fsck_clean"] = False
    assert any("fsck_clean" in v for v in check(base, broken))
    # The d2tree zero-move claim is gated on the fresh run alone.
    moved = json.loads(json.dumps(base))
    moved["rename"]["schemes"][0]["top_moved"] = 7
    assert any("top_moved" in v for v in check(base, moved))
    # Deterministic counters must not drift silently.
    drift = json.loads(json.dumps(base))
    drift["rename"]["txn"]["cross_server"]["records_moved"] = 14000
    assert any("records_moved" in v for v in check(base, drift))
    # Missing metrics in the fresh snapshot are violations, not skips.
    missing = json.loads(json.dumps(base))
    del missing["rename"]["txn"]["cross_server"]
    assert any("cross_server" in v for v in check(base, missing))
    # Real-socket replay: a failed op or a dirty daemon shutdown is a hard
    # gate on the fresh run alone.
    sock_fail = json.loads(json.dumps(base))
    sock_fail["socket"]["failed"] = 3
    assert any("socket.failed" in v for v in check(base, sock_fail))
    dirty = json.loads(json.dumps(base))
    dirty["socket"]["daemons_clean"] = False
    assert any("daemons_clean" in v for v in check(base, dirty))
    # Loopback wall-clock noise inside the wide band passes; a gross
    # slowdown beyond band + floor fails.
    sock_noise = json.loads(json.dumps(base))
    sock_noise["socket"]["latency_by_class"][0]["p50_us"] = 250.0
    assert check(base, sock_noise) == []
    sock_slow = json.loads(json.dumps(base))
    sock_slow["socket"]["latency_by_class"][0]["p50_us"] = 5000.0
    assert any("GL hit].p50_us" in v for v in check(base, sock_slow))
    # Store section: bulk losing to per-record is a hard gate on the
    # fresh run alone — the whole point of sealed-table shipping.
    bulk_lost = json.loads(json.dumps(base))
    bulk_lost["store"]["handoff"]["bulk_faster"] = False
    assert any("bulk_faster" in v for v in check(base, bulk_lost))
    # A shrunken handoff (bench silently doing less work) must not pass.
    shrunk = json.loads(json.dumps(base))
    shrunk["store"]["handoff"]["records"] = 1000
    assert any("handoff.records" in v for v in check(base, shrunk))
    # A missing store section is a violation, not a skip.
    storeless = json.loads(json.dumps(base))
    del storeless["store"]
    assert any("store" in v for v in check(base, storeless))
    print("self-test: OK")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", help="committed BENCH_trajectory.json")
    ap.add_argument("--fresh", help="freshly generated snapshot")
    ap.add_argument("--self-test", action="store_true",
                    help="run the gate's own unit checks and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        self_test()
        return 0
    if not args.baseline or not args.fresh:
        ap.error("--baseline and --fresh are required (or use --self-test)")

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    violations = check(baseline, fresh)
    if violations:
        print(f"bench regression gate: {len(violations)} violation(s)")
        for v in violations:
            print(f"  FAIL {v}")
        print("\nIf a slowdown is intentional, regenerate the committed "
              "trajectory with scripts/bench_snapshot.sh and commit it "
              "alongside the change that explains it.")
        return 1
    print(f"bench regression gate: {len(TRACKED)} tracked metrics OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
