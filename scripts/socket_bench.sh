#!/usr/bin/env bash
# Boots a real 4-process cluster (monitor + 3 mdsd over TCP loopback),
# replays a trace mix against it with d2bench-client, then SIGTERMs the
# daemons and folds their shutdown audits into the client's JSON report.
#
# The output is the "socket" section of BENCH_trajectory.json: the same
# per-op-class p50/p99 shape as the simulated latency bench, plus honest
# ops/sec over real sockets and a `daemons_clean` verdict (every daemon
# drained, passed its consistency audit and exited 0).
#
# Usage: scripts/socket_bench.sh [build_dir] [output.json]
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_socket.json}
MDSD="$BUILD_DIR/tools/mdsd/mdsd"
CLIENT="$BUILD_DIR/tools/d2bench_client/d2bench-client"

PROFILE=lmbe
SCALE=0.05
SEED=1
MDS_COUNT=3
THREADS=4
OPS=1500

if [[ ! -x "$MDSD" || ! -x "$CLIENT" ]]; then
  echo "error: $BUILD_DIR does not contain mdsd / d2bench-client" >&2
  echo "       (cmake -B build -S . && cmake --build build -j)" >&2
  exit 2
fi

TMP=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

# Reserve four loopback ports up front: every daemon needs the full peer
# list (for GL-commit fan-out and monitor lock rounds) before any of them
# is listening.
read -r PM P0 P1 P2 < <(python3 - <<'PY'
import socket
socks = [socket.socket() for _ in range(4)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(*[s.getsockname()[1] for s in socks])
for s in socks:
    s.close()
PY
)
PEERS="monitor=127.0.0.1:$PM,mds0=127.0.0.1:$P0,mds1=127.0.0.1:$P1,mds2=127.0.0.1:$P2"
COMMON=(--peers "$PEERS" --mds-count "$MDS_COUNT"
        --profile "$PROFILE" --scale "$SCALE" --seed "$SEED")

echo "== booting monitor + $MDS_COUNT mdsd =="
"$MDSD" --role monitor --listen "127.0.0.1:$PM" "${COMMON[@]}" \
  >"$TMP/monitor.out" 2>&1 &
PIDS+=($!)
for i in 0 1 2; do
  port_var="P$i"
  "$MDSD" --role mds --id "$i" --listen "127.0.0.1:${!port_var}" \
    "${COMMON[@]}" >"$TMP/mds$i.out" 2>&1 &
  PIDS+=($!)
done

for f in monitor mds0 mds1 mds2; do
  for _ in $(seq 1 100); do
    grep -q "MDSD LISTENING" "$TMP/$f.out" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "MDSD LISTENING" "$TMP/$f.out" || {
    echo "error: $f never came up:" >&2
    cat "$TMP/$f.out" >&2
    exit 1
  }
done

echo "== replaying $((THREADS * OPS)) ops over real sockets =="
CLIENT_RC=0
"$CLIENT" "${COMMON[@]}" --threads "$THREADS" --ops "$OPS" \
  --out "$TMP/client.json" >/dev/null || CLIENT_RC=$?

echo "== draining daemons (SIGTERM) =="
DAEMONS_CLEAN=true
for idx in "${!PIDS[@]}"; do
  kill -TERM "${PIDS[$idx]}" 2>/dev/null || DAEMONS_CLEAN=false
done
for idx in "${!PIDS[@]}"; do
  if ! wait "${PIDS[$idx]}"; then
    DAEMONS_CLEAN=false
  fi
done
PIDS=()

python3 - "$TMP" "$OUT" "$DAEMONS_CLEAN" <<'PY'
import json, os, sys

tmp, out, clean = sys.argv[1], sys.argv[2], sys.argv[3] == "true"
report = json.load(open(os.path.join(tmp, "client.json")))
daemons = []
for name in ("monitor", "mds0", "mds1", "mds2"):
    with open(os.path.join(tmp, name + ".out")) as f:
        for line in f:
            line = line.strip()
            if line.startswith("{"):
                daemons.append(json.loads(line))
                break
report["daemons"] = daemons
report["daemons_clean"] = clean and all(
    d.get("consistent") is True for d in daemons) and len(daemons) == 4
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(("OK" if report["daemons_clean"] else "AUDIT FAILED"),
      "-", report["ops_per_sec"], "ops/sec,", report["failed"], "failed")
PY

if [[ "$CLIENT_RC" -ne 0 || "$DAEMONS_CLEAN" != true ]]; then
  exit 1
fi
echo "wrote $OUT"
