#!/usr/bin/env python3
"""AST-free lint for the d2tree lock hierarchy.

Clang's -Wthread-safety enforces lock *usage* (guarded fields, REQUIRES
helpers) at compile time, but only under Clang, and its ACQUIRED_BEFORE
ordering checks are best-effort (-Wthread-safety-beta). This script makes
the hierarchy itself machine-verified on every compiler and in CI:

  1. every `d2tree::Mutex` / `d2tree::SharedMutex` *member* declaration
     must carry an explicit `D2T_LOCK_RANK(<n>)` (smaller = acquired
     first — the rank table lives in DESIGN.md "Lock hierarchy");
  2. ranks are globally unique, so the order is total and unambiguous;
  3. every declared `D2T_ACQUIRED_BEFORE(a, b, ...)` edge must run
     strictly rank-increasing (`D2T_ACQUIRED_AFTER` strictly decreasing);
  4. the union of declared edges must form a DAG (cycle detection is
     independent of the rank check, so a future rank-less edge set is
     still rejected when it loops).

No compiler, no libclang: plain text parsing of the checked-in headers.
The parser understands exactly the declaration style the codebase uses —
one mutex member per logical declaration, attributes between declarator
and `;`/initializer — and tracks `class`/`struct` scopes by brace depth
so identically-named members (`mu_`) in different classes stay distinct.

Usage:
  check_lock_order.py [--root DIR ...]   lint headers under DIR (default: src)
  check_lock_order.py --self-test        run the built-in unit cases
"""

from __future__ import annotations

import argparse
import os
import re
import sys

MUTEX_TYPES = ("Mutex", "SharedMutex")

# `mutable Mutex foo_ ...attrs... ;` — the declarator must follow the bare
# type name directly (pointers/references/params like `Mutex* mu` are not
# declarations of a lock we own).
DECL_RE = re.compile(
    r"\b(?:mutable\s+)?(?:d2tree::)?(Mutex|SharedMutex)\s+([A-Za-z_]\w*)\s*"
    r"(?=[;({=\sD])"
)
RANK_RE = re.compile(r"\bD2T_LOCK_RANK\(\s*(\d+)\s*\)")
BEFORE_RE = re.compile(r"\bD2T_ACQUIRED_BEFORE\(([^)]*)\)")
AFTER_RE = re.compile(r"\bD2T_ACQUIRED_AFTER\(([^)]*)\)")
SCOPE_RE = re.compile(r"\b(?:class|struct)\s+(?:D2T_\w+(?:\([^)]*\))?\s+)?"
                      r"([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;]*)?\{")


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments, preserving line breaks."""
    out = []
    i, n = 0, len(text)
    while i < n:
        if text.startswith("//", i):
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            out.append("\n" * text.count("\n", i, n if j < 0 else j))
            i = n if j < 0 else j + 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


class Lock:
    def __init__(self, qualified: str, file: str, line: int,
                 rank: int | None):
        self.qualified = qualified  # "Class::member"
        self.file = file
        self.line = line
        self.rank = rank

    def __repr__(self):
        return self.qualified


def parse_file(path: str, text: str, locks: dict, edges: list,
               errors: list) -> None:
    text = strip_comments(text)
    lines = text.split("\n")

    # Scope tracking: stack of (class_name, brace_depth_at_entry).
    depth = 0
    scopes: list[tuple[str, int]] = []

    # Logical declaration joining: accumulate lines until ';' balance.
    pending = ""
    pending_line = 0

    for lineno, raw in enumerate(lines, start=1):
        line = raw
        for m in SCOPE_RE.finditer(line):
            # The '{' this scope opens is counted in the brace pass below;
            # record entry depth as the depth *after* that brace.
            brace_pos = m.end() - 1
            entry_depth = depth + line.count("{", 0, brace_pos) + 1
            scopes.append((m.group(1), entry_depth))

        if pending:
            pending += " " + line.strip()
        elif DECL_RE.search(line):
            pending = line.strip()
            pending_line = lineno

        if pending and ";" in pending:
            # A line may hold several declarations; handle each statement.
            for segment in pending.split(";"):
                if DECL_RE.search(segment + ";"):
                    handle_declaration(path, segment + ";", pending_line,
                                       scopes, locks, edges, errors)
            pending = ""

        depth += line.count("{") - line.count("}")
        while scopes and depth < scopes[-1][1]:
            scopes.pop()


def handle_declaration(path: str, decl: str, lineno: int, scopes, locks,
                       edges, errors) -> None:
    m = DECL_RE.search(decl)
    if m is None:
        return
    member = m.group(2)
    cls = scopes[-1][0] if scopes else ""
    qualified = f"{cls}::{member}" if cls else member

    rank_m = RANK_RE.search(decl)
    rank = int(rank_m.group(1)) if rank_m else None
    if rank is None:
        errors.append(
            f"{path}:{lineno}: {qualified} ({m.group(1)}) declares no "
            f"D2T_LOCK_RANK — every lock member must state its place in "
            f"the hierarchy (see DESIGN.md)")
    if qualified in locks:
        prev = locks[qualified]
        errors.append(
            f"{path}:{lineno}: duplicate declaration of {qualified} "
            f"(first seen {prev.file}:{prev.line})")
        return
    locks[qualified] = Lock(qualified, path, lineno, rank)

    for regex, flipped in ((BEFORE_RE, False), (AFTER_RE, True)):
        for am in regex.finditer(decl):
            for target in am.group(1).split(","):
                target = target.strip()
                if not target:
                    continue
                tq = f"{cls}::{target}" if cls and "::" not in target \
                    else target
                src, dst = (tq, qualified) if flipped else (qualified, tq)
                edges.append((src, dst, path, lineno))


def check(locks: dict, edges: list) -> list:
    errors = []

    # Unique ranks → a total, unambiguous order.
    by_rank: dict[int, Lock] = {}
    for lock in locks.values():
        if lock.rank is None:
            continue
        if lock.rank in by_rank:
            other = by_rank[lock.rank]
            errors.append(
                f"{lock.file}:{lock.line}: {lock.qualified} reuses rank "
                f"{lock.rank} already held by {other.qualified} "
                f"({other.file}:{other.line})")
        else:
            by_rank[lock.rank] = lock

    # Edges must reference declared locks and run strictly rank-increasing.
    graph: dict[str, set] = {q: set() for q in locks}
    for src, dst, path, lineno in edges:
        for end in (src, dst):
            if end not in locks:
                errors.append(
                    f"{path}:{lineno}: ACQUIRED_BEFORE/AFTER references "
                    f"unknown lock '{end}'")
        if src not in locks or dst not in locks:
            continue
        graph[src].add(dst)
        a, b = locks[src].rank, locks[dst].rank
        if a is not None and b is not None and a >= b:
            errors.append(
                f"{path}:{lineno}: declared order {src} (rank {a}) before "
                f"{dst} (rank {b}) inverts the rank hierarchy")

    # Cycle detection over the declared edges (independent of ranks).
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {q: WHITE for q in graph}
    stack_trace: list[str] = []

    def dfs(node: str) -> list | None:
        color[node] = GRAY
        stack_trace.append(node)
        for nxt in sorted(graph[node]):
            if color[nxt] == GRAY:
                return stack_trace[stack_trace.index(nxt):] + [nxt]
            if color[nxt] == WHITE:
                cyc = dfs(nxt)
                if cyc:
                    return cyc
        stack_trace.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            cycle = dfs(node)
            if cycle:
                errors.append(
                    "lock-order cycle: " + " -> ".join(cycle))
                break
    return errors


def lint_roots(roots: list) -> int:
    locks: dict[str, Lock] = {}
    edges: list = []
    errors: list = []
    files = []
    for root in roots:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith((".h", ".hpp", ".cpp", ".cc")):
                    files.append(os.path.join(dirpath, name))
    for path in sorted(files):
        with open(path, encoding="utf-8") as f:
            parse_file(path, f.read(), locks, edges, errors)
    errors += check(locks, edges)

    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"check_lock_order: FAILED ({len(errors)} error(s))",
              file=sys.stderr)
        return 1
    ranked = sorted((l for l in locks.values()), key=lambda l: l.rank)
    print(f"check_lock_order: OK — {len(locks)} lock(s), "
          f"{len(edges)} declared edge(s), hierarchy is a DAG")
    for lock in ranked:
        print(f"  rank {lock.rank:>3}  {lock.qualified}")
    return 0


# --- self test ------------------------------------------------------------


def run_case(name: str, source: str, expect_substrings: list) -> list:
    locks: dict[str, Lock] = {}
    edges: list = []
    errors: list = []
    parse_file(f"<{name}>", source, locks, edges, errors)
    errors += check(locks, edges)
    failures = []
    if not expect_substrings and errors:
        failures.append(f"{name}: expected clean, got {errors}")
    for want in expect_substrings:
        if not any(want in e for e in errors):
            failures.append(
                f"{name}: expected an error containing '{want}', "
                f"got {errors or ['<no errors>']}")
    return failures


def self_test() -> int:
    ok_source = """
    class A {
      Mutex first_ D2T_ACQUIRED_BEFORE(second_) D2T_LOCK_RANK(10);
      SharedMutex second_ D2T_LOCK_RANK(20);
    };
    class B {
      mutable Mutex mu_ D2T_LOCK_RANK(30);
      int value_ D2T_GUARDED_BY(mu_) = 0;
    };
    """
    multiline_source = """
    class C {
      mutable SharedMutex wide_mu_ D2T_ACQUIRED_BEFORE(narrow_mu_)
          D2T_LOCK_RANK(1);
      Mutex narrow_mu_ D2T_LOCK_RANK(2);
    };
    """
    missing_rank = """
    class D { Mutex mu_; };
    """
    duplicate_rank = """
    class E { Mutex a_ D2T_LOCK_RANK(7); Mutex b_ D2T_LOCK_RANK(7); };
    """
    inversion = """
    class F {
      Mutex low_ D2T_LOCK_RANK(10);
      Mutex high_ D2T_ACQUIRED_BEFORE(low_) D2T_LOCK_RANK(20);
    };
    """
    cycle = """
    class G {
      Mutex a_ D2T_ACQUIRED_BEFORE(b_) D2T_LOCK_RANK(10);
      Mutex b_ D2T_ACQUIRED_BEFORE(c_) D2T_LOCK_RANK(20);
      Mutex c_ D2T_ACQUIRED_BEFORE(a_) D2T_LOCK_RANK(30);
    };
    """
    unknown_target = """
    class H { Mutex a_ D2T_ACQUIRED_BEFORE(ghost_) D2T_LOCK_RANK(5); };
    """
    same_name_two_classes = """
    class I { Mutex mu_ D2T_LOCK_RANK(1); };
    class J { Mutex mu_ D2T_LOCK_RANK(2); };
    """
    not_a_member = """
    void f(Mutex* mu);
    class K { Mutex& ref(); };
    """

    failures = []
    failures += run_case("ok", ok_source, [])
    failures += run_case("multiline", multiline_source, [])
    failures += run_case("missing-rank", missing_rank,
                         ["declares no D2T_LOCK_RANK"])
    failures += run_case("duplicate-rank", duplicate_rank, ["reuses rank 7"])
    failures += run_case("inversion", inversion,
                         ["inverts the rank hierarchy"])
    failures += run_case("cycle", cycle, ["lock-order cycle"])
    failures += run_case("unknown-target", unknown_target,
                         ["unknown lock 'H::ghost_'"])
    failures += run_case("scoped-names", same_name_two_classes, [])
    failures += run_case("not-a-member", not_a_member, [])

    if failures:
        for f in failures:
            print(f, file=sys.stderr)
        print(f"self-test: FAILED ({len(failures)})", file=sys.stderr)
        return 1
    print("self-test: OK (9 cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", action="append", default=[],
                    help="directory to lint (repeatable; default: src)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in unit cases and exit")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    roots = args.root or ["src"]
    for root in roots:
        if not os.path.isdir(root):
            print(f"check_lock_order: no such directory: {root}",
                  file=sys.stderr)
            return 2
    return lint_roots(roots)


if __name__ == "__main__":
    sys.exit(main())
