#include "d2tree/mds/cluster.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace d2tree {

FunctionalCluster::FunctionalCluster(const NamespaceTree& tree,
                                     std::size_t mds_count,
                                     D2TreeConfig config)
    : tree_(tree),
      capacities_(MdsCluster::Homogeneous(mds_count)),
      scheme_(std::move(config)) {
  assert(mds_count > 0);
  assignment_ = scheme_.Partition(tree_, capacities_);
  servers_.reserve(mds_count);
  for (std::size_t k = 0; k < mds_count; ++k)
    servers_.push_back(std::make_unique<MdsServer>(static_cast<MdsId>(k)));
  Materialize();
}

InodeRecord FunctionalCluster::MakeRecord(NodeId id) const {
  const MetaNode& n = tree_.node(id);
  InodeRecord r;
  r.id = id;
  r.parent = n.parent;
  r.name = n.name;
  r.type = n.type;
  r.attrs.mode = n.is_directory() ? 0755 : 0644;
  r.attrs.size = n.is_directory() ? 4096 : 1024;
  r.version = 1;
  return r;
}

void FunctionalCluster::Materialize() {
  gl_master_version_.store(1, std::memory_order_release);
  for (NodeId id = 0; id < tree_.size(); ++id) {
    const InodeRecord record = MakeRecord(id);
    const MdsId owner = assignment_.OwnerOf(id);
    if (owner == kReplicated) {
      for (auto& server : servers_) server->global_replica().Put(record);
    } else {
      servers_[owner]->local().Put(record);
    }
  }
  for (auto& server : servers_) server->set_gl_version(1);
}

FunctionalCluster::ClientResult FunctionalCluster::StatAt(NodeId target,
                                                          MdsId at) {
  ClientResult out;
  const auto ancestors = tree_.AncestorsOf(target);
  MdsOpResult r = servers_[at]->Stat(target, ancestors);
  out.hops = 1;
  out.served_by = at;
  if (r.status == MdsStatus::kWrongServer) {
    // Forward to the authoritative owner (the receiving server consults
    // its copy of the local index — here: the cluster's).
    ++forwards_;
    const MdsId owner = assignment_.OwnerOf(target);
    const MdsId retry = owner == kReplicated ? at : owner;
    if (retry != at) {
      r = servers_[retry]->Stat(target, ancestors);
      out.hops = 2;
      out.served_by = retry;
    }
  }
  out.status = r.status;
  out.record = r.record;
  return out;
}

FunctionalCluster::ClientResult FunctionalCluster::Stat(
    const std::string& path) {
  NodeId target;
  MdsId fallback;
  {
    std::lock_guard lock(client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return {};
    tree_.AddAccess(target);
    fallback = static_cast<MdsId>(rng_.NextBounded(servers_.size()));
  }
  std::shared_lock topo(topo_mu_);
  const auto owner = scheme_.local_index().Route(tree_, target);
  return StatAt(target, owner.value_or(fallback));
}

FunctionalCluster::ClientResult FunctionalCluster::StatVia(
    const std::string& path, MdsId via) {
  NodeId target;
  {
    std::lock_guard lock(client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return {};
    tree_.AddAccess(target);
  }
  std::shared_lock topo(topo_mu_);
  return StatAt(target, via);
}

FunctionalCluster::ClientResult FunctionalCluster::Update(
    const std::string& path, std::uint64_t mtime) {
  ClientResult out;
  NodeId target;
  std::vector<NodeId> ancestors;
  {
    std::lock_guard lock(client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return out;
    tree_.AddAccess(target);
    ancestors = tree_.AncestorsOf(target);
  }

  std::shared_lock topo(topo_mu_);
  if (assignment_.IsReplicated(target)) {
    // Global-layer update: lock, bump the master version, write every
    // replica before acking (Sec. IV-A3). The wait for the lock is the
    // live-cluster contention signal the harness reports.
    const auto t0 = std::chrono::steady_clock::now();
    std::lock_guard lock(gl_mu_);
    gl_lock_wait_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count(),
        std::memory_order_relaxed);
    const std::uint64_t version =
        gl_master_version_.load(std::memory_order_relaxed) + 1;
    gl_master_version_.store(version, std::memory_order_release);
    for (auto& server : servers_) {
      server->global_replica().Mutate(target, mtime);
      server->set_gl_version(version);
    }
    ++gl_updates_;
    out.status = MdsStatus::kOk;
    out.served_by = 0;  // any replica can answer; pick deterministically
    out.record = *servers_[out.served_by]->global_replica().Get(target);
    return out;
  }

  const MdsId owner = assignment_.OwnerOf(target);
  const MdsOpResult r = servers_[owner]->UpdateLocal(target, ancestors, mtime);
  out.status = r.status;
  out.record = r.record;
  out.served_by = owner;
  return out;
}

std::size_t FunctionalCluster::RunAdjustmentRound() {
  // Freeze popularity charging, then enter an exclusive placement epoch:
  // no client routes or touches a store while records are in flight
  // between servers (lock order: client_mu_ → topo_mu_).
  std::lock_guard client(client_mu_);
  std::unique_lock topo(topo_mu_);
  tree_.RecomputeSubtreePopularity();
  const auto owners_before = scheme_.subtree_owners();
  const RebalanceResult plan =
      scheme_.Rebalance(tree_, capacities_, assignment_);
  const auto& owners_after = scheme_.subtree_owners();
  const auto& subtrees = scheme_.layers().subtrees;

  // Physically move each migrated subtree's records.
  std::size_t moved_records = 0;
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    const MdsId from = owners_before[i];
    const MdsId to = owners_after[i];
    if (from == to) continue;
    std::vector<NodeId> members;
    members.reserve(subtrees[i].node_count);
    tree_.VisitSubtree(subtrees[i].root,
                       [&](NodeId v) { members.push_back(v); });
    auto records = servers_[from]->local().ExtractAll(members);
    moved_records += records.size();
    servers_[to]->local().InsertAll(records);
  }
  assignment_ = plan.assignment;
  adjustment_rounds_.fetch_add(1, std::memory_order_relaxed);
  return moved_records;
}

bool FunctionalCluster::CheckConsistency(std::string* error) const {
  // Shared placement lock: no migration in flight. The GL lock quiesces
  // writers so no replica is observed mid-broadcast.
  std::shared_lock topo(topo_mu_);
  std::lock_guard gl(gl_mu_);
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  // Per-node placement audit.
  for (NodeId id = 0; id < tree_.size(); ++id) {
    if (assignment_.IsReplicated(id)) {
      for (const auto& server : servers_) {
        if (!server->global_replica().Contains(id))
          return fail("GL node " + tree_.PathOf(id) + " missing on server " +
                      std::to_string(server->id()));
        if (server->local().Contains(id))
          return fail("GL node " + tree_.PathOf(id) + " duplicated locally");
      }
    } else {
      std::size_t holders = 0;
      for (const auto& server : servers_) {
        holders += server->local().Contains(id);
        if (server->global_replica().Contains(id))
          return fail("LL node " + tree_.PathOf(id) + " found in a GL replica");
      }
      if (holders != 1)
        return fail("LL node " + tree_.PathOf(id) + " held by " +
                    std::to_string(holders) + " servers");
      const MdsId owner = assignment_.OwnerOf(id);
      if (!servers_[owner]->local().Contains(id))
        return fail("LL node " + tree_.PathOf(id) + " not at its owner");
    }
  }
  // Replica versions.
  const std::uint64_t master = gl_master_version_.load();
  for (const auto& server : servers_) {
    if (server->gl_version() != master)
      return fail("server " + std::to_string(server->id()) +
                  " GL replica at stale version");
  }
  // Record ↔ namespace agreement (spot fields).
  for (NodeId id = 0; id < tree_.size(); ++id) {
    const MdsId owner = assignment_.OwnerOf(id);
    const auto rec = owner == kReplicated
                         ? servers_[0]->global_replica().Get(id)
                         : servers_[owner]->local().Get(id);
    if (!rec.has_value()) return fail("record lost for " + tree_.PathOf(id));
    if (rec->name != tree_.node(id).name || rec->parent != tree_.node(id).parent)
      return fail("record mismatch for " + tree_.PathOf(id));
  }
  return true;
}

}  // namespace d2tree
