#include "d2tree/mds/cluster.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <unordered_set>

#include "d2tree/core/routing.h"

namespace d2tree {

FunctionalCluster::FunctionalCluster(const NamespaceTree& tree,
                                     std::size_t mds_count,
                                     D2TreeConfig config,
                                     std::shared_ptr<Transport> transport)
    : tree_(tree),
      transport_(transport != nullptr
                     ? std::move(transport)
                     : std::make_shared<InProcessTransport>()) {
  assert(mds_count > 0);
  // Nobody else can reach `this` yet, but the guarded members are
  // initialized under the placement lock so every access — including the
  // ones inside Materialize() — carries its capability.
  WriterMutexLock topo(&topo_mu_);
  capacities_ = MdsCluster::Homogeneous(mds_count);
  scheme_ = D2TreeScheme(std::move(config));
  assignment_ = scheme_.Partition(tree_, capacities_);
  servers_.reserve(mds_count);
  for (std::size_t k = 0; k < mds_count; ++k)
    servers_.push_back(std::make_unique<MdsServer>(static_cast<MdsId>(k)));
  Materialize();
}

std::size_t FunctionalCluster::mds_count() const {
  ReaderMutexLock topo(&topo_mu_);
  return servers_.size();
}

std::size_t FunctionalCluster::alive_count() const {
  ReaderMutexLock topo(&topo_mu_);
  return AliveCountLocked();
}

bool FunctionalCluster::IsServerAlive(MdsId mds) const {
  ReaderMutexLock topo(&topo_mu_);
  return AliveLocked(mds);
}

MdsId FunctionalCluster::AnyAliveLocked() const {
  for (const auto& server : servers_)
    if (server->alive()) return server->id();
  return -1;
}

std::size_t FunctionalCluster::AliveCountLocked() const {
  std::size_t n = 0;
  for (const auto& server : servers_) n += server->alive();
  return n;
}

MdsCluster FunctionalCluster::CollectHeartbeats() {
  MdsCluster effective = capacities_;
  const Message hb{.type = MsgType::kHeartbeat};
  for (std::size_t k = 0; k < servers_.size(); ++k) {
    if (!servers_[k]->alive() || servers_[k]->heartbeats_suppressed()) {
      effective.capacities[k] = 0.0;  // dead/silenced servers send nothing
      continue;
    }
    // Heartbeats are deliberately one-try: their *absence* is the failure
    // signal, so a retransmitting sender would defeat the detector.
    const Delivery d = transport_->Send(MdsAddress(static_cast<MdsId>(k)),
                                        MonitorAddress(), hb);
    AccountControl(d);
    if (!d.delivered) {
      effective.capacities[k] = 0.0;
      heartbeats_lost_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return effective;
}

InodeRecord FunctionalCluster::MakeRecord(NodeId id) const {
  const MetaNode& n = tree_.node(id);
  InodeRecord r;
  r.id = id;
  r.parent = n.parent;
  r.name = n.name;
  r.type = n.type;
  r.attrs.mode = n.is_directory() ? 0755 : 0644;
  r.attrs.size = n.is_directory() ? 4096 : 1024;
  r.version = 1;
  return r;
}

void FunctionalCluster::Materialize() {
  gl_master_version_.store(1, std::memory_order_release);
  for (NodeId id = 0; id < tree_.size(); ++id) {
    const InodeRecord record = MakeRecord(id);
    const MdsId owner = assignment_.OwnerOf(id);
    if (owner == kReplicated) {
      for (auto& server : servers_) server->global_replica().Put(record);
    } else {
      servers_[owner]->local().Put(record);
    }
  }
  for (auto& server : servers_) server->set_gl_version(1);
}

void FunctionalCluster::RebuildGlReplicaLocked(MdsId mds) {
  const std::uint64_t master =
      gl_master_version_.load(std::memory_order_acquire);
  MetadataStore& replica = servers_[mds]->global_replica();
  replica.Clear();
  const MdsServer* donor = nullptr;
  for (const auto& server : servers_) {
    if (server->id() != mds && server->alive() &&
        server->gl_version() == master) {
      donor = server.get();
      break;
    }
  }
  Message rebuild{.type = MsgType::kGlCommit};
  if (donor != nullptr) {
    const auto snapshot = donor->global_replica().Snapshot();
    rebuild.payload_records = snapshot.size();
    replica.InsertAll(snapshot);
  } else {
    // No live replica to copy from: re-materialize from the backing store
    // (update history is lost, but the namespace itself is durable).
    for (NodeId id = 0; id < tree_.size(); ++id) {
      if (!assignment_.IsReplicated(id)) continue;
      replica.Put(MakeRecord(id));
      ++rebuild.payload_records;
    }
  }
  // The bulk transfer rides the wire (donor replica, else the Monitor's
  // backing store); the rebuild itself is fenced by the placement epoch,
  // so an undeliverable leg only loses the latency, not the data.
  AccountControl(transport_->SendReliable(
      donor != nullptr ? MdsAddress(donor->id()) : MonitorAddress(),
      MdsAddress(mds), rebuild));
  servers_[mds]->set_gl_version(master);
}

FunctionalCluster::ClientResult FunctionalCluster::StatAt(NodeId target,
                                                          MdsId at) {
  ClientResult out;
  const auto ancestors = tree_.AncestorsOf(target);
  out.hops = 1;
  out.served_by = at;
  bool failed_over = false;

  const Message req{.type = MsgType::kStatRequest, .target = target};
  Delivery d = transport_->Send(ClientAddress(), MdsAddress(at), req);
  out.sim_latency_us += d.latency_us;
  if (!d.delivered || !AliveLocked(at)) {
    // The contact failed — dead server, or the request leg was lost: the
    // client invalidates its cached route and retries once against the
    // authoritative placement (bounded failover).
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    failed_over = true;
    const MdsId owner = assignment_.OwnerOf(target);
    const MdsId retry = owner == kReplicated ? AnyAliveLocked() : owner;
    if (!AliveLocked(retry)) {
      // The authoritative owner is down too: nobody can answer until an
      // adjustment round re-places the orphaned subtree.
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      return out;
    }
    at = retry;
    out.hops = 2;
    out.served_by = at;
    d = transport_->Send(ClientAddress(), MdsAddress(at), req);
    out.sim_latency_us += d.latency_us;
    if (!d.delivered) {
      // One failover is the bound — a second lost leg means the op fails.
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      return out;
    }
  }

  MdsOpResult r = servers_[at]->Stat(target, ancestors);
  if (r.status == MdsStatus::kWrongServer) {
    // Forward to the authoritative owner (the receiving server consults
    // its copy of the local index — here: the cluster's).
    ++forwards_;
    const MdsId owner = assignment_.OwnerOf(target);
    const MdsId retry = owner == kReplicated ? at : owner;
    if (retry != at) {
      ++out.hops;
      ++out.jumps;
      out.served_by = retry;
      if (!AliveLocked(retry)) {
        // Owner crashed and its subtree has not been re-placed yet.
        failover_redirects_.fetch_add(1, std::memory_order_relaxed);
        out.status = MdsStatus::kUnavailable;
        out.op_class = OpClass::kFailover;
        return out;
      }
      const Message fwd{.type = MsgType::kForward, .target = target};
      const Delivery leg =
          transport_->Send(MdsAddress(at), MdsAddress(retry), fwd);
      out.sim_latency_us += leg.latency_us;
      if (!leg.delivered) {
        // The forward was lost between servers; the client times out and
        // gives up (its next attempt would go straight to the owner).
        failover_redirects_.fetch_add(1, std::memory_order_relaxed);
        out.status = MdsStatus::kUnavailable;
        out.op_class = OpClass::kFailover;
        return out;
      }
      r = servers_[retry]->Stat(target, ancestors);
    }
  }

  const Message resp{
      .type = MsgType::kStatResponse, .target = target, .status = r.status};
  const Delivery back =
      transport_->Send(MdsAddress(out.served_by), ClientAddress(), resp);
  out.sim_latency_us += back.latency_us;
  if (!back.delivered) {
    // Answer computed but the response leg was lost: to the client this is
    // a timeout — it invalidates its cached route like any failover.
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    return out;
  }
  out.status = r.status;
  out.record = r.record;
  out.op_class = failed_over                        ? OpClass::kFailover
                 : assignment_.IsReplicated(target) ? OpClass::kGlHit
                 : out.jumps == 0                   ? OpClass::kLl0Jump
                                                    : OpClass::kLl1Jump;
  return out;
}

FunctionalCluster::ClientResult FunctionalCluster::Stat(
    const std::string& path) {
  NodeId target;
  std::uint64_t entropy;
  {
    MutexLock lock(&client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return {};
    tree_.AddAccess(target);
    entropy = rng_();
  }
  ReaderMutexLock topo(&topo_mu_);
  const RouteDecision route =
      DecideRoute(tree_, scheme_.local_index(), target);
  // Entry for GL-resident targets: any server (picked under the placement
  // lock, since AddServer may grow the cluster concurrently).
  const MdsId fallback = static_cast<MdsId>(entropy % servers_.size());
  return StatAt(target, route.owner.value_or(fallback));
}

FunctionalCluster::ClientResult FunctionalCluster::StatVia(
    const std::string& path, MdsId via) {
  NodeId target;
  {
    MutexLock lock(&client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return {};
    tree_.AddAccess(target);
  }
  ReaderMutexLock topo(&topo_mu_);
  if (via < 0 || static_cast<std::size_t>(via) >= servers_.size()) {
    // No such server: reject instead of indexing servers_ out of range.
    ClientResult out;
    out.status = MdsStatus::kUnavailable;
    out.served_by = via;
    out.hops = 0;  // nothing was contacted
    out.op_class = OpClass::kFailover;
    return out;
  }
  return StatAt(target, via);
}

FunctionalCluster::ClientResult FunctionalCluster::Update(
    const std::string& path, std::uint64_t mtime) {
  ClientResult out;
  NodeId target;
  std::vector<NodeId> ancestors;
  {
    MutexLock lock(&client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return out;
    tree_.AddAccess(target);
    ancestors = tree_.AncestorsOf(target);
  }

  ReaderMutexLock topo(&topo_mu_);
  const RouteDecision route = DecideRoute(tree_, scheme_.local_index(), target);
  if (route.gl_resident()) {
    // Global-layer update: lock, bump the master version, write every
    // live replica before acking (Sec. IV-A3); dead replicas catch up via
    // the rebuild at revive. The wait for the lock is the live-cluster
    // contention signal the harness reports.
    const auto t0 = std::chrono::steady_clock::now();
    MutexLock lock(&gl_mu_);
    gl_lock_wait_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count(),
        std::memory_order_relaxed);
    const MdsId coord = AnyAliveLocked();
    if (coord < 0) {
      out.status = MdsStatus::kUnavailable;
      return out;
    }
    out.served_by = coord;  // the coordinating replica answers
    const Message req{
        .type = MsgType::kUpdateRequest, .target = target, .mtime = mtime};
    const Delivery d =
        transport_->Send(ClientAddress(), MdsAddress(coord), req);
    out.sim_latency_us += d.latency_us;
    if (!d.delivered) {
      failover_redirects_.fetch_add(1, std::memory_order_relaxed);
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      return out;
    }
    // Write-lock round with the Monitor's lock service (Sec. IV-A3).
    const Message lock_msg{.type = MsgType::kGlWriteLock, .target = target};
    const Delivery lock_req = transport_->SendReliable(
        MdsAddress(coord), MonitorAddress(), lock_msg);
    const Delivery lock_grant = transport_->SendReliable(
        MonitorAddress(), MdsAddress(coord), lock_msg);
    out.sim_latency_us += lock_req.latency_us + lock_grant.latency_us;
    const std::uint64_t version =
        gl_master_version_.load(std::memory_order_relaxed) + 1;
    gl_master_version_.store(version, std::memory_order_release);
    const Message commit{.type = MsgType::kGlCommit,
                         .target = target,
                         .mtime = mtime,
                         .payload_records = 1};
    double broadcast_us = 0.0;
    for (auto& server : servers_) {
      if (!server->alive()) continue;
      if (server->id() != coord) {
        // Replica legs fan out concurrently; the ack the coordinator waits
        // for is the slowest one. A leg a partition defeats is fenced by
        // the version and caught up by the rebuild sweep.
        const Delivery leg = transport_->SendReliable(
            MdsAddress(coord), MdsAddress(server->id()), commit);
        broadcast_us = std::max(broadcast_us, leg.latency_us);
      }
      server->global_replica().Mutate(target, mtime);
      server->set_gl_version(version);
    }
    out.sim_latency_us += broadcast_us;
    ++gl_updates_;
    out.record = *servers_[coord]->global_replica().Get(target);
    const Message resp{.type = MsgType::kUpdateResponse,
                       .target = target,
                       .status = MdsStatus::kOk};
    const Delivery back =
        transport_->Send(MdsAddress(coord), ClientAddress(), resp);
    out.sim_latency_us += back.latency_us;
    if (!back.delivered) {
      // Committed but unacknowledged: the client sees a timeout.
      failover_redirects_.fetch_add(1, std::memory_order_relaxed);
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      return out;
    }
    out.status = MdsStatus::kOk;
    out.op_class = OpClass::kGlHit;
    return out;
  }

  const MdsId owner = *route.owner;
  out.served_by = owner;
  if (!AliveLocked(owner)) {
    // Writes have a single authority; with the owner down the client can
    // only invalidate its cache and report the outage.
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    return out;
  }
  const Message req{
      .type = MsgType::kUpdateRequest, .target = target, .mtime = mtime};
  const Delivery d = transport_->Send(ClientAddress(), MdsAddress(owner), req);
  out.sim_latency_us += d.latency_us;
  if (!d.delivered) {
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    return out;
  }
  const MdsOpResult r = servers_[owner]->UpdateLocal(target, ancestors, mtime);
  const Message resp{
      .type = MsgType::kUpdateResponse, .target = target, .status = r.status};
  const Delivery back =
      transport_->Send(MdsAddress(owner), ClientAddress(), resp);
  out.sim_latency_us += back.latency_us;
  if (!back.delivered) {
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    return out;
  }
  out.status = r.status;
  out.record = r.record;
  out.op_class = OpClass::kLl0Jump;
  return out;
}

bool FunctionalCluster::KillServer(MdsId mds) {
  WriterMutexLock topo(&topo_mu_);
  if (!AliveLocked(mds)) return false;
  if (AliveCountLocked() <= 1) return false;  // keep the namespace reachable
  servers_[mds]->set_alive(false);
  // A crash loses the volatile stores; orphaned local records are
  // recovered from the backing store when their subtrees are re-placed.
  servers_[mds]->local().Clear();
  servers_[mds]->global_replica().Clear();
  return true;
}

bool FunctionalCluster::ReviveServer(MdsId mds) {
  WriterMutexLock topo(&topo_mu_);
  if (mds < 0 || static_cast<std::size_t>(mds) >= servers_.size() ||
      servers_[mds]->alive()) {
    return false;
  }
  {
    MutexLock gl(&gl_mu_);
    // Replica first, liveness second: the server never serves a stale or
    // empty global layer.
    RebuildGlReplicaLocked(mds);
  }
  // Fast restart: if the crash window closed before any adjustment round,
  // this server is still the assigned owner of its subtrees — once alive
  // again nobody would re-place them, so their records must come back with
  // it, re-materialized from the backing store.
  std::uint64_t restored = 0;
  for (NodeId id = 0; id < tree_.size(); ++id) {
    if (assignment_.IsReplicated(id) || assignment_.OwnerOf(id) != mds)
      continue;
    servers_[mds]->local().Put(MakeRecord(id));
    ++restored;
  }
  recovered_records_.fetch_add(restored, std::memory_order_relaxed);
  servers_[mds]->set_heartbeats_suppressed(false);
  servers_[mds]->set_alive(true);
  return true;
}

MdsId FunctionalCluster::AddServer(double capacity) {
  WriterMutexLock topo(&topo_mu_);
  const MdsId id = static_cast<MdsId>(servers_.size());
  servers_.push_back(std::make_unique<MdsServer>(id));
  capacities_.capacities.push_back(capacity);
  MutexLock gl(&gl_mu_);
  RebuildGlReplicaLocked(id);
  return id;
}

bool FunctionalCluster::SetHeartbeatSuppressed(MdsId mds, bool suppressed) {
  WriterMutexLock topo(&topo_mu_);
  if (mds < 0 || static_cast<std::size_t>(mds) >= servers_.size())
    return false;
  servers_[mds]->set_heartbeats_suppressed(suppressed);
  return true;
}

bool FunctionalCluster::SetClientLinkDrop(MdsId mds, double probability) {
  WriterMutexLock topo(&topo_mu_);
  if (mds < 0 || static_cast<std::size_t>(mds) >= servers_.size())
    return false;
  return transport_->SetLinkDropRate(ClientAddress(), MdsAddress(mds),
                                     probability);
}

bool FunctionalCluster::SetMonitorPartition(MdsId mds, bool partitioned) {
  WriterMutexLock topo(&topo_mu_);
  if (mds < 0 || static_cast<std::size_t>(mds) >= servers_.size())
    return false;
  return transport_->SetPartitioned(MonitorAddress(), MdsAddress(mds),
                                    partitioned);
}

std::size_t FunctionalCluster::RunAdjustmentRound() {
  // Freeze popularity charging, then enter an exclusive placement epoch:
  // no client routes or touches a store while records are in flight
  // between servers (lock order: client_mu_ → topo_mu_).
  MutexLock client(&client_mu_);
  WriterMutexLock topo(&topo_mu_);

  {
    // Defensive sweep: any live server whose GL replica lags the master
    // (revived/added under unusual interleavings) is rebuilt before it
    // can take subtree traffic.
    MutexLock gl(&gl_mu_);
    const std::uint64_t master =
        gl_master_version_.load(std::memory_order_acquire);
    for (const auto& server : servers_)
      if (server->alive() && server->gl_version() != master)
        RebuildGlReplicaLocked(server->id());
  }

  const MdsCluster effective = CollectHeartbeats();
  if (effective.TotalCapacity() <= 0.0) return 0;  // nobody can take load

  tree_.RecomputeSubtreePopularity();
  const auto owners_before = scheme_.subtree_owners();
  const RebalanceResult plan =
      scheme_.Rebalance(tree_, effective, assignment_);
  const auto& owners_after = scheme_.subtree_owners();
  const auto& subtrees = scheme_.layers().subtrees;

  // Physically move each migrated subtree's records.
  std::size_t moved_records = 0;
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    const MdsId from = owners_before[i];
    const MdsId to = owners_after[i];
    if (from == to) continue;
    std::vector<NodeId> members;
    members.reserve(subtrees[i].node_count);
    tree_.VisitSubtree(subtrees[i].root,
                       [&](NodeId v) { members.push_back(v); });
    std::vector<InodeRecord> records;
    if (from >= 0 && static_cast<std::size_t>(from) < servers_.size())
      records = servers_[from]->local().ExtractAll(members);
    if (records.size() < members.size()) {
      // Crash recovery: whatever the failed owner lost is rebuilt from
      // the backing store before the subtree lands on its new server.
      std::unordered_set<NodeId> extracted;
      extracted.reserve(records.size());
      for (const InodeRecord& r : records) extracted.insert(r.id);
      for (NodeId v : members)
        if (!extracted.contains(v)) records.push_back(MakeRecord(v));
      recovered_records_.fetch_add(members.size() - extracted.size(),
                                   std::memory_order_relaxed);
    }
    moved_records += records.size();
    // The migration is a pending-pool round trip (Sec. IV-B): the donor
    // pushes the subtree into the pool, the Monitor grants it to the
    // puller. The physical move is fenced by the exclusive placement
    // epoch, so an unreachable donor (crashed, or Monitor⇄MDS partition)
    // still drains — its lost records were just recovered above, exactly
    // as for a heartbeat-silent server.
    Message push{.type = MsgType::kPendingPoolPush,
                 .target = subtrees[i].root,
                 .payload_records = records.size()};
    if (AliveLocked(from))
      AccountControl(
          transport_->SendReliable(MdsAddress(from), MonitorAddress(), push));
    push.type = MsgType::kPendingPoolPull;
    AccountControl(
        transport_->SendReliable(MonitorAddress(), MdsAddress(to), push));
    servers_[to]->local().InsertAll(records);
  }
  assignment_ = plan.assignment;
  adjustment_rounds_.fetch_add(1, std::memory_order_relaxed);
  return moved_records;
}

bool FunctionalCluster::CheckConsistency(std::string* error) const {
  // Shared placement lock: no migration in flight. The GL lock quiesces
  // writers so no replica is observed mid-broadcast.
  ReaderMutexLock topo(&topo_mu_);
  MutexLock gl(&gl_mu_);
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  std::vector<const MdsServer*> live;
  for (const auto& server : servers_)
    if (server->alive()) live.push_back(server.get());
  if (live.empty()) return fail("no server is alive");
  // Per-node placement audit, over the live membership.
  for (NodeId id = 0; id < tree_.size(); ++id) {
    if (assignment_.IsReplicated(id)) {
      for (const MdsServer* server : live) {
        if (!server->global_replica().Contains(id))
          return fail("GL node " + tree_.PathOf(id) + " missing on server " +
                      std::to_string(server->id()));
        if (server->local().Contains(id))
          return fail("GL node " + tree_.PathOf(id) + " duplicated locally");
      }
    } else {
      const MdsId owner = assignment_.OwnerOf(id);
      const bool owner_alive = AliveLocked(owner);
      std::size_t holders = 0;
      for (const MdsServer* server : live) {
        holders += server->local().Contains(id);
        if (server->global_replica().Contains(id))
          return fail("LL node " + tree_.PathOf(id) + " found in a GL replica");
      }
      if (owner_alive) {
        if (holders != 1)
          return fail("LL node " + tree_.PathOf(id) + " held by " +
                      std::to_string(holders) + " servers");
        if (!servers_[owner]->local().Contains(id))
          return fail("LL node " + tree_.PathOf(id) + " not at its owner");
      } else if (holders != 0) {
        // Owner crashed: the node is orphaned until an adjustment round
        // re-places its subtree — nobody else may claim it meanwhile.
        return fail("orphaned LL node " + tree_.PathOf(id) +
                    " held by a live server");
      }
    }
  }
  // Replica versions (live replicas only; the dead catch up on revive).
  const std::uint64_t master = gl_master_version_.load();
  for (const MdsServer* server : live) {
    if (server->gl_version() != master)
      return fail("server " + std::to_string(server->id()) +
                  " GL replica at stale version");
  }
  // Record ↔ namespace agreement (spot fields).
  for (NodeId id = 0; id < tree_.size(); ++id) {
    const MdsId owner = assignment_.OwnerOf(id);
    if (owner != kReplicated && !AliveLocked(owner)) continue;  // orphaned
    const auto rec = owner == kReplicated
                         ? live.front()->global_replica().Get(id)
                         : servers_[owner]->local().Get(id);
    if (!rec.has_value()) return fail("record lost for " + tree_.PathOf(id));
    if (rec->name != tree_.node(id).name || rec->parent != tree_.node(id).parent)
      return fail("record mismatch for " + tree_.PathOf(id));
  }
  return true;
}

}  // namespace d2tree
