#include "d2tree/mds/cluster.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "d2tree/core/routing.h"
#include "d2tree/storage/sstable.h"

namespace d2tree {

FunctionalCluster::FunctionalCluster(const NamespaceTree& tree,
                                     std::size_t mds_count,
                                     D2TreeConfig config,
                                     std::shared_ptr<Transport> transport,
                                     StoreSpec store)
    : tree_(tree),
      transport_(transport != nullptr
                     ? std::move(transport)
                     : std::make_shared<InProcessTransport>()),
      store_spec_(std::move(store)) {
  assert(mds_count > 0);
  if (store_spec_.persistent()) {
    // Sealed tables in flight live under <data_dir>/ship; per-server
    // engine roots are created by the engines themselves.
    std::error_code ec;
    std::filesystem::create_directories(store_spec_.data_dir + "/ship", ec);
  }
  // Nobody else can reach `this` yet, but the guarded members are
  // initialized under the placement lock so every access — including the
  // ones inside Materialize() — carries its capability.
  WriterMutexLock topo(&topo_mu_);
  capacities_ = MdsCluster::Homogeneous(mds_count);
  scheme_ = D2TreeScheme(std::move(config));
  assignment_ = scheme_.Partition(tree_, capacities_);
  servers_.reserve(mds_count);
  mds_wals_.reserve(mds_count);
  for (std::size_t k = 0; k < mds_count; ++k) {
    servers_.push_back(std::make_unique<MdsServer>(
        static_cast<MdsId>(k), ServerStoreSpec(static_cast<MdsId>(k))));
    mds_wals_.push_back(std::make_unique<Wal>());
  }
  Materialize();
  // Genesis checkpoint: a crash before the first adjustment round must
  // recover to the initial partition.
  JournalCapacitiesLocked();
  JournalPlacementLocked();
}

StoreSpec FunctionalCluster::ServerStoreSpec(MdsId id) const {
  StoreSpec spec = store_spec_;
  if (spec.only_mds >= 0 && spec.only_mds != id) return StoreSpec{};
  if (spec.persistent())
    spec.data_dir += "/mds" + std::to_string(id);
  return spec;
}

std::string FunctionalCluster::ShipPath(const char* kind,
                                        std::uint64_t id) const {
  return store_spec_.data_dir + "/ship/" + kind + std::to_string(id) + ".sst";
}

std::string FunctionalCluster::SealForShipping(
    const char* kind, std::uint64_t id,
    const std::vector<InodeRecord>& records) const {
  if (!store_spec_.persistent() || records.empty()) return {};
  std::string path = ShipPath(kind, id);
  if (!WriteRecordsTable(records, path)) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return {};  // seal failed (disk trouble): the per-record path still works
  }
  return path;
}

std::size_t FunctionalCluster::mds_count() const {
  ReaderMutexLock topo(&topo_mu_);
  return servers_.size();
}

std::size_t FunctionalCluster::alive_count() const {
  ReaderMutexLock topo(&topo_mu_);
  return AliveCountLocked();
}

bool FunctionalCluster::IsServerAlive(MdsId mds) const {
  ReaderMutexLock topo(&topo_mu_);
  return AliveLocked(mds);
}

MdsId FunctionalCluster::AnyAliveLocked() const {
  for (const auto& server : servers_)
    if (server->alive()) return server->id();
  return -1;
}

std::size_t FunctionalCluster::AliveCountLocked() const {
  std::size_t n = 0;
  for (const auto& server : servers_) n += server->alive();
  return n;
}

MdsCluster FunctionalCluster::CollectHeartbeats() {
  MdsCluster effective = capacities_;
  const Message hb{.type = MsgType::kHeartbeat};
  for (std::size_t k = 0; k < servers_.size(); ++k) {
    if (!servers_[k]->alive() || servers_[k]->heartbeats_suppressed()) {
      effective.capacities[k] = 0.0;  // dead/silenced servers send nothing
      continue;
    }
    // Heartbeats get one tight retransmit (RetryPolicy::Heartbeat) so a
    // single stray drop does not fail a healthy server; the budget stays
    // well inside the heartbeat interval because *absence* is the failure
    // detector — a partition defeats every retry and the server is still
    // planned at capacity 0.
    if (!SendControl(MdsAddress(static_cast<MdsId>(k)), MonitorAddress(), hb,
                     RetryPolicy::Heartbeat(), k)) {
      effective.capacities[k] = 0.0;
      heartbeats_lost_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return effective;
}

bool FunctionalCluster::SendControl(const Address& from, const Address& to,
                                    const Message& msg,
                                    const RetryPolicy& policy,
                                    std::uint64_t nonce) {
  const RetryOutcome out =
      SendWithRetry(*transport_, from, to, msg, policy, nonce);
  control_ns_.fetch_add(
      static_cast<std::uint64_t>(out.delivery.latency_us * 1e3),
      std::memory_order_relaxed);
  retries_total_.fetch_add(static_cast<std::uint64_t>(out.retries()),
                           std::memory_order_relaxed);
  if (out.deadline_exceeded)
    deadline_exceeded_total_.fetch_add(1, std::memory_order_relaxed);
  return out.delivery.delivered;
}

void FunctionalCluster::ArmCrash(CrashSite site, bool torn_tail) {
  armed_torn_.store(torn_tail, std::memory_order_release);
  armed_site_.store(static_cast<int>(site), std::memory_order_release);
}

bool FunctionalCluster::MaybeCrash(CrashSite site) {
  int want = static_cast<int>(site);
  if (armed_site_.load(std::memory_order_acquire) != want) return false;
  if (!armed_site_.compare_exchange_strong(want, -1,
                                           std::memory_order_acq_rel))
    return false;  // another thread consumed the arm
  if (armed_torn_.exchange(false, std::memory_order_acq_rel)) {
    // Tear the freshest record mid-frame, as if the power cut during the
    // append: replay stops at the damaged frame and recovery truncates it.
    const std::size_t size = monitor_wal_.size_bytes();
    if (size > 0) monitor_wal_.TruncateTail(std::min<std::size_t>(size, 5));
    // The same cut hits every persistent local store mid-append: rip a few
    // bytes off each engine WAL so Recover()'s per-store Reopen must
    // detect and truncate the torn group-commit frames too (no-op on the
    // memory backend).
    for (auto& server : servers_) server->local().TearWalTail(5);
  }
  crashed_.store(true, std::memory_order_release);
  crashes_injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FunctionalCluster::JournalPlacementLocked() {
  WalRecord record;
  record.type = WalRecordType::kPlacementSnapshot;
  record.owners = scheme_.subtree_owners();
  record.version = gl_master_version_.load(std::memory_order_acquire);
  monitor_wal_.Append(record);
}

void FunctionalCluster::JournalCapacitiesLocked() {
  WalRecord record;
  record.type = WalRecordType::kCapacitySnapshot;
  record.capacities = capacities_.capacities;
  monitor_wal_.Append(record);
}

InodeRecord FunctionalCluster::MakeRecord(NodeId id) const {
  const MetaNode& n = tree_.node(id);
  InodeRecord r;
  r.id = id;
  r.parent = n.parent;
  r.name = n.name;
  r.type = n.type;
  r.attrs.mode = n.is_directory() ? 0755 : 0644;
  r.attrs.size = n.is_directory() ? 4096 : 1024;
  r.version = 1;
  return r;
}

void FunctionalCluster::Materialize() {
  gl_master_version_.store(1, std::memory_order_release);
  // A persistent store that opened existing data resumes rather than
  // restarts: records it already holds keep their mutated mtimes and
  // versions, and anything the freshly computed partition no longer
  // places here (the previous run migrated it away, or it was promoted
  // into the replicated crown) is dropped before the fill below.
  if (store_spec_.persistent()) {
    for (auto& server : servers_) {
      const MdsId id = server->id();
      for (NodeId held : server->local().HeldIds()) {
        if (held >= tree_.size() || assignment_.IsReplicated(held) ||
            assignment_.OwnerOf(held) != id) {
          server->local().Remove(held);
        }
      }
    }
  }
  for (NodeId id = 0; id < tree_.size(); ++id) {
    const InodeRecord record = MakeRecord(id);
    const MdsId owner = assignment_.OwnerOf(id);
    if (owner == kReplicated) {
      for (auto& server : servers_) server->global_replica().Put(record);
    } else {
      // Fill only what is missing or disagrees with the namespace (a
      // record surviving from a run that renamed it is re-stamped; a
      // record that merely mutated mtime/version is kept).
      const auto held = servers_[owner]->local().Get(id);
      if (!held.has_value() || held->name != record.name ||
          held->parent != record.parent || held->type != record.type) {
        servers_[owner]->local().Put(record);
      }
    }
  }
  for (auto& server : servers_) server->set_gl_version(1);
}

void FunctionalCluster::RebuildGlReplicaLocked(MdsId mds) {
  const std::uint64_t master =
      gl_master_version_.load(std::memory_order_acquire);
  MetadataStore& replica = servers_[mds]->global_replica();
  replica.Clear();
  const MdsServer* donor = nullptr;
  for (const auto& server : servers_) {
    if (server->id() != mds && server->alive() &&
        server->gl_version() == master) {
      donor = server.get();
      break;
    }
  }
  Message rebuild{.type = MsgType::kGlCommit};
  if (donor != nullptr) {
    const auto snapshot = donor->global_replica().Snapshot();
    rebuild.payload_records = snapshot.size();
    replica.InsertAll(snapshot);
  } else {
    // No live replica to copy from: re-materialize from the backing store
    // (update history is lost, but the namespace itself is durable).
    for (NodeId id = 0; id < tree_.size(); ++id) {
      if (!assignment_.IsReplicated(id)) continue;
      replica.Put(MakeRecord(id));
      ++rebuild.payload_records;
    }
  }
  // The bulk transfer rides the wire (donor replica, else the Monitor's
  // backing store); the rebuild itself is fenced by the placement epoch,
  // so an undeliverable leg only loses the latency, not the data.
  AccountControl(transport_->SendReliable(
      donor != nullptr ? MdsAddress(donor->id()) : MonitorAddress(),
      MdsAddress(mds), rebuild));
  servers_[mds]->set_gl_version(master);
}

FunctionalCluster::ClientResult FunctionalCluster::StatAt(NodeId target,
                                                          MdsId at) {
  ClientResult out;
  if (crashed_.load(std::memory_order_acquire) ||
      parked_nodes_.contains(target)) {
    // The metadata service is down (crash armed and fired), or the
    // target's subtree is parked mid-handoff in the pending pool: nobody
    // may answer until Recover() / the re-issued pull lands.
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    out.net_error = DeliveryError::kUndeliverable;
    out.hops = 0;  // nothing was contacted
    return out;
  }
  const auto ancestors = tree_.AncestorsOf(target);
  out.hops = 1;
  out.served_by = at;
  bool failed_over = false;

  const Message req{.type = MsgType::kStatRequest, .target = target};
  Delivery d = transport_->Send(ClientAddress(), MdsAddress(at), req);
  out.sim_latency_us += d.latency_us;
  if (!d.delivered || !AliveLocked(at)) {
    // The contact failed — dead server, or the request leg was lost: the
    // client invalidates its cached route and retries once against the
    // authoritative placement (bounded failover).
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    failed_over = true;
    // A lost leg keeps its own verdict; a delivered leg to a dead server
    // is the in-process analogue of a refused connection.
    out.net_error =
        !d.delivered ? d.error : DeliveryError::kUndeliverable;
    const MdsId owner = assignment_.OwnerOf(target);
    const MdsId retry = owner == kReplicated ? AnyAliveLocked() : owner;
    if (!AliveLocked(retry)) {
      // The authoritative owner is down too: nobody can answer until an
      // adjustment round re-places the orphaned subtree.
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      return out;
    }
    at = retry;
    out.hops = 2;
    out.served_by = at;
    d = transport_->Send(ClientAddress(), MdsAddress(at), req);
    out.sim_latency_us += d.latency_us;
    if (!d.delivered) {
      // One failover is the bound — a second lost leg means the op fails.
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      out.net_error = d.error;
      return out;
    }
  }

  MdsOpResult r = servers_[at]->Stat(target, ancestors);
  if (r.status == MdsStatus::kWrongServer) {
    // Forward to the authoritative owner (the receiving server consults
    // its copy of the local index — here: the cluster's).
    ++forwards_;
    const MdsId owner = assignment_.OwnerOf(target);
    const MdsId retry = owner == kReplicated ? at : owner;
    if (retry != at) {
      ++out.hops;
      ++out.jumps;
      out.served_by = retry;
      if (!AliveLocked(retry)) {
        // Owner crashed and its subtree has not been re-placed yet.
        failover_redirects_.fetch_add(1, std::memory_order_relaxed);
        out.status = MdsStatus::kUnavailable;
        out.op_class = OpClass::kFailover;
        out.net_error = DeliveryError::kUndeliverable;
        return out;
      }
      const Message fwd{.type = MsgType::kForward, .target = target};
      const Delivery leg =
          transport_->Send(MdsAddress(at), MdsAddress(retry), fwd);
      out.sim_latency_us += leg.latency_us;
      if (!leg.delivered) {
        // The forward was lost between servers; the client times out and
        // gives up (its next attempt would go straight to the owner).
        failover_redirects_.fetch_add(1, std::memory_order_relaxed);
        out.status = MdsStatus::kUnavailable;
        out.op_class = OpClass::kFailover;
        out.net_error = leg.error == DeliveryError::kUndeliverable
                            ? DeliveryError::kUndeliverable
                            : DeliveryError::kTimeout;
        return out;
      }
      r = servers_[retry]->Stat(target, ancestors);
    }
  }

  const Message resp{
      .type = MsgType::kStatResponse, .target = target, .status = r.status};
  const Delivery back =
      transport_->Send(MdsAddress(out.served_by), ClientAddress(), resp);
  out.sim_latency_us += back.latency_us;
  if (!back.delivered) {
    // Answer computed but the response leg was lost: to the client this is
    // a timeout — it invalidates its cached route like any failover.
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    out.net_error = back.error == DeliveryError::kUndeliverable
                        ? DeliveryError::kUndeliverable
                        : DeliveryError::kTimeout;
    return out;
  }
  out.status = r.status;
  out.record = r.record;
  out.op_class = failed_over                        ? OpClass::kFailover
                 : assignment_.IsReplicated(target) ? OpClass::kGlHit
                 : out.jumps == 0                   ? OpClass::kLl0Jump
                                                    : OpClass::kLl1Jump;
  return out;
}

FunctionalCluster::ClientResult FunctionalCluster::Stat(
    const std::string& path) {
  NodeId target;
  std::uint64_t entropy;
  {
    MutexLock lock(&client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return {};
    tree_.AddAccess(target);
    entropy = rng_();
  }
  ReaderMutexLock topo(&topo_mu_);
  const RouteDecision route =
      DecideRoute(tree_, scheme_.local_index(), target);
  // Entry for GL-resident targets: any server (picked under the placement
  // lock, since AddServer may grow the cluster concurrently).
  const MdsId fallback = static_cast<MdsId>(entropy % servers_.size());
  return StatAt(target, route.owner.value_or(fallback));
}

FunctionalCluster::ClientResult FunctionalCluster::StatVia(
    const std::string& path, MdsId via) {
  NodeId target;
  {
    MutexLock lock(&client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return {};
    tree_.AddAccess(target);
  }
  ReaderMutexLock topo(&topo_mu_);
  if (via < 0 || static_cast<std::size_t>(via) >= servers_.size()) {
    // No such server: reject instead of indexing servers_ out of range.
    ClientResult out;
    out.status = MdsStatus::kUnavailable;
    out.served_by = via;
    out.hops = 0;  // nothing was contacted
    out.op_class = OpClass::kFailover;
    out.net_error = DeliveryError::kUndeliverable;
    return out;
  }
  return StatAt(target, via);
}

FunctionalCluster::ClientResult FunctionalCluster::Update(
    const std::string& path, std::uint64_t mtime) {
  ClientResult out;
  NodeId target;
  std::vector<NodeId> ancestors;
  {
    MutexLock lock(&client_mu_);
    target = tree_.Resolve(path);
    if (target == kInvalidNode) return out;
    tree_.AddAccess(target);
    ancestors = tree_.AncestorsOf(target);
  }

  ReaderMutexLock topo(&topo_mu_);
  if (crashed_.load(std::memory_order_acquire) ||
      parked_nodes_.contains(target)) {
    // Service crashed, or the target's subtree is parked mid-handoff.
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    out.net_error = DeliveryError::kUndeliverable;
    return out;
  }
  const RouteDecision route = DecideRoute(tree_, scheme_.local_index(), target);
  if (route.gl_resident()) {
    // Global-layer update: lock, bump the master version, write every
    // live replica before acking (Sec. IV-A3); dead replicas catch up via
    // the rebuild at revive. The wait for the lock is the live-cluster
    // contention signal the harness reports.
    const auto t0 = std::chrono::steady_clock::now();
    MutexLock lock(&gl_mu_);
    gl_lock_wait_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count(),
        std::memory_order_relaxed);
    const MdsId coord = AnyAliveLocked();
    if (coord < 0) {
      out.status = MdsStatus::kUnavailable;
      out.net_error = DeliveryError::kUndeliverable;
      return out;
    }
    out.served_by = coord;  // the coordinating replica answers
    const Message req{
        .type = MsgType::kUpdateRequest, .target = target, .mtime = mtime};
    const Delivery d =
        transport_->Send(ClientAddress(), MdsAddress(coord), req);
    out.sim_latency_us += d.latency_us;
    if (!d.delivered) {
      failover_redirects_.fetch_add(1, std::memory_order_relaxed);
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      out.net_error = d.error;
      return out;
    }
    // Write-lock round with the Monitor's lock service (Sec. IV-A3).
    const Message lock_msg{.type = MsgType::kGlWriteLock, .target = target};
    const Delivery lock_req = transport_->SendReliable(
        MdsAddress(coord), MonitorAddress(), lock_msg);
    const Delivery lock_grant = transport_->SendReliable(
        MonitorAddress(), MdsAddress(coord), lock_msg);
    out.sim_latency_us += lock_req.latency_us + lock_grant.latency_us;
    const std::uint64_t version =
        gl_master_version_.load(std::memory_order_relaxed) + 1;
    // WAL discipline: the version bump is durable *before* any replica
    // applies it, so recovery always rebuilds at (at least) the version a
    // half-broadcast update reached.
    {
      WalRecord bump;
      bump.type = WalRecordType::kGlVersion;
      bump.root = target;
      bump.version = version;
      monitor_wal_.Append(bump);
    }
    gl_master_version_.store(version, std::memory_order_release);
    if (MaybeCrash(CrashSite::kAfterGlBump)) {
      // Bump journaled, broadcast never started: to the client this is an
      // outage; Recover() rebuilds every replica at the journaled version.
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      return out;
    }
    const Message commit{.type = MsgType::kGlCommit,
                         .target = target,
                         .mtime = mtime,
                         .payload_records = 1};
    double broadcast_us = 0.0;
    for (auto& server : servers_) {
      if (!server->alive()) continue;
      if (server->id() != coord) {
        // Replica legs fan out concurrently; the ack the coordinator waits
        // for is the slowest one. A leg a partition defeats is fenced by
        // the version and caught up by the rebuild sweep.
        const Delivery leg = transport_->SendReliable(
            MdsAddress(coord), MdsAddress(server->id()), commit);
        broadcast_us = std::max(broadcast_us, leg.latency_us);
      }
      server->global_replica().Mutate(target, mtime);
      server->set_gl_version(version);
    }
    out.sim_latency_us += broadcast_us;
    ++gl_updates_;
    out.record = *servers_[coord]->global_replica().Get(target);
    const Message resp{.type = MsgType::kUpdateResponse,
                       .target = target,
                       .status = MdsStatus::kOk};
    const Delivery back =
        transport_->Send(MdsAddress(coord), ClientAddress(), resp);
    out.sim_latency_us += back.latency_us;
    if (!back.delivered) {
      // Committed but unacknowledged: the client sees a timeout.
      failover_redirects_.fetch_add(1, std::memory_order_relaxed);
      out.status = MdsStatus::kUnavailable;
      out.op_class = OpClass::kFailover;
      out.net_error = back.error == DeliveryError::kUndeliverable
                          ? DeliveryError::kUndeliverable
                          : DeliveryError::kTimeout;
      return out;
    }
    out.status = MdsStatus::kOk;
    out.op_class = OpClass::kGlHit;
    return out;
  }

  const MdsId owner = *route.owner;
  out.served_by = owner;
  if (!AliveLocked(owner)) {
    // Writes have a single authority; with the owner down the client can
    // only invalidate its cache and report the outage.
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    out.net_error = DeliveryError::kUndeliverable;
    return out;
  }
  const Message req{
      .type = MsgType::kUpdateRequest, .target = target, .mtime = mtime};
  const Delivery d = transport_->Send(ClientAddress(), MdsAddress(owner), req);
  out.sim_latency_us += d.latency_us;
  if (!d.delivered) {
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    out.net_error = d.error;
    return out;
  }
  const MdsOpResult r = servers_[owner]->UpdateLocal(target, ancestors, mtime);
  const Message resp{
      .type = MsgType::kUpdateResponse, .target = target, .status = r.status};
  const Delivery back =
      transport_->Send(MdsAddress(owner), ClientAddress(), resp);
  out.sim_latency_us += back.latency_us;
  if (!back.delivered) {
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    out.op_class = OpClass::kFailover;
    out.net_error = back.error == DeliveryError::kUndeliverable
                        ? DeliveryError::kUndeliverable
                        : DeliveryError::kTimeout;
    return out;
  }
  out.status = r.status;
  out.record = r.record;
  out.op_class = OpClass::kLl0Jump;
  return out;
}

FunctionalCluster::RenameResult FunctionalCluster::Rename(
    const std::string& path, const std::string& new_name) {
  return RenameImpl(path, new_name, std::nullopt);
}

FunctionalCluster::RenameResult FunctionalCluster::RenameTo(
    const std::string& path, const std::string& new_name, MdsId dest) {
  return RenameImpl(path, new_name, dest);
}

bool FunctionalCluster::ApplyRenameLocked(NodeId id,
                                          const std::string& new_name) {
  if (tree_.node(id).name == new_name) return true;  // already applied
  if (tree_.FindChild(tree_.node(id).parent, new_name) != kInvalidNode)
    return false;  // a later transaction took the name; keep its outcome
  tree_.Rename(id, new_name);
  return true;
}

FunctionalCluster::RenameResult FunctionalCluster::RenameImpl(
    const std::string& path, const std::string& new_name,
    std::optional<MdsId> dest_opt) {
  RenameResult out;
  // A rename is a placement-epoch transition, not a data-plane op: it
  // freezes popularity charging and holds the placement lock exclusively
  // for the whole transaction, exactly like an adjustment round (lock
  // order client_mu_ → topo_mu_ → gl_mu_), so clients never observe a
  // half-renamed namespace.
  MutexLock client(&client_mu_);
  WriterMutexLock topo(&topo_mu_);
  if (crashed_.load(std::memory_order_acquire)) {
    out.status = MdsStatus::kUnavailable;
    return out;
  }
  const NodeId target = tree_.Resolve(path);
  if (target == kInvalidNode) return out;  // kNotFound
  if (target == tree_.root() || new_name.empty() ||
      new_name.find('/') != std::string::npos) {
    out.status = MdsStatus::kNotPermitted;
    return out;
  }
  const NodeId sibling = tree_.FindChild(tree_.node(target).parent, new_name);
  if (sibling == target) {
    out.status = MdsStatus::kOk;  // renaming to the current name: no-op
    return out;
  }
  if (sibling != kInvalidNode) {
    out.status = MdsStatus::kNotPermitted;  // sibling collision
    return out;
  }
  if (parked_nodes_.contains(target)) {
    // Pinned to an in-flight handoff: nobody may touch the subtree until
    // the parked pull lands or aborts.
    out.status = MdsStatus::kUnavailable;
    return out;
  }
  tree_.AddAccess(target);  // a rename charges popularity like any access

  const RenameRoute route =
      DecideRenameRoute(tree_, scheme_.local_index(), target);
  const MdsId src = route.owner.value_or(kReplicated);
  MdsId dst = src;
  if (dest_opt.has_value()) {
    dst = *dest_opt;
    if (route.gl_resident() || !route.subtree_root) {
      // Re-homing is only meaningful at the unit of distribution: a
      // registered local-layer subtree root.
      out.status = MdsStatus::kNotPermitted;
      return out;
    }
    if (dst < 0 || static_cast<std::size_t>(dst) >= servers_.size()) {
      out.status = MdsStatus::kNotPermitted;
      return out;
    }
    if (!AliveLocked(dst)) {
      out.status = MdsStatus::kUnavailable;
      return out;
    }
  }
  const bool cross = dst != src;
  out.cross_server = cross;

  // Coordinator: the source owner when it lives; the destination when a
  // cross-server rename drains a crashed owner (its records are recovered
  // from the backing store below); any replica for a GL-resident target.
  MdsId coord;
  if (route.gl_resident()) {
    coord = AnyAliveLocked();
    if (coord < 0) {
      out.status = MdsStatus::kUnavailable;
      return out;
    }
  } else if (AliveLocked(src)) {
    coord = src;
  } else if (cross) {
    coord = dst;
  } else {
    // In-place rename needs its single write authority.
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    return out;
  }

  // Request leg; a lost leg fails the op before anything was journaled.
  const Message req{.type = MsgType::kRenameRequest, .target = target};
  const Delivery d = transport_->Send(ClientAddress(), MdsAddress(coord), req);
  out.sim_latency_us += d.latency_us;
  if (!d.delivered) {
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    return out;
  }
  // Coordinator ⇄ Monitor lock round: renames serialize through the same
  // ZooKeeper-style lock service as GL writes (Sec. IV-A3); the Monitor
  // hands out the transaction id from the shared monotone counter.
  const Message lock_msg{.type = MsgType::kGlWriteLock, .target = target};
  const Delivery lock_req =
      transport_->SendReliable(MdsAddress(coord), MonitorAddress(), lock_msg);
  const Delivery lock_grant =
      transport_->SendReliable(MonitorAddress(), MdsAddress(coord), lock_msg);
  out.sim_latency_us += lock_req.latency_us + lock_grant.latency_us;

  // --- INTENT: the transaction exists, nothing changed. Crash in this
  // window → Recover() rolls it back (journaled abort).
  const std::uint64_t rename_id = next_migration_id_++;
  out.rename_id = rename_id;
  WalRecord intent;
  intent.type = WalRecordType::kRenameIntent;
  intent.migration_id = rename_id;
  intent.root = target;
  intent.from = src;
  intent.to = dst;
  intent.name = new_name;
  intent.prev_name = tree_.node(target).name;  // abort restores this
  monitor_wal_.Append(intent);
  if (MaybeCrash(CrashSite::kAfterRenameIntent)) {
    out.status = MdsStatus::kUnavailable;
    return out;
  }

  // --- PREPARE: a cross-server rename extracts the subtree from the
  // source (records a crashed owner lost come back from the backing
  // store, old names and all — the WAL carries the new one); in-place
  // renames park nothing. Once the prepare record is durable the
  // transaction rolls *forward* after a crash.
  std::vector<NodeId> members;
  std::vector<InodeRecord> records;
  if (cross) {
    members.reserve(tree_.SubtreeSize(target));
    tree_.VisitSubtree(target, [&](NodeId v) { members.push_back(v); });
    if (src >= 0 && static_cast<std::size_t>(src) < servers_.size())
      records = servers_[src]->local().ExtractAll(members);
    if (records.size() < members.size()) {
      std::unordered_set<NodeId> extracted;
      extracted.reserve(records.size());
      for (const InodeRecord& r : records) extracted.insert(r.id);
      for (NodeId v : members)
        if (!extracted.contains(v)) records.push_back(MakeRecord(v));
      recovered_records_.fetch_add(members.size() - extracted.size(),
                                   std::memory_order_relaxed);
    }
  }
  WalRecord prepare = intent;
  prepare.type = WalRecordType::kRenamePrepare;
  prepare.count = records.size();
  monitor_wal_.Append(prepare);
  if (MaybeCrash(CrashSite::kAfterRenamePrepare)) {
    out.status = MdsStatus::kUnavailable;
    return out;
  }

  // --- TRANSFER (cross-server only): the extracted records travel
  // source → destination under the control-plane retry discipline. A
  // rename is a synchronous client-facing op, so an undeliverable leg
  // aborts the transaction (journaled) and restores the source — unlike
  // migrations, nothing parks.
  std::string xfer_table;
  if (cross) {
    // The records land at the destination post-rename, so apply the new
    // name to the in-flight copy up front — the per-record path used to
    // do this between transfer and apply; the sealed table must carry the
    // final bytes because the destination links the file in untouched.
    for (InodeRecord& r : records)
      if (r.id == target) {
        r.name = new_name;
        ++r.version;
      }
    xfer_table = SealForShipping("ren", rename_id, records);
    Message xfer{.type = xfer_table.empty() ? MsgType::kRenamePrepare
                                            : MsgType::kBulkTable,
                 .target = target,
                 .payload_records = records.size(),
                 .migration_id = rename_id,
                 .name = xfer_table};
    if (!SendControl(MdsAddress(src), MdsAddress(dst), xfer, control_policy_,
                     rename_id)) {
      WalRecord abort = intent;
      abort.type = WalRecordType::kRenameAbort;
      monitor_wal_.Append(abort);
      if (!xfer_table.empty()) {
        std::error_code ec;
        std::filesystem::remove(xfer_table, ec);
      }
      if (AliveLocked(src)) {
        // Undo the pre-applied rename before the records go home.
        for (InodeRecord& r : records)
          if (r.id == target) {
            r.name = tree_.node(target).name;
            --r.version;
          }
        servers_[src]->local().InsertAll(records);
      }
      renames_aborted_.fetch_add(1, std::memory_order_relaxed);
      out.status = MdsStatus::kUnavailable;
      return out;
    }
  }

  // --- APPLY: the backing tree takes the new name (idempotent — recovery
  // and journal replay re-apply it), then the records land at their
  // holder. Crash in this window → roll forward.
  ApplyRenameLocked(target, new_name);
  if (cross) {
    // Destination-side dedup on the rename id, exactly like a migration
    // pull: a re-delivered transfer is applied at most once.
    const bool applied_now =
        xfer_table.empty()
            ? servers_[dst]->ApplyPull(rename_id, records)
            : servers_[dst]->ApplyPullTable(rename_id, xfer_table);
    if (applied_now) {
      WalRecord applied;
      applied.type = WalRecordType::kPullApplied;
      applied.migration_id = rename_id;
      applied.count = records.size();
      mds_wals_[dst]->Append(applied);
    } else {
      duplicate_pulls_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!xfer_table.empty()) {
      bulk_tables_shipped_.fetch_add(1, std::memory_order_relaxed);
      bulk_records_shipped_.fetch_add(records.size(),
                                      std::memory_order_relaxed);
      std::error_code ec;
      std::filesystem::remove(xfer_table, ec);
    }
    out.records_moved = records.size();
  } else if (!route.gl_resident()) {
    // In-place local-layer rename: rewrite the record at its owner. (A
    // GL-resident rename rewrites every live replica under the GL lock
    // in the commit step below.)
    auto rec = servers_[src]->local().Get(target);
    if (rec.has_value()) {
      rec->name = new_name;
      ++rec->version;
      servers_[src]->local().Put(*rec);
    }
  }
  if (MaybeCrash(CrashSite::kAfterRenameApply)) {
    out.status = MdsStatus::kUnavailable;
    return out;
  }

  // --- COMMIT: ownership flips at the unit of distribution, the GL
  // master version bumps (journaled before any replica applies it) so
  // every cached client index and lease invalidates, and the commit
  // record makes the transaction terminal. Crash after the commit record
  // → replay is idempotent.
  if (cross) {
    const auto& subtrees = scheme_.layers().subtrees;
    for (std::size_t i = 0; i < subtrees.size(); ++i) {
      if (subtrees[i].root == target) {
        scheme_.SetSubtreeOwner(i, dst);
        break;
      }
    }
    for (NodeId v : members) assignment_.owner[v] = dst;
  }
  std::uint64_t version = 0;
  {
    MutexLock gl(&gl_mu_);
    version = gl_master_version_.load(std::memory_order_relaxed) + 1;
    WalRecord bump;
    bump.type = WalRecordType::kGlVersion;
    bump.root = target;
    bump.version = version;
    monitor_wal_.Append(bump);
    gl_master_version_.store(version, std::memory_order_release);
    const Message commit_msg{.type = MsgType::kRenameCommit,
                             .target = target,
                             .payload_records = route.gl_resident() ? 1u : 0u,
                             .migration_id = rename_id};
    double broadcast_us = 0.0;
    for (auto& server : servers_) {
      if (!server->alive()) continue;
      if (server->id() != coord) {
        const Delivery leg = transport_->SendReliable(
            MdsAddress(coord), MdsAddress(server->id()), commit_msg);
        broadcast_us = std::max(broadcast_us, leg.latency_us);
      }
      if (route.gl_resident()) {
        auto rec = server->global_replica().Get(target);
        if (rec.has_value()) {
          rec->name = new_name;
          ++rec->version;
          server->global_replica().Put(*rec);
        }
      }
      server->set_gl_version(version);
    }
    out.sim_latency_us += broadcast_us;
  }
  WalRecord commit = intent;
  commit.type = WalRecordType::kRenameCommit;
  commit.version = version;
  monitor_wal_.Append(commit);
  renames_committed_.fetch_add(1, std::memory_order_relaxed);
  if (MaybeCrash(CrashSite::kAfterRenameCommit)) {
    // Durable but unacknowledged: the client sees an outage; replaying
    // the journaled commit is a no-op.
    out.status = MdsStatus::kUnavailable;
    return out;
  }

  const Message resp{.type = MsgType::kRenameResponse,
                     .target = target,
                     .status = MdsStatus::kOk,
                     .migration_id = rename_id};
  const Delivery back =
      transport_->Send(MdsAddress(coord), ClientAddress(), resp);
  out.sim_latency_us += back.latency_us;
  if (!back.delivered) {
    // Committed but unacknowledged: the client sees a timeout.
    failover_redirects_.fetch_add(1, std::memory_order_relaxed);
    out.status = MdsStatus::kUnavailable;
    return out;
  }
  out.status = MdsStatus::kOk;
  return out;
}

std::size_t FunctionalCluster::CheckPathIntegrity(std::string* error) const {
  // Names mutate only under client_mu_ + exclusive topo_mu_ (the rename
  // transaction's hold), so holding client_mu_ alone fences this audit
  // against every writer.
  MutexLock client(&client_mu_);
  std::size_t violations = 0;
  for (NodeId id = 0; id < tree_.size(); ++id) {
    const std::string path = tree_.PathOf(id);
    const NodeId resolved = tree_.Resolve(path);
    if (resolved != id) {
      ++violations;
      if (error != nullptr && violations == 1)
        *error = "path " + path + " resolves to node " +
                 std::to_string(resolved) + ", expected " + std::to_string(id);
    }
  }
  return violations;
}

bool FunctionalCluster::KillServer(MdsId mds) {
  WriterMutexLock topo(&topo_mu_);
  if (!AliveLocked(mds)) return false;
  if (AliveCountLocked() <= 1) return false;  // keep the namespace reachable
  servers_[mds]->set_alive(false);
  // A crash loses the volatile stores *and* the in-memory pull-dedup set;
  // orphaned local records are recovered from the backing store when
  // their subtrees are re-placed, the dedup set from the server's WAL at
  // revive. A persistent local store keeps its durable state — memtable
  // gone, WAL replayed — exactly what a SIGKILL leaves behind.
  servers_[mds]->LoseVolatileState(store_spec_.persistent());
  return true;
}

bool FunctionalCluster::ReviveServer(MdsId mds) {
  WriterMutexLock topo(&topo_mu_);
  if (mds < 0 || static_cast<std::size_t>(mds) >= servers_.size() ||
      servers_[mds]->alive()) {
    return false;
  }
  {
    MutexLock gl(&gl_mu_);
    // Replica first, liveness second: the server never serves a stale or
    // empty global layer.
    RebuildGlReplicaLocked(mds);
  }
  // A persistent store came through the crash holding its durable
  // records; anything an adjustment round re-placed while this server was
  // dead (or that is pinned to an in-flight handoff) must not resurface
  // here as a second copy.
  if (store_spec_.persistent()) {
    for (NodeId held : servers_[mds]->local().HeldIds()) {
      if (held >= tree_.size() || assignment_.IsReplicated(held) ||
          assignment_.OwnerOf(held) != mds || parked_nodes_.contains(held)) {
        servers_[mds]->local().Remove(held);
      }
    }
  }
  // Fast restart: if the crash window closed before any adjustment round,
  // this server is still the assigned owner of its subtrees — once alive
  // again nobody would re-place them, so their records must come back with
  // it, re-materialized from the backing store (records the durable engine
  // preserved stay as they are, mutations and all).
  std::uint64_t restored = 0;
  for (NodeId id = 0; id < tree_.size(); ++id) {
    if (assignment_.IsReplicated(id) || assignment_.OwnerOf(id) != mds)
      continue;
    // A parked node is pinned to an in-flight handoff: its records live
    // in the pending pool and arrive via the re-issued pull, so the
    // restart must not conjure a second copy here.
    if (parked_nodes_.contains(id)) continue;
    if (servers_[mds]->local().Contains(id)) continue;
    servers_[mds]->local().Put(MakeRecord(id));
    ++restored;
  }
  recovered_records_.fetch_add(restored, std::memory_order_relaxed);
  // The pull-dedup set is volatile; rebuild it from this server's journal
  // so a pull retransmitted across the crash is still dropped.
  std::vector<std::uint64_t> applied;
  for (const WalRecord& r : mds_wals_[mds]->Replay())
    if (r.type == WalRecordType::kPullApplied) applied.push_back(r.migration_id);
  servers_[mds]->RestoreAppliedPulls(applied);
  servers_[mds]->set_heartbeats_suppressed(false);
  servers_[mds]->set_alive(true);
  return true;
}

MdsId FunctionalCluster::AddServer(double capacity) {
  WriterMutexLock topo(&topo_mu_);
  const MdsId id = static_cast<MdsId>(servers_.size());
  servers_.push_back(std::make_unique<MdsServer>(id, ServerStoreSpec(id)));
  mds_wals_.push_back(std::make_unique<Wal>());
  capacities_.capacities.push_back(capacity);
  // Membership change is a control-plane transition: checkpoint the new
  // capacity vector so recovery plans with the grown cluster.
  JournalCapacitiesLocked();
  MutexLock gl(&gl_mu_);
  RebuildGlReplicaLocked(id);
  return id;
}

bool FunctionalCluster::SetHeartbeatSuppressed(MdsId mds, bool suppressed) {
  WriterMutexLock topo(&topo_mu_);
  if (mds < 0 || static_cast<std::size_t>(mds) >= servers_.size())
    return false;
  servers_[mds]->set_heartbeats_suppressed(suppressed);
  return true;
}

bool FunctionalCluster::SetClientLinkDrop(MdsId mds, double probability) {
  WriterMutexLock topo(&topo_mu_);
  if (mds < 0 || static_cast<std::size_t>(mds) >= servers_.size())
    return false;
  return transport_->SetLinkDropRate(ClientAddress(), MdsAddress(mds),
                                     probability);
}

bool FunctionalCluster::SetMonitorPartition(MdsId mds, bool partitioned) {
  WriterMutexLock topo(&topo_mu_);
  if (mds < 0 || static_cast<std::size_t>(mds) >= servers_.size())
    return false;
  return transport_->SetPartitioned(MonitorAddress(), MdsAddress(mds),
                                    partitioned);
}

std::size_t FunctionalCluster::CompleteParkedLocked() {
  if (parked_.empty()) return 0;
  std::size_t moved = 0;
  std::vector<ParkedMigration> still_parked;
  for (ParkedMigration& mig : parked_) {
    if (!AliveLocked(mig.to)) {
      // The grantee died while the pull was parked: abort the handoff.
      // The records drop back to the durable backing store; the subtree
      // is re-placed through the pending pool like any orphan (its
      // planner owner still points at the dead grantee, i.e. capacity 0).
      WalRecord abort;
      abort.type = WalRecordType::kMigrationAbort;
      abort.migration_id = mig.id;
      abort.root = mig.root;
      abort.from = mig.from;
      abort.to = mig.to;
      monitor_wal_.Append(abort);
      for (NodeId v : mig.members) parked_nodes_.erase(v);
      if (!mig.table.empty()) {
        // The sealed table was never delivered; the records regenerate
        // from the backing store when the subtree is re-placed.
        std::error_code ec;
        std::filesystem::remove(mig.table, ec);
      }
      continue;
    }
    Message pull{.type = mig.table.empty() ? MsgType::kPendingPoolPull
                                           : MsgType::kBulkTable,
                 .target = mig.root,
                 .payload_records = mig.records.size(),
                 .migration_id = mig.id,
                 .name = mig.table};
    if (!SendControl(MonitorAddress(), MdsAddress(mig.to), pull,
                     control_policy_, mig.id)) {
      still_parked.push_back(std::move(mig));  // link still down: next round
      continue;
    }
    // The pull may be a re-delivery of one the grantee already applied
    // (e.g. its ack was the lost leg): dedup on the migration id decides.
    const bool applied_now =
        mig.table.empty()
            ? servers_[mig.to]->ApplyPull(mig.id, mig.records)
            : servers_[mig.to]->ApplyPullTable(mig.id, mig.table);
    if (applied_now) {
      WalRecord applied;
      applied.type = WalRecordType::kPullApplied;
      applied.migration_id = mig.id;
      applied.count = mig.records.size();
      mds_wals_[mig.to]->Append(applied);
    } else {
      duplicate_pulls_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!mig.table.empty()) {
      bulk_tables_shipped_.fetch_add(1, std::memory_order_relaxed);
      bulk_records_shipped_.fetch_add(mig.records.size(),
                                      std::memory_order_relaxed);
      std::error_code ec;
      std::filesystem::remove(mig.table, ec);
    }
    WalRecord commit;
    commit.type = WalRecordType::kMigrationCommit;
    commit.migration_id = mig.id;
    commit.root = mig.root;
    commit.from = mig.from;
    commit.to = mig.to;
    monitor_wal_.Append(commit);
    for (NodeId v : mig.members) parked_nodes_.erase(v);
    moved += mig.records.size();
  }
  parked_ = std::move(still_parked);
  return moved;
}

std::size_t FunctionalCluster::RunAdjustmentRound() {
  // Freeze popularity charging, then enter an exclusive placement epoch:
  // no client routes or touches a store while records are in flight
  // between servers (lock order: client_mu_ → topo_mu_).
  MutexLock client(&client_mu_);
  WriterMutexLock topo(&topo_mu_);
  if (crashed_.load(std::memory_order_acquire)) return 0;

  {
    // Defensive sweep: any live server whose GL replica lags the master
    // (revived/added under unusual interleavings) is rebuilt before it
    // can take subtree traffic.
    MutexLock gl(&gl_mu_);
    const std::uint64_t master =
        gl_master_version_.load(std::memory_order_acquire);
    for (const auto& server : servers_)
      if (server->alive() && server->gl_version() != master)
        RebuildGlReplicaLocked(server->id());
  }

  // Re-issue the pull of any migration a partition parked in an earlier
  // round (dedup on the migration id makes a re-delivery safe).
  std::size_t moved_records = CompleteParkedLocked();

  const MdsCluster effective = CollectHeartbeats();
  if (effective.TotalCapacity() <= 0.0)
    return moved_records;  // nobody can take load
  JournalCapacitiesLocked();

  tree_.RecomputeSubtreePopularity();
  const auto owners_before = scheme_.subtree_owners();
  const RebalanceResult plan =
      scheme_.Rebalance(tree_, effective, assignment_);
  const auto& owners_after = scheme_.subtree_owners();
  const auto& subtrees = scheme_.layers().subtrees;

  // Physically move each migrated subtree's records through the journaled
  // two-phase handoff: INTENT (planned, nothing moved) → PREPARE (records
  // extracted into the pending pool) → pull delivered + applied (the
  // receiver journals it) → COMMIT (ownership durable). A crash between
  // any two steps lands on exactly one side of the protocol: intent-only
  // rolls back, prepared-or-later rolls forward — never a duplicate,
  // never an orphan.
  std::vector<std::size_t> repinned;
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    const MdsId from = owners_before[i];
    const MdsId to = owners_after[i];
    if (from == to) continue;
    if (parked_nodes_.contains(subtrees[i].root)) {
      // In-flight handoff: the subtree stays pinned to its parked grantee
      // until that pull lands or aborts — re-planning it mid-flight would
      // put the same records in two migrations at once.
      scheme_.SetSubtreeOwner(i, from);
      repinned.push_back(i);
      continue;
    }
    const std::uint64_t mig_id = next_migration_id_++;
    WalRecord intent;
    intent.type = WalRecordType::kMigrationIntent;
    intent.migration_id = mig_id;
    intent.root = subtrees[i].root;
    intent.from = from;
    intent.to = to;
    monitor_wal_.Append(intent);
    if (MaybeCrash(CrashSite::kAfterIntent)) return moved_records;

    std::vector<NodeId> members;
    members.reserve(subtrees[i].node_count);
    tree_.VisitSubtree(subtrees[i].root,
                       [&](NodeId v) { members.push_back(v); });
    std::vector<InodeRecord> records;
    if (from >= 0 && static_cast<std::size_t>(from) < servers_.size())
      records = servers_[from]->local().ExtractAll(members);
    if (records.size() < members.size()) {
      // Crash recovery: whatever the failed owner lost is rebuilt from
      // the backing store before the subtree lands on its new server.
      std::unordered_set<NodeId> extracted;
      extracted.reserve(records.size());
      for (const InodeRecord& r : records) extracted.insert(r.id);
      for (NodeId v : members)
        if (!extracted.contains(v)) records.push_back(MakeRecord(v));
      recovered_records_.fetch_add(members.size() - extracted.size(),
                                   std::memory_order_relaxed);
    }
    // The records are now parked in the pending pool — durable by
    // construction (the backing store can always regenerate them), so
    // from here the migration rolls *forward* after a crash.
    WalRecord prepare = intent;
    prepare.type = WalRecordType::kMigrationPrepare;
    prepare.count = records.size();
    monitor_wal_.Append(prepare);
    // The migration is a pending-pool round trip (Sec. IV-B): the donor
    // pushes the subtree into the pool, the Monitor grants it to the
    // puller. An unreachable donor (crashed, or Monitor⇄MDS partition)
    // still drains — its lost records were just recovered above.
    Message push{.type = MsgType::kPendingPoolPush,
                 .target = subtrees[i].root,
                 .payload_records = records.size(),
                 .migration_id = mig_id};
    if (AliveLocked(from))
      SendControl(MdsAddress(from), MonitorAddress(), push, control_policy_,
                  mig_id);
    if (MaybeCrash(CrashSite::kAfterPrepare)) return moved_records;

    // With a persistent backend the subtree travels as one sealed SSTable
    // (the kBulkTable leg below) that the destination ingests by file
    // link-in; otherwise the pull carries the records per-record. A seal
    // failure silently degrades to the per-record path.
    const std::string table = SealForShipping("mig", mig_id, records);
    Message pull = push;
    if (table.empty()) {
      pull.type = MsgType::kPendingPoolPull;
    } else {
      pull.type = MsgType::kBulkTable;
      pull.name = table;
    }
    if (!SendControl(MonitorAddress(), MdsAddress(to), pull, control_policy_,
                     mig_id)) {
      // The grant cannot reach the puller (Monitor⇄MDS partition outlasted
      // every retry): park the migration instead of committing blind. The
      // records wait in the pool (sealed table included), the member nodes
      // answer kUnavailable, and the next round re-issues the pull.
      ParkedMigration mig;
      mig.id = mig_id;
      mig.root = subtrees[i].root;
      mig.from = from;
      mig.to = to;
      mig.members = std::move(members);
      mig.records = std::move(records);
      mig.table = table;
      for (NodeId v : mig.members) parked_nodes_.insert(v);
      parked_.push_back(std::move(mig));
      continue;
    }
    const bool applied_now =
        table.empty()
            ? servers_[to]->ApplyPull(mig_id, records)
            : servers_[to]->ApplyPullTable(mig_id, table);
    if (applied_now) {
      WalRecord applied;
      applied.type = WalRecordType::kPullApplied;
      applied.migration_id = mig_id;
      applied.count = records.size();
      mds_wals_[to]->Append(applied);
    } else {
      duplicate_pulls_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!table.empty()) {
      bulk_tables_shipped_.fetch_add(1, std::memory_order_relaxed);
      bulk_records_shipped_.fetch_add(records.size(),
                                      std::memory_order_relaxed);
      std::error_code ec;
      std::filesystem::remove(table, ec);  // the engine link-in holds it
    }
    if (MaybeCrash(CrashSite::kAfterPull)) return moved_records;

    WalRecord commit = intent;
    commit.type = WalRecordType::kMigrationCommit;
    monitor_wal_.Append(commit);
    if (MaybeCrash(CrashSite::kAfterCommitLocal)) return moved_records;
    moved_records += records.size();
  }
  assignment_ = plan.assignment;
  // A repinned subtree's committed owner is its parked grantee, not the
  // owner this round planned: restore it in the fresh assignment too.
  for (std::size_t i : repinned)
    tree_.VisitSubtree(subtrees[i].root, [&](NodeId v) {
      assignment_.owner[v] = owners_before[i];
    });
  // Round checkpoint: the next recovery replays from this placement plus
  // whatever migration records follow it.
  JournalPlacementLocked();
  adjustment_rounds_.fetch_add(1, std::memory_order_relaxed);
  return moved_records;
}

bool FunctionalCluster::CheckConsistency(std::string* error) const {
  // Shared placement lock: no migration in flight. The GL lock quiesces
  // writers so no replica is observed mid-broadcast.
  ReaderMutexLock topo(&topo_mu_);
  MutexLock gl(&gl_mu_);
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (crashed_.load(std::memory_order_acquire))
    return fail("metadata service crashed; Recover() before auditing");
  std::vector<const MdsServer*> live;
  for (const auto& server : servers_)
    if (server->alive()) live.push_back(server.get());
  if (live.empty()) return fail("no server is alive");
  // Per-node placement audit, over the live membership.
  for (NodeId id = 0; id < tree_.size(); ++id) {
    if (assignment_.IsReplicated(id)) {
      for (const MdsServer* server : live) {
        if (!server->global_replica().Contains(id))
          return fail("GL node " + tree_.PathOf(id) + " missing on server " +
                      std::to_string(server->id()));
        if (server->local().Contains(id))
          return fail("GL node " + tree_.PathOf(id) + " duplicated locally");
      }
    } else {
      const MdsId owner = assignment_.OwnerOf(id);
      const bool owner_alive = AliveLocked(owner);
      std::size_t holders = 0;
      for (const MdsServer* server : live) {
        holders += server->local().Contains(id);
        if (server->global_replica().Contains(id))
          return fail("LL node " + tree_.PathOf(id) + " found in a GL replica");
      }
      if (parked_nodes_.contains(id)) {
        // Mid-handoff: the records sit in the pending pool awaiting the
        // re-issued pull — nobody may hold them meanwhile (a holder here
        // is exactly the double-assign the two-phase protocol forbids).
        if (holders != 0)
          return fail("parked LL node " + tree_.PathOf(id) +
                      " held by a live server");
      } else if (owner_alive) {
        if (holders != 1)
          return fail("LL node " + tree_.PathOf(id) + " held by " +
                      std::to_string(holders) + " servers");
        if (!servers_[owner]->local().Contains(id))
          return fail("LL node " + tree_.PathOf(id) + " not at its owner");
      } else if (holders != 0) {
        // Owner crashed: the node is orphaned until an adjustment round
        // re-places its subtree — nobody else may claim it meanwhile.
        return fail("orphaned LL node " + tree_.PathOf(id) +
                    " held by a live server");
      }
    }
  }
  // Replica versions (live replicas only; the dead catch up on revive).
  const std::uint64_t master = gl_master_version_.load();
  for (const MdsServer* server : live) {
    if (server->gl_version() != master)
      return fail("server " + std::to_string(server->id()) +
                  " GL replica at stale version");
  }
  // Record ↔ namespace agreement (spot fields).
  for (NodeId id = 0; id < tree_.size(); ++id) {
    const MdsId owner = assignment_.OwnerOf(id);
    if (owner != kReplicated &&
        (!AliveLocked(owner) || parked_nodes_.contains(id)))
      continue;  // orphaned or mid-handoff
    const auto rec = owner == kReplicated
                         ? live.front()->global_replica().Get(id)
                         : servers_[owner]->local().Get(id);
    if (!rec.has_value()) return fail("record lost for " + tree_.PathOf(id));
    if (rec->name != tree_.node(id).name || rec->parent != tree_.node(id).parent)
      return fail("record mismatch for " + tree_.PathOf(id));
  }
  return true;
}

FunctionalCluster::RecoveryReport FunctionalCluster::Recover() {
  // Full quiesce: recovery rebuilds everything the locks guard.
  MutexLock client(&client_mu_);
  WriterMutexLock topo(&topo_mu_);
  MutexLock gl(&gl_mu_);
  RecoveryReport report;
  // Disarm any crash that was planted but never tripped: recovery restarts
  // the service from its journal, which supersedes a still-pending arm.
  armed_site_.store(-1, std::memory_order_release);
  armed_torn_.store(false, std::memory_order_release);

  // 1. Replay the Monitor WAL; a torn tail (crash mid-append) is detected
  //    by the framing CRC, reported, and truncated so future appends start
  //    on a clean frame boundary.
  WalReplayStats stats;
  const std::vector<WalRecord> journal = monitor_wal_.Replay(&stats);
  report.wal_records_replayed = journal.size();
  report.torn_tail_detected = stats.torn_tail;
  report.torn_bytes_discarded = stats.torn_bytes;
  if (stats.torn_tail) monitor_wal_.TruncateTail(stats.torn_bytes);

  // 2. Fold the journal into placement, capacities, the GL version and
  //    the set of in-flight migrations.
  const auto& subtrees = scheme_.layers().subtrees;
  std::unordered_map<NodeId, std::size_t> index_of_root;
  index_of_root.reserve(subtrees.size());
  for (std::size_t i = 0; i < subtrees.size(); ++i)
    index_of_root.emplace(subtrees[i].root, i);
  std::vector<MdsId> owners = scheme_.subtree_owners();  // fallback
  std::vector<double> caps;
  std::uint64_t gl_version = 1;
  enum class MigState { kIntent, kPrepared, kCommitted, kAborted };
  struct Flight {
    MigState state = MigState::kIntent;
    NodeId root = kInvalidNode;
    MdsId from = -1;
    MdsId to = -1;
  };
  std::map<std::uint64_t, Flight> flights;  // ordered: resolve in id order
  // Rename transactions fold the same way; the flight additionally
  // carries the post-rename name the WAL made durable at intent.
  struct RenameFlight {
    MigState state = MigState::kIntent;
    NodeId root = kInvalidNode;
    MdsId from = -1;
    MdsId to = -1;
    std::string name;
    std::string prev_name;
  };
  std::map<std::uint64_t, RenameFlight> rename_flights;
  std::uint64_t max_migration_id = 0;
  for (const WalRecord& r : journal) {
    switch (r.type) {
      case WalRecordType::kPlacementSnapshot:
        if (r.owners.size() == owners.size()) owners = r.owners;
        gl_version = std::max(gl_version, r.version);
        break;
      case WalRecordType::kCapacitySnapshot:
        caps = r.capacities;
        break;
      case WalRecordType::kMigrationIntent:
        flights[r.migration_id] = {MigState::kIntent, r.root, r.from, r.to};
        max_migration_id = std::max(max_migration_id, r.migration_id);
        break;
      case WalRecordType::kMigrationPrepare: {
        auto it = flights.find(r.migration_id);
        if (it != flights.end() && it->second.state == MigState::kIntent)
          it->second.state = MigState::kPrepared;
        break;
      }
      case WalRecordType::kMigrationCommit: {
        auto it = flights.find(r.migration_id);
        if (it != flights.end()) {
          it->second.state = MigState::kCommitted;
          auto idx = index_of_root.find(it->second.root);
          if (idx != index_of_root.end()) owners[idx->second] = it->second.to;
        }
        break;
      }
      case WalRecordType::kMigrationAbort: {
        auto it = flights.find(r.migration_id);
        if (it != flights.end()) it->second.state = MigState::kAborted;
        break;
      }
      case WalRecordType::kGlVersion:
        gl_version = std::max(gl_version, r.version);
        break;
      case WalRecordType::kRenameIntent:
        rename_flights[r.migration_id] = {MigState::kIntent, r.root, r.from,
                                          r.to, r.name, r.prev_name};
        max_migration_id = std::max(max_migration_id, r.migration_id);
        break;
      case WalRecordType::kRenamePrepare: {
        auto it = rename_flights.find(r.migration_id);
        if (it != rename_flights.end() &&
            it->second.state == MigState::kIntent)
          it->second.state = MigState::kPrepared;
        break;
      }
      case WalRecordType::kRenameCommit: {
        auto it = rename_flights.find(r.migration_id);
        if (it != rename_flights.end()) {
          it->second.state = MigState::kCommitted;
          // Re-apply in journal order — a node renamed twice must end at
          // the later name; each application is idempotent.
          ApplyRenameLocked(it->second.root, it->second.name);
          if (it->second.from != it->second.to) {
            auto idx = index_of_root.find(it->second.root);
            if (idx != index_of_root.end())
              owners[idx->second] = it->second.to;
          }
        }
        break;
      }
      case WalRecordType::kRenameAbort: {
        auto it = rename_flights.find(r.migration_id);
        if (it != rename_flights.end())
          it->second.state = MigState::kAborted;
        break;
      }
      case WalRecordType::kPullApplied:
        break;  // MDS-side record type; never in the Monitor's journal
    }
  }

  // 3. Resolve in-flight migrations. Intent-only: nothing had moved, the
  //    subtree stays with its donor — journal the abort. Prepared or
  //    later: the records were durably parked in the pending pool — land
  //    them at the grantee and journal the commit. Both decisions are
  //    idempotent under re-replay (a crash *during* recovery resolves to
  //    the same outcome).
  for (auto& [id, flight] : flights) {
    if (flight.state == MigState::kIntent) {
      WalRecord abort;
      abort.type = WalRecordType::kMigrationAbort;
      abort.migration_id = id;
      abort.root = flight.root;
      abort.from = flight.from;
      abort.to = flight.to;
      monitor_wal_.Append(abort);
      ++report.migrations_rolled_back;
    } else if (flight.state == MigState::kPrepared) {
      auto idx = index_of_root.find(flight.root);
      if (idx != index_of_root.end()) owners[idx->second] = flight.to;
      WalRecord commit;
      commit.type = WalRecordType::kMigrationCommit;
      commit.migration_id = id;
      commit.root = flight.root;
      commit.from = flight.from;
      commit.to = flight.to;
      monitor_wal_.Append(commit);
      if (flight.to >= 0 &&
          static_cast<std::size_t>(flight.to) < mds_wals_.size()) {
        // The grantee may have journaled the pull before the crash (the
        // crash hit between its journal append and the Monitor's commit):
        // dedup on its own WAL decides whether this is a re-delivery.
        bool already_applied = false;
        for (const WalRecord& r : mds_wals_[flight.to]->Replay())
          if (r.type == WalRecordType::kPullApplied && r.migration_id == id)
            already_applied = true;
        if (already_applied) {
          duplicate_pulls_dropped_.fetch_add(1, std::memory_order_relaxed);
        } else {
          WalRecord applied;
          applied.type = WalRecordType::kPullApplied;
          applied.migration_id = id;
          mds_wals_[flight.to]->Append(applied);
        }
      }
      ++report.migrations_rolled_forward;
    }
  }

  // 3b. Resolve in-flight renames the same way. Intent-only: the
  //     namespace never changed — journal the abort. Prepared or later:
  //     the WAL carries the new name and destination, so apply the rename
  //     to the backing tree, flip ownership, bump the GL version (cached
  //     client indexes must invalidate) and journal the commit; the store
  //     rebuild below rematerializes every record at its post-rename
  //     truth. Both decisions are idempotent under re-replay.
  for (auto& [id, flight] : rename_flights) {
    if (flight.state == MigState::kIntent) {
      // A torn PREPARE can demote a transaction whose apply step already
      // ran: the journal's authority says rolled back, so the namespace
      // must match — restore the pre-rename name the INTENT made durable.
      if (!flight.prev_name.empty())
        ApplyRenameLocked(flight.root, flight.prev_name);
      WalRecord abort;
      abort.type = WalRecordType::kRenameAbort;
      abort.migration_id = id;
      abort.root = flight.root;
      abort.from = flight.from;
      abort.to = flight.to;
      abort.name = flight.name;
      abort.prev_name = flight.prev_name;
      monitor_wal_.Append(abort);
      renames_aborted_.fetch_add(1, std::memory_order_relaxed);
      ++report.renames_rolled_back;
    } else if (flight.state == MigState::kPrepared) {
      ApplyRenameLocked(flight.root, flight.name);
      if (flight.from != flight.to) {
        auto idx = index_of_root.find(flight.root);
        if (idx != index_of_root.end()) owners[idx->second] = flight.to;
        if (flight.to >= 0 &&
            static_cast<std::size_t>(flight.to) < mds_wals_.size()) {
          // The destination may have journaled the transfer before the
          // crash: dedup on its own WAL, exactly like a migration pull.
          bool already_applied = false;
          for (const WalRecord& r : mds_wals_[flight.to]->Replay())
            if (r.type == WalRecordType::kPullApplied && r.migration_id == id)
              already_applied = true;
          if (already_applied) {
            duplicate_pulls_dropped_.fetch_add(1, std::memory_order_relaxed);
          } else {
            WalRecord applied;
            applied.type = WalRecordType::kPullApplied;
            applied.migration_id = id;
            mds_wals_[flight.to]->Append(applied);
          }
        }
      }
      ++gl_version;
      WalRecord bump;
      bump.type = WalRecordType::kGlVersion;
      bump.root = flight.root;
      bump.version = gl_version;
      monitor_wal_.Append(bump);
      WalRecord commit;
      commit.type = WalRecordType::kRenameCommit;
      commit.migration_id = id;
      commit.root = flight.root;
      commit.from = flight.from;
      commit.to = flight.to;
      commit.name = flight.name;
      commit.prev_name = flight.prev_name;
      commit.version = gl_version;
      monitor_wal_.Append(commit);
      renames_committed_.fetch_add(1, std::memory_order_relaxed);
      ++report.renames_rolled_forward;
    }
  }

  // 4. Rebuild the volatile world at the recovered placement. Every store
  //    was lost in the crash; the namespace itself is durable, so local
  //    records re-materialize from the backing store and GL replicas
  //    rebuild at the recovered master version.
  next_migration_id_ = std::max(next_migration_id_, max_migration_id + 1);
  parked_.clear();
  parked_nodes_.clear();
  const bool persistent = store_spec_.persistent();
  for (auto& server : servers_) {
    // A persistent local store restarts from its durable state: the engine
    // WAL is replayed with torn-tail truncation (the crash may have cut a
    // group-commit frame mid-append — MaybeCrash injects exactly that)
    // and the sealed tables come back as written.
    const StoreRecoveryInfo info = server->LoseVolatileState(persistent);
    if (info.wal_torn_tail) ++report.store_wals_torn;
    report.store_wal_records_replayed += info.wal_records_replayed;
    server->set_gl_version(0);
  }
  if (persistent) {
    // Sealed tables of handoffs in flight at the crash are orphans now —
    // the records rematerialize from the backing store below.
    std::error_code ec;
    std::filesystem::remove_all(store_spec_.data_dir + "/ship", ec);
    std::filesystem::create_directories(store_spec_.data_dir + "/ship", ec);
  }
  gl_master_version_.store(gl_version, std::memory_order_release);
  if (caps.size() == capacities_.capacities.size())
    capacities_.capacities = caps;
  for (std::size_t i = 0; i < subtrees.size() && i < owners.size(); ++i)
    scheme_.SetSubtreeOwner(i, owners[i]);
  assignment_.owner.assign(tree_.size(), kReplicated);
  assignment_.mds_count = servers_.size();
  for (std::size_t i = 0; i < subtrees.size() && i < owners.size(); ++i) {
    const MdsId owner = owners[i];
    tree_.VisitSubtree(subtrees[i].root,
                       [&](NodeId v) { assignment_.owner[v] = owner; });
  }
  for (const auto& server : servers_)
    if (server->alive()) RebuildGlReplicaLocked(server->id());
  if (persistent) {
    // Durable records the recovered placement no longer puts here are
    // dropped before the fill below (the migration that moved them away
    // committed; their new owner rematerializes them).
    for (auto& server : servers_) {
      if (!server->alive()) continue;
      const MdsId sid = server->id();
      for (NodeId held : server->local().HeldIds()) {
        if (held >= tree_.size() || assignment_.IsReplicated(held) ||
            assignment_.OwnerOf(held) != sid) {
          server->local().Remove(held);
        }
      }
    }
  }
  std::size_t rematerialized = 0;
  for (NodeId id = 0; id < tree_.size(); ++id) {
    const MdsId owner = assignment_.OwnerOf(id);
    if (owner == kReplicated || !AliveLocked(owner)) continue;
    const InodeRecord record = MakeRecord(id);
    const auto held = servers_[owner]->local().Get(id);
    if (held.has_value() && held->name == record.name &&
        held->parent == record.parent && held->type == record.type) {
      continue;  // survived in the durable store, mutations intact
    }
    servers_[owner]->local().Put(record);
    ++rematerialized;
  }
  report.records_rematerialized = rematerialized;
  recovered_records_.fetch_add(rematerialized, std::memory_order_relaxed);
  // Pull-dedup sets are rebuilt from each server's own journal, so a pull
  // retransmitted across the crash is still dropped.
  for (std::size_t k = 0; k < servers_.size(); ++k) {
    std::vector<std::uint64_t> applied;
    for (const WalRecord& r : mds_wals_[k]->Replay())
      if (r.type == WalRecordType::kPullApplied)
        applied.push_back(r.migration_id);
    servers_[k]->RestoreAppliedPulls(applied);
  }
  // Fresh checkpoint: the next crash replays from here instead of from
  // genesis.
  JournalPlacementLocked();
  report.gl_version = gl_version;
  crashed_.store(false, std::memory_order_release);
  recoveries_.fetch_add(1, std::memory_order_relaxed);
  return report;
}

}  // namespace d2tree
