// The functional MDS cluster: D2-Tree partitioning executed for real.
//
// Wraps M MdsServers, materializes a namespace into their stores (global
// layer replicated everywhere, each local-layer subtree on its owner),
// implements the client access logic of Sec. IV-A2 against live stores,
// serializes global-layer updates through a lock + replica broadcast, and
// *physically* executes the Monitor's dynamic-adjustment migrations by
// moving records between stores. A consistency auditor verifies the
// cluster invariants after any sequence of operations.
//
// Message path: every client/MDS/Monitor interaction travels as a typed
// message (net/message.h) over an injected Transport. The class splits
// into a *client-side stub* — Stat/StatVia/Update route via the shared
// local-index helper (core/routing.h), send kStatRequest/kUpdateRequest/
// kForward legs and accumulate per-op simulated latency and jump counts
// into ClientResult — and a *server-side handler* (ServeStat/ServeUpdate)
// that services delivered requests against the MdsServer stores.
// Heartbeats (kHeartbeat), pending-pool migrations (kPendingPoolPush/
// kPendingPoolPull) and the global-layer lock + commit broadcast
// (kGlWriteLock/kGlCommit) ride the same wire. On InProcessTransport
// (the default) every leg is free and delivered, reproducing the
// pre-message-layer behavior exactly; on SimNetTransport the jump counts
// of the paper become latency distributions and the network is a fault
// surface: a dropped client⇄MDS leg triggers the same bounded failover as
// a dead server (counted in failover_redirects()), and a Monitor⇄MDS
// partition suppresses heartbeats so adjustment rounds drain the server.
//
// Failure semantics (Sec. IV-A3/IV-B "owners out of range → pending
// pool", executed for real): KillServer crashes an MDS — it stops
// answering (clients see MdsStatus::kUnavailable, invalidate their cached
// route and fail over once, counted in failover_redirects()) and loses
// its volatile stores. The next RunAdjustmentRound reports the dead
// server to the Monitor with capacity 0, so its subtrees fall into the
// pending pool and are re-placed on survivors; records lost in the crash
// are recovered from the backing store (the namespace tree) during the
// migration, counted in recovered_records(). ReviveServer restarts a
// server with its GL replica rebuilt at the master version and any
// still-assigned subtree records re-materialized before it takes
// traffic; AddServer grows the cluster the same way and lets the
// newcomer pull from the pending pool per mirror division. A server whose
// heartbeats are suppressed (SetHeartbeatSuppressed) is treated as failed
// by the Monitor and drained, but keeps serving until its subtrees move.
//
// Durability & crash recovery (DESIGN.md §7): the Monitor journals every
// control-plane state transition to an append-only WAL (durability/wal.h)
// *before* applying it — capacity/placement checkpoints, global-layer
// version bumps, and the two-phase subtree handoff as INTENT → PREPARE →
// COMMIT records keyed by a monotonically assigned migration id. Each MDS
// keeps its own journal of applied pulls, so re-delivered pulls are
// deduplicated even across restarts. ArmCrash plants a one-shot crash at a
// named protocol site (durability/crash_point.h), optionally tearing the
// last WAL record like a real mid-append power cut; once it fires the
// whole metadata service is down — every client op returns kUnavailable —
// until Recover() replays the WAL, rolls in-flight migrations forward
// (prepared or later) or back (intent only), rebuilds every volatile
// store from the backing namespace, and resynchronizes the planner with
// the recovered placement. A pull the network refuses to deliver
// (Monitor⇄MDS partition) parks its migration: the records wait in the
// pending pool, the subtree is pinned to its grantee (routing answers
// kUnavailable for its nodes), and the next adjustment round re-issues
// the pull — receiver dedup on the migration id makes the re-delivery
// safe, so a healed partition can never double-assign the subtree.
// Control-plane messages ride a RetryPolicy (net/retry.h): capped
// exponential backoff with seeded jitter charged as simulated latency,
// surfaced in retries_total()/deadline_exceeded_total().
//
// Threading contract: any number of client threads may call Stat / StatVia
// / Update concurrently with each other and with RunAdjustmentRound /
// CheckConsistency / the fault operations (KillServer, ReviveServer,
// AddServer). Three locks coordinate them (always acquired in this
// order — client_mu_ → topo_mu_ → gl_mu_ — declared as
// D2T_ACQUIRED_BEFORE edges on the members below and enforced at compile
// time by Clang's -Wthread-safety plus scripts/check_lock_order.py):
//   * client_mu_   — client-side bookkeeping: popularity charging on the
//                    private tree copy and the shared rng.
//   * topo_mu_     — a shared-mutex "placement epoch" lock. Clients hold it
//                    shared while routing and touching stores; an
//                    adjustment round — and every fault operation — holds
//                    it exclusive while it mutates the scheme/assignment,
//                    membership or liveness, so readers never observe a
//                    record mid-migration or a server mid-crash.
//   * gl_mu_       — the ZooKeeper-style global-layer write lock: one
//                    update's version bump + replica broadcast is atomic
//                    with respect to other writers, replica rebuilds and
//                    the auditor.
// Below these nest the per-server pull-dedup lock (MdsServer::pulls_mu_,
// rank 35), the per-store locks (MetadataStore::mu_, rank 40), the WAL
// buffer locks (Wal::mu_, rank 45 — journal appends are leaf operations
// under the placement/GL locks) and the transport's link/log locks
// (SimNetTransport, ranks 50/60) — see DESIGN.md "Lock hierarchy" for the
// full rank table.
// gl_master_version_ is additionally atomic so monitoring reads never race
// with a broadcast in flight.
//
// tree_ is deliberately *not* GUARDED_BY one mutex: its structure is
// immutable after construction (read freely under topo_mu_ shared), while
// its popularity counters are only mutated under client_mu_ (AddAccess,
// RecomputeSubtreePopularity — the latter additionally under topo_mu_
// exclusive so no reader observes aggregates mid-recompute). A single
// capability cannot express that field-disjoint protocol; the split is
// documented here and exercised race-free under TSan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/core/d2tree.h"
#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/wal.h"
#include "d2tree/mds/server.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/net/retry.h"
#include "d2tree/net/transport.h"
#include "d2tree/nstree/tree.h"
#include "d2tree/storage/store_engine.h"

namespace d2tree {

class FunctionalCluster {
 public:
  /// Partitions `tree` (popularity must be charged) across `mds_count`
  /// servers and loads every record into the right stores. Messages travel
  /// over `transport` (nullptr → a private InProcessTransport: zero
  /// latency, no loss — the classic direct-call behavior). `store` picks
  /// the per-server local-store backend: the default in-memory map, or
  /// the LSM engine under `store.data_dir/mds<k>/` — in which case a
  /// restart with the same directory resumes from the durable namespace
  /// (Materialize only fills what the stores do not already hold) and
  /// subtree handoffs ship as sealed SSTables (one kBulkTable leg +
  /// file link-in) instead of per-record streams.
  FunctionalCluster(const NamespaceTree& tree, std::size_t mds_count,
                    D2TreeConfig config = {},
                    std::shared_ptr<Transport> transport = nullptr,
                    StoreSpec store = {});

  /// Total servers ever part of the cluster (dead ones included).
  std::size_t mds_count() const;
  /// Servers currently alive.
  std::size_t alive_count() const;
  /// The server object is stable (held by unique_ptr), but indexing the
  /// membership vector takes the placement lock shared: AddServer may be
  /// growing it concurrently.
  MdsServer& server(MdsId id) {
    ReaderMutexLock topo(&topo_mu_);
    return *servers_[static_cast<std::size_t>(id)];
  }
  const MdsServer& server(MdsId id) const {
    ReaderMutexLock topo(&topo_mu_);
    return *servers_[static_cast<std::size_t>(id)];
  }
  /// Reference stays valid for the cluster's lifetime; its *contents*
  /// shift whenever an adjustment round commits, so snapshot what you
  /// compare. The shared hold only fences the read against a round
  /// mid-commit.
  const D2TreeScheme& scheme() const {
    ReaderMutexLock topo(&topo_mu_);
    return scheme_;
  }
  const Assignment& assignment() const {
    ReaderMutexLock topo(&topo_mu_);
    return assignment_;
  }

  struct ClientResult {
    MdsStatus status = MdsStatus::kNotFound;
    InodeRecord record;
    MdsId served_by = -1;
    int hops = 1;   // servers contacted (failover retries included)
    int jumps = 0;  // server→server forwards (Def. 1; D2-Tree bound: ≤ 1)
    /// Accumulated simulated network latency of every message leg this op
    /// paid, µs (0 on InProcessTransport).
    double sim_latency_us = 0.0;
    OpClass op_class = OpClass::kGlHit;
    /// The transport-leg failure behind a kUnavailable outcome (kNone on a
    /// clean op): kUndeliverable = dead/partitioned/unknown peer, kTimeout
    /// = a lost leg that may have executed. The taxonomy is identical on
    /// every transport (tests/test_transport_conformance.cpp).
    DeliveryError net_error = DeliveryError::kNone;
  };

  /// Client read (Sec. IV-A2): consult the cached local index; a hit goes
  /// straight to the subtree owner, a miss means global layer → any
  /// server. Also charges the access for dynamic adjustment.
  ClientResult Stat(const std::string& path);

  /// Like Stat but deliberately entering at `via` — exercises the
  /// forwarding path (stale client knowledge). An out-of-range `via`
  /// (no such server) returns kUnavailable with hops == 0.
  ClientResult StatVia(const std::string& path, MdsId via);

  /// Client update: local-layer targets mutate at the owner; global-layer
  /// targets take the GL lock, bump the master version and write every
  /// live replica before returning (Sec. IV-A3).
  ClientResult Update(const std::string& path, std::uint64_t mtime);

  // --- Atomic rename transactions (DESIGN.md §8). ---

  struct RenameResult {
    MdsStatus status = MdsStatus::kNotFound;
    /// Transaction id (shared monotone counter with migration ids);
    /// 0 when the transaction never started (validation failure).
    std::uint64_t rename_id = 0;
    /// True when the transaction re-homed the subtree to another MDS.
    bool cross_server = false;
    /// Records shipped source → destination (0 for in-place renames —
    /// the D2-Tree claim the bench ratchets).
    std::size_t records_moved = 0;
    /// Accumulated simulated network latency of every message leg, µs.
    double sim_latency_us = 0.0;
  };

  /// Renames `path`'s final component in place, as one journaled
  /// transaction (kRenameIntent → kRenamePrepare → apply →
  /// kRenameCommit): a GL-resident target updates every live replica
  /// under the GL write lock; a local-layer target mutates at its owner.
  /// Either way the commit bumps the GL master version so cached client
  /// indexes and leases invalidate. No records change owner — the
  /// structure-keyed placement claim of Sec. II, executed for real.
  RenameResult Rename(const std::string& path, const std::string& new_name);

  /// Cross-MDS rename: renames `path` AND re-homes its subtree to `dest`
  /// in the same two-phase transaction (the source owner parks the
  /// subtree records, the destination applies them under a deduplicated
  /// rename id, ownership indexes and the GL version flip at commit).
  /// `path` must root a registered local-layer subtree — the unit of
  /// distribution — and `dest` must be alive; kNotPermitted otherwise.
  /// This is the operation hash-keyed schemes pay for on every directory
  /// rename; here it runs only when placement policy asks for it.
  RenameResult RenameTo(const std::string& path, const std::string& new_name,
                        MdsId dest);

  // --- Fault operations (the injector's hook points; each takes the
  // --- placement-epoch lock exclusively, so faults never fire mid-op).

  /// Crashes server `mds`: it stops answering and loses both stores.
  /// Refuses to kill the last alive server (false; also false when `mds`
  /// is out of range or already dead).
  bool KillServer(MdsId mds);

  /// Restarts a dead server: rebuilds its GL replica at the master
  /// version (from a live replica, else from the backing store) before it
  /// is marked alive. Subtrees it still owns — a fast restart, before any
  /// adjustment round re-placed them — come back with it, their records
  /// re-materialized from the backing store (counted in
  /// recovered_records()); subtrees already re-placed stay where they
  /// are, so after a drain it restarts empty and pulls from the pending
  /// pool like a fresh server. False if out of range or alive.
  bool ReviveServer(MdsId mds);

  /// Adds a fresh server (GL replica pre-built at the master version) and
  /// returns its id. It acquires subtrees via the pending pool, exactly
  /// like the paper's "newly added MDS" (Sec. IV-B).
  MdsId AddServer(double capacity = 1.0);

  /// While suppressed, `mds` is reported to the Monitor as capacity 0
  /// (missed heartbeats ⇒ presumed failed), so adjustment rounds drain
  /// it; it keeps serving what it still owns. False if out of range.
  bool SetHeartbeatSuppressed(MdsId mds, bool suppressed);

  /// Network faults (need a transport that models a network — false on
  /// InProcessTransport, so scheduled events are counted as skipped).
  /// Sets the drop probability of the client⇄`mds` link; while > 0,
  /// requests and responses are lost at that rate and clients pay the
  /// bounded failover path.
  bool SetClientLinkDrop(MdsId mds, double probability);
  /// Cuts (or heals) the Monitor⇄`mds` link. While partitioned the
  /// server's heartbeats never arrive, so adjustment rounds treat it as
  /// failed and drain it — exactly like SetHeartbeatSuppressed, but
  /// imposed by the network rather than the server.
  bool SetMonitorPartition(MdsId mds, bool partitioned);

  bool IsServerAlive(MdsId mds) const;

  /// One dynamic-adjustment round: recompute popularity from charged
  /// accesses, plan with the Monitor (dead and heartbeat-silent servers
  /// reported with capacity 0, so their subtrees route through the
  /// pending pool to survivors), and *physically move* the affected
  /// subtree records between stores — recovering from the backing store
  /// any record the source server lost in a crash. Also rebuilds stale GL
  /// replicas on revived/added servers before they take traffic.
  /// Serializes against concurrent clients via the placement lock.
  /// Returns the number of migrated records.
  std::size_t RunAdjustmentRound();

  /// Audits the invariants over the *alive* servers: every namespace node
  /// whose owner is alive is stored exactly once in local stores XOR on
  /// every live server's GL replica; nodes orphaned by a crash (owner
  /// dead, not yet re-placed) are held by nobody; all live GL replicas at
  /// the master version; record/namespace agreement. Safe to call while
  /// client threads are active (it quiesces writers for the audit).
  /// Returns true when clean; otherwise fills `error`.
  bool CheckConsistency(std::string* error) const;

  // --- Durability & crash recovery (DESIGN.md §7). ---

  /// Arms a one-shot crash at `site`: the next time the protocol reaches
  /// that point the whole metadata service goes down (crashed() flips,
  /// every client op answers kUnavailable, the in-flight round unwinds).
  /// With `torn_tail` the crash additionally rips the last bytes off the
  /// Monitor WAL, as if the process died mid-append — replay must detect
  /// the torn record and treat it as never written.
  void ArmCrash(CrashSite site, bool torn_tail = false);

  /// True between a crash firing and Recover() completing.
  bool crashed() const noexcept {
    return crashed_.load(std::memory_order_acquire);
  }

  struct RecoveryReport {
    std::size_t wal_records_replayed = 0;
    bool torn_tail_detected = false;
    std::size_t torn_bytes_discarded = 0;
    /// Prepared-but-uncommitted migrations completed at their grantee.
    std::size_t migrations_rolled_forward = 0;
    /// Intent-only migrations aborted (nothing had moved).
    std::size_t migrations_rolled_back = 0;
    /// Records rebuilt into local stores from the backing namespace.
    std::size_t records_rematerialized = 0;
    /// GL master version recovered from the WAL.
    std::uint64_t gl_version = 0;
    /// Prepared-but-uncommitted renames completed (name + ownership
    /// applied, commit journaled).
    std::size_t renames_rolled_forward = 0;
    /// Intent-only renames aborted (name and ownership unchanged).
    std::size_t renames_rolled_back = 0;
    /// Persistent-store replay (LSM backend only; zero on memory stores):
    /// local-store WALs whose tail was torn mid-append and truncated, and
    /// the total memtable records their group-commit WALs replayed.
    std::size_t store_wals_torn = 0;
    std::size_t store_wal_records_replayed = 0;
  };

  /// Restarts the metadata service after a crash: replays the Monitor WAL
  /// (truncating any torn tail), resolves in-flight migrations — intent
  /// only → journaled abort, prepared or later → journaled commit at the
  /// grantee — rebuilds every volatile store from the backing namespace at
  /// the recovered placement, restores each MDS's pull-dedup set from its
  /// own journal, resynchronizes the planner, and writes a fresh placement
  /// checkpoint. Idempotent: recovering an uncrashed cluster is a no-op
  /// rebuild. Dead servers stay dead (their subtrees remain orphaned until
  /// an adjustment round or ReviveServer).
  RecoveryReport Recover();

  /// The Monitor's journal (internally locked; safe without the placement
  /// lock).
  const Wal& monitor_wal() const noexcept { return monitor_wal_; }
  /// Server `id`'s applied-pull journal.
  const Wal& mds_wal(MdsId id) const {
    ReaderMutexLock topo(&topo_mu_);
    return *mds_wals_[static_cast<std::size_t>(id)];
  }

  /// Migrations whose pull is parked in the pending pool awaiting a
  /// deliverable link, and a snapshot of their member nodes (d2fsck).
  std::size_t parked_migration_count() const {
    ReaderMutexLock topo(&topo_mu_);
    return parked_.size();
  }
  std::vector<NodeId> ParkedNodes() const {
    ReaderMutexLock topo(&topo_mu_);
    return {parked_nodes_.begin(), parked_nodes_.end()};
  }

  std::uint64_t gl_master_version() const noexcept {
    return gl_master_version_.load(std::memory_order_acquire);
  }
  std::uint64_t total_forwards() const noexcept { return forwards_.load(); }

  /// Number of global-layer updates acknowledged (lock acquisitions).
  std::uint64_t gl_updates() const noexcept { return gl_updates_.load(); }
  /// Aggregate wall time update threads spent waiting for the GL lock —
  /// the live-cluster analogue of SimResult::lock_wait_total.
  double gl_lock_wait_seconds() const noexcept {
    return static_cast<double>(gl_lock_wait_ns_.load()) * 1e-9;
  }
  /// Completed adjustment rounds (monotone).
  std::uint64_t adjustment_rounds() const noexcept {
    return adjustment_rounds_.load();
  }
  /// Client redirects after contacting a dead server (stale-cache
  /// invalidation + failover, Lustre-style).
  std::uint64_t failover_redirects() const noexcept {
    return failover_redirects_.load();
  }
  /// Records rebuilt from the backing store because their owner crashed
  /// before they migrated.
  std::uint64_t recovered_records() const noexcept {
    return recovered_records_.load();
  }

  /// The message layer everything above rides on.
  Transport& transport() noexcept { return *transport_; }
  const Transport& transport() const noexcept { return *transport_; }

  /// Heartbeats that never reached the Monitor (dropped or partitioned
  /// link) — each one makes an adjustment round treat its sender as
  /// failed.
  std::uint64_t heartbeats_lost() const noexcept {
    return heartbeats_lost_.load();
  }
  /// Simulated latency of control-plane traffic (heartbeats, pending-pool
  /// push/pull, replica rebuilds), µs — kept separate from the per-op
  /// client latency in ClientResult.
  double control_latency_us() const noexcept {
    return static_cast<double>(control_ns_.load()) * 1e-3;
  }

  /// Control-plane retransmissions under the retry/backoff policy, and
  /// operations that exhausted their per-op deadline despite them.
  std::uint64_t retries_total() const noexcept { return retries_total_.load(); }
  std::uint64_t deadline_exceeded_total() const noexcept {
    return deadline_exceeded_total_.load();
  }
  /// Re-delivered pulls the receiver dropped via migration-id dedup — each
  /// one is a double-apply that did not happen.
  std::uint64_t duplicate_pulls_dropped() const noexcept {
    return duplicate_pulls_dropped_.load();
  }
  /// Subtree handoffs that travelled as one sealed SSTable (kBulkTable
  /// leg + file link-in at the destination) rather than a per-record
  /// stream, and the records those tables carried. Nonzero only with a
  /// persistent store backend.
  std::uint64_t bulk_tables_shipped() const noexcept {
    return bulk_tables_shipped_.load();
  }
  std::uint64_t bulk_records_shipped() const noexcept {
    return bulk_records_shipped_.load();
  }
  /// Armed crashes that fired / Recover() calls that completed.
  std::uint64_t crashes_injected() const noexcept {
    return crashes_injected_.load();
  }
  std::uint64_t recoveries_completed() const noexcept {
    return recoveries_.load();
  }

  /// Rename transactions that reached kRenameCommit / kRenameAbort
  /// (live runs and recovery resolutions both count).
  std::uint64_t renames_committed() const noexcept {
    return renames_committed_.load();
  }
  std::uint64_t renames_aborted() const noexcept {
    return renames_aborted_.load();
  }

  /// Path-integrity audit (d2fsck's "no path resolves to two owners"):
  /// for every node, the path reconstructed from the live tree must
  /// resolve back to exactly that node — renames must never alias two
  /// nodes onto one path or strand a path without a resolver. Returns
  /// the number of violations, filling `error` with the first.
  std::size_t CheckPathIntegrity(std::string* error) const;

 private:
  InodeRecord MakeRecord(NodeId id) const;
  /// Loads every record into the right store. Called from the constructor
  /// under the exclusive placement hold it takes for initialization.
  void Materialize() D2T_REQUIRES(topo_mu_);
  /// Client-side stub: sends the request leg(s) for `target` entering at
  /// `at`, drives the server-side handler, pays forward/failover legs and
  /// fills the per-op telemetry.
  ClientResult StatAt(NodeId target, MdsId at) D2T_REQUIRES_SHARED(topo_mu_);
  /// Accounts one control-plane leg (heartbeat/migration/rebuild traffic).
  void AccountControl(const Delivery& d) noexcept {
    control_ns_.fetch_add(static_cast<std::uint64_t>(d.latency_us * 1e3),
                          std::memory_order_relaxed);
  }
  /// Liveness check.
  bool AliveLocked(MdsId mds) const D2T_REQUIRES_SHARED(topo_mu_) {
    return mds >= 0 && static_cast<std::size_t>(mds) < servers_.size() &&
           servers_[mds]->alive();
  }
  MdsId AnyAliveLocked() const D2T_REQUIRES_SHARED(topo_mu_);
  std::size_t AliveCountLocked() const D2T_REQUIRES_SHARED(topo_mu_);
  /// Capacities the Monitor plans with, derived from one heartbeat round
  /// *as messages*: dead and suppressed servers send nothing; a heartbeat
  /// lost on the wire (drop or Monitor⇄MDS partition) silences its sender
  /// just the same — either way the Monitor plans with capacity 0 and the
  /// server drains.
  MdsCluster CollectHeartbeats() D2T_REQUIRES(topo_mu_);
  /// Re-fills `mds`'s GL replica at the master version.
  void RebuildGlReplicaLocked(MdsId mds) D2T_REQUIRES(topo_mu_, gl_mu_);
  /// Control-plane send under `policy`: retries with capped backoff,
  /// charges the accumulated simulated latency to control_ns_ and the
  /// retry/deadline counters, returns the final delivery verdict.
  bool SendControl(const Address& from, const Address& to, const Message& msg,
                   const RetryPolicy& policy, std::uint64_t nonce);
  /// Fires an armed crash if `site` matches: flips crashed_, optionally
  /// tears the Monitor WAL tail *and* every server's local-store WAL tail
  /// (the power cut mid-append everywhere at once). Returns true when the
  /// caller must unwind. Needs at least a shared placement hold to walk
  /// the membership for the store-WAL tear; each store's own lock
  /// serializes the tear against concurrent appends.
  bool MaybeCrash(CrashSite site) D2T_REQUIRES_SHARED(topo_mu_);
  /// Checkpoints the planner's subtree owners + GL version to the WAL.
  void JournalPlacementLocked() D2T_REQUIRES(topo_mu_);
  /// Checkpoints the configured per-MDS capacities to the WAL.
  void JournalCapacitiesLocked() D2T_REQUIRES(topo_mu_);
  /// Re-issues the pull of every parked migration whose link heals;
  /// aborts those whose grantee died. Returns records delivered.
  std::size_t CompleteParkedLocked() D2T_REQUIRES(topo_mu_);
  /// The rename transaction driver behind Rename/RenameTo (DESIGN.md §8).
  /// `dest` empty = in-place rename; set = cross-server re-home.
  RenameResult RenameImpl(const std::string& path, const std::string& new_name,
                          std::optional<MdsId> dest);
  /// Idempotently applies a committed/rolled-forward rename to the
  /// backing tree. False (skip) if another node already holds the name —
  /// only reachable replaying a journal against a later namespace.
  bool ApplyRenameLocked(NodeId id, const std::string& new_name)
      D2T_REQUIRES(topo_mu_);

  /// Per-server local-store spec: `store_spec_.data_dir/mds<k>` is server
  /// k's engine root. Set once in the ctor, then read-only.
  StoreSpec ServerStoreSpec(MdsId id) const;
  /// Scratch path for a sealed subtree table in flight (`<data_dir>/ship/
  /// <kind><id>.sst`); callers remove the file once ingested or aborted.
  std::string ShipPath(const char* kind, std::uint64_t id) const;
  /// Seals `records` into ShipPath(kind, id) when the bulk path is on.
  /// Returns the table path, or "" (per-record fallback: memory backend,
  /// or the seal failed).
  std::string SealForShipping(const char* kind, std::uint64_t id,
                              const std::vector<InodeRecord>& records) const;

  // tree_ is protocol-guarded, not capability-guarded — see the threading
  // contract at the top of this file.
  NamespaceTree tree_;  // private copy: accrues access popularity
  std::shared_ptr<Transport> transport_;  // set once in the ctor, then const
  StoreSpec store_spec_;                  // set once in the ctor, then const

  /// Guards the client-side bookkeeping (popularity charging, rng) so
  /// multiple client threads can drive the cluster concurrently; server
  /// stores have their own locks. First in the cluster's acquisition
  /// order.
  mutable Mutex client_mu_ D2T_ACQUIRED_BEFORE(topo_mu_) D2T_LOCK_RANK(10);
  Rng rng_ D2T_GUARDED_BY(client_mu_){0xC1057E2ULL};

  /// Placement epoch lock (see threading contract above).
  mutable SharedMutex topo_mu_ D2T_ACQUIRED_BEFORE(gl_mu_) D2T_LOCK_RANK(20);
  MdsCluster capacities_ D2T_GUARDED_BY(topo_mu_);
  D2TreeScheme scheme_ D2T_GUARDED_BY(topo_mu_);
  Assignment assignment_ D2T_GUARDED_BY(topo_mu_);
  std::vector<std::unique_ptr<MdsServer>> servers_ D2T_GUARDED_BY(topo_mu_);

  // --- Durability state (DESIGN.md §7). The Monitor WAL is internally
  // --- locked (rank 45) so journal reads never need the placement lock;
  // --- the per-MDS journals live behind topo_mu_ like the servers.
  Wal monitor_wal_;
  std::vector<std::unique_ptr<Wal>> mds_wals_ D2T_GUARDED_BY(topo_mu_);
  std::uint64_t next_migration_id_ D2T_GUARDED_BY(topo_mu_) = 1;
  /// A handoff whose pull the network refused to deliver: records wait in
  /// the pending pool, member nodes are pinned unreachable, the next
  /// round re-issues the pull (or aborts if the grantee died).
  struct ParkedMigration {
    std::uint64_t id = 0;
    NodeId root = kInvalidNode;
    MdsId from = -1;
    MdsId to = -1;
    std::vector<NodeId> members;
    std::vector<InodeRecord> records;
    /// Sealed-table handoff (persistent backend): the SSTable waiting in
    /// the ship directory; re-issued pulls re-send this file. Empty on
    /// the per-record path.
    std::string table;
  };
  std::vector<ParkedMigration> parked_ D2T_GUARDED_BY(topo_mu_);
  std::unordered_set<NodeId> parked_nodes_ D2T_GUARDED_BY(topo_mu_);
  /// Default control-plane retry discipline (set once, then read-only).
  RetryPolicy control_policy_{};

  /// The ZooKeeper-style global-layer write lock.
  mutable Mutex gl_mu_ D2T_LOCK_RANK(30);

  std::atomic<std::uint64_t> gl_master_version_{0};
  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> gl_updates_{0};
  std::atomic<std::uint64_t> gl_lock_wait_ns_{0};
  std::atomic<std::uint64_t> adjustment_rounds_{0};
  std::atomic<std::uint64_t> failover_redirects_{0};
  std::atomic<std::uint64_t> recovered_records_{0};
  std::atomic<std::uint64_t> heartbeats_lost_{0};
  std::atomic<std::uint64_t> control_ns_{0};

  /// Armed crash site (-1 = none) + torn-tail flag; one-shot, consumed by
  /// MaybeCrash with a compare-exchange so exactly one site fires.
  std::atomic<int> armed_site_{-1};
  std::atomic<bool> armed_torn_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> retries_total_{0};
  std::atomic<std::uint64_t> deadline_exceeded_total_{0};
  std::atomic<std::uint64_t> duplicate_pulls_dropped_{0};
  std::atomic<std::uint64_t> bulk_tables_shipped_{0};
  std::atomic<std::uint64_t> bulk_records_shipped_{0};
  std::atomic<std::uint64_t> crashes_injected_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> renames_committed_{0};
  std::atomic<std::uint64_t> renames_aborted_{0};
};

}  // namespace d2tree
