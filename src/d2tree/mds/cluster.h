// The functional MDS cluster: D2-Tree partitioning executed for real.
//
// Wraps M MdsServers, materializes a namespace into their stores (global
// layer replicated everywhere, each local-layer subtree on its owner),
// implements the client access logic of Sec. IV-A2 against live stores,
// serializes global-layer updates through a lock + replica broadcast, and
// *physically* executes the Monitor's dynamic-adjustment migrations by
// moving records between stores. A consistency auditor verifies the
// cluster invariants after any sequence of operations.
//
// Threading contract: any number of client threads may call Stat / StatVia
// / Update concurrently with each other and with RunAdjustmentRound /
// CheckConsistency. Three locks coordinate them (always acquired in this
// order — client_mu_ → topo_mu_ → gl_mu_):
//   * client_mu_   — client-side bookkeeping: popularity charging on the
//                    private tree copy and the shared rng.
//   * topo_mu_     — a shared_mutex "placement epoch" lock. Clients hold it
//                    shared while routing and touching stores; an
//                    adjustment round holds it exclusive while it mutates
//                    the scheme/assignment and physically moves records, so
//                    readers never observe a record mid-migration.
//   * gl_mu_       — the ZooKeeper-style global-layer write lock: one
//                    update's version bump + replica broadcast is atomic
//                    with respect to other writers and the auditor.
// gl_master_version_ is additionally atomic so monitoring reads never race
// with a broadcast in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "d2tree/core/d2tree.h"
#include "d2tree/mds/server.h"
#include "d2tree/nstree/tree.h"

namespace d2tree {

class FunctionalCluster {
 public:
  /// Partitions `tree` (popularity must be charged) across `mds_count`
  /// servers and loads every record into the right stores.
  FunctionalCluster(const NamespaceTree& tree, std::size_t mds_count,
                    D2TreeConfig config = {});

  std::size_t mds_count() const noexcept { return servers_.size(); }
  MdsServer& server(MdsId id) { return *servers_[id]; }
  const MdsServer& server(MdsId id) const { return *servers_[id]; }
  const D2TreeScheme& scheme() const noexcept { return scheme_; }
  const Assignment& assignment() const noexcept { return assignment_; }

  struct ClientResult {
    MdsStatus status = MdsStatus::kNotFound;
    InodeRecord record;
    MdsId served_by = -1;
    int hops = 1;  // servers contacted
  };

  /// Client read (Sec. IV-A2): consult the cached local index; a hit goes
  /// straight to the subtree owner, a miss means global layer → any
  /// server. Also charges the access for dynamic adjustment.
  ClientResult Stat(const std::string& path);

  /// Like Stat but deliberately entering at `via` — exercises the
  /// forwarding path (stale client knowledge).
  ClientResult StatVia(const std::string& path, MdsId via);

  /// Client update: local-layer targets mutate at the owner; global-layer
  /// targets take the GL lock, bump the master version and write every
  /// replica before returning (Sec. IV-A3).
  ClientResult Update(const std::string& path, std::uint64_t mtime);

  /// One dynamic-adjustment round: recompute popularity from charged
  /// accesses, plan with the Monitor, and *physically move* the affected
  /// subtree records between stores. Serializes against concurrent clients
  /// via the placement lock. Returns the number of migrated records.
  std::size_t RunAdjustmentRound();

  /// Audits the invariants: every namespace node stored exactly once in
  /// local stores XOR on every server's GL replica; all GL replicas at the
  /// master version; record/namespace agreement. Safe to call while client
  /// threads are active (it quiesces writers for the audit). Returns true
  /// when clean; otherwise fills `error`.
  bool CheckConsistency(std::string* error) const;

  std::uint64_t gl_master_version() const noexcept {
    return gl_master_version_.load(std::memory_order_acquire);
  }
  std::uint64_t total_forwards() const noexcept { return forwards_.load(); }

  /// Number of global-layer updates acknowledged (lock acquisitions).
  std::uint64_t gl_updates() const noexcept { return gl_updates_.load(); }
  /// Aggregate wall time update threads spent waiting for the GL lock —
  /// the live-cluster analogue of SimResult::lock_wait_total.
  double gl_lock_wait_seconds() const noexcept {
    return static_cast<double>(gl_lock_wait_ns_.load()) * 1e-9;
  }
  /// Completed adjustment rounds (monotone).
  std::uint64_t adjustment_rounds() const noexcept {
    return adjustment_rounds_.load();
  }

 private:
  InodeRecord MakeRecord(NodeId id) const;
  void Materialize();
  /// Access logic against live stores; caller must hold topo_mu_ (shared).
  ClientResult StatAt(NodeId target, MdsId at);

  NamespaceTree tree_;  // private copy: accrues access popularity
  MdsCluster capacities_;
  D2TreeScheme scheme_;
  Assignment assignment_;
  std::vector<std::unique_ptr<MdsServer>> servers_;

  /// Placement epoch lock (see threading contract above).
  mutable std::shared_mutex topo_mu_;
  mutable std::mutex gl_mu_;  // the ZooKeeper-style global-layer write lock
  std::atomic<std::uint64_t> gl_master_version_{0};
  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> gl_updates_{0};
  std::atomic<std::uint64_t> gl_lock_wait_ns_{0};
  std::atomic<std::uint64_t> adjustment_rounds_{0};
  /// Guards the client-side bookkeeping (popularity charging, rng) so
  /// multiple client threads can drive the cluster concurrently; server
  /// stores have their own locks.
  mutable std::mutex client_mu_;
  Rng rng_{0xC1057E2ULL};
};

}  // namespace d2tree
