// Metadata records served by the functional MDS cluster.
//
// The partition layer decides *where* a node lives; this layer is the
// *what*: POSIX-ish inode attributes plus the versioning used for
// replica/cache consistency (Sec. IV-A2's "version number, timeout and
// lease mechanism").
#pragma once

#include <cstdint>
#include <string>

#include "d2tree/nstree/node.h"

namespace d2tree {

struct InodeAttributes {
  std::uint32_t mode = 0644;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;  // seconds
  std::uint64_t ctime = 0;

  bool operator==(const InodeAttributes&) const = default;
};

/// One stored metadata record. `parent` + `name` carry the namespace edge
/// so a store can be audited independently of the tree object.
struct InodeRecord {
  NodeId id = kInvalidNode;
  NodeId parent = kInvalidNode;
  std::string name;
  NodeType type = NodeType::kFile;
  InodeAttributes attrs;
  /// Bumped on every mutation; replicas/caches compare versions.
  std::uint64_t version = 0;

  bool operator==(const InodeRecord&) const = default;
};

/// Outcome of one metadata operation against the cluster.
enum class MdsStatus : std::uint8_t {
  kOk = 0,
  kNotFound,        // no such node on this server (routing bug or races)
  kNotPermitted,    // permission check failed along the path
  kWrongServer,     // request must be forwarded (carries the target)
  kUnavailable,     // server is down or does not exist (client fails over)
};

const char* MdsStatusName(MdsStatus status);

}  // namespace d2tree
