#include "d2tree/mds/server.h"

namespace d2tree {

bool MdsServer::CheckAncestors(std::span<const NodeId> ancestors) const {
  for (NodeId a : ancestors) {
    if (!CanRead(a)) return false;
  }
  return true;
}

MdsOpResult MdsServer::Stat(NodeId target,
                            std::span<const NodeId> ancestors) const {
  MdsOpResult result;
  if (!alive()) {
    result.status = MdsStatus::kUnavailable;
    return result;
  }
  ++ops_;
  auto record = global_.Get(target);
  if (!record.has_value()) record = local_.Get(target);
  if (!record.has_value()) {
    result.status = MdsStatus::kWrongServer;
    return result;
  }
  // POSIX traversal: every ancestor must be visible here. With an intact
  // subtree plus the replicated crown this always holds for correctly
  // routed requests; a violation means the request was misrouted.
  if (!CheckAncestors(ancestors)) {
    result.status = MdsStatus::kWrongServer;
    return result;
  }
  result.status = MdsStatus::kOk;
  result.record = *record;
  return result;
}

bool MdsServer::ApplyPull(std::uint64_t migration_id,
                          const std::vector<InodeRecord>& records) {
  MutexLock lock(&pulls_mu_);
  if (!applied_pulls_.insert(migration_id).second) return false;  // dup
  local_.InsertAll(records);
  return true;
}

bool MdsServer::ApplyPullTable(std::uint64_t migration_id,
                               const std::string& path,
                               std::size_t* records_ingested) {
  MutexLock lock(&pulls_mu_);
  if (!applied_pulls_.insert(migration_id).second) return false;  // dup
  const std::size_t n = local_.IngestTable(path);
  if (records_ingested != nullptr) *records_ingested = n;
  return true;
}

bool MdsServer::HasAppliedPull(std::uint64_t migration_id) const {
  MutexLock lock(&pulls_mu_);
  return applied_pulls_.contains(migration_id);
}

void MdsServer::RestoreAppliedPulls(const std::vector<std::uint64_t>& ids) {
  MutexLock lock(&pulls_mu_);
  applied_pulls_.insert(ids.begin(), ids.end());
}

StoreRecoveryInfo MdsServer::LoseVolatileState(bool reopen_durable_local) {
  StoreRecoveryInfo info;
  if (reopen_durable_local) {
    info = local_.Reopen();
  } else {
    local_.Clear();
  }
  global_.Clear();
  MutexLock lock(&pulls_mu_);
  applied_pulls_.clear();
  return info;
}

MdsOpResult MdsServer::UpdateLocal(NodeId target,
                                   std::span<const NodeId> ancestors,
                                   std::uint64_t mtime) {
  MdsOpResult result;
  if (!alive()) {
    result.status = MdsStatus::kUnavailable;
    return result;
  }
  ++ops_;
  if (!local_.Contains(target)) {
    result.status = MdsStatus::kWrongServer;
    return result;
  }
  if (!CheckAncestors(ancestors)) {
    result.status = MdsStatus::kWrongServer;
    return result;
  }
  local_.Mutate(target, mtime);
  result.status = MdsStatus::kOk;
  result.record = *local_.Get(target);
  return result;
}

}  // namespace d2tree
