#include "d2tree/mds/store.h"

#include <algorithm>

#include "d2tree/storage/memory_engine.h"
#include "d2tree/storage/sstable.h"

namespace d2tree {

const char* MdsStatusName(MdsStatus status) {
  switch (status) {
    case MdsStatus::kOk:
      return "ok";
    case MdsStatus::kNotFound:
      return "not-found";
    case MdsStatus::kNotPermitted:
      return "not-permitted";
    case MdsStatus::kWrongServer:
      return "wrong-server";
    case MdsStatus::kUnavailable:
      return "unavailable";
  }
  return "?";
}

MetadataStore::MetadataStore() : engine_(std::make_unique<MemoryEngine>()) {}

MetadataStore::MetadataStore(std::unique_ptr<StoreEngine> engine)
    : engine_(engine ? std::move(engine)
                     : std::make_unique<MemoryEngine>()) {}

void MetadataStore::Put(const InodeRecord& record) {
  MutexLock lock(&mu_);
  engine_->Put(record);
}

std::optional<InodeRecord> MetadataStore::Get(NodeId id) const {
  MutexLock lock(&mu_);
  return engine_->Get(id);
}

bool MetadataStore::Contains(NodeId id) const {
  MutexLock lock(&mu_);
  return engine_->Contains(id);
}

std::optional<InodeRecord> MetadataStore::Remove(NodeId id) {
  MutexLock lock(&mu_);
  return engine_->Remove(id);
}

std::optional<std::uint64_t> MetadataStore::Mutate(NodeId id,
                                                   std::uint64_t mtime) {
  MutexLock lock(&mu_);
  auto record = engine_->Get(id);
  if (!record.has_value()) return std::nullopt;
  record->attrs.mtime = mtime;
  ++record->version;
  engine_->Put(*record);
  return record->version;
}

std::vector<InodeRecord> MetadataStore::ExtractAll(
    const std::vector<NodeId>& ids) {
  MutexLock lock(&mu_);
  return engine_->ExtractAll(ids);
}

void MetadataStore::InsertAll(const std::vector<InodeRecord>& records) {
  MutexLock lock(&mu_);
  engine_->InsertAll(records);
}

std::vector<InodeRecord> MetadataStore::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<InodeRecord> out;
  out.reserve(engine_->Size());
  engine_->Scan([&out](const InodeRecord& rec) { out.push_back(rec); });
  return out;
}

void MetadataStore::Clear() {
  MutexLock lock(&mu_);
  engine_->Clear();
}

std::size_t MetadataStore::size() const {
  MutexLock lock(&mu_);
  return engine_->Size();
}

std::vector<NodeId> MetadataStore::HeldIds() const {
  MutexLock lock(&mu_);
  std::vector<NodeId> out;
  out.reserve(engine_->Size());
  engine_->Scan([&out](const InodeRecord& rec) { out.push_back(rec.id); });
  return out;
}

std::size_t MetadataStore::ExtractToTable(const std::vector<NodeId>& ids,
                                          const std::string& path) {
  MutexLock lock(&mu_);
  std::vector<InodeRecord> held;
  held.reserve(ids.size());
  for (NodeId id : ids) {
    auto record = engine_->Get(id);
    if (record.has_value()) held.push_back(std::move(*record));
  }
  if (held.empty()) return 0;
  const std::size_t sealed = held.size();
  if (!WriteRecordsTable(std::move(held), path)) return 0;
  // The table is durable; only now drop the records from the engine.
  engine_->ExtractAll(ids);
  return sealed;
}

std::size_t MetadataStore::IngestTable(const std::string& path) {
  MutexLock lock(&mu_);
  return engine_->IngestTableFile(path);
}

void MetadataStore::Flush() {
  MutexLock lock(&mu_);
  engine_->Flush();
}

StoreRecoveryInfo MetadataStore::Reopen() {
  MutexLock lock(&mu_);
  return engine_->Reopen();
}

void MetadataStore::TearWalTail(std::size_t bytes) {
  MutexLock lock(&mu_);
  engine_->TearWalTail(bytes);
}

std::vector<std::string> MetadataStore::AuditStorage() const {
  MutexLock lock(&mu_);
  return engine_->AuditStorage();
}

const char* MetadataStore::engine_name() const {
  MutexLock lock(&mu_);
  return engine_->name();
}

StoreEngineStats MetadataStore::EngineStats() const {
  MutexLock lock(&mu_);
  return engine_->Stats();
}

}  // namespace d2tree
