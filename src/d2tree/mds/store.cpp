#include "d2tree/mds/store.h"

namespace d2tree {

const char* MdsStatusName(MdsStatus status) {
  switch (status) {
    case MdsStatus::kOk:
      return "ok";
    case MdsStatus::kNotFound:
      return "not-found";
    case MdsStatus::kNotPermitted:
      return "not-permitted";
    case MdsStatus::kWrongServer:
      return "wrong-server";
    case MdsStatus::kUnavailable:
      return "unavailable";
  }
  return "?";
}

void MetadataStore::Put(const InodeRecord& record) {
  MutexLock lock(&mu_);
  records_[record.id] = record;
}

std::optional<InodeRecord> MetadataStore::Get(NodeId id) const {
  MutexLock lock(&mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool MetadataStore::Contains(NodeId id) const {
  MutexLock lock(&mu_);
  return records_.contains(id);
}

std::optional<InodeRecord> MetadataStore::Remove(NodeId id) {
  MutexLock lock(&mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  InodeRecord out = std::move(it->second);
  records_.erase(it);
  return out;
}

std::optional<std::uint64_t> MetadataStore::Mutate(NodeId id,
                                                   std::uint64_t mtime) {
  MutexLock lock(&mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  it->second.attrs.mtime = mtime;
  return ++it->second.version;
}

std::vector<InodeRecord> MetadataStore::ExtractAll(
    const std::vector<NodeId>& ids) {
  MutexLock lock(&mu_);
  std::vector<InodeRecord> out;
  out.reserve(ids.size());
  for (NodeId id : ids) {
    const auto it = records_.find(id);
    if (it == records_.end()) continue;
    out.push_back(std::move(it->second));
    records_.erase(it);
  }
  return out;
}

void MetadataStore::InsertAll(const std::vector<InodeRecord>& records) {
  MutexLock lock(&mu_);
  for (const auto& r : records) records_[r.id] = r;
}

std::vector<InodeRecord> MetadataStore::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<InodeRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec);
  return out;
}

void MetadataStore::Clear() {
  MutexLock lock(&mu_);
  records_.clear();
}

std::size_t MetadataStore::size() const {
  MutexLock lock(&mu_);
  return records_.size();
}

std::vector<NodeId> MetadataStore::HeldIds() const {
  MutexLock lock(&mu_);
  std::vector<NodeId> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(id);
  return out;
}

}  // namespace d2tree
