// A functional metadata server: owns local-layer records, holds a replica
// of the global layer, performs POSIX-style permission checks along the
// ancestor chain, and answers or forwards requests (Sec. IV-A2 access
// logic, executed for real rather than simulated in virtual time).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "d2tree/mds/store.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

struct MdsOpResult {
  MdsStatus status = MdsStatus::kNotFound;
  InodeRecord record;  // valid when status == kOk
};

class MdsServer {
 public:
  explicit MdsServer(MdsId id) : id_(id) {}

  MdsId id() const noexcept { return id_; }

  /// Authoritative local-layer records this server owns.
  MetadataStore& local() noexcept { return local_; }
  const MetadataStore& local() const noexcept { return local_; }

  /// This server's replica of the global layer.
  MetadataStore& global_replica() noexcept { return global_; }
  const MetadataStore& global_replica() const noexcept { return global_; }

  /// Version of the global layer this replica has applied.
  std::uint64_t gl_version() const noexcept { return gl_version_.load(); }
  void set_gl_version(std::uint64_t v) noexcept { gl_version_.store(v); }

  /// Liveness: a dead server answers nothing (the cluster's fault layer
  /// flips this on KillServer/ReviveServer).
  bool alive() const noexcept {
    return alive_.load(std::memory_order_acquire);
  }
  void set_alive(bool alive) noexcept {
    alive_.store(alive, std::memory_order_release);
  }

  /// While suppressed, the server's heartbeats never reach the Monitor, so
  /// an adjustment round treats it like a failed MDS and drains it.
  bool heartbeats_suppressed() const noexcept {
    return hb_suppressed_.load(std::memory_order_acquire);
  }
  void set_heartbeats_suppressed(bool suppressed) noexcept {
    hb_suppressed_.store(suppressed, std::memory_order_release);
  }

  /// Reads `target` after checking every ancestor is readable *from this
  /// server* (each must be in the GL replica or owned locally): the
  /// pathname traversal + permission check of Sec. III-A.
  /// kWrongServer = this server cannot see the target (caller forwards).
  MdsOpResult Stat(NodeId target, std::span<const NodeId> ancestors) const;

  /// Mutates a locally-owned record (local-layer update). Global-layer
  /// updates go through the cluster (lock + broadcast), not here.
  MdsOpResult UpdateLocal(NodeId target, std::span<const NodeId> ancestors,
                          std::uint64_t mtime);

  /// Operations served (monitoring).
  std::uint64_t ops_served() const noexcept { return ops_.load(); }

 private:
  bool CanRead(NodeId id) const {
    return global_.Contains(id) || local_.Contains(id);
  }
  bool CheckAncestors(std::span<const NodeId> ancestors) const;

  MdsId id_;
  MetadataStore local_;
  MetadataStore global_;
  std::atomic<std::uint64_t> gl_version_{0};
  std::atomic<bool> alive_{true};
  std::atomic<bool> hb_suppressed_{false};
  mutable std::atomic<std::uint64_t> ops_{0};
};

}  // namespace d2tree
