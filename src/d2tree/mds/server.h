// A functional metadata server: owns local-layer records, holds a replica
// of the global layer, performs POSIX-style permission checks along the
// ancestor chain, and answers or forwards requests (Sec. IV-A2 access
// logic, executed for real rather than simulated in virtual time).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/mds/store.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

struct MdsOpResult {
  MdsStatus status = MdsStatus::kNotFound;
  InodeRecord record;  // valid when status == kOk
};

class MdsServer {
 public:
  explicit MdsServer(MdsId id) : id_(id) {}

  /// Server whose authoritative local store is backed per `spec` (the LSM
  /// engine when a data dir is configured). The GL replica always stays in
  /// memory: it is derived state, rebuilt from the owners on boot/revive.
  MdsServer(MdsId id, const StoreSpec& spec)
      : id_(id), local_(MakeStoreEngine(spec, "local")) {}

  MdsId id() const noexcept { return id_; }

  /// Authoritative local-layer records this server owns.
  MetadataStore& local() noexcept { return local_; }
  const MetadataStore& local() const noexcept { return local_; }

  /// This server's replica of the global layer.
  MetadataStore& global_replica() noexcept { return global_; }
  const MetadataStore& global_replica() const noexcept { return global_; }

  /// Version of the global layer this replica has applied.
  std::uint64_t gl_version() const noexcept { return gl_version_.load(); }
  void set_gl_version(std::uint64_t v) noexcept { gl_version_.store(v); }

  /// Liveness: a dead server answers nothing (the cluster's fault layer
  /// flips this on KillServer/ReviveServer).
  bool alive() const noexcept {
    return alive_.load(std::memory_order_acquire);
  }
  void set_alive(bool alive) noexcept {
    alive_.store(alive, std::memory_order_release);
  }

  /// While suppressed, the server's heartbeats never reach the Monitor, so
  /// an adjustment round treats it like a failed MDS and drains it.
  bool heartbeats_suppressed() const noexcept {
    return hb_suppressed_.load(std::memory_order_acquire);
  }
  void set_heartbeats_suppressed(bool suppressed) noexcept {
    hb_suppressed_.store(suppressed, std::memory_order_release);
  }

  /// Reads `target` after checking every ancestor is readable *from this
  /// server* (each must be in the GL replica or owned locally): the
  /// pathname traversal + permission check of Sec. III-A.
  /// kWrongServer = this server cannot see the target (caller forwards).
  MdsOpResult Stat(NodeId target, std::span<const NodeId> ancestors) const;

  /// Mutates a locally-owned record (local-layer update). Global-layer
  /// updates go through the cluster (lock + broadcast), not here.
  MdsOpResult UpdateLocal(NodeId target, std::span<const NodeId> ancestors,
                          std::uint64_t mtime);

  /// Applies one pending-pool pull: inserts `records` into the local
  /// store and remembers `migration_id` as applied. Returns false —
  /// without touching the store — when that id was already applied: the
  /// receiver-side dedup that makes retransmitted pulls (retry/backoff,
  /// or a pull re-issued after a Monitor⇄MDS partition heals) safe.
  bool ApplyPull(std::uint64_t migration_id,
                 const std::vector<InodeRecord>& records);

  /// Bulk variant of ApplyPull: ingests a sealed SSTable file (LSM: file
  /// link-in, O(1) in record count) instead of per-record inserts. Same
  /// migration-id dedup contract. `records_ingested` (optional) reports
  /// how many records the table carried.
  bool ApplyPullTable(std::uint64_t migration_id, const std::string& path,
                      std::size_t* records_ingested = nullptr);

  /// True when `migration_id` has been applied here (dedup probe).
  bool HasAppliedPull(std::uint64_t migration_id) const;

  /// Restores the applied-pull dedup set from a WAL replay (crash
  /// recovery: the ids come from this server's journaled kPullApplied
  /// records, so re-delivered pulls stay deduplicated across restarts).
  void RestoreAppliedPulls(const std::vector<std::uint64_t>& ids);

  /// Volatile-state loss on crash: the GL replica and the in-memory dedup
  /// set always vanish (recovery rebuilds them from donors and the WAL).
  /// With `reopen_durable_local` the local store survives as whatever its
  /// engine made durable — memtable gone, store WAL replayed with
  /// torn-tail truncation, tables intact — exactly a process kill; the
  /// returned info reports that replay. Without it the local store is
  /// cleared too (the memory-backend model: everything was volatile).
  StoreRecoveryInfo LoseVolatileState(bool reopen_durable_local = false);

  /// Operations served (monitoring).
  std::uint64_t ops_served() const noexcept { return ops_.load(); }

 private:
  bool CanRead(NodeId id) const {
    return global_.Contains(id) || local_.Contains(id);
  }
  bool CheckAncestors(std::span<const NodeId> ancestors) const;

  MdsId id_;
  MetadataStore local_;
  MetadataStore global_;
  /// Guards the pull dedup set; rank 35 sits between the cluster's GL
  /// lock (30) and the per-store lock (40): ApplyPull holds it while
  /// inserting into the local store.
  mutable Mutex pulls_mu_ D2T_LOCK_RANK(35);
  std::unordered_set<std::uint64_t> applied_pulls_ D2T_GUARDED_BY(pulls_mu_);
  std::atomic<std::uint64_t> gl_version_{0};
  std::atomic<bool> alive_{true};
  std::atomic<bool> hb_suppressed_{false};
  mutable std::atomic<std::uint64_t> ops_{0};
};

}  // namespace d2tree
