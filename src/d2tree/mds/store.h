// Per-MDS metadata store: the authoritative records a server owns plus its
// replica of the global layer.
//
// Thread-safe (one mutex per store): the functional cluster serves
// concurrent client threads in tests and examples. The store mutex is the
// innermost cluster lock (rank 40): it is taken with the placement-epoch
// and GL locks already held and never the other way around — enforced by
// the annotated wrappers + scripts/check_lock_order.py.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/mds/inode.h"

namespace d2tree {

class MetadataStore {
 public:
  MetadataStore() = default;

  // Movable only (mutex).
  MetadataStore(MetadataStore&&) = delete;
  MetadataStore& operator=(MetadataStore&&) = delete;

  /// Inserts or overwrites a record.
  void Put(const InodeRecord& record);

  /// Record by node id; nullopt if this store does not hold it.
  std::optional<InodeRecord> Get(NodeId id) const;

  bool Contains(NodeId id) const;

  /// Removes a record; returns it if present.
  std::optional<InodeRecord> Remove(NodeId id);

  /// Applies a mutation to a held record: bumps version, stamps mtime.
  /// Returns the new version, or nullopt if not held.
  std::optional<std::uint64_t> Mutate(NodeId id, std::uint64_t mtime);

  /// Extracts all records of a subtree given its member ids (migration
  /// source side); missing ids are skipped.
  std::vector<InodeRecord> ExtractAll(const std::vector<NodeId>& ids);

  /// Bulk insert (migration target side).
  void InsertAll(const std::vector<InodeRecord>& records);

  /// Copy of every held record (replica rebuild source side).
  std::vector<InodeRecord> Snapshot() const;

  /// Drops every record (a crashed server loses its volatile state).
  void Clear();

  std::size_t size() const;

  /// Snapshot of all held ids (audit/consistency checks).
  std::vector<NodeId> HeldIds() const;

 private:
  /// Backing-store lock: innermost in the cluster hierarchy (DESIGN.md
  /// "Lock hierarchy").
  mutable Mutex mu_ D2T_LOCK_RANK(40);
  std::unordered_map<NodeId, InodeRecord> records_ D2T_GUARDED_BY(mu_);
};

}  // namespace d2tree
