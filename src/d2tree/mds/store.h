// Per-MDS metadata store: the authoritative records a server owns plus its
// replica of the global layer.
//
// The store is a thin, mutex-guarded façade over a pluggable StoreEngine
// (storage/store_engine.h): the default in-RAM map, or the embedded LSM
// engine (storage/lsm_engine.h) when the cluster/daemon is configured
// with a data directory. Record semantics are identical across backends —
// pinned by the backend-parameterized property suite.
//
// Thread-safe (one mutex per store): the functional cluster serves
// concurrent client threads in tests and examples. The store mutex is the
// outermost storage lock (rank 40): it is taken with the placement-epoch
// and GL locks already held and never the other way around, and the LSM
// engine's internal locks (ranks 42/43) nest inside it — enforced by the
// annotated wrappers + scripts/check_lock_order.py.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/mds/inode.h"
#include "d2tree/storage/store_engine.h"

namespace d2tree {

class MetadataStore {
 public:
  /// Default: in-memory engine.
  MetadataStore();
  /// Custom backing engine (nullptr falls back to the memory engine).
  explicit MetadataStore(std::unique_ptr<StoreEngine> engine);

  // Neither movable nor copyable: the mutex member already deletes the
  // implicit copy operations, and the moves are deleted explicitly here.
  MetadataStore(MetadataStore&&) = delete;
  MetadataStore& operator=(MetadataStore&&) = delete;

  /// Inserts or overwrites a record.
  void Put(const InodeRecord& record);

  /// Record by node id; nullopt if this store does not hold it.
  std::optional<InodeRecord> Get(NodeId id) const;

  [[nodiscard]] bool Contains(NodeId id) const;

  /// Removes a record; returns it if present.
  std::optional<InodeRecord> Remove(NodeId id);

  /// Applies a mutation to a held record: bumps version, stamps mtime.
  /// Returns the new version, or nullopt if not held.
  std::optional<std::uint64_t> Mutate(NodeId id, std::uint64_t mtime);

  /// Extracts all records of a subtree given its member ids (migration
  /// source side); missing ids are skipped.
  std::vector<InodeRecord> ExtractAll(const std::vector<NodeId>& ids);

  /// Bulk insert (migration target side).
  void InsertAll(const std::vector<InodeRecord>& records);

  /// Copy of every held record (replica rebuild source side), ascending
  /// id order.
  std::vector<InodeRecord> Snapshot() const;

  /// Drops every record (a crashed server loses its volatile state).
  void Clear();

  std::size_t size() const;

  /// Snapshot of all held ids (audit/consistency checks), ascending.
  std::vector<NodeId> HeldIds() const;

  // --- bulk subtree shipping (DESIGN.md §11) -----------------------------

  /// Extracts the given subtree and seals it into one SSTable at `path`
  /// (migration/rename PREPARE). Returns the number of records sealed;
  /// 0 when none of the ids were held or the file could not be written
  /// (in which case nothing is removed).
  std::size_t ExtractToTable(const std::vector<NodeId>& ids,
                             const std::string& path);

  /// Bulk-ingests a sealed table (migration target side). The LSM engine
  /// links the file in — O(1) in record count; the memory engine decodes
  /// it. Returns records ingested. Keys must be disjoint from held ids.
  std::size_t IngestTable(const std::string& path);

  // --- durability / audit hooks ------------------------------------------

  /// Persists buffered engine state (LSM: seals the memtable).
  void Flush();

  /// Drops volatile engine state and re-reads durable state, as after a
  /// process restart (LSM: WAL replay with torn-tail truncation).
  StoreRecoveryInfo Reopen();

  /// Crash injection: tears the engine WAL's tail (no-op for memory).
  void TearWalTail(std::size_t bytes);

  /// Deep on-disk audit of the backing engine; empty = clean.
  std::vector<std::string> AuditStorage() const;

  const char* engine_name() const;
  StoreEngineStats EngineStats() const;

 private:
  /// Backing-store lock: outermost storage lock in the cluster hierarchy
  /// (DESIGN.md "Lock hierarchy"); engine-internal locks nest inside it.
  mutable Mutex mu_ D2T_LOCK_RANK(40);
  std::unique_ptr<StoreEngine> engine_ D2T_GUARDED_BY(mu_);
};

}  // namespace d2tree
