// POSIX-style path helpers shared by the namespace tree and trace parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace d2tree {

/// Splits "/a/b/c" (or "a/b/c") into {"a", "b", "c"}. Empty components from
/// repeated slashes are dropped. "/" yields an empty vector.
std::vector<std::string_view> SplitPath(std::string_view path);

/// Joins components into a canonical absolute path: {"a","b"} -> "/a/b";
/// empty -> "/".
std::string JoinPath(const std::vector<std::string_view>& components);

/// Number of components in the path ("/" -> 0, "/a/b" -> 2).
std::size_t PathDepth(std::string_view path);

/// Parent path of "/a/b/c" -> "/a/b"; parent of "/a" and "/" -> "/".
std::string_view ParentPath(std::string_view path);

/// Final component ("/a/b/c" -> "c", "/" -> "").
std::string_view BaseName(std::string_view path);

/// True if `prefix` is the path itself or one of its ancestors
/// ("/a/b" is a path-prefix of "/a/b/c" but not of "/a/bc").
bool IsPathPrefix(std::string_view prefix, std::string_view path);

}  // namespace d2tree
