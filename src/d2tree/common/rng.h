// Deterministic pseudo-random number generation for simulations and tests.
//
// All stochastic components of the library (trace generators, samplers,
// the cluster simulator) take an explicit Rng so that every experiment is
// reproducible from a seed. The engine is xoshiro256**, seeded via
// SplitMix64, which is fast and has no observable correlation artifacts at
// the scales we use.
#pragma once

#include <cstdint>
#include <limits>

namespace d2tree {

/// Stateless SplitMix64 step; used for seeding and cheap hash mixing.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic random engine.
///
/// Satisfies UniformRandomBitGenerator, so it can be used with <random>
/// distributions, but the convenience members below avoid the per-call
/// distribution-object overhead on hot paths.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5EEDC0DEULL) noexcept { Seed(seed); }

  void Seed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& lane : state_) lane = SplitMix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool NextBool(double p) noexcept { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean) noexcept;

  /// Derives an independent child generator; convenient for giving each
  /// simulated component its own stream.
  Rng Fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace d2tree
