// Exponentially decaying access counters (Sec. IV-B, Dynamic-Adjustment).
//
// "MDS's use access counters whose values decay over time to monitor the
// popularity of internodes and metadata nodes of local layer."
#pragma once

#include <cmath>

namespace d2tree {

/// A counter whose value halves every `half_life` time units. Decay is
/// applied lazily on read/update, so idle counters cost nothing.
class DecayCounter {
 public:
  /// `half_life` must be > 0 (in the same time unit as the `now` arguments).
  explicit DecayCounter(double half_life = 60.0, double now = 0.0) noexcept
      : lambda_(kLn2 / half_life), last_(now) {}

  /// Adds `amount` at time `now` (>= last observed time).
  void Add(double amount, double now) noexcept {
    DecayTo(now);
    value_ += amount;
  }

  /// Current decayed value at time `now`.
  double Value(double now) const noexcept {
    return value_ * std::exp(-lambda_ * (now - last_));
  }

  /// Forces decay bookkeeping up to `now`.
  void DecayTo(double now) noexcept {
    value_ = Value(now);
    last_ = now;
  }

  void Reset(double now) noexcept {
    value_ = 0.0;
    last_ = now;
  }

  double half_life() const noexcept { return kLn2 / lambda_; }

 private:
  static constexpr double kLn2 = 0.6931471805599453;
  double lambda_;
  double last_;
  double value_ = 0.0;
};

}  // namespace d2tree
