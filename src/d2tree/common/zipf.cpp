#include "d2tree/common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace d2tree {

ZipfSampler::ZipfSampler(std::size_t n, double theta) : theta_(theta) {
  assert(n > 0 && "ZipfSampler needs at least one item");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(std::size_t k) const {
  assert(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace d2tree
