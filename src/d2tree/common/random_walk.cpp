#include "d2tree/common/random_walk.h"

#include <cassert>

namespace d2tree {

std::size_t RandomWalkSampler::Step(Rng& rng, std::size_t v) const {
  const std::size_t dv = degree_(v);
  assert(dv >= 1);
  const std::size_t u = neighbor_(v, rng.NextBounded(dv));
  const std::size_t du = degree_(u);
  // Metropolis–Hastings acceptance for a uniform target distribution.
  const double accept = static_cast<double>(dv) / static_cast<double>(du);
  return (accept >= 1.0 || rng.NextDouble() < accept) ? u : v;
}

std::vector<std::size_t> RandomWalkSampler::Sample(Rng& rng, std::size_t count,
                                                   std::size_t burn_in,
                                                   std::size_t thin) const {
  assert(n_ > 0);
  std::vector<std::size_t> out;
  out.reserve(count);
  std::size_t v = rng.NextBounded(n_);
  for (std::size_t i = 0; i < burn_in; ++i) v = Step(rng, v);
  for (std::size_t s = 0; s < count; ++s) {
    for (std::size_t i = 0; i < thin; ++i) v = Step(rng, v);
    out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> UniformIndexSample(Rng& rng, std::size_t n,
                                            std::size_t count) {
  assert(n > 0);
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(rng.NextBounded(n));
  return out;
}

}  // namespace d2tree
