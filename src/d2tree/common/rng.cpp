#include "d2tree/common/rng.h"

#include <cmath>

namespace d2tree {

double Rng::NextExponential(double mean) noexcept {
  // Inverse CDF; clamp away from 0 so log() is finite.
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace d2tree
