// Hashing utilities used by the path index and the hash-based baselines.
#pragma once

#include <cstdint>
#include <string_view>

namespace d2tree {

/// 64-bit FNV-1a over bytes; stable across platforms/runs so hash-based
/// partitioning baselines are deterministic.
constexpr std::uint64_t Fnv1a64(std::string_view data,
                                std::uint64_t seed = 0xCBF29CE484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Mixes two 64-bit hashes (boost::hash_combine flavored for 64 bit).
constexpr std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  a ^= b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4);
  return a;
}

/// Final avalanche mix (from MurmurHash3) for integer keys.
constexpr std::uint64_t MixHash(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace d2tree
