// Random-walk sampling (Sec. IV-B).
//
// "each MDS in our proposal samples a number of subtrees based on a random
// walk, which aims to reduce the cost." We model the pending pool as a
// graph whose vertices are subtrees; a Metropolis–Hastings corrected walk
// over any connected neighbor structure converges to the uniform
// distribution, so the samples feed the DKW machinery of Sec. V.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "d2tree/common/rng.h"

namespace d2tree {

/// Uniform sampling over `n` items via a Metropolis–Hastings random walk on
/// a caller-supplied neighborhood. `degree(v)` must be >= 1 for every
/// vertex and `neighbor(v, i)` returns the i-th neighbor of v
/// (0 <= i < degree(v)). The walk applies the MH acceptance rule
/// min(1, deg(v)/deg(u)) so the stationary distribution is uniform even on
/// irregular graphs.
class RandomWalkSampler {
 public:
  using DegreeFn = std::function<std::size_t(std::size_t)>;
  using NeighborFn = std::function<std::size_t(std::size_t, std::size_t)>;

  RandomWalkSampler(std::size_t vertex_count, DegreeFn degree,
                    NeighborFn neighbor)
      : n_(vertex_count), degree_(std::move(degree)),
        neighbor_(std::move(neighbor)) {}

  /// Draws `count` (approximately independent) uniform vertices, taking
  /// `burn_in` steps before the first sample and `thin` steps between
  /// samples.
  std::vector<std::size_t> Sample(Rng& rng, std::size_t count,
                                  std::size_t burn_in = 32,
                                  std::size_t thin = 4) const;

  std::size_t vertex_count() const noexcept { return n_; }

 private:
  std::size_t Step(Rng& rng, std::size_t v) const;

  std::size_t n_;
  DegreeFn degree_;
  NeighborFn neighbor_;
};

/// Convenience: samples `count` indices uniformly from [0, n) without a
/// graph (used when the pool is directly indexable, the common case for the
/// Monitor's pending pool).
std::vector<std::size_t> UniformIndexSample(Rng& rng, std::size_t n,
                                            std::size_t count);

}  // namespace d2tree
