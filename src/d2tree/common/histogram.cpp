#include "d2tree/common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace d2tree {

EquiDepthHistogram::EquiDepthHistogram(std::span<const double> samples,
                                       std::size_t buckets) {
  assert(!samples.empty());
  assert(buckets >= 1);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  bounds_.reserve(buckets + 1);
  bounds_.push_back(sorted.front());
  for (std::size_t b = 1; b < buckets; ++b) {
    const double q = static_cast<double>(b) / static_cast<double>(buckets);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    bounds_.push_back(sorted[idx]);
  }
  bounds_.push_back(sorted.back());
  // Boundaries must be non-decreasing; ties are fine for Cdf().
}

double EquiDepthHistogram::bucket_mass() const noexcept {
  return 1.0 / static_cast<double>(bounds_.size() - 1);
}

double EquiDepthHistogram::Cdf(double x) const {
  if (x <= bounds_.front()) return 0.0;
  if (x >= bounds_.back()) return 1.0;
  // Find the bucket containing x and interpolate linearly within it.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  const auto hi = static_cast<std::size_t>(it - bounds_.begin());
  const std::size_t lo = hi - 1;
  const double width = bounds_[hi] - bounds_[lo];
  const double frac = width > 0 ? (x - bounds_[lo]) / width : 1.0;
  return (static_cast<double>(lo) + frac) * bucket_mass();
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  assert(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::Value(double z) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), z);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  assert(q > 0.0 && q <= 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

double EmpiricalCdf::KsDistance(const EmpiricalCdf& other) const {
  double sup = 0.0;
  for (const auto& s : sorted_) {
    sup = std::max(sup, std::fabs(Value(s) - other.Value(s)));
  }
  for (const auto& s : other.sorted_) {
    sup = std::max(sup, std::fabs(Value(s) - other.Value(s)));
  }
  return sup;
}

std::vector<double> WeightedQuantileBoundaries(
    std::span<const double> sorted_keys, std::span<const double> weights,
    std::span<const double> capacity_shares) {
  assert(sorted_keys.size() == weights.size());
  assert(!capacity_shares.empty());
  double total = 0.0;
  for (double w : weights) total += w;

  std::vector<double> bounds(capacity_shares.size(), 1.0);
  std::size_t i = 0;
  double acc = 0.0;
  for (std::size_t k = 0; k + 1 < capacity_shares.size(); ++k) {
    const double target = capacity_shares[k] * total;
    // Advance while adding the next item keeps us at/below target, or gets
    // us closer to it than stopping short would.
    while (i < sorted_keys.size() &&
           (acc + weights[i] <= target ||
            (target - acc) > (acc + weights[i] - target))) {
      acc += weights[i];
      ++i;
    }
    if (i == 0) {
      bounds[k] = sorted_keys.empty() ? 0.0 : sorted_keys.front() - 1e-12;
    } else if (i >= sorted_keys.size()) {
      bounds[k] = sorted_keys.back() + 1e-12;
    } else {
      bounds[k] = 0.5 * (sorted_keys[i - 1] + sorted_keys[i]);
    }
  }
  return bounds;
}

std::vector<double> CumulativeShares(std::span<const double> weights) {
  std::vector<double> out;
  out.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) total += w;
  double acc = 0.0;
  for (double w : weights) {
    acc += w;
    out.push_back(total > 0 ? acc / total : 0.0);
  }
  if (!out.empty()) out.back() = 1.0;  // guard rounding
  return out;
}

}  // namespace d2tree
