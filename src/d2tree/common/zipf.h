// Zipf-distributed sampling over ranks 0..n-1.
//
// Realistic metadata workloads are heavily skewed (Sec. I of the paper:
// "realistic workloads of severely skewed access"); we use Zipf(theta)
// popularity when synthesizing traces. Rank 0 is the most popular item.
#pragma once

#include <cstddef>
#include <vector>

#include "d2tree/common/rng.h"

namespace d2tree {

/// Samples ranks from a Zipf distribution with exponent `theta` >= 0 over
/// `n` items via a precomputed inverse CDF (O(log n) per draw).
/// theta == 0 degenerates to the uniform distribution.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);

  /// Draws a rank in [0, n).
  std::size_t Sample(Rng& rng) const;

  /// Probability mass of rank `k`.
  double Pmf(std::size_t k) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double theta() const noexcept { return theta_; }

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1.0
};

}  // namespace d2tree
