// Clang thread-safety-analysis attribute macros (no-ops on GCC/MSVC).
//
// These wrap the capability-based annotations documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so the lock
// discipline of the functional cluster is checked at compile time: a
// Clang build adds -Wthread-safety -Werror=thread-safety (see the
// top-level CMakeLists), so reading a D2T_GUARDED_BY field without its
// mutex, or calling a ...Locked() helper without the D2T_REQUIRES
// capability, fails the build. Other compilers see plain declarations.
//
// The companion lock-order lint (scripts/check_lock_order.py) parses the
// D2T_ACQUIRED_BEFORE edges and D2T_LOCK_RANK declarations out of the
// headers and verifies the global hierarchy forms a DAG — see the "Lock
// hierarchy" section of DESIGN.md for the rank table.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define D2T_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define D2T_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a lockable capability (our Mutex/SharedMutex).
#define D2T_CAPABILITY(x) D2T_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define D2T_SCOPED_CAPABILITY D2T_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define D2T_GUARDED_BY(x) D2T_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define D2T_PT_GUARDED_BY(x) D2T_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares the global acquisition order between two mutexes: this one is
/// always taken before the argument(s). Checked by -Wthread-safety-beta
/// under Clang and cross-checked (as a DAG, against the declared ranks)
/// by scripts/check_lock_order.py on every compiler.
#define D2T_ACQUIRED_BEFORE(...) \
  D2T_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define D2T_ACQUIRED_AFTER(...) \
  D2T_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function requires the capability held exclusively (…Locked() helpers).
#define D2T_REQUIRES(...) \
  D2T_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared.
#define D2T_REQUIRES_SHARED(...) \
  D2T_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and does not
/// release it before returning.
#define D2T_ACQUIRE(...) \
  D2T_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define D2T_ACQUIRE_SHARED(...) \
  D2T_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (generic form releases either mode).
#define D2T_RELEASE(...) \
  D2T_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define D2T_RELEASE_SHARED(...) \
  D2T_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function attempts the capability; acquired iff it returns `result`.
#define D2T_TRY_ACQUIRE(...) \
  D2T_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define D2T_TRY_ACQUIRE_SHARED(...) \
  D2T_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrant entry points).
#define D2T_EXCLUDES(...) D2T_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts the calling thread holds the capability (runtime-checked entry).
#define D2T_ASSERT_CAPABILITY(x) \
  D2T_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the given capability.
#define D2T_RETURN_CAPABILITY(x) D2T_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch — not used anywhere in src/ (the build keeps it that way;
/// grep is part of the lint wall) but provided for test scaffolding.
#define D2T_NO_THREAD_SAFETY_ANALYSIS \
  D2T_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Documentary rank of a mutex member in the global lock hierarchy
/// (smaller rank = acquired first). Expands to nothing for the compiler;
/// scripts/check_lock_order.py requires every d2tree::Mutex/SharedMutex
/// member declaration to carry one and verifies all D2T_ACQUIRED_BEFORE
/// edges run strictly rank-increasing.
#define D2T_LOCK_RANK(n)
