#include "d2tree/common/dkw.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace d2tree {

double DkwTailProbability(std::size_t k, double eps) {
  assert(eps > 0.0);
  return std::min(1.0, 2.0 * std::exp(-2.0 * static_cast<double>(k) * eps * eps));
}

std::size_t DkwSampleCountFor(double eps, double fail_prob) {
  assert(eps > 0.0 && fail_prob > 0.0 && fail_prob < 1.0);
  const double k = std::log(2.0 / fail_prob) / (2.0 * eps * eps);
  return static_cast<std::size_t>(std::ceil(k));
}

std::size_t Lemma1SampleCount(double t, std::size_t subtree_count, double max_pop,
                              double min_pop, double delta) {
  assert(t > 0.0 && delta > 0.0 && max_pop >= min_pop);
  const double h = static_cast<double>(subtree_count);
  const double range = max_pop - min_pop;
  if (range <= 0.0) return 1;  // degenerate distribution: one sample suffices
  const double k = std::log(t * h) / 2.0 * (range / delta) * (range / delta);
  return static_cast<std::size_t>(std::ceil(std::max(1.0, k)));
}

std::size_t Theorem3SampleCount(double t, std::size_t subtree_count,
                                double capacity_share, double max_pop,
                                double min_pop, double delta, double mu,
                                double capacity) {
  assert(t > 0.0 && delta > 0.0 && mu > 0.0 && capacity > 0.0);
  const double h = static_cast<double>(subtree_count);
  const double range = max_pop - min_pop;
  if (range <= 0.0) return 1;
  const double inner = h * capacity_share * range / (delta * mu * capacity);
  const double k = std::log(t * h * h) / 2.0 * inner * inner;
  return static_cast<std::size_t>(std::ceil(std::max(1.0, k)));
}

double Theorem4BalanceBound(std::size_t mds_count, double delta, double mu) {
  assert(mds_count >= 2);
  const double m = static_cast<double>(mds_count);
  return m / (m - 1.0) * delta * delta * mu * mu;
}

}  // namespace d2tree
