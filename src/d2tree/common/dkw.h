// Dvoretzky–Kiefer–Wolfowitz helpers (Sec. V, Thm. 2–4).
//
// The paper bounds the error of allocating subtrees from a *sample* of the
// pending pool instead of the full pool. These helpers compute the sample
// sizes and deviation bounds it derives.
#pragma once

#include <cstddef>

namespace d2tree {

/// DKW tail bound: Pr(sup |F_k - F| > eps) <= 2 exp(-2 k eps^2).
double DkwTailProbability(std::size_t k, double eps);

/// Smallest sample count k such that the DKW bound is <= `fail_prob`.
std::size_t DkwSampleCountFor(double eps, double fail_prob);

/// Lemma 1 sample size: ln(t*H)/2 * ((U-L)/delta)^2 samples give
/// E[|s_i - s_j|] < delta with probability >= 1 - 2/(t*H).
/// H = number of subtrees, [L, U] = popularity range.
std::size_t Lemma1SampleCount(double t, std::size_t subtree_count, double max_pop,
                              double min_pop, double delta);

/// Theorem 3 sample size for MDS k: ln(t*H^2)/2 * (H*p_k*(U-L)/(delta*mu*C_k))^2
/// samples give E[|L_k/C_k - mu|] < delta*mu with probability >= 1 - 2/(t*H).
/// `capacity_share` is p_k = C_k / sum_i C_i, `mu` the ideal load factor and
/// `capacity` is C_k.
std::size_t Theorem3SampleCount(double t, std::size_t subtree_count,
                                double capacity_share, double max_pop,
                                double min_pop, double delta, double mu,
                                double capacity);

/// Theorem 4 bound on E[balance^{-1}]-style deviation:
/// E[ (1/(M-1)) sum (L_k/C_k - mu)^2 ] < M/(M-1) * delta^2 * mu^2.
double Theorem4BalanceBound(std::size_t mds_count, double delta, double mu);

}  // namespace d2tree
