#include "d2tree/common/path_util.h"

namespace d2tree {

std::vector<std::string_view> SplitPath(std::string_view path) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < path.size()) {
    while (start < path.size() && path[start] == '/') ++start;
    std::size_t end = start;
    while (end < path.size() && path[end] != '/') ++end;
    if (end > start) out.push_back(path.substr(start, end - start));
    start = end;
  }
  return out;
}

std::string JoinPath(const std::vector<std::string_view>& components) {
  if (components.empty()) return "/";
  std::string out;
  for (const auto& c : components) {
    out.push_back('/');
    out.append(c);
  }
  return out;
}

std::size_t PathDepth(std::string_view path) { return SplitPath(path).size(); }

std::string_view ParentPath(std::string_view path) {
  while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);
  const auto pos = path.find_last_of('/');
  if (pos == std::string_view::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

std::string_view BaseName(std::string_view path) {
  while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);
  if (path == "/") return "";
  const auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

bool IsPathPrefix(std::string_view prefix, std::string_view path) {
  if (prefix == "/") return true;
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

}  // namespace d2tree
