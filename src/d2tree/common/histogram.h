// Histogram-based probability distributions and empirical CDFs (Def. 6).
//
// The subtree-allocation algorithm (Sec. IV-B) approximates the popularity
// distribution of local-layer subtrees and the remaining-capacity
// distribution of MDSs with histograms / empirical CDFs, then performs
// mirror division between the two curves.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace d2tree {

/// Equi-depth histogram over scalar samples (Def. 6): bucket boundaries
/// x_1 < x_2 < ... < x_k with Pr(x_i <= Z <= x_{i+1}) = delta_x for every
/// bucket.
class EquiDepthHistogram {
 public:
  /// Builds `buckets` equal-probability buckets from `samples`
  /// (need not be sorted). Requires buckets >= 1 and a non-empty sample set.
  EquiDepthHistogram(std::span<const double> samples, std::size_t buckets);

  /// Bucket boundaries; size() == buckets + 1.
  const std::vector<double>& boundaries() const noexcept { return bounds_; }

  /// Per-bucket probability mass (1 / buckets).
  double bucket_mass() const noexcept;

  /// Approximate CDF value at `x` (piecewise-linear inside buckets).
  double Cdf(double x) const;

 private:
  std::vector<double> bounds_;
};

/// Empirical cumulative distribution function F_k(z) = (#samples <= z) / k,
/// the estimator whose error the Dvoretzky–Kiefer–Wolfowitz inequality
/// (Thm. 2) bounds.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(z) = fraction of samples <= z. 0 for z below all samples.
  double Value(double z) const;

  /// Generalized inverse: smallest sample s with F(s) >= q, for q in (0, 1].
  double Quantile(double q) const;

  std::size_t sample_count() const noexcept { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const noexcept {
    return sorted_;
  }

  /// Kolmogorov–Smirnov distance sup_z |F(z) - other(z)| evaluated over the
  /// union of both sample sets (exact for step functions).
  double KsDistance(const EmpiricalCdf& other) const;

 private:
  std::vector<double> sorted_;
};

/// Weighted cumulative share curve over an ordered item sequence: entry i is
/// (sum of weights 0..i) / total. This is the "Pr(X)" staircase of Fig. 4.
std::vector<double> CumulativeShares(std::span<const double> weights);

/// Exact weighted quantile split of a 1-D key space: given items sorted by
/// `sorted_keys` with per-item `weights`, returns one upper boundary per
/// entry of `capacity_shares` (cumulative, last == 1) such that the weight
/// left of boundary k is as close as possible to capacity_shares[k] of the
/// total. Boundaries are midpoints between adjacent keys, so items never
/// sit exactly on a boundary. Used by DROP's HDLB and AngleCut's arc
/// re-cutting at node granularity.
std::vector<double> WeightedQuantileBoundaries(
    std::span<const double> sorted_keys, std::span<const double> weights,
    std::span<const double> capacity_shares);

}  // namespace d2tree
