// Annotated mutex wrappers: std::mutex / std::shared_mutex dressed with
// Clang capability attributes (common/thread_annotations.h) so lock
// discipline is enforced at compile time under -Wthread-safety.
//
// Every lock in the concurrent subsystems (mds/, net/, sim/) is one of
// these types, declared with an explicit D2T_LOCK_RANK and, where two
// locks of one class nest, a D2T_ACQUIRED_BEFORE edge. The global order
// (see DESIGN.md "Lock hierarchy"):
//
//   FaultInjector::mu_ (5) → FunctionalCluster::client_mu_ (10)
//     → FunctionalCluster::topo_mu_ (20) → FunctionalCluster::gl_mu_ (30)
//     → MdsServer::pulls_mu_ (35) → MetadataStore::mu_ (40)
//     → Wal::mu_ (45) → SimNetTransport::links_mu_ (50)
//     → SimNetTransport::log_mu_ (60)
//
// scripts/check_lock_order.py machine-verifies that hierarchy (every
// mutex ranked, every declared edge rank-increasing, the edge graph a
// DAG) on every compiler; Clang additionally rejects unguarded accesses
// and missing D2T_REQUIRES at compile time.
//
// Zero overhead: each wrapper is a single std primitive; every method is
// a one-line inline forward.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "d2tree/common/thread_annotations.h"

namespace d2tree {

/// Exclusive lock (std::mutex) as a Clang capability.
class D2T_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() D2T_ACQUIRE() { mu_.lock(); }
  void Unlock() D2T_RELEASE() { mu_.unlock(); }
  bool TryLock() D2T_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer lock (std::shared_mutex) as a Clang capability.
class D2T_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() D2T_ACQUIRE() { mu_.lock(); }
  void Unlock() D2T_RELEASE() { mu_.unlock(); }
  bool TryLock() D2T_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() D2T_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() D2T_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() D2T_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive hold of a Mutex (std::lock_guard replacement).
class D2T_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) D2T_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() D2T_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// RAII exclusive hold of a SharedMutex (std::unique_lock replacement).
class D2T_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) D2T_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() D2T_RELEASE() { mu_->Unlock(); }

 private:
  SharedMutex* const mu_;
};

/// RAII shared hold of a SharedMutex (std::shared_lock replacement).
class D2T_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) D2T_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() D2T_RELEASE() { mu_->ReaderUnlock(); }

 private:
  SharedMutex* const mu_;
};

}  // namespace d2tree
