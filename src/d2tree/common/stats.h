// Small statistics helpers used throughout metrics, benches and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace d2tree {

/// Welford-style streaming mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// q-th percentile (q in [0,1]) by linear interpolation; copies + sorts.
double Percentile(std::span<const double> values, double q);

/// Coefficient of variation (stddev / mean); 0 if the mean is 0.
double CoefficientOfVariation(std::span<const double> values);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 is perfectly fair.
double JainFairness(std::span<const double> values);

}  // namespace d2tree
