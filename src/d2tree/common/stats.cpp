#include "d2tree/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace d2tree {

void RunningStats::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double Percentile(std::span<const double> values, double q) {
  assert(!values.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double CoefficientOfVariation(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.Add(v);
  return s.mean() != 0.0 ? s.stddev() / s.mean() : 0.0;
}

double JainFairness(std::span<const double> values) {
  assert(!values.empty());
  double sum = 0.0, sq = 0.0;
  for (double v : values) {
    sum += v;
    sq += v * v;
  }
  if (sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sq);
}

}  // namespace d2tree
