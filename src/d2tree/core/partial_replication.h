// Partial global-layer replication (the Sec. VII extension).
//
// "There are several strategies to deal with such scenarios [update-heavy
// workloads at scale], like … setting a threshold to control the number of
// replications of global layer; we will put this in our future work."
//
// This module implements that future work: each global-layer node is
// replicated to `degree` ≤ M servers chosen by rendezvous (highest-random-
// weight) hashing, so replica sets are deterministic, near-uniformly
// spread, and stable under cluster growth (adding a server only steals the
// nodes it now wins). Queries pick one replica; updates lock and broadcast
// to `degree` servers instead of all M — trading balance smoothing for
// update overhead. bench/ablation_replication quantifies the trade.
#pragma once

#include <cstddef>
#include <vector>

#include "d2tree/common/rng.h"
#include "d2tree/core/layers.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

class PartialGlobalLayer {
 public:
  /// Builds replica sets for every node of `layers.global_layer` over
  /// `mds_count` servers. `degree` is clamped to [1, mds_count].
  PartialGlobalLayer(const SplitLayers& layers, std::size_t mds_count,
                     std::size_t degree);

  std::size_t degree() const noexcept { return degree_; }
  std::size_t mds_count() const noexcept { return mds_count_; }

  bool IsGlobal(NodeId id) const {
    return id < is_global_.size() && is_global_[id];
  }

  /// The `degree` servers holding node `id` (sorted). `id` must be a
  /// global-layer node.
  const std::vector<MdsId>& ReplicasOf(NodeId id) const;

  /// A uniformly random replica of `id` (query-side load spreading).
  MdsId PickReplica(NodeId id, Rng& rng) const;

  /// True if MDS `mds` holds a replica of `id`.
  bool Holds(NodeId id, MdsId mds) const;

  /// Total update cost under partial replication: Σ_{GL} u_j · degree/M —
  /// each update touches `degree` replicas instead of all M (Def. 4 scaled
  /// by the replication threshold).
  double UpdateCost(const NamespaceTree& tree) const;

 private:
  std::size_t mds_count_;
  std::size_t degree_;
  std::vector<bool> is_global_;
  // Dense replica table: replicas_[slot(id)] holds `degree` entries.
  std::vector<std::uint32_t> slot_;  // per node; UINT32_MAX if not GL
  std::vector<std::vector<MdsId>> replicas_;
};

}  // namespace d2tree
