#include "d2tree/core/global_layer.h"

#include <cassert>

namespace d2tree {

GlobalLayerManager::GlobalLayerManager(std::size_t mds_count,
                                       GlobalLayerConfig config)
    : config_(config),
      replica_version_(mds_count, 0),
      replica_fresh_at_(mds_count, 0.0) {
  assert(mds_count > 0);
}

std::uint64_t GlobalLayerManager::ApplyUpdate(double now) {
  ++master_version_;
  for (std::size_t k = 0; k < replica_version_.size(); ++k) {
    replica_version_[k] = master_version_;
    // Later of: this propagation, or an in-flight one still landing.
    const double lands = now + config_.propagation_delay;
    if (lands > replica_fresh_at_[k]) replica_fresh_at_[k] = lands;
  }
  return master_version_;
}

bool GlobalLayerManager::ReplicaFresh(MdsId mds, double now) const {
  assert(mds >= 0 && static_cast<std::size_t>(mds) < replica_version_.size());
  return now >= replica_fresh_at_[mds];
}

std::uint64_t GlobalLayerManager::ReplicaVersion(MdsId mds, double now) const {
  assert(mds >= 0 && static_cast<std::size_t>(mds) < replica_version_.size());
  // Before the propagation lands the replica still serves the previous
  // version.
  if (now >= replica_fresh_at_[mds]) return replica_version_[mds];
  return replica_version_[mds] > 0 ? replica_version_[mds] - 1 : 0;
}

std::size_t GlobalLayerManager::StaleReplicaCount(double now) const {
  std::size_t stale = 0;
  for (std::size_t k = 0; k < replica_version_.size(); ++k)
    if (now < replica_fresh_at_[k]) ++stale;
  return stale;
}

}  // namespace d2tree
