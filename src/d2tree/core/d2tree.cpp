#include "d2tree/core/d2tree.h"

#include <cassert>

namespace d2tree {

D2TreeScheme::D2TreeScheme(D2TreeConfig config)
    : config_(std::move(config)), monitor_(config_.monitor) {}

SplitResult D2TreeScheme::RunSplit(const NamespaceTree& tree) const {
  if (config_.explicit_bounds.has_value())
    return SplitTree(tree, *config_.explicit_bounds);
  return SplitTreeToProportion(tree, config_.global_fraction);
}

Assignment D2TreeScheme::BuildAssignment(const NamespaceTree& tree) const {
  Assignment a;  // mds_count is filled in by the caller
  a.owner.assign(tree.size(), kReplicated);
  // Every node starts "replicated"; then each subtree paints its unit.
  for (std::size_t i = 0; i < layers_.subtrees.size(); ++i) {
    const MdsId o = subtree_owner_[i];
    tree.VisitSubtree(layers_.subtrees[i].root,
                      [&](NodeId v) { a.owner[v] = o; });
  }
  return a;
}

std::vector<double> D2TreeScheme::GlobalLayerBaseLoads(
    const NamespaceTree& tree, const MdsCluster& cluster) const {
  // Queries whose target lives in the global layer are served by any
  // *live* replica (Sec. IV-A2), so each serving MDS carries an even
  // share of that routed traffic; failed servers (capacity 0) carry none.
  double gl_load = 0.0;
  for (NodeId id : layers_.global_layer)
    gl_load += tree.node(id).individual_popularity;
  std::size_t serving = 0;
  for (double c : cluster.capacities) serving += c > 0.0;
  std::vector<double> base(cluster.size(), 0.0);
  if (serving == 0) return base;
  const double share = gl_load / static_cast<double>(serving);
  for (std::size_t k = 0; k < cluster.size(); ++k)
    if (cluster.capacities[k] > 0.0) base[k] = share;
  return base;
}

Assignment D2TreeScheme::Partition(const NamespaceTree& tree,
                                   const MdsCluster& cluster) {
  assert(cluster.size() > 0);
  split_ = RunSplit(tree);
  assert(split_.feasible && "Alg. 1 found no feasible global layer");
  layers_ = ExtractLayers(tree, split_.global_layer);

  // Initial allocation: all MDSs are empty, so R_k = C_k (Sec. IV-B).
  subtree_owner_ = AllocateSubtrees(layers_.subtrees, cluster.capacities,
                                    config_.allocation);
  index_ = LocalIndex(layers_, subtree_owner_);

  Assignment a = BuildAssignment(tree);
  a.mds_count = cluster.size();
  return a;
}

RebalanceResult D2TreeScheme::Rebalance(const NamespaceTree& tree,
                                        const MdsCluster& cluster,
                                        const Assignment& current) {
  ++rebalance_calls_;
  const bool need_full_build =
      layers_.in_global.size() != tree.size() ||
      subtree_owner_.size() != layers_.subtrees.size() ||
      (config_.resplit_period > 0 &&
       rebalance_calls_ % config_.resplit_period == 0);
  if (need_full_build) {
    RebalanceResult r;
    r.assignment = Partition(tree, cluster);
    r.moved_nodes = CountMovedNodes(current, r.assignment);
    return r;
  }

  // Refresh subtree popularity from the tree (the MDSs' decayed counters
  // have been folded into the tree by the caller).
  for (Subtree& s : layers_.subtrees)
    s.popularity = tree.node(s.root).subtree_popularity;

  // Heartbeats: every MDS reports its load to the Monitor.
  const auto base = GlobalLayerBaseLoads(tree, cluster);
  {
    std::vector<double> loads = base;
    for (std::size_t i = 0; i < layers_.subtrees.size(); ++i) {
      const MdsId o = subtree_owner_[i];
      if (o >= 0 && static_cast<std::size_t>(o) < loads.size())
        loads[o] += layers_.subtrees[i].popularity;
    }
    double total_load = 0.0;
    for (double l : loads) total_load += l;
    const double mu = total_load / cluster.TotalCapacity();
    for (MdsId k = 0; k < static_cast<MdsId>(cluster.size()); ++k)
      monitor_.ReceiveHeartbeat(
          {k, loads[k], loads[k] - mu * cluster.capacities[k]});
  }

  const auto migrations =
      monitor_.PlanAdjustment(layers_.subtrees, subtree_owner_, base, cluster);

  RebalanceResult r;
  r.moved_nodes = 0;
  for (const Migration& mv : migrations) {
    subtree_owner_[mv.subtree_index] = mv.to;
    r.moved_nodes += layers_.subtrees[mv.subtree_index].node_count;
  }
  index_ = LocalIndex(layers_, subtree_owner_);
  r.assignment = BuildAssignment(tree);
  r.assignment.mds_count = cluster.size();
  return r;
}

void D2TreeScheme::SetSubtreeOwner(std::size_t index, MdsId owner) {
  if (index >= subtree_owner_.size()) return;
  subtree_owner_[index] = owner;
  const Subtree& st = layers_.subtrees[index];
  index_.SetOwner(st.root, st.inter_parent, owner);
}

}  // namespace d2tree
