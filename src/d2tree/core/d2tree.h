// D2TreeScheme — the paper's contribution as a Partitioner (Sec. IV).
//
// Partition() = Tree-Splitting (Alg. 1) + layer extraction + mirror-division
// Subtree-Allocation; Rebalance() = one Dynamic-Adjustment round through the
// Monitor (heartbeats → pending pool → capacity-proportional pulls), plus a
// rare global-layer re-split (ResplitEpoch, the paper runs it "typically
// once a day").
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "d2tree/core/allocator.h"
#include "d2tree/core/layers.h"
#include "d2tree/core/local_index.h"
#include "d2tree/core/monitor.h"
#include "d2tree/core/splitter.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

struct D2TreeConfig {
  /// Target global-layer proportion of the namespace. The paper's default
  /// across Sec. VI is 1%: "We chose proper U0 and L0 to make global layer
  /// account for 1% nodes of the whole namespace tree."
  double global_fraction = 0.01;
  /// If set, split by explicit (L0, U0) bounds instead of the proportion.
  std::optional<SplitConfig> explicit_bounds;
  AllocationConfig allocation;
  MonitorConfig monitor;
  /// Rebalance() re-runs Alg. 1 every this many calls (0 = never); models
  /// the daily global-layer adjustment.
  std::size_t resplit_period = 0;
};

/// Not internally synchronized: Partition/Rebalance mutate the split,
/// owner and index state that the read accessors expose, so concurrent
/// users must serialize externally (FunctionalCluster holds its placement
/// lock exclusively across Rebalance and shared across index reads).
class D2TreeScheme : public Partitioner {
 public:
  explicit D2TreeScheme(D2TreeConfig config = {});

  std::string_view name() const override { return "D2-Tree"; }

  /// Full build: split, extract layers, allocate subtrees against empty
  /// MDSs (R_k = C_k), build the local index.
  Assignment Partition(const NamespaceTree& tree,
                       const MdsCluster& cluster) override;

  /// One dynamic-adjustment round against refreshed popularity on `tree`.
  /// Handles cluster growth (new MDSs pull load) and shrink (subtrees of
  /// departed MDSs land in the pending pool). Falls back to a full
  /// Partition when no prior state exists or the namespace changed shape.
  RebalanceResult Rebalance(const NamespaceTree& tree,
                            const MdsCluster& cluster,
                            const Assignment& current) override;

  /// Split/layer/index state of the latest build (valid after Partition).
  const SplitResult& split() const noexcept { return split_; }
  const SplitLayers& layers() const noexcept { return layers_; }
  const LocalIndex& local_index() const noexcept { return index_; }
  const std::vector<MdsId>& subtree_owners() const noexcept {
    return subtree_owner_;
  }

  /// Forces subtree `index`'s owner to `owner`, updating the local index
  /// in step. Crash recovery uses this to resynchronize the in-memory
  /// planner state with the placement reconstructed from the WAL (a
  /// planned-but-rolled-back migration must not linger in the index).
  void SetSubtreeOwner(std::size_t index, MdsId owner);

  Monitor& monitor() noexcept { return monitor_; }

  const D2TreeConfig& config() const noexcept { return config_; }

 private:
  SplitResult RunSplit(const NamespaceTree& tree) const;
  Assignment BuildAssignment(const NamespaceTree& tree) const;
  /// GL query traffic is served by any replica: each positive-capacity MDS
  /// carries an even share (failed servers, reported with capacity 0,
  /// serve none of it).
  std::vector<double> GlobalLayerBaseLoads(const NamespaceTree& tree,
                                           const MdsCluster& cluster) const;

  D2TreeConfig config_;
  SplitResult split_;
  SplitLayers layers_;
  std::vector<MdsId> subtree_owner_;
  LocalIndex index_;
  Monitor monitor_;
  std::size_t rebalance_calls_ = 0;
};

}  // namespace d2tree
