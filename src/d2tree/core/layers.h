// Layer bookkeeping after Tree-Splitting: inter nodes and local-layer
// subtrees (Sec. IV-A1).
//
// An *inter node* is a global-layer node with at least one child below the
// cut line; each such child roots an indivisible local-layer subtree Δ_i
// whose popularity s_i is the total popularity of its root.
#pragma once

#include <cstddef>
#include <vector>

#include "d2tree/nstree/tree.h"

namespace d2tree {

struct Subtree {
  NodeId root = kInvalidNode;          // first local-layer node of Δ_i
  NodeId inter_parent = kInvalidNode;  // its parent inter node (in GL)
  double popularity = 0.0;             // s_i = p_{root} (Sec. IV-A1)
  std::size_t node_count = 0;          // |Δ_i|
};

struct SplitLayers {
  /// in_global[id] — node is in the replicated global layer.
  std::vector<bool> in_global;
  std::vector<NodeId> global_layer;  // GL node set
  std::vector<NodeId> inter_nodes;   // GL nodes with local-layer children
  std::vector<Subtree> subtrees;     // the H local-layer units, DFS order

  std::size_t subtree_count() const noexcept { return subtrees.size(); }

  /// Min/max subtree popularity (the L and U of Lemma 1); {0,0} if empty.
  std::pair<double, double> PopularityRange() const;
};

/// Derives layers from a global-layer node set (the output of SplitTree).
/// `global_layer` must contain the root and be parent-closed.
SplitLayers ExtractLayers(const NamespaceTree& tree,
                          const std::vector<NodeId>& global_layer);

}  // namespace d2tree
