// Subtree-Allocation: the mirror-division strategy (Sec. IV-B, Fig. 4).
//
// Two cumulative staircases are matched against each other: the subtrees'
// cumulative popularity shares (Pr(X) in Fig. 4) and the MDSs' cumulative
// remaining-capacity shares (Pr(Y)). Subtree Δ_i goes to the MDS whose
// capacity interval contains Δ_i's cumulative index, so every MDS receives
// popularity proportional to its remaining capacity.
//
// The sampled variant is what MDSs actually run at scale (Sec. IV-B,
// Sec. V): each allocation uses the empirical CDF of a uniform random-walk
// sample of the pending pool instead of the full pool; Thms. 2–4 bound the
// resulting load error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "d2tree/common/rng.h"
#include "d2tree/core/layers.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

/// Order in which subtrees are laid along the CDF axis before division.
enum class SubtreeOrder : std::uint8_t {
  /// Descending popularity — the order Fig. 4 depicts.
  kPopularityDesc,
  /// Namespace DFS order — keeps sibling subtrees on the same MDS
  /// (locality-friendlier; compared in bench/ablation_ordering).
  kDfs,
};

struct AllocationConfig {
  SubtreeOrder order = SubtreeOrder::kPopularityDesc;
  /// 0 = exact mirror division over the full pool. Otherwise each
  /// division uses an empirical CDF built from this many uniform samples.
  std::size_t sample_count = 0;
  std::uint64_t seed = 0xA110C;
};

/// Assigns each subtree (index-aligned with `subtrees`) to one MDS.
/// `remaining_capacities` holds R_k >= 0 for every MDS; at least one must
/// be positive.
std::vector<MdsId> AllocateSubtrees(const std::vector<Subtree>& subtrees,
                                    const std::vector<double>& remaining_capacities,
                                    const AllocationConfig& config);

/// Exact mirror division (Fig. 4) over subtrees already laid out in
/// `order`. Exposed for tests and the sampling-error bench.
std::vector<MdsId> MirrorDivisionExact(const std::vector<Subtree>& subtrees,
                                       const std::vector<double>& remaining_capacities,
                                       SubtreeOrder order);

/// Sampled mirror division: popularity cutoffs between MDS bands are
/// estimated from `sample_count` uniform samples of the pool (Eq. 10 with
/// the empirical F̃_Δ of Thm. 2). Falls back to exact when the pool is
/// smaller than the sample budget.
std::vector<MdsId> MirrorDivisionSampled(const std::vector<Subtree>& subtrees,
                                         const std::vector<double>& remaining_capacities,
                                         std::size_t sample_count, Rng& rng);

}  // namespace d2tree
