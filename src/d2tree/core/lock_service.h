// ZooKeeper-style lock service for the global layer (Sec. IV-A3).
//
// "The lock service of Zookeeper is used to keep data consistency over
// global layer. Note that clients require a lock only when they want to
// modify the nodes in global layer." For the discrete-event simulator the
// observable behaviour is serialization: requests acquire in FIFO order and
// hold the lock for the replication round. SerialLock models one lock in
// virtual time; LockTable shards locks per metadata node.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "d2tree/nstree/node.h"

namespace d2tree {

/// A single mutual-exclusion lock in virtual time. Acquire() returns when
/// the caller would be granted the lock; the lock is then held for
/// `hold_time`.
class SerialLock {
 public:
  /// Requests the lock at `now`; returns the grant time (>= now).
  double Acquire(double now, double hold_time) noexcept {
    const double grant = now > free_at_ ? now : free_at_;
    free_at_ = grant + hold_time;
    ++acquisitions_;
    total_wait_ += grant - now;
    return grant;
  }

  double free_at() const noexcept { return free_at_; }
  std::size_t acquisitions() const noexcept { return acquisitions_; }
  double total_wait() const noexcept { return total_wait_; }

  void Reset() noexcept {
    free_at_ = 0.0;
    acquisitions_ = 0;
    total_wait_ = 0.0;
  }

 private:
  double free_at_ = 0.0;
  std::size_t acquisitions_ = 0;
  double total_wait_ = 0.0;
};

/// Per-node lock table: global-layer updates to *different* nodes do not
/// serialize against each other, matching ZooKeeper znode-level locking.
class LockTable {
 public:
  SerialLock& LockFor(NodeId node) { return locks_[node]; }

  std::size_t lock_count() const noexcept { return locks_.size(); }

  /// Aggregate wait time across all locks (contention indicator).
  double TotalWait() const noexcept {
    double w = 0.0;
    for (const auto& [id, lock] : locks_) w += lock.total_wait();
    return w;
  }

  void Reset() { locks_.clear(); }

 private:
  std::unordered_map<NodeId, SerialLock> locks_;
};

}  // namespace d2tree
