#include "d2tree/core/routing.h"

namespace d2tree {

RouteDecision DecideRoute(const NamespaceTree& tree, const LocalIndex& index,
                          NodeId target) {
  return RouteDecision{index.Route(tree, target)};
}

MdsId ChooseEntry(const RouteDecision& route, std::size_t mds_count,
                  double stale_prob, Rng& rng) {
  if (route.gl_resident())
    return static_cast<MdsId>(rng.NextBounded(mds_count));
  if (stale_prob > 0.0 && rng.NextBool(stale_prob))
    return static_cast<MdsId>(rng.NextBounded(mds_count));
  return *route.owner;
}

RenameRoute DecideRenameRoute(const NamespaceTree& tree,
                              const LocalIndex& index, NodeId target) {
  RenameRoute route;
  route.owner = index.Route(tree, target);
  route.subtree_root = index.OwnerOfSubtree(target).has_value();
  return route;
}

}  // namespace d2tree
