// Global-layer replication manager (Sec. IV-A2, IV-A3).
//
// The global layer is replicated to every MDS; consistency uses the version
// number / timeout / lease mechanisms of GFS. This class tracks, in virtual
// time, the master version of the replicated crown, each replica's applied
// version and each client cache's lease, so the simulator (and tests) can
// observe staleness windows and the cost of update propagation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "d2tree/partition/partition.h"

namespace d2tree {

struct GlobalLayerConfig {
  /// One-way propagation delay from the updating MDS/monitor to a replica.
  double propagation_delay = 0.001;
  /// Client cache lease duration; after expiry a client must revalidate.
  double lease_duration = 1.0;
};

class GlobalLayerManager {
 public:
  GlobalLayerManager(std::size_t mds_count, GlobalLayerConfig config = {});

  std::size_t mds_count() const noexcept { return replica_version_.size(); }
  std::uint64_t master_version() const noexcept { return master_version_; }

  /// Applies a global-layer update at `now`: bumps the master version and
  /// schedules every replica to converge at now + propagation_delay.
  /// Returns the new master version.
  std::uint64_t ApplyUpdate(double now);

  /// A replica is fresh when every scheduled propagation has landed.
  bool ReplicaFresh(MdsId mds, double now) const;

  /// Replica's applied version at `now`.
  std::uint64_t ReplicaVersion(MdsId mds, double now) const;

  std::size_t StaleReplicaCount(double now) const;

  /// Grants a client lease at `now`; returns its expiry.
  double GrantLease(double now) const {
    return now + config_.lease_duration;
  }

  /// A client read of the global layer through a lease taken at
  /// `lease_granted_at` is valid at `now` iff the lease has not expired.
  bool LeaseValid(double lease_granted_at, double now) const {
    return now <= lease_granted_at + config_.lease_duration;
  }

  const GlobalLayerConfig& config() const noexcept { return config_; }

 private:
  GlobalLayerConfig config_;
  std::uint64_t master_version_ = 0;
  std::vector<std::uint64_t> replica_version_;
  std::vector<double> replica_fresh_at_;  // virtual time the version lands
};

}  // namespace d2tree
