// Tree-Splitting (Alg. 1): greedy namespace decomposition into the global
// layer (replicated crown) and the local layer (subtrees).
//
// Starting from GL = {root}, the algorithm repeatedly promotes the frontier
// node with the biggest total popularity p_j. Promoting a node improves
// locality (its popularity leaves the local layer, Eq. 7) but spends update
// budget (its u_j joins the replicated set, Def. 4). The loop stops when
// the update budget U0 would be exceeded; the result is valid only if the
// remaining locality cost meets the bound L0.
//
// Note on conventions (DESIGN.md §5): the paper's `locality` is the
// reciprocal of a cost; Alg. 1's `L0` bounds the *cost* Σ_{LL} p_j, and
// that is what `locality_cost_bound` means here.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "d2tree/nstree/tree.h"

namespace d2tree {

struct SplitConfig {
  /// L0: the split is feasible only if Σ_{n_j ∈ LL} p_j ends up <= this.
  double locality_cost_bound = std::numeric_limits<double>::infinity();
  /// U0: promotion stops before Σ_{n_j ∈ GL} u_j reaches this.
  double update_cost_bound = std::numeric_limits<double>::infinity();
  /// Optional extra stop: cap the global layer at this many nodes
  /// (size_t max = no cap). Used to target a GL proportion (Figs. 8–9).
  std::size_t max_global_nodes = std::numeric_limits<std::size_t>::max();
};

struct SplitResult {
  /// Nodes promoted to the global layer, in promotion order; the root is
  /// always first. Empty iff infeasible (Alg. 1 line 11 returns {}).
  std::vector<NodeId> global_layer;
  bool feasible = false;
  /// Final Σ_{LL} p_j (the Ltmp of Alg. 1).
  double locality_cost = 0.0;
  /// Final Σ_{GL} u_j (the Utmp of Alg. 1, counting only promoted nodes).
  double update_cost = 0.0;
};

/// Runs Alg. 1 on `tree` (subtree_popularity must be up to date).
/// The global layer is always a connected crown containing the root.
SplitResult SplitTree(const NamespaceTree& tree, const SplitConfig& config);

/// Fig. 8 helper: promotes greedily until the global layer reaches
/// `fraction` of all nodes (no budget bounds) and reports the implied
/// constraint values — the locality cost (L0) and update cost (U0) that
/// this proportion corresponds to.
SplitResult SplitTreeToProportion(const NamespaceTree& tree, double fraction);

}  // namespace d2tree
