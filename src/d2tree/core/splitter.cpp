#include "d2tree/core/splitter.h"

#include <cassert>
#include <queue>

namespace d2tree {

namespace {

struct FrontierEntry {
  double popularity;
  NodeId node;
  bool operator<(const FrontierEntry& o) const {
    // Max-heap on popularity; break ties on NodeId for determinism.
    if (popularity != o.popularity) return popularity < o.popularity;
    return node > o.node;
  }
};

SplitResult GreedySplit(const NamespaceTree& tree, const SplitConfig& config) {
  SplitResult result;
  result.global_layer.push_back(tree.root());
  result.update_cost = 0.0;  // Alg. 1 starts Utmp at 0 (root is free)

  // Ltmp = Σ p_j over every node initially in the local layer (all but the
  // root). Note Σ_{j≠root} p_j counts each access once per path node — the
  // same weighting Eq. (7) uses.
  double locality_cost = 0.0;
  for (NodeId id = 1; id < tree.size(); ++id)
    locality_cost += tree.node(id).subtree_popularity;

  std::priority_queue<FrontierEntry> frontier;  // S of Alg. 1
  for (NodeId c : tree.node(tree.root()).children)
    frontier.push({tree.node(c).subtree_popularity, c});

  while (!frontier.empty() &&
         result.global_layer.size() < config.max_global_nodes) {
    const FrontierEntry top = frontier.top();
    // Alg. 1 line 5–6: charge the candidate's update cost and stop if the
    // budget would be met or exceeded (the candidate is NOT promoted).
    const double next_update =
        result.update_cost + tree.node(top.node).update_cost;
    if (next_update >= config.update_cost_bound) break;
    frontier.pop();

    result.update_cost = next_update;
    result.global_layer.push_back(top.node);
    locality_cost -= top.popularity;
    for (NodeId c : tree.node(top.node).children)
      frontier.push({tree.node(c).subtree_popularity, c});
  }

  result.locality_cost = locality_cost;
  result.feasible = locality_cost <= config.locality_cost_bound;
  if (!result.feasible) result.global_layer.clear();  // Alg. 1 line 11
  return result;
}

}  // namespace

SplitResult SplitTree(const NamespaceTree& tree, const SplitConfig& config) {
  return GreedySplit(tree, config);
}

SplitResult SplitTreeToProportion(const NamespaceTree& tree, double fraction) {
  assert(fraction > 0.0 && fraction <= 1.0);
  SplitConfig config;
  config.max_global_nodes = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(tree.size())));
  SplitResult r = GreedySplit(tree, config);
  // With no budget bounds the greedy run is always feasible.
  assert(r.feasible);
  return r;
}

}  // namespace d2tree
