// Shared D2-Tree client routing (Sec. IV-A2) — the one place entry/owner
// decisions are derived.
//
// Both consumers of the access logic — the discrete-event route planners
// (sim/route.h) and the live cluster's client-side stub (mds/cluster.h) —
// used to re-implement the same walk over the cached local index. They now
// both consume this helper, so the jump-count semantics the paper proves
// (GL hit anywhere, LL hit at the owner, at most one forward on a stale
// index) cannot drift between the simulated and the functional paths.
#pragma once

#include <cstddef>
#include <optional>

#include "d2tree/common/rng.h"
#include "d2tree/core/local_index.h"

namespace d2tree {

/// Where an access to `target` resolves.
struct RouteDecision {
  /// Owning MDS of the covering subtree; nullopt = the target is
  /// GL-resident, so *any* replica serves it.
  std::optional<MdsId> owner;

  bool gl_resident() const noexcept { return !owner.has_value(); }
};

/// The client-side index walk of Sec. IV-A2: first subtree root on the
/// root→target path wins; no hit means every prefix is replicated.
RouteDecision DecideRoute(const NamespaceTree& tree, const LocalIndex& index,
                          NodeId target);

/// Entry server the client contacts first. GL-resident targets go to a
/// uniformly random replica; local-layer targets go straight to the owner
/// unless the cached index entry is stale (probability `stale_prob`), in
/// which case the client lands on a random server and pays one forward.
/// RNG draw order: one NextBounded for GL, NextBool (+ NextBounded when
/// stale) for LL — stable, so seeded experiments reproduce exactly.
MdsId ChooseEntry(const RouteDecision& route, std::size_t mds_count,
                  double stale_prob, Rng& rng);

/// The parties of a rename transaction (DESIGN.md §8), derived from the
/// same cached local index the access logic walks.
struct RenameRoute {
  /// Owner of the covering local-layer subtree; nullopt = GL-resident,
  /// so the rename must update every replica under the GL write lock.
  std::optional<MdsId> owner;
  /// True when `target` itself roots a registered local-layer subtree —
  /// the unit of distribution, and therefore the only granularity at
  /// which a cross-server re-home (RenameTo) is meaningful.
  bool subtree_root = false;

  bool gl_resident() const noexcept { return !owner.has_value(); }
};

/// Resolves the source side of a rename: the record holder(s) of `target`
/// and whether the node is re-homeable (roots a registered subtree).
RenameRoute DecideRenameRoute(const NamespaceTree& tree,
                              const LocalIndex& index, NodeId target);

}  // namespace d2tree
