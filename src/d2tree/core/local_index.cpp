#include "d2tree/core/local_index.h"

#include <algorithm>
#include <cassert>

namespace d2tree {

LocalIndex::LocalIndex(const SplitLayers& layers,
                       const std::vector<MdsId>& owners) {
  assert(owners.size() == layers.subtrees.size());
  for (std::size_t i = 0; i < layers.subtrees.size(); ++i) {
    const Subtree& s = layers.subtrees[i];
    SetOwner(s.root, s.inter_parent, owners[i]);
  }
}

void LocalIndex::SetOwner(NodeId subtree_root, NodeId inter_parent,
                          MdsId owner) {
  assert(owner >= 0);
  const bool existed = subtree_owner_.contains(subtree_root);
  subtree_owner_[subtree_root] = owner;
  if (!existed) inter_children_[inter_parent].push_back(subtree_root);
}

std::optional<MdsId> LocalIndex::OwnerOfSubtree(NodeId subtree_root) const {
  const auto it = subtree_owner_.find(subtree_root);
  if (it == subtree_owner_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> LocalIndex::SubtreesOf(NodeId id) const {
  const auto it = inter_children_.find(id);
  return it == inter_children_.end() ? std::vector<NodeId>{} : it->second;
}

std::optional<MdsId> LocalIndex::Route(const NamespaceTree& tree,
                                       NodeId target) const {
  // Check the target itself last so ancestors (the subtree root closest to
  // the global layer) win, mirroring the prefix walk of Sec. IV-A2.
  for (NodeId a : tree.AncestorsOf(target)) {
    if (auto owner = OwnerOfSubtree(a)) return owner;
  }
  return OwnerOfSubtree(target);
}

}  // namespace d2tree
