#include "d2tree/core/allocator.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "d2tree/common/hash.h"
#include "d2tree/common/random_walk.h"

namespace d2tree {

namespace {

/// Cumulative capacity shares c_k (the Pr(Y) staircase of Fig. 4).
std::vector<double> CapacityShares(const std::vector<double>& capacities) {
  double total = 0.0;
  for (double c : capacities) {
    assert(c >= 0.0);
    total += c;
  }
  assert(total > 0.0 && "at least one MDS must have remaining capacity");
  std::vector<double> shares(capacities.size());
  double acc = 0.0;
  for (std::size_t k = 0; k < capacities.size(); ++k) {
    acc += capacities[k];
    shares[k] = acc / total;
  }
  shares.back() = 1.0;
  return shares;
}

/// First MDS whose interval (c_{k-1}, c_k] contains `x`, skipping MDSs with
/// zero remaining capacity (their interval is empty).
MdsId MdsForIndex(const std::vector<double>& capacity_shares,
                  const std::vector<double>& capacities, double x) {
  auto it = std::lower_bound(capacity_shares.begin(), capacity_shares.end(), x);
  std::size_t k = it == capacity_shares.end()
                      ? capacity_shares.size() - 1
                      : static_cast<std::size_t>(it - capacity_shares.begin());
  while (k + 1 < capacities.size() && capacities[k] <= 0.0) ++k;
  if (capacities[k] <= 0.0) {
    // x landed past every positive-capacity MDS; walk back to the last one.
    while (k > 0 && capacities[k] <= 0.0) --k;
  }
  return static_cast<MdsId>(k);
}

/// Per-subtree weights for the popularity staircase. A pool of all-zero
/// popularity degenerates to equal weights so division still spreads by
/// count.
std::vector<double> SubtreeWeights(const std::vector<Subtree>& subtrees) {
  std::vector<double> w(subtrees.size());
  double total = 0.0;
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    w[i] = subtrees[i].popularity;
    total += w[i];
  }
  if (total <= 0.0) std::fill(w.begin(), w.end(), 1.0);
  return w;
}

}  // namespace

std::vector<MdsId> MirrorDivisionExact(const std::vector<Subtree>& subtrees,
                                       const std::vector<double>& remaining_capacities,
                                       SubtreeOrder order) {
  std::vector<MdsId> owner(subtrees.size(), 0);
  if (subtrees.empty()) return owner;
  const auto capacity_shares = CapacityShares(remaining_capacities);

  // Lay the subtrees along the CDF axis.
  std::vector<std::size_t> layout(subtrees.size());
  std::iota(layout.begin(), layout.end(), 0);
  if (order == SubtreeOrder::kPopularityDesc) {
    std::stable_sort(layout.begin(), layout.end(),
                     [&](std::size_t a, std::size_t b) {
                       return subtrees[a].popularity > subtrees[b].popularity;
                     });
  }  // kDfs: `subtrees` is already in namespace DFS order (ExtractLayers).

  const auto weights = SubtreeWeights(subtrees);
  double total = 0.0;
  for (std::size_t i : layout) total += weights[i];
  double acc = 0.0;
  for (std::size_t pos = 0; pos < layout.size(); ++pos) {
    const std::size_t i = layout[pos];
    // Use the interval midpoint of Δ_i's own mass as its index: robust to
    // one subtree spanning several MDS intervals.
    const double mid = (acc + weights[i] / 2.0) / total;
    acc += weights[i];
    owner[i] = MdsForIndex(capacity_shares, remaining_capacities, mid);
  }
  return owner;
}

std::vector<MdsId> MirrorDivisionSampled(const std::vector<Subtree>& subtrees,
                                         const std::vector<double>& remaining_capacities,
                                         std::size_t sample_count, Rng& rng) {
  std::vector<MdsId> owner(subtrees.size(), 0);
  if (subtrees.empty()) return owner;
  if (sample_count == 0 || sample_count >= subtrees.size()) {
    return MirrorDivisionExact(subtrees, remaining_capacities,
                               SubtreeOrder::kPopularityDesc);
  }
  const auto capacity_shares = CapacityShares(remaining_capacities);

  // Uniform sample of the pending pool. (The paper mixes a random walk to
  // uniformity — RandomWalkSampler — before sampling; over an indexable
  // pool the stationary draw is exactly a uniform index sample.)
  const auto sample_idx = UniformIndexSample(rng, subtrees.size(), sample_count);
  std::vector<double> sampled_pop;
  sampled_pop.reserve(sample_count);
  for (std::size_t i : sample_idx) sampled_pop.push_back(subtrees[i].popularity);
  std::sort(sampled_pop.begin(), sampled_pop.end(),
            std::greater<double>());  // descending popularity

  // Suffix mass: cum_mass[r] = share of sampled mass in ranks [0, r).
  std::vector<double> cum_mass(sample_count + 1, 0.0);
  for (std::size_t r = 0; r < sample_count; ++r)
    cum_mass[r + 1] = cum_mass[r] + sampled_pop[r];
  const double total_mass = cum_mass.back();

  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    const double s = subtrees[i].popularity;
    double f;
    if (total_mass <= 0.0) {
      // Degenerate pool: spread by hashed position.
      f = static_cast<double>(MixHash(subtrees[i].root)) * 0x1.0p-64;
    } else {
      // F̃(s) = sampled mass strictly hotter than s, plus a deterministic
      // fraction of the mass tied at s (hash tie-break keeps equal-hot
      // subtrees spread instead of stacking on one MDS).
      const auto hotter = static_cast<std::size_t>(
          std::lower_bound(sampled_pop.begin(), sampled_pop.end(), s,
                           std::greater<double>()) -
          sampled_pop.begin());
      auto tie_end = hotter;
      while (tie_end < sample_count && sampled_pop[tie_end] == s) ++tie_end;
      const double tie_mass = cum_mass[tie_end] - cum_mass[hotter];
      const double u = static_cast<double>(MixHash(subtrees[i].root)) * 0x1.0p-64;
      f = (cum_mass[hotter] + tie_mass * u) / total_mass;
      // A subtree hotter than everything sampled maps near 0; one colder
      // maps near 1 — both still land in a valid interval below.
      f = std::clamp(f, 0.0, 1.0);
    }
    owner[i] = MdsForIndex(capacity_shares, remaining_capacities,
                           std::max(f, 1e-12));
  }
  return owner;
}

std::vector<MdsId> AllocateSubtrees(const std::vector<Subtree>& subtrees,
                                    const std::vector<double>& remaining_capacities,
                                    const AllocationConfig& config) {
  if (config.sample_count == 0) {
    return MirrorDivisionExact(subtrees, remaining_capacities, config.order);
  }
  Rng rng(config.seed);
  return MirrorDivisionSampled(subtrees, remaining_capacities,
                               config.sample_count, rng);
}

}  // namespace d2tree
