#include "d2tree/core/layers.h"

#include <algorithm>
#include <cassert>

namespace d2tree {

std::pair<double, double> SplitLayers::PopularityRange() const {
  if (subtrees.empty()) return {0.0, 0.0};
  double lo = subtrees.front().popularity, hi = lo;
  for (const auto& s : subtrees) {
    lo = std::min(lo, s.popularity);
    hi = std::max(hi, s.popularity);
  }
  return {lo, hi};
}

SplitLayers ExtractLayers(const NamespaceTree& tree,
                          const std::vector<NodeId>& global_layer) {
  SplitLayers layers;
  layers.in_global.assign(tree.size(), false);
  layers.global_layer = global_layer;
  for (NodeId id : global_layer) {
    assert(id < tree.size());
    layers.in_global[id] = true;
  }
  assert(!global_layer.empty() && layers.in_global[tree.root()] &&
         "global layer must contain the root");

  // Walk GL nodes in DFS order so subtrees come out in namespace order
  // (needed by the DFS mirror-division policy).
  for (NodeId id : tree.PreorderNodes()) {
    if (!layers.in_global[id]) continue;
    assert((id == tree.root() || layers.in_global[tree.node(id).parent]) &&
           "global layer must be parent-closed");
    bool is_inter = false;
    for (NodeId c : tree.node(id).children) {
      if (layers.in_global[c]) continue;
      is_inter = true;
      Subtree s;
      s.root = c;
      s.inter_parent = id;
      s.popularity = tree.node(c).subtree_popularity;
      s.node_count = tree.SubtreeSize(c);
      layers.subtrees.push_back(s);
    }
    if (is_inter) layers.inter_nodes.push_back(id);
  }
  return layers;
}

}  // namespace d2tree
