#include "d2tree/core/monitor.h"

#include <algorithm>
#include <cassert>

#include "d2tree/core/allocator.h"

namespace d2tree {

Monitor::Monitor(MonitorConfig config)
    : config_(config), rng_(config.seed) {}

void Monitor::ReceiveHeartbeat(const Heartbeat& hb) {
  for (auto& b : beats_) {
    if (b.mds == hb.mds) {
      b = hb;
      return;
    }
  }
  beats_.push_back(hb);
}

std::vector<Migration> Monitor::PlanAdjustment(
    const std::vector<Subtree>& subtrees, const std::vector<MdsId>& owners,
    const std::vector<double>& base_loads, const MdsCluster& cluster) {
  assert(owners.size() == subtrees.size());
  assert(base_loads.size() == cluster.size());
  const auto m = static_cast<MdsId>(cluster.size());

  // Current loads; subtrees owned by departed/unknown MDSs — or by MDSs
  // with zero capacity (failed or heartbeat-silent servers the cluster
  // reports as dead) — go straight to the pending pool.
  std::vector<double> loads = base_loads;
  std::vector<std::vector<std::size_t>> owned(cluster.size());
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < subtrees.size(); ++i) {
    const MdsId o = owners[i];
    if (o < 0 || o >= m || cluster.capacities[o] <= 0.0) {
      pool.push_back(i);
    } else {
      owned[o].push_back(i);
      loads[o] += subtrees[i].popularity;
    }
  }

  double total_load = 0.0;
  for (double l : loads) total_load += l;
  const double total_cap = cluster.TotalCapacity();
  const double mu = total_cap > 0.0 ? total_load / total_cap : 0.0;

  // Heavy MDSs offer subtrees (coldest first, so one migration can't flip
  // the server from heavy to light) until they reach their ideal load.
  for (MdsId k = 0; k < m; ++k) {
    const double ideal = mu * cluster.capacities[k];
    if (loads[k] <= (1.0 + config_.overload_tolerance) * ideal) continue;
    auto& mine = owned[k];
    std::sort(mine.begin(), mine.end(), [&](std::size_t a, std::size_t b) {
      return subtrees[a].popularity > subtrees[b].popularity;
    });
    // One hottest-first pass; skip any victim whose departure would leave
    // the server far *below* ideal (that is how dynamic-subtree thrashing
    // starts, Sec. II).
    for (auto it = mine.begin(); it != mine.end() && loads[k] > ideal;) {
      const double after = loads[k] - subtrees[*it].popularity;
      if (after < ideal * 0.5) {
        ++it;
        continue;
      }
      pool.push_back(*it);
      loads[k] = after;
      it = mine.erase(it);
    }
  }
  last_pool_size_ = pool.size();

  std::vector<Migration> migrations;
  if (pool.empty()) return migrations;

  // Light MDSs pull from the pool proportionally to their remaining
  // deficit, via mirror division over the pooled subtrees (Eq. 10).
  std::vector<double> deficits(cluster.size(), 0.0);
  double total_deficit = 0.0;
  for (MdsId k = 0; k < m; ++k) {
    deficits[k] = std::max(0.0, mu * cluster.capacities[k] - loads[k]);
    total_deficit += deficits[k];
  }
  if (total_deficit <= 0.0) {
    // Everyone is at/above ideal (numerically possible after evictions from
    // departed servers): spread by capacity instead.
    deficits = cluster.capacities;
  }

  std::vector<Subtree> pooled;
  pooled.reserve(pool.size());
  for (std::size_t i : pool) pooled.push_back(subtrees[i]);
  const auto targets =
      config_.sample_count > 0
          ? MirrorDivisionSampled(pooled, deficits, config_.sample_count, rng_)
          : MirrorDivisionExact(pooled, deficits,
                                SubtreeOrder::kPopularityDesc);

  migrations.reserve(pool.size());
  for (std::size_t j = 0; j < pool.size(); ++j) {
    const std::size_t i = pool[j];
    if (owners[i] == targets[j]) continue;  // offered but pulled back home
    migrations.push_back({i, owners[i], targets[j]});
  }
  return migrations;
}

}  // namespace d2tree
