// Local index: inter node → subtree placements (Sec. IV-A1, IV-A2).
//
// "In order to find which MDS an inter node's subtrees lie, we construct a
// local index for all the roots of subtrees to allow a quick search."
// Clients cache this index; the access logic of Sec. IV-A2 walks a query
// path's prefixes through it — a hit routes the query straight to the
// owning MDS, a miss means the target is in the replicated global layer and
// any MDS will do.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "d2tree/core/layers.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

class LocalIndex {
 public:
  LocalIndex() = default;

  /// Builds the index from extracted layers plus the subtree→MDS owners
  /// (index-aligned with layers.subtrees).
  LocalIndex(const SplitLayers& layers, const std::vector<MdsId>& owners);

  /// Registers/updates one subtree placement.
  void SetOwner(NodeId subtree_root, NodeId inter_parent, MdsId owner);

  /// MDS owning the subtree rooted at `subtree_root`; nullopt if that node
  /// does not root a registered subtree.
  std::optional<MdsId> OwnerOfSubtree(NodeId subtree_root) const;

  bool IsInterNode(NodeId id) const { return inter_children_.contains(id); }

  /// Subtree roots hanging below inter node `id` (empty if not inter).
  std::vector<NodeId> SubtreesOf(NodeId id) const;

  /// The access logic of Sec. IV-A2: walks root→target and returns the
  /// owner of the first subtree root found on the path. nullopt = every
  /// prefix is in the global layer, so the target is GL-resident and any
  /// MDS can serve it.
  std::optional<MdsId> Route(const NamespaceTree& tree, NodeId target) const;

  std::size_t subtree_count() const noexcept { return subtree_owner_.size(); }

 private:
  std::unordered_map<NodeId, MdsId> subtree_owner_;
  std::unordered_map<NodeId, std::vector<NodeId>> inter_children_;
};

}  // namespace d2tree
