#include "d2tree/core/partial_replication.h"

#include <algorithm>
#include <cassert>

#include "d2tree/common/hash.h"

namespace d2tree {

PartialGlobalLayer::PartialGlobalLayer(const SplitLayers& layers,
                                       std::size_t mds_count,
                                       std::size_t degree)
    : mds_count_(mds_count),
      degree_(std::clamp<std::size_t>(degree, 1, mds_count)) {
  assert(mds_count > 0);
  is_global_ = layers.in_global;
  slot_.assign(is_global_.size(), UINT32_MAX);
  replicas_.reserve(layers.global_layer.size());

  std::vector<std::pair<std::uint64_t, MdsId>> scores(mds_count);
  for (NodeId id : layers.global_layer) {
    // Rendezvous hashing: MDS k's score for node id; the top-`degree`
    // scorers hold the replica.
    for (std::size_t k = 0; k < mds_count; ++k) {
      scores[k] = {MixHash(HashCombine(MixHash(id) ^ 0x6C0FFEEULL,
                                       static_cast<std::uint64_t>(k))),
                   static_cast<MdsId>(k)};
    }
    std::nth_element(scores.begin(), scores.begin() + (degree_ - 1),
                     scores.end(), std::greater<>());
    std::vector<MdsId> replicas(degree_);
    for (std::size_t r = 0; r < degree_; ++r) replicas[r] = scores[r].second;
    std::sort(replicas.begin(), replicas.end());
    slot_[id] = static_cast<std::uint32_t>(replicas_.size());
    replicas_.push_back(std::move(replicas));
  }
}

const std::vector<MdsId>& PartialGlobalLayer::ReplicasOf(NodeId id) const {
  assert(IsGlobal(id));
  return replicas_[slot_[id]];
}

MdsId PartialGlobalLayer::PickReplica(NodeId id, Rng& rng) const {
  const auto& reps = ReplicasOf(id);
  return reps[rng.NextBounded(reps.size())];
}

bool PartialGlobalLayer::Holds(NodeId id, MdsId mds) const {
  if (!IsGlobal(id)) return false;
  const auto& reps = ReplicasOf(id);
  return std::binary_search(reps.begin(), reps.end(), mds);
}

double PartialGlobalLayer::UpdateCost(const NamespaceTree& tree) const {
  double cost = 0.0;
  for (NodeId id = 0; id < is_global_.size() && id < tree.size(); ++id)
    if (is_global_[id]) cost += tree.node(id).update_cost;
  return cost * static_cast<double>(degree_) /
         static_cast<double>(mds_count_);
}

}  // namespace d2tree
