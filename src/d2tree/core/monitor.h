// The cluster Monitor (Sec. IV-A3, IV-B Dynamic-Adjustment).
//
// D2-Tree deliberately avoids Ceph-style self-organizing MDSs: a single
// Monitor (like Ceph's OSD monitor) accepts heartbeats, keeps a *pending
// pool* of subtrees offered by overloaded servers, and lets lightly loaded
// or newly added servers pull from the pool using the mirror-division rule
// (Eq. 10). It also tracks cluster membership changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "d2tree/common/rng.h"
#include "d2tree/core/layers.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

/// Periodic heartbeat an MDS sends to the Monitor: current load L_k and
/// relative capacity Re_k = L_k − μ·C_k (Sec. III-B).
struct Heartbeat {
  MdsId mds = 0;
  double load = 0.0;
  double relative_capacity = 0.0;
};

/// One planned subtree movement.
struct Migration {
  std::size_t subtree_index = 0;
  MdsId from = kReplicated;  // kReplicated marks "not previously placed"
  MdsId to = 0;
};

struct MonitorConfig {
  /// An MDS is *heavy* when L_k > (1 + overload_tolerance) · μ · C_k and
  /// offloads down to its ideal load; symmetric slack keeps the plan from
  /// thrashing on small fluctuations.
  double overload_tolerance = 0.10;
  /// Sampled mirror division for pulls (0 = exact over the pool).
  std::size_t sample_count = 0;
  std::uint64_t seed = 0x5EED;
};

class Monitor {
 public:
  explicit Monitor(MonitorConfig config = {});

  /// Records the newest heartbeat for `hb.mds` (older ones are replaced).
  void ReceiveHeartbeat(const Heartbeat& hb);
  const std::vector<Heartbeat>& heartbeats() const noexcept { return beats_; }

  /// Plans one dynamic-adjustment round.
  ///
  /// `subtrees`   — the local-layer units with *fresh* popularity
  ///                (decayed counters folded in by the caller);
  /// `owners`     — current owner per subtree; an entry that is out of
  ///                range for `cluster` (removed MDS), negative (unplaced)
  ///                or pointing at a zero-capacity MDS (failed server) is
  ///                treated as already in the pending pool;
  /// `base_loads` — per-MDS load not coming from subtrees (the global
  ///                layer's evenly spread query traffic);
  /// `cluster`    — capacities, possibly larger than before (new MDSs).
  ///
  /// Returns the migrations; `owners` is not modified.
  std::vector<Migration> PlanAdjustment(const std::vector<Subtree>& subtrees,
                                        const std::vector<MdsId>& owners,
                                        const std::vector<double>& base_loads,
                                        const MdsCluster& cluster);

  /// Size of the pending pool at the peak of the last planning round.
  std::size_t last_pool_size() const noexcept { return last_pool_size_; }

 private:
  MonitorConfig config_;
  Rng rng_;
  std::vector<Heartbeat> beats_;
  std::size_t last_pool_size_ = 0;
};

}  // namespace d2tree
