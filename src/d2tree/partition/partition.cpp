#include "d2tree/partition/partition.h"

namespace d2tree {

bool Assignment::Validate(const NamespaceTree& tree,
                          bool require_connected_replicated) const {
  if (owner.size() != tree.size()) return false;
  if (mds_count == 0) return false;
  for (NodeId id = 0; id < owner.size(); ++id) {
    const MdsId o = owner[id];
    if (o != kReplicated &&
        (o < 0 || o >= static_cast<MdsId>(mds_count)))
      return false;
    if (require_connected_replicated && o == kReplicated && id != tree.root()) {
      if (!IsReplicated(tree.node(id).parent)) return false;
    }
  }
  if (require_connected_replicated && !IsReplicated(tree.root())) return false;
  return true;
}

std::size_t CountMovedNodes(const Assignment& before, const Assignment& after) {
  std::size_t moved = 0;
  const std::size_t n = std::min(before.owner.size(), after.owner.size());
  for (std::size_t i = 0; i < n; ++i)
    if (before.owner[i] != after.owner[i]) ++moved;
  // Nodes present only in `after` (namespace growth) count as placements,
  // not moves.
  return moved;
}

RebalanceResult Partitioner::Rebalance(const NamespaceTree& tree,
                                       const MdsCluster& cluster,
                                       const Assignment& current) {
  RebalanceResult r;
  r.assignment = Partition(tree, cluster);
  r.moved_nodes = CountMovedNodes(current, r.assignment);
  return r;
}

}  // namespace d2tree
