// Partitioner interface shared by D2-Tree and all baselines (Sec. III-B).
//
// A partition maps every metadata node either to exactly one MDS or to the
// replicated set (D2-Tree's global layer lives on every MDS). All schemes —
// D2-Tree, static/dynamic subtree, pure hashing, DROP, AngleCut — produce
// an Assignment, so metrics and the cluster simulator are scheme-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "d2tree/nstree/tree.h"

namespace d2tree {

using MdsId = std::int32_t;
/// Owner value of a node replicated to every MDS (the global layer).
inline constexpr MdsId kReplicated = -1;

/// The MDS cluster as the partitioners see it: per-server capacity C_k
/// (Sec. III-B), i.e. the throughput limit of that server.
struct MdsCluster {
  std::vector<double> capacities;

  std::size_t size() const noexcept { return capacities.size(); }
  double TotalCapacity() const noexcept {
    double t = 0.0;
    for (double c : capacities) t += c;
    return t;
  }

  static MdsCluster Homogeneous(std::size_t count, double capacity = 1.0) {
    return MdsCluster{std::vector<double>(count, capacity)};
  }
};

/// A weighted M-partition of the N metadata nodes (plus replication).
struct Assignment {
  std::vector<MdsId> owner;  // indexed by NodeId; kReplicated or [0, M)
  std::size_t mds_count = 0;

  bool IsReplicated(NodeId id) const { return owner[id] == kReplicated; }
  MdsId OwnerOf(NodeId id) const { return owner[id]; }

  std::size_t ReplicatedCount() const {
    std::size_t n = 0;
    for (MdsId o : owner)
      if (o == kReplicated) ++n;
    return n;
  }

  /// Checks structural validity against `tree`: one entry per node, owners
  /// in range, and — when `require_connected_replicated` — the replicated
  /// set forms a crown containing the root (every replicated node's parent
  /// is replicated), which D2-Tree's split guarantees.
  bool Validate(const NamespaceTree& tree,
                bool require_connected_replicated = false) const;
};

/// Outcome of a dynamic rebalance round.
struct RebalanceResult {
  Assignment assignment;
  /// Nodes whose owner changed (movement cost proxy, Sec. III-C).
  std::size_t moved_nodes = 0;
};

/// Counts nodes whose owner differs between two assignments over the same
/// tree (replication changes count as moves too).
std::size_t CountMovedNodes(const Assignment& before, const Assignment& after);

/// Common interface of all metadata partitioning schemes.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual std::string_view name() const = 0;

  /// Produces an initial assignment from the popularity currently charged
  /// on `tree` (subtree_popularity must be up to date).
  virtual Assignment Partition(const NamespaceTree& tree,
                               const MdsCluster& cluster) = 0;

  /// One dynamic-adjustment round: given refreshed popularity on `tree` and
  /// the `current` placement, return an updated placement. The default
  /// re-runs Partition from scratch (what the static schemes conceptually
  /// do — they just never move anything because placement ignores load).
  virtual RebalanceResult Rebalance(const NamespaceTree& tree,
                                    const MdsCluster& cluster,
                                    const Assignment& current);
};

}  // namespace d2tree
