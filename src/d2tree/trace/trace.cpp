#include "d2tree/trace/trace.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace d2tree {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kRead:
      return "read";
    case OpType::kWrite:
      return "write";
    case OpType::kUpdate:
      return "update";
  }
  return "?";
}

std::array<double, kOpTypeCount> Trace::OpBreakdown() const {
  std::array<double, kOpTypeCount> counts{};
  for (const auto& r : records_) counts[static_cast<std::size_t>(r.op)] += 1.0;
  if (!records_.empty())
    for (auto& c : counts) c /= static_cast<double>(records_.size());
  return counts;
}

void Trace::ChargePopularity(NamespaceTree& tree) const {
  for (const auto& r : records_) tree.AddAccess(r.node);
  tree.RecomputeSubtreePopularity();
}

void Trace::Save(std::ostream& os) const {
  os << "d2tree-trace v1 " << records_.size() << "\n";
  for (const auto& r : records_)
    os << static_cast<int>(r.op) << ' ' << r.node << "\n";
}

Trace Trace::Load(std::istream& is) {
  std::string magic, version;
  std::size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != "d2tree-trace" ||
      version != "v1")
    throw std::runtime_error("bad trace header");
  std::vector<TraceRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    int op = 0;
    NodeId node = 0;
    if (!(is >> op >> node)) throw std::runtime_error("truncated trace");
    if (op < 0 || op >= static_cast<int>(kOpTypeCount))
      throw std::runtime_error("bad op type in trace");
    records.push_back({static_cast<OpType>(op), node});
  }
  return Trace(std::move(records));
}

}  // namespace d2tree
