// Synthetic equivalents of the paper's three Microsoft traces.
//
// Substitution (see DESIGN.md §3): the SNIA originals (Development Tools
// Release, Live Maps Back End, Radius Authentication) are not
// redistributable, so each profile regenerates a namespace + trace whose
// observable statistics match what the paper reports:
//   * Table I  — relative record counts and maximum path depth (49 / 9 / 13);
//   * Table II — read/write/update mix;
//   * Sec. VI-A — how much traffic lands in a 1%-sized global layer
//     (DTR ≈ 83% GL, LMBE ≈ 58.6% LL, RA updates 67% GL-directed).
#pragma once

#include <cstdint>
#include <string>

#include "d2tree/nstree/builder.h"
#include "d2tree/trace/trace.h"

namespace d2tree {

/// Everything needed to regenerate one dataset.
struct TraceProfile {
  std::string name;
  std::string description;
  SyntheticTreeConfig tree;
  std::size_t record_count = 100'000;

  // Operation mix (must sum to ~1).
  double read_frac = 0.7;
  double write_frac = 0.25;
  double update_frac = 0.05;

  // Access skew: a crown/tail mixture. The *crown* is the hottest
  // `crown_fraction` of the namespace in shallow-first (BFS) order — the
  // nodes the greedy split promotes into the global layer. Each query
  // targets the crown with probability `crown_hit` (per op class, matching
  // the GL-hit statistics of Sec. VI-A) and the tail otherwise; within
  // each region ranks follow Zipf(theta). Crown theta is kept small so no
  // single node becomes an unsplittable hotspot (real hot *files* spread
  // across hot directories).
  double crown_fraction = 0.01;
  double query_crown_hit = 0.5;   // reads and writes
  double update_crown_hit = 0.5;  // updates (RA's skew even higher)
  double crown_theta = 0.35;
  double tail_theta = 0.8;

  std::uint64_t seed = 1;
};

/// Development Tools Release: deep tree (max depth 49), read-mostly,
/// heavily skewed toward the upper namespace (~83% of queries hit a 1% GL).
TraceProfile DtrProfile(double scale = 1.0);

/// Live Maps Back End: shallow wide tree (max depth 9), read-mostly with
/// almost no updates, flatter skew (~58.6% of queries hit the local layer).
TraceProfile LmbeProfile(double scale = 1.0);

/// Radius Authentication: mid-depth tree (max depth 13), update-heavy
/// (16.1% updates, ~67% of them aimed at the global layer).
TraceProfile RaProfile(double scale = 1.0);

/// A generated dataset: the namespace plus its operation trace, with
/// popularity already charged onto the tree.
struct Workload {
  std::string name;
  NamespaceTree tree;
  Trace trace;
};

/// Generates namespace + trace from a profile. Deterministic in
/// profile.seed.
Workload GenerateWorkload(const TraceProfile& profile);

}  // namespace d2tree
