// Metadata operation traces (Sec. VI "Datasets").
//
// The paper filters three Microsoft server traces down to metadata
// operations (read / write / update, Table II). A Trace is the resolved
// form: every record targets a NodeId in an accompanying NamespaceTree.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "d2tree/nstree/tree.h"

namespace d2tree {

/// Metadata operation classes after the paper's filtering. Read and write
/// are pure queries against the MDS; update mutates metadata (and therefore
/// needs the global-layer lock when the target is replicated).
enum class OpType : std::uint8_t { kRead = 0, kWrite = 1, kUpdate = 2 };
inline constexpr std::size_t kOpTypeCount = 3;

const char* OpTypeName(OpType op);

struct TraceRecord {
  OpType op;
  NodeId node;
};

/// A replayable sequence of metadata operations.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  const std::vector<TraceRecord>& records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  void Append(TraceRecord r) { records_.push_back(r); }

  /// Fraction of records per op type (the Table II row).
  std::array<double, kOpTypeCount> OpBreakdown() const;

  /// Adds every record as one access to its target node (bumps p'_j), then
  /// recomputes the aggregates. This is how popularity is charged before
  /// partitioning.
  void ChargePopularity(NamespaceTree& tree) const;

  /// Line-oriented text persistence ("<op> <node-id>" per record).
  void Save(std::ostream& os) const;
  static Trace Load(std::istream& is);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace d2tree
