#include "d2tree/trace/profiles.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "d2tree/common/zipf.h"

namespace d2tree {

namespace {

/// Nodes ordered shallow-first (BFS). Rank 0 == root; early ranks are the
/// upper namespace that the greedy split promotes to the global layer.
std::vector<NodeId> BfsOrder(const NamespaceTree& tree) {
  std::vector<NodeId> order;
  order.reserve(tree.size());
  std::queue<NodeId> q;
  q.push(tree.root());
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    order.push_back(v);
    for (NodeId c : tree.node(v).children) q.push(c);
  }
  return order;
}

}  // namespace

TraceProfile DtrProfile(double scale) {
  TraceProfile p;
  p.name = "DTR";
  p.description = "Development Tools Release (synthetic equivalent)";
  p.tree.node_count = static_cast<std::size_t>(60'000 * scale);
  p.tree.max_depth = 49;
  p.tree.dir_ratio = 0.30;
  p.tree.depth_bias = 0.55;  // deep, chain-heavy hierarchy
  p.tree.root_fanout = 96;   // many release trees at the top level
  p.record_count = static_cast<std::size_t>(140'000 * scale);
  p.read_frac = 0.67743;
  p.write_frac = 0.26137;
  p.update_frac = 0.06119;
  p.query_crown_hit = 0.915;  // calibrated: measured GL-hit of a 1% split
  p.update_crown_hit = 0.915;  // lands at the paper's 83.06% (Sec. VI-A)
  p.seed = 0xD7121;
  return p;
}

TraceProfile LmbeProfile(double scale) {
  TraceProfile p;
  p.name = "LMBE";
  p.description = "Live Maps Back End (synthetic equivalent)";
  p.tree.node_count = static_cast<std::size_t>(120'000 * scale);
  p.tree.max_depth = 9;
  p.tree.dir_ratio = 0.20;
  p.tree.depth_bias = 0.05;  // wide and shallow
  p.tree.root_fanout = 160;
  p.record_count = static_cast<std::size_t>(360'000 * scale);
  p.read_frac = 0.78877;
  p.write_frac = 0.21108;
  p.update_frac = 0.00015;
  p.query_crown_hit = 0.49;   // calibrated so a 1% split serves ~41.4%
  p.update_crown_hit = 0.49;   // of queries ("58.57% … local layer")
  p.tail_theta = 0.65;        // flat map-tile accesses
  p.seed = 0x13BE;
  return p;
}

TraceProfile RaProfile(double scale) {
  TraceProfile p;
  p.name = "RA";
  p.description = "Radius Authentication (synthetic equivalent)";
  p.tree.node_count = static_cast<std::size_t>(160'000 * scale);
  p.tree.max_depth = 13;
  p.tree.dir_ratio = 0.22;
  p.tree.depth_bias = 0.25;
  p.tree.root_fanout = 96;
  p.record_count = static_cast<std::size_t>(1'000'000 * scale);
  p.read_frac = 0.47734;
  p.write_frac = 0.36174;
  p.update_frac = 0.16102;   // update-heavy (Table II)
  p.query_crown_hit = 0.52;
  p.update_crown_hit = 0.80;  // calibrated: ~67% of updates hit the GL
  p.seed = 0x4ADA;
  return p;
}

Workload GenerateWorkload(const TraceProfile& profile) {
  assert(std::fabs(profile.read_frac + profile.write_frac +
                   profile.update_frac - 1.0) < 1e-6);
  Rng rng(profile.seed);
  Workload w;
  w.name = profile.name;
  w.tree = BuildSyntheticTree(profile.tree, rng);

  const std::vector<NodeId> ranked = BfsOrder(w.tree);
  const auto crown_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(profile.crown_fraction *
                                  static_cast<double>(ranked.size())));
  const std::size_t tail_size = ranked.size() - crown_size;
  const ZipfSampler crown_zipf(crown_size, profile.crown_theta);
  const ZipfSampler tail_zipf(std::max<std::size_t>(1, tail_size),
                              profile.tail_theta);

  std::vector<TraceRecord> records;
  records.reserve(profile.record_count);
  for (std::size_t i = 0; i < profile.record_count; ++i) {
    const double u = rng.NextDouble();
    OpType op;
    if (u < profile.read_frac) {
      op = OpType::kRead;
    } else if (u < profile.read_frac + profile.write_frac) {
      op = OpType::kWrite;
    } else {
      op = OpType::kUpdate;
    }
    const double crown_hit = op == OpType::kUpdate ? profile.update_crown_hit
                                                   : profile.query_crown_hit;
    std::size_t rank;
    if (tail_size == 0 || rng.NextBool(crown_hit)) {
      rank = crown_zipf.Sample(rng);
    } else {
      rank = crown_size + tail_zipf.Sample(rng);
    }
    records.push_back({op, ranked[rank]});
  }
  w.trace = Trace(std::move(records));
  w.trace.ChargePopularity(w.tree);
  return w;
}

}  // namespace d2tree
