#include "d2tree/metrics/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace d2tree {

const char* OpClassName(OpClass c) {
  switch (c) {
    case OpClass::kGlHit:
      return "GL hit";
    case OpClass::kLl0Jump:
      return "LL 0-jump";
    case OpClass::kLl1Jump:
      return "LL 1-jump";
    case OpClass::kFailover:
      return "failover";
  }
  return "?";
}

std::size_t LatencyHistogram::BucketOf(double micros) noexcept {
  if (micros < 1.0) return 0;
  const int exp = std::ilogb(micros);  // floor(log2) for micros >= 1
  return std::min<std::size_t>(static_cast<std::size_t>(exp) + 1, kBuckets - 1);
}

void LatencyHistogram::Record(double micros) noexcept {
  micros = std::max(micros, 0.0);
  ++buckets_[BucketOf(micros)];
  ++count_;
  sum_ += micros;
  max_ = std::max(max_, micros);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::Quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
    const double hi = std::ldexp(1.0, static_cast<int>(i));
    seen += buckets_[i];
    if (static_cast<double>(seen) >= rank) {
      const double into =
          1.0 - (static_cast<double>(seen) - rank) /
                    static_cast<double>(buckets_[i]);
      return lo + into * (hi - lo);
    }
  }
  return max_;
}

std::size_t JumpsFor(const NamespaceTree& tree, const Assignment& assignment,
                     NodeId target) {
  // Walk root → target. Replicated nodes in the *middle* of a pinned walk
  // are transparent (the serving MDS holds a copy), but a path that starts
  // in the replicated crown is served by a random replica, so descending to
  // the first owned node costs one hop — this is what gives every
  // local-layer node jp_j = 1 in Eq. (7). The initial contact with the
  // first MDS of a non-replicated path is free (it is the request itself).
  enum : MdsId { kUnpinned = -2, kAnyReplica = -3 };
  std::size_t jumps = 0;
  MdsId current = kUnpinned;
  const auto step = [&](NodeId v) {
    const MdsId o = assignment.OwnerOf(v);
    if (o == kReplicated) {
      if (current == kUnpinned) current = kAnyReplica;
      return;  // transparent otherwise
    }
    if (current == kAnyReplica || (current != kUnpinned && current != o))
      ++jumps;
    current = o;
  };
  for (NodeId a : tree.AncestorsOf(target)) step(a);
  step(target);
  return jumps;
}

LocalityReport ComputeLocality(const NamespaceTree& tree,
                               const Assignment& assignment) {
  assert(assignment.owner.size() == tree.size());
  LocalityReport report;
  for (NodeId id = 0; id < tree.size(); ++id) {
    const double p = tree.node(id).subtree_popularity;
    if (p <= 0.0) continue;
    const std::size_t jp = JumpsFor(tree, assignment, id);
    if (jp > 0) report.cost += static_cast<double>(jp) * p;
  }
  report.locality = report.cost > 0.0
                        ? 1.0 / report.cost
                        : std::numeric_limits<double>::infinity();
  return report;
}

namespace {

std::vector<double> LoadsImpl(const NamespaceTree& tree,
                              const Assignment& assignment,
                              bool traversal_weighted) {
  assert(assignment.mds_count > 0);
  std::vector<double> loads(assignment.mds_count, 0.0);
  const double m = static_cast<double>(assignment.mds_count);
  for (NodeId id = 0; id < tree.size(); ++id) {
    const MetaNode& n = tree.node(id);
    const double p =
        traversal_weighted ? n.subtree_popularity : n.individual_popularity;
    if (p <= 0.0) continue;
    const MdsId o = assignment.OwnerOf(id);
    if (o == kReplicated) {
      const double share = p / m;
      for (auto& l : loads) l += share;
    } else {
      loads[o] += p;
    }
  }
  return loads;
}

}  // namespace

std::vector<double> ComputeLoads(const NamespaceTree& tree,
                                 const Assignment& assignment) {
  return LoadsImpl(tree, assignment, /*traversal_weighted=*/false);
}

std::vector<double> ComputeTraversalLoads(const NamespaceTree& tree,
                                          const Assignment& assignment) {
  return LoadsImpl(tree, assignment, /*traversal_weighted=*/true);
}

BalanceReport ComputeBalanceFromLoads(const std::vector<double>& loads,
                                      const MdsCluster& cluster) {
  assert(loads.size() == cluster.size());
  assert(loads.size() >= 2 && "balance degree needs M >= 2 (Eq. 2)");
  BalanceReport report;
  report.loads = loads;
  double total_load = 0.0;
  for (double l : loads) total_load += l;
  const double total_cap = cluster.TotalCapacity();
  report.mu = total_cap > 0.0 ? total_load / total_cap : 0.0;

  report.relative.resize(loads.size());
  double sum_sq = 0.0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    const double ck = cluster.capacities[k];
    report.relative[k] = loads[k] - report.mu * ck;
    const double dev = loads[k] / ck - report.mu;
    sum_sq += dev * dev;
  }
  report.variance_term = sum_sq / static_cast<double>(loads.size() - 1);
  report.balance = report.variance_term > 0.0
                       ? 1.0 / report.variance_term
                       : std::numeric_limits<double>::infinity();
  return report;
}

BalanceReport ComputeBalance(const NamespaceTree& tree,
                             const Assignment& assignment,
                             const MdsCluster& cluster) {
  return ComputeBalanceFromLoads(ComputeLoads(tree, assignment), cluster);
}

double ComputeUpdateCost(const NamespaceTree& tree,
                         const Assignment& assignment) {
  double cost = 0.0;
  for (NodeId id = 0; id < tree.size(); ++id)
    if (assignment.IsReplicated(id)) cost += tree.node(id).update_cost;
  return cost;
}

double ReplicatedHitFraction(const NamespaceTree& tree,
                             const Assignment& assignment) {
  double total = 0.0, replicated = 0.0;
  for (NodeId id = 0; id < tree.size(); ++id) {
    const double p = tree.node(id).individual_popularity;
    total += p;
    if (assignment.IsReplicated(id)) replicated += p;
  }
  return total > 0.0 ? replicated / total : 0.0;
}

}  // namespace d2tree
