#include "d2tree/metrics/metrics.h"

#include <cassert>
#include <limits>

namespace d2tree {

std::size_t JumpsFor(const NamespaceTree& tree, const Assignment& assignment,
                     NodeId target) {
  // Walk root → target. Replicated nodes in the *middle* of a pinned walk
  // are transparent (the serving MDS holds a copy), but a path that starts
  // in the replicated crown is served by a random replica, so descending to
  // the first owned node costs one hop — this is what gives every
  // local-layer node jp_j = 1 in Eq. (7). The initial contact with the
  // first MDS of a non-replicated path is free (it is the request itself).
  enum : MdsId { kUnpinned = -2, kAnyReplica = -3 };
  std::size_t jumps = 0;
  MdsId current = kUnpinned;
  const auto step = [&](NodeId v) {
    const MdsId o = assignment.OwnerOf(v);
    if (o == kReplicated) {
      if (current == kUnpinned) current = kAnyReplica;
      return;  // transparent otherwise
    }
    if (current == kAnyReplica || (current != kUnpinned && current != o))
      ++jumps;
    current = o;
  };
  for (NodeId a : tree.AncestorsOf(target)) step(a);
  step(target);
  return jumps;
}

LocalityReport ComputeLocality(const NamespaceTree& tree,
                               const Assignment& assignment) {
  assert(assignment.owner.size() == tree.size());
  LocalityReport report;
  for (NodeId id = 0; id < tree.size(); ++id) {
    const double p = tree.node(id).subtree_popularity;
    if (p <= 0.0) continue;
    const std::size_t jp = JumpsFor(tree, assignment, id);
    if (jp > 0) report.cost += static_cast<double>(jp) * p;
  }
  report.locality = report.cost > 0.0
                        ? 1.0 / report.cost
                        : std::numeric_limits<double>::infinity();
  return report;
}

namespace {

std::vector<double> LoadsImpl(const NamespaceTree& tree,
                              const Assignment& assignment,
                              bool traversal_weighted) {
  assert(assignment.mds_count > 0);
  std::vector<double> loads(assignment.mds_count, 0.0);
  const double m = static_cast<double>(assignment.mds_count);
  for (NodeId id = 0; id < tree.size(); ++id) {
    const MetaNode& n = tree.node(id);
    const double p =
        traversal_weighted ? n.subtree_popularity : n.individual_popularity;
    if (p <= 0.0) continue;
    const MdsId o = assignment.OwnerOf(id);
    if (o == kReplicated) {
      const double share = p / m;
      for (auto& l : loads) l += share;
    } else {
      loads[o] += p;
    }
  }
  return loads;
}

}  // namespace

std::vector<double> ComputeLoads(const NamespaceTree& tree,
                                 const Assignment& assignment) {
  return LoadsImpl(tree, assignment, /*traversal_weighted=*/false);
}

std::vector<double> ComputeTraversalLoads(const NamespaceTree& tree,
                                          const Assignment& assignment) {
  return LoadsImpl(tree, assignment, /*traversal_weighted=*/true);
}

BalanceReport ComputeBalanceFromLoads(const std::vector<double>& loads,
                                      const MdsCluster& cluster) {
  assert(loads.size() == cluster.size());
  assert(loads.size() >= 2 && "balance degree needs M >= 2 (Eq. 2)");
  BalanceReport report;
  report.loads = loads;
  double total_load = 0.0;
  for (double l : loads) total_load += l;
  const double total_cap = cluster.TotalCapacity();
  report.mu = total_cap > 0.0 ? total_load / total_cap : 0.0;

  report.relative.resize(loads.size());
  double sum_sq = 0.0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    const double ck = cluster.capacities[k];
    report.relative[k] = loads[k] - report.mu * ck;
    const double dev = loads[k] / ck - report.mu;
    sum_sq += dev * dev;
  }
  report.variance_term = sum_sq / static_cast<double>(loads.size() - 1);
  report.balance = report.variance_term > 0.0
                       ? 1.0 / report.variance_term
                       : std::numeric_limits<double>::infinity();
  return report;
}

BalanceReport ComputeBalance(const NamespaceTree& tree,
                             const Assignment& assignment,
                             const MdsCluster& cluster) {
  return ComputeBalanceFromLoads(ComputeLoads(tree, assignment), cluster);
}

double ComputeUpdateCost(const NamespaceTree& tree,
                         const Assignment& assignment) {
  double cost = 0.0;
  for (NodeId id = 0; id < tree.size(); ++id)
    if (assignment.IsReplicated(id)) cost += tree.node(id).update_cost;
  return cost;
}

double ReplicatedHitFraction(const NamespaceTree& tree,
                             const Assignment& assignment) {
  double total = 0.0, replicated = 0.0;
  for (NodeId id = 0; id < tree.size(); ++id) {
    const double p = tree.node(id).individual_popularity;
    total += p;
    if (assignment.IsReplicated(id)) replicated += p;
  }
  return total > 0.0 ? replicated / total : 0.0;
}

}  // namespace d2tree
