// System-level metrics exactly as the paper defines them (Sec. III), plus
// the latency histogram the live-cluster harnesses report with.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "d2tree/nstree/tree.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

/// Log2-bucketed latency histogram (microseconds). Single-writer; each
/// client thread of the concurrent replay harness owns one and the
/// aggregator merges them after the threads join, so recording needs no
/// synchronization.
class LatencyHistogram {
 public:
  void Record(double micros) noexcept;
  void Merge(const LatencyHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept;
  double max() const noexcept { return max_; }

  /// Approximate q-quantile (q in [0,1]): locates the bucket holding the
  /// q-th observation and interpolates linearly inside it. Error is
  /// bounded by the bucket width (a factor of 2).
  double Quantile(double q) const noexcept;

 private:
  // Bucket i holds [2^(i-1), 2^i) µs; bucket 0 holds [0, 1) µs. 48 buckets
  // cover ~8.9 years, comfortably beyond any observable latency.
  static constexpr std::size_t kBuckets = 48;
  static std::size_t BucketOf(double micros) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Classification of one client operation by how it routed — the paper's
/// headline claim is precisely the shape of this distribution: GL hits
/// resolve at any replica (0 jumps), LL hits at the owner (0 jumps) or
/// after one forward on a stale index (1 jump), and only failures force a
/// failover retry. Latency percentiles are reported per class.
enum class OpClass : std::uint8_t {
  kGlHit = 0,  // target in the replicated global layer, served on entry
  kLl0Jump,    // local-layer target, entry server was the owner
  kLl1Jump,    // local-layer target, one forward to the owner
  kFailover,   // dead/unreachable server forced a failover retry
};
inline constexpr std::size_t kOpClassCount = 4;
const char* OpClassName(OpClass c);

/// Number of jumps jp_j (Def. 1) incurred when accessing node `target`:
/// transitions between consecutive nodes of the root→target path that live
/// on different MDSs. Replicated nodes never force a jump — the serving MDS
/// always holds a copy.
std::size_t JumpsFor(const NamespaceTree& tree, const Assignment& assignment,
                     NodeId target);

struct LocalityReport {
  /// Σ_j jp_j · p_j — the denominator of Eq. (1); for D2-Tree this reduces
  /// to Σ_{n_j ∈ LL} p_j (Eq. 7).
  double cost = 0.0;
  /// The paper's locality = 1 / cost; +inf when cost == 0 (single server or
  /// fully replicated).
  double locality = 0.0;
};

/// Global locality value of the system (Def. 3) from the popularity charged
/// on `tree` and the placement in `assignment`.
LocalityReport ComputeLocality(const NamespaceTree& tree,
                               const Assignment& assignment);

/// Per-MDS *routed* loads: each query is served by the MDS owning its
/// target node (prefix permission checks ride on client caches — the
/// standard assumption for the hash family, Sec. VII), so node n_j
/// contributes its individual popularity p'_j to its owner. Replicated
/// nodes can be served by any MDS, so their traffic spreads uniformly.
/// Note that for a D2-Tree subtree the owner's routed load equals the
/// subtree popularity s_i the mirror division balances by.
std::vector<double> ComputeLoads(const NamespaceTree& tree,
                                 const Assignment& assignment);

/// Literal Def. 5 loads L_k = Σ_{n_j ∈ m_k} p_j with p_j the *total*
/// popularity — every path hop is charged to the hop's owner (no client
/// caching). Kept for analysis of the definition itself.
std::vector<double> ComputeTraversalLoads(const NamespaceTree& tree,
                                          const Assignment& assignment);

struct BalanceReport {
  double mu = 0.0;                // ideal load factor μ = ΣL / ΣC
  double variance_term = 0.0;     // (1/(M-1)) Σ (L_k/C_k − μ)²
  double balance = 0.0;           // Eq. (2): 1 / variance_term (+inf if 0)
  std::vector<double> loads;      // L_k
  std::vector<double> relative;   // Re_k = L_k − μ·C_k
};

/// Load balance degree (Def. 5 / Eq. 2) from explicit loads.
BalanceReport ComputeBalanceFromLoads(const std::vector<double>& loads,
                                      const MdsCluster& cluster);

/// Convenience: ComputeLoads + ComputeBalanceFromLoads.
BalanceReport ComputeBalance(const NamespaceTree& tree,
                             const Assignment& assignment,
                             const MdsCluster& cluster);

/// Total update cost (Def. 4): Σ u_j over the replicated (global-layer)
/// node set GL. Schemes with no replication have zero update cost.
double ComputeUpdateCost(const NamespaceTree& tree,
                         const Assignment& assignment);

/// Fraction of trace-weighted accesses whose target is replicated — the
/// paper's "queries directed to global layer" statistic (Sec. VI-A).
double ReplicatedHitFraction(const NamespaceTree& tree,
                             const Assignment& assignment);

}  // namespace d2tree
