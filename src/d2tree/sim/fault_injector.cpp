#include "d2tree/sim/fault_injector.h"

#include <algorithm>
#include <cstdio>

#include "d2tree/common/rng.h"

namespace d2tree {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKill:
      return "kill";
    case FaultKind::kRevive:
      return "revive";
    case FaultKind::kAddServer:
      return "add-server";
    case FaultKind::kDropHeartbeats:
      return "drop-heartbeats";
    case FaultKind::kResumeHeartbeats:
      return "resume-heartbeats";
    case FaultKind::kLinkDropStart:
      return "link-drop";
    case FaultKind::kLinkDropStop:
      return "link-restore";
    case FaultKind::kMonitorPartitionStart:
      return "monitor-partition";
    case FaultKind::kMonitorPartitionStop:
      return "monitor-heal";
    case FaultKind::kCrashAtSite:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
  }
  return "?";
}

FaultSchedule FaultSchedule::Random(std::uint64_t seed, std::size_t mds_count,
                                    std::size_t total_ops,
                                    const FaultMix& mix) {
  FaultSchedule schedule;
  if (mds_count == 0 || total_ops == 0) return schedule;
  Rng rng(seed);

  // Simulate the cluster membership while sequencing kinds, so every
  // event is valid when it fires in schedule order: kills pick a live
  // server and keep at least one alive, revives pick a currently dead
  // one, drops pick a live one and are paired with a later resume.
  std::vector<bool> alive(mds_count, true);
  std::size_t alive_n = mds_count;
  std::vector<MdsId> dead;
  std::vector<MdsId> awaiting_resume;
  std::vector<MdsId> awaiting_restore;
  std::vector<MdsId> awaiting_heal;
  std::size_t kills = mix.kills;
  std::size_t revives = mix.revives;
  std::size_t additions = mix.server_additions;
  std::size_t drops = mix.heartbeat_drops;
  std::size_t link_drops = mix.link_drops;
  std::size_t partitions = mix.monitor_partitions;
  std::size_t crashes = mix.crashes;
  std::size_t awaiting_recover = 0;

  const auto pick_alive = [&]() -> MdsId {
    std::vector<MdsId> candidates;
    for (std::size_t k = 0; k < alive.size(); ++k)
      if (alive[k]) candidates.push_back(static_cast<MdsId>(k));
    return candidates[rng.NextBounded(candidates.size())];
  };

  std::vector<FaultEvent> sequence;
  // Round-robin over the kinds: one of each per round, in an order that
  // guarantees a revive always has a corpse and a resume follows its drop.
  while (kills + revives + additions + drops + link_drops + partitions +
             crashes + awaiting_recover + awaiting_resume.size() +
             awaiting_restore.size() + awaiting_heal.size() >
         0) {
    bool progressed = false;
    if (kills > 0 && alive_n > 1) {
      const MdsId t = pick_alive();
      alive[t] = false;
      --alive_n;
      dead.push_back(t);
      sequence.push_back({.kind = FaultKind::kKill, .target = t});
      --kills;
      progressed = true;
    }
    if (drops > 0 && alive_n > 0) {
      const MdsId t = pick_alive();
      sequence.push_back({.kind = FaultKind::kDropHeartbeats, .target = t});
      awaiting_resume.push_back(t);
      --drops;
      progressed = true;
    }
    if (link_drops > 0 && alive_n > 0) {
      const MdsId t = pick_alive();
      sequence.push_back({.kind = FaultKind::kLinkDropStart, .target = t});
      awaiting_restore.push_back(t);
      --link_drops;
      progressed = true;
    }
    if (partitions > 0 && alive_n > 0) {
      const MdsId t = pick_alive();
      sequence.push_back({.kind = FaultKind::kMonitorPartitionStart, .target = t});
      awaiting_heal.push_back(t);
      --partitions;
      progressed = true;
    }
    if (additions > 0) {
      sequence.push_back({.kind = FaultKind::kAddServer, .target = -1});
      alive.push_back(true);
      ++alive_n;
      --additions;
      progressed = true;
    }
    if (revives > 0 && !dead.empty()) {
      const std::size_t pick = rng.NextBounded(dead.size());
      const MdsId t = dead[pick];
      dead.erase(dead.begin() + static_cast<std::ptrdiff_t>(pick));
      alive[t] = true;
      ++alive_n;
      sequence.push_back({.kind = FaultKind::kRevive, .target = t});
      --revives;
      progressed = true;
    }
    if (crashes > 0) {
      FaultEvent e{.kind = FaultKind::kCrashAtSite};
      e.site = static_cast<CrashSite>(rng.NextBounded(kCrashSiteCount));
      e.torn_tail = rng.NextBounded(1u << 20) <
                    static_cast<std::uint64_t>(mix.torn_tail_probability *
                                               (1u << 20));
      sequence.push_back(e);
      ++awaiting_recover;
      --crashes;
      progressed = true;
    }
    if (crashes == 0 && awaiting_recover > 0) {
      sequence.push_back({.kind = FaultKind::kRecover});
      --awaiting_recover;
      progressed = true;
    }
    if (drops == 0 && !awaiting_resume.empty()) {
      const MdsId t = awaiting_resume.front();
      awaiting_resume.erase(awaiting_resume.begin());
      sequence.push_back({.kind = FaultKind::kResumeHeartbeats, .target = t});
      progressed = true;
    }
    if (link_drops == 0 && !awaiting_restore.empty()) {
      const MdsId t = awaiting_restore.front();
      awaiting_restore.erase(awaiting_restore.begin());
      sequence.push_back({.kind = FaultKind::kLinkDropStop, .target = t});
      progressed = true;
    }
    if (partitions == 0 && !awaiting_heal.empty()) {
      const MdsId t = awaiting_heal.front();
      awaiting_heal.erase(awaiting_heal.begin());
      sequence.push_back({.kind = FaultKind::kMonitorPartitionStop, .target = t});
      progressed = true;
    }
    // Unsatisfiable leftovers (e.g. more revives than kills, or a kill
    // with one server): drop them rather than loop forever.
    if (!progressed) break;
  }

  // Spread the events over the middle of the run — traffic races each
  // fault from both sides, and the tail leaves room for recovery rounds.
  const std::size_t lo = total_ops / 6 + 1;
  const std::size_t hi = std::max(lo + 1, total_ops * 5 / 6);
  schedule.events.reserve(sequence.size());
  std::size_t prev_at = 0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    std::size_t at = lo + (hi - lo) * (i + 1) / (sequence.size() + 1);
    at = std::max(at, prev_at + 1);  // keep the order strict
    prev_at = at;
    FaultEvent e = sequence[i];
    e.at_op = at;
    if (e.kind == FaultKind::kLinkDropStart)
      e.drop_prob = mix.link_drop_probability;
    schedule.events.push_back(e);
  }
  return schedule;
}

std::string FaultSchedule::ToString() const {
  std::string out;
  for (const FaultEvent& e : events) {
    out += "@" + std::to_string(e.at_op) + " " + FaultKindName(e.kind);
    if (e.kind != FaultKind::kAddServer && e.kind != FaultKind::kCrashAtSite &&
        e.kind != FaultKind::kRecover)
      out += " mds=" + std::to_string(e.target);
    if (e.kind == FaultKind::kCrashAtSite) {
      out += " site=";
      out += CrashSiteName(e.site);
      if (e.torn_tail) out += " torn";
    }
    if (e.kind == FaultKind::kLinkDropStart) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " p=%g", e.drop_prob);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

FaultInjector::FaultInjector(FunctionalCluster& cluster, FaultSchedule schedule)
    : cluster_(cluster), events_(std::move(schedule.events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_op < b.at_op;
                   });
  if (!events_.empty())
    next_at_.store(events_.front().at_op, std::memory_order_relaxed);
}

void FaultInjector::OnOp() {
  const std::size_t seen = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seen < next_at_.load(std::memory_order_acquire)) return;  // fast path
  MutexLock lock(&mu_);
  while (cursor_ < events_.size() && events_[cursor_].at_op <= seen)
    FireLocked(events_[cursor_++]);
  next_at_.store(cursor_ < events_.size()
                     ? events_[cursor_].at_op
                     : std::numeric_limits<std::size_t>::max(),
                 std::memory_order_release);
}

void FaultInjector::FireLocked(const FaultEvent& event) {
  bool accepted = false;
  switch (event.kind) {
    case FaultKind::kKill:
      accepted = cluster_.KillServer(event.target);
      break;
    case FaultKind::kRevive:
      accepted = cluster_.ReviveServer(event.target);
      break;
    case FaultKind::kAddServer:
      accepted = cluster_.AddServer() >= 0;
      break;
    case FaultKind::kDropHeartbeats:
      accepted = cluster_.SetHeartbeatSuppressed(event.target, true);
      break;
    case FaultKind::kResumeHeartbeats:
      accepted = cluster_.SetHeartbeatSuppressed(event.target, false);
      break;
    case FaultKind::kLinkDropStart:
      accepted = cluster_.SetClientLinkDrop(event.target, event.drop_prob);
      break;
    case FaultKind::kLinkDropStop:
      accepted = cluster_.SetClientLinkDrop(event.target, 0.0);
      break;
    case FaultKind::kMonitorPartitionStart:
      accepted = cluster_.SetMonitorPartition(event.target, true);
      break;
    case FaultKind::kMonitorPartitionStop:
      accepted = cluster_.SetMonitorPartition(event.target, false);
      break;
    case FaultKind::kCrashAtSite:
      cluster_.ArmCrash(event.site, event.torn_tail);
      accepted = true;
      break;
    case FaultKind::kRecover:
      cluster_.Recover();
      accepted = true;
      break;
  }
  (accepted ? applied_ : skipped_).fetch_add(1, std::memory_order_relaxed);
}

}  // namespace d2tree
