#include "d2tree/sim/concurrent_replay.h"

#include <atomic>
#include <barrier>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>

#include "d2tree/common/zipf.h"

namespace d2tree {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point t0) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - t0)
                 .count()) /
         1e3;
}

void IssueOp(FunctionalCluster& cluster, const std::string& path,
             bool is_update, MdsId via, std::uint64_t mtime,
             ThreadReplayStats& stats) {
  const auto t0 = Clock::now();
  FunctionalCluster::ClientResult r;
  if (is_update) {
    r = cluster.Update(path, mtime);
  } else if (via >= 0) {
    r = cluster.StatVia(path, via);
  } else {
    r = cluster.Stat(path);
  }
  stats.latency.Record(MicrosSince(t0));
  stats.sim_latency.Record(r.sim_latency_us);
  const auto cls = static_cast<std::size_t>(r.op_class);
  stats.class_latency[cls].Record(r.sim_latency_us);
  ++stats.class_ops[cls];
  ++stats.ops;
  if (r.status == MdsStatus::kOk) {
    ++stats.ok;
  } else {
    ++stats.failed;
    if (r.status == MdsStatus::kUnavailable) ++stats.unavailable;
  }
  if (r.hops > 1) ++stats.forwarded;
}

/// Runs `body(thread_index, stats)` on `thread_count` barrier-started
/// threads with the background adjustment thread interleaved, then
/// aggregates stats, counter deltas and the final audit into the report.
/// `injector` (may be null) is the fault layer; the bodies drive it via
/// OnOp, and a run in which faults fired ends with one extra recovery
/// adjustment round before the audit.
ConcurrentReplayReport RunHarness(
    FunctionalCluster& cluster, const ConcurrentReplayConfig& config,
    FaultInjector* injector,
    const std::function<void(std::size_t, ThreadReplayStats&)>& body) {
  ConcurrentReplayReport report;
  report.per_thread.resize(config.thread_count);

  const std::uint64_t forwards_before = cluster.total_forwards();
  const std::uint64_t gl_updates_before = cluster.gl_updates();
  const double gl_wait_before = cluster.gl_lock_wait_seconds();
  const std::uint64_t redirects_before = cluster.failover_redirects();
  const std::uint64_t recovered_before = cluster.recovered_records();
  const std::uint64_t sent_before = cluster.transport().messages_sent();
  const std::uint64_t dropped_before = cluster.transport().messages_dropped();
  const std::uint64_t hb_lost_before = cluster.heartbeats_lost();
  const std::uint64_t retries_before = cluster.retries_total();
  const std::uint64_t deadline_before = cluster.deadline_exceeded_total();
  const std::uint64_t crashes_before = cluster.crashes_injected();
  const std::uint64_t recoveries_before = cluster.recoveries_completed();
  const std::uint64_t dup_pulls_before = cluster.duplicate_pulls_dropped();

  // +1 worker slot for the adjuster, +1 for the timing thread (main).
  std::barrier start(static_cast<std::ptrdiff_t>(config.thread_count) + 2);
  std::atomic<bool> clients_done{false};
  std::atomic<std::size_t> rounds_run{0};
  std::atomic<std::size_t> migrated{0};

  std::thread adjuster([&] {
    start.arrive_and_wait();
    // Keep migrating while clients replay; always complete the configured
    // minimum so short runs still see churn.
    while (true) {
      if (config.adjustment_interval_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(config.adjustment_interval_us));
      }
      migrated.fetch_add(cluster.RunAdjustmentRound());
      const std::size_t done = rounds_run.fetch_add(1) + 1;
      if (clients_done.load() && done >= config.min_adjustment_rounds) break;
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(config.thread_count);
  for (std::size_t t = 0; t < config.thread_count; ++t) {
    clients.emplace_back([&, t] {
      start.arrive_and_wait();
      body(t, report.per_thread[t]);
    });
  }

  start.arrive_and_wait();
  const auto t0 = Clock::now();
  for (auto& th : clients) th.join();
  report.wall_seconds = MicrosSince(t0) / 1e6;
  clients_done.store(true);
  adjuster.join();

  // A crash that tripped with no later kRecover in the schedule leaves the
  // service down; replay the WAL so the closing audit sees a live tree.
  if (cluster.crashed()) {
    const auto recovery = cluster.Recover();
    report.recovered_before_audit = true;
    report.wal_records_replayed = recovery.wal_records_replayed;
  }

  // Recovery round: a kill near the end of the replay may leave subtrees
  // orphaned with no adjustment round left to re-place them; with faults
  // in play the harness always closes with one.
  if (injector != nullptr && injector->fired() > 0) {
    migrated.fetch_add(cluster.RunAdjustmentRound());
    rounds_run.fetch_add(1);
  }

  for (const ThreadReplayStats& s : report.per_thread) {
    report.total_ops += s.ops;
    report.total_ok += s.ok;
    report.total_forwarded += s.forwarded;
    report.total_failed += s.failed;
    report.total_unavailable += s.unavailable;
    report.latency.Merge(s.latency);
    report.sim_latency.Merge(s.sim_latency);
    for (std::size_t c = 0; c < kOpClassCount; ++c) {
      report.class_latency[c].Merge(s.class_latency[c]);
      report.class_ops[c] += s.class_ops[c];
    }
  }
  report.throughput_ops_per_sec =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.total_ops) / report.wall_seconds
          : 0.0;
  report.forwards = cluster.total_forwards() - forwards_before;
  report.gl_updates = cluster.gl_updates() - gl_updates_before;
  report.gl_lock_wait_seconds =
      cluster.gl_lock_wait_seconds() - gl_wait_before;
  report.adjustment_rounds_run = rounds_run.load();
  report.migrated_records = migrated.load();
  report.failover_redirects = cluster.failover_redirects() - redirects_before;
  report.recovered_records = cluster.recovered_records() - recovered_before;
  report.messages_sent = cluster.transport().messages_sent() - sent_before;
  report.messages_dropped =
      cluster.transport().messages_dropped() - dropped_before;
  report.heartbeats_lost = cluster.heartbeats_lost() - hb_lost_before;
  report.retries = cluster.retries_total() - retries_before;
  report.deadline_exceeded =
      cluster.deadline_exceeded_total() - deadline_before;
  report.crashes_injected = cluster.crashes_injected() - crashes_before;
  report.recoveries_completed =
      cluster.recoveries_completed() - recoveries_before;
  report.duplicate_pulls_dropped =
      cluster.duplicate_pulls_dropped() - dup_pulls_before;
  if (injector != nullptr) {
    report.faults_applied = injector->applied();
    report.faults_skipped = injector->skipped();
  }
  report.final_mds_count = cluster.mds_count();
  report.final_alive_count = cluster.alive_count();
  report.consistent = cluster.CheckConsistency(&report.consistency_error);
  return report;
}

std::vector<std::string> AllPaths(const NamespaceTree& tree) {
  std::vector<std::string> paths;
  paths.reserve(tree.size());
  for (NodeId id = 0; id < tree.size(); ++id) paths.push_back(tree.PathOf(id));
  return paths;
}

}  // namespace

ConcurrentReplayReport RunConcurrentReplay(
    FunctionalCluster& cluster, const NamespaceTree& tree,
    const ConcurrentReplayConfig& config) {
  const std::vector<std::string> paths = AllPaths(tree);
  const ZipfSampler zipf(paths.size(), config.zipf_theta);
  const std::size_t mds_count = cluster.mds_count();
  std::optional<FaultInjector> injector;
  if (!config.fault_schedule.empty())
    injector.emplace(cluster, config.fault_schedule);
  FaultInjector* inj = injector.has_value() ? &*injector : nullptr;

  return RunHarness(cluster, config, inj, [&, inj](std::size_t t,
                                                   ThreadReplayStats& stats) {
    // Per-thread deterministic op stream (timing is the only nondeterminism).
    std::uint64_t sm = config.seed + 0x9E3779B97F4A7C15ULL * (t + 1);
    Rng rng(SplitMix64(sm));
    for (std::size_t i = 0; i < config.ops_per_thread; ++i) {
      const std::string& path = paths[zipf.Sample(rng)];
      const bool is_update = rng.NextBool(config.update_fraction);
      MdsId via = -1;
      if (!is_update && rng.NextBool(config.stale_entry_fraction))
        via = static_cast<MdsId>(rng.NextBounded(mds_count));
      IssueOp(cluster, path, is_update, via, /*mtime=*/i, stats);
      if (inj != nullptr) inj->OnOp();
    }
  });
}

ConcurrentReplayReport ReplayTraceConcurrently(
    FunctionalCluster& cluster, const NamespaceTree& tree, const Trace& trace,
    const ConcurrentReplayConfig& config) {
  const std::vector<std::string> paths = AllPaths(tree);
  const auto& records = trace.records();
  const std::size_t per_thread =
      config.thread_count == 0 ? 0 : records.size() / config.thread_count;
  const std::size_t mds_count = cluster.mds_count();
  std::optional<FaultInjector> injector;
  if (!config.fault_schedule.empty())
    injector.emplace(cluster, config.fault_schedule);
  FaultInjector* inj = injector.has_value() ? &*injector : nullptr;

  return RunHarness(cluster, config, inj, [&, inj](std::size_t t,
                                                   ThreadReplayStats& stats) {
    std::uint64_t sm = config.seed + 0x9E3779B97F4A7C15ULL * (t + 1);
    Rng rng(SplitMix64(sm));
    const std::size_t begin = t * per_thread;
    const std::size_t end =
        t + 1 == config.thread_count ? records.size() : begin + per_thread;
    for (std::size_t i = begin; i < end; ++i) {
      const TraceRecord& rec = records[i];
      const bool is_update = rec.op == OpType::kUpdate;
      MdsId via = -1;
      if (!is_update && rng.NextBool(config.stale_entry_fraction))
        via = static_cast<MdsId>(rng.NextBounded(mds_count));
      IssueOp(cluster, paths[rec.node], is_update, via, /*mtime=*/i, stats);
      if (inj != nullptr) inj->OnOp();
    }
  });
}

}  // namespace d2tree
