// Concurrent trace-replay harness: real threads against the functional
// cluster.
//
// The discrete-event simulator (cluster_sim.h) validates the paper's
// claims in single-threaded virtual time; this harness validates them
// under actual contention. N client threads replay a Zipf-skewed workload
// (Stat / StatVia / Update mix) against a live FunctionalCluster while a
// background thread periodically runs RunAdjustmentRound(), so migrations
// race with reads and global-layer writes — the execution shape the
// sanitizer presets (-DD2TREE_SANITIZE=thread) are wired for. Per-thread
// latency histograms, forward counts and GL-lock contention are collected
// through the metrics module, and the run ends with the cluster's
// consistency audit.
//
// A run may additionally carry a FaultSchedule: a FaultInjector then
// crashes, revives and adds servers (and toggles heartbeats) at fixed
// aggregate op counts while the client threads replay, so failover and
// crash recovery race live traffic. When faults fired, the harness runs
// one extra adjustment round after the clients finish — the recovery
// round that re-places any subtree still orphaned by a late kill —
// before the final audit.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "d2tree/mds/cluster.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/sim/fault_injector.h"
#include "d2tree/trace/trace.h"

namespace d2tree {

struct ConcurrentReplayConfig {
  /// Client threads replaying operations.
  std::size_t thread_count = 4;
  /// Operations each thread issues (fixed, for deterministic op totals).
  std::size_t ops_per_thread = 10'000;
  /// Zipf exponent over target nodes (0 = uniform); ignored when an
  /// explicit trace is supplied to RunConcurrentReplay.
  double zipf_theta = 0.8;
  /// Fraction of operations that mutate (Update); the rest are reads.
  double update_fraction = 0.10;
  /// Fraction of reads issued through StatVia at a random server,
  /// modelling stale client routing knowledge (exercises forwarding).
  double stale_entry_fraction = 0.05;
  /// Minimum adjustment rounds the background thread runs. While client
  /// threads are still replaying it keeps going past this, one round per
  /// interval, so migrations overlap the whole run.
  std::size_t min_adjustment_rounds = 4;
  /// Sleep between adjustment rounds, microseconds (0 = back-to-back).
  std::size_t adjustment_interval_us = 1000;
  std::uint64_t seed = 0xD27EE;
  /// Faults injected while the clients replay (empty = fault-free run).
  /// Events fire on the aggregate client op counter, so a schedule is
  /// reproducible from its seed regardless of thread interleaving.
  FaultSchedule fault_schedule;
};

/// What one client thread observed (index = thread id).
struct ThreadReplayStats {
  std::size_t ops = 0;
  std::size_t ok = 0;
  std::size_t forwarded = 0;    // served with hops > 1
  std::size_t failed = 0;       // any status other than kOk
  std::size_t unavailable = 0;  // kUnavailable (dead-server windows)
  LatencyHistogram latency;     // per-op wall latency, µs
  /// Per-op *simulated* network latency (sum of the op's message legs),
  /// µs — all zero on InProcessTransport.
  LatencyHistogram sim_latency;
  /// sim_latency split by how the op routed (index = OpClass).
  std::array<LatencyHistogram, kOpClassCount> class_latency;
  std::array<std::size_t, kOpClassCount> class_ops{};
};

struct ConcurrentReplayReport {
  std::vector<ThreadReplayStats> per_thread;

  // Aggregates over all client threads.
  std::size_t total_ops = 0;
  std::size_t total_ok = 0;
  std::size_t total_forwarded = 0;
  std::size_t total_failed = 0;
  LatencyHistogram latency;  // merged per-thread histograms
  LatencyHistogram sim_latency;
  std::array<LatencyHistogram, kOpClassCount> class_latency;
  std::array<std::size_t, kOpClassCount> class_ops{};
  double wall_seconds = 0.0;
  double throughput_ops_per_sec = 0.0;

  // Cluster-side counters, deltas over the run.
  std::uint64_t forwards = 0;
  std::uint64_t gl_updates = 0;
  double gl_lock_wait_seconds = 0.0;

  // Message-layer counters, deltas over the run.
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t heartbeats_lost = 0;

  // Background adjustment activity.
  std::size_t adjustment_rounds_run = 0;
  std::size_t migrated_records = 0;

  // Fault-injection activity (all zero on a fault-free run).
  std::size_t total_unavailable = 0;      // ops lost to dead-server windows
  std::uint64_t failover_redirects = 0;   // delta of the cluster counter
  std::uint64_t recovered_records = 0;    // delta of the cluster counter
  std::size_t faults_applied = 0;         // events the cluster accepted
  std::size_t faults_skipped = 0;         // events it rejected
  std::size_t final_mds_count = 0;        // membership after the run
  std::size_t final_alive_count = 0;

  // Control-plane retry layer, deltas over the run (net/retry.h).
  std::uint64_t retries = 0;             // re-sends beyond first attempts
  std::uint64_t deadline_exceeded = 0;   // ops that ran out their deadline
  // Durability layer, deltas over the run (DESIGN.md §7).
  std::uint64_t crashes_injected = 0;        // armed crashes that tripped
  std::uint64_t recoveries_completed = 0;    // Recover() calls that finished
  std::uint64_t duplicate_pulls_dropped = 0; // receiver dedup on migration id
  /// True when the service was still down at the end of the replay (a
  /// kCrashAtSite with no later kRecover): the harness runs Recover()
  /// itself before the audit, so `consistent` always reflects a live tree.
  bool recovered_before_audit = false;
  std::size_t wal_records_replayed = 0;  // from that recovery, else 0

  // Final audit.
  bool consistent = false;
  std::string consistency_error;
};

/// Replays a synthetic Zipf workload over every node of `tree` (the
/// namespace the cluster was built from). Deterministic op sequence per
/// thread in config.seed; timing (and therefore histograms and migration
/// interleavings) is real.
ConcurrentReplayReport RunConcurrentReplay(FunctionalCluster& cluster,
                                           const NamespaceTree& tree,
                                           const ConcurrentReplayConfig& config);

/// Same harness, but threads replay disjoint contiguous slices of an
/// explicit trace (records are resolved to paths via `tree`) instead of
/// sampling a Zipf distribution. kUpdate records go through Update;
/// reads obey config.stale_entry_fraction.
ConcurrentReplayReport ReplayTraceConcurrently(
    FunctionalCluster& cluster, const NamespaceTree& tree, const Trace& trace,
    const ConcurrentReplayConfig& config);

}  // namespace d2tree
