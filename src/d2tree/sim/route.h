// Per-scheme request routing for the cluster simulator (Sec. IV-A2, VI-A).
//
// A RoutePlan is the list of MDSs a request visits. The paper's throughput
// differences come precisely from these plans: D2-Tree resolves global-layer
// queries at any single replica and local-layer queries at the subtree owner
// (one forward on a stale client index), while hash-family and
// finer-grained subtree schemes forward queries along the pathname
// traversal, visiting more servers as the cluster scales.
#pragma once

#include <cstdint>
#include <vector>

#include "d2tree/common/rng.h"
#include "d2tree/core/local_index.h"
#include "d2tree/core/partial_replication.h"
#include "d2tree/core/routing.h"
#include "d2tree/partition/partition.h"
#include "d2tree/trace/trace.h"

namespace d2tree {

struct RoutePlan {
  /// Servers visited in order; never empty.
  std::vector<MdsId> visits;
  /// True when the op mutates a replicated (global-layer) node and must
  /// take the per-node lock + broadcast to all replicas.
  bool global_update = false;
  /// True when the op mutates a node held in *client* caches (baseline
  /// schemes): the writer pays a lease-revocation round before the update
  /// is visible (Sec. VII's caching-consistency cost).
  bool cached_target_update = false;
  /// True when the target resolves in the replicated set (a GL hit for
  /// D2-Tree; a fully-replicated path for the baselines) — the op-class
  /// dimension of the latency percentiles. Kept after the positional
  /// fields above so existing aggregate initializers stay valid.
  bool gl_target = false;
  /// For global updates under *partial* replication: the servers holding
  /// replicas (broadcast targets). Empty = every server (full replication).
  std::vector<MdsId> broadcast_servers;
};

class RoutePlanner {
 public:
  virtual ~RoutePlanner() = default;
  virtual RoutePlan PlanRoute(const TraceRecord& record, Rng& rng) const = 0;
};

/// The hot upper crown clients keep in their metadata caches: the
/// `fraction` of nodes with the highest total popularity (prefix
/// directories are exactly what client caches retain, Sec. VII). Used to
/// model baseline routing without the unrealistic namespace-root
/// bottleneck.
std::vector<bool> TopPopularityClientCache(const NamespaceTree& tree,
                                           double fraction);

/// Routing implied by a plain Assignment: ancestors resident in the client
/// cache are skipped (their permission checks are client-side, Sec. VII);
/// from the first uncached path node on, the request is forwarded on every
/// owner change along the pathname traversal — the "queries … forwarded
/// multiple times" behaviour of the baselines (Sec. VI-A). The target node
/// itself is always fetched from its owner.
class AssignmentRouter : public RoutePlanner {
 public:
  /// `client_cache` may be null (no caching — every path owner visited).
  /// It must outlive the router. `forward_prob` is the chance the client's
  /// placement knowledge is stale after migrations/rehashing, costing one
  /// forwarding hop through a random MDS.
  AssignmentRouter(const NamespaceTree& tree, const Assignment& assignment,
                   const std::vector<bool>* client_cache = nullptr,
                   double forward_prob = 0.0)
      : tree_(&tree), assignment_(&assignment), cache_(client_cache),
        forward_prob_(forward_prob) {}

  RoutePlan PlanRoute(const TraceRecord& record, Rng& rng) const override;

 private:
  const NamespaceTree* tree_;
  const Assignment* assignment_;
  const std::vector<bool>* cache_;
  double forward_prob_;
};

/// D2-Tree client logic (Sec. IV-A2): check cached local index → send
/// straight to the subtree owner; otherwise the target is GL-resident and
/// any random MDS serves it. `index_miss_prob` models stale client caches
/// after dynamic adjustment: a miss costs one forwarding hop through a
/// random MDS.
class D2TreeRouter : public RoutePlanner {
 public:
  D2TreeRouter(const NamespaceTree& tree, const Assignment& assignment,
               const LocalIndex& index, double index_miss_prob = 0.0)
      : tree_(&tree), assignment_(&assignment), index_(&index),
        index_miss_prob_(index_miss_prob) {}

  RoutePlan PlanRoute(const TraceRecord& record, Rng& rng) const override;

 private:
  const NamespaceTree* tree_;
  const Assignment* assignment_;
  const LocalIndex* index_;
  double index_miss_prob_;
};

/// D2-Tree with a replication-degree threshold (Sec. VII extension): a
/// global-layer query goes to one of the node's `degree` replicas; a
/// global-layer update locks and broadcasts to those replicas only.
class PartialD2TreeRouter : public RoutePlanner {
 public:
  PartialD2TreeRouter(const NamespaceTree& tree, const LocalIndex& index,
                      const PartialGlobalLayer& partial,
                      double index_miss_prob = 0.0)
      : tree_(&tree), index_(&index), partial_(&partial),
        index_miss_prob_(index_miss_prob) {}

  RoutePlan PlanRoute(const TraceRecord& record, Rng& rng) const override;

 private:
  const NamespaceTree* tree_;
  const LocalIndex* index_;
  const PartialGlobalLayer* partial_;
  double index_miss_prob_;
};

}  // namespace d2tree
