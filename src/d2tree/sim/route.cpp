#include "d2tree/sim/route.h"

#include <algorithm>

namespace d2tree {

std::vector<bool> TopPopularityClientCache(const NamespaceTree& tree,
                                           double fraction) {
  std::vector<NodeId> by_pop(tree.size());
  for (NodeId id = 0; id < tree.size(); ++id) by_pop[id] = id;
  std::sort(by_pop.begin(), by_pop.end(), [&](NodeId a, NodeId b) {
    return tree.node(a).subtree_popularity > tree.node(b).subtree_popularity;
  });
  std::vector<bool> cached(tree.size(), false);
  const auto count = static_cast<std::size_t>(
      fraction * static_cast<double>(tree.size()));
  for (std::size_t i = 0; i < count && i < by_pop.size(); ++i)
    cached[by_pop[i]] = true;
  return cached;
}

RoutePlan AssignmentRouter::PlanRoute(const TraceRecord& record,
                                      Rng& rng) const {
  RoutePlan plan;
  const auto m = static_cast<std::uint64_t>(assignment_->mds_count);
  MdsId current = kReplicated;
  const auto step = [&](NodeId v, bool is_target) {
    if (!is_target && cache_ != nullptr && (*cache_)[v])
      return;  // ancestor's permission check served from the client cache
    const MdsId o = assignment_->OwnerOf(v);
    if (o == kReplicated) return;  // served wherever we already are
    if (current != o) {
      plan.visits.push_back(o);
      current = o;
    }
  };
  for (NodeId a : tree_->AncestorsOf(record.node)) step(a, false);
  step(record.node, true);
  if (plan.visits.empty()) {
    // Entire path replicated: any MDS can serve (D2-Tree GL semantics).
    plan.gl_target = true;
    plan.visits.push_back(static_cast<MdsId>(rng.NextBounded(m)));
  } else if (forward_prob_ > 0.0 && rng.NextBool(forward_prob_)) {
    // Stale client placement knowledge: land on a random MDS first, get
    // forwarded to the real entry server.
    const auto wrong = static_cast<MdsId>(rng.NextBounded(m));
    if (wrong != plan.visits.front())
      plan.visits.insert(plan.visits.begin(), wrong);
  }
  plan.global_update = record.op == OpType::kUpdate &&
                       assignment_->IsReplicated(record.node);
  plan.cached_target_update = record.op == OpType::kUpdate &&
                              !plan.global_update && cache_ != nullptr &&
                              (*cache_)[record.node];
  return plan;
}

RoutePlan D2TreeRouter::PlanRoute(const TraceRecord& record, Rng& rng) const {
  RoutePlan plan;
  const auto m = static_cast<std::size_t>(assignment_->mds_count);
  const RouteDecision route = DecideRoute(*tree_, *index_, record.node);
  plan.gl_target = route.gl_resident();
  if (route.gl_resident()) {
    // Global-layer resident: one visit to a randomly chosen replica.
    plan.visits.push_back(ChooseEntry(route, m, 0.0, rng));
    plan.global_update = record.op == OpType::kUpdate;
    return plan;
  }
  // Stale cached index entry: the request lands on a random MDS first and
  // is forwarded to the real owner.
  const MdsId entry = ChooseEntry(route, m, index_miss_prob_, rng);
  if (entry != *route.owner) plan.visits.push_back(entry);
  plan.visits.push_back(*route.owner);
  return plan;
}

RoutePlan PartialD2TreeRouter::PlanRoute(const TraceRecord& record,
                                         Rng& rng) const {
  RoutePlan plan;
  const RouteDecision route = DecideRoute(*tree_, *index_, record.node);
  plan.gl_target = route.gl_resident();
  if (route.gl_resident()) {
    // Global-layer resident: one of the node's replicas serves it.
    plan.visits.push_back(partial_->PickReplica(record.node, rng));
    if (record.op == OpType::kUpdate) {
      plan.global_update = true;
      plan.broadcast_servers = partial_->ReplicasOf(record.node);
    }
    return plan;
  }
  const MdsId entry =
      ChooseEntry(route, partial_->mds_count(), index_miss_prob_, rng);
  if (entry != *route.owner) plan.visits.push_back(entry);
  plan.visits.push_back(*route.owner);
  return plan;
}

}  // namespace d2tree
