// Discrete-event MDS-cluster simulator (the EC2-testbed substitute,
// DESIGN.md §3).
//
// Closed-loop clients replay a trace against M queue servers connected by a
// fixed-latency network. Each server processes one request at a time (its
// capacity is 1/service_time ops/s); forwarded requests pay the network
// latency per hop and queue at every visited server; updates to the
// replicated global layer serialize on a per-node lock and pay a broadcast
// to all M replicas. These are exactly the mechanisms the paper credits
// for the Fig. 5 throughput shapes.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "d2tree/core/lock_service.h"
#include "d2tree/metrics/metrics.h"
#include "d2tree/sim/route.h"
#include "d2tree/trace/trace.h"

namespace d2tree {

struct SimConfig {
  /// Closed-loop clients (the paper fixes "the client base to 200").
  std::size_t client_count = 200;
  /// Service time of one metadata query at one MDS (capacity = 1/this).
  double service_time = 100e-6;
  /// Extra service time for an update (mutation) at its final server.
  double update_service_time = 150e-6;
  /// One-way network latency per message hop (client→MDS or MDS→MDS).
  double net_latency = 300e-6;
  /// Per-replica cost of broadcasting a global-layer update (the lock is
  /// held for net_latency + M × this).
  double per_replica_write = 10e-6;
  /// D2-Tree only: probability a client's cached local index entry is
  /// stale (set from the subtree churn of dynamic adjustment).
  double index_miss_prob = 0.0;
  /// Latency a baseline update to a client-cached node pays to revoke the
  /// outstanding leases before mutating (Sec. VII: "client caching can
  /// involve higher latency"; GFS-style lease revocation round).
  double lease_revoke_time = 1500e-6;
  /// Number of trace records to replay (cycling through the trace).
  std::size_t max_ops = 100'000;
  std::uint64_t seed = 0xC10C;
};

struct SimResult {
  std::size_t completed_ops = 0;
  double duration = 0.0;        // virtual seconds until last completion
  double throughput = 0.0;      // completed_ops / duration
  double mean_latency = 0.0;
  double p99_latency = 0.0;
  double lock_wait_total = 0.0; // aggregate GL-lock queueing (contention)
  std::vector<double> server_busy;  // busy seconds per MDS
  std::vector<std::size_t> server_ops;  // visits per MDS
  /// Completion latency split by how the op routed (index = OpClass;
  /// µs — the DES has no failover, so that slot stays empty).
  std::array<LatencyHistogram, kOpClassCount> class_latency;

  /// Max busy-time utilization across servers (1.0 = some server saturated).
  double MaxUtilization() const;
};

/// Runs the closed-loop replay. `router` decides the per-request visits;
/// `mds_count` servers are simulated. Deterministic in config.seed.
SimResult RunClusterSim(const Trace& trace, const RoutePlanner& router,
                        std::size_t mds_count, const SimConfig& config);

}  // namespace d2tree
