#include "d2tree/sim/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "d2tree/common/stats.h"

namespace d2tree {

double SimResult::MaxUtilization() const {
  double u = 0.0;
  for (double b : server_busy) u = std::max(u, duration > 0 ? b / duration : 0.0);
  return u;
}

namespace {

struct ClientEvent {
  double time;
  std::uint32_t client;
  bool operator>(const ClientEvent& o) const {
    if (time != o.time) return time > o.time;
    return client > o.client;  // deterministic tie-break
  }
};

}  // namespace

SimResult RunClusterSim(const Trace& trace, const RoutePlanner& router,
                        std::size_t mds_count, const SimConfig& config) {
  assert(mds_count > 0);
  assert(!trace.empty());
  SimResult result;
  result.server_busy.assign(mds_count, 0.0);
  result.server_ops.assign(mds_count, 0);

  Rng rng(config.seed);
  LockTable gl_locks;
  std::vector<double> server_free(mds_count, 0.0);
  std::vector<double> latencies;
  latencies.reserve(config.max_ops);

  // Client c replays records c, c+C, c+2C, … (cycling) so the op mix each
  // client sees matches the trace's.
  const std::size_t clients =
      std::min<std::size_t>(config.client_count, config.max_ops);
  std::vector<std::size_t> next_op(clients);
  std::priority_queue<ClientEvent, std::vector<ClientEvent>,
                      std::greater<ClientEvent>>
      events;
  for (std::uint32_t c = 0; c < clients; ++c) {
    next_op[c] = c;
    // Tiny stagger keeps the start deterministic but not lock-stepped.
    events.push({static_cast<double>(c) * 1e-6, c});
  }

  std::size_t issued = 0;
  double last_completion = 0.0;
  while (!events.empty()) {
    const ClientEvent ev = events.top();
    events.pop();
    if (issued >= config.max_ops) continue;  // drain remaining clients
    const TraceRecord& record =
        trace.records()[next_op[ev.client] % trace.size()];
    next_op[ev.client] += clients;
    ++issued;

    const RoutePlan plan = router.PlanRoute(record, rng);
    assert(!plan.visits.empty());
    double t = ev.time;

    if (plan.global_update) {
      // Serialize on the per-node lock; the holder pays the replica
      // broadcast before releasing (Sec. IV-A3). Under partial
      // replication only the node's replica set is written.
      const std::size_t replica_count = plan.broadcast_servers.empty()
                                            ? mds_count
                                            : plan.broadcast_servers.size();
      const double hold =
          config.net_latency +
          static_cast<double>(replica_count) * config.per_replica_write;
      t += config.net_latency;  // reach the lock service
      t = gl_locks.LockFor(record.node).Acquire(t, hold);
      // Every replica applies the update asynchronously; the write work
      // still occupies each server's queue.
      const auto charge = [&](std::size_t k) {
        const double start = std::max(t, server_free[k]);
        server_free[k] = start + config.per_replica_write;
        result.server_busy[k] += config.per_replica_write;
      };
      if (plan.broadcast_servers.empty()) {
        for (std::size_t k = 0; k < mds_count; ++k) charge(k);
      } else {
        for (MdsId k : plan.broadcast_servers)
          charge(static_cast<std::size_t>(k));
      }
      t += hold;  // broadcast round while holding the lock
    } else if (plan.cached_target_update) {
      // Baseline write to a client-cached node: revoke leases first.
      t += config.lease_revoke_time;
    }

    for (std::size_t h = 0; h < plan.visits.size(); ++h) {
      const MdsId v = plan.visits[h];
      t += config.net_latency;  // client→MDS or MDS→MDS forward
      const bool final_hop = h + 1 == plan.visits.size();
      const double service = final_hop && record.op == OpType::kUpdate
                                 ? config.update_service_time
                                 : config.service_time;
      const double start = std::max(t, server_free[v]);
      server_free[v] = start + service;
      result.server_busy[v] += service;
      ++result.server_ops[v];
      t = start + service;
    }
    t += config.net_latency;  // reply to the client

    latencies.push_back(t - ev.time);
    const OpClass cls = plan.gl_target          ? OpClass::kGlHit
                        : plan.visits.size() == 1 ? OpClass::kLl0Jump
                                                  : OpClass::kLl1Jump;
    result.class_latency[static_cast<std::size_t>(cls)].Record(
        (t - ev.time) * 1e6);
    last_completion = std::max(last_completion, t);
    ++result.completed_ops;
    events.push({t, ev.client});
  }

  result.duration = last_completion;
  result.throughput =
      result.duration > 0
          ? static_cast<double>(result.completed_ops) / result.duration
          : 0.0;
  if (!latencies.empty()) {
    RunningStats s;
    for (double l : latencies) s.Add(l);
    result.mean_latency = s.mean();
    result.p99_latency = Percentile(latencies, 0.99);
  }
  result.lock_wait_total = gl_locks.TotalWait();
  return result;
}

}  // namespace d2tree
