// Deterministic fault injection for the functional cluster.
//
// A FaultSchedule is a seeded list of membership/liveness events — crash
// MDS k, restart it empty, add a fresh MDS, drop or resume its heartbeats
// — each pinned to an *aggregate operation count*: the event fires when
// the client threads have collectively completed that many operations.
// Tying events to op counts instead of wall time makes a fault run
// reproducible from the schedule seed regardless of thread interleaving
// or machine speed.
//
// The FaultInjector consumes a schedule against a live FunctionalCluster.
// Client threads call OnOp() once per completed operation; due events are
// dispatched through the cluster's fault operations (KillServer /
// ReviveServer / AddServer / SetHeartbeatSuppressed / SetClientLinkDrop /
// SetMonitorPartition), each of which takes
// the placement-epoch lock exclusively — so a fault never fires in the
// middle of a routed request or a migration. Events the cluster rejects
// (e.g. a kill that would down the last server) are counted as skipped,
// never retried.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/mds/cluster.h"

namespace d2tree {

enum class FaultKind : std::uint8_t {
  kKill,              // crash the target MDS (volatile stores lost)
  kRevive,            // restart the target empty, GL rebuilt at master
  kAddServer,         // grow the cluster by one fresh MDS
  kDropHeartbeats,    // Monitor presumes the target failed; it drains
  kResumeHeartbeats,  // target reports again and may pull from the pool
  // Network faults (need a transport with a network model — SimNet;
  // rejected → skipped on InProcessTransport):
  kLinkDropStart,          // client⇄target link loses drop_prob of messages
  kLinkDropStop,           // client⇄target link back to lossless
  kMonitorPartitionStart,  // Monitor⇄target cut: heartbeats vanish, drains
  kMonitorPartitionStop,   // Monitor⇄target healed
  // Durability faults (DESIGN.md §7; target is ignored — the crash takes
  // down the whole metadata service):
  kCrashAtSite,  // arm a crash at `site` (optionally tearing the WAL tail)
  kRecover,      // replay the WAL and restart the service
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  std::size_t at_op = 0;  // fires once the aggregate op count reaches this
  FaultKind kind = FaultKind::kKill;
  MdsId target = -1;        // ignored for kAddServer/kCrashAtSite/kRecover
  double drop_prob = 1.0;   // kLinkDropStart only
  CrashSite site = CrashSite::kAfterPrepare;  // kCrashAtSite only
  bool torn_tail = false;                     // kCrashAtSite only

  bool operator==(const FaultEvent&) const = default;
};

/// How many events of each kind FaultSchedule::Random generates. Every
/// drop/partition window start is paired with a later stop.
struct FaultMix {
  std::size_t kills = 2;
  std::size_t revives = 1;
  std::size_t server_additions = 1;
  std::size_t heartbeat_drops = 0;
  std::size_t link_drops = 0;          // client⇄MDS lossy windows
  std::size_t monitor_partitions = 0;  // Monitor⇄MDS partition windows
  double link_drop_probability = 0.35;
  /// Whole-service crash windows: each arms a crash at a seeded-random
  /// named site (durability/crash_point.h) and is paired with a later
  /// kRecover. With `torn_tail_probability` the crash additionally tears
  /// the last WAL record.
  std::size_t crashes = 0;
  double torn_tail_probability = 0.5;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;  // sorted by at_op

  bool empty() const noexcept { return events.empty(); }

  /// Deterministic random schedule over a run of `total_ops` aggregate
  /// client operations against a cluster that starts with `mds_count`
  /// servers. Valid by construction: kills keep at least one server
  /// alive, revives only target previously killed servers, and events
  /// are spread over the middle of the run so faults race live traffic
  /// on both sides. Same (seed, mds_count, total_ops, mix) → same
  /// schedule, always.
  static FaultSchedule Random(std::uint64_t seed, std::size_t mds_count,
                              std::size_t total_ops, const FaultMix& mix = {});

  /// One event per line: "@<at_op> <kind> mds=<target>" ("@<at_op>
  /// add-server" for additions) — the format EXPERIMENTS.md documents.
  std::string ToString() const;
};

class FaultInjector {
 public:
  /// Sorts `schedule` by at_op and arms it against `cluster`.
  FaultInjector(FunctionalCluster& cluster, FaultSchedule schedule);

  /// Called by every client thread once per completed operation: advances
  /// the aggregate op counter and fires all events that became due.
  /// Thread-safe; each event fires exactly once. Must not be called while
  /// holding any cluster lock (the fault operations take the placement
  /// lock exclusively).
  void OnOp();

  /// Aggregate operations observed so far.
  std::size_t ops_seen() const noexcept {
    return ops_.load(std::memory_order_relaxed);
  }
  /// Events dispatched (applied + skipped).
  std::size_t fired() const noexcept {
    return applied_.load(std::memory_order_relaxed) +
           skipped_.load(std::memory_order_relaxed);
  }
  /// Events the cluster accepted.
  std::size_t applied() const noexcept {
    return applied_.load(std::memory_order_relaxed);
  }
  /// Events the cluster rejected (e.g. kill of the last alive server).
  std::size_t skipped() const noexcept {
    return skipped_.load(std::memory_order_relaxed);
  }
  std::size_t event_count() const noexcept { return events_.size(); }

 private:
  /// Dispatches one due event into the cluster's fault operations. Fires
  /// with the injector lock held (so each event fires exactly once) while
  /// the cluster operation takes the placement lock inside — the reason
  /// mu_ ranks *before* every cluster lock in the hierarchy.
  void FireLocked(const FaultEvent& event) D2T_REQUIRES(mu_);

  FunctionalCluster& cluster_;
  std::vector<FaultEvent> events_;  // sorted in the ctor, then immutable
  std::atomic<std::size_t> ops_{0};
  /// at_op of the next unfired event — the lock-free fast-path gate.
  std::atomic<std::size_t> next_at_{std::numeric_limits<std::size_t>::max()};
  /// Serializes firing; held across the cluster fault operations, hence
  /// the outermost rank of the whole hierarchy.
  Mutex mu_ D2T_LOCK_RANK(5);
  std::size_t cursor_ D2T_GUARDED_BY(mu_) = 0;  // first unfired event
  std::atomic<std::size_t> applied_{0};
  std::atomic<std::size_t> skipped_{0};
};

}  // namespace d2tree
