// Shared experiment harness: run one scheme on one workload at one cluster
// size, with dynamic-adjustment rounds and an optional throughput
// simulation — the building block behind the Fig. 5/6/7 benches.
#pragma once

#include <string>
#include <string_view>

#include "d2tree/sim/cluster_sim.h"
#include "d2tree/trace/profiles.h"

namespace d2tree {

struct ExperimentOptions {
  /// Dynamic-adjustment rounds before measuring ("after the subtraces are
  /// replayed to these clusters for 20 times, a relatively balanced status
  /// is maintained", Sec. VI-B).
  std::size_t adjustment_rounds = 20;
  /// Floor on the D2-Tree client local-index miss probability (lease
  /// expiries); subtree churn from the final adjustment round adds on top.
  double base_index_miss = 0.05;
  /// Fraction of the namespace (hottest first) held in baseline clients'
  /// prefix caches (Sec. VII). Matches the GL proportion for fairness.
  double client_cache_fraction = 0.01;
  /// Pending-pool sample size for D2-Tree's Monitor (the paper's MDSs
  /// sample rather than scan, Sec. IV-B); 0 = exact mirror division.
  std::size_t monitor_sample_count = 256;
  bool run_throughput_sim = true;
  SimConfig sim;
};

struct SchemeRunResult {
  std::string scheme;
  std::size_t mds_count = 0;

  // Partition-quality metrics (Sec. III definitions).
  double locality_cost = 0.0;
  double locality = 0.0;   // Eq. (1)
  double balance = 0.0;    // Eq. (2)
  double mu = 0.0;
  double update_cost = 0.0;
  std::size_t moved_nodes_total = 0;  // across all adjustment rounds

  // Throughput simulation results.
  double throughput = 0.0;  // ops/s
  double mean_latency = 0.0;
  double p99_latency = 0.0;
  double lock_wait_total = 0.0;
  double max_utilization = 0.0;
  /// Completion-latency histograms by op class (index = OpClass, µs).
  std::array<LatencyHistogram, kOpClassCount> class_latency;
};

/// Builds the scheme (registry id), partitions `w.tree` over `mds_count`
/// homogeneous servers, runs the adjustment rounds and (optionally) the
/// cluster simulation. Deterministic.
SchemeRunResult RunSchemeExperiment(std::string_view scheme_id,
                                    const Workload& w, std::size_t mds_count,
                                    const ExperimentOptions& options = {});

}  // namespace d2tree
