#include "d2tree/sim/experiment.h"

#include <algorithm>
#include <memory>

#include "d2tree/baselines/registry.h"
#include "d2tree/core/d2tree.h"
#include "d2tree/metrics/metrics.h"

namespace d2tree {

SchemeRunResult RunSchemeExperiment(std::string_view scheme_id,
                                    const Workload& w, std::size_t mds_count,
                                    const ExperimentOptions& options) {
  SchemeRunResult result;
  result.scheme = std::string(scheme_id);
  result.mds_count = mds_count;

  std::unique_ptr<Partitioner> scheme;
  if (scheme_id == "d2tree") {
    // The experiment configuration mirrors the paper's system: the Monitor
    // allocates from a random sample of the pending pool (Sec. IV-B).
    D2TreeConfig cfg;
    cfg.monitor.sample_count = options.monitor_sample_count;
    scheme = std::make_unique<D2TreeScheme>(cfg);
  } else {
    scheme = MakeScheme(scheme_id);
  }
  const MdsCluster cluster = MdsCluster::Homogeneous(mds_count);
  Assignment assignment = scheme->Partition(w.tree, cluster);

  double last_round_churn = 0.0;
  for (std::size_t round = 0; round < options.adjustment_rounds; ++round) {
    RebalanceResult r = scheme->Rebalance(w.tree, cluster, assignment);
    result.moved_nodes_total += r.moved_nodes;
    last_round_churn =
        static_cast<double>(r.moved_nodes) / static_cast<double>(w.tree.size());
    assignment = std::move(r.assignment);
  }

  const LocalityReport loc = ComputeLocality(w.tree, assignment);
  result.locality_cost = loc.cost;
  result.locality = loc.locality;
  const BalanceReport bal = ComputeBalance(w.tree, assignment, cluster);
  result.balance = bal.balance;
  result.mu = bal.mu;
  result.update_cost = ComputeUpdateCost(w.tree, assignment);

  if (options.run_throughput_sim) {
    SimConfig sim = options.sim;
    SimResult sr;
    if (auto* d2 = dynamic_cast<D2TreeScheme*>(scheme.get())) {
      sim.index_miss_prob = std::min(
          0.5, options.base_index_miss + last_round_churn);
      const D2TreeRouter router(w.tree, assignment, d2->local_index(),
                                sim.index_miss_prob);
      sr = RunClusterSim(w.trace, router, mds_count, sim);
    } else {
      const auto client_cache =
          TopPopularityClientCache(w.tree, options.client_cache_fraction);
      const double forward_prob =
          std::min(0.5, options.base_index_miss + last_round_churn);
      const AssignmentRouter router(w.tree, assignment, &client_cache,
                                    forward_prob);
      sr = RunClusterSim(w.trace, router, mds_count, sim);
    }
    result.throughput = sr.throughput;
    result.mean_latency = sr.mean_latency;
    result.p99_latency = sr.p99_latency;
    result.lock_wait_total = sr.lock_wait_total;
    result.max_utilization = sr.MaxUtilization();
    result.class_latency = sr.class_latency;
  }
  return result;
}

}  // namespace d2tree
