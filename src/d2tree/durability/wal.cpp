#include "d2tree/durability/wal.h"

#include <cstring>
#include <fstream>

#include "d2tree/durability/crash_point.h"
#include "d2tree/durability/crc32.h"
#include "d2tree/durability/frame.h"

namespace d2tree {

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kPlacementSnapshot:
      return "placement-snapshot";
    case WalRecordType::kCapacitySnapshot:
      return "capacity-snapshot";
    case WalRecordType::kMigrationIntent:
      return "intent";
    case WalRecordType::kMigrationPrepare:
      return "prepare";
    case WalRecordType::kMigrationCommit:
      return "commit";
    case WalRecordType::kMigrationAbort:
      return "abort";
    case WalRecordType::kGlVersion:
      return "gl-version";
    case WalRecordType::kPullApplied:
      return "pull-applied";
    case WalRecordType::kRenameIntent:
      return "rename-intent";
    case WalRecordType::kRenamePrepare:
      return "rename-prepare";
    case WalRecordType::kRenameCommit:
      return "rename-commit";
    case WalRecordType::kRenameAbort:
      return "rename-abort";
  }
  return "?";
}

const char* CrashSiteName(CrashSite site) {
  switch (site) {
    case CrashSite::kAfterIntent:
      return "after-intent";
    case CrashSite::kAfterPrepare:
      return "after-prepare";
    case CrashSite::kAfterPull:
      return "after-pull";
    case CrashSite::kAfterCommitLocal:
      return "after-commit-local";
    case CrashSite::kAfterGlBump:
      return "after-gl-bump";
    case CrashSite::kAfterRenameIntent:
      return "after-rename-intent";
    case CrashSite::kAfterRenamePrepare:
      return "after-rename-prepare";
    case CrashSite::kAfterRenameApply:
      return "after-rename-apply";
    case CrashSite::kAfterRenameCommit:
      return "after-rename-commit";
  }
  return "?";
}

// Byte writers, the bounds-checked Reader and the CRC frame scan are the
// shared durable-artifact codec (durability/frame.h) — the LSM store's WAL
// and MANIFEST reuse the exact same framing.
using frame::PutDouble;
using frame::PutU32;
using frame::PutU64;
using frame::Reader;

std::vector<std::uint8_t> EncodeWalRecord(const WalRecord& r) {
  std::vector<std::uint8_t> out;
  out.reserve(64 + 4 * r.owners.size() + 8 * r.capacities.size() +
              r.name.size() + r.prev_name.size());
  out.push_back(static_cast<std::uint8_t>(r.type));
  PutU64(out, r.migration_id);
  PutU64(out, static_cast<std::uint64_t>(r.root));
  PutU32(out, static_cast<std::uint32_t>(r.from));
  PutU32(out, static_cast<std::uint32_t>(r.to));
  PutU64(out, r.version);
  PutU64(out, r.count);
  PutU32(out, static_cast<std::uint32_t>(r.owners.size()));
  for (MdsId o : r.owners) PutU32(out, static_cast<std::uint32_t>(o));
  PutU32(out, static_cast<std::uint32_t>(r.capacities.size()));
  for (double c : r.capacities) PutDouble(out, c);
  PutU32(out, static_cast<std::uint32_t>(r.name.size()));
  out.insert(out.end(), r.name.begin(), r.name.end());
  PutU32(out, static_cast<std::uint32_t>(r.prev_name.size()));
  out.insert(out.end(), r.prev_name.begin(), r.prev_name.end());
  return out;
}

std::optional<WalRecord> DecodeWalRecord(const std::uint8_t* data,
                                         std::size_t len) {
  if (len == 0) return std::nullopt;
  WalRecord r;
  if (data[0] > static_cast<std::uint8_t>(WalRecordType::kRenameAbort))
    return std::nullopt;
  r.type = static_cast<WalRecordType>(data[0]);
  Reader in(data + 1, len - 1);
  std::uint64_t root = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint32_t n = 0;
  if (!in.U64(&r.migration_id) || !in.U64(&root) || !in.U32(&from) ||
      !in.U32(&to) || !in.U64(&r.version) || !in.U64(&r.count) ||
      !in.U32(&n)) {
    return std::nullopt;
  }
  r.root = static_cast<NodeId>(root);
  r.from = static_cast<MdsId>(from);
  r.to = static_cast<MdsId>(to);
  if (in.remaining() < 4ULL * n) return std::nullopt;
  r.owners.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t o = 0;
    in.U32(&o);
    r.owners.push_back(static_cast<MdsId>(o));
  }
  if (!in.U32(&n) || in.remaining() < 8ULL * n) return std::nullopt;
  r.capacities.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    double c = 0.0;
    in.Double(&c);
    r.capacities.push_back(c);
  }
  if (!in.U32(&n) || in.remaining() < n) return std::nullopt;
  r.name.assign(reinterpret_cast<const char*>(data + (len - in.remaining())),
                n);
  in.Skip(n);
  if (!in.U32(&n) || in.remaining() < n) return std::nullopt;
  r.prev_name.assign(
      reinterpret_cast<const char*>(data + (len - in.remaining())), n);
  in.Skip(n);
  if (!in.exhausted() || in.failed()) return std::nullopt;
  return r;
}

void Wal::Append(const WalRecord& record) {
  const std::vector<std::uint8_t> payload = EncodeWalRecord(record);
  MutexLock lock(&mu_);
  frame::AppendFrame(bytes_, payload);
  ++appended_;
}

std::vector<WalRecord> Wal::Replay(WalReplayStats* stats) const {
  std::vector<std::uint8_t> snapshot;
  {
    MutexLock lock(&mu_);
    snapshot = bytes_;
  }
  std::vector<WalRecord> records;
  const frame::ScanStats scan = frame::ScanFrames(
      snapshot.data(), snapshot.size(),
      [&records](const std::uint8_t* payload, std::size_t len) {
        auto record = DecodeWalRecord(payload, len);
        if (!record.has_value()) return false;  // CRC collision on garbage
        records.push_back(std::move(*record));
        return true;
      });
  if (stats != nullptr) {
    stats->records = scan.frames;
    stats->bytes_scanned = scan.bytes_scanned;
    stats->torn_tail = scan.torn_tail;
    stats->torn_bytes = scan.torn_bytes;
  }
  return records;
}

void Wal::TruncateTail(std::size_t bytes) {
  MutexLock lock(&mu_);
  bytes_.resize(bytes_.size() - std::min(bytes, bytes_.size()));
}

std::size_t Wal::size_bytes() const {
  MutexLock lock(&mu_);
  return bytes_.size();
}

std::size_t Wal::records_appended() const {
  MutexLock lock(&mu_);
  return appended_;
}

std::vector<std::uint8_t> Wal::Bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

void Wal::Assign(std::vector<std::uint8_t> bytes) {
  MutexLock lock(&mu_);
  bytes_ = std::move(bytes);
  appended_ = 0;  // unknown provenance; replay counts what parses
}

bool Wal::SaveTo(const std::string& path) const {
  const std::vector<std::uint8_t> snapshot = Bytes();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(snapshot.data()),
            static_cast<std::streamsize>(snapshot.size()));
  return static_cast<bool>(out);
}

bool Wal::LoadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  Assign(std::move(bytes));
  return true;
}

}  // namespace d2tree
