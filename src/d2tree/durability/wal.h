// Append-only write-ahead log for the metadata service (DESIGN.md §7).
//
// The Monitor and every MDS journal their durable state transitions here
// before applying them: pending-pool pushes/pulls travel as
// INTENT/PREPARE/COMMIT/ABORT records keyed by a monotonically assigned
// migration id, global-layer version bumps and capacity/placement
// snapshots checkpoint the cluster control state, and a receiving MDS
// journals every pull it applied so replay can deduplicate re-deliveries.
//
// On-disk/in-memory framing (all integers little-endian):
//
//   ┌────────────┬────────────┬──────────────────────────────┐
//   │ u32 length │ u32 crc32  │ payload (`length` bytes)      │
//   └────────────┴────────────┴──────────────────────────────┘
//
// The CRC covers the payload only. Replay walks the frames in order and
// stops at the first frame whose header is short, whose payload runs past
// the buffer, or whose CRC mismatches — a *torn tail*, the footprint of a
// crash mid-append. Everything before the tear is valid; the tear itself
// is reported so recovery can truncate it and append fresh records.
//
// Thread-safety: Append/Replay/TruncateTail may be called concurrently;
// one Mutex (rank 45 — between the per-store lock and the SimNet link
// locks, see DESIGN.md "Lock hierarchy") guards the byte buffer. Appends
// are leaf operations: no other lock is ever acquired while holding it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/nstree/tree.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

enum class WalRecordType : std::uint8_t {
  /// Checkpoint: owner per local-layer subtree (index-aligned with the
  /// scheme's subtree list) + the GL master version at snapshot time.
  kPlacementSnapshot = 0,
  /// Checkpoint: per-MDS capacities the Monitor plans with.
  kCapacitySnapshot,
  /// Two-phase handoff, Monitor side (all keyed by migration_id):
  kMigrationIntent,   // migration planned: subtree `root`, from → to
  kMigrationPrepare,  // records extracted and parked in the pending pool
  kMigrationCommit,   // records delivered, ownership durable at `to`
  kMigrationAbort,    // rolled back: subtree stays with `from`
  /// Global-layer master version bump (journaled before the broadcast).
  kGlVersion,
  /// MDS side: this server applied the pull of `migration_id`
  /// (`count` records) — replayed to rebuild the receiver's dedup set.
  kPullApplied,
  /// Atomic rename transaction (DESIGN.md §8), keyed by a rename id drawn
  /// from the same monotone counter as migration ids:
  kRenameIntent,   // rename planned: node `root`, new name in `name`,
                   // old name in `prev_name`, source owner `from` →
                   // destination owner `to` (from == to for a
                   // same-server or GL rename)
  kRenamePrepare,  // source subtree parked (`count` records extracted)
  kRenameCommit,   // rename + re-home durable; `version` = GL version
                   // bumped at commit (client cache invalidation)
  kRenameAbort,    // rolled back: name and ownership unchanged (recovery
                   // restores `prev_name` if the apply step had run)
};

const char* WalRecordTypeName(WalRecordType type);

/// One journal entry. Which fields are meaningful depends on `type`;
/// unused fields encode/decode as zero/empty.
struct WalRecord {
  WalRecordType type = WalRecordType::kPlacementSnapshot;
  std::uint64_t migration_id = 0;
  NodeId root = kInvalidNode;  // migrated subtree's root
  MdsId from = -1;
  MdsId to = -1;
  std::uint64_t version = 0;  // GL master version (snapshots, kGlVersion)
  std::uint64_t count = 0;    // record counts (prepare/pull payload sizes)
  std::vector<MdsId> owners;  // kPlacementSnapshot
  std::vector<double> capacities;  // kCapacitySnapshot
  std::string name;       // kRename*: the post-rename component name
  std::string prev_name;  // kRename*: the pre-rename name (abort restores it)

  bool operator==(const WalRecord&) const = default;
};

/// Serializes `record` into the frame payload format (no frame header).
std::vector<std::uint8_t> EncodeWalRecord(const WalRecord& record);
/// Decodes one payload; nullopt on malformed input (fsck treats that as a
/// corrupt record even when the CRC happens to match).
std::optional<WalRecord> DecodeWalRecord(const std::uint8_t* data,
                                         std::size_t len);

/// Outcome of one replay pass.
struct WalReplayStats {
  std::size_t records = 0;        // well-formed records decoded
  std::size_t bytes_scanned = 0;  // valid prefix length
  bool torn_tail = false;         // trailing bytes did not frame a record
  std::size_t torn_bytes = 0;     // length of the torn fragment
};

class Wal {
 public:
  Wal() = default;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Frames and appends one record (length + CRC32 + payload).
  void Append(const WalRecord& record);

  /// Decodes every well-formed record from the start of the log; fills
  /// `stats` (optional) with the replay outcome including torn-tail
  /// detection. Never throws on corrupt input — the valid prefix wins.
  std::vector<WalRecord> Replay(WalReplayStats* stats = nullptr) const;

  /// Torn-write injection: drops the last `bytes` bytes of the log, as if
  /// the process died mid-append. Clamped to the log size; dropping fewer
  /// bytes than the last frame leaves a torn tail replay must skip.
  void TruncateTail(std::size_t bytes);

  /// Log size in bytes / records appended since construction. The record
  /// count is the *append* count; after TruncateTail the replayable count
  /// (WalReplayStats::records) may be smaller.
  std::size_t size_bytes() const;
  std::size_t records_appended() const;

  /// Raw byte snapshot (d2fsck, tests).
  std::vector<std::uint8_t> Bytes() const;
  /// Replaces the log contents wholesale (file load).
  void Assign(std::vector<std::uint8_t> bytes);

  /// File persistence for the d2fsck CLI and the recovery bench.
  [[nodiscard]] bool SaveTo(const std::string& path) const;
  [[nodiscard]] bool LoadFrom(const std::string& path);

 private:
  /// Journal buffer lock — leaf rank 45 (DESIGN.md "Lock hierarchy"):
  /// taken with the cluster's placement/GL locks (20/30) or a store lock
  /// (40) already held, never the other way around.
  mutable Mutex mu_ D2T_LOCK_RANK(45);
  std::vector<std::uint8_t> bytes_ D2T_GUARDED_BY(mu_);
  std::size_t appended_ D2T_GUARDED_BY(mu_) = 0;
};

}  // namespace d2tree
