// Named crash sites of the two-phase subtree handoff (DESIGN.md §7).
//
// The migration protocol journals INTENT → PREPARE → COMMIT records to the
// Monitor's write-ahead log; each named site below sits *between* two of
// those durable steps, so arming a crash there (FaultKind::kCrashAtSite,
// or FunctionalCluster::ArmCrash directly) reproduces exactly one of the
// partial-failure windows recovery must handle:
//
//   kAfterIntent       intent journaled, nothing moved       → roll back
//   kAfterPrepare      records parked in the pending pool    → roll forward
//   kAfterPull         pull delivered, receiver journaled it → roll forward
//   kAfterCommitLocal  Monitor commit durable, in-memory
//                      placement not yet updated             → roll forward
//   kAfterGlBump       GL version bump journaled, replica
//                      broadcast incomplete                  → rebuild at
//                                                              WAL version
//
// The rename transaction (DESIGN.md §8) adds four sites of its own, one
// per window of the kRenameIntent → kRenamePrepare → apply →
// kRenameCommit protocol:
//
//   kAfterRenameIntent   intent journaled, namespace untouched → roll back
//   kAfterRenamePrepare  source subtree parked, rename not yet
//                        applied anywhere                      → roll forward
//   kAfterRenameApply    destination journaled the transfer,
//                        namespace renamed, ownership and GL
//                        version not yet updated               → roll forward
//   kAfterRenameCommit   commit durable, in-memory indexes
//                        possibly stale                        → replay
//                                                                idempotently
//
// A crash can additionally tear the last WAL record (torn-write
// truncation); replay must then treat the torn record as never written.
#pragma once

#include <cstddef>
#include <cstdint>

namespace d2tree {

enum class CrashSite : std::uint8_t {
  kAfterIntent = 0,
  kAfterPrepare,
  kAfterPull,
  kAfterCommitLocal,
  kAfterGlBump,
  kAfterRenameIntent,
  kAfterRenamePrepare,
  kAfterRenameApply,
  kAfterRenameCommit,
};
inline constexpr std::size_t kCrashSiteCount = 9;
/// First rename-transaction site (the sites before it belong to the
/// migration/GL protocols; d2fsck's demo mode switches driver on this).
inline constexpr std::size_t kFirstRenameCrashSite = 5;

const char* CrashSiteName(CrashSite site);

}  // namespace d2tree
