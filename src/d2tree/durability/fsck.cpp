#include "d2tree/durability/fsck.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <unordered_set>

#include "d2tree/durability/frame.h"
#include "d2tree/mds/cluster.h"
#include "d2tree/storage/record_codec.h"
#include "d2tree/storage/sstable.h"

namespace d2tree {

namespace {

void AddIssue(FsckReport& report, std::string check, std::string detail) {
  report.issues.push_back({std::move(check), std::move(detail)});
}

std::string IdStr(std::uint64_t id) { return std::to_string(id); }

/// Per-migration fold of a journal, shared by both modes.
struct MigrationFold {
  bool intent = false;
  bool prepared = false;
  bool committed = false;
  bool aborted = false;
};

std::map<std::uint64_t, MigrationFold> FoldMigrations(
    const std::vector<WalRecord>& journal, FsckReport& report) {
  std::map<std::uint64_t, MigrationFold> folds;
  std::uint64_t last_gl_version = 0;
  for (const WalRecord& r : journal) {
    switch (r.type) {
      case WalRecordType::kMigrationIntent: {
        MigrationFold& f = folds[r.migration_id];
        if (f.intent)
          AddIssue(report, "journal.duplicate-intent",
                   "migration " + IdStr(r.migration_id) +
                       " has two INTENT records");
        f.intent = true;
        break;
      }
      case WalRecordType::kMigrationPrepare: {
        MigrationFold& f = folds[r.migration_id];
        if (!f.intent)
          AddIssue(report, "journal.prepare-without-intent",
                   "migration " + IdStr(r.migration_id) +
                       " PREPARE precedes its INTENT");
        f.prepared = true;
        break;
      }
      case WalRecordType::kMigrationCommit: {
        MigrationFold& f = folds[r.migration_id];
        if (!f.prepared)
          AddIssue(report, "journal.commit-without-prepare",
                   "migration " + IdStr(r.migration_id) +
                       " COMMIT without a PREPARE");
        f.committed = true;
        break;
      }
      case WalRecordType::kMigrationAbort: {
        MigrationFold& f = folds[r.migration_id];
        if (!f.intent)
          AddIssue(report, "journal.abort-without-intent",
                   "migration " + IdStr(r.migration_id) +
                       " ABORT without an INTENT");
        f.aborted = true;
        break;
      }
      case WalRecordType::kGlVersion:
        // Version bumps are drawn from a monotone counter and journaled
        // before the broadcast; a regression means records were replayed
        // out of order or a journal was stitched from two histories.
        if (r.version < last_gl_version)
          AddIssue(report, "journal.gl-version-regressed",
                   "GL version record " + IdStr(r.version) +
                       " journaled after version " + IdStr(last_gl_version));
        last_gl_version = std::max(last_gl_version, r.version);
        break;
      case WalRecordType::kPlacementSnapshot:
      case WalRecordType::kCapacitySnapshot:
      case WalRecordType::kPullApplied:
        break;  // checkpoints and MDS-side records carry no migration fold
      case WalRecordType::kRenameIntent:
      case WalRecordType::kRenamePrepare:
      case WalRecordType::kRenameCommit:
      case WalRecordType::kRenameAbort:
        break;  // folded by FoldRenames
    }
  }
  for (const auto& [id, f] : folds) {
    if (f.committed && f.aborted)
      AddIssue(report, "journal.committed-and-aborted",
               "migration " + IdStr(id) + " is both committed and aborted");
    if (f.committed)
      ++report.migrations_committed;
    else if (f.aborted)
      ++report.migrations_aborted;
    else
      ++report.migrations_in_flight;
  }
  return folds;
}

/// Per-rename fold (DESIGN.md §8): same shape as migrations, plus the
/// rename-specific invariants — intent ids strictly increasing in journal
/// order (shared monotone counter) and a non-empty post-rename name on
/// every record.
std::map<std::uint64_t, MigrationFold> FoldRenames(
    const std::vector<WalRecord>& journal, FsckReport& report) {
  std::map<std::uint64_t, MigrationFold> folds;
  std::uint64_t last_intent_id = 0;
  for (const WalRecord& r : journal) {
    switch (r.type) {
      case WalRecordType::kRenameIntent: {
        MigrationFold& f = folds[r.migration_id];
        if (f.intent)
          AddIssue(report, "journal.rename-duplicate-intent",
                   "rename " + IdStr(r.migration_id) +
                       " has two INTENT records");
        f.intent = true;
        if (r.migration_id <= last_intent_id)
          AddIssue(report, "journal.rename-id-not-monotone",
                   "rename INTENT " + IdStr(r.migration_id) +
                       " journaled after INTENT " + IdStr(last_intent_id));
        last_intent_id = std::max(last_intent_id, r.migration_id);
        if (r.name.empty())
          AddIssue(report, "journal.rename-empty-name",
                   "rename " + IdStr(r.migration_id) +
                       " INTENT carries no post-rename name");
        break;
      }
      case WalRecordType::kRenamePrepare: {
        MigrationFold& f = folds[r.migration_id];
        if (!f.intent)
          AddIssue(report, "journal.rename-prepare-without-intent",
                   "rename " + IdStr(r.migration_id) +
                       " PREPARE precedes its INTENT");
        f.prepared = true;
        if (r.name.empty())
          AddIssue(report, "journal.rename-empty-name",
                   "rename " + IdStr(r.migration_id) +
                       " PREPARE carries no post-rename name");
        break;
      }
      case WalRecordType::kRenameCommit: {
        MigrationFold& f = folds[r.migration_id];
        if (!f.prepared)
          AddIssue(report, "journal.rename-commit-without-prepare",
                   "rename " + IdStr(r.migration_id) +
                       " COMMIT without a PREPARE");
        f.committed = true;
        break;
      }
      case WalRecordType::kRenameAbort: {
        MigrationFold& f = folds[r.migration_id];
        if (!f.intent)
          AddIssue(report, "journal.rename-abort-without-intent",
                   "rename " + IdStr(r.migration_id) +
                       " ABORT without an INTENT");
        f.aborted = true;
        break;
      }
      case WalRecordType::kPlacementSnapshot:
      case WalRecordType::kCapacitySnapshot:
      case WalRecordType::kMigrationIntent:
      case WalRecordType::kMigrationPrepare:
      case WalRecordType::kMigrationCommit:
      case WalRecordType::kMigrationAbort:
      case WalRecordType::kGlVersion:
      case WalRecordType::kPullApplied:
        break;  // folded by FoldMigrations
    }
  }
  for (const auto& [id, f] : folds) {
    if (f.committed && f.aborted)
      AddIssue(report, "journal.rename-committed-and-aborted",
               "rename " + IdStr(id) + " is both committed and aborted");
    if (f.committed)
      ++report.renames_committed;
    else if (f.aborted)
      ++report.renames_aborted;
    else
      ++report.renames_in_flight;
  }
  return folds;
}

}  // namespace

FsckReport FsckJournal(const Wal& wal) {
  FsckReport report;
  WalReplayStats stats;
  const std::vector<WalRecord> journal = wal.Replay(&stats);
  report.wal_records = stats.records;
  report.torn_tail = stats.torn_tail;
  report.torn_bytes = stats.torn_bytes;
  FoldMigrations(journal, report);
  FoldRenames(journal, report);
  return report;
}

FsckReport FsckCluster(const FunctionalCluster& cluster) {
  FsckReport report = FsckJournal(cluster.monitor_wal());

  if (cluster.crashed()) {
    // Nothing live to audit: the volatile world is gone by definition.
    AddIssue(report, "cluster.crashed",
             "metadata service is down; run Recover() before auditing");
    return report;
  }

  // The cluster's own placement audit: every LL record exactly once at
  // its owner, GL replicated on every live server, orphans and parked
  // nodes held by nobody, record ↔ namespace agreement.
  std::string err;
  if (!cluster.CheckConsistency(&err))
    AddIssue(report, "cluster.placement-audit", err);

  // Local index ⇄ Monitor placement agreement, subtree by subtree: the
  // owner clients route to must be the owner the planner committed, and
  // the assignment table must paint the subtree root the same way.
  const D2TreeScheme& scheme = cluster.scheme();
  const Assignment& assignment = cluster.assignment();
  const auto& subtrees = scheme.layers().subtrees;
  const auto& owners = scheme.subtree_owners();
  const std::size_t mds_count = cluster.mds_count();
  for (std::size_t i = 0; i < subtrees.size() && i < owners.size(); ++i) {
    const MdsId owner = owners[i];
    if (owner < 0 || static_cast<std::size_t>(owner) >= mds_count) {
      AddIssue(report, "placement.owner-out-of-range",
               "subtree " + std::to_string(i) + " owned by MDS " +
                   std::to_string(owner) + " of " +
                   std::to_string(mds_count));
      continue;
    }
    const auto indexed = scheme.local_index().OwnerOfSubtree(subtrees[i].root);
    if (!indexed.has_value() || *indexed != owner)
      AddIssue(report, "placement.index-disagrees",
               "subtree " + std::to_string(i) + ": index routes to " +
                   (indexed ? std::to_string(*indexed) : "nobody") +
                   ", Monitor says " + std::to_string(owner));
    if (assignment.OwnerOf(subtrees[i].root) != owner)
      AddIssue(report, "placement.assignment-disagrees",
               "subtree " + std::to_string(i) + ": assignment says " +
                   std::to_string(assignment.OwnerOf(subtrees[i].root)) +
                   ", Monitor says " + std::to_string(owner));
  }

  // Every live GL replica at the master version.
  const std::uint64_t master = cluster.gl_master_version();
  for (MdsId k = 0; k < static_cast<MdsId>(mds_count); ++k) {
    if (!cluster.IsServerAlive(k)) continue;
    const std::uint64_t v = cluster.server(k).gl_version();
    if (v != master)
      AddIssue(report, "gl.replica-stale",
               "MDS " + std::to_string(k) + " GL replica at version " +
                   std::to_string(v) + ", master is " +
                   std::to_string(master));
  }

  // Cross-journal: every pull an MDS journaled as applied must trace back
  // to a migration — or a cross-server rename, which ships its subtree
  // through the same deduplicated transfer — the Monitor journaled.
  std::unordered_set<std::uint64_t> known;
  for (const WalRecord& r : cluster.monitor_wal().Replay())
    if (r.type == WalRecordType::kMigrationIntent ||
        r.type == WalRecordType::kRenameIntent)
      known.insert(r.migration_id);
  for (MdsId k = 0; k < static_cast<MdsId>(mds_count); ++k) {
    for (const WalRecord& r : cluster.mds_wal(k).Replay()) {
      if (r.type != WalRecordType::kPullApplied) continue;
      if (!known.contains(r.migration_id))
        AddIssue(report, "journal.unknown-pull",
                 "MDS " + std::to_string(k) + " applied pull of migration " +
                     IdStr(r.migration_id) + " the Monitor never journaled");
    }
  }

  // Journal-in-flight migrations must each be a parked handoff awaiting
  // re-delivery — an in-flight record with nothing parked means a
  // migration was dropped on the floor.
  report.parked_nodes = cluster.ParkedNodes().size();
  const std::size_t parked = cluster.parked_migration_count();
  if (report.migrations_in_flight != parked)
    AddIssue(report, "journal.in-flight-unaccounted",
             std::to_string(report.migrations_in_flight) +
                 " journal-in-flight migrations vs " + std::to_string(parked) +
                 " parked handoffs");

  // Renames never park: a rename without a terminal record on a cluster
  // that answers clients means a transaction was dropped on the floor
  // (a crashed cluster reports cluster.crashed above instead).
  if (report.renames_in_flight != 0)
    AddIssue(report, "journal.rename-in-flight",
             std::to_string(report.renames_in_flight) +
                 " rename transaction(s) without a terminal record on a "
                 "live cluster");

  // Path integrity: every node's reconstructed path resolves back to
  // exactly that node — renames must never alias two nodes onto one path
  // (two owners would answer it) or strand a path without a resolver.
  std::string path_err;
  const std::size_t aliased = cluster.CheckPathIntegrity(&path_err);
  if (aliased != 0)
    AddIssue(report, "namespace.path-aliased",
             std::to_string(aliased) + " node(s) fail the path round-trip; "
                                       "first: " +
                 path_err);

  // A torn tail on a *running* cluster means a crash footprint was never
  // truncated — recovery did not run or did not finish.
  if (report.torn_tail)
    AddIssue(report, "journal.torn-tail-live",
             "running cluster's journal ends in a torn record (" +
                 std::to_string(report.torn_bytes) + " bytes)");

  // Deep store-engine audit of every live server's local store: the LSM
  // backend re-verifies each sealed table (footer, CRCs, ordering, bloom)
  // plus its live-count bookkeeping; the memory engine returns nothing.
  for (MdsId k = 0; k < static_cast<MdsId>(mds_count); ++k) {
    if (!cluster.IsServerAlive(k)) continue;
    for (const std::string& issue : cluster.server(k).local().AuditStorage())
      AddIssue(report, "store.engine",
               "MDS " + std::to_string(k) + ": " + issue);
  }

  return report;
}

FsckReport FsckStoreDir(const std::string& dir) {
  namespace fs = std::filesystem;
  FsckReport report;
  const auto read_file = [](const fs::path& p, std::vector<std::uint8_t>* out) {
    std::ifstream in(p, std::ios::binary);
    if (!in.is_open()) return false;
    out->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    return !in.bad();
  };

  // MANIFEST: the ordered (oldest → newest) table list. It is replaced
  // atomically (tmp + rename), never appended, so any tear is corruption.
  std::vector<std::string> listed;
  std::vector<std::uint8_t> bytes;
  if (!read_file(fs::path(dir) / "MANIFEST", &bytes)) {
    AddIssue(report, "store.no-manifest",
             dir + " has no readable MANIFEST (not a store directory?)");
    return report;
  }
  const frame::ScanStats mstats = frame::ScanFrames(
      bytes.data(), bytes.size(),
      [&listed](const std::uint8_t* payload, std::size_t len) {
        frame::Reader r(payload, len);
        std::uint64_t seq = 0;
        std::uint32_t name_len = 0;
        if (!r.U64(&seq) || !r.U32(&name_len) || r.remaining() != name_len)
          return false;
        listed.emplace_back(reinterpret_cast<const char*>(payload + 12),
                            name_len);
        return true;
      });
  if (mstats.torn_tail)
    AddIssue(report, "store.manifest-torn",
             "MANIFEST ends in a torn/undecodable frame (" +
                 std::to_string(mstats.torn_bytes) + " bytes)");

  // Every listed table must exist and pass the full offline audit.
  std::unordered_set<std::string> listed_set;
  for (const std::string& name : listed) {
    listed_set.insert(name);
    const fs::path table = fs::path(dir) / name;
    std::error_code ec;
    if (!fs::exists(table, ec)) {
      AddIssue(report, "store.table-missing",
               name + " is in the MANIFEST but not on disk");
      continue;
    }
    const SSTableAudit audit = AuditSSTable(table.string());
    ++report.store_tables;
    report.store_entries += audit.entries;
    report.store_tombstones += audit.tombstones;
    for (const std::string& issue : audit.issues)
      AddIssue(report, "store.sstable", name + ": " + issue);
  }

  // A .sst file the MANIFEST does not claim is a leak (a crash between
  // seal and manifest rewrite leaves one; the engine sweeps it on open).
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.ends_with(".sst") &&
        !listed_set.contains(name)) {
      AddIssue(report, "store.stray-table",
               name + " is on disk but not in the MANIFEST");
    }
  }

  // Engine WAL: each group-commit frame must decode as a put (record
  // codec) or a remove (u32 id). An undecodable or cut-short tail is the
  // footprint of a kill mid-append — reported, and truncated on the next
  // engine open; frames after it never became visible.
  bytes.clear();
  if (read_file(fs::path(dir) / "wal.log", &bytes)) {
    const frame::ScanStats wstats = frame::ScanFrames(
        bytes.data(), bytes.size(),
        [](const std::uint8_t* payload, std::size_t len) {
          if (len == 0) return false;
          if (payload[0] == 1)
            return DecodeInodeRecord(payload + 1, len - 1).has_value();
          return payload[0] == 2 && len == 5;
        });
    report.store_wal_records = wstats.frames;
    report.torn_tail = wstats.torn_tail;
    report.torn_bytes = wstats.torn_bytes;
  }
  return report;
}

std::string FormatFsckReport(const FsckReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "d2fsck: %zu journal records%s, migrations: %zu committed / "
                "%zu aborted / %zu in flight, renames: %zu committed / "
                "%zu aborted / %zu in flight, %zu parked nodes\n",
                report.wal_records,
                report.torn_tail ? " (torn tail)" : "",
                report.migrations_committed, report.migrations_aborted,
                report.migrations_in_flight, report.renames_committed,
                report.renames_aborted, report.renames_in_flight,
                report.parked_nodes);
  out += line;
  if (report.store_tables != 0 || report.store_entries != 0 ||
      report.store_wal_records != 0) {
    std::snprintf(line, sizeof(line),
                  "d2fsck: store: %zu sealed table(s), %zu live entries, "
                  "%zu tombstones, %zu engine-WAL records\n",
                  report.store_tables, report.store_entries,
                  report.store_tombstones, report.store_wal_records);
    out += line;
  }
  for (const FsckIssue& issue : report.issues) {
    std::snprintf(line, sizeof(line), "  FAIL %s: %s\n", issue.check.c_str(),
                  issue.detail.c_str());
    out += line;
  }
  out += report.clean() ? "  clean\n" : "  NOT CLEAN\n";
  return out;
}

}  // namespace d2tree
