// CRC-32 (IEEE 802.3 polynomial, reflected) for WAL record integrity.
//
// Every write-ahead-log record carries the checksum of its payload so
// replay can distinguish a torn tail (the crash landed mid-write) from a
// well-formed record — the same framing Lustre's MDS journal and classic
// ARIES logs use. Table-driven, one table built at first use; no
// dependency beyond <cstdint>.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace d2tree {

namespace internal {

inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

/// CRC-32 of `len` bytes at `data` (initial value per the standard).
inline std::uint32_t Crc32(const void* data, std::size_t len) {
  const auto& table = internal::Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace d2tree
