// d2fsck — the metadata consistency checker (DESIGN.md §7).
//
// Two audit modes share one report type:
//
//   * FsckJournal — offline: walks a write-ahead log (a live Wal or one
//     loaded from disk by the d2fsck CLI) and verifies the migration
//     state machine record by record: every PREPARE follows its INTENT,
//     every COMMIT its PREPARE, and no migration id is ever both
//     committed and aborted. Rename transactions (DESIGN.md §8) get the
//     same state-machine audit plus two of their own: rename intent ids
//     must be strictly increasing in journal order (they draw from the
//     shared monotone counter), and every rename record must carry the
//     post-rename name. Torn tails are reported, not flagged — a
//     torn last record is the legitimate footprint of a crash, it is
//     *acting on* a torn log without truncating it that corrupts.
//
//   * FsckCluster — online: the journal audit plus the live invariants of
//     a FunctionalCluster — every local-layer subtree has exactly one
//     owner and its records sit exactly there (via the cluster's own
//     placement audit), the client-visible local index agrees with the
//     Monitor's placement subtree by subtree, every live GL replica is at
//     the master version, every pull an MDS journaled as applied traces
//     back to a Monitor-journaled migration or rename, and every
//     journal-in-flight migration is accounted for by a parked handoff.
//     Rename invariants on a live cluster: no rename may be journal-in-
//     flight (renames are synchronous — only a crash leaves one open, and
//     then the cluster reports crashed instead), and every node's
//     reconstructed path must resolve back to exactly that node, so no
//     path ever resolves to two owners and no renamed subtree is
//     orphaned from the namespace.
//
// A clean report after Recover() is the system's crash-consistency
// criterion; the property sweep in tests/test_crash_recovery.cpp asserts
// it across every named crash site × random fault schedules.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "d2tree/durability/wal.h"

namespace d2tree {

class FunctionalCluster;

/// One violated invariant: which check tripped, and the evidence.
struct FsckIssue {
  std::string check;
  std::string detail;
};

struct FsckReport {
  std::vector<FsckIssue> issues;
  /// Journal statistics (filled by both modes).
  std::size_t wal_records = 0;
  bool torn_tail = false;
  std::size_t torn_bytes = 0;
  std::size_t migrations_committed = 0;
  std::size_t migrations_aborted = 0;
  /// Intent/prepare without a terminal record — awaiting recovery or a
  /// parked re-delivery.
  std::size_t migrations_in_flight = 0;
  /// Rename transactions folded from the journal (DESIGN.md §8).
  std::size_t renames_committed = 0;
  std::size_t renames_aborted = 0;
  /// Rename intent/prepare without a terminal record. Unlike migrations
  /// these never park: on a live cluster this must be 0.
  std::size_t renames_in_flight = 0;
  /// Cluster mode only: nodes pinned by parked handoffs.
  std::size_t parked_nodes = 0;
  /// Store mode (FsckStoreDir) / cluster mode with a persistent backend:
  /// sealed tables audited and the live entries / tombstones they carry.
  std::size_t store_tables = 0;
  std::size_t store_entries = 0;
  std::size_t store_tombstones = 0;
  /// Store mode only: group-commit frames the engine WAL holds. A torn
  /// engine-WAL tail is reported through torn_tail/torn_bytes — the
  /// legitimate footprint of a kill, truncated on the next open.
  std::size_t store_wal_records = 0;

  bool clean() const noexcept { return issues.empty(); }
};

/// Offline journal audit (see file comment).
FsckReport FsckJournal(const Wal& wal);

/// Online cluster audit: journal checks + live placement invariants,
/// plus each live server's deep store-engine audit (LSM backends verify
/// every sealed table's footer, CRCs, ordering and bloom completeness;
/// the memory engine audits trivially clean).
FsckReport FsckCluster(const FunctionalCluster& cluster);

/// Offline on-disk audit of one LSM store-engine directory (DESIGN.md
/// §11): MANIFEST framing and table list, the full AuditSSTable pass over
/// every listed table, stray or missing .sst files, and a frame-by-frame
/// decode of the engine WAL. A torn WAL tail is reported, not flagged —
/// like a Monitor-journal tear it is the footprint of a crash; a torn
/// MANIFEST *is* flagged (it is rewritten atomically, never appended).
FsckReport FsckStoreDir(const std::string& dir);

/// Human-readable rendering for the CLI: one line per issue plus the
/// summary counters.
std::string FormatFsckReport(const FsckReport& report);

}  // namespace d2tree
