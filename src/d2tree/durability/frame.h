// Shared byte-level codec for durable artifacts (DESIGN.md §7, §11).
//
// Every durable byte stream in the system — the Monitor/MDS journals
// (durability/wal.h), the LSM engine's memtable WAL and MANIFEST, and the
// SSTable blocks (storage/) — uses the same little-endian integer layout
// and the same CRC frame:
//
//   ┌────────────┬────────────┬──────────────────────────────┐
//   │ u32 length │ u32 crc32  │ payload (`length` bytes)      │
//   └────────────┴────────────┴──────────────────────────────┘
//
// The CRC covers the payload only. A scan walks frames in order and stops
// at the first short header, overlong payload, or CRC mismatch — a *torn
// tail*, the footprint of a crash mid-append. This header is the single
// definition of that framing; wal.cpp and the storage engine both build on
// it so d2fsck audits one format, not three.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "d2tree/durability/crc32.h"

namespace d2tree::frame {

inline constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc

inline void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void PutDouble(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline std::uint32_t LoadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t LoadU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Bounds-checked little-endian reader over one payload.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  bool U32(std::uint32_t* v) {
    if (len_ - pos_ < 4) return failed_ = true, false;
    *v = LoadU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool U64(std::uint64_t* v) {
    if (len_ - pos_ < 8) return failed_ = true, false;
    *v = LoadU64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool U8(std::uint8_t* v) {
    if (len_ - pos_ < 1) return failed_ = true, false;
    *v = data_[pos_++];
    return true;
  }
  bool Double(double* v) {
    std::uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  /// Raw byte span of length `n`; nullptr when the payload is short.
  const std::uint8_t* Bytes(std::size_t n) {
    if (len_ - pos_ < n) {
      failed_ = true;
      return nullptr;
    }
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  void Skip(std::size_t n) {
    if (len_ - pos_ < n) {
      failed_ = true;
      return;
    }
    pos_ += n;
  }
  bool exhausted() const { return pos_ == len_; }
  bool failed() const { return failed_; }
  std::size_t remaining() const { return len_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Frames one payload (length + CRC32 + payload) onto `out`.
inline void AppendFrame(std::vector<std::uint8_t>& out,
                        const std::uint8_t* payload, std::size_t len) {
  PutU32(out, static_cast<std::uint32_t>(len));
  PutU32(out, Crc32(payload, len));
  out.insert(out.end(), payload, payload + len);
}

inline void AppendFrame(std::vector<std::uint8_t>& out,
                        const std::vector<std::uint8_t>& payload) {
  AppendFrame(out, payload.data(), payload.size());
}

/// Outcome of one frame scan.
struct ScanStats {
  std::size_t frames = 0;         // well-formed frames visited
  std::size_t bytes_scanned = 0;  // valid prefix length
  bool torn_tail = false;         // trailing bytes did not frame a payload
  std::size_t torn_bytes = 0;     // length of the torn fragment
};

/// Walks every valid frame from the start of `data`, calling
/// `fn(payload, len)` for each. `fn` returns false to reject a payload
/// whose CRC matched but whose contents do not decode — the scan stops
/// there and reports the rest of the buffer as torn (a CRC collision on
/// garbage is still a tear). The valid prefix always wins; corrupt input
/// never throws.
template <typename Fn>
ScanStats ScanFrames(const std::uint8_t* data, std::size_t size, Fn&& fn) {
  ScanStats stats;
  std::size_t pos = 0;
  while (pos + kFrameHeader <= size) {
    const std::uint32_t len = LoadU32(data + pos);
    const std::uint32_t crc = LoadU32(data + pos + 4);
    const std::size_t payload_at = pos + kFrameHeader;
    if (payload_at + len > size) break;                       // torn payload
    if (Crc32(data + payload_at, len) != crc) break;          // corrupt
    if (!fn(data + payload_at, static_cast<std::size_t>(len)))  // undecodable
      break;
    ++stats.frames;
    pos = payload_at + len;
  }
  stats.bytes_scanned = pos;
  stats.torn_bytes = size - pos;
  stats.torn_tail = stats.torn_bytes > 0;
  return stats;
}

}  // namespace d2tree::frame
