#include "d2tree/net/simnet.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "d2tree/common/rng.h"

namespace d2tree {
namespace {

double UnitFromBits(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

SimNetTransport::SimNetTransport(SimNetConfig config) : config_(config) {}

std::uint64_t SimNetTransport::DirectedKey(const Address& from,
                                           const Address& to) noexcept {
  const auto enc = [](const Address& a) -> std::uint64_t {
    return (static_cast<std::uint64_t>(a.kind) << 28) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.id)) &
            0x0FFFFFFFULL);
  };
  return (enc(from) << 32) | enc(to);
}

SimNetTransport::LinkState& SimNetTransport::Link(std::uint64_t key) {
  {
    ReaderMutexLock lock(&links_mu_);
    const auto it = links_.find(key);
    if (it != links_.end()) return *it->second;
  }
  WriterMutexLock lock(&links_mu_);
  auto& slot = links_[key];
  if (slot == nullptr) {
    slot = std::make_unique<LinkState>();
    slot->drop_bits.store(std::bit_cast<std::uint64_t>(config_.drop_probability),
                          std::memory_order_relaxed);
  }
  return *slot;
}

SimNetTransport::LinkState* SimNetTransport::FindLink(std::uint64_t key) {
  ReaderMutexLock lock(&links_mu_);
  const auto it = links_.find(key);
  return it == links_.end() ? nullptr : it->second.get();
}

Delivery SimNetTransport::Send(const Address& from, const Address& to,
                               const Message& msg) {
  const std::uint64_t key = DirectedKey(from, to);
  LinkState& link = Link(key);
  const std::uint64_t seq = link.seq.fetch_add(1, std::memory_order_relaxed);

  Delivery d;
  if (link.partitioned.load(std::memory_order_acquire)) {
    // A cut link means the peer is unreachable, not merely slow — the
    // same verdict SocketTransport reports for a refused connection.
    d = {false, config_.timeout_us, DeliveryError::kUndeliverable};
  } else {
    // The fate of (link, seq) is a pure hash: replays are deterministic.
    std::uint64_t mix = config_.seed ^ (key * 0x9E3779B97F4A7C15ULL) ^
                        (seq * 0xD1B54A32D192ED03ULL);
    const double u_drop = UnitFromBits(SplitMix64(mix));
    const double u_jitter = UnitFromBits(SplitMix64(mix));
    const double drop_p =
        std::bit_cast<double>(link.drop_bits.load(std::memory_order_acquire));
    if (u_drop < drop_p) {
      // A dropped frame times the sender out; the message may have been
      // lost on either leg, so the peer might still have executed it.
      d = {false, config_.timeout_us, DeliveryError::kTimeout};
    } else {
      double latency = config_.base_latency_us;
      if (config_.jitter_mean_us > 0.0)
        latency += config_.jitter_mean_us * -std::log1p(-u_jitter);
      d = {true, latency};
    }
  }
  Account(d);

  if (record_log_.load(std::memory_order_relaxed)) {
    char line[128];
    std::snprintf(line, sizeof(line), "%s%d->%s%d %s seq=%llu %s%.3fus",
                  PeerKindName(from.kind), from.id, PeerKindName(to.kind),
                  to.id, MsgTypeName(msg.type),
                  static_cast<unsigned long long>(seq),
                  d.delivered ? "" : "DROPPED ", d.latency_us);
    MutexLock lock(&log_mu_);
    log_.emplace_back(line);
  }
  return d;
}

bool SimNetTransport::SetLinkDropRate(const Address& a, const Address& b,
                                      double probability) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(probability);
  Link(DirectedKey(a, b)).drop_bits.store(bits, std::memory_order_release);
  Link(DirectedKey(b, a)).drop_bits.store(bits, std::memory_order_release);
  return true;
}

bool SimNetTransport::SetPartitioned(const Address& a, const Address& b,
                                     bool on) {
  Link(DirectedKey(a, b)).partitioned.store(on, std::memory_order_release);
  Link(DirectedKey(b, a)).partitioned.store(on, std::memory_order_release);
  return true;
}

void SimNetTransport::set_record_log(bool on) {
  record_log_.store(on, std::memory_order_relaxed);
}

std::vector<std::string> SimNetTransport::TakeLog() {
  MutexLock lock(&log_mu_);
  std::vector<std::string> out;
  out.swap(log_);
  return out;
}

}  // namespace d2tree
