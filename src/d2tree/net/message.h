// Typed messages of the metadata service (the explicit message path).
//
// Every interaction the paper describes between clients, MDSs and the
// Monitor — Sec. IV-A2 access logic, Sec. IV-A3 global-layer updates,
// Sec. IV-B heartbeats and pending-pool migrations — is carried as one of
// the message types below over a Transport (net/transport.h). The
// in-process cluster used to model these as direct C++ calls, so jumps
// were merely counted; with an explicit message layer each hop accrues
// simulated latency and the network itself becomes a fault surface
// (drops, partitions) the fault injector can target.
#pragma once

#include <cstddef>
#include <cstdint>

#include "d2tree/mds/inode.h"
#include "d2tree/partition/partition.h"

namespace d2tree {

/// The three peer roles of the system. Clients are modelled as one logical
/// endpoint (the harness's threads share the client-side stub), the
/// Monitor doubles as the ZooKeeper-style lock service (Sec. IV-A3).
enum class PeerKind : std::uint8_t { kClient = 0, kMds, kMonitor };

/// A network endpoint: a role plus (for MDSs) the server id.
struct Address {
  PeerKind kind = PeerKind::kClient;
  MdsId id = 0;  // meaningful for kMds only

  bool operator==(const Address&) const = default;
};

constexpr Address ClientAddress() noexcept { return {PeerKind::kClient, 0}; }
constexpr Address MonitorAddress() noexcept { return {PeerKind::kMonitor, 0}; }
constexpr Address MdsAddress(MdsId id) noexcept {
  return {PeerKind::kMds, id};
}

enum class MsgType : std::uint8_t {
  kStatRequest = 0,  // client → MDS: read `target`
  kStatResponse,     // MDS → client: status + record
  kUpdateRequest,    // client → MDS: mutate `target` (mtime payload)
  kUpdateResponse,   // MDS → client
  kForward,          // MDS → MDS: wrong server, hand the request on
  kHeartbeat,        // MDS → Monitor: load report (its absence = failure)
  kPendingPoolPush,  // MDS → Monitor: offload a subtree into the pool
  kPendingPoolPull,  // Monitor → MDS: subtree granted to a puller
  kGlWriteLock,      // MDS ⇄ Monitor: global-layer write-lock round
  kGlCommit,         // MDS → MDS: locked GL update / replica rebuild data
  /// Atomic rename transaction legs (DESIGN.md §8). The rename id rides
  /// in `migration_id` — both protocols draw from the same monotone
  /// counter and the destination deduplicates on it.
  kRenameRequest,    // client → MDS: rename `target` (new name in-process)
  kRenameResponse,   // MDS → client: transaction outcome
  kRenamePrepare,    // source MDS → destination MDS: parked subtree records
  kRenameCommit,     // Monitor → MDS: rename durable, GL version bumped
  kRenameAbort,      // Monitor → MDS: transaction rolled back
  /// Bulk subtree handoff: one sealed SSTable replaces the per-record
  /// stream of a migration/rename transfer. `name` carries the table
  /// path, `payload_records` the record count; the receiver ingests by
  /// file link-in (O(1) in record count) and dedups on `migration_id`.
  kBulkTable,        // source MDS → destination MDS: sealed table handoff
};

const char* MsgTypeName(MsgType type);
const char* PeerKindName(PeerKind kind);

/// One message on the wire. On the in-process and simulated transports the
/// payload proper used to stay in-process — the transport modelled the
/// *path* (latency, loss, partitions), not serialization. SocketTransport
/// (net/socket_transport.h) serializes the whole struct through the wire
/// codec (net/wire.h), so every field below round-trips byte-exactly
/// across real TCP connections; `payload_records` sizes bulk transfers for
/// accounting either way.
struct Message {
  MsgType type = MsgType::kStatRequest;
  NodeId target = kInvalidNode;       // subject node, when applicable
  std::uint64_t mtime = 0;            // update payload
  MdsStatus status = MdsStatus::kOk;  // responses
  std::size_t payload_records = 0;    // bulk transfers (migration, rebuild)
  /// Pending-pool push/pull: the two-phase handoff's migration id. The
  /// receiver journals and deduplicates on it, so a retransmitted pull
  /// (retry/backoff discipline, net/retry.h) is applied at most once.
  std::uint64_t migration_id = 0;
  /// Peer hint: a kWrongServer response names the authoritative owner so
  /// a remote client can pay the one-jump redirect itself (-1 = unset).
  MdsId peer = -1;
  /// Rename payload: the post-rename component name.
  std::string name{};
  /// Full record payload (stat responses, bulk legs over a real wire).
  InodeRecord record{};

  bool operator==(const Message&) const = default;
};

/// Hard wire-format bounds (net/wire.h enforces them on decode; encoders
/// that exceed them produce frames the receiver rejects as corrupt).
inline constexpr std::size_t kMaxWireNameBytes = 4096;
inline constexpr std::size_t kMaxWireFrameBytes = 1 << 20;

}  // namespace d2tree
