#include "d2tree/net/message.h"

namespace d2tree {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kStatRequest:
      return "stat-req";
    case MsgType::kStatResponse:
      return "stat-resp";
    case MsgType::kUpdateRequest:
      return "update-req";
    case MsgType::kUpdateResponse:
      return "update-resp";
    case MsgType::kForward:
      return "forward";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kPendingPoolPush:
      return "pool-push";
    case MsgType::kPendingPoolPull:
      return "pool-pull";
    case MsgType::kGlWriteLock:
      return "gl-write-lock";
    case MsgType::kGlCommit:
      return "gl-commit";
    case MsgType::kRenameRequest:
      return "rename-req";
    case MsgType::kRenameResponse:
      return "rename-resp";
    case MsgType::kRenamePrepare:
      return "rename-prepare";
    case MsgType::kRenameCommit:
      return "rename-commit";
    case MsgType::kRenameAbort:
      return "rename-abort";
    case MsgType::kBulkTable:
      return "bulk-table";
  }
  return "?";
}

const char* PeerKindName(PeerKind kind) {
  switch (kind) {
    case PeerKind::kClient:
      return "client";
    case PeerKind::kMds:
      return "mds";
    case PeerKind::kMonitor:
      return "monitor";
  }
  return "?";
}

}  // namespace d2tree
