#include "d2tree/net/wire.h"

#include <cstring>

#include "d2tree/durability/crc32.h"

namespace d2tree {

const char* FrameKindName(FrameKind kind) {
  switch (kind) {
    case FrameKind::kOneWay:
      return "one-way";
    case FrameKind::kCall:
      return "call";
    case FrameKind::kResponse:
      return "response";
    case FrameKind::kAck:
      return "ack";
  }
  return "?";
}

namespace {

void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutString(std::vector<std::uint8_t>& out, const std::string& s) {
  const std::size_t n = s.size() > kMaxWireNameBytes ? kMaxWireNameBytes
                                                     : s.size();
  PutU32(out, static_cast<std::uint32_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

/// Bounds-checked little-endian reader over one frame body.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : p_(data), end_(data + len) {}

  bool ok() const noexcept { return ok_; }
  bool exhausted() const noexcept { return p_ == end_; }

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return *p_++;
  }
  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
    return v;
  }
  std::string String() {
    const std::uint32_t n = U32();
    if (!ok_ || n > kMaxWireNameBytes || !Need(n)) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

void PutAddress(std::vector<std::uint8_t>& out, const Address& a) {
  PutU8(out, static_cast<std::uint8_t>(a.kind));
  PutU32(out, static_cast<std::uint32_t>(a.id));
}

bool ReadAddress(Reader& r, Address* a) {
  const std::uint8_t kind = r.U8();
  const std::uint32_t id = r.U32();
  if (!r.ok() || kind > static_cast<std::uint8_t>(PeerKind::kMonitor))
    return false;
  a->kind = static_cast<PeerKind>(kind);
  a->id = static_cast<MdsId>(id);
  return true;
}

void PutRecord(std::vector<std::uint8_t>& out, const InodeRecord& rec) {
  PutU32(out, rec.id);
  PutU32(out, rec.parent);
  PutU8(out, static_cast<std::uint8_t>(rec.type));
  PutU32(out, rec.attrs.mode);
  PutU32(out, rec.attrs.uid);
  PutU32(out, rec.attrs.gid);
  PutU64(out, rec.attrs.size);
  PutU64(out, rec.attrs.mtime);
  PutU64(out, rec.attrs.ctime);
  PutU64(out, rec.version);
  PutString(out, rec.name);
}

bool ReadRecord(Reader& r, InodeRecord* rec) {
  rec->id = r.U32();
  rec->parent = r.U32();
  const std::uint8_t type = r.U8();
  rec->attrs.mode = r.U32();
  rec->attrs.uid = r.U32();
  rec->attrs.gid = r.U32();
  rec->attrs.size = r.U64();
  rec->attrs.mtime = r.U64();
  rec->attrs.ctime = r.U64();
  rec->version = r.U64();
  rec->name = r.String();
  if (!r.ok() || type > static_cast<std::uint8_t>(NodeType::kFile))
    return false;
  rec->type = static_cast<NodeType>(type);
  return true;
}

std::optional<WireEnvelope> DecodeBody(const std::uint8_t* data,
                                       std::size_t len) {
  Reader r(data, len);
  WireEnvelope env;
  if (r.U8() != kWireVersion) return std::nullopt;
  const std::uint8_t kind = r.U8();
  if (!r.ok() || kind > static_cast<std::uint8_t>(FrameKind::kAck))
    return std::nullopt;
  env.kind = static_cast<FrameKind>(kind);
  env.correlation_id = r.U64();
  if (!ReadAddress(r, &env.from) || !ReadAddress(r, &env.to))
    return std::nullopt;

  const std::uint8_t type = r.U8();
  const std::uint8_t status = r.U8();
  if (!r.ok() || type > static_cast<std::uint8_t>(MsgType::kBulkTable) ||
      status > static_cast<std::uint8_t>(MdsStatus::kUnavailable))
    return std::nullopt;
  env.msg.type = static_cast<MsgType>(type);
  env.msg.status = static_cast<MdsStatus>(status);
  env.msg.target = r.U32();
  env.msg.mtime = r.U64();
  env.msg.payload_records = static_cast<std::size_t>(r.U64());
  env.msg.migration_id = r.U64();
  env.msg.peer = static_cast<MdsId>(r.U32());
  env.msg.name = r.String();
  if (!ReadRecord(r, &env.msg.record)) return std::nullopt;
  // Trailing garbage after a well-formed body is corruption too: a frame
  // is exactly one envelope.
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return env;
}

}  // namespace

std::vector<std::uint8_t> EncodeFrame(const WireEnvelope& env) {
  std::vector<std::uint8_t> body;
  body.reserve(96 + env.msg.name.size() + env.msg.record.name.size());
  PutU8(body, kWireVersion);
  PutU8(body, static_cast<std::uint8_t>(env.kind));
  PutU64(body, env.correlation_id);
  PutAddress(body, env.from);
  PutAddress(body, env.to);

  PutU8(body, static_cast<std::uint8_t>(env.msg.type));
  PutU8(body, static_cast<std::uint8_t>(env.msg.status));
  PutU32(body, env.msg.target);
  PutU64(body, env.msg.mtime);
  PutU64(body, static_cast<std::uint64_t>(env.msg.payload_records));
  PutU64(body, env.msg.migration_id);
  PutU32(body, static_cast<std::uint32_t>(env.msg.peer));
  PutString(body, env.msg.name);
  PutRecord(body, env.msg.record);

  std::vector<std::uint8_t> frame;
  frame.reserve(kWireHeaderBytes + body.size());
  PutU32(frame, static_cast<std::uint32_t>(body.size()));
  PutU32(frame, Crc32(body.data(), body.size()));
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

DecodeStatus DecodeFrame(const std::uint8_t* data, std::size_t len,
                         WireEnvelope* env, std::size_t* consumed) {
  *consumed = 0;
  if (len < kWireHeaderBytes) return DecodeStatus::kNeedMore;
  std::uint32_t body_len = 0;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i)
    body_len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  for (int i = 0; i < 4; ++i)
    crc |= static_cast<std::uint32_t>(data[4 + i]) << (8 * i);
  if (body_len > kMaxWireFrameBytes) return DecodeStatus::kCorrupt;
  const std::size_t total = kWireHeaderBytes + body_len;
  if (len < total) return DecodeStatus::kNeedMore;
  const std::uint8_t* body = data + kWireHeaderBytes;
  if (Crc32(body, body_len) != crc) {
    *consumed = total;
    return DecodeStatus::kCorrupt;
  }
  std::optional<WireEnvelope> decoded = DecodeBody(body, body_len);
  if (!decoded.has_value()) {
    // CRC matched but the body does not parse — an encoder bug or a
    // deliberately malformed peer; either way the frame is poison.
    *consumed = total;
    return DecodeStatus::kCorrupt;
  }
  *env = *std::move(decoded);
  *consumed = total;
  return DecodeStatus::kOk;
}

}  // namespace d2tree
